/**
 * @file
 * Unit tests for the RDMA verb layer (SNIA remote-persist extensions).
 */

#include <gtest/gtest.h>

#include "mem/memory_device.hh"
#include "net/rdma.hh"
#include "sim/event_queue.hh"

using namespace ddp;
using namespace ddp::net;
using namespace ddp::sim;

namespace {

struct RdmaHarness
{
    EventQueue eq;
    NetworkParams params;
    mem::MemoryDevice nvm0{mem::MemoryParams::nvm()};
    mem::MemoryDevice nvm1{mem::MemoryParams::nvm()};
    RdmaEngine engine;

    RdmaHarness() : engine(eq, 0, params, {&nvm0, &nvm1}) {}
};

} // namespace

TEST(Rdma, WriteAcksAfterRoundTrip)
{
    RdmaHarness h;
    Tick acked = 0;
    h.engine.write(1, 0, 64, [&](Tick t) { acked = t; });
    h.eq.run();
    // Ack requires a full round trip but no NVM involvement.
    EXPECT_GE(acked, h.params.roundTrip);
    EXPECT_LT(acked, h.params.roundTrip + 1 * kMicrosecond);
    EXPECT_EQ(h.nvm1.writeCount(), 0u);
}

TEST(Rdma, WritePersistChargesRemoteNvm)
{
    RdmaHarness h;
    Tick acked = 0;
    h.engine.writePersist(1, 0, 64, [&](Tick t) { acked = t; });
    h.eq.run();
    EXPECT_EQ(h.nvm1.writeCount(), 1u);
    // Durable write adds the NVM write latency to the round trip.
    EXPECT_GE(acked, h.params.roundTrip + 400 * kNanosecond);
}

TEST(Rdma, PersistSlowerThanVolatileWrite)
{
    RdmaHarness h;
    Tick vol = 0, dur = 0;
    h.engine.write(1, 0, 64, [&](Tick t) { vol = t; });
    h.engine.writePersist(1, 64, 64, [&](Tick t) { dur = t; });
    h.eq.run();
    EXPECT_GT(dur, vol);
}

TEST(Rdma, FlushPersistsRemoteLine)
{
    RdmaHarness h;
    Tick acked = 0;
    h.engine.flush(1, 128, [&](Tick t) { acked = t; });
    h.eq.run();
    EXPECT_EQ(h.nvm1.writeCount(), 1u);
    EXPECT_GT(acked, h.params.roundTrip);
}

TEST(Rdma, OpsAreCounted)
{
    RdmaHarness h;
    h.engine.write(1, 0, 64, [](Tick) {});
    h.engine.writePersist(1, 0, 64, [](Tick) {});
    h.engine.flush(1, 0, [](Tick) {});
    h.eq.run();
    EXPECT_EQ(h.engine.opCount(), 3u);
}

TEST(Rdma, ConcurrentPersistsQueueOnRemoteNvm)
{
    RdmaHarness h;
    Tick first = 0, second = 0;
    h.engine.writePersist(1, 0, 64, [&](Tick t) { first = t; });
    h.engine.writePersist(1, 0, 64, [&](Tick t) { second = t; });
    h.eq.run();
    // Same line -> same bank: the second durable ack lags by at least
    // one NVM write service time.
    EXPECT_GE(second, first + 400 * kNanosecond);
}
