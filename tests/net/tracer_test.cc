/**
 * @file
 * Unit tests for the protocol message tracer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "net/fabric.hh"
#include "net/tracer.hh"
#include "sim/event_queue.hh"

using namespace ddp::net;
using namespace ddp::sim;

namespace {

struct TracedFabric
{
    EventQueue eq;
    NetworkParams params;
    Fabric fabric{eq, params, 3};
    MessageTracer tracer;

    TracedFabric()
    {
        for (NodeId n = 0; n < 3; ++n)
            fabric.attach(n, [](const Message &) {});
        fabric.setTracer(&tracer);
    }

    void
    send(MsgType type, NodeId src, NodeId dst, KeyId key)
    {
        Message m;
        m.type = type;
        m.src = src;
        m.dst = dst;
        m.key = key;
        m.version = Version{1, src};
        fabric.send(m);
    }
};

} // namespace

TEST(MessageTracer, RecordsDeliveriesInOrder)
{
    TracedFabric t;
    t.send(MsgType::Inv, 0, 1, 5);
    t.send(MsgType::Ack, 1, 0, 5);
    t.eq.run();
    ASSERT_EQ(t.tracer.size(), 2u);
    EXPECT_EQ(t.tracer[0].type, MsgType::Inv);
    EXPECT_EQ(t.tracer[1].type, MsgType::Ack);
    EXPECT_LE(t.tracer[0].at, t.tracer[1].at);
    EXPECT_EQ(t.tracer[0].key, 5u);
}

TEST(MessageTracer, CountsByType)
{
    TracedFabric t;
    t.send(MsgType::Inv, 0, 1, 1);
    t.send(MsgType::Inv, 0, 2, 1);
    t.send(MsgType::Val, 0, 1, 1);
    t.eq.run();
    EXPECT_EQ(t.tracer.countOf(MsgType::Inv), 2u);
    EXPECT_EQ(t.tracer.countOf(MsgType::Val), 1u);
    EXPECT_EQ(t.tracer.countOf(MsgType::Upd), 0u);
}

TEST(MessageTracer, RingBufferBounds)
{
    TracedFabric t;
    MessageTracer small(4);
    t.fabric.setTracer(&small);
    for (int i = 0; i < 10; ++i)
        t.send(MsgType::Upd, 0, 1, static_cast<KeyId>(i));
    t.eq.run();
    EXPECT_EQ(small.size(), 4u);
    EXPECT_EQ(small.droppedEntries(), 6u);
    // The oldest entries were dropped; the newest survive.
    EXPECT_EQ(small[3].key, 9u);
}

TEST(MessageTracer, DumpRendersTimeline)
{
    TracedFabric t;
    t.send(MsgType::Inv, 0, 1, 7);
    t.eq.run();
    std::ostringstream os;
    t.tracer.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("INV"), std::string::npos);
    EXPECT_NE(out.find("key=7"), std::string::npos);
    EXPECT_NE(out.find("0 -> 1"), std::string::npos);
}

TEST(MessageTracer, DumpKeyFilter)
{
    TracedFabric t;
    t.send(MsgType::Inv, 0, 1, 7);
    t.send(MsgType::Inv, 0, 1, 8);
    t.eq.run();
    std::ostringstream os;
    t.tracer.dump(os, true, 8);
    std::string out = os.str();
    EXPECT_EQ(out.find("key=7"), std::string::npos);
    EXPECT_NE(out.find("key=8"), std::string::npos);
}

TEST(MessageTracer, ClearResets)
{
    TracedFabric t;
    t.send(MsgType::Inv, 0, 1, 7);
    t.eq.run();
    t.tracer.clear();
    EXPECT_EQ(t.tracer.size(), 0u);
    EXPECT_EQ(t.tracer.droppedEntries(), 0u);
}

TEST(MessageTracer, ForEachVisitsAll)
{
    TracedFabric t;
    for (int i = 0; i < 5; ++i)
        t.send(MsgType::Upd, 0, 2, static_cast<KeyId>(i));
    t.eq.run();
    int visited = 0;
    t.tracer.forEach([&](const TraceEntry &) { ++visited; });
    EXPECT_EQ(visited, 5);
}
