/**
 * @file
 * Unit tests for the fault-injection plan and the fabric's
 * reliable-delivery layer: seeded determinism, drop/duplicate/reorder
 * injection, link cuts, retransmission, receiver-side dedup and
 * resequencing, and the retry give-up path.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/fabric.hh"
#include "net/fault.hh"
#include "net/message.hh"
#include "sim/event_queue.hh"

using namespace ddp::net;
using ddp::sim::EventQueue;
using ddp::sim::kMicrosecond;
using ddp::sim::kMillisecond;
using ddp::sim::kTickNever;
using ddp::sim::Tick;

namespace {

FaultConfig
dropConfig(double rate, std::uint64_t seed = 7)
{
    FaultConfig fc;
    fc.seed = seed;
    fc.allLinks.dropRate = rate;
    return fc;
}

/** Fabric + per-node delivery logs, optionally lossy + reliable. */
struct Harness
{
    EventQueue eq;
    NetworkParams params;
    std::unique_ptr<FaultPlan> plan;
    std::unique_ptr<Fabric> fabric;
    std::vector<std::vector<Message>> delivered;

    explicit Harness(std::size_t nodes, const FaultConfig *fc = nullptr,
                     bool reliable = false)
        : delivered(nodes)
    {
        params.reliability.enabled = reliable;
        fabric = std::make_unique<Fabric>(eq, params, nodes);
        if (fc) {
            plan = std::make_unique<FaultPlan>(*fc, nodes);
            fabric->setFaultPlan(plan.get());
        }
        for (NodeId n = 0; n < nodes; ++n) {
            fabric->attach(n, [this, n](const Message &m) {
                delivered[n].push_back(m);
            });
        }
    }

    Message
    msg(NodeId src, NodeId dst, std::uint64_t op) const
    {
        Message m;
        m.type = MsgType::Inv;
        m.src = src;
        m.dst = dst;
        m.opId = op;
        return m;
    }
};

} // namespace

TEST(FaultPlan, SameSeedSameDecisions)
{
    FaultConfig fc = dropConfig(0.3);
    FaultPlan a(fc, 3), b(fc, 3);
    for (int i = 0; i < 200; ++i) {
        auto da = a.decide(0, 0, 1);
        auto db = b.decide(0, 0, 1);
        EXPECT_EQ(da.drop, db.drop) << "draw " << i;
    }
    EXPECT_EQ(a.drops(), b.drops());
    EXPECT_GT(a.drops(), 0u);
}

TEST(FaultPlan, ZeroSeedDerivesFromExperimentSeed)
{
    FaultConfig fc = dropConfig(0.3, 0);
    FaultPlan a(fc, 3, 11), b(fc, 3, 11), c(fc, 3, 12);
    bool diverged = false;
    for (int i = 0; i < 200; ++i) {
        auto da = a.decide(0, 0, 1);
        auto db = b.decide(0, 0, 1);
        auto dc = c.decide(0, 0, 1);
        EXPECT_EQ(da.drop, db.drop);
        if (da.drop != dc.drop)
            diverged = true;
    }
    EXPECT_TRUE(diverged) << "different experiment seeds, same chaos";
}

TEST(FaultPlan, RatesRoughlyRespected)
{
    FaultConfig fc = dropConfig(0.1);
    FaultPlan p(fc, 2);
    int drops = 0;
    for (int i = 0; i < 10000; ++i)
        drops += p.decide(0, 0, 1).drop ? 1 : 0;
    EXPECT_NEAR(drops, 1000, 200);
}

TEST(FaultPlan, PerLinkOverrideOnlyAffectsThatLink)
{
    FaultConfig fc; // no global faults
    fc.seed = 5;
    FaultPlan p(fc, 3);
    LinkFaults lossy;
    lossy.dropRate = 1.0;
    p.setLinkFaults(0, 1, lossy);
    EXPECT_TRUE(p.decide(0, 0, 1).drop);
    EXPECT_FALSE(p.decide(0, 1, 0).drop);
    EXPECT_FALSE(p.decide(0, 0, 2).drop);
}

TEST(FaultPlan, PartitionSeversCrossTraffic)
{
    FaultConfig fc;
    fc.seed = 5;
    PartitionWindow w;
    w.from = 10 * kMicrosecond;
    w.until = 20 * kMicrosecond;
    w.groupA = {0};
    fc.partitions.push_back(w);
    FaultPlan p(fc, 3);

    EXPECT_FALSE(p.linkCut(0, 0, 1));
    EXPECT_TRUE(p.linkCut(15 * kMicrosecond, 0, 1));
    EXPECT_TRUE(p.linkCut(15 * kMicrosecond, 2, 0));
    // Same side of the cut: unaffected.
    EXPECT_FALSE(p.linkCut(15 * kMicrosecond, 1, 2));
    // Healed.
    EXPECT_FALSE(p.linkCut(20 * kMicrosecond, 0, 1));
}

TEST(FaultPlan, OutageSeversBothDirections)
{
    FaultConfig fc;
    fc.seed = 5;
    fc.outages.push_back(NodeOutage{1, 5 * kMicrosecond, kTickNever});
    FaultPlan p(fc, 3);

    EXPECT_FALSE(p.linkCut(0, 0, 1));
    EXPECT_TRUE(p.linkCut(5 * kMicrosecond, 0, 1));
    EXPECT_TRUE(p.linkCut(5 * kMicrosecond, 1, 0));
    EXPECT_FALSE(p.linkCut(5 * kMicrosecond, 0, 2));
    EXPECT_TRUE(p.nodeCut(6 * kMicrosecond, 1));
    EXPECT_FALSE(p.nodeCut(6 * kMicrosecond, 0));
}

TEST(LossyFabric, DropsLoseMessagesWithoutReliability)
{
    FaultConfig fc = dropConfig(1.0);
    Harness h(2, &fc, /*reliable=*/false);
    h.fabric->send(h.msg(0, 1, 1));
    h.eq.run();
    EXPECT_TRUE(h.delivered[1].empty());
    EXPECT_EQ(h.plan->drops(), 1u);
    EXPECT_EQ(h.fabric->droppedMessages(), 1u);
    EXPECT_EQ(h.fabric->nic(0).txDropped(), 1u);
}

TEST(ReliableFabric, RetransmitsUntilDelivered)
{
    // Drop the first two attempts, then let everything through.
    FaultConfig fc;
    fc.seed = 1;
    Harness h(2, &fc, /*reliable=*/true);
    LinkFaults certain;
    certain.dropRate = 1.0;
    h.plan->setLinkFaults(0, 1, certain);

    h.fabric->send(h.msg(0, 1, 1));
    h.eq.runUntil(25 * kMicrosecond); // base RTO 10us: ~2 attempts
    EXPECT_TRUE(h.delivered[1].empty());
    h.plan->setLinkFaults(0, 1, LinkFaults{}); // heal

    h.eq.run();
    ASSERT_EQ(h.delivered[1].size(), 1u);
    EXPECT_EQ(h.delivered[1][0].opId, 1u);
    EXPECT_GT(h.fabric->retransmits(), 0u);
    EXPECT_GT(h.fabric->rtoTimeouts(), 0u);
    EXPECT_EQ(h.fabric->retransmitGiveUps(), 0u);
    EXPECT_EQ(h.fabric->unackedMessages(), 0u);
    EXPECT_GT(h.fabric->nic(0).txRetransmits(), 0u);
    EXPECT_GT(h.fabric->nic(0).rtoTimeouts(), 0u);
}

TEST(ReliableFabric, InjectedDuplicatesAreFilteredOnce)
{
    FaultConfig fc;
    fc.seed = 1;
    fc.allLinks.duplicateRate = 1.0;
    Harness h(2, &fc, /*reliable=*/true);
    for (std::uint64_t op = 1; op <= 5; ++op)
        h.fabric->send(h.msg(0, 1, op));
    h.eq.run();
    ASSERT_EQ(h.delivered[1].size(), 5u);
    for (std::uint64_t op = 1; op <= 5; ++op)
        EXPECT_EQ(h.delivered[1][op - 1].opId, op);
    EXPECT_GT(h.fabric->duplicateArrivals(), 0u);
}

TEST(ReliableFabric, LossyStreamStaysInOrderExactlyOnce)
{
    FaultConfig fc;
    fc.seed = 99;
    fc.allLinks.dropRate = 0.2;
    fc.allLinks.duplicateRate = 0.1;
    fc.allLinks.reorderRate = 0.2;
    Harness h(3, &fc, /*reliable=*/true);

    constexpr std::uint64_t kOps = 200;
    for (std::uint64_t op = 1; op <= kOps; ++op) {
        h.fabric->send(h.msg(0, 1, op));
        h.fabric->send(h.msg(2, 1, 1000 + op));
    }
    h.eq.run();

    // Per source QP: every message exactly once, in send order.
    std::uint64_t next0 = 1, next2 = 1001;
    for (const Message &m : h.delivered[1]) {
        if (m.src == 0)
            EXPECT_EQ(m.opId, next0++);
        else
            EXPECT_EQ(m.opId, next2++);
    }
    EXPECT_EQ(next0, kOps + 1);
    EXPECT_EQ(next2, 1000 + kOps + 1);
    EXPECT_GT(h.plan->drops(), 0u);
    EXPECT_EQ(h.fabric->unackedMessages(), 0u);
}

TEST(ReliableFabric, GivesUpOnPermanentlyCutLink)
{
    FaultConfig fc;
    fc.seed = 1;
    fc.outages.push_back(NodeOutage{1, 0, kTickNever});
    Harness h(2, &fc, /*reliable=*/true);
    h.fabric->send(h.msg(0, 1, 1));
    h.eq.run();
    EXPECT_TRUE(h.delivered[1].empty());
    EXPECT_EQ(h.fabric->retransmitGiveUps(), 1u);
    EXPECT_EQ(h.fabric->retransmits(),
              h.fabric->params().reliability.maxRetries);
    EXPECT_EQ(h.fabric->unackedMessages(), 0u);
    EXPECT_GT(h.plan->partitionDrops(), 0u);
}

TEST(ReliableFabric, LoopbackBypassesTheWire)
{
    FaultConfig fc = dropConfig(1.0);
    Harness h(2, &fc, /*reliable=*/true);
    h.fabric->send(h.msg(1, 1, 42));
    h.eq.run();
    ASSERT_EQ(h.delivered[1].size(), 1u);
    EXPECT_EQ(h.fabric->netAcksSent(), 0u);
}

TEST(ReliableFabric, PerfectWireAddsAcksButDeliversIdentically)
{
    Harness plain(2, nullptr, /*reliable=*/false);
    Harness rel(2, nullptr, /*reliable=*/true);
    for (std::uint64_t op = 1; op <= 10; ++op) {
        plain.fabric->send(plain.msg(0, 1, op));
        rel.fabric->send(rel.msg(0, 1, op));
    }
    plain.eq.run();
    rel.eq.run();
    ASSERT_EQ(plain.delivered[1].size(), rel.delivered[1].size());
    for (std::size_t i = 0; i < plain.delivered[1].size(); ++i)
        EXPECT_EQ(plain.delivered[1][i].opId, rel.delivered[1][i].opId);
    EXPECT_EQ(rel.fabric->netAcksSent(), 10u);
    EXPECT_EQ(rel.fabric->retransmits(), 0u);
    // NET_ACKs ride outside the protocol message accounting.
    EXPECT_EQ(plain.fabric->totalMessages(),
              rel.fabric->totalMessages());
}

TEST(ReliableFabric, BackoffDoublesUpToCap)
{
    ReliabilityParams r;
    EXPECT_EQ(r.timeoutFor(0), 10 * kMicrosecond);
    EXPECT_EQ(r.timeoutFor(1), 20 * kMicrosecond);
    EXPECT_EQ(r.timeoutFor(3), 80 * kMicrosecond);
    EXPECT_EQ(r.timeoutFor(10), 640 * kMicrosecond);
    EXPECT_EQ(r.timeoutFor(40), 640 * kMicrosecond);
}
