/**
 * @file
 * Unit tests for messages, the NIC model, and the fabric.
 */

#include <gtest/gtest.h>

#include <vector>

#include "net/fabric.hh"
#include "net/message.hh"
#include "sim/event_queue.hh"

using namespace ddp::net;
using namespace ddp::sim;
using ddp::sim::Tick;

TEST(Message, SizeAccountsForPayloadAndCauhist)
{
    Message m;
    std::uint32_t base = m.sizeBytes();
    m.hasData = true;
    EXPECT_EQ(m.sizeBytes(), base + 64);
    m.cauhist = {1, 2, 3, 4, 5};
    EXPECT_EQ(m.sizeBytes(), base + 64 + 5 * 8);
}

TEST(Message, TypeNames)
{
    EXPECT_STREQ(msgTypeName(MsgType::Inv), "INV");
    EXPECT_STREQ(msgTypeName(MsgType::AckC), "ACK_c");
    EXPECT_STREQ(msgTypeName(MsgType::ValP), "VAL_p");
    EXPECT_STREQ(msgTypeName(MsgType::Upd), "UPD");
    EXPECT_STREQ(msgTypeName(MsgType::Persist), "PERSIST");
}

TEST(Version, LexicographicOrder)
{
    Version a{1, 0}, b{1, 1}, c{2, 0};
    EXPECT_LT(a, b);
    EXPECT_LT(b, c);
    EXPECT_LT(a, c);
    EXPECT_EQ(a, (Version{1, 0}));
    EXPECT_NE(a, b);
    EXPECT_GE(c, b);
    EXPECT_LE(a, a);
}

TEST(NetworkParams, SerializationTiming)
{
    NetworkParams p;
    // 64 bytes at 200 Gb/s: 64*8/200e9 s = 2.56 ns = 2560 ps.
    EXPECT_EQ(p.serializationTicks(64), 2560u);
    EXPECT_EQ(p.serializationTicks(0), 0u);
}

namespace {

struct FabricHarness
{
    EventQueue eq;
    NetworkParams params;
    Fabric fabric;
    std::vector<std::vector<Message>> received;

    explicit FabricHarness(std::size_t nodes)
        : fabric(eq, params, nodes), received(nodes)
    {
        for (NodeId n = 0; n < nodes; ++n) {
            fabric.attach(n, [this, n](const Message &m) {
                received[n].push_back(m);
            });
        }
    }
};

} // namespace

TEST(Fabric, DeliversWithLatency)
{
    FabricHarness h(2);
    Message m;
    m.src = 0;
    m.dst = 1;
    h.fabric.send(m);
    h.eq.run();
    ASSERT_EQ(h.received[1].size(), 1u);
    // At least half the RTT must have elapsed.
    EXPECT_GE(h.eq.now(), h.params.roundTrip / 2);
    // And no more than RTT (one-way plus pipeline overheads).
    EXPECT_LT(h.eq.now(), h.params.roundTrip);
}

TEST(Fabric, SelfSendIsImmediate)
{
    FabricHarness h(2);
    Message m;
    m.src = 0;
    m.dst = 0;
    h.fabric.send(m);
    h.eq.run();
    ASSERT_EQ(h.received[0].size(), 1u);
    EXPECT_EQ(h.eq.now(), 0u);
}

TEST(Fabric, PerPairOrderingPreserved)
{
    FabricHarness h(2);
    for (std::uint64_t i = 0; i < 20; ++i) {
        Message m;
        m.src = 0;
        m.dst = 1;
        m.opId = i;
        // Vary sizes so naive latency-based delivery would reorder.
        m.hasData = (i % 2) == 0;
        h.fabric.send(m);
    }
    h.eq.run();
    ASSERT_EQ(h.received[1].size(), 20u);
    for (std::uint64_t i = 0; i < 20; ++i)
        EXPECT_EQ(h.received[1][i].opId, i);
}

TEST(Fabric, BroadcastReachesAllButSource)
{
    FabricHarness h(5);
    Message m;
    m.src = 2;
    h.fabric.broadcast(m);
    h.eq.run();
    for (NodeId n = 0; n < 5; ++n) {
        if (n == 2)
            EXPECT_TRUE(h.received[n].empty());
        else
            EXPECT_EQ(h.received[n].size(), 1u);
    }
}

TEST(Fabric, CountsTraffic)
{
    FabricHarness h(3);
    Message m;
    m.src = 0;
    m.dst = 1;
    m.hasData = true;
    h.fabric.send(m);
    h.eq.run();
    EXPECT_EQ(h.fabric.totalMessages(), 1u);
    EXPECT_EQ(h.fabric.totalBytes(), m.sizeBytes());
}

TEST(Fabric, TxSerializationDelaysBurst)
{
    FabricHarness h(2);
    // A large burst must be paced by the sender's line rate.
    for (int i = 0; i < 1000; ++i) {
        Message m;
        m.src = 0;
        m.dst = 1;
        m.hasData = true;
        h.fabric.send(m);
    }
    h.eq.run();
    // 1000 messages x (txOverhead + serialization) >> one-way latency.
    Tick min_time =
        1000 * h.params.txOverhead + h.params.roundTrip / 2;
    EXPECT_GE(h.eq.now(), min_time);
}

TEST(Fabric, HigherBandwidthDeliversSooner)
{
    EventQueue eq1, eq2;
    NetworkParams slow;
    slow.bandwidthBps = 10ULL * 1000 * 1000 * 1000; // 10 Gb/s
    NetworkParams fast;
    Fabric f1(eq1, slow, 2), f2(eq2, fast, 2);
    Tick t1 = 0, t2 = 0;
    f1.attach(1, [&](const Message &) { t1 = eq1.now(); });
    f1.attach(0, [](const Message &) {});
    f2.attach(1, [&](const Message &) { t2 = eq2.now(); });
    f2.attach(0, [](const Message &) {});
    Message m;
    m.src = 0;
    m.dst = 1;
    m.hasData = true;
    f1.send(m);
    f2.send(m);
    eq1.run();
    eq2.run();
    EXPECT_GT(t1, t2);
}

TEST(TwoTier, InterRackMessagesPayUplinkCosts)
{
    EventQueue eq;
    NetworkParams p;
    p.topology = Topology::TwoTier;
    p.rackSize = 2; // nodes {0,1} rack A, {2,3} rack B
    Fabric f(eq, p, 4);
    Tick intra = 0, inter = 0;
    for (NodeId n = 0; n < 4; ++n)
        f.attach(n, [](const Message &) {});
    f.attach(1, [&](const Message &) { intra = eq.now(); });
    f.attach(2, [&](const Message &) { inter = eq.now(); });
    Message m;
    m.src = 0;
    m.dst = 1;
    f.send(m);
    m.dst = 2;
    f.send(m);
    eq.run();
    EXPECT_GE(inter, intra + 2 * p.interRackHop);
}

TEST(TwoTier, UplinkSerializesCrossRackBursts)
{
    EventQueue eq;
    NetworkParams p;
    p.topology = Topology::TwoTier;
    p.rackSize = 2;
    p.uplinkBandwidthBps = 10ULL * 1000 * 1000 * 1000; // slow uplink
    Fabric f(eq, p, 4);
    for (NodeId n = 0; n < 4; ++n)
        f.attach(n, [](const Message &) {});
    Tick last = 0;
    f.attach(2, [&](const Message &) { last = eq.now(); });
    // Burst of large inter-rack messages from both rack-A nodes.
    for (int i = 0; i < 100; ++i) {
        Message m;
        m.src = static_cast<NodeId>(i % 2);
        m.dst = 2;
        m.hasData = true;
        f.send(m);
    }
    eq.run();
    // 100 x 112B at 10 Gb/s ~ 9 us of pure uplink serialization.
    EXPECT_GT(last, 8 * kMicrosecond);
}

TEST(TwoTier, IntraRackTrafficAvoidsUplink)
{
    EventQueue eq1, eq2;
    NetworkParams mesh;
    NetworkParams tiered;
    tiered.topology = Topology::TwoTier;
    tiered.rackSize = 2;
    Fabric f1(eq1, mesh, 4), f2(eq2, tiered, 4);
    Tick t1 = 0, t2 = 0;
    for (NodeId n = 0; n < 4; ++n) {
        f1.attach(n, [](const Message &) {});
        f2.attach(n, [](const Message &) {});
    }
    f1.attach(1, [&](const Message &) { t1 = eq1.now(); });
    f2.attach(1, [&](const Message &) { t2 = eq2.now(); });
    Message m;
    m.src = 0;
    m.dst = 1;
    f1.send(m);
    f2.send(m);
    eq1.run();
    eq2.run();
    EXPECT_EQ(t1, t2); // same rack: identical timing to full mesh
}
