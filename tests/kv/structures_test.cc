/**
 * @file
 * Structure-specific tests: B-tree / B+ tree invariants, skip-list
 * range scans, robin-hood deletion behaviour, slab-LRU eviction.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "kv/bplus_tree.hh"
#include "kv/btree.hh"
#include "kv/hash_table.hh"
#include "kv/skip_list.hh"
#include "kv/slab_lru.hh"
#include "sim/random.hh"

using namespace ddp::kv;

// --------------------------------------------------------------------------
// B-tree
// --------------------------------------------------------------------------

TEST(BTree, ValidAfterSequentialInserts)
{
    BTree t;
    for (KeyId k = 0; k < 5000; ++k) {
        t.put(k, k);
        if (k % 512 == 0) {
            ASSERT_TRUE(t.validate()) << "at key " << k;
        }
    }
    EXPECT_TRUE(t.validate());
    EXPECT_EQ(t.size(), 5000u);
    EXPECT_GT(t.height(), 1);
}

TEST(BTree, ValidAfterReverseInserts)
{
    BTree t;
    for (KeyId k = 5000; k > 0; --k)
        t.put(k, k);
    EXPECT_TRUE(t.validate());
    EXPECT_EQ(t.size(), 5000u);
}

TEST(BTree, EraseFromLeafAndInternal)
{
    BTree t;
    for (KeyId k = 0; k < 1000; ++k)
        t.put(k, k);
    // Delete every third key; exercises borrow and merge paths.
    for (KeyId k = 0; k < 1000; k += 3) {
        ASSERT_TRUE(t.erase(k)) << "key " << k;
        ASSERT_TRUE(t.validate()) << "key " << k;
    }
    Value v;
    EXPECT_FALSE(t.get(0, v));
    EXPECT_TRUE(t.get(1, v));
}

TEST(BTree, DrainCompletely)
{
    BTree t;
    for (KeyId k = 0; k < 800; ++k)
        t.put(k, k);
    for (KeyId k = 0; k < 800; ++k) {
        ASSERT_TRUE(t.erase(k));
        if (k % 97 == 0) {
            ASSERT_TRUE(t.validate());
        }
    }
    EXPECT_EQ(t.size(), 0u);
    EXPECT_TRUE(t.validate());
    EXPECT_EQ(t.height(), 1);
}

TEST(BTree, RandomizedOpsStayValid)
{
    BTree t;
    ddp::sim::Pcg32 rng(31337, 1);
    std::set<KeyId> ref;
    for (int i = 0; i < 20000; ++i) {
        KeyId key = rng.nextBounded(2000);
        if (rng.nextBounded(3) != 0) {
            t.put(key, key);
            ref.insert(key);
        } else {
            bool removed = t.erase(key);
            ASSERT_EQ(removed, ref.erase(key) > 0) << "iter " << i;
        }
        if (i % 1024 == 0) {
            ASSERT_TRUE(t.validate()) << "iter " << i;
        }
    }
    ASSERT_TRUE(t.validate());
    EXPECT_EQ(t.size(), ref.size());
}

// --------------------------------------------------------------------------
// B+ tree
// --------------------------------------------------------------------------

TEST(BPlusTree, ValidAfterInserts)
{
    BPlusTree t;
    for (KeyId k = 0; k < 5000; ++k)
        t.put(k, k * 2);
    EXPECT_TRUE(t.validate());
    EXPECT_GT(t.height(), 1);
}

TEST(BPlusTree, RangeScanOrderedAndComplete)
{
    BPlusTree t;
    for (KeyId k = 0; k < 1000; k += 2)
        t.put(k, k);
    std::vector<KeyId> seen;
    std::size_t n = t.rangeScan(100, 199, [&](KeyId k, Value v) {
        EXPECT_EQ(v, k);
        seen.push_back(k);
    });
    EXPECT_EQ(n, 50u); // 100,102,...,198
    for (std::size_t i = 1; i < seen.size(); ++i)
        EXPECT_LT(seen[i - 1], seen[i]);
    EXPECT_EQ(seen.front(), 100u);
    EXPECT_EQ(seen.back(), 198u);
}

TEST(BPlusTree, RangeScanEmptyRange)
{
    BPlusTree t;
    t.put(10, 1);
    EXPECT_EQ(t.rangeScan(20, 30, [](KeyId, Value) {}), 0u);
}

TEST(BPlusTree, EraseKeepsLeafChain)
{
    BPlusTree t;
    for (KeyId k = 0; k < 2000; ++k)
        t.put(k, k);
    for (KeyId k = 0; k < 2000; k += 2) {
        ASSERT_TRUE(t.erase(k));
        if (k % 256 == 0) {
            ASSERT_TRUE(t.validate()) << "key " << k;
        }
    }
    ASSERT_TRUE(t.validate());
    // Scan sees exactly the odd keys in order.
    KeyId expect = 1;
    t.rangeScan(0, 2000, [&](KeyId k, Value) {
        EXPECT_EQ(k, expect);
        expect += 2;
    });
}

TEST(BPlusTree, RandomizedOpsStayValid)
{
    BPlusTree t;
    ddp::sim::Pcg32 rng(99, 2);
    std::set<KeyId> ref;
    for (int i = 0; i < 20000; ++i) {
        KeyId key = rng.nextBounded(2500);
        if (rng.nextBounded(3) != 0) {
            t.put(key, key);
            ref.insert(key);
        } else {
            bool removed = t.erase(key);
            ASSERT_EQ(removed, ref.erase(key) > 0) << "iter " << i;
        }
        if (i % 1024 == 0) {
            ASSERT_TRUE(t.validate()) << "iter " << i;
        }
    }
    ASSERT_TRUE(t.validate());
    EXPECT_EQ(t.size(), ref.size());
}

TEST(BPlusTree, DrainCompletely)
{
    BPlusTree t;
    for (KeyId k = 0; k < 600; ++k)
        t.put(k, k);
    for (KeyId k = 600; k > 0; --k)
        ASSERT_TRUE(t.erase(k - 1));
    EXPECT_EQ(t.size(), 0u);
    EXPECT_TRUE(t.validate());
    EXPECT_EQ(t.height(), 1);
}

// --------------------------------------------------------------------------
// Skip list
// --------------------------------------------------------------------------

TEST(SkipList, RangeScanOrdered)
{
    SkipListMap m;
    for (KeyId k = 0; k < 500; ++k)
        m.put(k * 3, k);
    KeyId prev = 0;
    bool first = true;
    std::size_t n = m.rangeScan(30, 300, [&](KeyId k, Value) {
        if (!first) {
            EXPECT_GT(k, prev);
        }
        prev = k;
        first = false;
    });
    EXPECT_EQ(n, 91u); // 30,33,...,300
}

TEST(SkipList, LevelsGrowWithSize)
{
    SkipListMap m;
    EXPECT_EQ(m.currentLevels(), 1);
    for (KeyId k = 0; k < 10000; ++k)
        m.put(k, k);
    EXPECT_GT(m.currentLevels(), 3);
}

TEST(SkipList, LevelsShrinkAfterDrain)
{
    SkipListMap m;
    for (KeyId k = 0; k < 1000; ++k)
        m.put(k, k);
    for (KeyId k = 0; k < 1000; ++k)
        ASSERT_TRUE(m.erase(k));
    EXPECT_EQ(m.currentLevels(), 1);
    EXPECT_EQ(m.size(), 0u);
}

TEST(SkipList, DeterministicStructure)
{
    SkipListMap a(123), b(123);
    for (KeyId k = 0; k < 1000; ++k) {
        a.put(k, k);
        b.put(k, k);
    }
    EXPECT_EQ(a.currentLevels(), b.currentLevels());
}

// --------------------------------------------------------------------------
// Robin-hood hash table
// --------------------------------------------------------------------------

TEST(RobinHood, GrowsUnderLoad)
{
    RobinHoodHashTable h(16);
    std::size_t initial = h.capacity();
    for (KeyId k = 0; k < 1000; ++k)
        h.put(k, k);
    EXPECT_GT(h.capacity(), initial);
    EXPECT_EQ(h.size(), 1000u);
}

TEST(RobinHood, BackwardShiftDeletionKeepsChains)
{
    RobinHoodHashTable h(64);
    // Insert colliding-ish keys, delete some, verify the rest.
    for (KeyId k = 0; k < 48; ++k)
        h.put(k, k + 1);
    for (KeyId k = 0; k < 48; k += 2)
        ASSERT_TRUE(h.erase(k));
    for (KeyId k = 1; k < 48; k += 2) {
        Value v = 0;
        ASSERT_TRUE(h.get(k, v)) << "key " << k;
        ASSERT_EQ(v, k + 1);
    }
}

TEST(RobinHood, ProbesStayLowAtHighLoad)
{
    RobinHoodHashTable h;
    for (KeyId k = 0; k < 100000; ++k)
        h.put(k, k);
    std::uint32_t worst = 0;
    for (KeyId k = 0; k < 100000; k += 17) {
        Value v;
        ASSERT_TRUE(h.get(k, v));
        worst = std::max(worst, h.lastProbes());
    }
    // Robin-hood keeps the longest probe sequence short.
    EXPECT_LT(worst, 32u);
}

// --------------------------------------------------------------------------
// Slab LRU cache
// --------------------------------------------------------------------------

TEST(SlabLru, EvictsLeastRecentlyUsed)
{
    SlabLruCache c(4);
    for (KeyId k = 0; k < 4; ++k)
        c.put(k, k);
    Value v;
    ASSERT_TRUE(c.get(0, v)); // touch 0: now 1 is LRU
    c.put(99, 99);            // evicts 1
    EXPECT_FALSE(c.get(1, v));
    EXPECT_TRUE(c.get(0, v));
    EXPECT_TRUE(c.get(99, v));
    EXPECT_EQ(c.evictions(), 1u);
}

TEST(SlabLru, CapacityBoundsSize)
{
    SlabLruCache c(128);
    for (KeyId k = 0; k < 1000; ++k)
        c.put(k, k);
    EXPECT_EQ(c.size(), 128u);
    EXPECT_EQ(c.evictions(), 1000u - 128u);
}

TEST(SlabLru, LruKeyTracksOrder)
{
    SlabLruCache c(3);
    KeyId lru;
    EXPECT_FALSE(c.lruKey(lru));
    c.put(1, 1);
    c.put(2, 2);
    c.put(3, 3);
    ASSERT_TRUE(c.lruKey(lru));
    EXPECT_EQ(lru, 1u);
    Value v;
    c.get(1, v); // 1 becomes MRU; 2 becomes LRU
    ASSERT_TRUE(c.lruKey(lru));
    EXPECT_EQ(lru, 2u);
}

TEST(SlabLru, EraseFreesSlotForReuse)
{
    SlabLruCache c(2);
    c.put(1, 1);
    c.put(2, 2);
    ASSERT_TRUE(c.erase(1));
    c.put(3, 3); // no eviction needed
    EXPECT_EQ(c.evictions(), 0u);
    Value v;
    EXPECT_TRUE(c.get(2, v));
    EXPECT_TRUE(c.get(3, v));
}

TEST(SlabLru, UpdateDoesNotEvict)
{
    SlabLruCache c(2);
    c.put(1, 1);
    c.put(2, 2);
    c.put(1, 10); // overwrite, not insert
    EXPECT_EQ(c.evictions(), 0u);
    Value v;
    EXPECT_TRUE(c.get(2, v));
    ASSERT_TRUE(c.get(1, v));
    EXPECT_EQ(v, 10u);
}

TEST(SlabLru, TtlExpiresLazily)
{
    SlabLruCache c(8);
    c.putWithTtl(1, 100, 1000);
    Value v;
    EXPECT_TRUE(c.get(1, v, 999));
    EXPECT_EQ(v, 100u);
    // Past the deadline the entry is gone and its slot reclaimed.
    EXPECT_FALSE(c.get(1, v, 1000));
    EXPECT_EQ(c.size(), 0u);
    EXPECT_EQ(c.expirations(), 1u);
}

TEST(SlabLru, NoTtlNeverExpires)
{
    SlabLruCache c(8);
    c.put(1, 100);
    Value v;
    EXPECT_TRUE(c.get(1, v, ~ddp::sim::Tick{0} - 1));
}

TEST(SlabLru, OverwriteClearsTtl)
{
    SlabLruCache c(8);
    c.putWithTtl(1, 100, 1000);
    c.put(1, 200); // plain put: entry no longer expires
    Value v;
    EXPECT_TRUE(c.get(1, v, 5000));
    EXPECT_EQ(v, 200u);
}

TEST(SlabLru, ExpireSweepReclaimsBatch)
{
    SlabLruCache c(16);
    for (KeyId k = 0; k < 10; ++k)
        c.putWithTtl(k, k, 100 + k); // staggered deadlines
    c.put(99, 99);                   // immortal
    EXPECT_EQ(c.expireSweep(105, 100), 6u); // deadlines 100..105
    EXPECT_EQ(c.size(), 5u);
    Value v;
    EXPECT_TRUE(c.get(99, v, 1000));
}

TEST(SlabLru, HitMissCounters)
{
    SlabLruCache c(8);
    c.put(1, 1);
    Value v;
    c.get(1, v, 0);
    c.get(2, v, 0);
    c.putWithTtl(3, 3, 10);
    c.get(3, v, 20); // expired: miss
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 2u);
}
