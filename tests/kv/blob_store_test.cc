/**
 * @file
 * Unit tests for the byte-string blob store with slab-class
 * allocation.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "kv/blob_store.hh"
#include "sim/random.hh"

using namespace ddp::kv;

TEST(BlobStore, PutGetRoundTrip)
{
    BlobStore s;
    ASSERT_TRUE(s.put(1, "hello"));
    std::string out;
    ASSERT_TRUE(s.get(1, out));
    EXPECT_EQ(out, "hello");
    EXPECT_EQ(s.size(), 1u);
}

TEST(BlobStore, MissingKeyMisses)
{
    BlobStore s;
    std::string out;
    EXPECT_FALSE(s.get(42, out));
    EXPECT_FALSE(s.erase(42));
}

TEST(BlobStore, BinarySafeValues)
{
    BlobStore s;
    std::string value("\x00\x01\xff payload \x00 tail", 18);
    ASSERT_TRUE(s.put(9, value));
    std::string out;
    ASSERT_TRUE(s.get(9, out));
    EXPECT_EQ(out, value);
    EXPECT_EQ(out.size(), 18u);
}

TEST(BlobStore, OverwriteSameClassReusesChunk)
{
    BlobStore s;
    s.put(1, std::string(40, 'a'));
    std::size_t alloc = s.allocatedBytes();
    s.put(1, std::string(50, 'b')); // same 64 B class
    EXPECT_EQ(s.allocatedBytes(), alloc);
    std::string out;
    s.get(1, out);
    EXPECT_EQ(out, std::string(50, 'b'));
}

TEST(BlobStore, OverwriteAcrossClassesMovesChunk)
{
    BlobStore s;
    s.put(1, std::string(40, 'a'));      // 64 B class
    s.put(1, std::string(100, 'b'));     // 128 B class
    std::string out;
    ASSERT_TRUE(s.get(1, out));
    EXPECT_EQ(out.size(), 100u);
    EXPECT_EQ(s.size(), 1u);
    // The freed 64 B chunk is recycled for the next small value.
    std::size_t alloc = s.allocatedBytes();
    s.put(2, "tiny");
    EXPECT_EQ(s.allocatedBytes(), alloc);
}

TEST(BlobStore, EraseRecyclesChunks)
{
    BlobStore s;
    s.put(1, std::string(30, 'x'));
    std::size_t alloc = s.allocatedBytes();
    ASSERT_TRUE(s.erase(1));
    EXPECT_EQ(s.size(), 0u);
    EXPECT_EQ(s.valueBytes(), 0u);
    s.put(2, std::string(30, 'y'));
    EXPECT_EQ(s.allocatedBytes(), alloc); // reused, not grown
}

TEST(BlobStore, RejectsOversizedValues)
{
    BlobStore s(256);
    EXPECT_FALSE(s.put(1, std::string(300, 'x')));
    EXPECT_EQ(s.size(), 0u);
    EXPECT_TRUE(s.put(1, std::string(256, 'x')));
}

TEST(BlobStore, AppendGrowsValue)
{
    BlobStore s;
    s.put(1, "foo");
    ASSERT_TRUE(s.append(1, "bar"));
    std::string out;
    s.get(1, out);
    EXPECT_EQ(out, "foobar");
    EXPECT_FALSE(s.append(2, "x")); // absent key
}

TEST(BlobStore, AccountingTracksBytes)
{
    BlobStore s;
    s.put(1, std::string(10, 'a'));
    s.put(2, std::string(100, 'b'));
    EXPECT_EQ(s.valueBytes(), 110u);
    EXPECT_EQ(s.allocatedBytes(), 64u + 128u);
    EXPECT_GE(s.slabClasses(), 2u);
}

TEST(BlobStore, ClearResetsEverything)
{
    BlobStore s;
    for (KeyId k = 0; k < 50; ++k)
        s.put(k, std::string(20, 'z'));
    s.clear();
    EXPECT_EQ(s.size(), 0u);
    EXPECT_EQ(s.allocatedBytes(), 0u);
    std::string out;
    EXPECT_FALSE(s.get(0, out));
    EXPECT_TRUE(s.put(0, "again"));
}

TEST(BlobStore, DifferentialAgainstStdMap)
{
    BlobStore s;
    std::map<KeyId, std::string> ref;
    ddp::sim::Pcg32 rng(777, 1);
    for (int i = 0; i < 20000; ++i) {
        KeyId key = rng.nextBounded(500);
        switch (rng.nextBounded(4)) {
          case 0:
          case 1: {
            std::string value(rng.nextBounded(200) + 1,
                              static_cast<char>('a' + (i % 26)));
            ASSERT_TRUE(s.put(key, value));
            ref[key] = value;
            break;
          }
          case 2: {
            std::string got;
            bool have = s.get(key, got);
            auto it = ref.find(key);
            ASSERT_EQ(have, it != ref.end()) << "iter " << i;
            if (have) {
                ASSERT_EQ(got, it->second) << "iter " << i;
            }
            break;
          }
          case 3:
            ASSERT_EQ(s.erase(key), ref.erase(key) > 0) << "iter " << i;
            break;
        }
    }
    EXPECT_EQ(s.size(), ref.size());
}
