/**
 * @file
 * Parameterized conformance tests run against every store backend,
 * plus a randomized differential test against std::map.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "kv/store.hh"
#include "sim/random.hh"

using namespace ddp::kv;

class StoreConformance : public ::testing::TestWithParam<StoreKind>
{
  protected:
    void SetUp() override { store = makeStore(GetParam()); }
    std::unique_ptr<Store> store;
};

TEST_P(StoreConformance, EmptyStore)
{
    Value v;
    EXPECT_EQ(store->size(), 0u);
    EXPECT_FALSE(store->get(42, v));
    EXPECT_FALSE(store->erase(42));
}

TEST_P(StoreConformance, PutThenGet)
{
    store->put(1, 100);
    Value v = 0;
    EXPECT_TRUE(store->get(1, v));
    EXPECT_EQ(v, 100u);
    EXPECT_EQ(store->size(), 1u);
}

TEST_P(StoreConformance, OverwriteKeepsSingleEntry)
{
    store->put(1, 100);
    store->put(1, 200);
    Value v = 0;
    EXPECT_TRUE(store->get(1, v));
    EXPECT_EQ(v, 200u);
    EXPECT_EQ(store->size(), 1u);
}

TEST_P(StoreConformance, EraseRemoves)
{
    store->put(1, 100);
    store->put(2, 200);
    EXPECT_TRUE(store->erase(1));
    Value v;
    EXPECT_FALSE(store->get(1, v));
    EXPECT_TRUE(store->get(2, v));
    EXPECT_EQ(store->size(), 1u);
    EXPECT_FALSE(store->erase(1));
}

TEST_P(StoreConformance, ClearEmpties)
{
    for (KeyId k = 0; k < 100; ++k)
        store->put(k, k);
    store->clear();
    EXPECT_EQ(store->size(), 0u);
    Value v;
    EXPECT_FALSE(store->get(50, v));
    // Store remains usable after clear.
    store->put(7, 7);
    EXPECT_TRUE(store->get(7, v));
}

TEST_P(StoreConformance, ManyKeysAllRetrievable)
{
    // SlabLru is lossy beyond its capacity; stay within it.
    const KeyId n = 10000;
    for (KeyId k = 0; k < n; ++k)
        store->put(k, k * 3);
    EXPECT_EQ(store->size(), n);
    for (KeyId k = 0; k < n; ++k) {
        Value v = 0;
        ASSERT_TRUE(store->get(k, v)) << "key " << k;
        ASSERT_EQ(v, k * 3);
    }
}

TEST_P(StoreConformance, SparseKeysWork)
{
    for (KeyId k = 0; k < 64; ++k)
        store->put(k * 1'000'003ULL, k);
    for (KeyId k = 0; k < 64; ++k) {
        Value v = 0;
        ASSERT_TRUE(store->get(k * 1'000'003ULL, v));
        ASSERT_EQ(v, k);
    }
}

TEST_P(StoreConformance, ProbeCountNonZeroAfterOp)
{
    store->put(5, 5);
    Value v;
    store->get(5, v);
    EXPECT_GT(store->lastProbes(), 0u);
}

TEST_P(StoreConformance, KindAndNameConsistent)
{
    EXPECT_EQ(store->kind(), GetParam());
    EXPECT_STREQ(store->name(), storeKindName(GetParam()));
}

TEST_P(StoreConformance, DifferentialAgainstStdMap)
{
    // Randomized puts/gets/erases mirrored into std::map; within the
    // SlabLru capacity every backend must agree exactly.
    ddp::sim::Pcg32 rng(2024, static_cast<int>(GetParam()));
    std::map<KeyId, Value> ref;
    for (int i = 0; i < 30000; ++i) {
        KeyId key = rng.nextBounded(3000);
        switch (rng.nextBounded(4)) {
          case 0:
          case 1: { // put
            Value val = rng.nextU64();
            store->put(key, val);
            ref[key] = val;
            break;
          }
          case 2: { // get
            Value got = 0;
            bool have = store->get(key, got);
            auto it = ref.find(key);
            ASSERT_EQ(have, it != ref.end()) << "iter " << i;
            if (have) {
                ASSERT_EQ(got, it->second) << "iter " << i;
            }
            break;
          }
          case 3: { // erase
            bool removed = store->erase(key);
            ASSERT_EQ(removed, ref.erase(key) > 0) << "iter " << i;
            break;
          }
        }
        if (i % 1000 == 0) {
            ASSERT_EQ(store->size(), ref.size()) << "iter " << i;
        }
    }
    EXPECT_EQ(store->size(), ref.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, StoreConformance,
    ::testing::Values(StoreKind::HashTable, StoreKind::SkipList,
                      StoreKind::BTree, StoreKind::BPlusTree,
                      StoreKind::SlabLru),
    [](const ::testing::TestParamInfo<StoreKind> &info) {
        return storeKindName(info.param);
    });

TEST(StoreFactory, MakesEveryKind)
{
    for (StoreKind k :
         {StoreKind::HashTable, StoreKind::SkipList, StoreKind::BTree,
          StoreKind::BPlusTree, StoreKind::SlabLru}) {
        auto s = makeStore(k);
        ASSERT_NE(s, nullptr);
        EXPECT_EQ(s->kind(), k);
    }
}
