/**
 * @file
 * Unit tests for the sweep thread pool and the deterministic sweep
 * runner: shutdown semantics, exception propagation, result ordering,
 * and per-item seed derivation.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "sim/sweep_runner.hh"
#include "sim/thread_pool.hh"

using namespace ddp::sim;

TEST(ThreadPool, RunsAllSubmittedJobs)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 1000; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, DestructorDrainsRemainingJobs)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 200; ++i)
            pool.submit([&count] { ++count; });
        // No wait(): shutdown must still run every queued job.
    }
    EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(3);
    std::atomic<int> count{0};
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 50; ++i)
            pool.submit([&count] { ++count; });
        pool.wait();
        EXPECT_EQ(count.load(), 50 * (round + 1));
    }
}

TEST(ThreadPool, FloorsAtOneThread)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), 1u);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, HardwareThreadsIsPositive)
{
    EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

TEST(SweepRunner, MapReturnsResultsInIndexOrder)
{
    SweepRunner runner(4);
    std::vector<std::uint64_t> results =
        runner.map(100, [](std::size_t i) {
            // Uneven work so completion order differs from index order.
            std::uint64_t acc = i;
            for (std::size_t k = 0; k < (i % 7) * 1000; ++k)
                acc = splitmix64(acc);
            return i * i + (acc & 0);
        });
    ASSERT_EQ(results.size(), 100u);
    for (std::size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(results[i], i * i);
}

TEST(SweepRunner, SerialAndParallelAgree)
{
    auto work = [](std::size_t i) {
        std::uint64_t acc = sweepSeed(42, i);
        for (int k = 0; k < 100; ++k)
            acc = splitmix64(acc);
        return acc;
    };
    std::vector<std::uint64_t> serial = SweepRunner(1).map(32, work);
    std::vector<std::uint64_t> parallel = SweepRunner(8).map(32, work);
    EXPECT_EQ(serial, parallel);
}

TEST(SweepRunner, FirstExceptionByIndexPropagates)
{
    SweepRunner runner(4);
    try {
        runner.map(16, [](std::size_t i) {
            if (i == 11 || i == 3)
                throw std::runtime_error("item " + std::to_string(i));
            return i;
        });
        FAIL() << "map() should have thrown";
    } catch (const std::runtime_error &e) {
        // Serial semantics: the lowest-index failure surfaces, no
        // matter which worker finished first.
        EXPECT_STREQ(e.what(), "item 3");
    }
}

TEST(SweepRunner, SingleItemRunsInlineOnCallingThread)
{
    SweepRunner runner(8);
    std::thread::id caller = std::this_thread::get_id();
    std::vector<std::thread::id> ids =
        runner.map(1, [](std::size_t) {
            return std::this_thread::get_id();
        });
    ASSERT_EQ(ids.size(), 1u);
    EXPECT_EQ(ids[0], caller);
}

TEST(SweepRunner, JobsZeroResolvesToHardwareThreads)
{
    EXPECT_EQ(SweepRunner(0).jobs(), ThreadPool::hardwareThreads());
    EXPECT_EQ(SweepRunner(3).jobs(), 3u);
}

TEST(SweepSeed, SplitmixMatchesReferenceVector)
{
    // First output of the reference SplitMix64 stream seeded with 0.
    EXPECT_EQ(splitmix64(0), 0xE220A8397B1DCDAFULL);
}

TEST(SweepSeed, StableAndDistinctPerItem)
{
    EXPECT_EQ(sweepSeed(42, 7), sweepSeed(42, 7));
    EXPECT_NE(sweepSeed(42, 0), sweepSeed(42, 1));
    EXPECT_NE(sweepSeed(42, 0), sweepSeed(43, 0));
    // The base seed itself must not leak through as some item's seed.
    for (std::uint64_t i = 0; i < 64; ++i)
        EXPECT_NE(sweepSeed(42, i), 42u);
}
