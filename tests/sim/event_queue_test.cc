/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/sweep_runner.hh" // splitmix64

using namespace ddp::sim;

TEST(EventQueue, StartsAtTimeZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.pendingEvents(), 0u);
    EXPECT_EQ(eq.executedEvents(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NowAdvancesToEventTime)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(123, [&] { seen = eq.now(); });
    eq.run();
    EXPECT_EQ(seen, 123u);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.schedule(2, [&] {
            ++fired;
            eq.scheduleIn(3, [&] { ++fired; });
        });
    });
    eq.run();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.now(), 5u);
}

TEST(EventQueue, ScheduleInUsesCurrentTime)
{
    EventQueue eq;
    Tick inner = 0;
    eq.schedule(100, [&] {
        eq.scheduleIn(50, [&] { inner = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(inner, 150u);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.schedule(30, [&] { ++fired; });
    eq.runUntil(20);
    EXPECT_EQ(fired, 2); // events at t<=20 run
    EXPECT_EQ(eq.now(), 20u);
    EXPECT_EQ(eq.pendingEvents(), 1u);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenIdle)
{
    EventQueue eq;
    eq.runUntil(500);
    EXPECT_EQ(eq.now(), 500u);
}

TEST(EventQueue, ClearDropsPending)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.clear();
    eq.run();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, ExecutedEventsCounts)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(static_cast<Tick>(i), [] {});
    eq.run();
    EXPECT_EQ(eq.executedEvents(), 7u);
}

TEST(Timers, FireLikeEvents)
{
    EventQueue eq;
    int fired = 0;
    TimerId id = eq.scheduleTimerIn(100, [&] { ++fired; });
    EXPECT_NE(id, kNoTimer);
    EXPECT_TRUE(eq.timerPending(id));
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(eq.timerPending(id));
}

TEST(Timers, CancelledTimerNeverFires)
{
    EventQueue eq;
    int fired = 0;
    TimerId id = eq.scheduleTimer(100, [&] { ++fired; });
    EXPECT_TRUE(eq.cancelTimer(id));
    EXPECT_FALSE(eq.timerPending(id));
    EXPECT_EQ(eq.pendingEvents(), 0u);
    eq.run();
    EXPECT_EQ(fired, 0);
    // Cancelled entries are purged without advancing time.
    EXPECT_EQ(eq.now(), 0u);
}

TEST(Timers, CancelIsIdempotentAndRejectsUnknownIds)
{
    EventQueue eq;
    TimerId id = eq.scheduleTimer(100, [] {});
    EXPECT_TRUE(eq.cancelTimer(id));
    EXPECT_FALSE(eq.cancelTimer(id));
    EXPECT_FALSE(eq.cancelTimer(kNoTimer));
    EXPECT_FALSE(eq.cancelTimer(987654));
}

TEST(Timers, CancellingOneLeavesOthersTicking)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleTimer(10, [&] { order.push_back(1); });
    TimerId victim = eq.scheduleTimer(20, [&] { order.push_back(2); });
    eq.scheduleTimer(30, [&] { order.push_back(3); });
    eq.cancelTimer(victim);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Timers, FiredTimerCannotBeCancelled)
{
    EventQueue eq;
    TimerId id = eq.scheduleTimer(10, [] {});
    eq.run();
    EXPECT_FALSE(eq.cancelTimer(id));
}

TEST(Timers, EventsAndTimersInterleaveFifoPerTick)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(1); });
    eq.scheduleTimer(10, [&] { order.push_back(2); });
    eq.schedule(10, [&] { order.push_back(3); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Timers, CancelFromInsideAnEarlierEvent)
{
    EventQueue eq;
    int fired = 0;
    TimerId id = eq.scheduleTimer(50, [&] { ++fired; });
    eq.schedule(20, [&] { eq.cancelTimer(id); });
    eq.run();
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(eq.now(), 20u);
}

TEST(Timers, RunUntilIgnoresCancelledHead)
{
    EventQueue eq;
    int fired = 0;
    TimerId id = eq.scheduleTimer(100, [&] { ++fired; });
    eq.schedule(300, [&] { ++fired; });
    eq.cancelTimer(id);
    eq.runUntil(200);
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(eq.now(), 200u);
    eq.run();
    EXPECT_EQ(fired, 1);
}

TEST(Timers, ClearResetsTimerState)
{
    EventQueue eq;
    TimerId id = eq.scheduleTimer(100, [] {});
    eq.clear();
    EXPECT_FALSE(eq.timerPending(id));
    EXPECT_FALSE(eq.cancelTimer(id));
    EXPECT_EQ(eq.pendingEvents(), 0u);
}

TEST(Ticks, UnitConversions)
{
    EXPECT_EQ(kNanosecond, 1000u);
    EXPECT_EQ(kMicrosecond, 1000u * 1000u);
    EXPECT_DOUBLE_EQ(ticksToNs(1500), 1.5);
    EXPECT_DOUBLE_EQ(ticksToUs(2 * kMicrosecond), 2.0);
    EXPECT_DOUBLE_EQ(ticksToSeconds(kSecond), 1.0);
    // A 2 GHz core cycle is 500 ps.
    EXPECT_EQ(cyclePeriod(2'000'000'000ull), 500u);
}

TEST(Timers, StaleHandleAfterSlotReuseIsRejected)
{
    EventQueue eq;
    int fired = 0;
    TimerId a = eq.scheduleTimer(10, [&] { ++fired; });
    eq.run(); // a fires; its slot is recycled with a bumped generation
    TimerId b = eq.scheduleTimer(20, [&] { ++fired; });
    EXPECT_NE(a, b);
    EXPECT_FALSE(eq.timerPending(a));
    EXPECT_FALSE(eq.cancelTimer(a)); // must not hit b's slot
    EXPECT_TRUE(eq.timerPending(b));
    eq.run();
    EXPECT_EQ(fired, 2);
}

namespace {

/** Self-driving churn: every tick schedules fresh timers and cancels a
 *  random pending one, exercising slot reuse and generation tags under
 *  thousands of cancel/reschedule cycles. */
struct TimerChurn
{
    explicit TimerChurn(EventQueue &q) : eq(q) {}

    void
    step()
    {
        if (++rounds > kRounds)
            return;
        for (int k = 0; k < 2; ++k) {
            ++scheduled;
            live.push_back(eq.scheduleTimerIn(
                1 + state() % 50, [this] { ++fired; }));
        }
        if (!live.empty() && state() % 2 == 0) {
            std::size_t j = state() % live.size();
            if (eq.cancelTimer(live[j]))
                ++cancelledOk;
            live.erase(live.begin() + j);
        }
        eq.scheduleIn(1, [this] { step(); });
    }

    /** Deterministic splitmix-driven choice stream. */
    std::uint64_t state() { return rngState = splitmix64(rngState); }

    static constexpr int kRounds = 3000;
    EventQueue &eq;
    std::vector<TimerId> live;
    std::uint64_t rngState = 0x1234;
    std::uint64_t scheduled = 0, cancelledOk = 0, fired = 0;
    int rounds = 0;
};

} // namespace

TEST(Timers, CancelRescheduleStress)
{
    EventQueue eq;
    TimerChurn churn(eq);
    eq.scheduleIn(0, [&churn] { churn.step(); });
    eq.run();
    EXPECT_EQ(churn.scheduled, 2u * TimerChurn::kRounds);
    // Every scheduled timer either fired or was successfully cancelled
    // while still pending — never both, never neither.
    EXPECT_EQ(churn.fired + churn.cancelledOk, churn.scheduled);
    EXPECT_GT(churn.cancelledOk, 0u);
    EXPECT_EQ(eq.pendingEvents(), 0u);
}
