/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace ddp::sim;

TEST(EventQueue, StartsAtTimeZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.pendingEvents(), 0u);
    EXPECT_EQ(eq.executedEvents(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NowAdvancesToEventTime)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(123, [&] { seen = eq.now(); });
    eq.run();
    EXPECT_EQ(seen, 123u);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.schedule(2, [&] {
            ++fired;
            eq.scheduleIn(3, [&] { ++fired; });
        });
    });
    eq.run();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.now(), 5u);
}

TEST(EventQueue, ScheduleInUsesCurrentTime)
{
    EventQueue eq;
    Tick inner = 0;
    eq.schedule(100, [&] {
        eq.scheduleIn(50, [&] { inner = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(inner, 150u);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(20, [&] { ++fired; });
    eq.schedule(30, [&] { ++fired; });
    eq.runUntil(20);
    EXPECT_EQ(fired, 2); // events at t<=20 run
    EXPECT_EQ(eq.now(), 20u);
    EXPECT_EQ(eq.pendingEvents(), 1u);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenIdle)
{
    EventQueue eq;
    eq.runUntil(500);
    EXPECT_EQ(eq.now(), 500u);
}

TEST(EventQueue, ClearDropsPending)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.clear();
    eq.run();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, ExecutedEventsCounts)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(static_cast<Tick>(i), [] {});
    eq.run();
    EXPECT_EQ(eq.executedEvents(), 7u);
}

TEST(Ticks, UnitConversions)
{
    EXPECT_EQ(kNanosecond, 1000u);
    EXPECT_EQ(kMicrosecond, 1000u * 1000u);
    EXPECT_DOUBLE_EQ(ticksToNs(1500), 1.5);
    EXPECT_DOUBLE_EQ(ticksToUs(2 * kMicrosecond), 2.0);
    EXPECT_DOUBLE_EQ(ticksToSeconds(kSecond), 1.0);
    // A 2 GHz core cycle is 500 ps.
    EXPECT_EQ(cyclePeriod(2'000'000'000ull), 500u);
}
