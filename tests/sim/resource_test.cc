/**
 * @file
 * Unit tests for the FIFO resource timing models.
 */

#include <gtest/gtest.h>

#include "sim/resource.hh"

using namespace ddp::sim;

TEST(FifoResource, IdleResourceServesImmediately)
{
    FifoResource r;
    EXPECT_EQ(r.acquire(100, 50), 150u);
    EXPECT_EQ(r.freeAt(), 150u);
}

TEST(FifoResource, BackToBackQueues)
{
    FifoResource r;
    EXPECT_EQ(r.acquire(0, 10), 10u);
    // Arrives at t=5 while busy until 10: starts at 10, done at 20.
    EXPECT_EQ(r.acquire(5, 10), 20u);
    EXPECT_EQ(r.acquire(5, 10), 30u);
}

TEST(FifoResource, GapLeavesResourceIdle)
{
    FifoResource r;
    r.acquire(0, 10);
    EXPECT_EQ(r.acquire(100, 10), 110u);
}

TEST(FifoResource, QueueDelayReflectsBacklog)
{
    FifoResource r;
    r.acquire(0, 100);
    EXPECT_EQ(r.queueDelay(30), 70u);
    EXPECT_EQ(r.queueDelay(100), 0u);
    EXPECT_EQ(r.queueDelay(200), 0u);
}

TEST(FifoResource, TracksBusyAndWait)
{
    FifoResource r;
    r.acquire(0, 10);
    r.acquire(0, 10); // waits 10
    EXPECT_EQ(r.busyTicks(), 20u);
    EXPECT_EQ(r.waitTicks(), 10u);
    EXPECT_EQ(r.count(), 2u);
}

TEST(FifoResource, ResetClearsTimingNotStats)
{
    FifoResource r;
    r.acquire(0, 50);
    r.reset();
    EXPECT_EQ(r.freeAt(), 0u);
    EXPECT_EQ(r.count(), 1u);
}

TEST(ResourcePool, ParallelServersOverlap)
{
    ResourcePool pool(2);
    EXPECT_EQ(pool.acquire(0, 10), 10u);
    EXPECT_EQ(pool.acquire(0, 10), 10u); // second server
    EXPECT_EQ(pool.acquire(0, 10), 20u); // queues behind one of them
}

TEST(ResourcePool, PicksEarliestFree)
{
    ResourcePool pool(2);
    pool.acquire(0, 100); // server A busy till 100
    pool.acquire(0, 10);  // server B busy till 10
    // Arrival at 20: B free at 10 -> done at 30.
    EXPECT_EQ(pool.acquire(20, 10), 30u);
}

TEST(ResourcePool, EarliestFreeAggregates)
{
    ResourcePool pool(3);
    pool.acquire(0, 30);
    pool.acquire(0, 20);
    EXPECT_EQ(pool.earliestFree(), 0u); // third server never used
    pool.acquire(0, 10);
    EXPECT_EQ(pool.earliestFree(), 10u);
}

TEST(ResourcePool, BusyAndCountAggregate)
{
    ResourcePool pool(4);
    for (int i = 0; i < 8; ++i)
        pool.acquire(0, 5);
    EXPECT_EQ(pool.busyTicks(), 40u);
    EXPECT_EQ(pool.count(), 8u);
    EXPECT_EQ(pool.size(), 4u);
}
