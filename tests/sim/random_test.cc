/**
 * @file
 * Unit and statistical tests for the RNG and distributions.
 */

#include <gtest/gtest.h>

#include <map>

#include "sim/random.hh"

using namespace ddp::sim;

TEST(Pcg32, DeterministicForSameSeed)
{
    Pcg32 a(42, 7), b(42, 7);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.nextU32(), b.nextU32());
}

TEST(Pcg32, DifferentStreamsDiffer)
{
    Pcg32 a(42, 1), b(42, 2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.nextU32() == b.nextU32())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Pcg32, BoundedStaysInRange)
{
    Pcg32 rng(1, 1);
    for (int i = 0; i < 10000; ++i) {
        std::uint32_t v = rng.nextBounded(17);
        ASSERT_LT(v, 17u);
    }
}

TEST(Pcg32, BoundedCoversAllValues)
{
    Pcg32 rng(3, 3);
    std::map<std::uint32_t, int> seen;
    for (int i = 0; i < 5000; ++i)
        seen[rng.nextBounded(8)]++;
    EXPECT_EQ(seen.size(), 8u);
    for (const auto &[v, n] : seen)
        EXPECT_GT(n, 5000 / 8 / 3) << "value " << v << " undersampled";
}

TEST(Pcg32, DoubleInUnitInterval)
{
    Pcg32 rng(9, 9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Zipfian, StaysInRange)
{
    Pcg32 rng(5, 5);
    ZipfianGenerator zipf(1000, 0.99);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(zipf.next(rng), 1000u);
}

TEST(Zipfian, ItemZeroIsMostPopular)
{
    Pcg32 rng(5, 6);
    ZipfianGenerator zipf(10000, 0.99);
    std::map<std::uint64_t, int> hist;
    for (int i = 0; i < 100000; ++i)
        hist[zipf.next(rng)]++;
    // Item 0 must dominate any mid-range item by a wide margin.
    EXPECT_GT(hist[0], hist[50] * 5);
    EXPECT_GT(hist[0], 5000); // >5% of draws at theta 0.99
}

TEST(Zipfian, SkewParameterMatters)
{
    Pcg32 r1(5, 7), r2(5, 7);
    ZipfianGenerator strong(10000, 0.99), weak(10000, 0.5);
    int hot_strong = 0, hot_weak = 0;
    for (int i = 0; i < 50000; ++i) {
        if (strong.next(r1) == 0)
            ++hot_strong;
        if (weak.next(r2) == 0)
            ++hot_weak;
    }
    EXPECT_GT(hot_strong, hot_weak * 4);
}

TEST(Zipfian, SingleItemAlwaysZero)
{
    Pcg32 rng(1, 2);
    ZipfianGenerator zipf(1, 0.99);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(zipf.next(rng), 0u);
}

TEST(Zipfian, DeterministicGivenRngState)
{
    Pcg32 a(11, 4), b(11, 4);
    ZipfianGenerator zipf(5000, 0.9);
    for (int i = 0; i < 500; ++i)
        ASSERT_EQ(zipf.next(a), zipf.next(b));
}

// --- theta >= 1.0 (harmonic / super-skewed paths) --------------------------
// YCSB's standard formula divides by (1 - theta); theta == 1.0 needs the
// harmonic closed form and theta > 1.0 a negative alpha. All three paths
// must stay in range and order by skew.

TEST(Zipfian, ThetaSweepStaysInRange)
{
    for (double theta : {0.99, 1.0, 1.2}) {
        Pcg32 rng(17, 3);
        ZipfianGenerator zipf(1000, theta);
        for (int i = 0; i < 20000; ++i)
            ASSERT_LT(zipf.next(rng), 1000u) << "theta " << theta;
    }
}

TEST(Zipfian, ThetaOneIsFiniteAndSkewed)
{
    Pcg32 rng(17, 4);
    ZipfianGenerator zipf(10000, 1.0);
    std::map<std::uint64_t, int> hist;
    for (int i = 0; i < 100000; ++i)
        hist[zipf.next(rng)]++;
    EXPECT_GT(hist[0], hist[50] * 5);
    EXPECT_GT(hist[0], 5000);
}

TEST(Zipfian, HigherThetaIsMoreSkewed)
{
    Pcg32 r1(17, 5), r2(17, 5), r3(17, 5);
    ZipfianGenerator z99(10000, 0.99), z100(10000, 1.0),
        z120(10000, 1.2);
    int hot99 = 0, hot100 = 0, hot120 = 0;
    for (int i = 0; i < 50000; ++i) {
        hot99 += z99.next(r1) == 0;
        hot100 += z100.next(r2) == 0;
        hot120 += z120.next(r3) == 0;
    }
    EXPECT_GT(hot100, hot99);
    EXPECT_GT(hot120, hot100);
}

TEST(Zipfian, SingleItemThetaOneEdge)
{
    // n == 1 with theta == 1.0 once divided 0/0 computing eta; the
    // sole-item branch must win over the harmonic branch.
    Pcg32 rng(17, 6);
    ZipfianGenerator zipf(1, 1.0);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(zipf.next(rng), 0u);
}
