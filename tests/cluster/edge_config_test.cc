/**
 * @file
 * Edge-of-configuration tests: minimal clusters, replication factor 1
 * (no redundancy at all), single-client runs, tiny key spaces, and
 * store-backend plumbing through the cluster config.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.hh"

using namespace ddp;
using namespace ddp::cluster;
using core::Consistency;
using core::DdpModel;
using core::Persistency;

namespace {

ClusterConfig
tinyConfig(DdpModel m)
{
    ClusterConfig c;
    c.model = m;
    c.numServers = 2;
    c.clientsPerServer = 2;
    c.keyCount = 64;
    c.workload = workload::WorkloadSpec::ycsbA(64);
    c.warmup = 100 * sim::kMicrosecond;
    c.measure = 300 * sim::kMicrosecond;
    c.seed = 3;
    return c;
}

} // namespace

TEST(EdgeConfig, TwoServerClusterWorks)
{
    for (Persistency p :
         {Persistency::Strict, Persistency::Synchronous,
          Persistency::ReadEnforced, Persistency::Eventual}) {
        Cluster c(tinyConfig({Consistency::Linearizable, p}));
        RunResult r = c.run();
        EXPECT_GT(r.reads + r.writes, 100u)
            << core::persistencyName(p);
    }
}

TEST(EdgeConfig, ReplicationFactorOneMeansNoFollowers)
{
    // R=1: each key lives on exactly one node; invalidation rounds have
    // nobody to wait for and writes complete at local speed.
    ClusterConfig cfg = tinyConfig(
        {Consistency::Linearizable, Persistency::Synchronous});
    cfg.numServers = 3;
    cfg.replicationFactor = 1;
    Cluster c(cfg);
    RunResult r = c.run();
    EXPECT_GT(r.writes, 100u);
    // No INV/ACK/VAL traffic at all: every op is local to the key's
    // only replica (clients route there directly).
    EXPECT_EQ(r.counters["inv_sent"], 0u);
    // Writes complete well under the replicated write's ~3 us: just
    // the local admission, store access, and persist.
    EXPECT_LT(r.meanWriteNs, 2000.0);
}

TEST(EdgeConfig, SingleClientRuns)
{
    ClusterConfig cfg = tinyConfig(
        {Consistency::Causal, Persistency::Synchronous});
    cfg.clientsPerServer = 1;
    cfg.numServers = 2;
    Cluster c(cfg);
    RunResult r = c.run();
    EXPECT_GT(r.reads + r.writes, 50u);
}

TEST(EdgeConfig, TinyKeySpaceMaximizesContention)
{
    // Every request hits one of 4 keys: heavy per-key serialization,
    // but the run must still make progress.
    ClusterConfig cfg = tinyConfig(
        {Consistency::Linearizable, Persistency::Synchronous});
    cfg.keyCount = 4;
    cfg.workload = workload::WorkloadSpec::ycsbA(4);
    Cluster c(cfg);
    RunResult r = c.run();
    EXPECT_GT(r.reads + r.writes, 100u);
    EXPECT_GT(r.readsStalledVisibility, 0u);
}

TEST(EdgeConfig, StoreBackendFlowsThroughConfig)
{
    ClusterConfig cfg = tinyConfig(
        {Consistency::Causal, Persistency::Eventual});
    cfg.node.storeKind = kv::StoreKind::BPlusTree;
    Cluster c(cfg);
    EXPECT_EQ(c.node(0).store().kind(), kv::StoreKind::BPlusTree);
    RunResult r = c.run();
    EXPECT_GT(r.reads + r.writes, 100u);
}

TEST(EdgeConfig, ReadOnlyWorkloadNeverPersists)
{
    ClusterConfig cfg = tinyConfig(
        {Consistency::Linearizable, Persistency::Synchronous});
    cfg.workload = workload::WorkloadSpec::ycsbC(64);
    Cluster c(cfg);
    RunResult r = c.run();
    EXPECT_EQ(r.writes, 0u);
    EXPECT_GT(r.reads, 100u);
    EXPECT_EQ(r.persistsIssued, 0u);
}

TEST(EdgeConfig, WorkloadDRunsThroughCluster)
{
    ClusterConfig cfg = tinyConfig(
        {Consistency::Causal, Persistency::Synchronous});
    cfg.workload = workload::WorkloadSpec::ycsbD(64);
    Cluster c(cfg);
    RunResult r = c.run();
    EXPECT_GT(r.reads, r.writes * 5);
}

TEST(EdgeConfig, ZeroMeasureWindowYieldsEmptyResult)
{
    ClusterConfig cfg = tinyConfig(
        {Consistency::Causal, Persistency::Synchronous});
    cfg.measure = 0;
    Cluster c(cfg);
    RunResult r = c.run();
    EXPECT_EQ(r.reads + r.writes, 0u);
    EXPECT_EQ(r.throughput, 0.0);
}
