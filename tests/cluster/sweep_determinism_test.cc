/**
 * @file
 * Bit-reproducibility of parallel sweeps: running the same set of
 * cluster experiments through SweepRunner with 1 job and with 4 jobs
 * must produce identical results field for field. Each run owns its
 * EventQueue and RNG streams, so thread placement cannot perturb any
 * simulated metric (DESIGN.md, "Parallel sweeps stay deterministic").
 */

#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.hh"
#include "sim/sweep_runner.hh"

using namespace ddp;

namespace {

cluster::RunResult
runItem(std::size_t i)
{
    const core::DdpModel models[] = {
        {core::Consistency::Linearizable,
         core::Persistency::Synchronous},
        {core::Consistency::Causal, core::Persistency::Eventual},
        {core::Consistency::Transactional,
         core::Persistency::Synchronous},
        {core::Consistency::Eventual, core::Persistency::Strict},
    };
    cluster::ClusterConfig cfg;
    cfg.model = models[i % 4];
    cfg.numServers = 2;
    cfg.clientsPerServer = 2;
    cfg.keyCount = 500;
    cfg.workload = workload::WorkloadSpec::ycsbA(cfg.keyCount);
    cfg.warmup = 20 * sim::kMicrosecond;
    cfg.measure = 80 * sim::kMicrosecond;
    cfg.seed = sim::sweepSeed(42, i);
    cluster::Cluster c(cfg);
    return c.run();
}

} // namespace

TEST(SweepDeterminism, ParallelSweepMatchesSerialBitForBit)
{
    std::vector<cluster::RunResult> serial =
        sim::SweepRunner(1).map(8, runItem);
    std::vector<cluster::RunResult> parallel =
        sim::SweepRunner(4).map(8, runItem);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE("item " + std::to_string(i));
        const cluster::RunResult &a = serial[i];
        const cluster::RunResult &b = parallel[i];
        // Exact equality, doubles included: the simulated metrics are
        // pure functions of (config, seed). Host-timing fields
        // (wallSeconds) are the only nondeterministic ones.
        EXPECT_EQ(a.throughput, b.throughput);
        EXPECT_EQ(a.meanReadNs, b.meanReadNs);
        EXPECT_EQ(a.meanWriteNs, b.meanWriteNs);
        EXPECT_EQ(a.p50ReadNs, b.p50ReadNs);
        EXPECT_EQ(a.p99ReadNs, b.p99ReadNs);
        EXPECT_EQ(a.p50WriteNs, b.p50WriteNs);
        EXPECT_EQ(a.p99WriteNs, b.p99WriteNs);
        EXPECT_EQ(a.reads, b.reads);
        EXPECT_EQ(a.writes, b.writes);
        EXPECT_EQ(a.messages, b.messages);
        EXPECT_EQ(a.networkBytes, b.networkBytes);
        EXPECT_EQ(a.persistsIssued, b.persistsIssued);
        EXPECT_EQ(a.xactStarted, b.xactStarted);
        EXPECT_EQ(a.xactAborted, b.xactAborted);
        EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
        EXPECT_EQ(a.counters, b.counters);
    }
}

TEST(SweepDeterminism, RepeatedParallelSweepsAgree)
{
    std::vector<cluster::RunResult> first =
        sim::SweepRunner(4).map(4, runItem);
    std::vector<cluster::RunResult> second =
        sim::SweepRunner(4).map(4, runItem);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].throughput, second[i].throughput);
        EXPECT_EQ(first[i].eventsExecuted, second[i].eventsExecuted);
        EXPECT_EQ(first[i].counters, second[i].counters);
    }
}
