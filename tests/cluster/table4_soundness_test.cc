/**
 * @file
 * Table-4 soundness sweep: for every one of the 25 DDP models, run a
 * crash-injected cluster workload and verify that each property the
 * trait matrix *promises* is actually delivered:
 *
 *  - monotonicReads == yes  =>  zero monotonic-read violations,
 *  - nonStaleReads == yes   =>  zero stale reads,
 *  - write-completion-implies-durability (Strict persistency, or
 *    Synchronous bound to Linearizable/Transactional) => zero lost
 *    acknowledged writes.
 *
 * The converse ("no" entries must show violations) depends on the
 * workload actually hitting the window and is exercised by the
 * targeted CrashSignatures tests; here we only assert the sound
 * direction, which must hold for every schedule.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.hh"

using namespace ddp;
using namespace ddp::cluster;
using core::Consistency;
using core::DdpModel;
using core::Persistency;

class Table4Soundness : public ::testing::TestWithParam<DdpModel>
{
};

TEST_P(Table4Soundness, PromisedPropertiesHoldUnderCrash)
{
    const DdpModel model = GetParam();
    core::ModelTraits traits = core::traitsOf(model);

    core::PropertyChecker checker;
    ClusterConfig cfg;
    cfg.model = model;
    cfg.numServers = 3;
    cfg.clientsPerServer = 4;
    cfg.keyCount = 2000;
    cfg.workload = workload::WorkloadSpec::ycsbA(2000);
    cfg.warmup = 200 * sim::kMicrosecond;
    cfg.measure = 600 * sim::kMicrosecond;
    cfg.seed = 11;

    Cluster cluster(cfg);
    cluster.setChecker(&checker);
    cluster.scheduleCrash(cfg.warmup + cfg.measure / 3);
    RunResult r = cluster.run();

    ASSERT_GT(r.reads + r.writes, 500u);

    if (traits.monotonicReads) {
        EXPECT_EQ(r.monotonicViolations, 0u)
            << core::modelName(model)
            << " promises monotonic reads but violated them";
    }
    if (traits.nonStaleReads) {
        EXPECT_EQ(r.staleReads, 0u)
            << core::modelName(model)
            << " promises non-stale reads but served stale data";
    }

    if (core::writesDurableAtCompletion(model)) {
        EXPECT_EQ(r.lostAckedWriteKeys, 0u)
            << core::modelName(model)
            << " completes writes only when durable, yet lost some";
    }
}

INSTANTIATE_TEST_SUITE_P(
    All25, Table4Soundness, ::testing::ValuesIn(core::allModels()),
    [](const ::testing::TestParamInfo<DdpModel> &info) {
        std::string s = core::modelName(info.param);
        std::string out;
        for (char ch : s) {
            if (std::isalnum(static_cast<unsigned char>(ch)))
                out += ch;
            else if (ch == ',')
                out += '_';
        }
        return out;
    });
