/**
 * @file
 * Request-phase attribution invariants.
 *
 * recordOp asserts per-request that the phase spans sum exactly to the
 * end-to-end latency (so any run below already exercises that for
 * every completed request). These tests pin the aggregate identities
 * on top: the phase means sum to the pooled mean latency, stall-heavy
 * models attribute time to the expected phases, and the attached
 * TraceRecorder yields identical timelines for identical runs.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.hh"

using namespace ddp;
using namespace ddp::cluster;
using core::Consistency;
using core::DdpModel;
using core::Persistency;

namespace {

ClusterConfig
smallConfig(DdpModel m)
{
    ClusterConfig c;
    c.model = m;
    c.numServers = 3;
    c.clientsPerServer = 4;
    c.keyCount = 2000;
    c.workload = workload::WorkloadSpec::ycsbA(2000);
    c.warmup = 100 * sim::kMicrosecond;
    c.measure = 400 * sim::kMicrosecond;
    c.seed = 11;
    return c;
}

double
phaseMeanSum(const RunResult &r)
{
    double sum = 0;
    for (const auto &ps : r.phaseBreakdown)
        sum += ps.meanNs;
    return sum;
}

double
pooledMeanNs(const RunResult &r)
{
    double n = static_cast<double>(r.reads + r.writes);
    return (r.meanReadNs * static_cast<double>(r.reads) +
            r.meanWriteNs * static_cast<double>(r.writes)) /
           n;
}

} // namespace

TEST(PhaseBreakdown, MeansSumToPooledMeanAcrossModels)
{
    // One model per consistency level plus the stall-heavy persistency
    // corners; per-request exactness is asserted inside recordOp, so
    // the aggregate check only has to absorb float rounding.
    const DdpModel models[] = {
        {Consistency::Linearizable, Persistency::Strict},
        {Consistency::Linearizable, Persistency::Synchronous},
        {Consistency::ReadEnforced, Persistency::ReadEnforced},
        {Consistency::Transactional, Persistency::Synchronous},
        {Consistency::Causal, Persistency::Scope},
        {Consistency::Eventual, Persistency::Eventual},
    };
    for (const DdpModel &m : models) {
        Cluster c(smallConfig(m));
        RunResult r = c.run();
        ASSERT_GT(r.reads + r.writes, 0u) << core::modelName(m);
        EXPECT_NEAR(phaseMeanSum(r), pooledMeanNs(r),
                    pooledMeanNs(r) * 1e-9 + 1e-6)
            << core::modelName(m);
    }
}

TEST(PhaseBreakdown, StrictModelPaysReplication)
{
    Cluster c(smallConfig(
        {Consistency::Linearizable, Persistency::Strict}));
    RunResult r = c.run();
    // Strict persistency rides every write's INV round to all replicas
    // before acking: replication must dominate the write path.
    EXPECT_GT(r.phase(sim::Phase::Replication).meanNs, 0.0);
    EXPECT_GT(r.phase(sim::Phase::Service).meanNs, 0.0);
}

TEST(PhaseBreakdown, EventualModelHasNoReplicationStall)
{
    Cluster c(smallConfig(
        {Consistency::Eventual, Persistency::Eventual}));
    RunResult r = c.run();
    // Eventual/Eventual acks immediately after local work: nothing to
    // wait on, so only core + memory phases may be populated.
    EXPECT_EQ(r.phase(sim::Phase::Replication).meanNs, 0.0);
    EXPECT_EQ(r.phase(sim::Phase::PersistStall).meanNs, 0.0);
    EXPECT_EQ(r.phase(sim::Phase::XactCommit).meanNs, 0.0);
}

TEST(PhaseBreakdown, TransactionalChargesCommitPhase)
{
    Cluster c(smallConfig(
        {Consistency::Transactional, Persistency::Synchronous}));
    RunResult r = c.run();
    // Xact writes complete at the END_XACT round: the tail between a
    // write's own finish and commit lands in XactCommit.
    EXPECT_GT(r.phase(sim::Phase::XactCommit).meanNs, 0.0);
}

TEST(PhaseBreakdown, TraceIsDeterministicAcrossIdenticalRuns)
{
    std::string first;
    for (int i = 0; i < 2; ++i) {
        sim::TraceRecorder rec;
        Cluster c(smallConfig(
            {Consistency::Linearizable, Persistency::Strict}));
        c.setTrace(&rec);
        c.run();
        EXPECT_GT(rec.eventCount(), 0u);
        std::string json = rec.serialize();
        if (i == 0)
            first = std::move(json);
        else
            EXPECT_EQ(first, json);
    }
}

TEST(PhaseBreakdown, NoTraceAttachedRecordsNothing)
{
    // The zero-cost path: a run without a recorder must still fill the
    // phase breakdown (it is always on) and never touch a recorder.
    Cluster c(smallConfig(
        {Consistency::Causal, Persistency::Synchronous}));
    RunResult r = c.run();
    EXPECT_GT(phaseMeanSum(r), 0.0);
}
