/**
 * @file
 * Crash-torture cluster tests: staged partial crashes with node
 * downtime + restart, client timeout/failover with exactly-once
 * retransmits, multi-crash-epoch durability audits, and torn-persist
 * fidelity (commit records vs. the ablation) under real workloads.
 *
 * These complement table4_soundness_test.cc (instant full crashes)
 * with the staged path: a victim goes dark mid-run, its clients fail
 * over to survivors, and the victim later restarts and re-joins.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.hh"

using namespace ddp;
using namespace ddp::cluster;
using core::Consistency;
using core::DdpModel;
using core::Persistency;

namespace {

ClusterConfig
baseConfig(DdpModel model)
{
    ClusterConfig cfg;
    cfg.model = model;
    cfg.numServers = 3;
    cfg.clientsPerServer = 4;
    cfg.keyCount = 2000;
    cfg.workload = workload::WorkloadSpec::ycsbA(2000);
    cfg.warmup = 200 * sim::kMicrosecond;
    cfg.measure = 600 * sim::kMicrosecond;
    cfg.seed = 11;
    return cfg;
}

TEST(Torture, StagedCrashZeroLossModelLosesNothing)
{
    ClusterConfig cfg =
        baseConfig({Consistency::Linearizable, Persistency::Strict});
    cfg.clientRequestTimeout = 50 * sim::kMicrosecond;
    cfg.node.valueLines = 4;

    core::PropertyChecker checker;
    Cluster cluster(cfg);
    cluster.setChecker(&checker);
    cluster.schedulePartialCrash(cfg.warmup + cfg.measure / 3, {1},
                                 200 * sim::kMicrosecond);
    RunResult r = cluster.run();

    ASSERT_GT(r.reads + r.writes, 500u);
    EXPECT_EQ(r.crashEpochs, 1u);
    EXPECT_EQ(r.nodeRestarts, 1u);
    EXPECT_GT(r.clientFailovers, 0u)
        << "victim's clients must time out and rotate";
    EXPECT_EQ(r.lostAckedWrites, 0u)
        << "Strict persistency promises zero acked-write loss";
    EXPECT_EQ(r.convergenceFailures, 0u)
        << "restarted node must converge with survivors";
    EXPECT_EQ(r.tornValuesInstalled, 0u);
    EXPECT_EQ(r.tornReadsServed, 0u);
}

TEST(Torture, StagedCrashWeakBindingMayLoseOnlySuffix)
{
    // Causal/Eventual acknowledges before durability: the crash may
    // cost acked writes, but only unpersisted suffixes — and never a
    // torn value or a diverged restart.
    ClusterConfig cfg =
        baseConfig({Consistency::Causal, Persistency::Eventual});
    cfg.clientRequestTimeout = 50 * sim::kMicrosecond;
    cfg.node.valueLines = 4;

    core::PropertyChecker checker;
    Cluster cluster(cfg);
    cluster.setChecker(&checker);
    cluster.schedulePartialCrash(cfg.warmup + cfg.measure / 3, {2},
                                 200 * sim::kMicrosecond);
    RunResult r = cluster.run();

    ASSERT_GT(r.reads + r.writes, 500u);
    EXPECT_EQ(r.crashEpochs, 1u);
    EXPECT_EQ(r.nodeRestarts, 1u);
    EXPECT_EQ(r.convergenceFailures, 0u);
    EXPECT_EQ(r.tornValuesInstalled, 0u);
    EXPECT_EQ(r.tornReadsServed, 0u);
    // Restarted node adopted the survivors' causal progress, so its
    // apply pipeline cannot be wedged on dependencies lost downtime.
    EXPECT_GT(r.reads, 0u);
}

TEST(Torture, RetransmitsAreDedupedExactlyOnce)
{
    // A timeout below the loaded synchronous-persist latency forces
    // spurious timeouts: the coordinator is alive but slow, the client
    // rotates through every server and back to one that already
    // applied the write, which must recognize the duplicate by its
    // client sequence number instead of applying it twice.
    ClusterConfig cfg = baseConfig(
        {Consistency::Linearizable, Persistency::Synchronous});
    cfg.clientsPerServer = 12;
    cfg.clientRequestTimeout = 15 * sim::kMicrosecond;

    core::PropertyChecker checker;
    Cluster cluster(cfg);
    cluster.setChecker(&checker);
    cluster.schedulePartialCrash(cfg.warmup + cfg.measure / 3, {1},
                                 150 * sim::kMicrosecond);
    RunResult r = cluster.run();

    ASSERT_GT(r.reads + r.writes, 500u);
    EXPECT_GT(r.clientRetransmits, 0u);
    EXPECT_GT(r.clientRetransmitsDeduped, 0u)
        << "at least one duplicate write must be recognized";
    EXPECT_EQ(r.lostAckedWrites, 0u);
    EXPECT_EQ(r.monotonicViolations, 0u);
    EXPECT_EQ(r.staleReads, 0u);
}

TEST(Torture, XactAttemptCapAbandonsBatches)
{
    // With the attempt cap at the floor, any transaction that times
    // out during the victim's downtime is abandoned rather than
    // retried forever. Abandoned batches were never acked, so the
    // zero-loss promise is untouched.
    ClusterConfig cfg = baseConfig(
        {Consistency::Transactional, Persistency::Synchronous});
    cfg.clientRequestTimeout = 40 * sim::kMicrosecond;
    cfg.xactMaxAttempts = 1;

    core::PropertyChecker checker;
    Cluster cluster(cfg);
    cluster.setChecker(&checker);
    cluster.schedulePartialCrash(cfg.warmup + cfg.measure / 3, {0},
                                 200 * sim::kMicrosecond);
    RunResult r = cluster.run();

    ASSERT_GT(r.reads + r.writes, 200u);
    EXPECT_GT(r.xactAbandoned, 0u);
    EXPECT_EQ(r.lostAckedWrites, 0u);
}

TEST(Torture, TwoCrashEpochsAuditIndependently)
{
    // Two partial crashes in one run: the checker must audit each
    // epoch against the writes still alive at that point, and a
    // zero-loss binding must survive both.
    ClusterConfig cfg =
        baseConfig({Consistency::Linearizable, Persistency::Strict});
    cfg.node.valueLines = 4;

    core::PropertyChecker checker;
    Cluster cluster(cfg);
    cluster.setChecker(&checker);
    cluster.schedulePartialCrash(cfg.warmup + cfg.measure / 4, {1});
    cluster.schedulePartialCrash(cfg.warmup + cfg.measure / 2, {2});
    RunResult r = cluster.run();

    ASSERT_GT(r.reads + r.writes, 500u);
    EXPECT_EQ(r.crashEpochs, 2u);
    EXPECT_EQ(checker.crashEpochs(), 2u);
    EXPECT_EQ(r.lostAckedWrites, 0u);
    EXPECT_EQ(r.tornReadsServed, 0u);
}

TEST(Torture, CommitRecordsRollTornPersistsBack)
{
    // Multi-line values + a full crash mid-measure: some persists are
    // caught mid-value, and with commit records every one of them is
    // detected by checksum and rolled back — none installed.
    ClusterConfig cfg =
        baseConfig({Consistency::Linearizable, Persistency::Strict});
    cfg.node.valueLines = 8;

    core::PropertyChecker checker;
    Cluster cluster(cfg);
    cluster.setChecker(&checker);
    cluster.scheduleCrash(cfg.warmup + cfg.measure / 3);
    RunResult r = cluster.run();

    ASSERT_GT(r.reads + r.writes, 500u);
    EXPECT_GT(r.tornPersistsDetected, 0u)
        << "8-line values under Strict persistency must catch some "
           "persist mid-value";
    EXPECT_EQ(r.tornValuesInstalled, 0u);
    EXPECT_EQ(r.tornReadsServed, 0u);
    EXPECT_EQ(r.lostAckedWrites, 0u);
}

TEST(Torture, AblationInstallsAndServesTornValues)
{
    // Same run without commit records: recovery trusts the newest
    // version tag it finds and installs the torn copies.
    ClusterConfig cfg =
        baseConfig({Consistency::Linearizable, Persistency::Strict});
    cfg.node.valueLines = 8;
    cfg.node.commitRecords = false;

    core::PropertyChecker checker;
    Cluster cluster(cfg);
    cluster.setChecker(&checker);
    cluster.scheduleCrash(cfg.warmup + cfg.measure / 3);
    RunResult r = cluster.run();

    ASSERT_GT(r.reads + r.writes, 500u);
    EXPECT_GT(r.tornValuesInstalled, 0u)
        << "without commit records torn copies must win recovery";
    EXPECT_EQ(r.tornPersistsDetected, 0u)
        << "the ablation has no checksums to detect tears with";
}

} // namespace
