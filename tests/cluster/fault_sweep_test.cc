/**
 * @file
 * Chaos acceptance sweep: with 1% loss on every link, a YCSB-A run
 * over each of the 25 DDP model pairings must (a) complete — the
 * reliable-delivery layer hides the loss from the protocols — and
 * (b) be bit-reproducible: two clusters built from the same config
 * produce identical RunResults, injected faults included.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.hh"
#include "ddp/models.hh"

using namespace ddp;
using cluster::ClusterConfig;
using cluster::RunResult;

namespace {

ClusterConfig
lossyConfig(core::DdpModel model)
{
    ClusterConfig cfg;
    cfg.model = model;
    cfg.numServers = 3;
    cfg.clientsPerServer = 2;
    cfg.keyCount = 400;
    cfg.workload = workload::WorkloadSpec::ycsbA(400);
    cfg.warmup = 50 * sim::kMicrosecond;
    cfg.measure = 150 * sim::kMicrosecond;
    cfg.seed = 2026;
    cfg.faults.allLinks.dropRate = 0.01;
    return cfg;
}

/** The fields two bit-identical runs must agree on, as a tuple. */
void
expectIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
    EXPECT_DOUBLE_EQ(a.meanNs, b.meanNs);
    EXPECT_DOUBLE_EQ(a.meanReadNs, b.meanReadNs);
    EXPECT_DOUBLE_EQ(a.meanWriteNs, b.meanWriteNs);
    EXPECT_EQ(a.messages, b.messages);
    EXPECT_EQ(a.networkBytes, b.networkBytes);
    EXPECT_EQ(a.persistsIssued, b.persistsIssued);
    EXPECT_EQ(a.netDropped, b.netDropped);
    EXPECT_EQ(a.netRetransmits, b.netRetransmits);
    EXPECT_EQ(a.netRtoTimeouts, b.netRtoTimeouts);
    EXPECT_EQ(a.netAcks, b.netAcks);
    EXPECT_EQ(a.counters, b.counters);
}

} // namespace

class LossySweep : public ::testing::TestWithParam<core::DdpModel>
{
};

TEST_P(LossySweep, CompletesAndIsBitReproducible)
{
    ClusterConfig cfg = lossyConfig(GetParam());

    cluster::Cluster a(cfg);
    RunResult ra = a.run();

    // The run made progress despite the lossy wire...
    EXPECT_GT(ra.reads + ra.writes, 100u);
    // ...and the wire really was lossy.
    EXPECT_GT(ra.netDropped, 0u) << "fault plan injected nothing";
    EXPECT_GT(ra.netRetransmits, 0u);

    cluster::Cluster b(cfg);
    RunResult rb = b.run();
    expectIdentical(ra, rb);
}

TEST(LossySweep, DifferentSeedsDifferentChaos)
{
    ClusterConfig cfg = lossyConfig(
        {core::Consistency::Causal, core::Persistency::Synchronous});
    cluster::Cluster a(cfg);
    cfg.seed = 2027;
    cluster::Cluster b(cfg);
    RunResult ra = a.run();
    RunResult rb = b.run();
    // Same rates, different streams: the runs must not be identical
    // (drop counts colliding by chance is astronomically unlikely at
    // these message volumes).
    EXPECT_NE(ra.netDropped, rb.netDropped);
}

INSTANTIATE_TEST_SUITE_P(
    All25, LossySweep, ::testing::ValuesIn(core::allModels()),
    [](const ::testing::TestParamInfo<core::DdpModel> &info) {
        std::string s = core::modelName(info.param);
        std::string out;
        for (char ch : s) {
            if (std::isalnum(static_cast<unsigned char>(ch)))
                out += ch;
            else if (ch == ',')
                out += '_';
        }
        return out;
    });
