/**
 * @file
 * Integration tests: full cluster runs across all 25 DDP models,
 * crash-injection durability/intuition signatures (Table 4), recovery
 * policies, and client accounting.
 *
 * Every run is a deterministic discrete-event simulation for a fixed
 * seed, so the assertions are exact-repeatable, not statistical.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.hh"

using namespace ddp;
using namespace ddp::cluster;
using core::Consistency;
using core::DdpModel;
using core::Persistency;

namespace {

ClusterConfig
smallConfig(DdpModel m)
{
    ClusterConfig c;
    c.model = m;
    c.numServers = 3;
    c.clientsPerServer = 4;
    c.keyCount = 2000;
    c.workload = workload::WorkloadSpec::ycsbA(2000);
    c.warmup = 200 * sim::kMicrosecond;
    c.measure = 500 * sim::kMicrosecond;
    c.seed = 7;
    return c;
}

} // namespace

// --------------------------------------------------------------------------
// All 25 models run and produce sane metrics.
// --------------------------------------------------------------------------

class AllModelsRun : public ::testing::TestWithParam<DdpModel>
{
};

TEST_P(AllModelsRun, CompletesWithSaneMetrics)
{
    Cluster cluster(smallConfig(GetParam()));
    RunResult r = cluster.run();

    EXPECT_GT(r.throughput, 0.0) << core::modelName(GetParam());
    EXPECT_GT(r.reads, 100u);
    EXPECT_GT(r.writes, 100u);
    EXPECT_GT(r.meanReadNs, 0.0);
    EXPECT_GT(r.meanWriteNs, 0.0);
    EXPECT_GE(r.p95ReadNs, r.meanReadNs * 0.5);
    EXPECT_GT(r.messages, 0u);
    EXPECT_GT(r.networkBytes, 0u);
    // Scope persistency defers persists to the barrier but still
    // issues them; only a run with no persist trigger at all would
    // report zero.
    EXPECT_GT(r.persistsIssued, 0u) << core::modelName(GetParam());

    if (GetParam().consistency == Consistency::Transactional) {
        EXPECT_GT(r.xactStarted, 0u);
        EXPECT_GT(r.xactCommitted, 0u);
        EXPECT_LE(r.xactCommitted + r.xactAborted, r.xactStarted + 12);
    } else {
        EXPECT_EQ(r.xactStarted, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllModelsRun, ::testing::ValuesIn(core::allModels()),
    [](const ::testing::TestParamInfo<DdpModel> &info) {
        std::string s = core::modelName(info.param);
        std::string out;
        for (char ch : s) {
            if (std::isalnum(static_cast<unsigned char>(ch)))
                out += ch;
            else if (ch == ',')
                out += '_';
        }
        return out;
    });

// --------------------------------------------------------------------------
// Cross-model performance relations (paper Sec. 8.1).
// --------------------------------------------------------------------------

namespace {

RunResult
runModel(Consistency c, Persistency p)
{
    Cluster cluster(smallConfig({c, p}));
    return cluster.run();
}

} // namespace

TEST(ModelRelations, CausalOutperformsLinearizable)
{
    RunResult lin = runModel(Consistency::Linearizable,
                             Persistency::Synchronous);
    RunResult causal = runModel(Consistency::Causal,
                                Persistency::Synchronous);
    EXPECT_GT(causal.throughput, lin.throughput * 1.3);
    EXPECT_LT(causal.meanWriteNs, lin.meanWriteNs);
}

TEST(ModelRelations, StrictPersistencySlowsWrites)
{
    RunResult strict = runModel(Consistency::Causal,
                                Persistency::Strict);
    RunResult sync = runModel(Consistency::Causal,
                              Persistency::Synchronous);
    EXPECT_GT(strict.meanWriteNs, sync.meanWriteNs * 2);
    EXPECT_LT(strict.throughput, sync.throughput);
}

TEST(ModelRelations, ReadEnforcedPersistencyStallsReads)
{
    RunResult rep = runModel(Consistency::Causal,
                             Persistency::ReadEnforced);
    RunResult sync = runModel(Consistency::Causal,
                              Persistency::Synchronous);
    EXPECT_GT(rep.meanReadNs, sync.meanReadNs);
    EXPECT_GT(rep.readsStalledPersist, 0u);
    EXPECT_EQ(sync.readsStalledPersist, 0u);
}

TEST(ModelRelations, ReadEnforcedConsistencySpeedsWrites)
{
    RunResult rec = runModel(Consistency::ReadEnforced,
                             Persistency::Synchronous);
    RunResult lin = runModel(Consistency::Linearizable,
                             Persistency::Synchronous);
    EXPECT_LT(rec.meanWriteNs, lin.meanWriteNs);
}

TEST(ModelRelations, CausalCarriesMoreBytesPerMessageThanEventual)
{
    RunResult causal = runModel(Consistency::Causal,
                                Persistency::Eventual);
    RunResult eventual = runModel(Consistency::Eventual,
                                  Persistency::Eventual);
    double causal_bpm = static_cast<double>(causal.networkBytes) /
                        static_cast<double>(causal.messages);
    double eventual_bpm = static_cast<double>(eventual.networkBytes) /
                          static_cast<double>(eventual.messages);
    EXPECT_GT(causal_bpm, eventual_bpm); // cauhist payloads
}

// --------------------------------------------------------------------------
// Crash injection: Table 4 durability / intuition signatures.
// --------------------------------------------------------------------------

namespace {

RunResult
runWithCrash(Consistency c, Persistency p, core::PropertyChecker &pc)
{
    ClusterConfig cfg = smallConfig({c, p});
    Cluster cluster(cfg);
    cluster.setChecker(&pc);
    cluster.scheduleCrash(cfg.warmup + cfg.measure / 2);
    return cluster.run();
}

} // namespace

TEST(CrashSignatures, LinearizableSynchronousLosesNothing)
{
    core::PropertyChecker pc;
    RunResult r = runWithCrash(Consistency::Linearizable,
                               Persistency::Synchronous, pc);
    EXPECT_EQ(r.lostAckedWriteKeys, 0u);
    EXPECT_EQ(r.staleReads, 0u);
    EXPECT_EQ(r.monotonicViolations, 0u);
}

TEST(CrashSignatures, StrictLosesNothingUnderAnyConsistency)
{
    for (Consistency c :
         {Consistency::Linearizable, Consistency::Causal}) {
        core::PropertyChecker pc;
        RunResult r = runWithCrash(c, Persistency::Strict, pc);
        EXPECT_EQ(r.lostAckedWriteKeys, 0u) << core::consistencyName(c);
    }
}

TEST(CrashSignatures, EventualPersistencyLosesAckedWrites)
{
    core::PropertyChecker pc;
    RunResult r = runWithCrash(Consistency::Linearizable,
                               Persistency::Eventual, pc);
    EXPECT_GT(r.lostAckedWriteKeys, 0u);
}

TEST(CrashSignatures, ScopePersistencyLosesOpenScopes)
{
    core::PropertyChecker pc;
    RunResult r = runWithCrash(Consistency::Linearizable,
                               Persistency::Scope, pc);
    // Writes whose scope had not persisted yet are discarded.
    EXPECT_GT(r.lostAckedWriteKeys, 0u);
}

TEST(CrashSignatures, ReadEnforcedConsistencyCanLoseUnreadWrites)
{
    core::PropertyChecker pc;
    RunResult r = runWithCrash(Consistency::ReadEnforced,
                               Persistency::Synchronous, pc);
    // Read-Enforced consistency acks before the persist round ends:
    // some acked writes may be lost, but nothing a read returned is.
    EXPECT_EQ(r.monotonicViolations, 0u);
}

TEST(NoCrashSignatures, EventualConsistencyViolatesIntuition)
{
    core::PropertyChecker pc;
    ClusterConfig cfg = smallConfig(
        {Consistency::Eventual, Persistency::Synchronous});
    Cluster cluster(cfg);
    cluster.setChecker(&pc);
    RunResult r = cluster.run();
    // Arrival-order application and lazy propagation break both
    // monotonic and non-stale reads even without failures.
    EXPECT_GT(r.staleReads, 0u);
}

TEST(NoCrashSignatures, CausalSynchronousKeepsMonotonicReads)
{
    core::PropertyChecker pc;
    ClusterConfig cfg = smallConfig(
        {Consistency::Causal, Persistency::Synchronous});
    Cluster cluster(cfg);
    cluster.setChecker(&pc);
    RunResult r = cluster.run();
    EXPECT_EQ(r.monotonicViolations, 0u);
    EXPECT_GT(r.staleReads, 0u); // but staleness is possible
}

TEST(NoCrashSignatures, LinearizableSynchronousFullyIntuitive)
{
    core::PropertyChecker pc;
    ClusterConfig cfg = smallConfig(
        {Consistency::Linearizable, Persistency::Synchronous});
    Cluster cluster(cfg);
    cluster.setChecker(&pc);
    RunResult r = cluster.run();
    EXPECT_EQ(r.monotonicViolations, 0u);
    EXPECT_EQ(r.staleReads, 0u);
}

// --------------------------------------------------------------------------
// Recovery machinery
// --------------------------------------------------------------------------

TEST(Recovery, VotingInstallsClusterMaximum)
{
    core::PropertyChecker pc;
    ClusterConfig cfg = smallConfig(
        {Consistency::Causal, Persistency::Synchronous});
    Cluster cluster(cfg);
    cluster.setChecker(&pc);
    // Crash at the very end of the run: recovery executes, and no new
    // traffic re-diverges the replicas before we inspect them.
    cluster.scheduleCrash(cfg.warmup + cfg.measure - sim::kMicrosecond);
    cluster.run();

    ASSERT_EQ(cluster.recoveries().size(), 1u);
    const RecoveryStats &rs = cluster.recoveries()[0];
    EXPECT_GT(rs.keysInstalled, 0u);
    EXPECT_GT(rs.recoveryTime, 0u);
    // After voting every node agrees on every key.
    for (net::KeyId k = 0; k < 50; ++k) {
        net::Version v = cluster.node(0).persistedVersion(k);
        for (std::size_t n = 1; n < cluster.numNodes(); ++n)
            EXPECT_EQ(cluster.node(n).persistedVersion(k), v);
    }
}

TEST(Recovery, EventualPersistencyShowsDivergence)
{
    ClusterConfig cfg = smallConfig(
        {Consistency::Eventual, Persistency::Eventual});
    Cluster cluster(cfg);
    cluster.scheduleCrash(cfg.warmup + cfg.measure / 2);
    cluster.run();
    ASSERT_EQ(cluster.recoveries().size(), 1u);
    // Lazy propagation + lazy persists leave replicas' NVM divergent.
    EXPECT_GT(cluster.recoveries()[0].divergentKeys, 0u);
}

TEST(Recovery, LocalOnlyPolicyRuns)
{
    ClusterConfig cfg = smallConfig(
        {Consistency::Linearizable, Persistency::Synchronous});
    cfg.recovery = RecoveryPolicy::LocalOnly;
    Cluster cluster(cfg);
    cluster.scheduleCrash(cfg.warmup + cfg.measure / 2);
    RunResult r = cluster.run();
    EXPECT_GT(r.throughput, 0.0);
    ASSERT_EQ(cluster.recoveries().size(), 1u);
    EXPECT_GT(cluster.recoveries()[0].recoveryTime, 0u);
}

TEST(Recovery, ClusterKeepsServingAfterCrash)
{
    ClusterConfig cfg = smallConfig(
        {Consistency::Causal, Persistency::Synchronous});
    Cluster cluster(cfg);
    // Crash early in the measurement window; most of the window
    // happens post-recovery.
    cluster.scheduleCrash(cfg.warmup + 50 * sim::kMicrosecond);
    RunResult r = cluster.run();
    EXPECT_GT(r.reads + r.writes, 1000u);
}

// --------------------------------------------------------------------------
// Workload plumbing
// --------------------------------------------------------------------------

TEST(Workloads, WriteHeavyWorkloadShiftsMix)
{
    ClusterConfig cfg = smallConfig(
        {Consistency::Causal, Persistency::Synchronous});
    cfg.workload = workload::WorkloadSpec::ycsbW(cfg.keyCount);
    Cluster cluster(cfg);
    RunResult r = cluster.run();
    EXPECT_GT(r.writes, r.reads * 5);
}

TEST(Workloads, ReadHeavyWorkloadShiftsMix)
{
    ClusterConfig cfg = smallConfig(
        {Consistency::Causal, Persistency::Synchronous});
    cfg.workload = workload::WorkloadSpec::ycsbB(cfg.keyCount);
    Cluster cluster(cfg);
    RunResult r = cluster.run();
    EXPECT_GT(r.reads, r.writes * 5);
}

TEST(Workloads, MoreClientsMoreConcurrency)
{
    ClusterConfig a = smallConfig(
        {Consistency::Causal, Persistency::Synchronous});
    a.clientsPerServer = 2;
    ClusterConfig b = a;
    b.clientsPerServer = 8;
    Cluster ca(a), cb(b);
    RunResult ra = ca.run(), rb = cb.run();
    // Causal doesn't stall, so throughput scales with client count.
    EXPECT_GT(rb.throughput, ra.throughput * 2);
}

TEST(Workloads, DeterministicForSameSeed)
{
    ClusterConfig cfg = smallConfig(
        {Consistency::Linearizable, Persistency::ReadEnforced});
    Cluster a(cfg), b(cfg);
    RunResult ra = a.run(), rb = b.run();
    EXPECT_EQ(ra.reads, rb.reads);
    EXPECT_EQ(ra.writes, rb.writes);
    EXPECT_EQ(ra.messages, rb.messages);
    EXPECT_DOUBLE_EQ(ra.meanReadNs, rb.meanReadNs);
}

TEST(Workloads, DifferentSeedsDiffer)
{
    ClusterConfig cfg = smallConfig(
        {Consistency::Causal, Persistency::Synchronous});
    Cluster a(cfg);
    cfg.seed = 99;
    Cluster b(cfg);
    RunResult ra = a.run(), rb = b.run();
    EXPECT_NE(ra.reads + ra.messages, rb.reads + rb.messages);
}

// --------------------------------------------------------------------------
// Scope / transaction pacing
// --------------------------------------------------------------------------

TEST(Pacing, ScopePersistsHappenEveryScopeLength)
{
    ClusterConfig cfg = smallConfig(
        {Consistency::Linearizable, Persistency::Scope});
    Cluster cluster(cfg);
    RunResult r = cluster.run();
    // One PERSIST broadcast per scopeLength ops per client: messages
    // include persist rounds; just check persists were triggered.
    EXPECT_GT(r.persistsIssued, 0u);
    EXPECT_GT(r.counters["persists_issued"], r.writes / 4);
}

TEST(Pacing, TransactionalConflictRateReasonable)
{
    ClusterConfig cfg = smallConfig(
        {Consistency::Transactional, Persistency::Synchronous});
    Cluster cluster(cfg);
    RunResult r = cluster.run();
    EXPECT_GT(r.xactStarted, 100u);
    // Most transactions commit; the abort path exists but is bounded.
    EXPECT_GT(static_cast<double>(r.xactCommitted),
              0.5 * static_cast<double>(r.xactStarted));
}

TEST(Workloads, ThinkTimeThrottlesClients)
{
    ClusterConfig fast = smallConfig(
        {Consistency::Causal, Persistency::Synchronous});
    ClusterConfig slow = fast;
    slow.clientThinkTime = 10 * sim::kMicrosecond;
    Cluster cf(fast), cs(slow);
    RunResult rf = cf.run(), rs = cs.run();
    // ~1.3 us service + 10 us think ~ 8x fewer requests.
    EXPECT_LT(rs.throughput, rf.throughput / 4);
    EXPECT_GT(rs.throughput, 0.0);
}

TEST(PartialCrash, SurvivorsPreserveAckedWrites)
{
    core::PropertyChecker pc;
    ClusterConfig cfg = smallConfig(
        {Consistency::Linearizable, Persistency::Eventual});
    Cluster cluster(cfg);
    cluster.setChecker(&pc);
    // One node dies; <Linearizable, *> replicated every acked write to
    // all nodes' volatile memory, so the survivors cover everything
    // even under lazy persistency.
    cluster.schedulePartialCrash(cfg.warmup + cfg.measure / 2, {1});
    RunResult r = cluster.run();
    EXPECT_EQ(r.lostAckedWriteKeys, 0u);
    ASSERT_EQ(cluster.recoveries().size(), 1u);
    EXPECT_GT(cluster.recoveries()[0].keysInstalled, 0u);
}

TEST(PartialCrash, ClusterKeepsServing)
{
    ClusterConfig cfg = smallConfig(
        {Consistency::Causal, Persistency::Synchronous});
    Cluster cluster(cfg);
    cluster.schedulePartialCrash(cfg.warmup + 100 * sim::kMicrosecond,
                                 {0, 2});
    RunResult r = cluster.run();
    EXPECT_GT(r.reads + r.writes, 1000u);
}

TEST(PartialCrash, VictimRebuildsFromSurvivors)
{
    ClusterConfig cfg = smallConfig(
        {Consistency::Linearizable, Persistency::Scope});
    Cluster cluster(cfg);
    // Scope persistency keeps NVM mostly empty (open scopes), so the
    // victim's recovery must come from survivors' volatile state.
    cluster.schedulePartialCrash(cfg.warmup + cfg.measure - sim::kMicrosecond,
                                 {1});
    cluster.run();
    // After recovery the victim agrees with the survivors on a sample
    // of keys.
    for (net::KeyId k = 0; k < 200; ++k) {
        EXPECT_EQ(cluster.node(1).visibleVersion(k),
                  cluster.node(0).visibleVersion(k))
            << "key " << k;
    }
}

TEST(Workloads, TraceReplayDrivesClients)
{
    // Record a write-only trace over a narrow key band and replay it:
    // every write the cluster performs must hit that band.
    workload::WorkloadSpec spec = workload::WorkloadSpec::ycsbW(50);
    workload::OpGenerator gen(spec, 5, 1);
    workload::Trace trace = workload::Trace::record(gen, 400);

    ClusterConfig cfg = smallConfig(
        {Consistency::Causal, Persistency::Synchronous});
    cfg.trace = &trace;
    Cluster cluster(cfg);
    RunResult r = cluster.run();
    EXPECT_GT(r.writes, r.reads * 5); // trace is 95% writes
    // Keys outside [0, 50) were never written on any node.
    for (net::KeyId k = 50; k < 200; ++k) {
        for (std::size_t n = 0; n < cluster.numNodes(); ++n)
            ASSERT_EQ(cluster.node(n).visibleVersion(k).number, 0u);
    }
}

TEST(Workloads, TraceReplayIsDeterministic)
{
    workload::WorkloadSpec spec = workload::WorkloadSpec::ycsbA(100);
    workload::OpGenerator gen(spec, 5, 2);
    workload::Trace trace = workload::Trace::record(gen, 300);

    ClusterConfig cfg = smallConfig(
        {Consistency::Linearizable, Persistency::Synchronous});
    cfg.trace = &trace;
    Cluster a(cfg), b(cfg);
    RunResult ra = a.run(), rb = b.run();
    EXPECT_EQ(ra.reads, rb.reads);
    EXPECT_EQ(ra.messages, rb.messages);
}
