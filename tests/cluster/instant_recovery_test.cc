/**
 * @file
 * Instant-recovery cluster tests: MM-DIRECT-style immediate re-admission
 * with on-demand fault-in, versus the staged replay-before-serve path.
 *
 * Covers the tentpole guarantees: traffic is served while recovery is
 * still draining (servedDuringRecovery > 0), the durability audit is
 * unchanged from the staged path (no torn value served, zero-loss
 * bindings lose nothing), and the cluster-owned throughput timeline
 * shows instant regaining the SLO measurably earlier than a full
 * replay, with downtime appearing as explicit zero buckets.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/cluster.hh"

using namespace ddp;
using namespace ddp::cluster;
using core::Consistency;
using core::DdpModel;
using core::Persistency;

namespace {

ClusterConfig
baseConfig(DdpModel model)
{
    ClusterConfig cfg;
    cfg.model = model;
    cfg.numServers = 3;
    cfg.clientsPerServer = 4;
    cfg.keyCount = 2000;
    cfg.workload = workload::WorkloadSpec::ycsbA(2000);
    cfg.warmup = 200 * sim::kMicrosecond;
    cfg.measure = 600 * sim::kMicrosecond;
    cfg.seed = 11;
    return cfg;
}

TEST(InstantRecovery, StagedRestartServesTrafficWhileRecovering)
{
    ClusterConfig cfg =
        baseConfig({Consistency::Linearizable, Persistency::Strict});
    cfg.clientRequestTimeout = 50 * sim::kMicrosecond;
    cfg.node.valueLines = 4;
    cfg.recovery = RecoveryPolicy::Instant;

    core::PropertyChecker checker;
    Cluster cluster(cfg);
    cluster.setChecker(&checker);
    cluster.schedulePartialCrash(cfg.warmup + cfg.measure / 3, {1},
                                 200 * sim::kMicrosecond);
    RunResult r = cluster.run();

    ASSERT_GT(r.reads + r.writes, 500u);
    EXPECT_EQ(r.crashEpochs, 1u);
    EXPECT_EQ(r.nodeRestarts, 1u);
    EXPECT_GT(r.servedDuringRecovery, 0u)
        << "requests must complete while the victim is still cold";
    EXPECT_GT(r.recoveryFaultIns, 0u);
    EXPECT_EQ(r.lostAckedWrites, 0u)
        << "Strict persistency promises zero acked-write loss";
    EXPECT_EQ(r.convergenceFailures, 0u);
    EXPECT_EQ(r.tornValuesInstalled, 0u);
    EXPECT_EQ(r.tornReadsServed, 0u);
}

TEST(InstantRecovery, WeakBindingAuditUnchangedUnderInstant)
{
    // Causal/Eventual may lose an unpersisted suffix — but instant
    // recovery must never make it worse: no torn value served, no
    // torn install, and the restarted node converges.
    ClusterConfig cfg =
        baseConfig({Consistency::Causal, Persistency::Eventual});
    cfg.clientRequestTimeout = 50 * sim::kMicrosecond;
    cfg.node.valueLines = 4;
    cfg.recovery = RecoveryPolicy::Instant;

    core::PropertyChecker checker;
    Cluster cluster(cfg);
    cluster.setChecker(&checker);
    cluster.schedulePartialCrash(cfg.warmup + cfg.measure / 3, {2},
                                 200 * sim::kMicrosecond);
    RunResult r = cluster.run();

    ASSERT_GT(r.reads + r.writes, 500u);
    EXPECT_EQ(r.nodeRestarts, 1u);
    EXPECT_EQ(r.convergenceFailures, 0u);
    EXPECT_EQ(r.tornValuesInstalled, 0u);
    EXPECT_EQ(r.tornReadsServed, 0u);
}

TEST(InstantRecovery, MultiCrashEpochsAuditClean)
{
    // Two staged crash epochs back to back: the second crash lands
    // while some keys may still be cold from the first recovery —
    // the cold-aware audit and re-armed backfill must both hold up.
    ClusterConfig cfg =
        baseConfig({Consistency::Linearizable, Persistency::Strict});
    cfg.clientRequestTimeout = 50 * sim::kMicrosecond;
    cfg.node.valueLines = 4;
    cfg.recovery = RecoveryPolicy::Instant;

    core::PropertyChecker checker;
    Cluster cluster(cfg);
    cluster.setChecker(&checker);
    cluster.schedulePartialCrash(cfg.warmup + cfg.measure / 4, {1},
                                 100 * sim::kMicrosecond);
    cluster.schedulePartialCrash(cfg.warmup + cfg.measure / 2, {1},
                                 100 * sim::kMicrosecond);
    RunResult r = cluster.run();

    ASSERT_GT(r.reads + r.writes, 500u);
    EXPECT_EQ(r.crashEpochs, 2u);
    EXPECT_EQ(r.nodeRestarts, 2u);
    EXPECT_EQ(r.lostAckedWrites, 0u);
    EXPECT_EQ(r.convergenceFailures, 0u);
    EXPECT_EQ(r.tornReadsServed, 0u);
}

/** Full-crash run with a timeline; returns the RunResult. */
RunResult
fullCrashRun(RecoveryPolicy policy)
{
    ClusterConfig cfg =
        baseConfig({Consistency::Linearizable, Persistency::Strict});
    cfg.keyCount = 20000;
    cfg.workload = workload::WorkloadSpec::ycsbA(20000);
    cfg.measure = 800 * sim::kMicrosecond;
    cfg.node.valueLines = 4;
    cfg.recovery = policy;
    cfg.timelineBucket = 25 * sim::kMicrosecond;
    // Half the pre-crash baseline: instant recovery's proposition is
    // restoring *degraded* service immediately (fault-ins and the
    // background backfill still tax the NVM until the key space is
    // warm), while the replay policy serves nothing at all and then
    // jumps straight back to 100%.
    cfg.recoverySloFrac = 0.5;

    core::PropertyChecker checker;
    Cluster cluster(cfg);
    cluster.setChecker(&checker);
    cluster.scheduleCrash(cfg.warmup + cfg.measure / 4);
    return cluster.run();
}

TEST(InstantRecovery, InstantReachesSloEarlierThanReplay)
{
    RunResult replay = fullCrashRun(RecoveryPolicy::LocalOnly);
    RunResult instant = fullCrashRun(RecoveryPolicy::Instant);

    // Both timelines cover the whole run in explicit buckets —
    // downtime is zero samples, not missing ones.
    std::size_t expect_buckets =
        (200 + 800) / 25; // (warmup + measure) / bucket width
    EXPECT_EQ(replay.timelineRate.size(), expect_buckets);
    EXPECT_EQ(instant.timelineRate.size(), expect_buckets);

    // The replay policy blocks all clients while every key is read
    // back from NVM (20000 keys * 140 ns / 16 banks = 175 us), so its
    // timeline must contain at least one true zero bucket after the
    // crash; instant re-admits after only the index scan (5 us).
    bool replay_has_zero = false;
    for (std::size_t i = 8; i < replay.timelineRate.size(); ++i)
        replay_has_zero |= replay.timelineRate[i] == 0.0;
    EXPECT_TRUE(replay_has_zero)
        << "replay downtime must show as explicit zero samples";

    ASSERT_FALSE(std::isnan(replay.recoveryTimeToSloUs));
    ASSERT_FALSE(std::isnan(instant.recoveryTimeToSloUs));
    EXPECT_LT(instant.recoveryTimeToSloUs, replay.recoveryTimeToSloUs)
        << "instant recovery must regain the throughput SLO earlier";
    EXPECT_GT(instant.servedDuringRecovery, 0u);

    // Durability verdicts identical across the two policies.
    EXPECT_EQ(replay.lostAckedWrites, 0u);
    EXPECT_EQ(instant.lostAckedWrites, 0u);
    EXPECT_EQ(instant.tornReadsServed, 0u);
    EXPECT_EQ(instant.tornValuesInstalled, 0u);
}

} // namespace
