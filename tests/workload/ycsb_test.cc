/**
 * @file
 * Unit tests for the YCSB workload generator and trace replay.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "workload/trace.hh"
#include "workload/ycsb.hh"

using namespace ddp::workload;

namespace {

double
measuredReadFraction(const WorkloadSpec &spec, int n = 20000)
{
    OpGenerator gen(spec, 7, 1);
    int reads = 0;
    for (int i = 0; i < n; ++i) {
        if (gen.next().type == OpType::Read)
            ++reads;
    }
    return static_cast<double>(reads) / n;
}

} // namespace

TEST(Ycsb, WorkloadAMix)
{
    EXPECT_NEAR(measuredReadFraction(WorkloadSpec::ycsbA()), 0.50, 0.02);
}

TEST(Ycsb, WorkloadBMix)
{
    EXPECT_NEAR(measuredReadFraction(WorkloadSpec::ycsbB()), 0.95, 0.01);
}

TEST(Ycsb, WorkloadCIsReadOnly)
{
    EXPECT_DOUBLE_EQ(measuredReadFraction(WorkloadSpec::ycsbC()), 1.0);
}

TEST(Ycsb, WorkloadWIsWriteHeavy)
{
    EXPECT_NEAR(measuredReadFraction(WorkloadSpec::ycsbW()), 0.05, 0.01);
}

TEST(Ycsb, KeysWithinSpace)
{
    WorkloadSpec spec = WorkloadSpec::ycsbA(500);
    OpGenerator gen(spec, 7, 2);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(gen.next().key, 500u);
}

TEST(Ycsb, ZipfianSkewsTraffic)
{
    WorkloadSpec spec = WorkloadSpec::ycsbA(10000);
    OpGenerator gen(spec, 7, 3);
    int hot = 0;
    for (int i = 0; i < 50000; ++i) {
        if (gen.next().key == 0)
            ++hot;
    }
    // At theta 0.99 the top key draws several percent of traffic.
    EXPECT_GT(hot, 50000 * 3 / 100);
}

TEST(Ycsb, UniformSpreadsTraffic)
{
    WorkloadSpec spec = WorkloadSpec::ycsbA(10000);
    spec.distribution = KeyDistribution::Uniform;
    OpGenerator gen(spec, 7, 4);
    int hot = 0;
    for (int i = 0; i < 50000; ++i) {
        if (gen.next().key == 0)
            ++hot;
    }
    EXPECT_LT(hot, 30);
}

TEST(Ycsb, DeterministicPerSeedAndStream)
{
    WorkloadSpec spec = WorkloadSpec::ycsbA();
    OpGenerator a(spec, 11, 5), b(spec, 11, 5), c(spec, 11, 6);
    bool diverged = false;
    for (int i = 0; i < 1000; ++i) {
        Op oa = a.next(), ob = b.next(), oc = c.next();
        ASSERT_EQ(oa, ob);
        if (!(oa == oc))
            diverged = true;
    }
    EXPECT_TRUE(diverged);
}

TEST(Trace, RecordCapturesOps)
{
    WorkloadSpec spec = WorkloadSpec::ycsbA(100);
    OpGenerator gen(spec, 3, 1);
    Trace t = Trace::record(gen, 500);
    EXPECT_EQ(t.size(), 500u);
    EXPECT_NEAR(t.writeFraction(), 0.5, 0.1);
}

TEST(Trace, SaveLoadRoundTrip)
{
    WorkloadSpec spec = WorkloadSpec::ycsbW(100);
    OpGenerator gen(spec, 4, 1);
    Trace t = Trace::record(gen, 200);
    std::stringstream ss;
    t.save(ss);
    Trace loaded;
    ASSERT_TRUE(Trace::load(ss, loaded));
    EXPECT_EQ(t, loaded);
}

TEST(Trace, LoadRejectsGarbage)
{
    std::stringstream ss("R 1\nX 2\n");
    Trace t;
    EXPECT_FALSE(Trace::load(ss, t));
}

TEST(Trace, CursorWrapsAround)
{
    Trace t;
    t.append({OpType::Read, 1});
    t.append({OpType::Write, 2});
    TraceCursor cur(t);
    EXPECT_EQ(cur.next().key, 1u);
    EXPECT_EQ(cur.next().key, 2u);
    EXPECT_EQ(cur.next().key, 1u); // wrapped
}

TEST(Trace, WriteFractionEmptyIsZero)
{
    Trace t;
    EXPECT_DOUBLE_EQ(t.writeFraction(), 0.0);
}

TEST(Ycsb, WorkloadDReadsFollowFrontier)
{
    WorkloadSpec spec = WorkloadSpec::ycsbD(10000);
    OpGenerator gen(spec, 9, 1);
    // Warm the frontier with some traffic.
    std::uint64_t last_write = 0;
    int near = 0, reads = 0;
    for (int i = 0; i < 50000; ++i) {
        Op op = gen.next();
        if (op.type == OpType::Write) {
            last_write = op.key;
        } else if (last_write > 1000) {
            ++reads;
            std::uint64_t gap = last_write >= op.key
                                    ? last_write - op.key
                                    : last_write + 10000 - op.key;
            if (gap < 100)
                ++near;
        }
    }
    ASSERT_GT(reads, 1000);
    // Most reads land within 100 keys of the newest insertion.
    EXPECT_GT(near, reads / 2);
}

TEST(Ycsb, WorkloadDMix)
{
    EXPECT_NEAR(measuredReadFraction(WorkloadSpec::ycsbD()), 0.95,
                0.01);
}

TEST(Ycsb, LatestKeysStayInRange)
{
    WorkloadSpec spec = WorkloadSpec::ycsbD(500);
    OpGenerator gen(spec, 9, 2);
    for (int i = 0; i < 20000; ++i)
        ASSERT_LT(gen.next().key, 500u);
}
