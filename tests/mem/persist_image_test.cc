/**
 * @file
 * PersistImage unit tests: torn-write detection via checksum mismatch,
 * uncommitted-value rollback, the commit-record ablation (torn
 * installs), and the single-line fast path.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/persist_image.hh"

using ddp::mem::PersistImage;
using ddp::net::Version;

namespace {

Version
v(std::uint64_t number, std::uint32_t writer = 0)
{
    return Version{number, writer};
}

TEST(PersistImage, CommittedWriteSurvivesCrash)
{
    PersistImage img(4, 4, true);
    img.beginWrite(1, v(7));
    for (int i = 0; i < 4; ++i)
        img.lineWritten(1);
    img.commitWrite(1);

    img.crash();
    PersistImage::Recovered rec = img.recover(1);
    EXPECT_EQ(rec.version, v(7));
    EXPECT_FALSE(rec.tornDetected);
    EXPECT_FALSE(rec.tornInstalled);
    EXPECT_FALSE(rec.uncommittedRollback);
}

TEST(PersistImage, TornPersistRollsBackToLastIntactVersion)
{
    PersistImage img(4, 4, true);
    img.atomicPersist(2, v(3));

    // Crash after 2 of 4 lines of version 9 became durable.
    img.beginWrite(2, v(9));
    img.lineWritten(2);
    img.lineWritten(2);
    img.crash();

    // The staged slot's checksum cannot match a full copy of v9.
    EXPECT_NE(img.scanChecksum(2), img.checksumOf(v(9)));

    PersistImage::Recovered rec = img.recover(2);
    EXPECT_TRUE(rec.tornDetected);
    EXPECT_EQ(rec.version, v(3)) << "must roll back, not trust v9";
    EXPECT_EQ(img.tornDetected(), 1u);
    EXPECT_EQ(img.intactVersion(2), v(3));
}

TEST(PersistImage, CrashBeforeAnyLineIsClean)
{
    PersistImage img(4, 4, true);
    img.atomicPersist(0, v(5));
    img.beginWrite(0, v(6)); // persist scheduled, nothing durable yet
    img.crash();

    PersistImage::Recovered rec = img.recover(0);
    EXPECT_FALSE(rec.tornDetected);
    EXPECT_FALSE(rec.uncommittedRollback);
    EXPECT_EQ(rec.version, v(5));
}

TEST(PersistImage, AllLinesDurableButUncommittedRollsBack)
{
    // Every data line of v8 landed but the crash beat the commit
    // record's write: the value is bit-complete in the staging slot yet
    // recovery must still discard it — the commit record is the only
    // authority on what is durable.
    PersistImage img(4, 4, true);
    img.atomicPersist(1, v(4));
    img.beginWrite(1, v(8));
    for (int i = 0; i < 4; ++i)
        img.lineWritten(1);
    img.crash();

    PersistImage::Recovered rec = img.recover(1);
    EXPECT_TRUE(rec.uncommittedRollback);
    EXPECT_FALSE(rec.tornDetected);
    EXPECT_EQ(rec.version, v(4));
    EXPECT_EQ(img.uncommittedRollbacks(), 1u);
}

TEST(PersistImage, AblationInstallsTornValue)
{
    // Without commit records recovery trusts the newest version tag it
    // finds in the lines — a half-written v9 beats the intact v3.
    PersistImage img(4, 4, false);
    img.atomicPersist(2, v(3));
    img.beginWrite(2, v(9));
    img.lineWritten(2);
    img.crash();

    PersistImage::Recovered rec = img.recover(2);
    EXPECT_TRUE(rec.tornInstalled);
    EXPECT_EQ(rec.version, v(9)) << "ablation trusts the torn copy";
    EXPECT_EQ(img.tornInstalls(), 1u);
}

TEST(PersistImage, AblationFullyWrittenValueIsNotTorn)
{
    // The ablation only mis-installs when the value is actually torn;
    // a fully written value is simply an early (correct) install.
    PersistImage img(4, 4, false);
    img.beginWrite(0, v(2));
    for (int i = 0; i < 4; ++i)
        img.lineWritten(0);
    img.crash();

    PersistImage::Recovered rec = img.recover(0);
    EXPECT_FALSE(rec.tornInstalled);
    EXPECT_EQ(rec.version, v(2));
    EXPECT_EQ(img.tornInstalls(), 0u);
}

TEST(PersistImage, RecoverConsumesInflightState)
{
    PersistImage img(2, 4, true);
    img.atomicPersist(0, v(1));
    img.beginWrite(0, v(2));
    img.lineWritten(0);
    img.crash();

    EXPECT_TRUE(img.recover(0).tornDetected);
    // The tear was already resolved; a second scan is clean.
    EXPECT_FALSE(img.recover(0).tornDetected);
    EXPECT_EQ(img.tornDetected(), 1u);
}

TEST(PersistImage, SingleLineValuesNeverTear)
{
    PersistImage img(8, 1, true);
    img.atomicPersist(3, v(11));
    img.crash();
    PersistImage::Recovered rec = img.recover(3);
    EXPECT_FALSE(rec.tornDetected);
    EXPECT_EQ(rec.version, v(11));
}

TEST(PersistImage, ArrivalOrderCommitOverwritesNewerVersion)
{
    // Eventual consistency persists in arrival order: an older version
    // arriving late replaces a newer intact one.
    PersistImage img(2, 4, true);
    img.atomicPersist(0, v(9), /*arrival_order=*/true);
    img.beginWrite(0, v(5));
    for (int i = 0; i < 4; ++i)
        img.lineWritten(0);
    img.commitWrite(0, /*arrival_order=*/true);
    EXPECT_EQ(img.intactVersion(0), v(5));

    // Version-ordered commit keeps the newer copy instead.
    img.atomicPersist(1, v(9));
    img.beginWrite(1, v(5));
    for (int i = 0; i < 4; ++i)
        img.lineWritten(1);
    img.commitWrite(1);
    EXPECT_EQ(img.intactVersion(1), v(9));
}

TEST(PersistImage, OverlappingBeginWriteAbandonsOlderStaging)
{
    // A new beginWrite for the same key supersedes the abandoned one;
    // recovery judges only the newest staging attempt.
    PersistImage img(2, 4, true);
    img.atomicPersist(0, v(1));
    img.beginWrite(0, v(2));
    img.lineWritten(0);
    img.beginWrite(0, v(3));
    img.crash();

    PersistImage::Recovered rec = img.recover(0);
    EXPECT_FALSE(rec.tornDetected) << "v3 never wrote a line";
    EXPECT_EQ(rec.version, v(1));
}

TEST(PersistImage, InstallCommittedBypassesStaging)
{
    PersistImage img(2, 4, true);
    img.beginWrite(1, v(4));
    img.lineWritten(1);
    // Recovery state transfer lands a whole value from a peer.
    img.installCommitted(1, v(6));
    EXPECT_EQ(img.intactVersion(1), v(6));
    img.crash();
    // The stale in-flight persist of v4 must not tear v6: its staged
    // version is older than the intact copy, so rollback keeps v6.
    PersistImage::Recovered rec = img.recover(1);
    EXPECT_EQ(rec.version, v(6));
}

TEST(PersistImage, InstallDoesNotCancelInflightStaging)
{
    // A survivor answering a restarting peer's recovery install still
    // has its own multi-line persist in flight; the install must land
    // in the intact slot without stranding the staged write's pending
    // line completions.
    PersistImage img(2, 4, true);
    img.beginWrite(0, v(9));
    img.lineWritten(0);
    img.lineWritten(0);
    img.installCommitted(0, v(5));
    EXPECT_EQ(img.intactVersion(0), v(5));
    EXPECT_TRUE(img.writing(0)) << "the staged persist of v9 continues";
    img.lineWritten(0);
    img.lineWritten(0);
    img.commitWrite(0);
    EXPECT_EQ(img.intactVersion(0), v(9));
    EXPECT_FALSE(img.writing(0));
}

TEST(PersistImage, OnDemandRecoveryMatchesFullReplay)
{
    // Instant recovery's on-demand fault-in must judge a torn staging
    // slot exactly as an eager full replay would: same version, same
    // torn verdict, byte-for-byte identical rollback target. Build two
    // identical images — one recovered eagerly, one on demand.
    auto build = [] {
        PersistImage img(4, 4, true);
        // Committed predecessor, then a crash mid-persist of v9: two
        // of four lines durable.
        img.atomicPersist(2, v(3));
        img.beginWrite(2, v(9));
        img.lineWritten(2);
        img.lineWritten(2);
        img.crash();
        return img;
    };

    PersistImage eager = build();
    PersistImage lazy = build();

    PersistImage::Recovered full = eager.recover(2);
    PersistImage::Recovered demand = lazy.recoverOnDemand(2);

    EXPECT_EQ(demand.version, full.version);
    EXPECT_EQ(demand.version, v(3)) << "both must roll back to v3";
    EXPECT_EQ(demand.tornDetected, full.tornDetected);
    EXPECT_TRUE(demand.tornDetected);
    EXPECT_EQ(demand.uncommittedRollback, full.uncommittedRollback);
    EXPECT_EQ(demand.tornInstalled, full.tornInstalled);

    // The post-rollback durable state is identical: same intact
    // version, same checksum over the intact slot.
    EXPECT_EQ(lazy.intactVersion(2), eager.intactVersion(2));
    EXPECT_EQ(lazy.checksumOf(lazy.intactVersion(2)),
              eager.checksumOf(eager.intactVersion(2)));
    EXPECT_EQ(lazy.tornDetected(), eager.tornDetected());

    // On-demand loads are tallied separately (instant-recovery stat);
    // the eager path leaves the counter untouched.
    EXPECT_EQ(lazy.onDemandLoads(), 1u);
    EXPECT_EQ(eager.onDemandLoads(), 0u);
}

TEST(PersistImage, InflightKeysSnapshotsStagingSortedWithoutConsuming)
{
    // crashVolatileInstant() snapshots the crash-frozen staging set to
    // judge lazily; the listing must be sorted (determinism) and must
    // not consume the staging evidence.
    PersistImage img(8, 4, true);
    img.beginWrite(5, v(2));
    img.lineWritten(5);
    img.beginWrite(1, v(3));
    img.lineWritten(1);
    img.crash();

    std::vector<ddp::net::KeyId> keys = img.inflightKeys();
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0], 1u);
    EXPECT_EQ(keys[1], 5u);
    // Evidence intact: both tears are still detected afterwards.
    EXPECT_TRUE(img.recoverOnDemand(1).tornDetected);
    EXPECT_TRUE(img.recoverOnDemand(5).tornDetected);
}

TEST(PersistImage, ChecksumMatchesOnlyFullCopies)
{
    PersistImage img(2, 4, true);
    img.beginWrite(0, v(7));
    img.lineWritten(0);
    img.lineWritten(0);
    EXPECT_NE(img.scanChecksum(0), img.checksumOf(v(7)));
    img.lineWritten(0);
    img.lineWritten(0);
    EXPECT_EQ(img.scanChecksum(0), img.checksumOf(v(7)));
}

} // namespace
