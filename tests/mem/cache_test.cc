/**
 * @file
 * Unit tests for the set-associative cache and hierarchy models.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "sim/ticks.hh"

using namespace ddp::mem;
using namespace ddp::sim;

TEST(SetAssocCache, MissThenHit)
{
    SetAssocCache c(1024, 2); // 8 sets x 2 ways x 64B
    EXPECT_FALSE(c.access(0));
    c.insert(0);
    EXPECT_TRUE(c.access(0));
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(SetAssocCache, SameLineDifferentOffsets)
{
    SetAssocCache c(1024, 2);
    c.insert(0);
    EXPECT_TRUE(c.access(63));  // same 64B line
    EXPECT_FALSE(c.access(64)); // next line
}

TEST(SetAssocCache, LruEvictionWithinSet)
{
    // Single-set cache: 2 ways, 2 lines capacity.
    SetAssocCache c(128, 2);
    ASSERT_EQ(c.numSets(), 1u);
    c.insert(0 * 64);
    c.insert(1 * 64);
    c.access(0 * 64); // make line 0 MRU
    c.insert(2 * 64); // evicts line 1 (LRU)
    EXPECT_TRUE(c.contains(0 * 64));
    EXPECT_FALSE(c.contains(1 * 64));
    EXPECT_TRUE(c.contains(2 * 64));
}

TEST(SetAssocCache, InsertRefreshesExisting)
{
    SetAssocCache c(128, 2);
    c.insert(0 * 64);
    c.insert(1 * 64);
    c.insert(0 * 64); // refresh, not duplicate
    c.insert(2 * 64); // should evict line 1
    EXPECT_TRUE(c.contains(0 * 64));
    EXPECT_FALSE(c.contains(1 * 64));
}

TEST(SetAssocCache, InvalidateRemoves)
{
    SetAssocCache c(1024, 2);
    c.insert(0);
    c.invalidate(0);
    EXPECT_FALSE(c.contains(0));
    // Invalidating an absent line is a no-op.
    c.invalidate(4096);
}

TEST(SetAssocCache, ClearDropsEverything)
{
    SetAssocCache c(1024, 2);
    for (std::uint64_t i = 0; i < 8; ++i)
        c.insert(i * 64);
    c.clear();
    for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_FALSE(c.contains(i * 64));
}

TEST(SetAssocCache, DdioConfinedToPartition)
{
    // One set, 4 ways, 1 DDIO way (the last).
    SetAssocCache c(256, 4, 64, 1);
    c.insert(0 * 64);
    c.insert(1 * 64);
    c.insert(2 * 64);
    c.insert(3 * 64); // set full: CPU lines in all 4 ways
    // DDIO insertions may only use the last way; repeated DDIO fills
    // evict each other, never the first three CPU lines.
    c.insertDdio(10 * 64);
    c.insertDdio(11 * 64);
    EXPECT_TRUE(c.contains(0 * 64));
    EXPECT_TRUE(c.contains(1 * 64));
    EXPECT_TRUE(c.contains(2 * 64));
    EXPECT_FALSE(c.contains(10 * 64)); // evicted by 11
    EXPECT_TRUE(c.contains(11 * 64));
}

TEST(SetAssocCache, DdioZeroWaysFallsBackToFullSet)
{
    SetAssocCache c(256, 4, 64, 0);
    c.insertDdio(0);
    EXPECT_TRUE(c.contains(0));
}

TEST(CacheHierarchyParams, PaperLatencies)
{
    CacheHierarchyParams p = CacheHierarchyParams::paperDefault();
    EXPECT_EQ(p.l1Latency, 1 * kNanosecond);      // 2 cycles @ 2GHz
    EXPECT_EQ(p.l2Latency, 6 * kNanosecond);      // 12 cycles
    EXPECT_EQ(p.llcLatency, 19 * kNanosecond);    // 38 cycles
}

TEST(CacheHierarchy, MissFillsAllLevels)
{
    CacheHierarchy h(CacheHierarchyParams::paperDefault());
    auto first = h.access(0);
    EXPECT_FALSE(first.hit);
    auto second = h.access(0);
    EXPECT_TRUE(second.hit);
    EXPECT_EQ(second.latency, 1 * kNanosecond); // L1 hit
}

TEST(CacheHierarchy, L2HitAfterL1Eviction)
{
    CacheHierarchyParams p = CacheHierarchyParams::paperDefault();
    CacheHierarchy h(p);
    h.access(0);
    // Blow L1 (64KB, 8-way = 128 sets): access many conflicting lines.
    for (std::uint64_t i = 1; i < 4000; ++i)
        h.access(i * 64);
    auto r = h.access(0);
    EXPECT_TRUE(r.hit);
    EXPECT_GT(r.latency, p.l1Latency);
}

TEST(CacheHierarchy, DdioDeliversToLlc)
{
    CacheHierarchyParams p = CacheHierarchyParams::paperDefault();
    CacheHierarchy h(p);
    EXPECT_EQ(h.deliverDdio(0), p.llcLatency);
    EXPECT_TRUE(h.llc().contains(0));
    // Not in L1/L2: a CPU access hits at LLC.
    auto r = h.access(0);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.latency, p.llcLatency);
}

TEST(CacheHierarchy, InvalidateDropsAllLevels)
{
    CacheHierarchy h(CacheHierarchyParams::paperDefault());
    h.access(0);
    h.invalidate(0);
    auto r = h.access(0);
    EXPECT_FALSE(r.hit);
}

TEST(CacheHierarchy, CrashWipesVolatileContents)
{
    CacheHierarchy h(CacheHierarchyParams::paperDefault());
    for (std::uint64_t i = 0; i < 32; ++i)
        h.access(i * 64);
    h.crash();
    auto r = h.access(0);
    EXPECT_FALSE(r.hit);
}
