/**
 * @file
 * Unit tests for the channel/bank memory timing model.
 */

#include <gtest/gtest.h>

#include "mem/memory_device.hh"
#include "sim/ticks.hh"

using namespace ddp::mem;
using namespace ddp::sim;

TEST(MemoryParams, PaperPresets)
{
    MemoryParams d = MemoryParams::dram();
    EXPECT_EQ(d.channels, 4u);
    EXPECT_EQ(d.banksPerChannel, 8u);
    EXPECT_EQ(d.readLatency, 100 * kNanosecond);
    EXPECT_EQ(d.writeLatency, 100 * kNanosecond);

    MemoryParams n = MemoryParams::nvm();
    EXPECT_EQ(n.channels, 2u);
    EXPECT_EQ(n.readLatency, 140 * kNanosecond);
    EXPECT_EQ(n.writeLatency, 400 * kNanosecond);
    EXPECT_GT(n.capacityBytes, d.capacityBytes);
}

TEST(MemoryDevice, UncontendedReadLatency)
{
    MemoryDevice dev(MemoryParams::nvm());
    Tick done = dev.read(0, 0);
    EXPECT_EQ(done, 140 * kNanosecond + dev.params().lineTransfer);
}

TEST(MemoryDevice, UncontendedWriteLatency)
{
    MemoryDevice dev(MemoryParams::nvm());
    Tick done = dev.write(1000, 64);
    EXPECT_EQ(done,
              1000 + 400 * kNanosecond + dev.params().lineTransfer);
}

TEST(MemoryDevice, SameLineAccessesSerialize)
{
    MemoryDevice dev(MemoryParams::nvm());
    Tick t1 = dev.write(0, 0);
    Tick t2 = dev.write(0, 0);
    // Same bank: the second write queues behind the first.
    EXPECT_GE(t2, t1 + 400 * kNanosecond);
}

TEST(MemoryDevice, DistinctLinesCanOverlap)
{
    MemoryDevice dev(MemoryParams::nvm());
    // Issue writes to many distinct lines at t=0; with 16 banks, at
    // least some pairs must overlap (finish well before serialized).
    Tick serialized = 0;
    Tick max_done = 0;
    for (std::uint64_t i = 0; i < 16; ++i) {
        Tick done = dev.write(0, i * 64);
        serialized += 400 * kNanosecond;
        if (done > max_done)
            max_done = done;
    }
    EXPECT_LT(max_done, serialized);
}

TEST(MemoryDevice, QueueDelayVisible)
{
    MemoryDevice dev(MemoryParams::nvm());
    EXPECT_EQ(dev.queueDelay(0, 0), 0u);
    dev.write(0, 0);
    EXPECT_GT(dev.queueDelay(0, 0), 0u);
}

TEST(MemoryDevice, CountsReadsAndWrites)
{
    MemoryDevice dev(MemoryParams::dram());
    dev.read(0, 0);
    dev.read(0, 64);
    dev.write(0, 128);
    EXPECT_EQ(dev.readCount(), 2u);
    EXPECT_EQ(dev.writeCount(), 1u);
}

TEST(MemoryDevice, BusyTicksAccumulate)
{
    MemoryDevice dev(MemoryParams::dram());
    dev.read(0, 0);
    EXPECT_EQ(dev.bankBusyTicks(), 100 * kNanosecond);
}

TEST(MemoryDevice, SaturationGrowsBacklog)
{
    MemoryDevice dev(MemoryParams::nvm());
    // Offer far more than the device can absorb at t=0.
    Tick last = 0;
    for (int i = 0; i < 1000; ++i)
        last = dev.write(0, static_cast<std::uint64_t>(i) * 64);
    // 1000 writes x 400ns over 16 banks ~ 25 us minimum.
    EXPECT_GT(last, 20 * kMicrosecond);
    EXPECT_GT(dev.totalWaitTicks(), 0u);
}

TEST(MemoryDevice, ResetClearsBacklog)
{
    MemoryDevice dev(MemoryParams::nvm());
    for (int i = 0; i < 100; ++i)
        dev.write(0, 0);
    dev.reset();
    EXPECT_EQ(dev.queueDelay(0, 0), 0u);
}

TEST(MemoryDevice, ChannelsInterleaveByLine)
{
    MemoryParams p = MemoryParams::dram();
    MemoryDevice dev(p);
    // Consecutive lines map to different channels; writes to lines
    // 0..3 at t=0 should all complete at the uncontended latency if
    // they also land in different banks (hash may collide banks, so
    // just require at least two distinct completion behaviours are
    // not serialized into one chain).
    Tick done0 = dev.write(0, 0 * 64);
    Tick done1 = dev.write(0, 1 * 64);
    EXPECT_EQ(done0, 100 * kNanosecond + p.lineTransfer);
    // Different channel: independent bus, also uncontended.
    EXPECT_LE(done1, done0 + 100 * kNanosecond);
}

TEST(MemoryDevice, OpenPageRowHitsAreFaster)
{
    MemoryParams p = MemoryParams::nvm();
    p.openPage = true;
    MemoryDevice dev(p);
    // First access to a row activates it (full latency)...
    Tick first = dev.read(0, 0);
    EXPECT_EQ(first, 140 * kNanosecond + p.lineTransfer);
    // ...re-touching the same line (hot-key persists do this
    // constantly) hits the open row. Note adjacent lines interleave
    // across channels and hashed banks, so cross-line row locality is
    // intentionally absent.
    Tick second = dev.read(first, 0);
    EXPECT_EQ(second - first, p.rowHitLatency + p.lineTransfer);
    EXPECT_EQ(dev.rowHits(), 1u);
}

TEST(MemoryDevice, OpenPageRowMissReactivates)
{
    MemoryParams p = MemoryParams::nvm();
    p.openPage = true;
    MemoryDevice dev(p);
    Tick first = dev.read(0, 0);
    // A different row in (possibly) the same bank: full latency again
    // when it maps to the same bank; row hits stay at zero regardless.
    std::uint64_t far = 64ULL * p.linesPerRow * 16;
    dev.read(first, far);
    EXPECT_EQ(dev.rowHits(), 0u);
}

TEST(MemoryDevice, ClosedPageNeverCountsRowHits)
{
    MemoryDevice dev(MemoryParams::nvm());
    dev.read(0, 0);
    dev.read(0, 64);
    dev.read(0, 0);
    EXPECT_EQ(dev.rowHits(), 0u);
}

TEST(MemoryDevice, ResetClosesOpenRows)
{
    MemoryParams p = MemoryParams::nvm();
    p.openPage = true;
    MemoryDevice dev(p);
    dev.read(0, 0);
    dev.reset();
    Tick t = dev.read(0, 0); // would be a row hit without the reset
    EXPECT_EQ(t, 140 * kNanosecond + p.lineTransfer);
    EXPECT_EQ(dev.rowHits(), 0u);
}
