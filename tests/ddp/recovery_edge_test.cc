/**
 * @file
 * RecoveryAgent edge paths not reached by recovery_test.cc: degenerate
 * coordinator inputs (zero keys, batch larger than the key space,
 * single-node clusters), hostile message-level inputs (late summaries
 * after a batch decided, stray and foreign-source acks), and the
 * cross-batch interaction where one batch's unreachable verdict lets
 * its siblings and successors complete without paying the timeout.
 *
 * Most tests drive the agent directly through hand-built Hooks and
 * hand-crafted REC_* messages — no fabric, no timers — so each edge is
 * hit deterministically rather than by tuning fault timing.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "ddp/protocol_node.hh"
#include "ddp/recovery.hh"
#include "net/fabric.hh"
#include "net/fault.hh"
#include "sim/event_queue.hh"
#include "stats/counter.hh"

using namespace ddp;
using namespace ddp::core;
using net::KeyId;
using net::Message;
using net::MsgType;
using net::NodeId;
using net::Version;
using sim::kMicrosecond;
using sim::kNanosecond;

namespace {

/**
 * A coordinator wired to in-memory hooks: sends land in an outbox the
 * test inspects and answers by calling onMessage() directly. Timer
 * hooks are left empty, which disables batch timeouts — these tests
 * exercise the message handlers, not the timeout machinery.
 */
struct DirectAgent
{
    std::map<KeyId, Version> store;
    std::vector<std::pair<NodeId, Message>> outbox;
    std::unique_ptr<RecoveryAgent> agent;

    DirectAgent(NodeId self, std::uint32_t num_nodes)
    {
        RecoveryAgent::Hooks h;
        h.persistedVersion = [this](KeyId k) {
            auto it = store.find(k);
            return it == store.end() ? Version{} : it->second;
        };
        h.install = [this](KeyId k, Version v) { store[k] = v; };
        h.send = [this](NodeId to, Message m) {
            outbox.emplace_back(to, std::move(m));
        };
        h.broadcast = [this, num_nodes, self](Message m) {
            for (NodeId n = 0; n < num_nodes; ++n) {
                if (n != self)
                    outbox.emplace_back(n, m);
            }
        };
        h.now = [] { return sim::Tick{0}; };
        agent = std::make_unique<RecoveryAgent>(self, num_nodes,
                                                std::move(h));
    }

    /** Craft a replica's REC_SUMMARY answering query @p q. */
    static Message
    summary(NodeId src, const Message &q,
            const std::vector<Version> &versions)
    {
        Message s;
        s.type = MsgType::RecSummary;
        s.src = src;
        s.key = q.key;
        s.scopeId = q.scopeId;
        s.opId = q.opId;
        for (Version v : versions)
            s.cauhist.push_back(RecoveryAgent::pack(v));
        return s;
    }

    static Message
    ack(NodeId src, std::uint64_t op_id)
    {
        Message a;
        a.type = MsgType::RecAck;
        a.src = src;
        a.opId = op_id;
        return a;
    }
};

} // namespace

TEST(RecoveryEdge, ZeroKeysCompletesWithoutAnyMessages)
{
    DirectAgent d(0, 3);
    std::optional<RecoveryReport> report;
    d.agent->startCoordinator(
        0, 16, [&](const RecoveryReport &r) { report = r; });

    ASSERT_TRUE(report.has_value());
    EXPECT_EQ(report->batches, 0u);
    EXPECT_EQ(report->keysInstalled, 0u);
    EXPECT_TRUE(d.outbox.empty());
    EXPECT_FALSE(d.agent->active());
}

TEST(RecoveryEdge, BatchLargerThanKeySpaceClampsTheQueryRange)
{
    DirectAgent d(0, 2);
    d.store[3] = Version{4, 0};
    std::optional<RecoveryReport> report;
    d.agent->startCoordinator(
        5, 64, [&](const RecoveryReport &r) { report = r; });

    // One query to the only peer, covering exactly the 5 real keys.
    ASSERT_EQ(d.outbox.size(), 1u);
    Message q = d.outbox[0].second;
    EXPECT_EQ(q.type, MsgType::RecQuery);
    EXPECT_EQ(q.key, 0u);
    EXPECT_EQ(q.scopeId, 5u);

    d.agent->onMessage(DirectAgent::summary(
        1, q,
        {Version{}, Version{}, Version{}, Version{4, 0}, Version{}}));
    ASSERT_TRUE(report.has_value());
    EXPECT_EQ(report->batches, 1u);
    EXPECT_EQ(report->keysInstalled, 1u);
    EXPECT_EQ(report->divergentKeys, 0u);
}

TEST(RecoveryEdge, SingleNodeClusterDecidesFromLocalDataAlone)
{
    DirectAgent d(0, 1);
    d.store[1] = Version{7, 0};
    d.store[6] = Version{2, 0};
    std::optional<RecoveryReport> report;
    d.agent->startCoordinator(
        8, 4, [&](const RecoveryReport &r) { report = r; });

    ASSERT_TRUE(report.has_value());
    EXPECT_EQ(report->batches, 2u);
    EXPECT_EQ(report->keysInstalled, 2u);
    EXPECT_TRUE(d.outbox.empty()) << "nobody to query or install to";
    EXPECT_TRUE(report->unreachable.empty());
    EXPECT_FALSE(report->degraded());
}

TEST(RecoveryEdge, LateAndForeignSummariesAreIgnoredAfterDecision)
{
    DirectAgent d(0, 3);
    d.store[0] = Version{1, 0};
    std::optional<RecoveryReport> report;
    d.agent->startCoordinator(
        2, 2, [&](const RecoveryReport &r) { report = r; });
    ASSERT_EQ(d.outbox.size(), 2u); // queries to nodes 1 and 2
    Message q = d.outbox[0].second;
    d.outbox.clear();

    // Node 1 disagrees (newer version) -> install round will follow.
    d.agent->onMessage(DirectAgent::summary(
        1, q, {Version{5, 1}, Version{}}));
    // A summary from a node id outside the cluster must be dropped.
    Message foreign =
        DirectAgent::summary(7, q, {Version{9, 7}, Version{9, 7}});
    d.agent->onMessage(foreign);
    // Node 2 agrees with the winner; batch decides, installs start.
    d.agent->onMessage(DirectAgent::summary(
        2, q, {Version{5, 1}, Version{}}));

    ASSERT_FALSE(report.has_value()) << "must wait for install acks";
    ASSERT_EQ(d.outbox.size(), 2u); // installs to nodes 1 and 2
    EXPECT_EQ(d.outbox[0].second.type, MsgType::RecInstall);
    EXPECT_EQ(d.store[0], (Version{5, 1}));

    // Late summaries after the decision (e.g. a timeout re-query that
    // raced the original reply) must not disturb the install phase —
    // and must not double-count keys or divergence.
    d.agent->onMessage(DirectAgent::summary(
        1, q, {Version{6, 1}, Version{6, 1}}));
    EXPECT_EQ(d.store[0], (Version{5, 1}));

    d.agent->onMessage(DirectAgent::ack(1, q.opId));
    d.agent->onMessage(DirectAgent::ack(1, q.opId)); // duplicate ack
    ASSERT_FALSE(report.has_value()) << "one ack is not two";
    d.agent->onMessage(DirectAgent::ack(2, q.opId));
    ASSERT_TRUE(report.has_value());
    EXPECT_EQ(report->keysInstalled, 1u);
    EXPECT_EQ(report->divergentKeys, 1u);

    // The batch is gone: anything still referencing it is a no-op.
    d.agent->onMessage(DirectAgent::ack(1, q.opId));
    d.agent->onMessage(DirectAgent::summary(
        2, q, {Version{8, 2}, Version{8, 2}}));
    EXPECT_EQ(d.store[0], (Version{5, 1}));
    EXPECT_FALSE(d.agent->active());
}

TEST(RecoveryEdge, AcksBeforeAnyInstallRoundAreStray)
{
    // An ack for a batch still in its summary phase (a confused or
    // malicious replica) must not complete the batch early.
    DirectAgent d(0, 3);
    std::optional<RecoveryReport> report;
    d.agent->startCoordinator(
        2, 2, [&](const RecoveryReport &r) { report = r; });
    Message q = d.outbox[0].second;

    d.agent->onMessage(DirectAgent::ack(1, q.opId));
    d.agent->onMessage(DirectAgent::ack(2, q.opId));
    EXPECT_FALSE(report.has_value());
    EXPECT_TRUE(d.agent->active());

    // Unknown batch ids are equally harmless.
    d.agent->onMessage(DirectAgent::ack(1, 999));

    d.agent->onMessage(
        DirectAgent::summary(1, q, {Version{}, Version{}}));
    d.agent->onMessage(
        DirectAgent::summary(2, q, {Version{}, Version{}}));
    ASSERT_TRUE(report.has_value());
    EXPECT_EQ(report->divergentKeys, 0u);
}

TEST(RecoveryEdge, ReplicaAnswersQueriesWhileCoordinatorRuns)
{
    // The replica role is stateless: a REC_QUERY is answered from NVM
    // even on the node that is itself coordinating (re-queries after
    // partial restarts land like this).
    DirectAgent d(1, 3);
    d.store[2] = Version{3, 1};
    Message q;
    q.type = MsgType::RecQuery;
    q.src = 0;
    q.key = 0;
    q.scopeId = 4;
    q.opId = 42;
    d.agent->onMessage(q);

    ASSERT_EQ(d.outbox.size(), 1u);
    EXPECT_EQ(d.outbox[0].first, 0u);
    const Message &s = d.outbox[0].second;
    EXPECT_EQ(s.type, MsgType::RecSummary);
    EXPECT_EQ(s.opId, 42u);
    ASSERT_EQ(s.cauhist.size(), 4u);
    EXPECT_EQ(RecoveryAgent::unpack(s.cauhist[2]), (Version{3, 1}));
    EXPECT_EQ(RecoveryAgent::unpack(s.cauhist[0]), (Version{}));
}

// --------------------------------------------------------------------------
// Cross-batch unreachable propagation (fabric-driven)
// --------------------------------------------------------------------------

namespace {

struct EdgeHarness
{
    sim::EventQueue eq;
    net::NetworkParams netp;
    std::unique_ptr<net::FaultPlan> plan;
    std::unique_ptr<net::Fabric> fabric;
    stats::CounterRegistry ctr;
    std::vector<std::unique_ptr<ProtocolNode>> nodes;

    EdgeHarness(const net::FaultConfig &fc,
                RecoveryAgent::Tuning tuning, std::uint32_t servers = 3,
                std::uint64_t keys = 64)
    {
        netp.reliability.enabled = true;
        plan = std::make_unique<net::FaultPlan>(fc, servers);
        fabric = std::make_unique<net::Fabric>(eq, netp, servers);
        fabric->setFaultPlan(plan.get());
        NodeParams np;
        np.model = {Consistency::Causal, Persistency::Synchronous};
        np.numNodes = servers;
        np.keyCount = keys;
        np.opProcessing = 100 * kNanosecond;
        np.msgProcessing = 50 * kNanosecond;
        np.probeCost = 0;
        np.recoveryTuning = tuning;
        for (std::uint32_t n = 0; n < servers; ++n) {
            nodes.push_back(std::make_unique<ProtocolNode>(
                eq, *fabric, n, np, ctr, nullptr));
        }
    }
};

} // namespace

TEST(RecoveryEdge, UnreachableVerdictSpareslaterBatchesTheTimeout)
{
    // Node 2 is dark from the start. Only the first pipelined window
    // of batches should pay timeouts: once one of them exhausts its
    // retries and declares node 2 unreachable, its siblings complete
    // from the answers at hand and every later batch launches without
    // awaiting node 2 at all. 16 batches; timeouts must stay bounded
    // by the window, not scale with the batch count.
    net::FaultConfig fc;
    fc.seed = 3;
    fc.outages.push_back(net::NodeOutage{2, 0, sim::kTickNever});
    RecoveryAgent::Tuning tuning;
    tuning.batchTimeout = 20 * kMicrosecond;
    tuning.maxRetries = 1;
    EdgeHarness h(fc, tuning);

    // A key in the very last batch, present only on node 1: proves the
    // post-unreachable batches still reconcile with the survivor.
    h.nodes[1]->installRecovered(60, Version{9, 1});
    for (auto &n : h.nodes)
        n->crashVolatile();

    std::optional<RecoveryReport> report;
    h.nodes[0]->recoveryAgent().startCoordinator(
        64, 4, [&](const RecoveryReport &r) { report = r; });
    h.eq.run();

    ASSERT_TRUE(report.has_value()) << "coordinator hung";
    EXPECT_EQ(report->batches, 16u);
    EXPECT_EQ(report->unreachable, std::vector<NodeId>{2});
    EXPECT_GT(report->timeouts, 0u);
    // First window: 4 batches x (1 retry + 1 final) timeouts at most.
    EXPECT_LE(report->timeouts, 8u)
        << "later batches must not wait for the dead replica";
    EXPECT_LE(report->retries, 4u);
    EXPECT_GE(report->quorumBatches, 1u);
    EXPECT_LE(report->quorumBatches, 4u);
    EXPECT_EQ(report->quorumFailures, 0u);
    EXPECT_EQ(h.nodes[0]->visibleVersion(60), (Version{9, 1}));
}
