/**
 * @file
 * Tests for the message-driven voting recovery (ddp/recovery.hh):
 * packing, protocol correctness on a small harness, emergence of
 * recovery time from network timing, and the paper's Sec. 9 claim that
 * weaker DDP models need a more expensive recovery.
 */

#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "cluster/cluster.hh"
#include "ddp/protocol_node.hh"
#include "ddp/recovery.hh"
#include "net/fabric.hh"
#include "net/fault.hh"
#include "net/tracer.hh"
#include "sim/event_queue.hh"
#include "stats/counter.hh"

using namespace ddp;
using namespace ddp::core;
using net::KeyId;
using net::MsgType;
using net::NodeId;
using net::Version;
using sim::kMicrosecond;
using sim::kNanosecond;

TEST(RecoveryPacking, RoundTrips)
{
    for (std::uint64_t num : {0ull, 1ull, 77ull, 1ull << 40}) {
        for (NodeId w : {0u, 3u, 255u}) {
            Version v{num, w};
            EXPECT_EQ(RecoveryAgent::unpack(RecoveryAgent::pack(v)), v);
        }
    }
}

TEST(RecoveryPacking, RoundTripsAtThe56BitBoundary)
{
    Version v{RecoveryAgent::kMaxPackableNumber, 9};
    EXPECT_EQ(RecoveryAgent::unpack(RecoveryAgent::pack(v)), v);
}

TEST(RecoveryPacking, SaturatesInsteadOfTruncating)
{
    // Version numbers beyond 2^56-1 used to shift their top bits into
    // the writer field; they now saturate, so the packed ordering
    // stays monotonic and the writer id survives intact.
    Version over{RecoveryAgent::kMaxPackableNumber + 1, 42};
    Version unpacked = RecoveryAgent::unpack(RecoveryAgent::pack(over));
    EXPECT_EQ(unpacked.number, RecoveryAgent::kMaxPackableNumber);
    EXPECT_EQ(unpacked.writer, 42u);

    Version huge{~0ull, 7};
    Version small{1, 0};
    EXPECT_GT(RecoveryAgent::pack(huge), RecoveryAgent::pack(small));
    EXPECT_EQ(RecoveryAgent::unpack(RecoveryAgent::pack(huge)).writer,
              7u);
}

namespace {

struct RecoveryHarness
{
    sim::EventQueue eq;
    net::NetworkParams netp;
    std::unique_ptr<net::FaultPlan> plan;
    std::unique_ptr<net::Fabric> fabric;
    net::MessageTracer tracer;
    stats::CounterRegistry ctr;
    std::vector<std::unique_ptr<ProtocolNode>> nodes;

    explicit RecoveryHarness(
        DdpModel model, std::uint32_t servers = 3,
        std::uint64_t keys = 64, const net::FaultConfig *fc = nullptr,
        RecoveryAgent::Tuning tuning = RecoveryAgent::Tuning())
    {
        if (fc) {
            netp.reliability.enabled = true;
            plan = std::make_unique<net::FaultPlan>(*fc, servers);
        }
        fabric = std::make_unique<net::Fabric>(eq, netp, servers);
        if (plan)
            fabric->setFaultPlan(plan.get());
        fabric->setTracer(&tracer);
        NodeParams np;
        np.model = model;
        np.numNodes = servers;
        np.keyCount = keys;
        np.opProcessing = 100 * kNanosecond;
        np.msgProcessing = 50 * kNanosecond;
        np.probeCost = 0;
        np.recoveryTuning = tuning;
        for (std::uint32_t n = 0; n < servers; ++n) {
            nodes.push_back(std::make_unique<ProtocolNode>(
                eq, *fabric, n, np, ctr, nullptr));
        }
    }
};

} // namespace

TEST(SimulatedRecovery, InstallsClusterMaximumEverywhere)
{
    RecoveryHarness h({Consistency::Causal, Persistency::Synchronous});
    // Create divergent durable state directly.
    h.nodes[0]->installRecovered(5, Version{3, 0});
    h.nodes[1]->installRecovered(5, Version{7, 1});
    h.nodes[2]->installRecovered(9, Version{2, 2});

    for (auto &n : h.nodes)
        n->crashVolatile();

    std::optional<RecoveryReport> report;
    h.nodes[0]->recoveryAgent().startCoordinator(
        64, 16, [&](const RecoveryReport &r) { report = r; });
    h.eq.run();

    ASSERT_TRUE(report.has_value());
    EXPECT_EQ(report->keysInstalled, 2u);
    EXPECT_GE(report->divergentKeys, 2u); // keys 5 and 9 disagreed
    EXPECT_EQ(report->batches, 4u);       // 64 keys / 16
    for (auto &n : h.nodes) {
        EXPECT_EQ(n->visibleVersion(5), (Version{7, 1}));
        EXPECT_EQ(n->persistedVersion(5), (Version{7, 1}));
        EXPECT_EQ(n->visibleVersion(9), (Version{2, 2}));
    }
}

TEST(SimulatedRecovery, AgreementSkipsInstallRound)
{
    RecoveryHarness h({Consistency::Linearizable,
                       Persistency::Synchronous});
    // Identical durable state everywhere.
    for (auto &n : h.nodes)
        n->installRecovered(3, Version{4, 0});
    for (auto &n : h.nodes)
        n->crashVolatile();

    std::optional<RecoveryReport> report;
    h.nodes[0]->recoveryAgent().startCoordinator(
        64, 64, [&](const RecoveryReport &r) { report = r; });
    h.eq.run();

    ASSERT_TRUE(report.has_value());
    EXPECT_EQ(report->divergentKeys, 0u);
    EXPECT_EQ(h.tracer.countOf(MsgType::RecQuery), 2u);
    EXPECT_EQ(h.tracer.countOf(MsgType::RecSummary), 2u);
    EXPECT_EQ(h.tracer.countOf(MsgType::RecInstall), 0u);
    EXPECT_EQ(h.tracer.countOf(MsgType::RecAck), 0u);
}

TEST(SimulatedRecovery, DurationEmergesFromNetworkTiming)
{
    RecoveryHarness h({Consistency::Linearizable,
                       Persistency::Synchronous});
    for (auto &n : h.nodes)
        n->crashVolatile();
    std::optional<RecoveryReport> report;
    h.nodes[0]->recoveryAgent().startCoordinator(
        64, 16, [&](const RecoveryReport &r) { report = r; });
    h.eq.run();
    ASSERT_TRUE(report.has_value());
    // At least one query/summary round trip, at most a handful.
    EXPECT_GE(report->duration(), h.netp.roundTrip);
    EXPECT_LT(report->duration(), 10 * h.netp.roundTrip);
}

TEST(SimulatedRecovery, MoreDivergenceCostsMoreTime)
{
    RecoveryHarness agree({Consistency::Linearizable,
                           Persistency::Synchronous},
                          3, 256);
    RecoveryHarness diverged({Consistency::Linearizable,
                              Persistency::Synchronous},
                             3, 256);
    for (KeyId k = 0; k < 256; ++k) {
        // Same versions everywhere in 'agree'...
        for (auto &n : agree.nodes)
            n->installRecovered(k, Version{5, 0});
        // ...but node-specific versions in 'diverged'.
        for (NodeId nid = 0; nid < 3; ++nid) {
            diverged.nodes[nid]->installRecovered(
                k, Version{5 + nid, nid});
        }
    }
    for (auto &n : agree.nodes)
        n->crashVolatile();
    for (auto &n : diverged.nodes)
        n->crashVolatile();

    std::optional<RecoveryReport> ra, rd;
    agree.nodes[0]->recoveryAgent().startCoordinator(
        256, 64, [&](const RecoveryReport &r) { ra = r; });
    diverged.nodes[0]->recoveryAgent().startCoordinator(
        256, 64, [&](const RecoveryReport &r) { rd = r; });
    agree.eq.run();
    diverged.eq.run();

    ASSERT_TRUE(ra && rd);
    EXPECT_EQ(ra->divergentKeys, 0u);
    EXPECT_EQ(rd->divergentKeys, 256u);
    // The install+ack rounds make divergent recovery slower: this is
    // the paper's "recovery complexity is higher in the weaker models".
    EXPECT_GT(rd->duration(), ra->duration());
}

// --------------------------------------------------------------------------
// Degraded mode: timeouts, quorum, unreachable replicas
// --------------------------------------------------------------------------

TEST(DegradedRecovery, UnreachableReplicaTerminatesViaQuorum)
{
    // Node 2's links are severed for the whole run: the coordinator
    // must still terminate, completing each batch on the majority
    // quorum (itself + node 1) and reporting node 2 unreachable.
    net::FaultConfig fc;
    fc.seed = 3;
    fc.outages.push_back(net::NodeOutage{2, 0, sim::kTickNever});
    RecoveryAgent::Tuning tuning;
    tuning.batchTimeout = 30 * kMicrosecond;
    tuning.maxRetries = 2;
    RecoveryHarness h({Consistency::Causal, Persistency::Synchronous},
                      3, 64, &fc, tuning);

    h.nodes[0]->installRecovered(5, Version{3, 0});
    h.nodes[1]->installRecovered(5, Version{7, 1});
    for (auto &n : h.nodes)
        n->crashVolatile();

    std::optional<RecoveryReport> report;
    h.nodes[0]->recoveryAgent().startCoordinator(
        64, 16, [&](const RecoveryReport &r) { report = r; });
    h.eq.run();

    ASSERT_TRUE(report.has_value()) << "coordinator hung";
    EXPECT_EQ(report->unreachable, std::vector<NodeId>{2});
    EXPECT_GT(report->timeouts, 0u);
    EXPECT_GT(report->retries, 0u);
    EXPECT_GT(report->quorumBatches, 0u);
    EXPECT_EQ(report->quorumFailures, 0u); // 2 of 3 is a majority
    EXPECT_TRUE(report->degraded());
    // The reachable majority still reconciled.
    EXPECT_EQ(h.nodes[0]->visibleVersion(5), (Version{7, 1}));
    EXPECT_EQ(h.nodes[1]->visibleVersion(5), (Version{7, 1}));
}

TEST(DegradedRecovery, AllReplicasUnreachableCountsQuorumFailures)
{
    net::FaultConfig fc;
    fc.seed = 3;
    fc.outages.push_back(net::NodeOutage{1, 0, sim::kTickNever});
    fc.outages.push_back(net::NodeOutage{2, 0, sim::kTickNever});
    RecoveryAgent::Tuning tuning;
    tuning.batchTimeout = 30 * kMicrosecond;
    tuning.maxRetries = 1;
    RecoveryHarness h({Consistency::Causal, Persistency::Synchronous},
                      3, 32, &fc, tuning);
    for (auto &n : h.nodes)
        n->crashVolatile();

    std::optional<RecoveryReport> report;
    h.nodes[0]->recoveryAgent().startCoordinator(
        32, 16, [&](const RecoveryReport &r) { report = r; });
    h.eq.run();

    ASSERT_TRUE(report.has_value()) << "coordinator hung";
    EXPECT_EQ(report->unreachable, (std::vector<NodeId>{1, 2}));
    EXPECT_GT(report->quorumFailures, 0u);
    EXPECT_TRUE(report->degraded());
}

TEST(DegradedRecovery, AgentTimeoutsRecoverLostMessagesWithoutLinkRetx)
{
    // Reliability off: a dropped REC_* message is gone for good, and
    // only the agent's own batch timeouts + targeted retries can save
    // the run. 40% loss makes timeouts certain; retries redraw the
    // loss dice until the round trip lands.
    net::FaultConfig fc;
    fc.seed = 21;
    fc.allLinks.dropRate = 0.4;
    RecoveryAgent::Tuning tuning;
    tuning.batchTimeout = 20 * kMicrosecond;
    tuning.maxRetries = 16;
    sim::EventQueue eq;
    net::NetworkParams netp; // reliability off
    net::FaultPlan plan(fc, 3);
    net::Fabric fabric(eq, netp, 3);
    fabric.setFaultPlan(&plan);
    stats::CounterRegistry ctr;
    NodeParams np;
    np.model = {Consistency::Causal, Persistency::Synchronous};
    np.numNodes = 3;
    np.keyCount = 64;
    np.opProcessing = 100 * kNanosecond;
    np.msgProcessing = 50 * kNanosecond;
    np.probeCost = 0;
    np.recoveryTuning = tuning;
    std::vector<std::unique_ptr<ProtocolNode>> nodes;
    for (std::uint32_t n = 0; n < 3; ++n) {
        nodes.push_back(std::make_unique<ProtocolNode>(
            eq, fabric, n, np, ctr, nullptr));
    }
    nodes[1]->installRecovered(9, Version{5, 1});
    for (auto &n : nodes)
        n->crashVolatile();

    std::optional<RecoveryReport> report;
    nodes[0]->recoveryAgent().startCoordinator(
        64, 16, [&](const RecoveryReport &r) { report = r; });
    eq.run();

    ASSERT_TRUE(report.has_value()) << "coordinator hung";
    EXPECT_GT(report->timeouts, 0u);
    EXPECT_GT(report->retries, 0u);
    EXPECT_GT(plan.drops(), 0u);
    // With 16 retries per phase the run survives 40% loss without
    // giving any replica up (deterministic for this seed).
    EXPECT_TRUE(report->unreachable.empty());
    EXPECT_EQ(nodes[0]->visibleVersion(9), (Version{5, 1}));
    EXPECT_EQ(nodes[2]->visibleVersion(9), (Version{5, 1}));
}

TEST(DegradedRecovery, DuplicatedRepliesAreCountedOnce)
{
    // 100% duplication: every REC_SUMMARY and REC_ACK arrives at least
    // twice at the link layer; reliable-delivery dedup plus the
    // agent's per-(batch, replica) filtering must count each once.
    net::FaultConfig fc;
    fc.seed = 11;
    fc.allLinks.duplicateRate = 1.0;
    RecoveryHarness h({Consistency::Causal, Persistency::Synchronous},
                      3, 64, &fc);
    h.nodes[1]->installRecovered(9, Version{5, 1});
    for (auto &n : h.nodes)
        n->crashVolatile();

    std::optional<RecoveryReport> report;
    h.nodes[0]->recoveryAgent().startCoordinator(
        64, 16, [&](const RecoveryReport &r) { report = r; });
    h.eq.run();

    ASSERT_TRUE(report.has_value());
    EXPECT_TRUE(report->unreachable.empty());
    EXPECT_FALSE(report->degraded());
    EXPECT_EQ(report->batches, 4u);
    for (auto &n : h.nodes)
        EXPECT_EQ(n->visibleVersion(9), (Version{5, 1}));
}

// --------------------------------------------------------------------------
// Cluster integration
// --------------------------------------------------------------------------

namespace {

cluster::RunResult
runSimRecovery(Consistency c, Persistency p,
               cluster::RecoveryStats &out_rs)
{
    cluster::ClusterConfig cfg;
    cfg.model = {c, p};
    cfg.numServers = 3;
    cfg.clientsPerServer = 4;
    cfg.keyCount = 2000;
    cfg.workload = workload::WorkloadSpec::ycsbA(2000);
    cfg.warmup = 200 * sim::kMicrosecond;
    cfg.measure = 500 * sim::kMicrosecond;
    cfg.recovery = cluster::RecoveryPolicy::SimulatedVoting;
    cfg.recoveryBatch = 256;
    cfg.seed = 7;
    cluster::Cluster cl(cfg);
    cl.scheduleCrash(cfg.warmup + cfg.measure / 2);
    cluster::RunResult r = cl.run();
    if (!cl.recoveries().empty())
        out_rs = cl.recoveries()[0];
    return r;
}

} // namespace

TEST(SimulatedRecovery, ClusterResumesAfterProtocolFinishes)
{
    cluster::RecoveryStats rs;
    cluster::RunResult r = runSimRecovery(
        Consistency::Causal, Persistency::Synchronous, rs);
    EXPECT_GT(r.reads + r.writes, 1000u);
    EXPECT_GT(rs.keysInstalled, 0u);
    EXPECT_GT(rs.recoveryTime, 0u);
}

TEST(SimulatedRecovery, WeakerModelsRecoverSlower)
{
    // Paper Sec. 9: strict models recover simply (all nodes share the
    // same persistent view); weak ones pay for reconciliation.
    cluster::RecoveryStats strict_rs, weak_rs;
    runSimRecovery(Consistency::Linearizable, Persistency::Synchronous,
                   strict_rs);
    runSimRecovery(Consistency::Eventual, Persistency::Eventual,
                   weak_rs);
    // The weak model's NVM images disagree on far more keys. (Total
    // recovery time converges once most batches need an install round
    // either way — the controlled unit test above isolates the time
    // effect.)
    EXPECT_GT(weak_rs.divergentKeys, strict_rs.divergentKeys * 3);
}

TEST(SimulatedRecovery, ClusterReportsUnreachableNodeInRunResult)
{
    cluster::ClusterConfig cfg;
    cfg.model = {Consistency::Causal, Persistency::Synchronous};
    cfg.numServers = 3;
    cfg.clientsPerServer = 2;
    cfg.keyCount = 1000;
    cfg.workload = workload::WorkloadSpec::ycsbA(1000);
    cfg.warmup = 100 * sim::kMicrosecond;
    cfg.measure = 2000 * sim::kMicrosecond;
    cfg.recovery = cluster::RecoveryPolicy::SimulatedVoting;
    cfg.recoveryBatch = 256;
    cfg.seed = 7;
    // Node 2 becomes unreachable shortly before the crash and stays
    // down; recovery must terminate via timeout + quorum and the run
    // must surface the node.
    cfg.faults.outages.push_back(
        net::NodeOutage{2, 250 * sim::kMicrosecond, sim::kTickNever});
    cfg.node.recoveryTuning.batchTimeout = 30 * sim::kMicrosecond;
    cfg.node.recoveryTuning.maxRetries = 2;

    cluster::Cluster cl(cfg);
    cl.scheduleCrash(300 * sim::kMicrosecond);
    cluster::RunResult r = cl.run();

    ASSERT_EQ(cl.recoveries().size(), 1u) << "recovery never finished";
    EXPECT_EQ(cl.recoveries()[0].unreachable,
              std::vector<NodeId>{2});
    EXPECT_EQ(r.unreachableNodes, std::vector<NodeId>{2});
    EXPECT_GT(r.recoveryTimeouts, 0u);
    EXPECT_GT(r.recoveryQuorumBatches, 0u);
    EXPECT_TRUE(r.degraded());
    EXPECT_GT(r.reads + r.writes, 0u) << "clients never resumed";
}
