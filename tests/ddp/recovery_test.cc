/**
 * @file
 * Tests for the message-driven voting recovery (ddp/recovery.hh):
 * packing, protocol correctness on a small harness, emergence of
 * recovery time from network timing, and the paper's Sec. 9 claim that
 * weaker DDP models need a more expensive recovery.
 */

#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "cluster/cluster.hh"
#include "ddp/protocol_node.hh"
#include "ddp/recovery.hh"
#include "net/fabric.hh"
#include "net/tracer.hh"
#include "sim/event_queue.hh"
#include "stats/counter.hh"

using namespace ddp;
using namespace ddp::core;
using net::KeyId;
using net::MsgType;
using net::NodeId;
using net::Version;
using sim::kMicrosecond;
using sim::kNanosecond;

TEST(RecoveryPacking, RoundTrips)
{
    for (std::uint64_t num : {0ull, 1ull, 77ull, 1ull << 40}) {
        for (NodeId w : {0u, 3u, 255u}) {
            Version v{num, w};
            EXPECT_EQ(RecoveryAgent::unpack(RecoveryAgent::pack(v)), v);
        }
    }
}

namespace {

struct RecoveryHarness
{
    sim::EventQueue eq;
    net::NetworkParams netp;
    std::unique_ptr<net::Fabric> fabric;
    net::MessageTracer tracer;
    stats::CounterRegistry ctr;
    std::vector<std::unique_ptr<ProtocolNode>> nodes;

    explicit RecoveryHarness(DdpModel model, std::uint32_t servers = 3,
                             std::uint64_t keys = 64)
    {
        fabric = std::make_unique<net::Fabric>(eq, netp, servers);
        fabric->setTracer(&tracer);
        NodeParams np;
        np.model = model;
        np.numNodes = servers;
        np.keyCount = keys;
        np.opProcessing = 100 * kNanosecond;
        np.msgProcessing = 50 * kNanosecond;
        np.probeCost = 0;
        for (std::uint32_t n = 0; n < servers; ++n) {
            nodes.push_back(std::make_unique<ProtocolNode>(
                eq, *fabric, n, np, ctr, nullptr));
        }
    }
};

} // namespace

TEST(SimulatedRecovery, InstallsClusterMaximumEverywhere)
{
    RecoveryHarness h({Consistency::Causal, Persistency::Synchronous});
    // Create divergent durable state directly.
    h.nodes[0]->installRecovered(5, Version{3, 0});
    h.nodes[1]->installRecovered(5, Version{7, 1});
    h.nodes[2]->installRecovered(9, Version{2, 2});

    for (auto &n : h.nodes)
        n->crashVolatile();

    std::optional<RecoveryReport> report;
    h.nodes[0]->recoveryAgent().startCoordinator(
        64, 16, [&](const RecoveryReport &r) { report = r; });
    h.eq.run();

    ASSERT_TRUE(report.has_value());
    EXPECT_EQ(report->keysInstalled, 2u);
    EXPECT_GE(report->divergentKeys, 2u); // keys 5 and 9 disagreed
    EXPECT_EQ(report->batches, 4u);       // 64 keys / 16
    for (auto &n : h.nodes) {
        EXPECT_EQ(n->visibleVersion(5), (Version{7, 1}));
        EXPECT_EQ(n->persistedVersion(5), (Version{7, 1}));
        EXPECT_EQ(n->visibleVersion(9), (Version{2, 2}));
    }
}

TEST(SimulatedRecovery, AgreementSkipsInstallRound)
{
    RecoveryHarness h({Consistency::Linearizable,
                       Persistency::Synchronous});
    // Identical durable state everywhere.
    for (auto &n : h.nodes)
        n->installRecovered(3, Version{4, 0});
    for (auto &n : h.nodes)
        n->crashVolatile();

    std::optional<RecoveryReport> report;
    h.nodes[0]->recoveryAgent().startCoordinator(
        64, 64, [&](const RecoveryReport &r) { report = r; });
    h.eq.run();

    ASSERT_TRUE(report.has_value());
    EXPECT_EQ(report->divergentKeys, 0u);
    EXPECT_EQ(h.tracer.countOf(MsgType::RecQuery), 2u);
    EXPECT_EQ(h.tracer.countOf(MsgType::RecSummary), 2u);
    EXPECT_EQ(h.tracer.countOf(MsgType::RecInstall), 0u);
    EXPECT_EQ(h.tracer.countOf(MsgType::RecAck), 0u);
}

TEST(SimulatedRecovery, DurationEmergesFromNetworkTiming)
{
    RecoveryHarness h({Consistency::Linearizable,
                       Persistency::Synchronous});
    for (auto &n : h.nodes)
        n->crashVolatile();
    std::optional<RecoveryReport> report;
    h.nodes[0]->recoveryAgent().startCoordinator(
        64, 16, [&](const RecoveryReport &r) { report = r; });
    h.eq.run();
    ASSERT_TRUE(report.has_value());
    // At least one query/summary round trip, at most a handful.
    EXPECT_GE(report->duration(), h.netp.roundTrip);
    EXPECT_LT(report->duration(), 10 * h.netp.roundTrip);
}

TEST(SimulatedRecovery, MoreDivergenceCostsMoreTime)
{
    RecoveryHarness agree({Consistency::Linearizable,
                           Persistency::Synchronous},
                          3, 256);
    RecoveryHarness diverged({Consistency::Linearizable,
                              Persistency::Synchronous},
                             3, 256);
    for (KeyId k = 0; k < 256; ++k) {
        // Same versions everywhere in 'agree'...
        for (auto &n : agree.nodes)
            n->installRecovered(k, Version{5, 0});
        // ...but node-specific versions in 'diverged'.
        for (NodeId nid = 0; nid < 3; ++nid) {
            diverged.nodes[nid]->installRecovered(
                k, Version{5 + nid, nid});
        }
    }
    for (auto &n : agree.nodes)
        n->crashVolatile();
    for (auto &n : diverged.nodes)
        n->crashVolatile();

    std::optional<RecoveryReport> ra, rd;
    agree.nodes[0]->recoveryAgent().startCoordinator(
        256, 64, [&](const RecoveryReport &r) { ra = r; });
    diverged.nodes[0]->recoveryAgent().startCoordinator(
        256, 64, [&](const RecoveryReport &r) { rd = r; });
    agree.eq.run();
    diverged.eq.run();

    ASSERT_TRUE(ra && rd);
    EXPECT_EQ(ra->divergentKeys, 0u);
    EXPECT_EQ(rd->divergentKeys, 256u);
    // The install+ack rounds make divergent recovery slower: this is
    // the paper's "recovery complexity is higher in the weaker models".
    EXPECT_GT(rd->duration(), ra->duration());
}

// --------------------------------------------------------------------------
// Cluster integration
// --------------------------------------------------------------------------

namespace {

cluster::RunResult
runSimRecovery(Consistency c, Persistency p,
               cluster::RecoveryStats &out_rs)
{
    cluster::ClusterConfig cfg;
    cfg.model = {c, p};
    cfg.numServers = 3;
    cfg.clientsPerServer = 4;
    cfg.keyCount = 2000;
    cfg.workload = workload::WorkloadSpec::ycsbA(2000);
    cfg.warmup = 200 * sim::kMicrosecond;
    cfg.measure = 500 * sim::kMicrosecond;
    cfg.recovery = cluster::RecoveryPolicy::SimulatedVoting;
    cfg.recoveryBatch = 256;
    cfg.seed = 7;
    cluster::Cluster cl(cfg);
    cl.scheduleCrash(cfg.warmup + cfg.measure / 2);
    cluster::RunResult r = cl.run();
    if (!cl.recoveries().empty())
        out_rs = cl.recoveries()[0];
    return r;
}

} // namespace

TEST(SimulatedRecovery, ClusterResumesAfterProtocolFinishes)
{
    cluster::RecoveryStats rs;
    cluster::RunResult r = runSimRecovery(
        Consistency::Causal, Persistency::Synchronous, rs);
    EXPECT_GT(r.reads + r.writes, 1000u);
    EXPECT_GT(rs.keysInstalled, 0u);
    EXPECT_GT(rs.recoveryTime, 0u);
}

TEST(SimulatedRecovery, WeakerModelsRecoverSlower)
{
    // Paper Sec. 9: strict models recover simply (all nodes share the
    // same persistent view); weak ones pay for reconciliation.
    cluster::RecoveryStats strict_rs, weak_rs;
    runSimRecovery(Consistency::Linearizable, Persistency::Synchronous,
                   strict_rs);
    runSimRecovery(Consistency::Eventual, Persistency::Eventual,
                   weak_rs);
    // The weak model's NVM images disagree on far more keys. (Total
    // recovery time converges once most batches need an install round
    // either way — the controlled unit test above isolates the time
    // effect.)
    EXPECT_GT(weak_rs.divergentKeys, strict_rs.divergentKeys * 3);
}
