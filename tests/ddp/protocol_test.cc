/**
 * @file
 * Behavioural tests of the DDP protocol engine on a small cluster.
 *
 * A harness builds N protocol nodes on a shared fabric and drives the
 * client API directly, asserting the visibility/durability semantics
 * each <consistency, persistency> binding promises. A variant harness
 * adds a raw "driver" fabric endpoint that can inject crafted protocol
 * messages (out-of-order causal UPDs, arrival-order eventual UPDs).
 */

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "ddp/protocol_node.hh"
#include "net/fabric.hh"
#include "sim/event_queue.hh"
#include "stats/counter.hh"

using namespace ddp;
using namespace ddp::core;
using net::KeyId;
using net::Message;
using net::MsgType;
using net::NodeId;
using net::Version;
using sim::kMicrosecond;
using sim::kNanosecond;
using sim::Tick;

namespace {

struct Harness
{
    sim::EventQueue eq;
    net::NetworkParams netp;
    std::unique_ptr<net::Fabric> fabric;
    stats::CounterRegistry ctr;
    XactConflictTable xt;
    std::vector<std::unique_ptr<ProtocolNode>> nodes;
    std::vector<Message> driverInbox;
    bool hasDriver = false;

    explicit Harness(DdpModel model, std::uint32_t servers = 3,
                     bool with_driver = false)
        : hasDriver(with_driver)
    {
        std::uint32_t total = servers + (with_driver ? 1 : 0);
        fabric = std::make_unique<net::Fabric>(eq, netp, total);
        NodeParams np;
        np.model = model;
        np.numNodes = total;
        np.keyCount = 64;
        // Small local costs so protocol delays dominate assertions.
        np.opProcessing = 100 * kNanosecond;
        np.msgProcessing = 50 * kNanosecond;
        np.probeCost = 0;
        for (std::uint32_t n = 0; n < servers; ++n) {
            nodes.push_back(std::make_unique<ProtocolNode>(
                eq, *fabric, n, np, ctr, &xt));
        }
        if (with_driver) {
            fabric->attach(servers, [this](const Message &m) {
                driverInbox.push_back(m);
            });
        }
    }

    NodeId driverId() const
    {
        return static_cast<NodeId>(nodes.size());
    }

    /** Issue a write and run until it completes. */
    OpResult
    writeAndWait(NodeId node, KeyId key, OpContext ctx = {})
    {
        std::optional<OpResult> out;
        nodes[node]->clientWrite(key, ctx,
                                 [&](const OpResult &r) { out = r; });
        runUntilSet(out);
        return *out;
    }

    OpResult
    readAndWait(NodeId node, KeyId key, OpContext ctx = {})
    {
        std::optional<OpResult> out;
        nodes[node]->clientRead(key, ctx,
                                [&](const OpResult &r) { out = r; });
        runUntilSet(out);
        return *out;
    }

    void
    runUntilSet(std::optional<OpResult> &out)
    {
        while (!out && eq.step()) {
        }
        ASSERT_TRUE(out.has_value()) << "operation never completed";
    }

    void drain() { eq.run(); }
    void runFor(Tick d) { eq.runUntil(eq.now() + d); }
};

} // namespace

// --------------------------------------------------------------------------
// Linearizable consistency
// --------------------------------------------------------------------------

TEST(LinearizableSync, WriteReplicatesAndPersistsEverywhere)
{
    Harness h({Consistency::Linearizable, Persistency::Synchronous});
    bool checked = false;
    h.nodes[0]->clientWrite(7, {}, [&](const OpResult &r) {
        // At client-ack time every follower has already persisted
        // (their combined ACK certified the persist).
        for (auto &n : h.nodes)
            EXPECT_EQ(n->persistedVersion(7), r.version);
        checked = true;
    });
    h.drain();
    ASSERT_TRUE(checked);
    // And after the VALs drain, the update is visible everywhere.
    for (auto &n : h.nodes)
        EXPECT_EQ(n->visibleVersion(7).number, 1u);
}

TEST(LinearizableSync, WriteLatencyIncludesRoundTrip)
{
    Harness h({Consistency::Linearizable, Persistency::Synchronous});
    OpResult r = h.writeAndWait(0, 1);
    EXPECT_GE(r.latency(), h.netp.roundTrip);
}

TEST(LinearizableSync, ReadOfQuietKeyIsFast)
{
    Harness h({Consistency::Linearizable, Persistency::Synchronous});
    h.writeAndWait(0, 1);
    h.drain();
    OpResult r = h.readAndWait(1, 1);
    EXPECT_LT(r.latency(), h.netp.roundTrip / 2);
    EXPECT_EQ(r.version.number, 1u);
}

TEST(LinearizableSync, FollowerReadStallsDuringWrite)
{
    Harness h({Consistency::Linearizable, Persistency::Synchronous});
    std::optional<OpResult> write_done, read_done;
    h.nodes[0]->clientWrite(3, {},
                            [&](const OpResult &r) { write_done = r; });
    // Issue the read at a follower once the INV is in flight.
    h.eq.schedule(700 * kNanosecond, [&] {
        h.nodes[1]->clientRead(3, {},
                               [&](const OpResult &r) { read_done = r; });
    });
    h.drain();
    ASSERT_TRUE(write_done && read_done);
    // The read saw the new version (it waited for the VAL).
    EXPECT_EQ(read_done->version, write_done->version);
    EXPECT_GT(h.ctr.get("reads_stalled_visibility"), 0u);
}

TEST(LinearizableSync, SameKeyWritesSerializePerCoordinator)
{
    Harness h({Consistency::Linearizable, Persistency::Synchronous});
    std::optional<OpResult> first, second;
    h.nodes[0]->clientWrite(5, {},
                            [&](const OpResult &r) { first = r; });
    // Issue the second write strictly after the first one's round is
    // in flight, so it must queue behind it.
    h.eq.schedule(400 * kNanosecond, [&] {
        h.nodes[0]->clientWrite(5, {},
                                [&](const OpResult &r) { second = r; });
    });
    h.drain();
    ASSERT_TRUE(first && second);
    EXPECT_LT(first->version, second->version);
    EXPECT_LT(first->completedAt, second->completedAt);
    for (auto &n : h.nodes)
        EXPECT_EQ(n->visibleVersion(5), second->version);
}

TEST(LinearizableSync, ConcurrentCoordinatorsConverge)
{
    Harness h({Consistency::Linearizable, Persistency::Synchronous});
    h.nodes[0]->clientWrite(9, {}, [](const OpResult &) {});
    h.nodes[1]->clientWrite(9, {}, [](const OpResult &) {});
    h.drain();
    Version v0 = h.nodes[0]->visibleVersion(9);
    for (auto &n : h.nodes)
        EXPECT_EQ(n->visibleVersion(9), v0);
    EXPECT_GT(v0.number, 0u);
}

// --------------------------------------------------------------------------
// Read-Enforced consistency
// --------------------------------------------------------------------------

TEST(ReadEnforcedSync, WriteCompletesBeforeRoundTrip)
{
    Harness h({Consistency::ReadEnforced, Persistency::Synchronous});
    OpResult w = h.writeAndWait(0, 2);
    EXPECT_LT(w.latency(), h.netp.roundTrip / 2);
    h.drain();
    for (auto &n : h.nodes) {
        EXPECT_EQ(n->visibleVersion(2), w.version);
        EXPECT_EQ(n->persistedVersion(2), w.version);
    }
}

TEST(ReadEnforcedSync, ReadAfterWriteWaitsForReplication)
{
    Harness h({Consistency::ReadEnforced, Persistency::Synchronous});
    OpResult w = h.writeAndWait(0, 2);
    // Immediately read at the coordinator: Read-Enforced consistency
    // stalls it until all replicas are updated (and persisted).
    bool checked = false;
    h.nodes[0]->clientRead(2, {}, [&](const OpResult &r) {
        EXPECT_EQ(r.version, w.version);
        for (auto &n : h.nodes)
            EXPECT_EQ(n->persistedVersion(2), w.version);
        checked = true;
    });
    h.drain();
    ASSERT_TRUE(checked);
    EXPECT_GT(h.ctr.get("reads_stalled_visibility"), 0u);
}

// --------------------------------------------------------------------------
// Strict persistency
// --------------------------------------------------------------------------

class StrictPersistency
    : public ::testing::TestWithParam<Consistency>
{
};

TEST_P(StrictPersistency, WriteCompletionImpliesDurableEverywhere)
{
    Harness h({GetParam(), Persistency::Strict});
    OpContext ctx;
    std::uint64_t xid = 0;
    if (GetParam() == Consistency::Transactional) {
        xid = 42;
        std::optional<OpResult> init;
        h.nodes[0]->clientInitXact(
            xid, [&](const OpResult &r) { init = r; });
        h.runUntilSet(init);
        ctx.xactId = xid;
    }
    bool checked = false;
    h.nodes[0]->clientWrite(4, ctx, [&](const OpResult &r) {
        ASSERT_FALSE(r.aborted);
        for (auto &n : h.nodes)
            EXPECT_EQ(n->persistedVersion(4), r.version)
                << "node " << n->id();
        checked = true;
    });
    h.drain();
    ASSERT_TRUE(checked);
}

INSTANTIATE_TEST_SUITE_P(
    AllConsistencies, StrictPersistency,
    ::testing::Values(Consistency::Linearizable,
                      Consistency::ReadEnforced,
                      Consistency::Transactional, Consistency::Causal,
                      Consistency::Eventual),
    [](const ::testing::TestParamInfo<Consistency> &info) {
        std::string s = consistencyName(info.param);
        s.erase(std::remove(s.begin(), s.end(), '-'), s.end());
        return s;
    });

// --------------------------------------------------------------------------
// Read-Enforced persistency
// --------------------------------------------------------------------------

TEST(LinearizableReadEnforcedP, ReadWaitsForGlobalPersist)
{
    Harness h({Consistency::Linearizable, Persistency::ReadEnforced});
    std::optional<OpResult> w;
    h.nodes[0]->clientWrite(6, {}, [&](const OpResult &r) { w = r; });
    h.runUntilSet(w);
    bool checked = false;
    h.nodes[0]->clientRead(6, {}, [&](const OpResult &r) {
        EXPECT_EQ(r.version, w->version);
        // Read-Enforced persistency: by read time the update is
        // durable on every replica.
        for (auto &n : h.nodes)
            EXPECT_GE(n->persistedVersion(6), w->version);
        checked = true;
    });
    h.drain();
    ASSERT_TRUE(checked);
    EXPECT_GT(h.ctr.get("reads_stalled_persist"), 0u);
}

TEST(CausalReadEnforcedP, ReadWaitsForLocalPersist)
{
    Harness h({Consistency::Causal, Persistency::ReadEnforced});
    OpResult w = h.writeAndWait(0, 6);
    bool checked = false;
    h.nodes[0]->clientRead(6, {}, [&](const OpResult &r) {
        EXPECT_EQ(r.version, w.version);
        EXPECT_GE(h.nodes[0]->persistedVersion(6), w.version);
        checked = true;
    });
    h.drain();
    ASSERT_TRUE(checked);
}

// --------------------------------------------------------------------------
// Scope persistency
// --------------------------------------------------------------------------

TEST(LinearizableScope, WritesDeferPersistUntilScopeEnd)
{
    Harness h({Consistency::Linearizable, Persistency::Scope});
    OpContext ctx;
    ctx.scopeId = 77;
    OpResult w1 = h.writeAndWait(0, 10, ctx);
    OpResult w2 = h.writeAndWait(0, 11, ctx);
    h.drain();
    // Visible everywhere but durable nowhere.
    for (auto &n : h.nodes) {
        EXPECT_EQ(n->visibleVersion(10), w1.version);
        EXPECT_EQ(n->persistedVersion(10).number, 0u);
        EXPECT_EQ(n->persistedVersion(11).number, 0u);
    }
    bool checked = false;
    h.nodes[0]->clientPersistScope(77, [&](const OpResult &) {
        for (auto &n : h.nodes) {
            EXPECT_EQ(n->persistedVersion(10), w1.version);
            EXPECT_EQ(n->persistedVersion(11), w2.version);
        }
        checked = true;
    });
    h.drain();
    ASSERT_TRUE(checked);
}

TEST(LinearizableScope, EmptyScopePersistCompletes)
{
    Harness h({Consistency::Linearizable, Persistency::Scope});
    std::optional<OpResult> done;
    h.nodes[0]->clientPersistScope(123,
                                   [&](const OpResult &r) { done = r; });
    h.drain();
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(done->kind, OpKind::PersistScope);
}

// --------------------------------------------------------------------------
// Causal consistency
// --------------------------------------------------------------------------

TEST(CausalSync, ReadReturnsPersistedVersion)
{
    Harness h({Consistency::Causal, Persistency::Synchronous});
    OpResult w = h.writeAndWait(0, 8);
    // Immediately after the (fast) write the local persist is still in
    // flight: a read returns the previous durable version.
    OpResult r1 = h.readAndWait(0, 8);
    EXPECT_LT(r1.version, w.version);
    h.drain();
    OpResult r2 = h.readAndWait(0, 8);
    EXPECT_EQ(r2.version, w.version);
}

TEST(CausalSync, WritesAreFast)
{
    Harness h({Consistency::Causal, Persistency::Synchronous});
    OpResult w = h.writeAndWait(0, 8);
    EXPECT_LT(w.latency(), h.netp.roundTrip / 2);
}

TEST(CausalSync, PropagatesToFollowers)
{
    Harness h({Consistency::Causal, Persistency::Synchronous});
    OpResult w = h.writeAndWait(0, 8);
    h.drain();
    for (auto &n : h.nodes) {
        EXPECT_EQ(n->visibleVersion(8), w.version);
        EXPECT_EQ(n->persistedVersion(8), w.version);
    }
}

TEST(CausalSync, UpdWithUnsatisfiedDepsIsBuffered)
{
    // Driver node 3 injects an UPD that causally depends on a write by
    // node 1 which has not happened yet: it must buffer until node 1's
    // update is applied (and, under Synchronous persistency, durable).
    Harness h({Consistency::Causal, Persistency::Synchronous}, 3,
              /*with_driver=*/true);
    NodeId drv = h.driverId();

    Message d2;
    d2.type = MsgType::Upd;
    d2.src = drv;
    d2.dst = 0;
    d2.key = 21;
    d2.version = Version{1, drv};
    d2.hasData = true;
    d2.cauhist = {0, 1, 0, 0}; // depends on node 1's first write

    h.fabric->send(d2);
    h.runFor(2 * kMicrosecond);
    EXPECT_EQ(h.nodes[0]->causalBufferSize(), 1u);
    EXPECT_EQ(h.nodes[0]->visibleVersion(21).number, 0u);

    // Node 1 now performs the write d2 depends on.
    OpResult w = h.writeAndWait(1, 20);
    h.drain();
    EXPECT_EQ(h.nodes[0]->causalBufferSize(), 0u);
    EXPECT_EQ(h.nodes[0]->visibleVersion(20), w.version);
    EXPECT_EQ(h.nodes[0]->visibleVersion(21).number, 1u);
    EXPECT_GE(h.nodes[0]->causalBufferPeak(), 1u);
    EXPECT_GT(h.ctr.get("causal_buffered"), 0u);
}

TEST(CausalSync, DurableGatingOrdersPersistsBeforeApply)
{
    // Under Synchronous persistency a buffered UPD may only apply once
    // its dependencies are durable locally: at apply time of the
    // dependent update, the dependency's persist must have completed.
    Harness h({Consistency::Causal, Persistency::Synchronous}, 3,
              /*with_driver=*/true);
    NodeId drv = h.driverId();

    Message d2;
    d2.type = MsgType::Upd;
    d2.src = drv;
    d2.dst = 0;
    d2.key = 21;
    d2.version = Version{1, drv};
    d2.hasData = true;
    d2.cauhist = {0, 1, 0, 0};
    h.fabric->send(d2);
    h.runFor(2 * kMicrosecond);

    OpResult w = h.writeAndWait(1, 20);
    h.drain();
    // Both updates applied and durable, in dependency order.
    EXPECT_GE(h.nodes[0]->persistedVersion(20), w.version);
    EXPECT_EQ(h.nodes[0]->persistedVersion(21).number, 1u);
}

TEST(CausalSync, CrossNodeDependencyRespected)
{
    Harness h({Consistency::Causal, Persistency::Synchronous});
    // Node 0 writes k1; after it propagates, node 1 writes k2 (which
    // causally depends on k1 through node 1's applied clock).
    OpResult w1 = h.writeAndWait(0, 1);
    h.drain();
    OpResult w2 = h.writeAndWait(1, 2);
    h.drain();
    // Everyone who sees k2 also sees k1.
    for (auto &n : h.nodes) {
        if (n->visibleVersion(2) == w2.version) {
            EXPECT_EQ(n->visibleVersion(1), w1.version);
        }
    }
}

// --------------------------------------------------------------------------
// Eventual consistency
// --------------------------------------------------------------------------

TEST(EventualSync, PropagationIsLazy)
{
    Harness h({Consistency::Eventual, Persistency::Synchronous});
    OpResult w = h.writeAndWait(0, 12);
    EXPECT_LT(w.latency(), h.netp.roundTrip / 2);
    // Well before the lazy delay the followers are stale.
    h.runFor(1 * kMicrosecond);
    EXPECT_EQ(h.nodes[1]->visibleVersion(12).number, 0u);
    h.drain();
    EXPECT_EQ(h.nodes[1]->visibleVersion(12), w.version);
}

TEST(EventualEventual, ArrivalOrderCanRegressVersions)
{
    Harness h({Consistency::Eventual, Persistency::Eventual}, 3,
              /*with_driver=*/true);
    NodeId drv = h.driverId();

    Message newer;
    newer.type = MsgType::Upd;
    newer.src = drv;
    newer.dst = 0;
    newer.key = 30;
    newer.version = Version{5, drv};
    newer.hasData = true;

    Message older = newer;
    older.version = Version{2, drv};

    // Same source QP: delivery order matches send order.
    h.fabric->send(newer);
    h.fabric->send(older);
    h.drain();
    // Arrival-order application leaves the *older* version visible —
    // exactly why Eventual consistency loses monotonic reads.
    EXPECT_EQ(h.nodes[0]->visibleVersion(30).number, 2u);
}

// --------------------------------------------------------------------------
// Transactional consistency
// --------------------------------------------------------------------------

namespace {

/** Run a full transaction of writes at @p node; returns versions. */
std::vector<Version>
runXact(Harness &h, NodeId node, std::uint64_t xid,
        const std::vector<KeyId> &keys, bool &committed)
{
    std::optional<OpResult> step;
    h.nodes[node]->clientInitXact(xid,
                                  [&](const OpResult &r) { step = r; });
    h.runUntilSet(step);
    std::vector<Version> vers;
    OpContext ctx;
    ctx.xactId = xid;
    for (KeyId k : keys) {
        step.reset();
        h.nodes[node]->clientWrite(k, ctx,
                                   [&](const OpResult &r) { step = r; });
        h.runUntilSet(step);
        EXPECT_FALSE(step->aborted);
        vers.push_back(step->version);
    }
    step.reset();
    h.nodes[node]->clientEndXact(xid, true,
                                 [&](const OpResult &r) { step = r; });
    h.runUntilSet(step);
    committed = !step->aborted;
    return vers;
}

} // namespace

TEST(TransactionalSync, CommitAppliesAndPersistsEverywhere)
{
    Harness h({Consistency::Transactional, Persistency::Synchronous});
    bool committed = false;
    auto vers = runXact(h, 0, 1, {40, 41}, committed);
    ASSERT_TRUE(committed);
    h.drain();
    for (auto &n : h.nodes) {
        EXPECT_EQ(n->visibleVersion(40), vers[0]);
        EXPECT_EQ(n->visibleVersion(41), vers[1]);
        EXPECT_EQ(n->persistedVersion(40), vers[0]);
        EXPECT_EQ(n->persistedVersion(41), vers[1]);
    }
    EXPECT_EQ(h.ctr.get("xact_committed"), 1u);
}

TEST(TransactionalSync, FollowersSeeNothingBeforeCommit)
{
    Harness h({Consistency::Transactional, Persistency::Synchronous});
    std::optional<OpResult> step;
    h.nodes[0]->clientInitXact(1, [&](const OpResult &r) { step = r; });
    h.runUntilSet(step);
    OpContext ctx;
    ctx.xactId = 1;
    step.reset();
    h.nodes[0]->clientWrite(50, ctx,
                            [&](const OpResult &r) { step = r; });
    h.runUntilSet(step);
    h.runFor(3 * kMicrosecond); // INVs delivered, ENDX not sent
    EXPECT_EQ(h.nodes[1]->visibleVersion(50).number, 0u);
    EXPECT_EQ(h.nodes[2]->visibleVersion(50).number, 0u);
    // Committed state at the coordinator is also untouched, but the
    // transaction reads its own write through its write set.
    EXPECT_EQ(h.nodes[0]->visibleVersion(50).number, 0u);
    step.reset();
    h.nodes[0]->clientRead(50, ctx, [&](const OpResult &r) { step = r; });
    h.runUntilSet(step);
    EXPECT_EQ(step->version.number, 1u);
}

TEST(TransactionalSync, AbortRollsBackCoordinator)
{
    Harness h({Consistency::Transactional, Persistency::Synchronous});
    // Seed key 60 with a committed value (non-transactional writes
    // degenerate to an invalidation round).
    h.writeAndWait(0, 60);
    h.drain();
    Version before = h.nodes[0]->visibleVersion(60);

    std::optional<OpResult> step;
    h.nodes[0]->clientInitXact(2, [&](const OpResult &r) { step = r; });
    h.runUntilSet(step);
    OpContext ctx;
    ctx.xactId = 2;
    step.reset();
    h.nodes[0]->clientWrite(60, ctx,
                            [&](const OpResult &r) { step = r; });
    h.runUntilSet(step);
    Version uncommitted = step->version;
    EXPECT_GT(uncommitted, before);
    // Committed state is untouched while the transaction is open (no
    // dirty reads for other clients)...
    EXPECT_EQ(h.nodes[0]->visibleVersion(60), before);
    // ...but the transaction reads its own write.
    step.reset();
    h.nodes[0]->clientRead(60, ctx,
                           [&](const OpResult &r) { step = r; });
    h.runUntilSet(step);
    EXPECT_EQ(step->version, uncommitted);

    step.reset();
    h.nodes[0]->clientEndXact(2, false,
                              [&](const OpResult &r) { step = r; });
    h.runUntilSet(step);
    EXPECT_TRUE(step->aborted);
    h.drain();
    for (auto &n : h.nodes)
        EXPECT_EQ(n->visibleVersion(60), before);
    EXPECT_EQ(h.ctr.get("xact_aborted"), 1u);
}

TEST(TransactionalSync, ConflictSquashesYoungerXact)
{
    Harness h({Consistency::Transactional, Persistency::Synchronous});
    std::optional<OpResult> s1, s2;
    h.nodes[0]->clientInitXact(1, [&](const OpResult &r) { s1 = r; });
    h.nodes[1]->clientInitXact(2, [&](const OpResult &r) { s2 = r; });
    h.runUntilSet(s1);
    h.runUntilSet(s2);

    OpContext c1{1, 0}, c2{2, 0};
    s1.reset();
    s2.reset();
    // Write the same key from both coordinators at the same tick: the
    // second access falls inside the first one's conflict window.
    h.nodes[0]->clientWrite(45, c1,
                            [&](const OpResult &r) { s1 = r; });
    h.nodes[1]->clientWrite(45, c2,
                            [&](const OpResult &r) { s2 = r; });
    h.drain();
    ASSERT_TRUE(s1 && s2);
    // At least one of the two transactions experienced a conflict.
    EXPECT_GT(h.ctr.get("xact_conflicts"), 0u);
}

TEST(TransactionalSync, ReadSeesOwnUncommittedWrite)
{
    Harness h({Consistency::Transactional, Persistency::Synchronous});
    std::optional<OpResult> step;
    h.nodes[0]->clientInitXact(1, [&](const OpResult &r) { step = r; });
    h.runUntilSet(step);
    OpContext ctx;
    ctx.xactId = 1;
    step.reset();
    h.nodes[0]->clientWrite(55, ctx,
                            [&](const OpResult &r) { step = r; });
    h.runUntilSet(step);
    Version written = step->version;
    step.reset();
    h.nodes[0]->clientRead(55, ctx,
                           [&](const OpResult &r) { step = r; });
    h.runUntilSet(step);
    EXPECT_EQ(step->version, written);
}

// --------------------------------------------------------------------------
// Crash and recovery
// --------------------------------------------------------------------------

TEST(Crash, VolatileLostDurableSurvives)
{
    Harness h({Consistency::Linearizable, Persistency::Scope});
    OpContext ctx;
    ctx.scopeId = 5;
    OpResult w = h.writeAndWait(0, 15, ctx);
    h.drain();
    // Visible everywhere, durable nowhere (scope still open).
    EXPECT_EQ(h.nodes[1]->visibleVersion(15), w.version);
    for (auto &n : h.nodes)
        n->crashVolatile();
    for (auto &n : h.nodes) {
        EXPECT_EQ(n->visibleVersion(15).number, 0u);
        EXPECT_EQ(n->persistedVersion(15).number, 0u);
    }
}

TEST(Crash, SynchronousWriteSurvives)
{
    Harness h({Consistency::Linearizable, Persistency::Synchronous});
    OpResult w = h.writeAndWait(0, 16);
    h.drain();
    for (auto &n : h.nodes)
        n->crashVolatile();
    for (auto &n : h.nodes) {
        EXPECT_EQ(n->persistedVersion(16), w.version);
        EXPECT_EQ(n->visibleVersion(16), w.version);
    }
}

TEST(Crash, InFlightTrafficIsDiscarded)
{
    Harness h({Consistency::Linearizable, Persistency::Synchronous});
    std::optional<OpResult> w;
    h.nodes[0]->clientWrite(17, {}, [&](const OpResult &r) { w = r; });
    // Crash all nodes while INVs are in flight.
    h.eq.schedule(300 * kNanosecond, [&] {
        for (auto &n : h.nodes)
            n->crashVolatile();
    });
    h.drain();
    // The write never completed and no node ended up inconsistent.
    EXPECT_FALSE(w.has_value());
    for (auto &n : h.nodes)
        EXPECT_EQ(n->visibleVersion(17), n->persistedVersion(17));
}

TEST(Crash, EpochIncrements)
{
    Harness h({Consistency::Causal, Persistency::Synchronous});
    EXPECT_EQ(h.nodes[0]->epoch(), 0u);
    h.nodes[0]->crashVolatile();
    EXPECT_EQ(h.nodes[0]->epoch(), 1u);
}

TEST(Crash, InstallRecoveredSetsBothViews)
{
    Harness h({Consistency::Causal, Persistency::Synchronous});
    Version v{9, 2};
    h.nodes[0]->installRecovered(33, v);
    EXPECT_EQ(h.nodes[0]->visibleVersion(33), v);
    EXPECT_EQ(h.nodes[0]->persistedVersion(33), v);
}

TEST(Crash, AbortInFlightKeepsVolatileData)
{
    Harness h({Consistency::Causal, Persistency::Eventual});
    OpResult w = h.writeAndWait(0, 18);
    h.drain();
    h.nodes[0]->abortInFlight();
    // Volatile value survives; only protocol state was dropped.
    EXPECT_EQ(h.nodes[0]->visibleVersion(18), w.version);
}

// --------------------------------------------------------------------------
// Traffic accounting
// --------------------------------------------------------------------------

TEST(Traffic, LinearizableWriteUsesInvAckVal)
{
    Harness h({Consistency::Linearizable, Persistency::Synchronous});
    h.writeAndWait(0, 1);
    h.drain();
    // 3 nodes: 2 INV + 2 ACK + 2 VAL = 6 messages.
    EXPECT_EQ(h.fabric->totalMessages(), 6u);
}

TEST(Traffic, ReadEnforcedPersistencyDoublesAcks)
{
    Harness h({Consistency::Linearizable, Persistency::ReadEnforced});
    h.writeAndWait(0, 1);
    h.drain();
    // 2 INV + 2 ACK_c + 2 ACK_p + 2 VAL_c + 2 VAL_p = 10.
    EXPECT_EQ(h.fabric->totalMessages(), 10u);
}

TEST(Traffic, CausalWriteSendsOnlyUpds)
{
    Harness h({Consistency::Causal, Persistency::Synchronous});
    h.writeAndWait(0, 1);
    h.drain();
    EXPECT_EQ(h.fabric->totalMessages(), 2u); // 2 UPDs
}
