/**
 * @file
 * Interleaving exploration: run a contended scenario — two concurrent
 * writes to the same key from different coordinators — while holding
 * every delivered protocol message in per-connection queues, then
 * release the messages in many randomly sampled orders (respecting the
 * per-queue-pair FIFO the protocols rely on). Invariants must survive
 * every explored schedule:
 *
 *  - both writes complete;
 *  - ACK-round models: every replica converges to the same winner, the
 *    lexicographic maximum of the two versions;
 *  - Synchronous persistency: the winner is durable everywhere;
 *  - Eventual consistency: each replica ends on one of the two written
 *    versions (arrival order decides which — divergence is the model's
 *    documented behaviour, not a bug).
 *
 * This is a bounded model-checking-style property test: ~60 schedules
 * per model, deterministic via seeded sampling.
 */

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <memory>
#include <optional>

#include "ddp/protocol_node.hh"
#include "net/fabric.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "stats/counter.hh"

using namespace ddp;
using namespace ddp::core;
using net::KeyId;
using net::Message;
using net::NodeId;
using net::Version;
using sim::kNanosecond;

namespace {

constexpr std::uint32_t kServers = 3;
constexpr KeyId kKey = 7;

struct Exploration
{
    sim::EventQueue eq;
    net::NetworkParams netp;
    std::unique_ptr<net::Fabric> fabric;
    stats::CounterRegistry ctr;
    std::vector<std::unique_ptr<ProtocolNode>> nodes;
    /** Held messages, FIFO per (src, dst) connection. */
    std::map<std::pair<NodeId, NodeId>, std::deque<Message>> held;
    int completedWrites = 0;
    std::optional<Version> v0, v1;

    explicit Exploration(DdpModel model)
    {
        fabric = std::make_unique<net::Fabric>(eq, netp, kServers);
        NodeParams np;
        np.model = model;
        np.numNodes = kServers;
        np.keyCount = 16;
        np.opProcessing = 100 * kNanosecond;
        np.msgProcessing = 50 * kNanosecond;
        np.probeCost = 0;
        for (std::uint32_t n = 0; n < kServers; ++n) {
            nodes.push_back(std::make_unique<ProtocolNode>(
                eq, *fabric, n, np, ctr, nullptr));
        }
        // Intercept deliveries: messages park in per-connection queues
        // until the explorer releases them.
        for (NodeId n = 0; n < kServers; ++n) {
            fabric->attach(n, [this, n](const Message &m) {
                held[{m.src, n}].push_back(m);
            });
        }
    }

    void
    run(std::uint64_t schedule_seed)
    {
        // Two concurrent writes to the same key from two coordinators.
        nodes[0]->clientWrite(kKey, {}, [this](const OpResult &r) {
            ++completedWrites;
            v0 = r.version;
        });
        nodes[1]->clientWrite(kKey, {}, [this](const OpResult &r) {
            ++completedWrites;
            v1 = r.version;
        });
        eq.run();

        // Release held messages one at a time in a sampled order that
        // preserves per-connection FIFO.
        sim::Pcg32 rng(schedule_seed, 17);
        for (;;) {
            std::vector<std::pair<NodeId, NodeId>> ready;
            for (auto &[conn, q] : held) {
                if (!q.empty())
                    ready.push_back(conn);
            }
            if (ready.empty())
                break;
            auto conn = ready[rng.nextBounded(
                static_cast<std::uint32_t>(ready.size()))];
            Message m = held[conn].front();
            held[conn].pop_front();
            nodes[conn.second]->deliver(m);
            eq.run();
        }
        eq.run();
    }
};

} // namespace

class Interleavings : public ::testing::TestWithParam<DdpModel>
{
};

TEST_P(Interleavings, InvariantsHoldUnderAllSampledSchedules)
{
    const DdpModel model = GetParam();
    const bool ack_round =
        model.consistency == Consistency::Linearizable ||
        model.consistency == Consistency::ReadEnforced;

    for (std::uint64_t seed = 1; seed <= 60; ++seed) {
        Exploration x(model);
        x.run(seed);

        ASSERT_EQ(x.completedWrites, 2) << "schedule " << seed;
        ASSERT_TRUE(x.v0 && x.v1);
        Version winner = *x.v0 < *x.v1 ? *x.v1 : *x.v0;

        if (ack_round || model.consistency == Consistency::Causal) {
            // Conflict resolution: every replica converges to the
            // lexicographic maximum regardless of delivery order.
            for (auto &n : x.nodes) {
                ASSERT_EQ(n->visibleVersion(kKey), winner)
                    << "schedule " << seed << " node " << n->id();
            }
            if (model.persistency == Persistency::Synchronous ||
                model.persistency == Persistency::Strict) {
                for (auto &n : x.nodes) {
                    ASSERT_EQ(n->persistedVersion(kKey), winner)
                        << "schedule " << seed << " node " << n->id();
                }
            }
        } else {
            // Eventual consistency applies in arrival order: each
            // replica must end on one of the two written versions.
            for (auto &n : x.nodes) {
                Version v = n->visibleVersion(kKey);
                ASSERT_TRUE(v == *x.v0 || v == *x.v1)
                    << "schedule " << seed << " node " << n->id();
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Contended, Interleavings,
    ::testing::Values(
        DdpModel{Consistency::Linearizable, Persistency::Synchronous},
        DdpModel{Consistency::Linearizable, Persistency::ReadEnforced},
        DdpModel{Consistency::Linearizable, Persistency::Eventual},
        DdpModel{Consistency::ReadEnforced, Persistency::Synchronous},
        DdpModel{Consistency::ReadEnforced, Persistency::Scope},
        DdpModel{Consistency::Causal, Persistency::Synchronous},
        DdpModel{Consistency::Causal, Persistency::Eventual},
        DdpModel{Consistency::Eventual, Persistency::Synchronous}),
    [](const ::testing::TestParamInfo<DdpModel> &info) {
        std::string s = modelName(info.param);
        std::string out;
        for (char ch : s) {
            if (std::isalnum(static_cast<unsigned char>(ch)))
                out += ch;
            else if (ch == ',')
                out += '_';
        }
        return out;
    });
