/**
 * @file
 * Unit tests for vector clocks and the transaction conflict table.
 */

#include <gtest/gtest.h>

#include "ddp/vector_clock.hh"
#include "ddp/xact_table.hh"
#include "sim/ticks.hh"

using namespace ddp::core;
using ddp::sim::kMicrosecond;

TEST(VectorClock, DefaultDominatesItself)
{
    VectorClock a(3), b(3);
    EXPECT_TRUE(a.dominates(b));
    EXPECT_TRUE(b.dominates(a));
}

TEST(VectorClock, DominanceIsComponentWise)
{
    VectorClock a(3), b(3);
    a[0] = 5;
    a[1] = 2;
    b[0] = 4;
    b[1] = 2;
    EXPECT_TRUE(a.dominates(b));
    EXPECT_FALSE(b.dominates(a));
    b[2] = 1;
    EXPECT_FALSE(a.dominates(b)); // incomparable now
    EXPECT_FALSE(b.dominates(a));
}

TEST(VectorClock, MergeTakesMax)
{
    VectorClock a(3), b(3);
    a[0] = 5;
    b[1] = 7;
    a.mergeFrom(b);
    EXPECT_EQ(a[0], 5u);
    EXPECT_EQ(a[1], 7u);
    EXPECT_TRUE(a.dominates(b));
}

TEST(VectorClock, RawRoundTrip)
{
    VectorClock a(4);
    a[2] = 9;
    VectorClock b = VectorClock::fromRaw(a.raw());
    EXPECT_EQ(a, b);
    EXPECT_EQ(b.size(), 4u);
}

TEST(XactTable, NoConflictOnDistinctKeys)
{
    XactConflictTable t;
    t.begin(1);
    t.begin(2);
    EXPECT_FALSE(t.accessConflicts(1, 10, true, 0, kMicrosecond));
    EXPECT_FALSE(t.accessConflicts(2, 20, true, 0, kMicrosecond));
    EXPECT_EQ(t.conflictCount(), 0u);
}

TEST(XactTable, WriteWriteConflicts)
{
    XactConflictTable t;
    t.begin(1);
    t.begin(2);
    EXPECT_FALSE(t.accessConflicts(1, 10, true, 100, kMicrosecond));
    EXPECT_TRUE(t.accessConflicts(2, 10, true, 200, kMicrosecond));
    EXPECT_EQ(t.conflictCount(), 1u);
}

TEST(XactTable, ReadWriteConflicts)
{
    XactConflictTable t;
    t.begin(1);
    t.begin(2);
    EXPECT_FALSE(t.accessConflicts(1, 10, true, 100, kMicrosecond));
    EXPECT_TRUE(t.accessConflicts(2, 10, false, 200, kMicrosecond));
}

TEST(XactTable, WriteAfterReadConflicts)
{
    XactConflictTable t;
    t.begin(1);
    t.begin(2);
    EXPECT_FALSE(t.accessConflicts(1, 10, false, 100, kMicrosecond));
    EXPECT_TRUE(t.accessConflicts(2, 10, true, 200, kMicrosecond));
}

TEST(XactTable, ReadReadDoesNotConflict)
{
    XactConflictTable t;
    t.begin(1);
    t.begin(2);
    EXPECT_FALSE(t.accessConflicts(1, 10, false, 100, kMicrosecond));
    EXPECT_FALSE(t.accessConflicts(2, 10, false, 200, kMicrosecond));
}

TEST(XactTable, AccessesAgeOutOfWindow)
{
    XactConflictTable t;
    t.begin(1);
    t.begin(2);
    EXPECT_FALSE(t.accessConflicts(1, 10, true, 0, kMicrosecond));
    // Three microseconds later the INV round has drained.
    EXPECT_FALSE(
        t.accessConflicts(2, 10, true, 3 * kMicrosecond, kMicrosecond));
}

TEST(XactTable, SelfAccessesNeverConflict)
{
    XactConflictTable t;
    t.begin(1);
    EXPECT_FALSE(t.accessConflicts(1, 10, true, 0, kMicrosecond));
    EXPECT_FALSE(t.accessConflicts(1, 10, true, 1, kMicrosecond));
    EXPECT_FALSE(t.accessConflicts(1, 10, false, 2, kMicrosecond));
}

TEST(XactTable, EndRemovesClaims)
{
    XactConflictTable t;
    t.begin(1);
    t.begin(2);
    EXPECT_FALSE(t.accessConflicts(1, 10, true, 100, kMicrosecond));
    t.end(1);
    EXPECT_FALSE(t.accessConflicts(2, 10, true, 150, kMicrosecond));
    EXPECT_EQ(t.activeCount(), 1u);
}

TEST(XactTable, ConflictingAccessIsNotRecorded)
{
    XactConflictTable t;
    t.begin(1);
    t.begin(2);
    t.begin(3);
    EXPECT_FALSE(t.accessConflicts(1, 10, true, 100, kMicrosecond));
    // Xact 2 conflicts; its stalled access must not poison xact 3
    // after xact 1's claim has aged out.
    EXPECT_TRUE(t.accessConflicts(2, 10, true, 200, kMicrosecond));
    EXPECT_FALSE(t.accessConflicts(
        3, 10, true, 100 + 2 * kMicrosecond, kMicrosecond));
}

TEST(XactTable, ClearResetsEverything)
{
    XactConflictTable t;
    t.begin(1);
    t.accessConflicts(1, 5, true, 0, kMicrosecond);
    t.clear();
    EXPECT_EQ(t.activeCount(), 0u);
    EXPECT_EQ(t.conflictCount(), 0u);
}
