/**
 * @file
 * Unit tests for the property checkers.
 */

#include <gtest/gtest.h>

#include "ddp/checkers.hh"

using namespace ddp::core;
namespace net = ddp::net;
using ddp::net::Version;

TEST(PropertyChecker, MonotonicPerReplicaOk)
{
    PropertyChecker c;
    c.onRead(0, 1, Version{1, 0}, 10, 20);
    c.onRead(0, 1, Version{1, 0}, 30, 40); // same version ok
    c.onRead(0, 1, Version{2, 0}, 50, 60); // newer ok
    EXPECT_EQ(c.monotonicViolations(), 0u);
    EXPECT_EQ(c.readsObserved(), 3u);
}

TEST(PropertyChecker, MonotonicViolationDetected)
{
    PropertyChecker c;
    c.onRead(0, 1, Version{5, 0}, 10, 20);
    c.onRead(0, 1, Version{3, 0}, 30, 40);
    EXPECT_EQ(c.monotonicViolations(), 1u);
}

TEST(PropertyChecker, MonotonicTrackedPerReplica)
{
    PropertyChecker c;
    c.onRead(0, 1, Version{5, 0}, 10, 20);
    // A different node serving an older replica is not a per-replica
    // regression.
    c.onRead(1, 1, Version{3, 0}, 30, 40);
    EXPECT_EQ(c.monotonicViolations(), 0u);
}

TEST(PropertyChecker, StaleReadDetected)
{
    PropertyChecker c;
    c.onWriteComplete(1, Version{7, 0}, 100);
    // Read issued after the write completed but returning older data.
    c.onRead(0, 1, Version{6, 0}, 200, 210);
    EXPECT_EQ(c.staleReads(), 1u);
}

TEST(PropertyChecker, ConcurrentReadNotStale)
{
    PropertyChecker c;
    c.onWriteComplete(1, Version{7, 0}, 100);
    // Read issued before the write completed: old data is fine.
    c.onRead(0, 1, Version{6, 0}, 50, 210);
    EXPECT_EQ(c.staleReads(), 0u);
}

TEST(PropertyChecker, FreshReadNotStale)
{
    PropertyChecker c;
    c.onWriteComplete(1, Version{7, 0}, 100);
    c.onRead(0, 1, Version{7, 0}, 200, 210);
    c.onRead(0, 1, Version{8, 1}, 300, 310); // even newer
    EXPECT_EQ(c.staleReads(), 0u);
}

TEST(PropertyChecker, AuditCountsLostKeys)
{
    PropertyChecker c;
    c.onWriteComplete(1, Version{3, 0}, 100);
    c.onWriteComplete(2, Version{5, 0}, 100);
    c.onWriteComplete(3, Version{9, 0}, 100);
    auto recovered = [](net::KeyId key) {
        // Key 1 fully recovered; key 2 lost entirely; key 3 partially.
        switch (key) {
          case 1: return Version{3, 0};
          case 2: return Version{0, 0};
          default: return Version{8, 0};
        }
    };
    EXPECT_EQ(c.auditLostWrites(recovered), 2u);
}

TEST(PropertyChecker, WriteCompletionKeepsNewest)
{
    PropertyChecker c;
    c.onWriteComplete(1, Version{5, 0}, 100);
    c.onWriteComplete(1, Version{3, 0}, 150); // older write, later ack
    c.onRead(0, 1, Version{5, 0}, 200, 210);
    EXPECT_EQ(c.staleReads(), 0u);
    EXPECT_EQ(c.writesObserved(), 2u);
}

TEST(PropertyChecker, ResetObservationsKeepsCounters)
{
    PropertyChecker c;
    c.onRead(0, 1, Version{5, 0}, 10, 20);
    c.onRead(0, 1, Version{3, 0}, 30, 40);
    c.resetObservations();
    // Violation counters survive; observation state does not.
    EXPECT_EQ(c.monotonicViolations(), 1u);
    c.onRead(0, 1, Version{1, 0}, 50, 60); // no prior state now
    EXPECT_EQ(c.monotonicViolations(), 1u);
}

TEST(PropertyChecker, ClearResetsEverything)
{
    PropertyChecker c;
    c.onRead(0, 1, Version{5, 0}, 10, 20);
    c.onRead(0, 1, Version{3, 0}, 30, 40);
    c.clear();
    EXPECT_EQ(c.monotonicViolations(), 0u);
    EXPECT_EQ(c.readsObserved(), 0u);
}

// --------------------------------------------------------------------------
// Multi-crash-epoch durability audits and the torn-value taxonomy
// --------------------------------------------------------------------------

namespace {

/** A recovered-version map with a default for unlisted keys. */
std::function<Version(net::KeyId)>
recoveredMap(std::map<net::KeyId, Version> m, Version dflt = Version{})
{
    return [m = std::move(m), dflt](net::KeyId k) {
        auto it = m.find(k);
        return it == m.end() ? dflt : it->second;
    };
}

constexpr DdpModel kStrict{Consistency::Linearizable,
                           Persistency::Strict};
constexpr DdpModel kWeak{Consistency::Eventual, Persistency::Eventual};

} // namespace

TEST(PropertyChecker, AuditCountsWholeLostSuffixPerKey)
{
    PropertyChecker c;
    c.onWriteComplete(1, Version{3, 0}, 10);
    c.onWriteComplete(1, Version{5, 0}, 20);
    c.onWriteComplete(1, Version{8, 0}, 30);

    // Recovery kept only v3: v5 and v8 are both lost, but key 1 counts
    // once as a lost key.
    auto a = c.auditDurability(kWeak, recoveredMap({{1, Version{3, 0}}}));
    EXPECT_EQ(a.lostAckedWrites, 2u);
    EXPECT_EQ(a.lostAckedKeys, 1u);
    EXPECT_FALSE(a.zeroLossRequired);
    EXPECT_FALSE(a.violation());
    EXPECT_EQ(c.crashEpochs(), 1u);
}

TEST(PropertyChecker, AuditZeroLossBindingFlagsViolation)
{
    PropertyChecker c;
    c.onWriteComplete(4, Version{2, 0}, 10);
    auto a = c.auditDurability(kStrict, recoveredMap({}));
    EXPECT_TRUE(a.zeroLossRequired);
    EXPECT_EQ(a.lostAckedWrites, 1u);
    EXPECT_TRUE(a.violation());
}

TEST(PropertyChecker, SecondEpochJudgesOnlySurvivingWrites)
{
    PropertyChecker c;
    c.onWriteComplete(1, Version{3, 0}, 10);
    c.onWriteComplete(1, Version{5, 0}, 20);

    // Epoch 1 loses v5; it is pruned from the alive history.
    auto e1 = c.auditDurability(kWeak, recoveredMap({{1, Version{3, 0}}}));
    EXPECT_EQ(e1.lostAckedWrites, 1u);

    // Epoch 2 recovers to the same v3: nothing newly lost — v5 must
    // not be double-counted.
    auto e2 = c.auditDurability(kWeak, recoveredMap({{1, Version{3, 0}}}));
    EXPECT_EQ(e2.lostAckedWrites, 0u);
    EXPECT_EQ(e2.lostAckedKeys, 0u);
    EXPECT_EQ(c.crashEpochs(), 2u);

    // A write acked between the epochs is judged fresh in epoch 3.
    c.onWriteComplete(1, Version{7, 0}, 30);
    auto e3 = c.auditDurability(kWeak, recoveredMap({{1, Version{3, 0}}}));
    EXPECT_EQ(e3.lostAckedWrites, 1u);
    EXPECT_EQ(e3.lostAckedKeys, 1u);
    EXPECT_EQ(c.crashEpochs(), 3u);
}

TEST(PropertyChecker, SecondEpochCanLoseWritesTheFirstKept)
{
    PropertyChecker c;
    c.onWriteComplete(2, Version{4, 0}, 10);
    c.onWriteComplete(2, Version{6, 0}, 20);

    // Epoch 1 keeps everything.
    auto e1 = c.auditDurability(kWeak, recoveredMap({{2, Version{6, 0}}}));
    EXPECT_EQ(e1.lostAckedWrites, 0u);

    // Epoch 2 rolls the key back to v4: v6 — kept alive by epoch 1 —
    // is lost now.
    auto e2 = c.auditDurability(kWeak, recoveredMap({{2, Version{4, 0}}}));
    EXPECT_EQ(e2.lostAckedWrites, 1u);
    EXPECT_EQ(e2.lostAckedKeys, 1u);
}

TEST(PropertyChecker, TornServeIsDetectedAndViolatesAnyBinding)
{
    PropertyChecker c;
    // Recovery (ablation mode) installed a torn v9 as current.
    c.onTornInstall(0, 3, Version{9, 0});
    EXPECT_EQ(c.tornInstalls(), 1u);
    EXPECT_EQ(c.tornServed(), 0u);

    // Reads of other versions/keys are fine; serving the torn copy is
    // flagged even under the weakest binding.
    c.onRead(0, 3, Version{8, 0}, 10, 20);
    c.onRead(0, 4, Version{9, 0}, 30, 40);
    EXPECT_EQ(c.tornServed(), 0u);
    c.onRead(1, 3, Version{9, 0}, 50, 60);
    EXPECT_EQ(c.tornServed(), 1u);

    auto a = c.auditDurability(kWeak, recoveredMap({}));
    EXPECT_EQ(a.tornServed, 1u);
    EXPECT_TRUE(a.violation())
        << "a served torn value violates every model";
}

TEST(PropertyChecker, TornDetectionAloneIsNotAViolation)
{
    PropertyChecker c;
    c.onTornDetected(0, 3, Version{2, 0});
    EXPECT_EQ(c.tornDetected(), 1u);
    auto a = c.auditDurability(kStrict, recoveredMap({}));
    EXPECT_FALSE(a.violation())
        << "a detected-and-rolled-back tear is the defense working";
}
