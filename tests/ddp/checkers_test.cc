/**
 * @file
 * Unit tests for the property checkers.
 */

#include <gtest/gtest.h>

#include "ddp/checkers.hh"

using namespace ddp::core;
namespace net = ddp::net;
using ddp::net::Version;

TEST(PropertyChecker, MonotonicPerReplicaOk)
{
    PropertyChecker c;
    c.onRead(0, 1, Version{1, 0}, 10, 20);
    c.onRead(0, 1, Version{1, 0}, 30, 40); // same version ok
    c.onRead(0, 1, Version{2, 0}, 50, 60); // newer ok
    EXPECT_EQ(c.monotonicViolations(), 0u);
    EXPECT_EQ(c.readsObserved(), 3u);
}

TEST(PropertyChecker, MonotonicViolationDetected)
{
    PropertyChecker c;
    c.onRead(0, 1, Version{5, 0}, 10, 20);
    c.onRead(0, 1, Version{3, 0}, 30, 40);
    EXPECT_EQ(c.monotonicViolations(), 1u);
}

TEST(PropertyChecker, MonotonicTrackedPerReplica)
{
    PropertyChecker c;
    c.onRead(0, 1, Version{5, 0}, 10, 20);
    // A different node serving an older replica is not a per-replica
    // regression.
    c.onRead(1, 1, Version{3, 0}, 30, 40);
    EXPECT_EQ(c.monotonicViolations(), 0u);
}

TEST(PropertyChecker, StaleReadDetected)
{
    PropertyChecker c;
    c.onWriteComplete(1, Version{7, 0}, 100);
    // Read issued after the write completed but returning older data.
    c.onRead(0, 1, Version{6, 0}, 200, 210);
    EXPECT_EQ(c.staleReads(), 1u);
}

TEST(PropertyChecker, ConcurrentReadNotStale)
{
    PropertyChecker c;
    c.onWriteComplete(1, Version{7, 0}, 100);
    // Read issued before the write completed: old data is fine.
    c.onRead(0, 1, Version{6, 0}, 50, 210);
    EXPECT_EQ(c.staleReads(), 0u);
}

TEST(PropertyChecker, FreshReadNotStale)
{
    PropertyChecker c;
    c.onWriteComplete(1, Version{7, 0}, 100);
    c.onRead(0, 1, Version{7, 0}, 200, 210);
    c.onRead(0, 1, Version{8, 1}, 300, 310); // even newer
    EXPECT_EQ(c.staleReads(), 0u);
}

TEST(PropertyChecker, AuditCountsLostKeys)
{
    PropertyChecker c;
    c.onWriteComplete(1, Version{3, 0}, 100);
    c.onWriteComplete(2, Version{5, 0}, 100);
    c.onWriteComplete(3, Version{9, 0}, 100);
    auto recovered = [](net::KeyId key) {
        // Key 1 fully recovered; key 2 lost entirely; key 3 partially.
        switch (key) {
          case 1: return Version{3, 0};
          case 2: return Version{0, 0};
          default: return Version{8, 0};
        }
    };
    EXPECT_EQ(c.auditLostWrites(recovered), 2u);
}

TEST(PropertyChecker, WriteCompletionKeepsNewest)
{
    PropertyChecker c;
    c.onWriteComplete(1, Version{5, 0}, 100);
    c.onWriteComplete(1, Version{3, 0}, 150); // older write, later ack
    c.onRead(0, 1, Version{5, 0}, 200, 210);
    EXPECT_EQ(c.staleReads(), 0u);
    EXPECT_EQ(c.writesObserved(), 2u);
}

TEST(PropertyChecker, ResetObservationsKeepsCounters)
{
    PropertyChecker c;
    c.onRead(0, 1, Version{5, 0}, 10, 20);
    c.onRead(0, 1, Version{3, 0}, 30, 40);
    c.resetObservations();
    // Violation counters survive; observation state does not.
    EXPECT_EQ(c.monotonicViolations(), 1u);
    c.onRead(0, 1, Version{1, 0}, 50, 60); // no prior state now
    EXPECT_EQ(c.monotonicViolations(), 1u);
}

TEST(PropertyChecker, ClearResetsEverything)
{
    PropertyChecker c;
    c.onRead(0, 1, Version{5, 0}, 10, 20);
    c.onRead(0, 1, Version{3, 0}, 30, 40);
    c.clear();
    EXPECT_EQ(c.monotonicViolations(), 0u);
    EXPECT_EQ(c.readsObserved(), 0u);
}
