/**
 * @file
 * Chaos tests: hundreds of randomly timed concurrent reads and writes
 * from every node, optionally interrupted by full-system crashes, for
 * a representative set of DDP models. Invariants checked:
 *
 *  - liveness: without a crash, every issued operation completes once
 *    the event queue drains (no lost wakeups, no stuck waiters);
 *  - crash safety: right after crash + recovery, every replica's
 *    visible version equals its durable version for every key;
 *  - determinism: an identical run produces bit-identical outcomes.
 *
 * The Lossy* suite repeats the invariants on a faulty wire: every link
 * drops / duplicates / reorders messages per a seeded FaultPlan while
 * the fabric's reliable-delivery layer restores the in-order
 * exactly-once contract the protocols assume.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "ddp/protocol_node.hh"
#include "net/fabric.hh"
#include "net/fault.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "stats/counter.hh"

using namespace ddp;
using namespace ddp::core;
using net::KeyId;
using net::NodeId;
using net::Version;
using sim::kMicrosecond;
using sim::kNanosecond;
using sim::Tick;

namespace {

constexpr std::uint32_t kServers = 3;
constexpr std::uint64_t kKeys = 32;

struct ChaosCluster
{
    sim::EventQueue eq;
    net::NetworkParams netp;
    std::unique_ptr<net::FaultPlan> plan;
    std::unique_ptr<net::Fabric> fabric;
    stats::CounterRegistry ctr;
    std::vector<std::unique_ptr<ProtocolNode>> nodes;
    std::uint64_t completed = 0;
    std::uint64_t issued = 0;

    explicit ChaosCluster(DdpModel model,
                          const net::LinkFaults *faults = nullptr)
    {
        if (faults) {
            netp.reliability.enabled = true;
            net::FaultConfig fc;
            fc.seed = 4242;
            fc.allLinks = *faults;
            plan = std::make_unique<net::FaultPlan>(fc, kServers);
        }
        fabric = std::make_unique<net::Fabric>(eq, netp, kServers);
        if (plan)
            fabric->setFaultPlan(plan.get());
        NodeParams np;
        np.model = model;
        np.numNodes = kServers;
        np.keyCount = kKeys;
        np.opProcessing = 100 * kNanosecond;
        np.msgProcessing = 50 * kNanosecond;
        np.probeCost = 0;
        for (std::uint32_t n = 0; n < kServers; ++n) {
            nodes.push_back(std::make_unique<ProtocolNode>(
                eq, *fabric, n, np, ctr, nullptr));
        }
    }

    /** Schedule @p count random ops across the first @p window ticks. */
    void
    scheduleRandomOps(std::uint64_t seed, int count, Tick window)
    {
        sim::Pcg32 rng(seed, 99);
        for (int i = 0; i < count; ++i) {
            Tick when = rng.nextU64() % window;
            NodeId node = rng.nextBounded(kServers);
            KeyId key = rng.nextBounded(kKeys);
            bool is_read = rng.nextBounded(2) == 0;
            ++issued;
            eq.schedule(when, [this, node, key, is_read] {
                auto cb = [this](const OpResult &) { ++completed; };
                if (is_read)
                    nodes[node]->clientRead(key, {}, cb);
                else
                    nodes[node]->clientWrite(key, {}, cb);
            });
        }
    }

    void
    crashAllAndRecover()
    {
        for (auto &n : nodes)
            n->crashVolatile();
        // Voting: install the cluster-wide max persisted version.
        for (KeyId k = 0; k < kKeys; ++k) {
            Version best{};
            for (auto &n : nodes) {
                if (best < n->persistedVersion(k))
                    best = n->persistedVersion(k);
            }
            if (best.number > 0) {
                for (auto &n : nodes)
                    n->installRecovered(k, best);
            }
        }
    }

    /** Final (node, key) -> version fingerprint. */
    std::map<std::pair<NodeId, KeyId>, Version>
    fingerprint() const
    {
        std::map<std::pair<NodeId, KeyId>, Version> fp;
        for (NodeId n = 0; n < kServers; ++n) {
            for (KeyId k = 0; k < kKeys; ++k)
                fp[{n, k}] = nodes[n]->visibleVersion(k);
        }
        return fp;
    }
};

const DdpModel kChaosModels[] = {
    {Consistency::Linearizable, Persistency::Synchronous},
    {Consistency::Linearizable, Persistency::ReadEnforced},
    {Consistency::ReadEnforced, Persistency::Synchronous},
    {Consistency::ReadEnforced, Persistency::Eventual},
    {Consistency::Causal, Persistency::Synchronous},
    {Consistency::Causal, Persistency::Strict},
    {Consistency::Eventual, Persistency::Eventual},
    {Consistency::Eventual, Persistency::Strict},
};

} // namespace

class Chaos : public ::testing::TestWithParam<DdpModel>
{
};

TEST_P(Chaos, EveryOpCompletesWithoutCrash)
{
    ChaosCluster c(GetParam());
    c.scheduleRandomOps(2024, 600, 100 * kMicrosecond);
    c.eq.run();
    EXPECT_EQ(c.completed, c.issued);
}

TEST_P(Chaos, DeterministicAcrossRuns)
{
    ChaosCluster a(GetParam()), b(GetParam());
    a.scheduleRandomOps(7, 400, 50 * kMicrosecond);
    b.scheduleRandomOps(7, 400, 50 * kMicrosecond);
    a.eq.run();
    b.eq.run();
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    EXPECT_EQ(a.fabric->totalMessages(), b.fabric->totalMessages());
}

TEST_P(Chaos, CrashMidTrafficLeavesConsistentState)
{
    ChaosCluster c(GetParam());
    c.scheduleRandomOps(99, 600, 100 * kMicrosecond);
    c.eq.schedule(40 * kMicrosecond, [&] { c.crashAllAndRecover(); });
    c.eq.run();
    // Right after the run every node's visible state was rebuilt from
    // durable state at crash time plus post-crash traffic; visible and
    // persisted must agree per node per key once quiesced, except for
    // lazily-persisted tails which we flush by crashing again.
    c.crashAllAndRecover();
    for (NodeId n = 0; n < kServers; ++n) {
        for (KeyId k = 0; k < kKeys; ++k) {
            EXPECT_EQ(c.nodes[n]->visibleVersion(k),
                      c.nodes[n]->persistedVersion(k))
                << "node " << n << " key " << k;
        }
    }
    // And every replica agrees after voting recovery.
    for (KeyId k = 0; k < kKeys; ++k) {
        Version v = c.nodes[0]->visibleVersion(k);
        for (NodeId n = 1; n < kServers; ++n)
            EXPECT_EQ(c.nodes[n]->visibleVersion(k), v) << "key " << k;
    }
}

TEST_P(Chaos, RepeatedCrashesDoNotWedgeTheCluster)
{
    ChaosCluster c(GetParam());
    c.scheduleRandomOps(41, 500, 120 * kMicrosecond);
    for (int i = 1; i <= 3; ++i) {
        c.eq.schedule(static_cast<Tick>(i) * 30 * kMicrosecond,
                      [&] { c.crashAllAndRecover(); });
    }
    c.eq.run();
    // Ops issued after the last crash still complete: inject a probe.
    std::uint64_t before = c.completed;
    c.nodes[0]->clientWrite(1, {},
                            [&](const OpResult &) { ++c.completed; });
    c.eq.run();
    EXPECT_EQ(c.completed, before + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Models, Chaos, ::testing::ValuesIn(kChaosModels),
    [](const ::testing::TestParamInfo<DdpModel> &info) {
        std::string s = modelName(info.param);
        std::string out;
        for (char ch : s) {
            if (std::isalnum(static_cast<unsigned char>(ch)))
                out += ch;
            else if (ch == ',')
                out += '_';
        }
        return out;
    });

// --- Lossy-link sweep --------------------------------------------------------

namespace {

/** 1% drop + a sprinkle of duplicates and reorders on every link. */
net::LinkFaults
lossyLinks()
{
    net::LinkFaults f;
    f.dropRate = 0.01;
    f.duplicateRate = 0.005;
    f.reorderRate = 0.005;
    return f;
}

} // namespace

class LossyChaos : public ::testing::TestWithParam<DdpModel>
{
};

TEST_P(LossyChaos, EveryOpCompletesDespiteDrops)
{
    net::LinkFaults f = lossyLinks();
    ChaosCluster c(GetParam(), &f);
    c.scheduleRandomOps(2024, 600, 100 * kMicrosecond);
    c.eq.run();
    EXPECT_EQ(c.completed, c.issued);
    // The plan must actually have injected faults, or this test
    // quietly degenerates into the perfect-wire version.
    EXPECT_GT(c.plan->drops(), 0u);
    EXPECT_GT(c.fabric->retransmits(), 0u);
}

TEST_P(LossyChaos, DeterministicAcrossRuns)
{
    net::LinkFaults f = lossyLinks();
    ChaosCluster a(GetParam(), &f), b(GetParam(), &f);
    a.scheduleRandomOps(7, 400, 50 * kMicrosecond);
    b.scheduleRandomOps(7, 400, 50 * kMicrosecond);
    a.eq.run();
    b.eq.run();
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    EXPECT_EQ(a.fabric->totalMessages(), b.fabric->totalMessages());
    EXPECT_EQ(a.plan->drops(), b.plan->drops());
    EXPECT_EQ(a.fabric->retransmits(), b.fabric->retransmits());
}

TEST_P(LossyChaos, CrashMidTrafficLeavesConsistentState)
{
    net::LinkFaults f = lossyLinks();
    ChaosCluster c(GetParam(), &f);
    c.scheduleRandomOps(99, 600, 100 * kMicrosecond);
    c.eq.schedule(40 * kMicrosecond, [&] { c.crashAllAndRecover(); });
    c.eq.run();
    c.crashAllAndRecover();
    // Post-recovery: visible == durable on every replica, and all
    // replicas agree — drops and duplicates must not leak divergence
    // past the voting recovery.
    for (NodeId n = 0; n < kServers; ++n) {
        for (KeyId k = 0; k < kKeys; ++k) {
            EXPECT_EQ(c.nodes[n]->visibleVersion(k),
                      c.nodes[n]->persistedVersion(k))
                << "node " << n << " key " << k;
        }
    }
    for (KeyId k = 0; k < kKeys; ++k) {
        Version v = c.nodes[0]->visibleVersion(k);
        for (NodeId n = 1; n < kServers; ++n)
            EXPECT_EQ(c.nodes[n]->visibleVersion(k), v) << "key " << k;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Models, LossyChaos, ::testing::ValuesIn(kChaosModels),
    [](const ::testing::TestParamInfo<DdpModel> &info) {
        std::string s = modelName(info.param);
        std::string out;
        for (char ch : s) {
            if (std::isalnum(static_cast<unsigned char>(ch)))
                out += ch;
            else if (ch == ',')
                out += '_';
        }
        return out;
    });
