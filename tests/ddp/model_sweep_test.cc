/**
 * @file
 * Cross-model invariant sweeps: for every one of the 25 DDP models, a
 * scripted workload on a 3-node protocol harness must (a) converge all
 * replicas to the written versions once traffic quiesces, and (b) make
 * every visible version durable once the persistency model's trigger
 * has fired (drain for lazy persists, an explicit barrier for Scope).
 */

#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "ddp/protocol_node.hh"
#include "net/fabric.hh"
#include "sim/event_queue.hh"
#include "stats/counter.hh"

using namespace ddp;
using namespace ddp::core;
using net::KeyId;
using net::NodeId;
using net::Version;
using sim::kMicrosecond;
using sim::kNanosecond;

namespace {

struct SweepHarness
{
    sim::EventQueue eq;
    net::NetworkParams netp;
    std::unique_ptr<net::Fabric> fabric;
    stats::CounterRegistry ctr;
    XactConflictTable xt;
    std::vector<std::unique_ptr<ProtocolNode>> nodes;
    std::uint64_t nextXact = 1;

    explicit SweepHarness(DdpModel model, std::uint32_t servers = 3)
    {
        fabric = std::make_unique<net::Fabric>(eq, netp, servers);
        NodeParams np;
        np.model = model;
        np.numNodes = servers;
        np.keyCount = 64;
        np.opProcessing = 100 * kNanosecond;
        np.msgProcessing = 50 * kNanosecond;
        np.probeCost = 0;
        for (std::uint32_t n = 0; n < servers; ++n) {
            nodes.push_back(std::make_unique<ProtocolNode>(
                eq, *fabric, n, np, ctr, &xt));
        }
    }

    /**
     * Write @p key at @p node respecting the model's required
     * annotations (transactions, scope tags); returns the version.
     */
    Version
    scriptedWrite(NodeId node, KeyId key, std::uint64_t scope_id)
    {
        const DdpModel &m = nodes[node]->params().model;
        OpContext ctx;
        if (m.persistency == Persistency::Scope)
            ctx.scopeId = scope_id;
        std::optional<OpResult> out;

        if (m.consistency == Consistency::Transactional) {
            std::uint64_t xid = nextXact++;
            std::optional<OpResult> step;
            nodes[node]->clientInitXact(
                xid, [&](const OpResult &r) { step = r; });
            wait(step);
            ctx.xactId = xid;
            nodes[node]->clientWrite(key, ctx,
                                     [&](const OpResult &r) { out = r; });
            wait(out);
            EXPECT_FALSE(out->aborted);
            step.reset();
            nodes[node]->clientEndXact(
                xid, true, [&](const OpResult &r) { step = r; });
            wait(step);
            EXPECT_FALSE(step->aborted);
        } else {
            nodes[node]->clientWrite(key, ctx,
                                     [&](const OpResult &r) { out = r; });
            wait(out);
        }
        return out->version;
    }

    void
    persistScope(NodeId node, std::uint64_t scope_id)
    {
        std::optional<OpResult> out;
        nodes[node]->clientPersistScope(
            scope_id, [&](const OpResult &r) { out = r; });
        wait(out);
    }

    void
    wait(std::optional<OpResult> &out)
    {
        while (!out && eq.step()) {
        }
        ASSERT_TRUE(out.has_value());
    }
};

} // namespace

class ModelSweep : public ::testing::TestWithParam<DdpModel>
{
};

TEST_P(ModelSweep, ReplicasConvergeAfterQuiesce)
{
    SweepHarness h(GetParam());
    // Non-overlapping writes from every node to distinct keys.
    Version v0, v1, v2;
    ASSERT_NO_FATAL_FAILURE(v0 = h.scriptedWrite(0, 10, 1));
    ASSERT_NO_FATAL_FAILURE(v1 = h.scriptedWrite(1, 11, 1));
    ASSERT_NO_FATAL_FAILURE(v2 = h.scriptedWrite(2, 12, 1));
    h.eq.run();

    for (auto &n : h.nodes) {
        EXPECT_EQ(n->visibleVersion(10), v0) << "node " << n->id();
        EXPECT_EQ(n->visibleVersion(11), v1) << "node " << n->id();
        EXPECT_EQ(n->visibleVersion(12), v2) << "node " << n->id();
    }
}

TEST_P(ModelSweep, VisibleBecomesDurableAfterTrigger)
{
    SweepHarness h(GetParam());
    Version v0, v1;
    ASSERT_NO_FATAL_FAILURE(v0 = h.scriptedWrite(0, 20, 7));
    ASSERT_NO_FATAL_FAILURE(v1 = h.scriptedWrite(1, 21, 7));
    h.eq.run();

    if (GetParam().persistency == Persistency::Scope) {
        // The barrier persists each coordinator's open scope.
        ASSERT_NO_FATAL_FAILURE(h.persistScope(0, 7));
        ASSERT_NO_FATAL_FAILURE(h.persistScope(1, 7));
        h.eq.run();
    }

    for (auto &n : h.nodes) {
        EXPECT_EQ(n->persistedVersion(20), v0) << "node " << n->id();
        EXPECT_EQ(n->persistedVersion(21), v1) << "node " << n->id();
    }
}

TEST_P(ModelSweep, SequentialOverwritesKeepLatest)
{
    SweepHarness h(GetParam());
    Version last{};
    for (int i = 0; i < 3; ++i) {
        ASSERT_NO_FATAL_FAILURE(
            last = h.scriptedWrite(static_cast<NodeId>(i % 3), 30,
                                   10 + static_cast<std::uint64_t>(i)));
        h.eq.run(); // fully quiesce between writes
    }
    for (auto &n : h.nodes)
        EXPECT_EQ(n->visibleVersion(30), last) << "node " << n->id();
    EXPECT_EQ(last.number, 3u);
}

INSTANTIATE_TEST_SUITE_P(
    All25, ModelSweep, ::testing::ValuesIn(allModels()),
    [](const ::testing::TestParamInfo<DdpModel> &info) {
        std::string s = modelName(info.param);
        std::string out;
        for (char ch : s) {
            if (std::isalnum(static_cast<unsigned char>(ch)))
                out += ch;
            else if (ch == ',')
                out += '_';
        }
        return out;
    });
