/**
 * @file
 * Tests for the DDP model definitions and the Table 4 trait matrix.
 * The ten tabulated rows of the paper are checked exactly.
 */

#include <gtest/gtest.h>

#include "ddp/models.hh"

using namespace ddp::core;

TEST(Models, TwentyFiveCombinations)
{
    auto models = allModels();
    EXPECT_EQ(models.size(), 25u);
    EXPECT_EQ(allConsistencies().size(), 5u);
    EXPECT_EQ(allPersistencies().size(), 5u);
    // All distinct.
    for (std::size_t i = 0; i < models.size(); ++i) {
        for (std::size_t j = i + 1; j < models.size(); ++j)
            EXPECT_FALSE(models[i] == models[j]);
    }
}

TEST(Models, Names)
{
    DdpModel m{Consistency::Causal, Persistency::Synchronous};
    EXPECT_EQ(modelName(m), "<Causal, Synchronous>");
    EXPECT_STREQ(consistencyName(Consistency::ReadEnforced),
                 "Read-Enforced");
    EXPECT_STREQ(persistencyName(Persistency::Scope), "Scope");
    EXPECT_STREQ(levelName(Level::Medium), "Medium");
}

namespace {

ModelTraits
traits(Consistency c, Persistency p)
{
    return traitsOf({c, p});
}

} // namespace

// Table 4, row 1: <Linearizable, Synchronous>.
TEST(Table4, Row1LinearizableSynchronous)
{
    ModelTraits t = traits(Consistency::Linearizable,
                           Persistency::Synchronous);
    EXPECT_EQ(t.durability, Level::High);
    EXPECT_FALSE(t.writesOptimized);
    EXPECT_FALSE(t.readsOptimized);
    EXPECT_EQ(t.traffic, Level::Medium);
    EXPECT_EQ(t.performance, Level::Low);
    EXPECT_TRUE(t.monotonicReads);
    EXPECT_TRUE(t.nonStaleReads);
    EXPECT_EQ(t.intuition, Level::High);
    EXPECT_EQ(t.programmability, Level::High);
    EXPECT_EQ(t.implementability, Level::High);
}

// Table 4, row 2: <Read-Enforced, Synchronous>.
TEST(Table4, Row2ReadEnforcedSynchronous)
{
    ModelTraits t = traits(Consistency::ReadEnforced,
                           Persistency::Synchronous);
    EXPECT_EQ(t.durability, Level::Medium);
    EXPECT_TRUE(t.writesOptimized);
    EXPECT_FALSE(t.readsOptimized);
    EXPECT_EQ(t.traffic, Level::Medium);
    EXPECT_EQ(t.performance, Level::Medium);
    EXPECT_TRUE(t.monotonicReads);
    EXPECT_FALSE(t.nonStaleReads);
    EXPECT_EQ(t.intuition, Level::Medium);
    EXPECT_EQ(t.programmability, Level::High);
    EXPECT_EQ(t.implementability, Level::High);
}

// Table 4, row 3: <Transactional, Synchronous>.
TEST(Table4, Row3TransactionalSynchronous)
{
    ModelTraits t = traits(Consistency::Transactional,
                           Persistency::Synchronous);
    EXPECT_EQ(t.durability, Level::High);
    EXPECT_TRUE(t.writesOptimized);
    EXPECT_TRUE(t.readsOptimized);
    EXPECT_EQ(t.traffic, Level::High);
    EXPECT_EQ(t.performance, Level::High);
    EXPECT_TRUE(t.monotonicReads);
    EXPECT_TRUE(t.nonStaleReads);
    EXPECT_EQ(t.intuition, Level::High);
    EXPECT_EQ(t.programmability, Level::Low);
    EXPECT_EQ(t.implementability, Level::Low);
}

// Table 4, row 4: <Causal, Synchronous>.
TEST(Table4, Row4CausalSynchronous)
{
    ModelTraits t = traits(Consistency::Causal,
                           Persistency::Synchronous);
    EXPECT_EQ(t.durability, Level::Medium);
    EXPECT_TRUE(t.writesOptimized);
    EXPECT_TRUE(t.readsOptimized);
    EXPECT_EQ(t.traffic, Level::High);
    EXPECT_EQ(t.performance, Level::High);
    EXPECT_TRUE(t.monotonicReads);
    EXPECT_FALSE(t.nonStaleReads);
    EXPECT_EQ(t.intuition, Level::Medium);
    EXPECT_EQ(t.programmability, Level::High);
    EXPECT_EQ(t.implementability, Level::Low);
}

// Table 4, row 5: <Eventual, Synchronous>.
TEST(Table4, Row5EventualSynchronous)
{
    ModelTraits t = traits(Consistency::Eventual,
                           Persistency::Synchronous);
    EXPECT_EQ(t.durability, Level::Low);
    EXPECT_TRUE(t.writesOptimized);
    EXPECT_TRUE(t.readsOptimized);
    EXPECT_EQ(t.traffic, Level::Low);
    EXPECT_EQ(t.performance, Level::High);
    EXPECT_FALSE(t.monotonicReads);
    EXPECT_FALSE(t.nonStaleReads);
    EXPECT_EQ(t.intuition, Level::Low);
    EXPECT_EQ(t.programmability, Level::High);
    EXPECT_EQ(t.implementability, Level::High);
}

// Table 4, row 6: <Linearizable, Read-Enforced>.
TEST(Table4, Row6LinearizableReadEnforced)
{
    ModelTraits t = traits(Consistency::Linearizable,
                           Persistency::ReadEnforced);
    EXPECT_EQ(t.durability, Level::Medium);
    EXPECT_TRUE(t.writesOptimized);
    EXPECT_FALSE(t.readsOptimized);
    EXPECT_EQ(t.traffic, Level::High);
    EXPECT_EQ(t.performance, Level::Medium);
    EXPECT_TRUE(t.monotonicReads);
    EXPECT_FALSE(t.nonStaleReads);
    EXPECT_EQ(t.intuition, Level::Medium);
    EXPECT_EQ(t.programmability, Level::High);
    EXPECT_EQ(t.implementability, Level::High);
}

// Table 4, row 7: <Causal, Read-Enforced>.
TEST(Table4, Row7CausalReadEnforced)
{
    ModelTraits t = traits(Consistency::Causal,
                           Persistency::ReadEnforced);
    EXPECT_EQ(t.durability, Level::Medium);
    EXPECT_TRUE(t.writesOptimized);
    EXPECT_FALSE(t.readsOptimized);
    EXPECT_EQ(t.traffic, Level::High);
    EXPECT_EQ(t.performance, Level::High);
    EXPECT_TRUE(t.monotonicReads);
    EXPECT_FALSE(t.nonStaleReads);
    EXPECT_EQ(t.intuition, Level::Medium);
    EXPECT_EQ(t.programmability, Level::High);
    EXPECT_EQ(t.implementability, Level::Low);
}

// Table 4, row 8: <Linearizable, Eventual>.
TEST(Table4, Row8LinearizableEventual)
{
    ModelTraits t = traits(Consistency::Linearizable,
                           Persistency::Eventual);
    EXPECT_EQ(t.durability, Level::Low);
    EXPECT_TRUE(t.writesOptimized);
    EXPECT_TRUE(t.readsOptimized);
    EXPECT_EQ(t.traffic, Level::Low);
    EXPECT_EQ(t.performance, Level::High);
    EXPECT_FALSE(t.monotonicReads);
    EXPECT_FALSE(t.nonStaleReads);
    EXPECT_EQ(t.intuition, Level::Low);
    EXPECT_EQ(t.programmability, Level::High);
    EXPECT_EQ(t.implementability, Level::High);
}

// Table 4, row 9: <Linearizable, Scope>.
TEST(Table4, Row9LinearizableScope)
{
    ModelTraits t = traits(Consistency::Linearizable,
                           Persistency::Scope);
    EXPECT_EQ(t.durability, Level::High);
    EXPECT_TRUE(t.writesOptimized);
    EXPECT_TRUE(t.readsOptimized);
    EXPECT_EQ(t.traffic, Level::High);
    EXPECT_EQ(t.performance, Level::High);
    EXPECT_FALSE(t.monotonicReads);
    EXPECT_FALSE(t.nonStaleReads);
    EXPECT_EQ(t.intuition, Level::High);
    EXPECT_EQ(t.programmability, Level::Low);
    EXPECT_EQ(t.implementability, Level::Low);
}

// Table 4, row 10: <Transactional, Scope>.
TEST(Table4, Row10TransactionalScope)
{
    ModelTraits t = traits(Consistency::Transactional,
                           Persistency::Scope);
    EXPECT_EQ(t.durability, Level::High);
    EXPECT_TRUE(t.writesOptimized);
    EXPECT_TRUE(t.readsOptimized);
    EXPECT_EQ(t.traffic, Level::High);
    EXPECT_EQ(t.performance, Level::High);
    EXPECT_FALSE(t.monotonicReads);
    EXPECT_FALSE(t.nonStaleReads);
    EXPECT_EQ(t.intuition, Level::Medium);
    EXPECT_EQ(t.programmability, Level::Low);
    EXPECT_EQ(t.implementability, Level::Low);
}

// Derivation sanity for combinations the paper does not tabulate.
TEST(Table4, StrictPersistencyAlwaysHighDurability)
{
    for (Consistency c : allConsistencies()) {
        ModelTraits t = traits(c, Persistency::Strict);
        EXPECT_EQ(t.durability, Level::High) << consistencyName(c);
        EXPECT_FALSE(t.writesOptimized) << consistencyName(c);
    }
}

TEST(Table4, EventualPersistencyNeverMonotonic)
{
    for (Consistency c : allConsistencies()) {
        ModelTraits t = traits(c, Persistency::Eventual);
        EXPECT_FALSE(t.monotonicReads) << consistencyName(c);
        EXPECT_EQ(t.durability, Level::Low) << consistencyName(c);
    }
}

TEST(Table4, EventualConsistencyNeverNonStale)
{
    for (Persistency p : allPersistencies()) {
        ModelTraits t = traits(Consistency::Eventual, p);
        EXPECT_FALSE(t.nonStaleReads) << persistencyName(p);
        EXPECT_FALSE(t.monotonicReads) << persistencyName(p);
    }
}
