/**
 * @file
 * Protocol edge cases: decoupled ACK/VAL rounds, scope interactions
 * with lazy propagation, per-key write queues, transaction logging,
 * write-pending-queue coalescing, and cache-locality effects.
 */

#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "ddp/protocol_node.hh"
#include "net/fabric.hh"
#include "net/tracer.hh"
#include "sim/event_queue.hh"
#include "stats/counter.hh"

using namespace ddp;
using namespace ddp::core;
using net::KeyId;
using net::MsgType;
using net::NodeId;
using net::Version;
using sim::kMicrosecond;
using sim::kNanosecond;

namespace {

struct EdgeHarness
{
    sim::EventQueue eq;
    net::NetworkParams netp;
    std::unique_ptr<net::Fabric> fabric;
    net::MessageTracer tracer;
    stats::CounterRegistry ctr;
    XactConflictTable xt;
    std::vector<std::unique_ptr<ProtocolNode>> nodes;

    explicit EdgeHarness(DdpModel model, std::uint32_t servers = 3)
    {
        fabric = std::make_unique<net::Fabric>(eq, netp, servers);
        fabric->setTracer(&tracer);
        NodeParams np;
        np.model = model;
        np.numNodes = servers;
        np.keyCount = 64;
        np.opProcessing = 100 * kNanosecond;
        np.msgProcessing = 50 * kNanosecond;
        np.probeCost = 0;
        for (std::uint32_t n = 0; n < servers; ++n) {
            nodes.push_back(std::make_unique<ProtocolNode>(
                eq, *fabric, n, np, ctr, &xt));
        }
    }

    OpResult
    writeAndWait(NodeId node, KeyId key, OpContext ctx = {})
    {
        std::optional<OpResult> out;
        nodes[node]->clientWrite(key, ctx,
                                 [&](const OpResult &r) { out = r; });
        while (!out && eq.step()) {
        }
        EXPECT_TRUE(out.has_value());
        return *out;
    }

    OpResult
    readAndWait(NodeId node, KeyId key, OpContext ctx = {})
    {
        std::optional<OpResult> out;
        nodes[node]->clientRead(key, ctx,
                                [&](const OpResult &r) { out = r; });
        while (!out && eq.step()) {
        }
        EXPECT_TRUE(out.has_value());
        return *out;
    }
};

} // namespace

TEST(EdgeRounds, ReadEnforcedSquaredDecouplesConsistencyAndPersistency)
{
    EdgeHarness h({Consistency::ReadEnforced,
                   Persistency::ReadEnforced});
    h.writeAndWait(0, 5);
    h.eq.run();

    // The wire protocol used decoupled acknowledgments and both VAL
    // flavors (Fig. 3(a)-(b)).
    EXPECT_EQ(h.tracer.countOf(MsgType::AckC), 2u);
    EXPECT_EQ(h.tracer.countOf(MsgType::AckP), 2u);
    EXPECT_EQ(h.tracer.countOf(MsgType::ValC), 2u);
    EXPECT_EQ(h.tracer.countOf(MsgType::ValP), 2u);
    EXPECT_EQ(h.tracer.countOf(MsgType::Ack), 0u);

    // And every ACK_c was delivered no later than its node's ACK_p.
    sim::Tick first_ack_p = 0;
    h.tracer.forEach([&](const net::TraceEntry &e) {
        if (e.type == MsgType::AckP && first_ack_p == 0)
            first_ack_p = e.at;
    });
    h.tracer.forEach([&](const net::TraceEntry &e) {
        if (e.type == MsgType::AckC)
            EXPECT_LE(e.at, first_ack_p);
    });
}

TEST(EdgeRounds, CombinedModelsUsePlainAcks)
{
    EdgeHarness h({Consistency::Linearizable,
                   Persistency::Synchronous});
    h.writeAndWait(0, 5);
    h.eq.run();
    EXPECT_EQ(h.tracer.countOf(MsgType::Ack), 2u);
    EXPECT_EQ(h.tracer.countOf(MsgType::AckC), 0u);
    EXPECT_EQ(h.tracer.countOf(MsgType::AckP), 0u);
    EXPECT_EQ(h.tracer.countOf(MsgType::Val), 2u);
}

TEST(EdgeScope, EventualConsistencyFlushesLazyUpdsBeforePersist)
{
    EdgeHarness h({Consistency::Eventual, Persistency::Scope});
    OpContext ctx;
    ctx.scopeId = 9;
    OpResult w = h.writeAndWait(0, 7, ctx);

    // The UPD is still queued lazily; followers know nothing yet.
    EXPECT_EQ(h.nodes[1]->visibleVersion(7).number, 0u);

    // The scope barrier must flush the queued UPDs first (per-QP
    // ordering then guarantees followers buffer the writes before the
    // PERSIST arrives), so after it completes everyone is durable.
    std::optional<OpResult> done;
    h.nodes[0]->clientPersistScope(9,
                                   [&](const OpResult &r) { done = r; });
    h.eq.run();
    ASSERT_TRUE(done.has_value());
    for (auto &n : h.nodes) {
        EXPECT_EQ(n->visibleVersion(7), w.version);
        EXPECT_EQ(n->persistedVersion(7), w.version);
    }
}

TEST(EdgeScope, ScopesPersistIndependently)
{
    EdgeHarness h({Consistency::Linearizable, Persistency::Scope});
    OpContext s1;
    s1.scopeId = 1;
    OpContext s2;
    s2.scopeId = 2;
    OpResult w1 = h.writeAndWait(0, 10, s1);
    OpResult w2 = h.writeAndWait(0, 11, s2);
    h.eq.run();

    std::optional<OpResult> done;
    h.nodes[0]->clientPersistScope(1,
                                   [&](const OpResult &r) { done = r; });
    h.eq.run();
    ASSERT_TRUE(done.has_value());
    // Scope 1's write is durable everywhere; scope 2's is not.
    for (auto &n : h.nodes) {
        EXPECT_EQ(n->persistedVersion(10), w1.version);
        EXPECT_EQ(n->persistedVersion(11).number, 0u);
    }
    (void)w2;
}

TEST(EdgeScope, CausalWritesJoinScopes)
{
    EdgeHarness h({Consistency::Causal, Persistency::Scope});
    OpContext ctx;
    ctx.scopeId = 3;
    OpResult w = h.writeAndWait(1, 12, ctx);
    h.eq.run();
    EXPECT_EQ(h.nodes[0]->persistedVersion(12).number, 0u);

    std::optional<OpResult> done;
    h.nodes[1]->clientPersistScope(3,
                                   [&](const OpResult &r) { done = r; });
    h.eq.run();
    ASSERT_TRUE(done.has_value());
    for (auto &n : h.nodes)
        EXPECT_EQ(n->persistedVersion(12), w.version);
}

TEST(EdgeWrites, PerKeyWriteQueueKeepsVersionsOrdered)
{
    EdgeHarness h({Consistency::Linearizable,
                   Persistency::Synchronous});
    std::vector<OpResult> done;
    for (int i = 0; i < 3; ++i) {
        h.nodes[0]->clientWrite(6, {}, [&](const OpResult &r) {
            done.push_back(r);
        });
        // Space issues apart so ordering is deterministic.
        h.eq.runUntil(h.eq.now() + 300 * kNanosecond);
    }
    h.eq.run();
    ASSERT_EQ(done.size(), 3u);
    EXPECT_LT(done[0].version, done[1].version);
    EXPECT_LT(done[1].version, done[2].version);
    for (auto &n : h.nodes)
        EXPECT_EQ(n->visibleVersion(6), done[2].version);
}

TEST(EdgeWrites, CoordinatorReadOfOwnWriteStalls)
{
    EdgeHarness h({Consistency::Linearizable,
                   Persistency::Synchronous});
    std::optional<OpResult> w, r;
    h.nodes[0]->clientWrite(8, {}, [&](const OpResult &x) { w = x; });
    h.eq.schedule(300 * kNanosecond, [&] {
        h.nodes[0]->clientRead(8, {}, [&](const OpResult &x) { r = x; });
    });
    h.eq.run();
    ASSERT_TRUE(w && r);
    // The read waited for the write round and returned the new value.
    EXPECT_GE(r->completedAt, w->completedAt);
    EXPECT_EQ(r->version, w->version);
}

TEST(EdgeXact, InitXactLogsPersistUnderSynchronous)
{
    EdgeHarness h({Consistency::Transactional,
                   Persistency::Synchronous});
    std::uint64_t before = h.nodes[1]->nvm().writeCount();
    std::optional<OpResult> done;
    h.nodes[0]->clientInitXact(5, [&](const OpResult &r) { done = r; });
    h.eq.run();
    ASSERT_TRUE(done.has_value());
    // Followers persisted the transaction-begin log entry.
    EXPECT_GT(h.nodes[1]->nvm().writeCount(), before);
}

TEST(EdgeXact, NonXactReadsSeeOnlyCommittedState)
{
    EdgeHarness h({Consistency::Transactional,
                   Persistency::Synchronous});
    std::optional<OpResult> step;
    h.nodes[0]->clientInitXact(6, [&](const OpResult &r) { step = r; });
    while (!step && h.eq.step()) {
    }
    OpContext ctx;
    ctx.xactId = 6;
    step.reset();
    h.nodes[0]->clientWrite(13, ctx,
                            [&](const OpResult &r) { step = r; });
    while (!step && h.eq.step()) {
    }
    // A different client's read at the same node sees committed state.
    OpResult other = h.readAndWait(0, 13);
    EXPECT_EQ(other.version.number, 0u);
}

TEST(EdgeEventual, StrictOverridesLaziness)
{
    EdgeHarness h({Consistency::Eventual, Persistency::Strict});
    OpResult w = h.writeAndWait(0, 14);
    // Write completion already required global durability: no 5 us
    // lazy delay was involved.
    EXPECT_LT(w.latency(), 4 * kMicrosecond);
    for (auto &n : h.nodes)
        EXPECT_EQ(n->persistedVersion(14), w.version);
}

TEST(EdgeCoalescing, HotKeyPersistsCoalesce)
{
    EdgeHarness h({Consistency::Causal, Persistency::Synchronous});
    // Burst of writes to one key from one coordinator: persists merge
    // in the write-pending queue instead of serializing the bank.
    for (int i = 0; i < 10; ++i)
        h.nodes[0]->clientWrite(15, {}, [](const OpResult &) {});
    h.eq.run();
    EXPECT_GT(h.ctr.get("persists_coalesced"), 0u);
    // The newest version still became durable everywhere.
    Version final = h.nodes[0]->visibleVersion(15);
    EXPECT_EQ(final.number, 10u);
    for (auto &n : h.nodes)
        EXPECT_EQ(n->persistedVersion(15), final);
}

TEST(EdgeCache, RepeatLocalAccessGetsFaster)
{
    EdgeHarness h({Consistency::Causal, Persistency::Eventual});
    OpResult first = h.readAndWait(0, 16);
    h.eq.run();
    OpResult second = h.readAndWait(0, 16);
    // First access misses the hierarchy and pays DRAM; the repeat hits.
    EXPECT_LT(second.latency(), first.latency());
}

TEST(EdgeCausal, ReadEnforcedPersistencyReadGetsDurableValue)
{
    EdgeHarness h({Consistency::Causal, Persistency::ReadEnforced});
    OpResult w = h.writeAndWait(2, 17);
    h.eq.run();
    // Follower read: the latest visible version must be durable at
    // that follower by read completion (local-wait rule, Fig. 3(d)).
    bool checked = false;
    h.nodes[0]->clientRead(17, {}, [&](const OpResult &r) {
        EXPECT_EQ(r.version, w.version);
        EXPECT_GE(h.nodes[0]->persistedVersion(17), w.version);
        checked = true;
    });
    h.eq.run();
    ASSERT_TRUE(checked);
}

TEST(EdgeAblation, CoalescingOffIssuesEveryPersist)
{
    NodeParams base;
    EdgeHarness on({Consistency::Causal, Persistency::Synchronous});
    // Build an "off" harness by hand: same model, coalescing disabled.
    sim::EventQueue eq;
    net::NetworkParams netp;
    net::Fabric fabric(eq, netp, 3);
    stats::CounterRegistry ctr;
    NodeParams np;
    np.model = {Consistency::Causal, Persistency::Synchronous};
    np.numNodes = 3;
    np.keyCount = 64;
    np.opProcessing = 100 * kNanosecond;
    np.msgProcessing = 50 * kNanosecond;
    np.probeCost = 0;
    np.persistCoalescing = false;
    std::vector<std::unique_ptr<ProtocolNode>> nodes;
    for (std::uint32_t n = 0; n < 3; ++n) {
        nodes.push_back(std::make_unique<ProtocolNode>(
            eq, fabric, n, np, ctr, nullptr));
    }

    for (int i = 0; i < 10; ++i) {
        on.nodes[0]->clientWrite(15, {}, [](const OpResult &) {});
        nodes[0]->clientWrite(15, {}, [](const OpResult &) {});
    }
    on.eq.run();
    eq.run();
    // Without coalescing every request persists individually.
    EXPECT_GT(ctr.get("persists_issued"),
              on.ctr.get("persists_issued"));
    EXPECT_EQ(ctr.get("persists_coalesced"), 0u);
    // Both modes still reach the same durable state.
    EXPECT_EQ(nodes[0]->persistedVersion(15).number, 10u);
    EXPECT_EQ(on.nodes[0]->persistedVersion(15).number, 10u);
}

TEST(EdgeAblation, DurableGatingOffAppliesEagerly)
{
    sim::EventQueue eq;
    net::NetworkParams netp;
    net::Fabric fabric(eq, netp, 3);
    stats::CounterRegistry ctr;
    NodeParams np;
    np.model = {Consistency::Causal, Persistency::Synchronous};
    np.numNodes = 3;
    np.keyCount = 64;
    np.opProcessing = 100 * kNanosecond;
    np.msgProcessing = 50 * kNanosecond;
    np.probeCost = 0;
    np.causalDurableGating = false;
    std::vector<std::unique_ptr<ProtocolNode>> nodes;
    for (std::uint32_t n = 0; n < 3; ++n) {
        nodes.push_back(std::make_unique<ProtocolNode>(
            eq, fabric, n, np, ctr, nullptr));
    }
    // Chained writes from one node: without durable gating the
    // followers apply them without waiting for prior persists.
    for (int i = 0; i < 20; ++i)
        nodes[0]->clientWrite(static_cast<KeyId>(i), {},
                              [](const OpResult &) {});
    eq.run();
    EXPECT_EQ(ctr.get("causal_buffered"), 0u);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(nodes[1]->visibleVersion(
                      static_cast<KeyId>(i)).number, 1u);
}
