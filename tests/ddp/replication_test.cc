/**
 * @file
 * Tests for partial replication: replica placement, protocol rounds
 * restricted to replica sets, routing, and the consistency models
 * that refuse to run partially replicated.
 */

#include <gtest/gtest.h>

#include <optional>

#include "cluster/cluster.hh"
#include "ddp/protocol_node.hh"
#include "ddp/replication.hh"
#include "net/fabric.hh"
#include "sim/event_queue.hh"
#include "stats/counter.hh"

using namespace ddp;
using namespace ddp::core;
using net::KeyId;
using net::NodeId;

// --------------------------------------------------------------------------
// ReplicaMap
// --------------------------------------------------------------------------

TEST(ReplicaMap, FullReplicationCoversEveryone)
{
    ReplicaMap m(5, 0);
    EXPECT_TRUE(m.full());
    EXPECT_EQ(m.factor(), 5u);
    for (KeyId k = 0; k < 100; ++k) {
        for (NodeId n = 0; n < 5; ++n)
            EXPECT_TRUE(m.isReplica(k, n));
        EXPECT_EQ(m.followerCount(k), 4u);
    }
}

TEST(ReplicaMap, PartialSetsHaveExactlyFactorMembers)
{
    ReplicaMap m(5, 3);
    for (KeyId k = 0; k < 200; ++k) {
        int members = 0;
        for (NodeId n = 0; n < 5; ++n) {
            if (m.isReplica(k, n))
                ++members;
        }
        EXPECT_EQ(members, 3) << "key " << k;
        EXPECT_EQ(m.followerCount(k), 2u);
    }
}

TEST(ReplicaMap, ReplicaEnumerationMatchesMembership)
{
    ReplicaMap m(5, 2);
    for (KeyId k = 0; k < 200; ++k) {
        for (std::uint32_t i = 0; i < m.factor(); ++i)
            EXPECT_TRUE(m.isReplica(k, m.replica(k, i)));
    }
}

TEST(ReplicaMap, PlacementSpreadsAcrossNodes)
{
    ReplicaMap m(5, 2);
    int homes[5] = {0, 0, 0, 0, 0};
    for (KeyId k = 0; k < 5000; ++k)
        homes[m.home(k)]++;
    for (int n = 0; n < 5; ++n)
        EXPECT_GT(homes[n], 600) << "node " << n;
}

TEST(ReplicaMap, CoordinatorIsAlwaysAReplica)
{
    ReplicaMap m(5, 3);
    for (KeyId k = 0; k < 100; ++k) {
        for (std::uint32_t c = 0; c < 17; ++c)
            EXPECT_TRUE(m.isReplica(k, m.coordinatorFor(k, c)));
    }
}

// --------------------------------------------------------------------------
// Protocol with partial replication
// --------------------------------------------------------------------------

namespace {

struct PartialHarness
{
    sim::EventQueue eq;
    net::NetworkParams netp;
    std::unique_ptr<net::Fabric> fabric;
    stats::CounterRegistry ctr;
    std::vector<std::unique_ptr<ProtocolNode>> nodes;
    ReplicaMap rmap;

    PartialHarness(DdpModel model, std::uint32_t servers,
                   std::uint32_t factor)
        : rmap(servers, factor)
    {
        fabric = std::make_unique<net::Fabric>(eq, netp, servers);
        NodeParams np;
        np.model = model;
        np.numNodes = servers;
        np.replicationFactor = factor;
        np.keyCount = 64;
        np.opProcessing = 100 * sim::kNanosecond;
        np.msgProcessing = 50 * sim::kNanosecond;
        np.probeCost = 0;
        for (std::uint32_t n = 0; n < servers; ++n) {
            nodes.push_back(std::make_unique<ProtocolNode>(
                eq, *fabric, n, np, ctr, nullptr));
        }
    }

    OpResult
    writeAndWait(NodeId node, KeyId key)
    {
        std::optional<OpResult> out;
        nodes[node]->clientWrite(key, {},
                                 [&](const OpResult &r) { out = r; });
        while (!out && eq.step()) {
        }
        EXPECT_TRUE(out.has_value());
        return *out;
    }
};

} // namespace

TEST(PartialReplication, WriteReachesOnlyReplicaSet)
{
    PartialHarness h({Consistency::Linearizable,
                      Persistency::Synchronous},
                     5, 3);
    KeyId key = 7;
    NodeId coord = h.rmap.replica(key, 0);
    OpResult w = h.writeAndWait(coord, key);
    h.eq.run();
    for (NodeId n = 0; n < 5; ++n) {
        if (h.rmap.isReplica(key, n)) {
            EXPECT_EQ(h.nodes[n]->visibleVersion(key), w.version)
                << "replica " << n;
            EXPECT_EQ(h.nodes[n]->persistedVersion(key), w.version);
        } else {
            EXPECT_EQ(h.nodes[n]->visibleVersion(key).number, 0u)
                << "non-replica " << n;
            EXPECT_EQ(h.nodes[n]->persistedVersion(key).number, 0u);
        }
    }
}

TEST(PartialReplication, RoundNeedsOnlyReplicaAcks)
{
    PartialHarness full({Consistency::Linearizable,
                         Persistency::Synchronous},
                        5, 0);
    PartialHarness part({Consistency::Linearizable,
                         Persistency::Synchronous},
                        5, 2);
    KeyId key = 7;
    full.writeAndWait(full.rmap.replica(key, 0), key);
    part.writeAndWait(part.rmap.replica(key, 0), key);
    full.eq.run();
    part.eq.run();
    // 2-replica round: 1 INV + 1 ACK + 1 VAL vs 4 of each.
    EXPECT_EQ(part.fabric->totalMessages(), 3u);
    EXPECT_EQ(full.fabric->totalMessages(), 12u);
}

TEST(PartialReplication, EventualConsistencyMulticastsLazily)
{
    PartialHarness h({Consistency::Eventual, Persistency::Eventual}, 5,
                     2);
    KeyId key = 9;
    NodeId coord = h.rmap.replica(key, 0);
    OpResult w = h.writeAndWait(coord, key);
    h.eq.run();
    NodeId other = h.rmap.replica(key, 1);
    EXPECT_EQ(h.nodes[other]->visibleVersion(key), w.version);
    EXPECT_EQ(h.fabric->totalMessages(), 1u); // one lazy UPD
}

TEST(PartialReplication, CausalConsistencyRejected)
{
    EXPECT_THROW(PartialHarness({Consistency::Causal,
                                 Persistency::Synchronous},
                                5, 3),
                 std::invalid_argument);
}

TEST(PartialReplication, TransactionalConsistencyRejected)
{
    EXPECT_THROW(PartialHarness({Consistency::Transactional,
                                 Persistency::Synchronous},
                                5, 3),
                 std::invalid_argument);
}

// --------------------------------------------------------------------------
// Cluster integration
// --------------------------------------------------------------------------

namespace {

cluster::ClusterConfig
partialConfig(DdpModel m, std::uint32_t factor)
{
    cluster::ClusterConfig c;
    c.model = m;
    c.numServers = 5;
    c.clientsPerServer = 4;
    c.replicationFactor = factor;
    c.keyCount = 2000;
    c.workload = workload::WorkloadSpec::ycsbA(2000);
    c.warmup = 200 * sim::kMicrosecond;
    c.measure = 500 * sim::kMicrosecond;
    c.seed = 7;
    return c;
}

} // namespace

TEST(PartialReplication, ClusterRunsAndReducesTraffic)
{
    cluster::Cluster full(partialConfig(
        {Consistency::Linearizable, Persistency::Synchronous}, 0));
    cluster::Cluster part(partialConfig(
        {Consistency::Linearizable, Persistency::Synchronous}, 3));
    cluster::RunResult rf = full.run();
    cluster::RunResult rp = part.run();
    EXPECT_GT(rp.throughput, 0.0);
    // Fewer replicas -> fewer protocol messages per write.
    double full_mpw = static_cast<double>(rf.messages) /
                      static_cast<double>(rf.writes);
    double part_mpw = static_cast<double>(rp.messages) /
                      static_cast<double>(rp.writes);
    EXPECT_LT(part_mpw, full_mpw * 0.7);
}

TEST(PartialReplication, CrashRecoveryStaysWithinReplicaSets)
{
    core::PropertyChecker pc;
    cluster::ClusterConfig cfg = partialConfig(
        {Consistency::Linearizable, Persistency::Synchronous}, 3);
    cluster::Cluster c(cfg);
    c.setChecker(&pc);
    c.scheduleCrash(cfg.warmup + cfg.measure / 2);
    cluster::RunResult r = c.run();
    // <Linearizable, Synchronous> still loses nothing with 3 replicas.
    EXPECT_EQ(r.lostAckedWriteKeys, 0u);
    EXPECT_EQ(r.monotonicViolations, 0u);
}

TEST(PartialReplication, ReadEnforcedPersistencyStillGlobal)
{
    cluster::Cluster c(partialConfig(
        {Consistency::Linearizable, Persistency::ReadEnforced}, 2));
    cluster::RunResult r = c.run();
    EXPECT_GT(r.reads + r.writes, 1000u);
    EXPECT_GT(r.readsStalledPersist, 0u);
}
