/**
 * @file
 * Unit tests for the log-linear histogram, counters, and table printer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/random.hh"
#include "stats/counter.hh"
#include "stats/histogram.hh"
#include "stats/table.hh"

using namespace ddp::stats;

TEST(Histogram, EmptyIsZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.quantile(0.5), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, ExactMean)
{
    Histogram h;
    h.record(10);
    h.record(20);
    h.record(30);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
    EXPECT_EQ(h.min(), 10u);
    EXPECT_EQ(h.max(), 30u);
    EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, SmallValuesAreExact)
{
    Histogram h;
    for (std::uint64_t v = 0; v < 64; ++v)
        h.record(v);
    // Values below the sub-bucket count land in exact buckets.
    EXPECT_EQ(h.quantile(0.0), 0u);
    EXPECT_EQ(h.quantile(1.0), 63u);
}

TEST(Histogram, QuantileRelativeErrorBounded)
{
    Histogram h;
    for (std::uint64_t v = 1; v <= 100000; ++v)
        h.record(v);
    // p50 should be ~50000 within the ~1.6% bucket resolution.
    double p50 = static_cast<double>(h.quantile(0.5));
    EXPECT_NEAR(p50, 50000.0, 50000.0 * 0.03);
    double p95 = static_cast<double>(h.p95());
    EXPECT_NEAR(p95, 95000.0, 95000.0 * 0.03);
    double p99 = static_cast<double>(h.p99());
    EXPECT_NEAR(p99, 99000.0, 99000.0 * 0.03);
}

TEST(Histogram, QuantileNeverLeavesObservedRange)
{
    // Property: for any sample set and any q, the log-bucket
    // representative must be clamped into [min, max]. A single sample
    // near a bucket's lower edge once reported a p95 above the largest
    // value ever recorded.
    ddp::sim::Pcg32 rng(77, 2);
    for (int trial = 0; trial < 50; ++trial) {
        Histogram h;
        int samples = 1 + static_cast<int>(rng.nextU64() % 40);
        for (int i = 0; i < samples; ++i) {
            // Mix magnitudes so sparse high buckets are common.
            std::uint64_t mag = 1ull << (rng.nextU64() % 40);
            h.record(rng.nextU64() % (mag + 1));
        }
        for (double q = 0.0; q <= 1.0; q += 0.01) {
            std::uint64_t v = h.quantile(q);
            ASSERT_GE(v, h.min()) << "trial " << trial << " q " << q;
            ASSERT_LE(v, h.max()) << "trial " << trial << " q " << q;
        }
    }
}

TEST(Histogram, SingleSampleAllQuantilesEqualIt)
{
    Histogram h;
    h.record(123457);
    for (double q : {0.0, 0.5, 0.95, 0.99, 1.0})
        EXPECT_EQ(h.quantile(q), 123457u);
}

TEST(Histogram, QuantilesMonotonic)
{
    Histogram h;
    ddp::sim::Pcg32 rng(77, 1);
    for (int i = 0; i < 20000; ++i)
        h.record(rng.nextU64() % 1000000);
    std::uint64_t prev = 0;
    for (double q = 0.0; q <= 1.0; q += 0.05) {
        std::uint64_t v = h.quantile(q);
        EXPECT_GE(v, prev);
        prev = v;
    }
}

TEST(Histogram, HugeValuesDoNotOverflow)
{
    Histogram h;
    h.record(~std::uint64_t{0} / 2);
    h.record(1);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_GE(h.max(), ~std::uint64_t{0} / 2);
}

TEST(Histogram, MergeCombines)
{
    Histogram a, b;
    a.record(10);
    b.record(1000);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.min(), 10u);
    EXPECT_EQ(a.max(), 1000u);
    EXPECT_DOUBLE_EQ(a.mean(), 505.0);
}

TEST(Histogram, ClearResets)
{
    Histogram h;
    h.record(5);
    h.clear();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.max(), 0u);
    h.record(7);
    EXPECT_EQ(h.min(), 7u);
}

TEST(CounterRegistry, AddAndGet)
{
    CounterRegistry c;
    EXPECT_EQ(c.get("x"), 0u);
    c.add("x");
    c.add("x", 4);
    EXPECT_EQ(c.get("x"), 5u);
}

TEST(CounterRegistry, DiffAgainstSnapshot)
{
    CounterRegistry c;
    c.add("a", 10);
    auto snap = c.snapshot();
    c.add("a", 5);
    c.add("b", 3);
    auto d = c.diff(snap);
    EXPECT_EQ(d["a"], 5u);
    EXPECT_EQ(d["b"], 3u);
}

TEST(Table, AlignsColumns)
{
    Table t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer-name", "2"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_EQ(t.columns(), 2u);
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(2.0, 0), "2");
}

#include "stats/timeseries.hh"

using ddp::sim::kMicrosecond;

TEST(RateSeries, BucketsEventsByInterval)
{
    RateSeries s(10 * kMicrosecond);
    s.record(1 * kMicrosecond);
    s.record(9 * kMicrosecond);
    s.record(15 * kMicrosecond);
    EXPECT_EQ(s.buckets(), 2u);
    EXPECT_EQ(s.countAt(0), 2u);
    EXPECT_EQ(s.countAt(1), 1u);
    EXPECT_EQ(s.countAt(5), 0u);
    EXPECT_EQ(s.totalEvents(), 3u);
}

TEST(RateSeries, RateConvertsToPerSecond)
{
    RateSeries s(kMicrosecond);
    for (int i = 0; i < 100; ++i)
        s.record(500); // all within bucket 0 (1 us wide)
    // 100 events / 1 us = 100 M/s.
    EXPECT_DOUBLE_EQ(s.rateAt(0), 100e6);
}

TEST(RateSeries, RecordNAndBucketStart)
{
    RateSeries s(10 * kMicrosecond);
    s.recordN(25 * kMicrosecond, 7);
    EXPECT_EQ(s.countAt(2), 7u);
    EXPECT_EQ(s.bucketStart(2), 20 * kMicrosecond);
}

TEST(RateSeries, MinBucketFindsDip)
{
    RateSeries s(kMicrosecond);
    for (int b = 0; b < 10; ++b) {
        int events = (b == 6) ? 2 : 50;
        for (int i = 0; i < events; ++i)
            s.record(static_cast<ddp::sim::Tick>(b) * kMicrosecond);
    }
    EXPECT_EQ(s.minBucket(0, 10), 6u);
}

TEST(RateSeries, ClearResets)
{
    RateSeries s(kMicrosecond);
    s.record(0);
    s.clear();
    EXPECT_EQ(s.buckets(), 0u);
    EXPECT_EQ(s.totalEvents(), 0u);
}
