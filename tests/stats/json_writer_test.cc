/**
 * @file
 * Round-trip tests for the ddp-bench-v1 JSON writer.
 *
 * Every BENCH_*.json artifact and ddpsim --format json record flows
 * through JsonArrayWriter, so a formatting bug silently corrupts the
 * perf trajectory. These tests pin the correctness-critical parts:
 * doubles survive a text round trip bit-exactly (max_digits10),
 * non-finite doubles degrade to null instead of invalid JSON, and
 * control characters in strings are escaped.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <string>

#include "bench_common.hh"

using ddp::bench::JsonArrayWriter;

namespace {

/** Extract the raw text of "key": <value> from a serialized record. */
std::string
rawValue(const std::string &json, const std::string &key)
{
    std::string needle = "\"" + key + "\": ";
    std::size_t at = json.find(needle);
    EXPECT_NE(at, std::string::npos) << key << " not in " << json;
    if (at == std::string::npos)
        return {};
    std::size_t start = at + needle.size();
    std::size_t end = json.find_first_of(",\n", start);
    return json.substr(start, end - start);
}

} // namespace

TEST(JsonArrayWriter, DoubleRoundTripsBitExact)
{
    // max_digits10 significant digits guarantee strtod returns the
    // exact same bits for every finite double.
    const double values[] = {0.1 + 0.2,
                             1.0 / 3.0,
                             6.02214076e23,
                             5e-324, // min denormal
                             std::numeric_limits<double>::max(),
                             123456789.123456789,
                             -0.0};
    std::ostringstream os;
    JsonArrayWriter w(os);
    w.beginRecord();
    int i = 0;
    for (double v : values)
        w.field(("v" + std::to_string(i++)).c_str(), v);
    w.endRecord();
    w.finish();

    std::string json = os.str();
    i = 0;
    for (double v : values) {
        std::string raw = rawValue(json, "v" + std::to_string(i++));
        double back = std::strtod(raw.c_str(), nullptr);
        EXPECT_EQ(back, v) << raw;
    }
}

TEST(JsonArrayWriter, NonFiniteDoublesBecomeNull)
{
    std::ostringstream os;
    JsonArrayWriter w(os);
    w.beginRecord();
    w.field("nan", std::nan(""));
    w.field("inf", std::numeric_limits<double>::infinity());
    w.field("ninf", -std::numeric_limits<double>::infinity());
    w.endRecord();
    w.finish();

    std::string json = os.str();
    EXPECT_EQ(rawValue(json, "nan"), "null");
    EXPECT_EQ(rawValue(json, "inf"), "null");
    EXPECT_EQ(rawValue(json, "ninf"), "null");
}

TEST(JsonArrayWriter, StringsEscapeControlAndQuoteChars)
{
    std::ostringstream os;
    JsonArrayWriter w(os);
    w.beginRecord();
    w.field("s", std::string("a\"b\\c\nd\te\rf\x01g"));
    w.endRecord();
    w.finish();

    std::string json = os.str();
    EXPECT_NE(json.find("a\\\"b\\\\c\\nd\\te\\rf\\u0001g"),
              std::string::npos)
        << json;
}

TEST(JsonArrayWriter, ArrayShapeAndSeparators)
{
    std::ostringstream os;
    JsonArrayWriter w(os);
    w.beginRecord();
    w.field("a", std::uint64_t{1});
    w.field("b", true);
    w.endRecord();
    w.beginRecord();
    w.field("a", std::uint64_t{2});
    w.field("b", false);
    w.endRecord();
    w.finish();

    std::string json = os.str();
    EXPECT_EQ(json.front(), '[');
    EXPECT_NE(json.find("\"a\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"b\": true"), std::string::npos);
    EXPECT_NE(json.find("},\n"), std::string::npos); // record separator
    EXPECT_NE(json.find("\n]\n"), std::string::npos);
}
