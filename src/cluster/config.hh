/**
 * @file
 * Cluster-level experiment configuration (paper Table 5 defaults).
 *
 * The defaults model the paper's evaluated system: 5 servers, 20
 * clients per server (100 total), 20 worker cores per server, DRAM +
 * NVM per server, 200 Gb/s NICs with a 1 us round trip, YCSB-A over a
 * zipfian key space, transactions of 5 client requests and scopes of
 * 10 client requests.
 */

#ifndef DDP_CLUSTER_CONFIG_HH
#define DDP_CLUSTER_CONFIG_HH

#include <cstdint>

#include "ddp/models.hh"
#include "ddp/protocol_node.hh"
#include "net/fabric.hh"
#include "net/fault.hh"
#include "sim/ticks.hh"
#include "workload/trace.hh"
#include "workload/ycsb.hh"

namespace ddp::cluster {

/** How the cluster reconstructs state after a crash. */
enum class RecoveryPolicy
{
    /** Each node restores only its own NVM contents. */
    LocalOnly,
    /**
     * Voting-based recovery (paper Sec. 9): nodes exchange persisted
     * versions and install the cluster-wide maximum everywhere.
     * Applied instantaneously with a closed-form time estimate.
     */
    Voting,
    /**
     * The same voting algorithm executed as an actual message protocol
     * over the simulated fabric (ddp/recovery.hh): recovery time
     * emerges from network and processing timing.
     */
    SimulatedVoting,
    /**
     * MM-DIRECT-style instant recovery: a restarting node builds a
     * cheap index over its PersistImage instead of replaying it,
     * re-joins immediately, and admits requests at once — cold keys
     * are faulted in on demand (checksum-verified through the commit-
     * record rollback path) while a background backfill drains the
     * rest. Requires commit records for multi-line values.
     */
    Instant,
};

/** Everything an experiment needs to build and run a cluster. */
struct ClusterConfig
{
    core::DdpModel model{};

    std::uint32_t numServers = 5;
    std::uint32_t clientsPerServer = 20;
    /** Replicas per key; 0 = full replication (the paper's setting). */
    std::uint32_t replicationFactor = 0;
    std::uint64_t keyCount = 100000;

    workload::WorkloadSpec workload =
        workload::WorkloadSpec::ycsbA(100000);

    /**
     * Optional recorded trace: when set, clients replay it (cyclically,
     * each client starting at a different offset) instead of drawing
     * from the workload generator — the paper's Pin-trace methodology.
     * The trace's keys must lie within keyCount. Not owned.
     */
    const workload::Trace *trace = nullptr;

    net::NetworkParams network{};

    /**
     * Fault-injection plan (drops, duplicates, delays, reorders,
     * partitions, node outages). When any fault is configured the
     * cluster automatically enables the fabric's reliable-delivery
     * layer (network.reliability) so protocol invariants survive the
     * lossy wire. faults.seed = 0 derives the chaos stream from the
     * experiment seed, keeping whole runs bit-reproducible.
     */
    net::FaultConfig faults{};
    /** Per-node cost/substrate parameters; model, numNodes and
     *  keyCount are overridden from this config. */
    core::NodeParams node{};

    /** Requests per transaction (Transactional consistency). */
    std::uint32_t xactLength = 5;
    /** Requests per scope (Scope persistency). */
    std::uint32_t scopeLength = 10;
    /** Base client backoff window after a squashed transaction
     *  (doubles per consecutive squash, capped at 6 doublings). */
    sim::Tick xactRetryBackoff = 2 * sim::kMicrosecond;

    /**
     * Client-side request timeout. 0 (the default) disables it: a
     * request waits forever and runs carry no retransmission identity,
     * keeping the wire byte-identical to earlier builds. When > 0,
     * every client request arms a timer; on expiry the client presumes
     * its coordinator dead, rotates to the next server, and
     * retransmits. Writes then carry a per-client sequence number that
     * coordinators dedup, making retried writes exactly-once.
     */
    sim::Tick clientRequestTimeout = 0;

    /**
     * Attempts per transaction batch (first try + retries) before the
     * client abandons the batch and moves on; abandoned batches are
     * tallied in RunResult::xactAbandoned.
     */
    std::uint32_t xactMaxAttempts = 64;

    /**
     * Pause between a completion and the client's next request.
     * 0 = saturating closed loop (the default); larger values emulate
     * clients that are rate-limited by their own work.
     */
    sim::Tick clientThinkTime = 0;

    sim::Tick warmup = 2 * sim::kMillisecond;
    sim::Tick measure = 10 * sim::kMillisecond;

    RecoveryPolicy recovery = RecoveryPolicy::Voting;
    /** Keys per recovery query batch (SimulatedVoting). */
    std::uint32_t recoveryBatch = 1024;

    /**
     * Completion-rate timeline bucket width; 0 (default) disables the
     * cluster-owned throughput-over-time series. When > 0 the run
     * records every read/write completion into fixed buckets covering
     * the whole run (downtime shows as explicit zero samples) and
     * RunResult carries the series plus recovery_time_to_slo_us.
     */
    sim::Tick timelineBucket = 0;
    /**
     * Recovery SLO: fraction of the pre-crash throughput baseline the
     * post-restart rate must regain for recovery_time_to_slo_us; in
     * (0, 1].
     */
    double recoverySloFrac = 0.9;

    std::uint64_t seed = 1;

    /** Total clients across the cluster. */
    std::uint32_t
    totalClients() const
    {
        return numServers * clientsPerServer;
    }
};

} // namespace ddp::cluster

#endif // DDP_CLUSTER_CONFIG_HH
