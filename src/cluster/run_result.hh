/**
 * @file
 * Results of one cluster experiment run.
 */

#ifndef DDP_CLUSTER_RUN_RESULT_HH
#define DDP_CLUSTER_RUN_RESULT_HH

#include <cstdint>
#include <map>
#include <string>

#include "sim/ticks.hh"

namespace ddp::cluster {

/** Measured metrics of one run (measurement window only). */
struct RunResult
{
    /** Client requests (reads + writes) completed per second. */
    double throughput = 0.0;

    double meanReadNs = 0.0;
    double meanWriteNs = 0.0;
    double meanNs = 0.0;
    double p95ReadNs = 0.0;
    double p95WriteNs = 0.0;

    std::uint64_t reads = 0;
    std::uint64_t writes = 0;

    std::uint64_t messages = 0;
    std::uint64_t networkBytes = 0;
    std::uint64_t persistsIssued = 0;

    std::uint64_t readsStalledVisibility = 0;
    std::uint64_t readsStalledPersist = 0;

    std::uint64_t xactStarted = 0;
    std::uint64_t xactCommitted = 0;
    std::uint64_t xactAborted = 0;
    std::uint64_t xactConflicts = 0;

    /** Peak out-of-order UPD buffering across nodes (Causal). */
    std::uint64_t causalBufferPeak = 0;

    /** Property-checker verdicts (when a checker was attached). */
    std::uint64_t monotonicViolations = 0;
    std::uint64_t staleReads = 0;
    std::uint64_t lostAckedWriteKeys = 0;

    /** All raw counters diffed over the measurement window. */
    std::map<std::string, std::uint64_t> counters;

    /** Fraction of reads that stalled on an unpersisted write. */
    double
    persistStallFraction() const
    {
        return reads == 0 ? 0.0
                          : static_cast<double>(readsStalledPersist) /
                                static_cast<double>(reads);
    }

    /** Fraction of started transactions squashed by conflicts. */
    double
    conflictRate() const
    {
        return xactStarted == 0
                   ? 0.0
                   : static_cast<double>(xactAborted) /
                         static_cast<double>(xactStarted);
    }
};

/** Outcome of a crash + recovery event. */
struct RecoveryStats
{
    std::uint64_t keysInstalled = 0;
    /** Keys whose replicas disagreed in NVM before voting. */
    std::uint64_t divergentKeys = 0;
    /** Modeled wall-clock cost of the recovery protocol. */
    sim::Tick recoveryTime = 0;
    /** Acked writes (latest per key) that did not survive. */
    std::uint64_t lostAckedWriteKeys = 0;
};

} // namespace ddp::cluster

#endif // DDP_CLUSTER_RUN_RESULT_HH
