/**
 * @file
 * Results of one cluster experiment run.
 */

#ifndef DDP_CLUSTER_RUN_RESULT_HH
#define DDP_CLUSTER_RUN_RESULT_HH

#include <array>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "net/message.hh"
#include "sim/phase.hh"
#include "sim/ticks.hh"

namespace ddp::cluster {

/** Measured metrics of one run (measurement window only). */
struct RunResult
{
    /** Client requests (reads + writes) completed per second. */
    double throughput = 0.0;

    double meanReadNs = 0.0;
    double meanWriteNs = 0.0;
    double meanNs = 0.0;
    double p50ReadNs = 0.0;
    double p95ReadNs = 0.0;
    double p99ReadNs = 0.0;
    double p50WriteNs = 0.0;
    double p95WriteNs = 0.0;
    double p99WriteNs = 0.0;

    std::uint64_t reads = 0;
    std::uint64_t writes = 0;

    // --- Per-phase latency breakdown (measurement window) ------------------
    /** Mean + p95 of one request phase, in nanoseconds. */
    struct PhaseStat
    {
        double meanNs = 0.0;
        double p95Ns = 0.0;
    };
    /**
     * Breakdown of end-to-end request latency by sim::Phase, over all
     * completed reads+writes (every request contributes to every
     * phase, zero when it skipped the phase, so the phase means sum
     * exactly to meanNs). Indexed by static_cast<size_t>(sim::Phase).
     */
    std::array<PhaseStat, sim::kPhaseCount> phaseBreakdown{};

    const PhaseStat &
    phase(sim::Phase p) const
    {
        return phaseBreakdown[static_cast<std::size_t>(p)];
    }

    std::uint64_t messages = 0;
    std::uint64_t networkBytes = 0;
    std::uint64_t persistsIssued = 0;

    std::uint64_t readsStalledVisibility = 0;
    std::uint64_t readsStalledPersist = 0;

    std::uint64_t xactStarted = 0;
    std::uint64_t xactCommitted = 0;
    std::uint64_t xactAborted = 0;
    std::uint64_t xactConflicts = 0;

    /** Peak out-of-order UPD buffering across nodes (Causal). */
    std::uint64_t causalBufferPeak = 0;

    /** Property-checker verdicts (when a checker was attached). */
    std::uint64_t monotonicViolations = 0;
    std::uint64_t staleReads = 0;
    std::uint64_t lostAckedWriteKeys = 0;
    /** Individual acked writes lost across all crash epochs (the whole
     *  lost suffix per key, not just the latest). */
    std::uint64_t lostAckedWrites = 0;
    /** Crash epochs the checker audited during the run. */
    std::uint64_t crashEpochs = 0;

    // --- Torn-persist accounting (whole-run totals) ------------------------
    /** Mid-persist values recovery detected via checksum and rolled
     *  back to the last intact version. */
    std::uint64_t tornPersistsDetected = 0;
    /** Torn values recovery installed as current (commit-record
     *  ablation only; always 0 with commit records on). */
    std::uint64_t tornValuesInstalled = 0;
    /** Client reads that returned a torn value. */
    std::uint64_t tornReadsServed = 0;

    // --- Restart / failover accounting (whole-run totals) ------------------
    /** Nodes that came back from a staged partial crash. */
    std::uint64_t nodeRestarts = 0;
    /** Keys where a restarted node failed to converge with survivors. */
    std::uint64_t convergenceFailures = 0;
    /** Client request timeouts that triggered coordinator failover. */
    std::uint64_t clientFailovers = 0;
    /** Requests a client retransmitted after failover. */
    std::uint64_t clientRetransmits = 0;
    /** Retransmitted writes a coordinator recognized and deduped. */
    std::uint64_t clientRetransmitsDeduped = 0;
    /** Transaction batches abandoned after xactMaxAttempts. */
    std::uint64_t xactAbandoned = 0;

    // --- Fault / reliability accounting (whole-run totals) -----------------
    /** Messages lost to injected drops or severed links. */
    std::uint64_t netDropped = 0;
    /** Duplicate copies the fault plan put on the wire. */
    std::uint64_t netDuplicated = 0;
    /** Messages the fault plan delayed. */
    std::uint64_t netDelayed = 0;
    /** Messages the fault plan delivered out of order. */
    std::uint64_t netReordered = 0;
    /** Messages swallowed by partitions or node outages. */
    std::uint64_t netPartitionDrops = 0;
    /** Retransmissions issued by the reliable-delivery layer. */
    std::uint64_t netRetransmits = 0;
    /** Retransmission timeouts that fired. */
    std::uint64_t netRtoTimeouts = 0;
    /** Messages abandoned after the retransmission retry cap. */
    std::uint64_t netGiveUps = 0;
    /** Link-level NET_ACKs the reliable layer sent. */
    std::uint64_t netAcks = 0;
    /** Arrivals the reliable layer discarded as duplicates. */
    std::uint64_t netDuplicateArrivals = 0;
    /** Arrivals the reliable layer parked for resequencing. */
    std::uint64_t netOutOfOrderArrivals = 0;
    /** Trace entries evicted from an attached MessageTracer's ring. */
    std::uint64_t tracerDropped = 0;

    // --- Degraded-mode recovery accounting (summed over recoveries) --------
    std::uint64_t recoveryTimeouts = 0;
    std::uint64_t recoveryRetries = 0;
    /** Recovery batches that completed short of a full replica set. */
    std::uint64_t recoveryQuorumBatches = 0;
    /** Recovery batches that fell below even the majority quorum. */
    std::uint64_t recoveryQuorumFailures = 0;
    /** Nodes some recovery declared unreachable (sorted, deduped). */
    std::vector<net::NodeId> unreachableNodes;

    // --- Throughput-over-time series (cfg.timelineBucket > 0 only) ---------
    /** Completion rate (ops/sec) per bucket over the whole run,
     *  including warmup; empty when the timeline was disabled. Buckets
     *  with no completions (e.g. crash downtime) are explicit zeros. */
    std::vector<double> timelineRate;
    /** Bucket width of timelineRate; 0 = timeline disabled. */
    sim::Tick timelineBucket = 0;
    /**
     * Microseconds from the first crash until throughput first
     * regained cfg.recoverySloFrac of the pre-crash baseline (bucket
     * granularity). NaN when no crash was injected, the timeline was
     * off, or the SLO was never regained — serialized as JSON null.
     */
    double recoveryTimeToSloUs =
        std::numeric_limits<double>::quiet_NaN();
    /** Read/write completions while a node was instant-recovering. */
    std::uint64_t servedDuringRecovery = 0;
    /** On-demand fault-ins instant recovery performed (whole run). */
    std::uint64_t recoveryFaultIns = 0;

    // --- Simulator throughput (whole run, host-side) -----------------------
    /** Simulated events the run's EventQueue executed, start to end. */
    std::uint64_t eventsExecuted = 0;
    /** Host wall-clock seconds Cluster::run() took. Nondeterministic —
     *  never fold into simulated metrics or reproducibility checks. */
    double wallSeconds = 0.0;

    /** Simulator throughput: simulated events per host second. */
    double
    eventsPerSec() const
    {
        return wallSeconds <= 0.0
                   ? 0.0
                   : static_cast<double>(eventsExecuted) / wallSeconds;
    }

    /** All raw counters diffed over the measurement window. */
    std::map<std::string, std::uint64_t> counters;

    /** True when the run saw injected faults or degraded recovery. */
    bool
    degraded() const
    {
        return netDropped > 0 || netPartitionDrops > 0 ||
               netGiveUps > 0 || recoveryQuorumBatches > 0 ||
               recoveryQuorumFailures > 0 || !unreachableNodes.empty();
    }

    /** Fraction of reads that stalled on an unpersisted write. */
    double
    persistStallFraction() const
    {
        return reads == 0 ? 0.0
                          : static_cast<double>(readsStalledPersist) /
                                static_cast<double>(reads);
    }

    /** Fraction of started transactions squashed by conflicts. */
    double
    conflictRate() const
    {
        return xactStarted == 0
                   ? 0.0
                   : static_cast<double>(xactAborted) /
                         static_cast<double>(xactStarted);
    }
};

/** Outcome of a crash + recovery event. */
struct RecoveryStats
{
    std::uint64_t keysInstalled = 0;
    /** Keys whose replicas disagreed in NVM before voting. */
    std::uint64_t divergentKeys = 0;
    /** Modeled wall-clock cost of the recovery protocol. */
    sim::Tick recoveryTime = 0;
    /** Acked writes (latest per key) that did not survive. */
    std::uint64_t lostAckedWriteKeys = 0;
    /** Individual acked writes (whole lost suffix) that did not
     *  survive this crash epoch. */
    std::uint64_t lostAckedWrites = 0;
    /** True for the restart/re-join leg of a staged partial crash. */
    bool restart = false;
    /** Torn values detected + rolled back during this recovery. */
    std::uint64_t tornDetected = 0;
    /** Keys where a restarted node diverged from survivors after
     *  re-join state transfer (restart legs only). */
    std::uint64_t convergenceFailures = 0;

    // --- Degraded-mode accounting (SimulatedVoting only) -------------------
    std::uint64_t timeouts = 0;
    std::uint64_t retries = 0;
    std::uint64_t quorumBatches = 0;
    std::uint64_t quorumFailures = 0;
    /** Replicas that never answered after all retries (sorted). */
    std::vector<net::NodeId> unreachable;
};

} // namespace ddp::cluster

#endif // DDP_CLUSTER_RUN_RESULT_HH
