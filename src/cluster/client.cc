#include "cluster/client.hh"

#include "cluster/cluster.hh"

namespace ddp::cluster {

using core::OpCompletion;
using core::OpContext;
using core::OpKind;
using core::OpResult;

Client::Client(Cluster &owner, core::ProtocolNode &node, std::uint32_t id)
    : owner(owner),
      homeIdx(node.id()),
      clientId(id),
      gen(owner.config().workload, owner.config().seed, id + 1),
      rng(owner.config().seed ^ 0xc11e47, id + 1)
{
    const workload::Trace *trace = owner.config().trace;
    if (trace && !trace->empty()) {
        // Stagger replay start positions so clients do not move in
        // lockstep over the same keys.
        std::size_t stride =
            trace->size() / std::max(1u, owner.config().totalClients());
        cursor.emplace(*trace, stride * id);
    }
}

workload::Op
Client::nextOp()
{
    return cursor ? cursor->next() : gen.next();
}

bool
Client::transactional() const
{
    return owner.config().model.consistency ==
           core::Consistency::Transactional;
}

bool
Client::scoped() const
{
    return owner.config().model.persistency == core::Persistency::Scope;
}

bool
Client::timeoutsEnabled() const
{
    return owner.config().clientRequestTimeout > 0;
}

std::uint64_t
Client::currentScopeId() const
{
    return (static_cast<std::uint64_t>(clientId) + 1) << 32 | scopeSeq;
}

core::ProtocolNode &
Client::coord()
{
    return owner.node((homeIdx + nodeOffset) % owner.numNodes());
}

void
Client::start()
{
    issueNext();
}

void
Client::restartAt(sim::Tick resume_at)
{
    ++generation;
    cancelRequestTimer();
    phase = Phase::Idle;
    nodeOffset = 0;
    xactOps.clear();
    opsSinceScopePersist = 0;
    ++scopeSeq;
    std::uint32_t g = generation;
    owner.queue().schedule(resume_at, [this, g] {
        if (g == generation)
            issueNext();
    });
}

// --------------------------------------------------------------------------
// Request timeout and coordinator failover
// --------------------------------------------------------------------------

void
Client::armRequestTimer(std::uint64_t token)
{
    if (!timeoutsEnabled())
        return;
    cancelRequestTimer();
    std::uint32_t g = generation;
    reqTimer = owner.queue().scheduleTimerIn(
        owner.config().clientRequestTimeout, [this, g, token] {
            if (g != generation || token != attemptToken)
                return;
            reqTimer = sim::kNoTimer;
            onRequestTimeout();
        });
}

void
Client::cancelRequestTimer()
{
    if (reqTimer != sim::kNoTimer) {
        owner.queue().cancelTimer(reqTimer);
        reqTimer = sim::kNoTimer;
    }
}

void
Client::onRequestTimeout()
{
    // Invalidate the timed-out attempt so a late completion from a
    // merely slow (not dead) coordinator cannot double-drive the loop.
    ++attemptToken;
    ++nodeOffset;
    owner.noteClientFailover();
    switch (phase) {
      case Phase::PlainOp:
        owner.noteClientRetransmit();
        sendPlainOp();
        break;
      case Phase::ScopePersist:
        owner.noteClientRetransmit();
        sendScopePersist();
        break;
      case Phase::Xact:
        // The attempt died with its coordinator (the transaction
        // record is volatile); re-run the whole transaction at the
        // next server after the usual backoff.
        retryXactAfterBackoff();
        break;
      case Phase::Idle:
        break;
    }
}

// --------------------------------------------------------------------------
// Plain operations
// --------------------------------------------------------------------------

void
Client::issueNext()
{
    sim::Tick think = owner.config().clientThinkTime;
    if (think > 0) {
        std::uint32_t g = generation;
        owner.queue().scheduleIn(think, [this, g] {
            if (g == generation)
                issueNow();
        });
        return;
    }
    issueNow();
}

void
Client::issueNow()
{
    if (scoped() && opsSinceScopePersist >= owner.config().scopeLength) {
        issueScopePersist();
        return;
    }
    if (transactional()) {
        beginXactBatch();
    } else {
        issuePlainOp();
    }
}

void
Client::issuePlainOp()
{
    pendingOp = nextOp();
    ++issued;
    pendingSeq = ++reqSeq;
    phase = Phase::PlainOp;
    sendPlainOp();
}

void
Client::sendPlainOp()
{
    std::uint64_t token = ++attemptToken;
    std::uint32_t g = generation;
    OpContext ctx;
    ctx.scopeId = scoped() ? currentScopeId() : 0;
    if (timeoutsEnabled() && pendingOp.type == workload::OpType::Write) {
        // Retransmission identity: if this write has to be retried at
        // another coordinator, a node that already applied it will
        // acknowledge instead of re-executing.
        ctx.clientId = clientId;
        ctx.clientSeq = pendingSeq;
    }
    OpCompletion cb = [this, g, token](const OpResult &r) {
        if (g != generation || token != attemptToken)
            return;
        cancelRequestTimer();
        phase = Phase::Idle;
        owner.recordOp(r.kind, r.latency(), r.phases);
        ++opsSinceScopePersist;
        issueNext();
    };
    armRequestTimer(token);
    // Under partial replication the client routes each request to a
    // replica of the key (smart-client partition awareness).
    core::ProtocolNode &target =
        owner.nodeForKey(pendingOp.key, clientId + nodeOffset);
    if (pendingOp.type == workload::OpType::Read)
        target.clientRead(pendingOp.key, ctx, std::move(cb));
    else
        target.clientWrite(pendingOp.key, ctx, std::move(cb));
}

void
Client::issueScopePersist()
{
    phase = Phase::ScopePersist;
    sendScopePersist();
}

void
Client::sendScopePersist()
{
    std::uint64_t token = ++attemptToken;
    std::uint32_t g = generation;
    armRequestTimer(token);
    coord().clientPersistScope(currentScopeId(),
                               [this, g, token](const OpResult &r) {
        if (g != generation || token != attemptToken)
            return;
        cancelRequestTimer();
        phase = Phase::Idle;
        owner.recordOp(r.kind, r.latency(), r.phases);
        opsSinceScopePersist = 0;
        ++scopeSeq;
        issueNext();
    });
}

// --------------------------------------------------------------------------
// Transactions
// --------------------------------------------------------------------------

void
Client::beginXactBatch()
{
    std::uint32_t len = owner.config().xactLength;
    xactOps.clear();
    for (std::uint32_t i = 0; i < len; ++i)
        xactOps.push_back(nextOp());
    xactFirstIssue.assign(len, 0);
    xactOpDone.assign(len, 0);
    xactOpPhases.assign(len, sim::PhaseAccum{});
    xactAttempts = 0;
    phase = Phase::Xact;
    startXactAttempt();
}

void
Client::startXactAttempt()
{
    ++xactAttempts;
    ++xactSeq;
    curXactId = (static_cast<std::uint64_t>(clientId) + 1) << 32 | xactSeq;
    std::uint64_t token = ++attemptToken;
    std::uint32_t g = generation;
    armRequestTimer(token);
    coord().clientInitXact(curXactId, [this, g, token](const OpResult &r) {
        if (g != generation || token != attemptToken)
            return;
        cancelRequestTimer();
        if (r.aborted) {
            retryXactAfterBackoff();
            return;
        }
        issueXactOp(0);
    });
}

void
Client::issueXactOp(std::size_t index)
{
    if (index >= xactOps.size()) {
        finishXactAttempt();
        return;
    }
    const workload::Op &op = xactOps[index];
    if (xactFirstIssue[index] == 0) {
        xactFirstIssue[index] = owner.now();
        ++issued;
    }
    OpContext ctx;
    ctx.xactId = curXactId;
    ctx.scopeId = scoped() ? currentScopeId() : 0;
    std::uint64_t token = ++attemptToken;
    std::uint32_t g = generation;
    OpCompletion cb = [this, g, token, index](const OpResult &r) {
        if (g != generation || token != attemptToken)
            return;
        cancelRequestTimer();
        if (r.aborted) {
            std::uint64_t abort_token = ++attemptToken;
            armRequestTimer(abort_token);
            coord().clientEndXact(curXactId, false,
                                  [this, g, abort_token](const OpResult &) {
                if (g != generation || abort_token != attemptToken)
                    return;
                cancelRequestTimer();
                retryXactAfterBackoff();
            });
            return;
        }
        xactOpDone[index] = r.completedAt;
        xactOpPhases[index] = r.phases;
        issueXactOp(index + 1);
    };
    armRequestTimer(token);
    core::ProtocolNode &target = coord();
    if (op.type == workload::OpType::Read)
        target.clientRead(op.key, ctx, std::move(cb));
    else
        target.clientWrite(op.key, ctx, std::move(cb));
}

void
Client::finishXactAttempt()
{
    std::uint64_t token = ++attemptToken;
    std::uint32_t g = generation;
    armRequestTimer(token);
    coord().clientEndXact(curXactId, true,
                          [this, g, token](const OpResult &r) {
        if (g != generation || token != attemptToken)
            return;
        cancelRequestTimer();
        if (r.aborted) {
            retryXactAfterBackoff();
            return;
        }
        phase = Phase::Idle;
        xactRetries = 0;
        commitRecorded(r.completedAt);
        opsSinceScopePersist +=
            static_cast<std::uint32_t>(xactOps.size());
        issueNext();
    });
}

void
Client::commitRecorded(sim::Tick end_completed)
{
    // Reads count with their own response times; writes become truly
    // visible at the transaction end (the VP of Transactional
    // consistency), so their latency extends to ENDX completion. Both
    // span every retry of the transaction.
    // Phase attribution: the last attempt's breakdown is kept; time
    // spent on earlier (squashed or timed-out) attempts and backoff —
    // the gap between the batch's first issue and the last attempt's —
    // is charged to ConflictRetry, and a write's tail from its own
    // completion to ENDX is charged to XactCommit. The per-op phase
    // sums then exactly equal the recorded latencies.
    for (std::size_t i = 0; i < xactOps.size(); ++i) {
        if (xactOps[i].type == workload::OpType::Read) {
            sim::Tick lat = xactOpDone[i] - xactFirstIssue[i];
            sim::PhaseAccum acc = xactOpPhases[i];
            acc.add(sim::Phase::ConflictRetry, lat - acc.sum());
            owner.recordOp(OpKind::Read, lat, acc);
        } else {
            sim::Tick lat = end_completed - xactFirstIssue[i];
            sim::PhaseAccum acc = xactOpPhases[i];
            acc.add(sim::Phase::XactCommit,
                    end_completed - xactOpDone[i]);
            acc.add(sim::Phase::ConflictRetry, lat - acc.sum());
            owner.recordOp(OpKind::Write, lat, acc);
        }
    }
}

void
Client::retryXactAfterBackoff()
{
    if (xactAttempts >= owner.config().xactMaxAttempts) {
        // Livelock backstop: drop the batch rather than spin forever
        // (e.g. every coordinator unreachable, or pathological
        // conflict storms).
        owner.noteXactAbandoned();
        phase = Phase::Idle;
        xactRetries = 0;
        issueNext();
        return;
    }
    // Exponential backoff breaks retry livelock on hot zipfian keys:
    // contended clients drain out of the active-transaction set until
    // the conflict probability is sustainable.
    if (xactRetries < 6)
        ++xactRetries;
    sim::Tick window = owner.config().xactRetryBackoff << xactRetries;
    sim::Tick delay =
        window == 0
            ? 0
            : rng.nextU64() % window;
    std::uint32_t g = generation;
    owner.queue().scheduleIn(delay, [this, g] {
        if (g == generation)
            startXactAttempt();
    });
}

} // namespace ddp::cluster
