#include "cluster/client.hh"

#include "cluster/cluster.hh"

namespace ddp::cluster {

using core::OpCompletion;
using core::OpContext;
using core::OpKind;
using core::OpResult;

Client::Client(Cluster &owner, core::ProtocolNode &node, std::uint32_t id)
    : owner(owner),
      node(node),
      clientId(id),
      gen(owner.config().workload, owner.config().seed, id + 1),
      rng(owner.config().seed ^ 0xc11e47, id + 1)
{
    const workload::Trace *trace = owner.config().trace;
    if (trace && !trace->empty()) {
        // Stagger replay start positions so clients do not move in
        // lockstep over the same keys.
        std::size_t stride =
            trace->size() / std::max(1u, owner.config().totalClients());
        cursor.emplace(*trace, stride * id);
    }
}

workload::Op
Client::nextOp()
{
    return cursor ? cursor->next() : gen.next();
}

bool
Client::transactional() const
{
    return owner.config().model.consistency ==
           core::Consistency::Transactional;
}

bool
Client::scoped() const
{
    return owner.config().model.persistency == core::Persistency::Scope;
}

std::uint64_t
Client::currentScopeId() const
{
    return (static_cast<std::uint64_t>(clientId) + 1) << 32 | scopeSeq;
}

void
Client::start()
{
    issueNext();
}

void
Client::restartAt(sim::Tick resume_at)
{
    ++generation;
    xactOps.clear();
    opsSinceScopePersist = 0;
    ++scopeSeq;
    std::uint32_t g = generation;
    owner.queue().schedule(resume_at, [this, g] {
        if (g == generation)
            issueNext();
    });
}

void
Client::issueNext()
{
    sim::Tick think = owner.config().clientThinkTime;
    if (think > 0) {
        std::uint32_t g = generation;
        owner.queue().scheduleIn(think, [this, g] {
            if (g == generation)
                issueNow();
        });
        return;
    }
    issueNow();
}

void
Client::issueNow()
{
    if (scoped() && opsSinceScopePersist >= owner.config().scopeLength) {
        issueScopePersist();
        return;
    }
    if (transactional()) {
        beginXactBatch();
    } else {
        issuePlainOp();
    }
}

void
Client::issuePlainOp()
{
    workload::Op op = nextOp();
    ++issued;
    OpContext ctx;
    ctx.scopeId = scoped() ? currentScopeId() : 0;
    std::uint32_t g = generation;
    OpCompletion cb = [this, g](const OpResult &r) {
        if (g != generation)
            return;
        owner.recordOp(r.kind, r.latency());
        ++opsSinceScopePersist;
        issueNext();
    };
    // Under partial replication the client routes each request to a
    // replica of the key (smart-client partition awareness).
    core::ProtocolNode &target = owner.nodeForKey(op.key, clientId);
    if (op.type == workload::OpType::Read)
        target.clientRead(op.key, ctx, std::move(cb));
    else
        target.clientWrite(op.key, ctx, std::move(cb));
}

void
Client::issueScopePersist()
{
    std::uint32_t g = generation;
    node.clientPersistScope(currentScopeId(), [this, g](const OpResult &r) {
        if (g != generation)
            return;
        owner.recordOp(r.kind, r.latency());
        opsSinceScopePersist = 0;
        ++scopeSeq;
        issueNext();
    });
}

// --------------------------------------------------------------------------
// Transactions
// --------------------------------------------------------------------------

void
Client::beginXactBatch()
{
    std::uint32_t len = owner.config().xactLength;
    xactOps.clear();
    for (std::uint32_t i = 0; i < len; ++i)
        xactOps.push_back(nextOp());
    xactFirstIssue.assign(len, 0);
    xactOpDone.assign(len, 0);
    startXactAttempt();
}

void
Client::startXactAttempt()
{
    ++xactSeq;
    curXactId = (static_cast<std::uint64_t>(clientId) + 1) << 32 | xactSeq;
    std::uint32_t g = generation;
    node.clientInitXact(curXactId, [this, g](const OpResult &r) {
        if (g != generation)
            return;
        if (r.aborted) {
            retryXactAfterBackoff();
            return;
        }
        issueXactOp(0);
    });
}

void
Client::issueXactOp(std::size_t index)
{
    if (index >= xactOps.size()) {
        finishXactAttempt();
        return;
    }
    const workload::Op &op = xactOps[index];
    if (xactFirstIssue[index] == 0) {
        xactFirstIssue[index] = owner.now();
        ++issued;
    }
    OpContext ctx;
    ctx.xactId = curXactId;
    ctx.scopeId = scoped() ? currentScopeId() : 0;
    std::uint32_t g = generation;
    OpCompletion cb = [this, g, index](const OpResult &r) {
        if (g != generation)
            return;
        if (r.aborted) {
            node.clientEndXact(curXactId, false,
                               [this, g](const OpResult &) {
                if (g == generation)
                    retryXactAfterBackoff();
            });
            return;
        }
        xactOpDone[index] = r.completedAt;
        issueXactOp(index + 1);
    };
    if (op.type == workload::OpType::Read)
        node.clientRead(op.key, ctx, std::move(cb));
    else
        node.clientWrite(op.key, ctx, std::move(cb));
}

void
Client::finishXactAttempt()
{
    std::uint32_t g = generation;
    node.clientEndXact(curXactId, true, [this, g](const OpResult &r) {
        if (g != generation)
            return;
        if (r.aborted) {
            retryXactAfterBackoff();
            return;
        }
        xactRetries = 0;
        commitRecorded(r.completedAt);
        opsSinceScopePersist +=
            static_cast<std::uint32_t>(xactOps.size());
        issueNext();
    });
}

void
Client::commitRecorded(sim::Tick end_completed)
{
    // Reads count with their own response times; writes become truly
    // visible at the transaction end (the VP of Transactional
    // consistency), so their latency extends to ENDX completion. Both
    // span every retry of the transaction.
    for (std::size_t i = 0; i < xactOps.size(); ++i) {
        if (xactOps[i].type == workload::OpType::Read) {
            owner.recordOp(OpKind::Read,
                           xactOpDone[i] - xactFirstIssue[i]);
        } else {
            owner.recordOp(OpKind::Write,
                           end_completed - xactFirstIssue[i]);
        }
    }
}

void
Client::retryXactAfterBackoff()
{
    // Exponential backoff breaks retry livelock on hot zipfian keys:
    // contended clients drain out of the active-transaction set until
    // the conflict probability is sustainable.
    if (xactRetries < 6)
        ++xactRetries;
    sim::Tick window = owner.config().xactRetryBackoff << xactRetries;
    sim::Tick delay =
        window == 0
            ? 0
            : rng.nextU64() % window;
    std::uint32_t g = generation;
    owner.queue().scheduleIn(delay, [this, g] {
        if (g == generation)
            startXactAttempt();
    });
}

} // namespace ddp::cluster
