#include "cluster/cluster.hh"

#include <algorithm>
#include <cassert>

namespace ddp::cluster {

Cluster::Cluster(const ClusterConfig &config)
    : cfg(config), rmap(config.numServers, config.replicationFactor)
{
    assert(cfg.numServers >= 2 && "need at least one follower");

    if (cfg.faults.any()) {
        // A lossy wire needs the reliable-delivery layer or the
        // protocols would deadlock on the first dropped VAL.
        cfg.network.reliability.enabled = true;
        faultPlan = std::make_unique<net::FaultPlan>(
            cfg.faults, cfg.numServers, cfg.seed);
    }

    net = std::make_unique<net::Fabric>(eq, cfg.network, cfg.numServers);
    if (faultPlan)
        net->setFaultPlan(faultPlan.get());

    core::NodeParams np = cfg.node;
    np.model = cfg.model;
    np.numNodes = cfg.numServers;
    np.replicationFactor = cfg.replicationFactor;
    np.keyCount = cfg.keyCount;

    for (std::uint32_t n = 0; n < cfg.numServers; ++n) {
        nodes.push_back(std::make_unique<core::ProtocolNode>(
            eq, *net, n, np, ctr, &xactTable));
    }

    for (std::uint32_t c = 0; c < cfg.totalClients(); ++c) {
        clients.push_back(std::make_unique<Client>(
            *this, *nodes[c % cfg.numServers], c));
    }
}

Cluster::~Cluster() = default;

core::ProtocolNode &
Cluster::nodeForKey(net::KeyId key, std::uint32_t client_id)
{
    if (rmap.full())
        return *nodes[client_id % cfg.numServers];
    return *nodes[rmap.coordinatorFor(key, client_id)];
}

void
Cluster::setChecker(core::PropertyChecker *c)
{
    checker = c;
    for (auto &n : nodes)
        n->setSink(c);
}

void
Cluster::setTracer(net::MessageTracer *t)
{
    tracerPtr = t;
    net->setTracer(t);
}

void
Cluster::recordOp(core::OpKind kind, sim::Tick latency)
{
    if (timeline &&
        (kind == core::OpKind::Read || kind == core::OpKind::Write)) {
        timeline->record(eq.now());
    }
    if (!recording)
        return;
    switch (kind) {
      case core::OpKind::Read:
        readLat.record(latency);
        allLat.record(latency);
        break;
      case core::OpKind::Write:
        writeLat.record(latency);
        allLat.record(latency);
        break;
      default:
        // InitXact/EndXact/PersistScope pace the clients but are not
        // client requests in the paper's throughput accounting.
        break;
    }
}

void
Cluster::scheduleCrash(sim::Tick at)
{
    eq.schedule(at, [this] { crashNow(); });
}

void
Cluster::schedulePartialCrash(sim::Tick at,
                              std::vector<net::NodeId> victims)
{
    eq.schedule(at, [this, victims = std::move(victims)] {
        crashPartial(victims);
    });
}

void
Cluster::crashPartial(const std::vector<net::NodeId> &victims)
{
    std::vector<bool> crashed(nodes.size(), false);
    for (net::NodeId v : victims) {
        assert(v < nodes.size());
        crashed[v] = true;
    }

    // Victims lose volatile state; survivors abandon in-flight
    // exchanges (their rounds reference peers that just died).
    for (std::size_t n = 0; n < nodes.size(); ++n) {
        if (crashed[n])
            nodes[n]->crashVolatile();
        else
            nodes[n]->abortInFlight();
    }
    xactTable.clear();

    // Victims rebuild each key from the freshest surviving copy: a
    // surviving replica's volatile version, or failing that the best
    // NVM copy among all replicas.
    RecoveryStats rs;
    for (net::KeyId key = 0; key < cfg.keyCount; ++key) {
        net::Version best{};
        for (std::uint32_t i = 0; i < rmap.factor(); ++i) {
            net::NodeId rep = rmap.replica(key, i);
            net::Version v = crashed[rep]
                                 ? nodes[rep]->persistedVersion(key)
                                 : nodes[rep]->visibleVersion(key);
            if (best < v)
                best = v;
        }
        if (best.number == 0)
            continue;
        ++rs.keysInstalled;
        // Recovery reconciles the whole replica set: victims rebuild
        // their state and survivors adopt versions whose VAL died with
        // the crash (anti-entropy), so all replicas agree afterwards.
        for (std::uint32_t i = 0; i < rmap.factor(); ++i)
            nodes[rmap.replica(key, i)]->installRecovered(key, best);
    }
    // State transfer: victims stream their share of keys from peers.
    rs.recoveryTime =
        cfg.network.roundTrip +
        (rs.keysInstalled / std::max<std::size_t>(1, nodes.size())) *
            cfg.network.serializationTicks(64);

    if (checker) {
        rs.lostAckedWriteKeys = checker->auditLostWrites(
            [this](net::KeyId key) {
                net::Version best{};
                for (std::uint32_t i = 0; i < rmap.factor(); ++i) {
                    net::Version v = nodes[rmap.replica(key, i)]
                                         ->visibleVersion(key);
                    if (best < v)
                        best = v;
                }
                return best;
            });
    }

    recoveryLog.push_back(rs);
    lostKeysTotal += rs.lostAckedWriteKeys;
    sim::Tick resume = eq.now() + rs.recoveryTime;
    for (auto &c : clients)
        c->restartAt(resume);
}

void
Cluster::crashNow()
{
    if (cfg.recovery == RecoveryPolicy::SimulatedVoting) {
        // Lose volatile state everywhere, then run the voting recovery
        // as a real message protocol; clients resume when it reports.
        for (auto &n : nodes)
            n->crashVolatile();
        xactTable.clear();
        nodes[0]->recoveryAgent().startCoordinator(
            cfg.keyCount, cfg.recoveryBatch,
            [this](const core::RecoveryReport &report) {
                RecoveryStats rs;
                rs.keysInstalled = report.keysInstalled;
                rs.divergentKeys = report.divergentKeys;
                rs.recoveryTime = report.duration();
                rs.timeouts = report.timeouts;
                rs.retries = report.retries;
                rs.quorumBatches = report.quorumBatches;
                rs.quorumFailures = report.quorumFailures;
                rs.unreachable = report.unreachable;
                if (checker) {
                    rs.lostAckedWriteKeys = checker->auditLostWrites(
                        [this](net::KeyId key) {
                            return nodes[rmap.home(key)]->visibleVersion(
                                key);
                        });
                }
                recoveryLog.push_back(rs);
                lostKeysTotal += rs.lostAckedWriteKeys;
                for (auto &c : clients)
                    c->restartAt(eq.now());
            });
        return;
    }

    RecoveryStats rs = recoverAll();
    recoveryLog.push_back(rs);
    lostKeysTotal += rs.lostAckedWriteKeys;
    xactTable.clear();
    sim::Tick resume = eq.now() + rs.recoveryTime;
    for (auto &c : clients)
        c->restartAt(resume);
}

RecoveryStats
Cluster::recoverAll()
{
    RecoveryStats rs;
    for (auto &n : nodes)
        n->crashVolatile();

    if (cfg.recovery == RecoveryPolicy::Voting) {
        std::uint64_t divergent = 0;
        std::uint64_t installed = 0;
        for (net::KeyId key = 0; key < cfg.keyCount; ++key) {
            // Only the key's replicas vote and receive the winner.
            net::Version best{};
            bool differ = false;
            bool first = true;
            net::Version first_seen{};
            for (std::uint32_t i = 0; i < rmap.factor(); ++i) {
                net::Version v =
                    nodes[rmap.replica(key, i)]->persistedVersion(key);
                if (first) {
                    first_seen = v;
                    first = false;
                } else if (v != first_seen) {
                    differ = true;
                }
                if (best < v)
                    best = v;
            }
            if (differ)
                ++divergent;
            if (best.number > 0) {
                ++installed;
                for (std::uint32_t i = 0; i < rmap.factor(); ++i)
                    nodes[rmap.replica(key, i)]->installRecovered(key,
                                                                  best);
            }
        }
        rs.divergentKeys = divergent;
        rs.keysInstalled = installed;
        // The vote exchanges per-key version summaries in batches of
        // 4096 per round trip, then ships divergent lines.
        std::uint64_t rounds = cfg.keyCount / 4096 + 1;
        rs.recoveryTime =
            rounds * cfg.network.roundTrip +
            divergent * cfg.network.serializationTicks(64);
    } else {
        // Local-only: every node replays its own NVM; cost is a scan.
        for (net::KeyId key = 0; key < cfg.keyCount; ++key) {
            if (nodes[rmap.home(key)]->persistedVersion(key).number > 0)
                ++rs.keysInstalled;
        }
        rs.recoveryTime =
            cfg.keyCount * cfg.node.nvmParams.readLatency /
            (cfg.node.nvmParams.channels *
             cfg.node.nvmParams.banksPerChannel);
    }

    if (checker) {
        rs.lostAckedWriteKeys = checker->auditLostWrites(
            [this](net::KeyId key) {
                // The key's home replica holds the recovered version.
                return nodes[rmap.home(key)]->visibleVersion(key);
            });
        // Post-recovery reads start from a clean slate of completed
        // writes; pre-crash completions that survived are re-learned,
        // and those that were lost should not flag every future read.
    }
    return rs;
}

RunResult
Cluster::run()
{
    assert(!ran && "a Cluster can only run once");
    ran = true;

    for (auto &c : clients) {
        Client *cp = c.get();
        eq.schedule(0, [cp] { cp->start(); });
    }

    eq.runUntil(cfg.warmup);

    auto ctr_snap = ctr.snapshot();
    std::uint64_t msg_snap = net->totalMessages();
    std::uint64_t bytes_snap = net->totalBytes();
    readLat.clear();
    writeLat.clear();
    allLat.clear();
    recording = true;

    eq.runUntil(cfg.warmup + cfg.measure);
    recording = false;

    RunResult res;
    res.reads = readLat.count();
    res.writes = writeLat.count();
    res.throughput =
        cfg.measure == 0
            ? 0.0
            : static_cast<double>(res.reads + res.writes) /
                  sim::ticksToSeconds(cfg.measure);
    res.meanReadNs = readLat.mean() / sim::kNanosecond;
    res.meanWriteNs = writeLat.mean() / sim::kNanosecond;
    res.meanNs = allLat.mean() / sim::kNanosecond;
    res.p95ReadNs =
        static_cast<double>(readLat.p95()) / sim::kNanosecond;
    res.p95WriteNs =
        static_cast<double>(writeLat.p95()) / sim::kNanosecond;

    res.counters = ctr.diff(ctr_snap);
    res.messages = net->totalMessages() - msg_snap;
    res.networkBytes = net->totalBytes() - bytes_snap;
    res.persistsIssued = res.counters["persists_issued"];
    res.readsStalledVisibility =
        res.counters["reads_stalled_visibility"];
    res.readsStalledPersist = res.counters["reads_stalled_persist"];
    res.xactStarted = res.counters["xact_started"];
    res.xactCommitted = res.counters["xact_committed"];
    res.xactAborted = res.counters["xact_aborted"];
    res.xactConflicts = res.counters["xact_conflicts"];

    for (auto &n : nodes) {
        if (n->causalBufferPeak() > res.causalBufferPeak)
            res.causalBufferPeak = n->causalBufferPeak();
    }

    // Fault / reliability accounting. Whole-run totals, not
    // measurement-window diffs: a chaos report wants every injected
    // fault, including warmup ones.
    res.netDropped = net->droppedMessages();
    res.netRetransmits = net->retransmits();
    res.netRtoTimeouts = net->rtoTimeouts();
    res.netGiveUps = net->retransmitGiveUps();
    res.netAcks = net->netAcksSent();
    res.netDuplicateArrivals = net->duplicateArrivals();
    res.netOutOfOrderArrivals = net->outOfOrderArrivals();
    if (faultPlan) {
        res.netDuplicated = faultPlan->duplicatesInjected();
        res.netDelayed = faultPlan->delaysInjected();
        res.netReordered = faultPlan->reordersInjected();
        res.netPartitionDrops = faultPlan->partitionDrops();
    }
    if (tracerPtr)
        res.tracerDropped = tracerPtr->droppedEntries();
    res.counters["net_dropped"] = res.netDropped;
    res.counters["net_retransmits"] = res.netRetransmits;
    res.counters["net_rto_timeouts"] = res.netRtoTimeouts;
    res.counters["net_give_ups"] = res.netGiveUps;

    for (const RecoveryStats &rs : recoveryLog) {
        res.recoveryTimeouts += rs.timeouts;
        res.recoveryRetries += rs.retries;
        res.recoveryQuorumBatches += rs.quorumBatches;
        res.recoveryQuorumFailures += rs.quorumFailures;
        for (net::NodeId n : rs.unreachable) {
            auto &u = res.unreachableNodes;
            if (std::find(u.begin(), u.end(), n) == u.end())
                u.push_back(n);
        }
    }
    std::sort(res.unreachableNodes.begin(), res.unreachableNodes.end());

    if (checker) {
        res.monotonicViolations = checker->monotonicViolations();
        res.staleReads = checker->staleReads();
        res.lostAckedWriteKeys = lostKeysTotal;
    }
    return res;
}

} // namespace ddp::cluster
