#include "cluster/cluster.hh"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <string>

namespace ddp::cluster {

Cluster::Cluster(const ClusterConfig &config)
    : cfg(config), rmap(config.numServers, config.replicationFactor)
{
    assert(cfg.numServers >= 2 && "need at least one follower");

    if (cfg.faults.any()) {
        // A lossy wire needs the reliable-delivery layer or the
        // protocols would deadlock on the first dropped VAL.
        cfg.network.reliability.enabled = true;
        faultPlan = std::make_unique<net::FaultPlan>(
            cfg.faults, cfg.numServers, cfg.seed);
    }

    net = std::make_unique<net::Fabric>(eq, cfg.network, cfg.numServers);
    if (faultPlan)
        net->setFaultPlan(faultPlan.get());

    core::NodeParams np = cfg.node;
    np.model = cfg.model;
    np.numNodes = cfg.numServers;
    np.replicationFactor = cfg.replicationFactor;
    np.keyCount = cfg.keyCount;

    for (std::uint32_t n = 0; n < cfg.numServers; ++n) {
        nodes.push_back(std::make_unique<core::ProtocolNode>(
            eq, *net, n, np, ctr, &xactTable));
    }

    for (std::uint32_t c = 0; c < cfg.totalClients(); ++c) {
        clients.push_back(std::make_unique<Client>(
            *this, *nodes[c % cfg.numServers], c));
    }

    if (cfg.timelineBucket > 0) {
        ownTimeline =
            std::make_unique<stats::RateSeries>(cfg.timelineBucket);
        timeline = ownTimeline.get();
    }
}

Cluster::~Cluster() = default;

core::ProtocolNode &
Cluster::nodeForKey(net::KeyId key, std::uint32_t client_id)
{
    if (rmap.full())
        return *nodes[client_id % cfg.numServers];
    return *nodes[rmap.coordinatorFor(key, client_id)];
}

void
Cluster::setChecker(core::PropertyChecker *c)
{
    checker = c;
    for (auto &n : nodes)
        n->setSink(c);
}

void
Cluster::setTracer(net::MessageTracer *t)
{
    tracerPtr = t;
    net->setTracer(t);
}

void
Cluster::setTrace(sim::TraceRecorder *t)
{
    trace = t;
    net->setTrace(t);
    for (std::uint32_t n = 0; n < nodes.size(); ++n) {
        nodes[n]->setTrace(t, n);
        nodes[n]->nvm().setTrace(t, n, 2);
        nodes[n]->dram().setTrace(t, n, 3);
    }
    if (!t)
        return;
    for (std::uint32_t n = 0; n < nodes.size(); ++n) {
        t->processName(n, "node" + std::to_string(n));
        t->threadName(n, 0, "requests");
        t->threadName(n, 1, "nic");
        t->threadName(n, 2, "nvm");
        t->threadName(n, 3, "dram");
    }
    std::uint32_t cpid = static_cast<std::uint32_t>(nodes.size());
    t->processName(cpid, "cluster");
    t->threadName(cpid, 0, "events");
}

void
Cluster::recordOp(core::OpKind kind, sim::Tick latency,
                  const sim::PhaseAccum &phases)
{
    if (timeline &&
        (kind == core::OpKind::Read || kind == core::OpKind::Write)) {
        timeline->record(eq.now());
    }
    if (recoveringCount > 0 &&
        (kind == core::OpKind::Read || kind == core::OpKind::Write))
        ++servedDuringRecoveryCount;
    if (!recording)
        return;
    switch (kind) {
      case core::OpKind::Read:
      case core::OpKind::Write:
        assert(phases.sum() == latency &&
               "request phase spans must sum to end-to-end latency");
        if (kind == core::OpKind::Read)
            readLat.record(latency);
        else
            writeLat.record(latency);
        allLat.record(latency);
        for (std::size_t p = 0; p < sim::kPhaseCount; ++p)
            phaseLat[p].record(phases.ticks[p]);
        break;
      default:
        // InitXact/EndXact/PersistScope pace the clients but are not
        // client requests in the paper's throughput accounting.
        break;
    }
}

void
Cluster::scheduleCrash(sim::Tick at)
{
    eq.schedule(at, [this] { crashNow(); });
}

void
Cluster::schedulePartialCrash(sim::Tick at,
                              std::vector<net::NodeId> victims)
{
    eq.schedule(at, [this, victims = std::move(victims)] {
        crashPartial(victims);
    });
}

void
Cluster::schedulePartialCrash(sim::Tick at,
                              std::vector<net::NodeId> victims,
                              sim::Tick restart_after)
{
    eq.schedule(at, [this, victims = std::move(victims), restart_after] {
        crashPartialStaged(victims, restart_after);
    });
}

void
Cluster::auditEpoch(RecoveryStats &rs,
                    const std::function<net::Version(net::KeyId)>
                        &recovered_version)
{
    if (!checker)
        return;
    core::PropertyChecker::DurabilityAudit audit =
        checker->auditDurability(cfg.model, recovered_version);
    rs.lostAckedWriteKeys = audit.lostAckedKeys;
    rs.lostAckedWrites = audit.lostAckedWrites;
    lostKeysTotal += rs.lostAckedWriteKeys;
    lostWritesTotal += rs.lostAckedWrites;
}

void
Cluster::crashPartial(const std::vector<net::NodeId> &victims)
{
    if (trace)
        trace->instant(static_cast<std::uint32_t>(nodes.size()), 0,
                       "partial_crash", eq.now(), "victims",
                       victims.size());
    std::vector<bool> crashed(nodes.size(), false);
    for (net::NodeId v : victims) {
        assert(v < nodes.size());
        crashed[v] = true;
    }

    std::uint64_t torn_before = ctr.get("torn_persists_detected");
    if (firstCrashAt == 0)
        firstCrashAt = eq.now();

    // Victims lose volatile state; survivors abandon in-flight
    // exchanges (their rounds reference peers that just died).
    for (std::size_t n = 0; n < nodes.size(); ++n) {
        if (crashed[n])
            nodes[n]->crashVolatile();
        else
            nodes[n]->abortInFlight();
    }
    xactTable.clear();

    // Victims rebuild each key from the freshest surviving copy: a
    // surviving replica's volatile version, or failing that the best
    // NVM copy among all replicas.
    RecoveryStats rs;
    for (net::KeyId key = 0; key < cfg.keyCount; ++key) {
        net::Version best{};
        for (std::uint32_t i = 0; i < rmap.factor(); ++i) {
            net::NodeId rep = rmap.replica(key, i);
            net::Version v = crashed[rep]
                                 ? nodes[rep]->persistedVersion(key)
                                 : nodes[rep]->visibleVersion(key);
            if (best < v)
                best = v;
        }
        if (best.number == 0)
            continue;
        ++rs.keysInstalled;
        // Recovery reconciles the whole replica set: victims rebuild
        // their state and survivors adopt versions whose VAL died with
        // the crash (anti-entropy), so all replicas agree afterwards.
        for (std::uint32_t i = 0; i < rmap.factor(); ++i)
            nodes[rmap.replica(key, i)]->installRecovered(key, best);
    }
    // State transfer: victims stream their share of keys from peers.
    rs.recoveryTime =
        cfg.network.roundTrip +
        (rs.keysInstalled / std::max<std::size_t>(1, nodes.size())) *
            cfg.network.serializationTicks(64);
    rs.tornDetected = ctr.get("torn_persists_detected") - torn_before;

    auditEpoch(rs, [this](net::KeyId key) {
        net::Version best{};
        for (std::uint32_t i = 0; i < rmap.factor(); ++i) {
            net::Version v =
                nodes[rmap.replica(key, i)]->visibleVersion(key);
            if (best < v)
                best = v;
        }
        return best;
    });

    recoveryLog.push_back(rs);
    sim::Tick resume = eq.now() + rs.recoveryTime;
    for (auto &c : clients)
        c->restartAt(resume);
}

void
Cluster::crashPartialStaged(const std::vector<net::NodeId> &victims,
                            sim::Tick restart_after)
{
    assert(cfg.clientRequestTimeout > 0 &&
           "staged partial crash needs client request timeouts: victims' "
           "clients would otherwise hang for the whole downtime");
    if (trace)
        trace->instant(static_cast<std::uint32_t>(nodes.size()), 0,
                       "partial_crash", eq.now(), "victims",
                       victims.size());
    std::vector<bool> crashed(nodes.size(), false);
    for (net::NodeId v : victims) {
        assert(v < nodes.size());
        crashed[v] = true;
    }

    std::uint64_t torn_before = ctr.get("torn_persists_detected");
    if (firstCrashAt == 0)
        firstCrashAt = eq.now();

    // Victims go dark: volatile state lost, NVM recovered in place
    // (torn persists rolled back), and every message to or from them
    // swallowed until restart. Survivors abandon in-flight exchanges
    // and stop waiting for the victims' acknowledgments, so the live
    // replica set keeps completing writes through the downtime.
    // Instant policy defers the NVM scan instead: the whole key space
    // goes cold and recovery happens per key on first touch after
    // re-join.
    bool instant = cfg.recovery == RecoveryPolicy::Instant;
    for (std::size_t n = 0; n < nodes.size(); ++n) {
        if (crashed[n]) {
            if (instant)
                nodes[n]->crashVolatileInstant();
            else
                nodes[n]->crashVolatile();
            nodes[n]->setDown(true);
        } else {
            nodes[n]->abortInFlight();
        }
    }
    for (auto &node : nodes) {
        for (net::NodeId v : victims)
            node->setPeerDown(v, true);
    }
    xactTable.clear();

    // Survivor view reconciliation: the epoch bump abandoned in-flight
    // fire-and-forget VAL/UPD propagation between survivors — traffic
    // a real network still delivers when an unrelated node dies.
    // Align every survivor to the freshest surviving visible version
    // (volatile only, durability untouched), as a real view change
    // does; otherwise a survivor could serve a version older than an
    // acknowledged write for the rest of the run.
    for (net::KeyId key = 0; key < cfg.keyCount; ++key) {
        net::Version maxv{};
        for (std::uint32_t i = 0; i < rmap.factor(); ++i) {
            net::NodeId rep = rmap.replica(key, i);
            if (crashed[rep])
                continue;
            net::Version v = nodes[rep]->visibleVersion(key);
            if (maxv < v)
                maxv = v;
        }
        if (maxv.number == 0)
            continue;
        for (std::uint32_t i = 0; i < rmap.factor(); ++i) {
            net::NodeId rep = rmap.replica(key, i);
            if (!crashed[rep])
                nodes[rep]->adoptVisible(key, maxv);
        }
    }

    // Audit the crash epoch. An acked write survives if a surviving
    // replica still serves it or a victim holds it durably — the
    // victim's NVM comes back at restart, so durable-but-dark copies
    // are unavailable, not lost.
    RecoveryStats rs;
    rs.tornDetected = ctr.get("torn_persists_detected") - torn_before;
    auditEpoch(rs, [this, &crashed](net::KeyId key) {
        net::Version best{};
        for (std::uint32_t i = 0; i < rmap.factor(); ++i) {
            net::NodeId rep = rmap.replica(key, i);
            net::Version v = crashed[rep]
                                 ? nodes[rep]->persistedVersion(key)
                                 : nodes[rep]->visibleVersion(key);
            if (best < v)
                best = v;
        }
        return best;
    });
    recoveryLog.push_back(rs);

    // Clients are deliberately NOT restarted: survivors' clients keep
    // running, and the victims' clients detect the dead coordinator by
    // request timeout and fail over on their own.
    //
    // Downtime model: a staged node must finish its bulk state
    // transfer before re-joining, so restart fires after an a-priori
    // transfer estimate on top of the outage. Instant recovery only
    // builds a cheap index over the persist image before re-joining;
    // its extra downtime is that scan alone. The gap between the two
    // is exactly what the downtime-vs-instant benchmark measures.
    if (instant) {
        eq.schedule(eq.now() + restart_after + instantScanTicks(),
                    [this, victims] { restartVictimsInstant(victims); });
    } else {
        std::uint32_t survivors =
            static_cast<std::uint32_t>(nodes.size()) -
            static_cast<std::uint32_t>(victims.size());
        sim::Tick transfer =
            cfg.network.roundTrip +
            (cfg.keyCount / std::max(1u, survivors)) *
                cfg.network.serializationTicks(
                    64 * std::max(1u, cfg.node.valueLines));
        eq.schedule(eq.now() + restart_after + transfer,
                    [this, victims] { restartVictims(victims); });
    }
}

void
Cluster::restartVictims(const std::vector<net::NodeId> &victims)
{
    if (trace)
        trace->instant(static_cast<std::uint32_t>(nodes.size()), 0,
                       "restart", eq.now(), "victims", victims.size());
    std::vector<bool> returning(nodes.size(), false);
    for (net::NodeId v : victims)
        returning[v] = true;

    for (net::NodeId v : victims)
        nodes[v]->setDown(false);
    for (auto &node : nodes) {
        for (net::NodeId v : victims)
            node->setPeerDown(v, false);
    }

    // State transfer: each returning node pulls the freshest copy of
    // every key it replicates — a survivor's visible version or its
    // own recovered NVM — and installs it. Survivors are untouched:
    // re-join must not make anything durable that was not already.
    RecoveryStats rs;
    rs.restart = true;
    std::uint64_t diverged = 0;
    for (net::KeyId key = 0; key < cfg.keyCount; ++key) {
        net::Version best{};
        bool victim_replica = false;
        for (std::uint32_t i = 0; i < rmap.factor(); ++i) {
            net::NodeId rep = rmap.replica(key, i);
            if (returning[rep])
                victim_replica = true;
            net::Version v = returning[rep]
                                 ? nodes[rep]->persistedVersion(key)
                                 : nodes[rep]->visibleVersion(key);
            if (best < v)
                best = v;
        }
        if (!victim_replica || best.number == 0)
            continue;
        ++rs.keysInstalled;
        for (std::uint32_t i = 0; i < rmap.factor(); ++i) {
            net::NodeId rep = rmap.replica(key, i);
            if (returning[rep])
                nodes[rep]->installRecovered(key, best);
        }
        // Convergence audit: after the transfer a returning replica
        // must serve at least what the survivors serve.
        for (std::uint32_t i = 0; i < rmap.factor(); ++i) {
            net::NodeId rep = rmap.replica(key, i);
            if (returning[rep] && nodes[rep]->visibleVersion(key) < best)
                ++diverged;
        }
    }
    rs.convergenceFailures = diverged;
    convergenceFailTotal += diverged;

    // Causal progress transfers with the data: without it, UPDs that
    // depend on writes from the downtime window would buffer forever
    // at the returning node.
    if (cfg.model.consistency == core::Consistency::Causal) {
        core::VectorClock merged(nodes.size());
        for (std::size_t n = 0; n < nodes.size(); ++n) {
            if (!returning[n])
                merged.mergeFrom(nodes[n]->appliedClock());
        }
        for (net::NodeId v : victims)
            nodes[v]->adoptCausalProgress(merged);
    }

    std::uint32_t survivors = static_cast<std::uint32_t>(nodes.size()) -
                              static_cast<std::uint32_t>(victims.size());
    rs.recoveryTime =
        cfg.network.roundTrip +
        (rs.keysInstalled / std::max(1u, survivors)) *
            cfg.network.serializationTicks(
                64 * std::max(1u, cfg.node.valueLines));
    recoveryLog.push_back(rs);
    nodeRestartCount += victims.size();
    if (serviceResumeAt == 0)
        serviceResumeAt = eq.now();

    // Clients route back to their home coordinators.
    for (auto &c : clients)
        c->failback();
}

sim::Tick
Cluster::instantScanTicks() const
{
    // Building the recovery index is a sequential sweep over per-key
    // commit records (one cache line each), not a value replay —
    // modeled at 4 keys per nanosecond of NVM metadata bandwidth.
    return cfg.keyCount * sim::kNanosecond / 4;
}

void
Cluster::restartVictimsInstant(const std::vector<net::NodeId> &victims)
{
    if (trace)
        trace->instant(static_cast<std::uint32_t>(nodes.size()), 0,
                       "restart_instant", eq.now(), "victims",
                       victims.size());
    for (net::NodeId v : victims)
        nodes[v]->setDown(false);
    for (auto &node : nodes) {
        for (net::NodeId v : victims)
            node->setPeerDown(v, false);
    }

    // Causal progress transfers at re-join (clock metadata only — a
    // few words per node, not key data): without it, UPDs depending on
    // downtime-window writes would buffer forever at the victim.
    if (cfg.model.consistency == core::Consistency::Causal) {
        std::vector<bool> returning(nodes.size(), false);
        for (net::NodeId v : victims)
            returning[v] = true;
        core::VectorClock merged(nodes.size());
        for (std::size_t n = 0; n < nodes.size(); ++n) {
            if (!returning[n])
                merged.mergeFrom(nodes[n]->appliedClock());
        }
        for (net::NodeId v : victims)
            nodes[v]->adoptCausalProgress(merged);
    }

    RecoveryStats rs;
    rs.restart = true;
    rs.recoveryTime = instantScanTicks();
    recoveryLog.push_back(rs);
    nodeRestartCount += victims.size();
    recoveringCount += static_cast<std::uint32_t>(victims.size());
    if (serviceResumeAt == 0)
        serviceResumeAt = eq.now();

    // Each victim admits requests immediately; cold keys are faulted
    // in on demand against the freshest live copy, and the background
    // backfill drains the rest. No convergence audit is needed here:
    // fault-in max-merges the survivor version with the victim's own
    // recovered NVM copy, so a faulted key converges by construction.
    for (net::NodeId v : victims) {
        nodes[v]->beginInstantRecovery(
            [this, v](net::KeyId key) {
                net::Version best{};
                for (std::uint32_t i = 0; i < rmap.factor(); ++i) {
                    net::NodeId rep = rmap.replica(key, i);
                    if (rep == v)
                        continue;
                    net::Version vv = nodes[rep]->visibleVersion(key);
                    if (best < vv)
                        best = vv;
                }
                return best;
            },
            [this] {
                if (recoveringCount > 0)
                    --recoveringCount;
            });
    }

    // Clients route back to their home coordinators.
    for (auto &c : clients)
        c->failback();
}

void
Cluster::crashNow()
{
    if (trace)
        trace->instant(static_cast<std::uint32_t>(nodes.size()), 0,
                       "crash", eq.now());
    if (firstCrashAt == 0)
        firstCrashAt = eq.now();
    if (cfg.recovery == RecoveryPolicy::SimulatedVoting) {
        // Lose volatile state everywhere, then run the voting recovery
        // as a real message protocol; clients resume when it reports.
        for (auto &n : nodes)
            n->crashVolatile();
        xactTable.clear();
        nodes[0]->recoveryAgent().startCoordinator(
            cfg.keyCount, cfg.recoveryBatch,
            [this](const core::RecoveryReport &report) {
                RecoveryStats rs;
                rs.keysInstalled = report.keysInstalled;
                rs.divergentKeys = report.divergentKeys;
                rs.recoveryTime = report.duration();
                rs.timeouts = report.timeouts;
                rs.retries = report.retries;
                rs.quorumBatches = report.quorumBatches;
                rs.quorumFailures = report.quorumFailures;
                rs.unreachable = report.unreachable;
                auditEpoch(rs, [this](net::KeyId key) {
                    return nodes[rmap.home(key)]->visibleVersion(key);
                });
                recoveryLog.push_back(rs);
                for (auto &c : clients)
                    c->restartAt(eq.now());
            });
        return;
    }

    if (cfg.recovery == RecoveryPolicy::Instant) {
        // Whole cluster down: every node defers its NVM replay, marks
        // the key space cold, and re-admits after only the index scan.
        for (auto &n : nodes)
            n->crashVolatileInstant();
        xactTable.clear();

        RecoveryStats rs;
        rs.recoveryTime = instantScanTicks();
        // Audit against what recovery *will* serve: the freshest
        // intact NVM copy across the replica set (the cold-aware
        // persistedVersion), since fault-in max-merges exactly that.
        auditEpoch(rs, [this](net::KeyId key) {
            net::Version best{};
            for (std::uint32_t i = 0; i < rmap.factor(); ++i) {
                net::Version v =
                    nodes[rmap.replica(key, i)]->persistedVersion(key);
                if (best < v)
                    best = v;
            }
            return best;
        });
        recoveryLog.push_back(rs);

        recoveringCount += static_cast<std::uint32_t>(nodes.size());
        for (std::size_t n = 0; n < nodes.size(); ++n) {
            net::NodeId self = static_cast<net::NodeId>(n);
            nodes[n]->beginInstantRecovery(
                [this, self](net::KeyId key) {
                    net::Version best{};
                    for (std::uint32_t i = 0; i < rmap.factor(); ++i) {
                        net::NodeId rep = rmap.replica(key, i);
                        if (rep == self)
                            continue;
                        net::Version v =
                            nodes[rep]->persistedVersion(key);
                        if (best < v)
                            best = v;
                    }
                    return best;
                },
                [this] {
                    if (recoveringCount > 0)
                        --recoveringCount;
                });
        }

        sim::Tick resume = eq.now() + rs.recoveryTime;
        if (serviceResumeAt == 0)
            serviceResumeAt = resume;
        for (auto &c : clients)
            c->restartAt(resume);
        return;
    }

    RecoveryStats rs = recoverAll();
    recoveryLog.push_back(rs);
    xactTable.clear();
    sim::Tick resume = eq.now() + rs.recoveryTime;
    for (auto &c : clients)
        c->restartAt(resume);
}

RecoveryStats
Cluster::recoverAll()
{
    RecoveryStats rs;
    std::uint64_t torn_before = ctr.get("torn_persists_detected");
    for (auto &n : nodes)
        n->crashVolatile();
    rs.tornDetected = ctr.get("torn_persists_detected") - torn_before;

    if (cfg.recovery == RecoveryPolicy::Voting) {
        std::uint64_t divergent = 0;
        std::uint64_t installed = 0;
        for (net::KeyId key = 0; key < cfg.keyCount; ++key) {
            // Only the key's replicas vote and receive the winner.
            net::Version best{};
            bool differ = false;
            bool first = true;
            net::Version first_seen{};
            for (std::uint32_t i = 0; i < rmap.factor(); ++i) {
                net::Version v =
                    nodes[rmap.replica(key, i)]->persistedVersion(key);
                if (first) {
                    first_seen = v;
                    first = false;
                } else if (v != first_seen) {
                    differ = true;
                }
                if (best < v)
                    best = v;
            }
            if (differ)
                ++divergent;
            if (best.number > 0) {
                ++installed;
                for (std::uint32_t i = 0; i < rmap.factor(); ++i)
                    nodes[rmap.replica(key, i)]->installRecovered(key,
                                                                  best);
            }
        }
        rs.divergentKeys = divergent;
        rs.keysInstalled = installed;
        // The vote exchanges per-key version summaries in batches of
        // 4096 per round trip, then ships divergent lines.
        std::uint64_t rounds = cfg.keyCount / 4096 + 1;
        rs.recoveryTime =
            rounds * cfg.network.roundTrip +
            divergent * cfg.network.serializationTicks(64);
    } else {
        // Local-only: every node replays its own NVM; cost is a scan.
        for (net::KeyId key = 0; key < cfg.keyCount; ++key) {
            if (nodes[rmap.home(key)]->persistedVersion(key).number > 0)
                ++rs.keysInstalled;
        }
        rs.recoveryTime =
            cfg.keyCount * cfg.node.nvmParams.readLatency /
            (cfg.node.nvmParams.channels *
             cfg.node.nvmParams.banksPerChannel);
    }

    // The key's home replica holds the recovered version.
    auditEpoch(rs, [this](net::KeyId key) {
        return nodes[rmap.home(key)]->visibleVersion(key);
    });
    return rs;
}

RunResult
Cluster::run()
{
    assert(!ran && "a Cluster can only run once");
    ran = true;
    auto wall_start = std::chrono::steady_clock::now();

    for (auto &c : clients) {
        Client *cp = c.get();
        eq.schedule(0, [cp] { cp->start(); });
    }

    eq.runUntil(cfg.warmup);

    auto ctr_snap = ctr.snapshot();
    std::uint64_t msg_snap = net->totalMessages();
    std::uint64_t bytes_snap = net->totalBytes();
    readLat.clear();
    writeLat.clear();
    allLat.clear();
    for (auto &h : phaseLat)
        h.clear();
    recording = true;

    eq.runUntil(cfg.warmup + cfg.measure);
    recording = false;

    RunResult res;
    res.reads = readLat.count();
    res.writes = writeLat.count();
    res.throughput =
        cfg.measure == 0
            ? 0.0
            : static_cast<double>(res.reads + res.writes) /
                  sim::ticksToSeconds(cfg.measure);
    res.meanReadNs = readLat.mean() / sim::kNanosecond;
    res.meanWriteNs = writeLat.mean() / sim::kNanosecond;
    res.meanNs = allLat.mean() / sim::kNanosecond;
    res.p50ReadNs =
        static_cast<double>(readLat.p50()) / sim::kNanosecond;
    res.p95ReadNs =
        static_cast<double>(readLat.p95()) / sim::kNanosecond;
    res.p99ReadNs =
        static_cast<double>(readLat.p99()) / sim::kNanosecond;
    res.p50WriteNs =
        static_cast<double>(writeLat.p50()) / sim::kNanosecond;
    res.p95WriteNs =
        static_cast<double>(writeLat.p95()) / sim::kNanosecond;
    res.p99WriteNs =
        static_cast<double>(writeLat.p99()) / sim::kNanosecond;
    for (std::size_t p = 0; p < sim::kPhaseCount; ++p) {
        res.phaseBreakdown[p].meanNs =
            phaseLat[p].mean() / sim::kNanosecond;
        res.phaseBreakdown[p].p95Ns =
            static_cast<double>(phaseLat[p].p95()) / sim::kNanosecond;
    }
    res.eventsExecuted = eq.executedEvents();
    res.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();

    res.counters = ctr.diff(ctr_snap);
    res.messages = net->totalMessages() - msg_snap;
    res.networkBytes = net->totalBytes() - bytes_snap;
    res.persistsIssued = res.counters["persists_issued"];
    res.readsStalledVisibility =
        res.counters["reads_stalled_visibility"];
    res.readsStalledPersist = res.counters["reads_stalled_persist"];
    res.xactStarted = res.counters["xact_started"];
    res.xactCommitted = res.counters["xact_committed"];
    res.xactAborted = res.counters["xact_aborted"];
    res.xactConflicts = res.counters["xact_conflicts"];

    for (auto &n : nodes) {
        if (n->causalBufferPeak() > res.causalBufferPeak)
            res.causalBufferPeak = n->causalBufferPeak();
    }

    // Fault / reliability accounting. Whole-run totals, not
    // measurement-window diffs: a chaos report wants every injected
    // fault, including warmup ones.
    res.netDropped = net->droppedMessages();
    res.netRetransmits = net->retransmits();
    res.netRtoTimeouts = net->rtoTimeouts();
    res.netGiveUps = net->retransmitGiveUps();
    res.netAcks = net->netAcksSent();
    res.netDuplicateArrivals = net->duplicateArrivals();
    res.netOutOfOrderArrivals = net->outOfOrderArrivals();
    if (faultPlan) {
        res.netDuplicated = faultPlan->duplicatesInjected();
        res.netDelayed = faultPlan->delaysInjected();
        res.netReordered = faultPlan->reordersInjected();
        res.netPartitionDrops = faultPlan->partitionDrops();
    }
    if (tracerPtr)
        res.tracerDropped = tracerPtr->droppedEntries();
    res.counters["net_dropped"] = res.netDropped;
    res.counters["net_retransmits"] = res.netRetransmits;
    res.counters["net_rto_timeouts"] = res.netRtoTimeouts;
    res.counters["net_give_ups"] = res.netGiveUps;

    // Torn-persist / restart / failover accounting. Whole-run totals
    // for the same reason as the fault accounting above.
    res.tornPersistsDetected = ctr.get("torn_persists_detected");
    res.tornValuesInstalled = ctr.get("torn_values_installed");
    res.clientRetransmitsDeduped = ctr.get("client_retransmits_deduped");
    res.clientFailovers = clientFailoverCount;
    res.clientRetransmits = clientRetransmitCount;
    res.xactAbandoned = xactAbandonedCount;
    res.nodeRestarts = nodeRestartCount;
    res.convergenceFailures = convergenceFailTotal;

    for (const RecoveryStats &rs : recoveryLog) {
        res.recoveryTimeouts += rs.timeouts;
        res.recoveryRetries += rs.retries;
        res.recoveryQuorumBatches += rs.quorumBatches;
        res.recoveryQuorumFailures += rs.quorumFailures;
        for (net::NodeId n : rs.unreachable) {
            auto &u = res.unreachableNodes;
            if (std::find(u.begin(), u.end(), n) == u.end())
                u.push_back(n);
        }
    }
    std::sort(res.unreachableNodes.begin(), res.unreachableNodes.end());

    // Throughput-over-time series + recovery SLO (cluster-owned
    // timeline only; an externally attached series stays external).
    if (ownTimeline) {
        // Materialize every bucket of the run, so crash downtime and a
        // quiet tail appear as explicit zero samples.
        ownTimeline->extendTo(cfg.warmup + cfg.measure - 1);
        res.timelineBucket = cfg.timelineBucket;
        res.timelineRate.reserve(ownTimeline->buckets());
        for (std::size_t i = 0; i < ownTimeline->buckets(); ++i)
            res.timelineRate.push_back(ownTimeline->rateAt(i));
        if (firstCrashAt > 0) {
            // Pre-crash baseline: mean rate over buckets fully inside
            // [warmup, firstCrashAt) — warmup ramp and the crash
            // bucket itself are both excluded.
            double sum = 0.0;
            std::size_t n = 0;
            for (std::size_t i = 0; i < ownTimeline->buckets(); ++i) {
                if (ownTimeline->bucketStart(i) < cfg.warmup)
                    continue;
                if (ownTimeline->bucketStart(i) + cfg.timelineBucket >
                    firstCrashAt)
                    break;
                sum += ownTimeline->rateAt(i);
                ++n;
            }
            if (n > 0) {
                double slo =
                    cfg.recoverySloFrac * (sum / static_cast<double>(n));
                for (std::size_t i = 0; i < ownTimeline->buckets();
                     ++i) {
                    if (ownTimeline->bucketStart(i) <= firstCrashAt)
                        continue;
                    if (ownTimeline->rateAt(i) >= slo) {
                        res.recoveryTimeToSloUs =
                            static_cast<double>(
                                ownTimeline->bucketStart(i) -
                                firstCrashAt) /
                            static_cast<double>(sim::kMicrosecond);
                        break;
                    }
                }
            }
        }
    }
    res.servedDuringRecovery = servedDuringRecoveryCount;
    res.recoveryFaultIns = ctr.get("recovery_fault_ins");
    res.counters["recovery_fault_ins"] = res.recoveryFaultIns;

    if (checker) {
        res.monotonicViolations = checker->monotonicViolations();
        res.staleReads = checker->staleReads();
        res.lostAckedWriteKeys = lostKeysTotal;
        res.lostAckedWrites = lostWritesTotal;
        res.crashEpochs = checker->crashEpochs();
        res.tornReadsServed = checker->tornServed();
    }
    return res;
}

} // namespace ddp::cluster
