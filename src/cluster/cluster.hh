/**
 * @file
 * Cluster assembly and experiment runner.
 *
 * A Cluster builds the full simulated system from a ClusterConfig —
 * servers (protocol nodes with their cores, caches, DRAM/NVM, store
 * backends), the NIC fabric, and the closed-loop clients — and runs
 * warmup + measurement windows, returning the metrics the paper's
 * evaluation reports. It also provides full-system crash injection with
 * voting-based or local-only recovery for the durability experiments.
 */

#ifndef DDP_CLUSTER_CLUSTER_HH
#define DDP_CLUSTER_CLUSTER_HH

#include <array>
#include <memory>
#include <vector>

#include "cluster/client.hh"
#include "cluster/config.hh"
#include "cluster/run_result.hh"
#include "ddp/checkers.hh"
#include "ddp/protocol_node.hh"
#include "ddp/replication.hh"
#include "ddp/xact_table.hh"
#include "net/fabric.hh"
#include "sim/event_queue.hh"
#include "sim/phase.hh"
#include "sim/trace.hh"
#include "stats/counter.hh"
#include "stats/histogram.hh"
#include "stats/timeseries.hh"

namespace ddp::cluster {

/** A fully assembled simulated cluster. */
class Cluster
{
  public:
    explicit Cluster(const ClusterConfig &config);
    ~Cluster();

    Cluster(const Cluster &) = delete;
    Cluster &operator=(const Cluster &) = delete;

    /** Attach a property checker to every node's observation stream. */
    void setChecker(core::PropertyChecker *c);

    /**
     * Attach a message tracer to the fabric (nullptr detaches; not
     * owned). Its ring-buffer evictions are surfaced in
     * RunResult::tracerDropped.
     */
    void setTracer(net::MessageTracer *t);

    /**
     * Attach a timeline recorder (nullptr detaches; not owned): the
     * fabric, every node's protocol engine and memory devices, and the
     * cluster-level crash/recovery machinery emit Chrome-trace events
     * into it. Track layout: pid i = node i (tid 0 requests, 1 nic,
     * 2 nvm, 3 dram); pid numNodes() = cluster-level instants.
     */
    void setTrace(sim::TraceRecorder *t);

    /**
     * Attach a completion-rate timeline: every client request
     * completion (including warmup) is recorded into @p series,
     * enabling throughput-over-time plots such as the dip and ramp
     * around an injected crash.
     */
    void setTimeline(stats::RateSeries *series) { timeline = series; }

    /**
     * Inject a full-system crash at absolute simulated time @p at
     * (must be before the run ends). Volatile state is lost, recovery
     * runs per the configured policy, and clients resume afterwards.
     */
    void scheduleCrash(sim::Tick at);

    /**
     * Inject a partial crash: the listed @p victims lose their volatile
     * state and rebuild each key from the freshest surviving copy
     * (surviving replicas' volatile state or any replica's NVM);
     * survivors only abandon in-flight protocol exchanges, as their
     * timeouts would in a real deployment.
     */
    void schedulePartialCrash(sim::Tick at,
                              std::vector<net::NodeId> victims);

    /**
     * Staged partial crash with downtime: at @p at the @p victims lose
     * volatile state and go dark (messages to and from them are
     * swallowed, client requests at them hang); survivors keep serving
     * whatever the live replica set allows. After @p restart_after the
     * victims come back up, recover their keys from the freshest
     * surviving copy (own NVM vs. survivor volatile state), and
     * re-join. Requires cfg.clientRequestTimeout > 0 — only client
     * timeout + failover keeps victims' clients making progress during
     * the downtime.
     */
    void schedulePartialCrash(sim::Tick at,
                              std::vector<net::NodeId> victims,
                              sim::Tick restart_after);

    /** Run warmup + measurement; may be called once per Cluster. */
    RunResult run();

    // --- Introspection (tests, benches) -----------------------------------
    const ClusterConfig &config() const { return cfg; }
    sim::EventQueue &queue() { return eq; }
    net::Fabric &fabric() { return *net; }
    core::ProtocolNode &node(std::size_t i) { return *nodes[i]; }
    std::size_t numNodes() const { return nodes.size(); }
    stats::CounterRegistry &counters() { return ctr; }
    const std::vector<RecoveryStats> &recoveries() const
    {
        return recoveryLog;
    }

    // --- Client support ------------------------------------------------------
    /**
     * Record a completed client request (measurement window only).
     * @p phases is the request's per-phase time breakdown; for reads
     * and writes it must sum exactly to @p latency (asserted).
     */
    void recordOp(core::OpKind kind, sim::Tick latency,
                  const sim::PhaseAccum &phases);
    sim::Tick now() const { return eq.now(); }

    /**
     * Coordinator a client should use for @p key: under partial
     * replication, one of the key's replicas (clients are
     * partition-aware, as real smart clients are); under full
     * replication, the client's affinity node.
     */
    core::ProtocolNode &nodeForKey(net::KeyId key,
                                   std::uint32_t client_id);

    /** A client request timed out and rotated coordinators. */
    void
    noteClientFailover()
    {
        ++clientFailoverCount;
        if (trace)
            trace->instant(static_cast<std::uint32_t>(nodes.size()), 0,
                           "client_failover", eq.now());
    }
    /** A client retransmitted a request after failover. */
    void
    noteClientRetransmit()
    {
        ++clientRetransmitCount;
        if (trace)
            trace->instant(static_cast<std::uint32_t>(nodes.size()), 0,
                           "client_retransmit", eq.now());
    }
    /** A client abandoned a transaction batch (attempt cap). */
    void noteXactAbandoned() { ++xactAbandonedCount; }

  private:
    void crashNow();
    void crashPartial(const std::vector<net::NodeId> &victims);
    void crashPartialStaged(const std::vector<net::NodeId> &victims,
                            sim::Tick restart_after);
    void restartVictims(const std::vector<net::NodeId> &victims);
    /** Instant-mode re-join: admit at once, fault in on demand. */
    void restartVictimsInstant(const std::vector<net::NodeId> &victims);
    /** Index-build downtime of an instant restart (cheap scan). */
    sim::Tick instantScanTicks() const;
    RecoveryStats recoverAll();
    /** Audit acked-write durability for one crash epoch. */
    void auditEpoch(RecoveryStats &rs,
                    const std::function<net::Version(net::KeyId)>
                        &recovered_version);

    ClusterConfig cfg;
    core::ReplicaMap rmap;
    sim::EventQueue eq;
    stats::CounterRegistry ctr;
    core::XactConflictTable xactTable;
    std::unique_ptr<net::FaultPlan> faultPlan;
    std::unique_ptr<net::Fabric> net;
    std::vector<std::unique_ptr<core::ProtocolNode>> nodes;
    std::vector<std::unique_ptr<Client>> clients;
    core::PropertyChecker *checker = nullptr;
    stats::RateSeries *timeline = nullptr;
    /** Cluster-owned timeline when cfg.timelineBucket > 0. */
    std::unique_ptr<stats::RateSeries> ownTimeline;
    net::MessageTracer *tracerPtr = nullptr;
    sim::TraceRecorder *trace = nullptr;

    bool recording = false;
    stats::Histogram readLat;
    stats::Histogram writeLat;
    stats::Histogram allLat;
    /** Per-phase latency contributions (reads + writes). */
    std::array<stats::Histogram, sim::kPhaseCount> phaseLat;

    std::vector<RecoveryStats> recoveryLog;
    std::uint64_t lostKeysTotal = 0;
    std::uint64_t lostWritesTotal = 0;
    std::uint64_t clientFailoverCount = 0;
    std::uint64_t clientRetransmitCount = 0;
    std::uint64_t xactAbandonedCount = 0;
    std::uint64_t nodeRestartCount = 0;
    std::uint64_t convergenceFailTotal = 0;
    /** First injected crash (0 = none); anchors recovery-SLO timing. */
    sim::Tick firstCrashAt = 0;
    /** When post-crash service resumed (instant re-join or client
     *  restart); the SLO scan starts here. */
    sim::Tick serviceResumeAt = 0;
    /** Nodes currently in instant recovery (fault-in/backfill). */
    std::uint32_t recoveringCount = 0;
    /** Read/write completions while recoveringCount > 0. */
    std::uint64_t servedDuringRecoveryCount = 0;
    bool ran = false;
};

} // namespace ddp::cluster

#endif // DDP_CLUSTER_CLUSTER_HH
