/**
 * @file
 * Closed-loop client model.
 *
 * Each client is bound to one server (its coordinator), draws
 * operations from its own YCSB generator stream, and issues the next
 * request as soon as the previous one completes — the paper's
 * client-thread model. Under Transactional consistency the client
 * groups requests into transactions of cfg.xactLength operations and
 * retries squashed transactions after a random backoff; under Scope
 * persistency it emits a scope-persist request every cfg.scopeLength
 * operations.
 *
 * When cfg.clientRequestTimeout > 0 the client also implements
 * coordinator failover: every request arms a timer, and on expiry the
 * client rotates to the next server and retransmits. Retransmitted
 * plain writes carry a per-client sequence number so a coordinator
 * that already applied the write acknowledges instead of re-executing
 * (exactly-once). Timed-out transaction attempts are retried from
 * scratch at the new coordinator; attempts are capped at
 * cfg.xactMaxAttempts, after which the batch is abandoned.
 */

#ifndef DDP_CLUSTER_CLIENT_HH
#define DDP_CLUSTER_CLIENT_HH

#include <cstdint>
#include <vector>

#include <optional>

#include "ddp/protocol_node.hh"
#include "sim/random.hh"
#include "workload/trace.hh"
#include "workload/ycsb.hh"

namespace ddp::cluster {

class Cluster;

/** One closed-loop client thread. */
class Client
{
  public:
    Client(Cluster &owner, core::ProtocolNode &node, std::uint32_t id);

    /** Begin issuing requests (schedules the first at the current tick). */
    void start();

    /**
     * Abandon any in-flight request (a crash invalidated it) and
     * resume the request loop at @p resume_at.
     */
    void restartAt(sim::Tick resume_at);

    /**
     * Forget a previous failover rotation: route new requests to the
     * home coordinator again. Called after a crashed node re-joins.
     * In-flight requests are unaffected.
     */
    void failback() { nodeOffset = 0; }

    std::uint32_t id() const { return clientId; }
    std::uint64_t opsIssued() const { return issued; }

  private:
    bool transactional() const;
    bool scoped() const;
    bool timeoutsEnabled() const;
    std::uint64_t currentScopeId() const;

    /** Coordinator after the current failover rotation. */
    core::ProtocolNode &coord();

    /**
     * Arm the request timer for the attempt identified by @p token;
     * cancels any previous timer. No-op when timeouts are disabled.
     */
    void armRequestTimer(std::uint64_t token);
    void cancelRequestTimer();
    /** A request timed out: rotate coordinators and retransmit. */
    void onRequestTimeout();

    void issueNext();
    void issueNow();
    void issuePlainOp();
    void sendPlainOp();
    void issueScopePersist();
    void sendScopePersist();

    void beginXactBatch();
    void startXactAttempt();
    void issueXactOp(std::size_t index);
    void finishXactAttempt();
    void retryXactAfterBackoff();
    void commitRecorded(sim::Tick end_completed);

    /** Next operation: from the replay trace or the generator. */
    workload::Op nextOp();

    /** What kind of request the current attempt token guards. */
    enum class Phase
    {
        Idle,
        PlainOp,
        ScopePersist,
        Xact,
    };

    Cluster &owner;
    std::uint32_t homeIdx;
    std::uint32_t clientId;
    workload::OpGenerator gen;
    std::optional<workload::TraceCursor> cursor;
    sim::Pcg32 rng;

    std::uint32_t generation = 0;
    std::uint64_t issued = 0;

    // Failover / retransmission state.
    std::uint32_t nodeOffset = 0;
    std::uint64_t reqSeq = 0;
    /** Monotonic attempt id; completions and timer expiries for stale
     *  attempts are discarded by comparing against it. */
    std::uint64_t attemptToken = 0;
    sim::TimerId reqTimer = sim::kNoTimer;
    Phase phase = Phase::Idle;
    /** In-flight plain op, kept for retransmission after failover. */
    workload::Op pendingOp{};
    std::uint64_t pendingSeq = 0;

    // Scope state.
    std::uint64_t scopeSeq = 1;
    std::uint32_t opsSinceScopePersist = 0;

    // Transaction state.
    std::uint64_t xactSeq = 0;
    std::uint64_t curXactId = 0;
    std::uint32_t xactRetries = 0;
    std::uint32_t xactAttempts = 0;
    std::vector<workload::Op> xactOps;
    std::vector<sim::Tick> xactFirstIssue;
    std::vector<sim::Tick> xactOpDone;
    /** Phase breakdown of each op's last (successful) attempt. */
    std::vector<sim::PhaseAccum> xactOpPhases;
};

} // namespace ddp::cluster

#endif // DDP_CLUSTER_CLIENT_HH
