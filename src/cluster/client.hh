/**
 * @file
 * Closed-loop client model.
 *
 * Each client is bound to one server (its coordinator), draws
 * operations from its own YCSB generator stream, and issues the next
 * request as soon as the previous one completes — the paper's
 * client-thread model. Under Transactional consistency the client
 * groups requests into transactions of cfg.xactLength operations and
 * retries squashed transactions after a random backoff; under Scope
 * persistency it emits a scope-persist request every cfg.scopeLength
 * operations.
 */

#ifndef DDP_CLUSTER_CLIENT_HH
#define DDP_CLUSTER_CLIENT_HH

#include <cstdint>
#include <vector>

#include <optional>

#include "ddp/protocol_node.hh"
#include "sim/random.hh"
#include "workload/trace.hh"
#include "workload/ycsb.hh"

namespace ddp::cluster {

class Cluster;

/** One closed-loop client thread. */
class Client
{
  public:
    Client(Cluster &owner, core::ProtocolNode &node, std::uint32_t id);

    /** Begin issuing requests (schedules the first at the current tick). */
    void start();

    /**
     * Abandon any in-flight request (a crash invalidated it) and
     * resume the request loop at @p resume_at.
     */
    void restartAt(sim::Tick resume_at);

    std::uint32_t id() const { return clientId; }
    std::uint64_t opsIssued() const { return issued; }

  private:
    bool transactional() const;
    bool scoped() const;
    std::uint64_t currentScopeId() const;

    void issueNext();
    void issueNow();
    void issuePlainOp();
    void issueScopePersist();

    void beginXactBatch();
    void startXactAttempt();
    void issueXactOp(std::size_t index);
    void finishXactAttempt();
    void retryXactAfterBackoff();
    void commitRecorded(sim::Tick end_completed);

    /** Next operation: from the replay trace or the generator. */
    workload::Op nextOp();

    Cluster &owner;
    core::ProtocolNode &node;
    std::uint32_t clientId;
    workload::OpGenerator gen;
    std::optional<workload::TraceCursor> cursor;
    sim::Pcg32 rng;

    std::uint32_t generation = 0;
    std::uint64_t issued = 0;

    // Scope state.
    std::uint64_t scopeSeq = 1;
    std::uint32_t opsSinceScopePersist = 0;

    // Transaction state.
    std::uint64_t xactSeq = 0;
    std::uint64_t curXactId = 0;
    std::uint32_t xactRetries = 0;
    std::vector<workload::Op> xactOps;
    std::vector<sim::Tick> xactFirstIssue;
    std::vector<sim::Tick> xactOpDone;
};

} // namespace ddp::cluster

#endif // DDP_CLUSTER_CLIENT_HH
