/**
 * @file
 * Fixed-width ASCII table printer used by the benchmark harnesses to
 * emit paper-style tables and figure series.
 */

#ifndef DDP_STATS_TABLE_HH
#define DDP_STATS_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace ddp::stats {

/**
 * A simple column-aligned table. Add a header row, then data rows; every
 * row must have the same number of cells as the header.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append a data row. Must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Render the table, column-aligned, with a separator under header. */
    void print(std::ostream &os) const;

    std::size_t rows() const { return body.size(); }
    std::size_t columns() const { return head.size(); }

    /** Format a double with @p precision decimal places. */
    static std::string num(double v, int precision = 2);

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> body;
};

} // namespace ddp::stats

#endif // DDP_STATS_TABLE_HH
