/**
 * @file
 * Streaming latency histogram with percentile queries.
 *
 * HdrHistogram-style log-linear bucketing: values are bucketed by
 * (exponent, mantissa-slice) so that relative error is bounded by
 * 1 / kSubBuckets regardless of magnitude, while memory stays constant.
 * This lets a multi-million-sample latency distribution answer p50/p95/
 * p99 queries with <1.6% error and O(1) record cost — the paper reports
 * mean and 95th-percentile latencies (Fig. 6(b)–(f)).
 */

#ifndef DDP_STATS_HISTOGRAM_HH
#define DDP_STATS_HISTOGRAM_HH

#include <array>
#include <cstdint>
#include <limits>

namespace ddp::stats {

/**
 * Log-linear histogram over unsigned 64-bit samples (ticks, bytes, ...).
 */
class Histogram
{
  public:
    Histogram() { counts.fill(0); }

    /** Record one sample. */
    void
    record(std::uint64_t value)
    {
        counts[bucketOf(value)]++;
        ++n;
        total += value;
        if (value < minV)
            minV = value;
        if (value > maxV)
            maxV = value;
    }

    /** Merge another histogram into this one. */
    void
    merge(const Histogram &other)
    {
        for (std::size_t i = 0; i < kBuckets; ++i)
            counts[i] += other.counts[i];
        n += other.n;
        total += other.total;
        if (other.minV < minV)
            minV = other.minV;
        if (other.maxV > maxV)
            maxV = other.maxV;
    }

    /** Number of recorded samples. */
    std::uint64_t count() const { return n; }

    /** Exact mean of recorded samples (0 if empty). */
    double
    mean() const
    {
        return n == 0 ? 0.0
                      : static_cast<double>(total) / static_cast<double>(n);
    }

    /** Smallest recorded sample (0 if empty). */
    std::uint64_t min() const { return n == 0 ? 0 : minV; }

    /** Largest recorded sample (0 if empty). */
    std::uint64_t max() const { return n == 0 ? 0 : maxV; }

    /**
     * Approximate value at quantile @p q in [0, 1]. Returns the
     * representative (midpoint) value of the bucket containing the
     * q-th sample, clamped to [min(), max()] so a sparse tail bucket
     * can never report a percentile outside the observed extremes.
     * 0 if empty.
     */
    std::uint64_t
    quantile(double q) const
    {
        if (n == 0)
            return 0;
        if (q <= 0.0)
            return minV;
        if (q >= 1.0)
            return maxV;
        auto target = static_cast<std::uint64_t>(
            q * static_cast<double>(n - 1)) + 1;
        std::uint64_t seen = 0;
        for (std::size_t i = 0; i < kBuckets; ++i) {
            seen += counts[i];
            if (seen >= target) {
                std::uint64_t rep = representative(i);
                if (rep < minV)
                    return minV;
                return rep > maxV ? maxV : rep;
            }
        }
        return maxV;
    }

    /** Convenience: 95th percentile. */
    std::uint64_t p95() const { return quantile(0.95); }
    /** Convenience: 99th percentile. */
    std::uint64_t p99() const { return quantile(0.99); }
    /** Convenience: median. */
    std::uint64_t p50() const { return quantile(0.50); }

    /** Clear all samples. */
    void
    clear()
    {
        counts.fill(0);
        n = 0;
        total = 0;
        minV = std::numeric_limits<std::uint64_t>::max();
        maxV = 0;
    }

  private:
    /** Sub-bucket resolution: 64 slices per power of two (~1.6% error). */
    static constexpr std::size_t kSubBits = 6;
    static constexpr std::size_t kSubBuckets = 1u << kSubBits;
    /** 64 exponents x 64 sub-buckets covers the full uint64 range. */
    static constexpr std::size_t kBuckets = 64 * kSubBuckets;

    static std::size_t
    bucketOf(std::uint64_t v)
    {
        if (v < kSubBuckets)
            return static_cast<std::size_t>(v);
        // Exponent of the highest set bit; sub-bucket from the next
        // kSubBits bits below it.
        int exp = 63 - __builtin_clzll(v);
        auto sub = static_cast<std::size_t>(
            (v >> (exp - static_cast<int>(kSubBits))) & (kSubBuckets - 1));
        auto bucket = static_cast<std::size_t>(exp - kSubBits + 1) *
                          kSubBuckets + sub;
        return bucket < kBuckets ? bucket : kBuckets - 1;
    }

    static std::uint64_t
    representative(std::size_t bucket)
    {
        if (bucket < kSubBuckets)
            return bucket;
        std::size_t exp = bucket / kSubBuckets + kSubBits - 1;
        std::size_t sub = bucket % kSubBuckets;
        std::uint64_t base =
            (std::uint64_t{1} << exp) +
            (static_cast<std::uint64_t>(sub) << (exp - kSubBits));
        std::uint64_t width = std::uint64_t{1} << (exp - kSubBits);
        return base + width / 2;
    }

    std::array<std::uint64_t, kBuckets> counts;
    std::uint64_t n = 0;
    std::uint64_t total = 0;
    std::uint64_t minV = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t maxV = 0;
};

} // namespace ddp::stats

#endif // DDP_STATS_HISTOGRAM_HH
