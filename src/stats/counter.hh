/**
 * @file
 * Named counters and a registry for experiment-level statistics.
 *
 * Protocol engines and device models register counters (messages sent,
 * persists issued, reads stalled, transactions squashed, ...) under
 * stable names; the experiment runner snapshots the registry before and
 * after the measurement window so warmup activity is excluded.
 */

#ifndef DDP_STATS_COUNTER_HH
#define DDP_STATS_COUNTER_HH

#include <cstdint>
#include <map>
#include <string>

namespace ddp::stats {

/**
 * A flat registry of named uint64 counters. Lookup creates on demand.
 */
class CounterRegistry
{
  public:
    /** Increment @p name by @p delta. */
    void
    add(const std::string &name, std::uint64_t delta = 1)
    {
        values[name] += delta;
    }

    /** Current value of @p name (0 if never touched). */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = values.find(name);
        return it == values.end() ? 0 : it->second;
    }

    /** Snapshot of all counters (copy). */
    std::map<std::string, std::uint64_t> snapshot() const { return values; }

    /**
     * Difference of all counters against an earlier snapshot; counters
     * that did not change are still included (value 0) if present now.
     */
    std::map<std::string, std::uint64_t>
    diff(const std::map<std::string, std::uint64_t> &before) const
    {
        std::map<std::string, std::uint64_t> out;
        for (const auto &[name, v] : values) {
            auto it = before.find(name);
            std::uint64_t old = it == before.end() ? 0 : it->second;
            out[name] = v - old;
        }
        return out;
    }

    void clear() { values.clear(); }

  private:
    std::map<std::string, std::uint64_t> values;
};

} // namespace ddp::stats

#endif // DDP_STATS_COUNTER_HH
