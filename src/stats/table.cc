#include "stats/table.hh"

#include <cassert>
#include <cstdio>
#include <ostream>

namespace ddp::stats {

Table::Table(std::vector<std::string> header) : head(std::move(header))
{
    assert(!head.empty());
}

void
Table::addRow(std::vector<std::string> row)
{
    assert(row.size() == head.size() && "row width must match header");
    body.push_back(std::move(row));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> width(head.size());
    for (std::size_t c = 0; c < head.size(); ++c)
        width[c] = head[c].size();
    for (const auto &row : body) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (row[c].size() > width[c])
                width[c] = row[c].size();
        }
    }

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size()) {
                for (std::size_t p = row[c].size(); p < width[c] + 2; ++p)
                    os << ' ';
            }
        }
        os << '\n';
    };

    emit(head);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c + 1 < width.size() ? 2 : 0);
    for (std::size_t p = 0; p < total; ++p)
        os << '-';
    os << '\n';
    for (const auto &row : body)
        emit(row);
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

} // namespace ddp::stats
