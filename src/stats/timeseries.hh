/**
 * @file
 * Event-rate time series.
 *
 * Buckets event occurrences into fixed simulated-time intervals so an
 * experiment can be plotted over time — e.g., the throughput dip and
 * recovery after an injected crash. Buckets are created lazily as time
 * advances; queries return events-per-second per bucket.
 */

#ifndef DDP_STATS_TIMESERIES_HH
#define DDP_STATS_TIMESERIES_HH

#include <cstdint>
#include <vector>

#include "sim/ticks.hh"

namespace ddp::stats {

/** Fixed-interval event-rate recorder. */
class RateSeries
{
  public:
    /** @param interval bucket width in ticks (must be > 0). */
    explicit RateSeries(sim::Tick interval)
        : bucketWidth(interval)
    {
    }

    /** Record one event at time @p at. */
    void
    record(sim::Tick at)
    {
        std::size_t idx = static_cast<std::size_t>(at / bucketWidth);
        if (idx >= counts.size())
            counts.resize(idx + 1, 0);
        ++counts[idx];
        ++total;
    }

    /** Record @p n events at time @p at. */
    void
    recordN(sim::Tick at, std::uint64_t n)
    {
        std::size_t idx = static_cast<std::size_t>(at / bucketWidth);
        if (idx >= counts.size())
            counts.resize(idx + 1, 0);
        counts[idx] += n;
        total += n;
    }

    sim::Tick interval() const { return bucketWidth; }
    std::size_t buckets() const { return counts.size(); }
    std::uint64_t totalEvents() const { return total; }

    /** Raw event count of bucket @p i. */
    std::uint64_t
    countAt(std::size_t i) const
    {
        return i < counts.size() ? counts[i] : 0;
    }

    /** Event rate (per second) of bucket @p i. */
    double
    rateAt(std::size_t i) const
    {
        return static_cast<double>(countAt(i)) /
               sim::ticksToSeconds(bucketWidth);
    }

    /** Start time of bucket @p i. */
    sim::Tick
    bucketStart(std::size_t i) const
    {
        return static_cast<sim::Tick>(i) * bucketWidth;
    }

    /** Index of the bucket with the fewest events in [first, last). */
    std::size_t
    minBucket(std::size_t first, std::size_t last) const
    {
        std::size_t best = first;
        for (std::size_t i = first; i < last && i < counts.size();
             ++i) {
            if (counts[i] < counts[best])
                best = i;
        }
        return best;
    }

    /**
     * Materialize (zero-filled) buckets up to and including the one
     * covering @p until. Buckets are otherwise created lazily on
     * record(), so a window with no completions — e.g. the downtime
     * after a crash, or the tail of the run — would be missing rather
     * than zero; plots over the series need those explicit zeros.
     */
    void
    extendTo(sim::Tick until)
    {
        std::size_t idx = static_cast<std::size_t>(until / bucketWidth);
        if (idx >= counts.size())
            counts.resize(idx + 1, 0);
    }

    void
    clear()
    {
        counts.clear();
        total = 0;
    }

  private:
    sim::Tick bucketWidth;
    std::vector<std::uint64_t> counts;
    std::uint64_t total = 0;
};

} // namespace ddp::stats

#endif // DDP_STATS_TIMESERIES_HH
