/**
 * @file
 * Simulated time base for DDPSim.
 *
 * The simulator counts time in integer ticks where one tick equals one
 * picosecond. Picosecond resolution lets us express sub-nanosecond
 * quantities (e.g., a 2 GHz core cycle = 500 ticks, NIC serialization of
 * a 64-byte message at 200 Gb/s = 2560 ticks) without floating point,
 * which keeps the discrete-event simulation bit-deterministic.
 */

#ifndef DDP_SIM_TICKS_HH
#define DDP_SIM_TICKS_HH

#include <cstdint>

namespace ddp::sim {

/** Simulated time, in picoseconds. */
using Tick = std::uint64_t;

/** One picosecond. */
constexpr Tick kPicosecond = 1;
/** One nanosecond, in ticks. */
constexpr Tick kNanosecond = 1000 * kPicosecond;
/** One microsecond, in ticks. */
constexpr Tick kMicrosecond = 1000 * kNanosecond;
/** One millisecond, in ticks. */
constexpr Tick kMillisecond = 1000 * kMicrosecond;
/** One second, in ticks. */
constexpr Tick kSecond = 1000 * kMillisecond;

/** A tick value representing "never" / unscheduled. */
constexpr Tick kTickNever = ~Tick{0};

/** Convert ticks to (double) nanoseconds, for reporting only. */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kNanosecond);
}

/** Convert ticks to (double) microseconds, for reporting only. */
constexpr double
ticksToUs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}

/** Convert ticks to (double) seconds, for reporting only. */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kSecond);
}

/**
 * Period of a clock of the given frequency (in Hz), in ticks.
 * E.g., cyclePeriod(2'000'000'000) == 500 ticks for a 2 GHz core.
 */
constexpr Tick
cyclePeriod(std::uint64_t freq_hz)
{
    return kSecond / freq_hz;
}

} // namespace ddp::sim

#endif // DDP_SIM_TICKS_HH
