/**
 * @file
 * Fixed-size worker thread pool for fanning independent simulations
 * across cores.
 *
 * The simulator itself is strictly single-threaded (one EventQueue per
 * Cluster, no mutable globals); the pool exists so that *sweeps* —
 * many fully independent deterministic runs — can use the whole
 * machine. Jobs are plain std::function<void()> values executed in FIFO
 * submission order by whichever worker frees up first; any exception a
 * job lets escape is caught and stashed so the submitting thread can
 * observe it (see SweepRunner).
 */

#ifndef DDP_SIM_THREAD_POOL_HH
#define DDP_SIM_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ddp::sim {

/** Fixed pool of worker threads draining a FIFO job queue. */
class ThreadPool
{
  public:
    /** Spawn @p threads workers (at least 1). */
    explicit ThreadPool(unsigned threads);

    /** Drains outstanding jobs, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a job; workers pick jobs up in submission order. */
    void submit(std::function<void()> job);

    /** Block until every submitted job has finished executing. */
    void wait();

    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers.size());
    }

    /** Hardware concurrency with a sane floor of 1. */
    static unsigned
    hardwareThreads()
    {
        unsigned n = std::thread::hardware_concurrency();
        return n == 0 ? 1 : n;
    }

  private:
    void workerLoop();

    std::vector<std::thread> workers;
    std::deque<std::function<void()>> jobs;
    std::mutex mtx;
    std::condition_variable wakeWorker;
    std::condition_variable idle;
    std::size_t running = 0;
    bool stopping = false;
};

} // namespace ddp::sim

#endif // DDP_SIM_THREAD_POOL_HH
