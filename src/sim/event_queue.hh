/**
 * @file
 * Deterministic discrete-event queue.
 *
 * All simulation activity in DDPSim is driven by a single EventQueue.
 * Events scheduled for the same tick are executed in the order they were
 * scheduled (FIFO tie-break via a monotonically increasing sequence
 * number), which makes entire cluster simulations bit-reproducible for a
 * given RNG seed.
 */

#ifndef DDP_SIM_EVENT_QUEUE_HH
#define DDP_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/ticks.hh"

namespace ddp::sim {

/** Callback type executed when an event fires. */
using EventFn = std::function<void()>;

/** Handle of a cancellable timer; 0 is "no timer". */
using TimerId = std::uint64_t;

/** The null TimerId. */
constexpr TimerId kNoTimer = 0;

/**
 * A deterministic discrete-event queue.
 *
 * Usage: schedule callbacks at absolute ticks (or with scheduleIn() at an
 * offset from now()), then drive the simulation with run(), runUntil(),
 * or step().
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /** Number of events waiting to fire (cancelled timers excluded). */
    std::size_t pendingEvents() const
    {
        return events.size() - cancelledPending;
    }

    /** Total number of events executed so far. */
    std::uint64_t executedEvents() const { return executed; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     * Scheduling in the past is a programming error and asserts.
     */
    void schedule(Tick when, EventFn fn);

    /** Schedule @p fn to run @p delay ticks from now. */
    void scheduleIn(Tick delay, EventFn fn) { schedule(_now + delay, std::move(fn)); }

    /**
     * Schedule a *cancellable* timer firing at absolute time @p when.
     * The returned handle can be passed to cancelTimer() any time
     * before the timer fires. Timers obey the same deterministic
     * FIFO-per-tick ordering as plain events; cancellation leaves the
     * heap entry in place but skips it (and does not advance time for
     * it) when it reaches the front.
     */
    TimerId scheduleTimer(Tick when, EventFn fn);

    /** Schedule a cancellable timer @p delay ticks from now. */
    TimerId
    scheduleTimerIn(Tick delay, EventFn fn)
    {
        return scheduleTimer(_now + delay, std::move(fn));
    }

    /**
     * Cancel a pending timer.
     * @return true if the timer was still pending and is now cancelled;
     *         false if it already fired, was already cancelled, or the
     *         handle is kNoTimer / unknown.
     */
    bool cancelTimer(TimerId id);

    /** True while @p id names a timer that has not fired or been
     *  cancelled. */
    bool
    timerPending(TimerId id) const
    {
        return id != kNoTimer && liveTimers.count(id) != 0;
    }

    /**
     * Execute the next event, advancing time to its timestamp.
     * @return true if an event was executed, false if the queue was empty.
     */
    bool step();

    /** Run until the queue drains. */
    void run();

    /**
     * Run until simulated time would exceed @p limit or the queue drains.
     * Events scheduled exactly at @p limit are executed. Afterwards, if
     * the queue is non-empty, now() is clamped to @p limit.
     */
    void runUntil(Tick limit);

    /** Drop every pending event (used to tear down experiments). */
    void clear();

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        EventFn fn;
        TimerId timer = kNoTimer;
    };

    /** Pop cancelled timer entries off the front of the heap. */
    void purgeCancelled();

    struct EntryCompare
    {
        /** std::priority_queue is a max-heap; invert for earliest-first. */
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, EntryCompare> events;
    Tick _now = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t executed = 0;

    /** Timers scheduled but not yet fired or cancelled. */
    std::unordered_set<TimerId> liveTimers;
    /** Cancelled timers whose heap entries have not surfaced yet. */
    std::unordered_set<TimerId> cancelledTimers;
    std::size_t cancelledPending = 0;
    TimerId nextTimerId = 1;
};

} // namespace ddp::sim

#endif // DDP_SIM_EVENT_QUEUE_HH
