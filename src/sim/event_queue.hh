/**
 * @file
 * Deterministic discrete-event queue.
 *
 * All simulation activity in DDPSim is driven by a single EventQueue.
 * Events scheduled for the same tick are executed in the order they were
 * scheduled (FIFO tie-break via a monotonically increasing sequence
 * number), which makes entire cluster simulations bit-reproducible for a
 * given RNG seed.
 */

#ifndef DDP_SIM_EVENT_QUEUE_HH
#define DDP_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/ticks.hh"

namespace ddp::sim {

/** Callback type executed when an event fires. */
using EventFn = std::function<void()>;

/**
 * A deterministic discrete-event queue.
 *
 * Usage: schedule callbacks at absolute ticks (or with scheduleIn() at an
 * offset from now()), then drive the simulation with run(), runUntil(),
 * or step().
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /** Number of events waiting to fire. */
    std::size_t pendingEvents() const { return events.size(); }

    /** Total number of events executed so far. */
    std::uint64_t executedEvents() const { return executed; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     * Scheduling in the past is a programming error and asserts.
     */
    void schedule(Tick when, EventFn fn);

    /** Schedule @p fn to run @p delay ticks from now. */
    void scheduleIn(Tick delay, EventFn fn) { schedule(_now + delay, std::move(fn)); }

    /**
     * Execute the next event, advancing time to its timestamp.
     * @return true if an event was executed, false if the queue was empty.
     */
    bool step();

    /** Run until the queue drains. */
    void run();

    /**
     * Run until simulated time would exceed @p limit or the queue drains.
     * Events scheduled exactly at @p limit are executed. Afterwards, if
     * the queue is non-empty, now() is clamped to @p limit.
     */
    void runUntil(Tick limit);

    /** Drop every pending event (used to tear down experiments). */
    void clear();

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        EventFn fn;
    };

    struct EntryCompare
    {
        /** std::priority_queue is a max-heap; invert for earliest-first. */
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, EntryCompare> events;
    Tick _now = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t executed = 0;
};

} // namespace ddp::sim

#endif // DDP_SIM_EVENT_QUEUE_HH
