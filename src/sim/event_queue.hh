/**
 * @file
 * Deterministic discrete-event queue.
 *
 * All simulation activity in DDPSim is driven by a single EventQueue.
 * Events scheduled for the same tick are executed in the order they were
 * scheduled (FIFO tie-break via a monotonically increasing sequence
 * number), which makes entire cluster simulations bit-reproducible for a
 * given RNG seed.
 *
 * Hot-path design notes:
 *  - callbacks are InlineFn, so typical closures (this + a few scalars)
 *    live inside the event slab instead of costing a malloc per event;
 *  - the priority queue is indirect: callbacks are parked in a
 *    free-listed slab and the explicitly-owned binary heap
 *    (std::vector + std::push_heap/std::pop_heap) sifts only trivially
 *    copyable 24-byte (when, seq, slot) keys — no callback moves during
 *    sifting, and entries can be *moved* out of the top legally
 *    (std::priority_queue::top() only exposes a const ref);
 *  - cancellable timers use generation-tagged slots — cancel, fire and
 *    pending-checks are O(1) array lookups, with no per-event hash-set
 *    traffic.
 */

#ifndef DDP_SIM_EVENT_QUEUE_HH
#define DDP_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <vector>

#include "sim/inline_fn.hh"
#include "sim/ticks.hh"

namespace ddp::sim {

/** Callback type executed when an event fires. */
using EventFn = InlineFn;

/**
 * Handle of a cancellable timer; 0 is "no timer". Packs a slot index
 * (low 32 bits, biased by 1) and that slot's generation (high 32 bits),
 * so stale handles from fired or cancelled timers are rejected in O(1).
 */
using TimerId = std::uint64_t;

/** The null TimerId. */
constexpr TimerId kNoTimer = 0;

/**
 * A deterministic discrete-event queue.
 *
 * Usage: schedule callbacks at absolute ticks (or with scheduleIn() at an
 * offset from now()), then drive the simulation with run(), runUntil(),
 * or step().
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /** Number of events waiting to fire (cancelled timers excluded). */
    std::size_t pendingEvents() const
    {
        return events.size() - cancelledPending;
    }

    /** Total number of events executed so far. */
    std::uint64_t executedEvents() const { return executed; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     * Scheduling in the past is a programming error and asserts.
     */
    void schedule(Tick when, EventFn fn);

    /** Schedule @p fn to run @p delay ticks from now. */
    void scheduleIn(Tick delay, EventFn fn) { schedule(_now + delay, std::move(fn)); }

    /**
     * Schedule a *cancellable* timer firing at absolute time @p when.
     * The returned handle can be passed to cancelTimer() any time
     * before the timer fires. Timers obey the same deterministic
     * FIFO-per-tick ordering as plain events; cancellation leaves the
     * heap entry in place but skips it (and does not advance time for
     * it) when it reaches the front.
     */
    TimerId scheduleTimer(Tick when, EventFn fn);

    /** Schedule a cancellable timer @p delay ticks from now. */
    TimerId
    scheduleTimerIn(Tick delay, EventFn fn)
    {
        return scheduleTimer(_now + delay, std::move(fn));
    }

    /**
     * Cancel a pending timer.
     * @return true if the timer was still pending and is now cancelled;
     *         false if it already fired, was already cancelled, or the
     *         handle is kNoTimer / unknown.
     */
    bool cancelTimer(TimerId id);

    /** True while @p id names a timer that has not fired or been
     *  cancelled. */
    bool
    timerPending(TimerId id) const
    {
        if (id == kNoTimer)
            return false;
        std::uint32_t slot = slotOf(id);
        return slot < timerSlots.size() &&
               timerSlots[slot].gen == genOf(id) && timerSlots[slot].live;
    }

    /**
     * Execute the next event, advancing time to its timestamp.
     * @return true if an event was executed, false if the queue was empty.
     */
    bool step();

    /** Run until the queue drains. */
    void run();

    /**
     * Run until simulated time would exceed @p limit or the queue drains.
     * Events scheduled exactly at @p limit are executed. Afterwards, if
     * the queue is non-empty, now() is clamped to @p limit.
     */
    void runUntil(Tick limit);

    /** Drop every pending event (used to tear down experiments). */
    void clear();

  private:
    /** Heap key: trivially copyable, so sifting never touches the
     *  callback slab. @c slot indexes eventSlots. */
    struct HeapItem
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    /** Slab cell holding one pending event's payload. */
    struct EventSlot
    {
        TimerId timer = kNoTimer;
        EventFn fn;
    };

    /**
     * One cancellable timer's bookkeeping. The slot is allocated when
     * the timer is scheduled and retired (generation bumped, index
     * recycled) when its heap entry surfaces — whether it fires or was
     * cancelled in the meantime.
     */
    struct TimerSlot
    {
        std::uint32_t gen = 0;
        bool live = false;
    };

    /** Earliest (when, seq) on top; min-heap via inverted comparison. */
    static bool
    entryAfter(const HeapItem &a, const HeapItem &b)
    {
        if (a.when != b.when)
            return a.when > b.when;
        return a.seq > b.seq;
    }

    static std::uint32_t
    slotOf(TimerId id)
    {
        return static_cast<std::uint32_t>(id & 0xffffffffu) - 1;
    }

    static std::uint32_t
    genOf(TimerId id)
    {
        return static_cast<std::uint32_t>(id >> 32);
    }

    void pushEvent(Tick when, TimerId timer, EventFn fn);
    HeapItem popItem();
    /** Bump the slot's generation and recycle its index. */
    void retireTimer(TimerId id);
    /** Pop cancelled timer entries off the front of the heap. */
    void purgeCancelled();

    std::vector<HeapItem> events;
    std::vector<EventSlot> eventSlots;
    std::vector<std::uint32_t> freeEventSlots;
    Tick _now = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t executed = 0;

    std::vector<TimerSlot> timerSlots;
    std::vector<std::uint32_t> freeTimerSlots;
    std::size_t cancelledPending = 0;
};

} // namespace ddp::sim

#endif // DDP_SIM_EVENT_QUEUE_HH
