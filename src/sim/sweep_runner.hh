/**
 * @file
 * Deterministic parallel sweep runner.
 *
 * Every paper figure and torture sweep is a fan-out of fully
 * independent deterministic runs: each item builds its own Cluster with
 * its own EventQueue and RNG streams, so executing items on different
 * threads cannot change any item's result — parallelism lives *across*
 * runs, never inside one (see DESIGN.md, "Parallel sweeps stay
 * deterministic"). SweepRunner::map() evaluates fn(0..n-1) with up to
 * `jobs` worker threads and returns the results indexed by item, so
 * output order is identical to a serial loop regardless of which worker
 * finished first. With jobs == 1 the items run inline on the calling
 * thread — byte-identical to the pre-parallel code path by
 * construction.
 *
 * Exceptions: the first item (by index, not by completion time) that
 * threw has its exception rethrown on the calling thread after all
 * items finish, mirroring what a serial loop would have surfaced.
 */

#ifndef DDP_SIM_SWEEP_RUNNER_HH
#define DDP_SIM_SWEEP_RUNNER_HH

#include <algorithm>
#include <cstdint>
#include <exception>
#include <type_traits>
#include <vector>

#include "sim/thread_pool.hh"

namespace ddp::sim {

/**
 * SplitMix64 (Steele et al.) — one bijective mixing step. Used to
 * derive statistically independent per-item seeds from a base seed so
 * sweep items never share RNG streams yet stay reproducible from
 * (base, index) alone.
 */
constexpr std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Per-item seed for sweep item @p item under base seed @p base. */
constexpr std::uint64_t
sweepSeed(std::uint64_t base, std::uint64_t item)
{
    return splitmix64(base ^ splitmix64(item + 1));
}

/** Fans independent items across a thread pool, collecting in order. */
class SweepRunner
{
  public:
    /** @p jobs worker threads; 0 = one per hardware thread. */
    explicit SweepRunner(unsigned jobs)
        : jobCount(jobs == 0 ? ThreadPool::hardwareThreads() : jobs)
    {
    }

    unsigned jobs() const { return jobCount; }

    /**
     * Evaluate fn(i) for i in [0, n) and return the results in index
     * order. fn must be callable concurrently from multiple threads
     * for distinct i (trivially true for independent Cluster runs).
     */
    template <typename Fn>
    auto
    map(std::size_t n, Fn &&fn)
        -> std::vector<std::invoke_result_t<Fn &, std::size_t>>
    {
        using R = std::invoke_result_t<Fn &, std::size_t>;
        std::vector<R> results(n);
        if (jobCount <= 1 || n <= 1) {
            for (std::size_t i = 0; i < n; ++i)
                results[i] = fn(i);
            return results;
        }

        std::vector<std::exception_ptr> errors(n);
        {
            ThreadPool pool(
                static_cast<unsigned>(std::min<std::size_t>(jobCount, n)));
            for (std::size_t i = 0; i < n; ++i) {
                pool.submit([i, &fn, &results, &errors] {
                    try {
                        results[i] = fn(i);
                    } catch (...) {
                        errors[i] = std::current_exception();
                    }
                });
            }
            pool.wait();
        }
        for (std::size_t i = 0; i < n; ++i) {
            if (errors[i])
                std::rethrow_exception(errors[i]);
        }
        return results;
    }

  private:
    unsigned jobCount;
};

} // namespace ddp::sim

#endif // DDP_SIM_SWEEP_RUNNER_HH
