/**
 * @file
 * Request-phase taxonomy for stall attribution.
 *
 * Every client request's end-to-end latency decomposes into the phases
 * below, measured on the simulated clock (never wall time, so the
 * breakdown is deterministic and byte-identical across sweep
 * parallelism). The protocol engine charges each segment of a request's
 * lifetime to exactly one phase as simulated time advances; the
 * invariant — enforced by assertion when results are recorded — is that
 * the phase spans of a completed request sum exactly to its end-to-end
 * latency. This is the mechanism behind the paper's argument (Figs.
 * 6–9): *where* each DDP binding spends its time, not just how much.
 */

#ifndef DDP_SIM_PHASE_HH
#define DDP_SIM_PHASE_HH

#include <array>
#include <cstddef>
#include <cstdint>

#include "sim/ticks.hh"

namespace ddp::sim {

/** One phase of a client request's lifetime. */
enum class Phase : std::uint8_t
{
    /** Waiting for a coordinator core to pick the request up. */
    CoreQueue,
    /** CPU service (op processing, retry processing) on a core. */
    Service,
    /** DRAM/NVM access time on the request's critical path. */
    MemAccess,
    /** Parked until the key's version became visible (consistency). */
    VisibilityStall,
    /** Parked until the key's version became durable (persistency). */
    PersistStall,
    /** Transaction conflict backoff and re-execution delay. */
    ConflictRetry,
    /** Waiting on the replication round (INV/ACK/VAL wire + remotes). */
    Replication,
    /** Waiting for the commit point at transaction end. */
    XactCommit,
    /** Parked during instant recovery until the key was faulted in. */
    RecoveryStall,
};

inline constexpr std::size_t kPhaseCount = 9;

/** Stable lower-case label (JSON field suffixes, trace names). */
constexpr const char *
phaseName(Phase p)
{
    switch (p) {
      case Phase::CoreQueue: return "core_queue";
      case Phase::Service: return "service";
      case Phase::MemAccess: return "mem_access";
      case Phase::VisibilityStall: return "visibility_stall";
      case Phase::PersistStall: return "persist_stall";
      case Phase::ConflictRetry: return "conflict_retry";
      case Phase::Replication: return "replication";
      case Phase::XactCommit: return "xact_commit";
      case Phase::RecoveryStall: return "recovery_stall";
    }
    return "unknown";
}

/**
 * Per-request phase accumulator. Plain array of ticks; cheap enough to
 * live in every in-flight request context unconditionally, which keeps
 * the breakdown always-on without a sink-attached branch in the hot
 * path (copying 64 bytes per completion is noise next to the event
 * loop).
 */
struct PhaseAccum
{
    std::array<Tick, kPhaseCount> ticks{};

    void
    add(Phase p, Tick t)
    {
        ticks[static_cast<std::size_t>(p)] += t;
    }

    Tick
    get(Phase p) const
    {
        return ticks[static_cast<std::size_t>(p)];
    }

    /** Sum over all phases; equals end-to-end latency on completion. */
    Tick
    sum() const
    {
        Tick s = 0;
        for (Tick t : ticks)
            s += t;
        return s;
    }
};

} // namespace ddp::sim

#endif // DDP_SIM_PHASE_HH
