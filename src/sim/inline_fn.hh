/**
 * @file
 * Small-buffer-optimized callable for the event-loop hot path.
 *
 * Every simulated event used to pay a heap allocation through
 * std::function's type-erasure; profiling the 25-model sweeps showed
 * malloc/free of event closures high on the flat profile. InlineFn
 * stores closures up to kInlineBytes directly inside the event-queue
 * entry (one cache line together with the entry header) and only falls
 * back to the heap for oversized captures — which the simulator's call
 * sites avoid by capturing `this` plus a few scalars.
 *
 * InlineFn is move-only: events are scheduled exactly once and consumed
 * exactly once, so copyability (which forced std::function to allocate
 * copyable wrappers) is deliberately not offered.
 */

#ifndef DDP_SIM_INLINE_FN_HH
#define DDP_SIM_INLINE_FN_HH

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace ddp::sim {

/** Move-only `void()` callable with small-buffer optimization. */
class InlineFn
{
  public:
    /** Closure bytes stored inline (larger captures go to the heap). */
    static constexpr std::size_t kInlineBytes = 48;

    InlineFn() = default;
    InlineFn(std::nullptr_t) {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFn>>>
    InlineFn(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void *>(storage)) Fn(std::forward<F>(f));
            vt = &inlineVtable<Fn>;
        } else {
            ::new (static_cast<void *>(storage))
                Fn *(new Fn(std::forward<F>(f)));
            vt = &heapVtable<Fn>;
        }
    }

    InlineFn(InlineFn &&other) noexcept { moveFrom(other); }

    InlineFn &
    operator=(InlineFn &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineFn(const InlineFn &) = delete;
    InlineFn &operator=(const InlineFn &) = delete;

    ~InlineFn() { reset(); }

    explicit operator bool() const { return vt != nullptr; }

    void
    operator()()
    {
        assert(vt && "calling an empty InlineFn");
        vt->invoke(storage);
    }

  private:
    struct VTable
    {
        void (*invoke)(void *);
        /** Move-construct dst from src, then destroy src. */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *) noexcept;
    };

    template <typename Fn>
    static constexpr VTable inlineVtable = {
        [](void *p) { (*std::launder(reinterpret_cast<Fn *>(p)))(); },
        [](void *dst, void *src) noexcept {
            Fn *s = std::launder(reinterpret_cast<Fn *>(src));
            ::new (dst) Fn(std::move(*s));
            s->~Fn();
        },
        [](void *p) noexcept {
            std::launder(reinterpret_cast<Fn *>(p))->~Fn();
        },
    };

    template <typename Fn>
    static constexpr VTable heapVtable = {
        [](void *p) {
            (**std::launder(reinterpret_cast<Fn **>(p)))();
        },
        [](void *dst, void *src) noexcept {
            Fn **s = std::launder(reinterpret_cast<Fn **>(src));
            ::new (dst) Fn *(*s);
        },
        [](void *p) noexcept {
            delete *std::launder(reinterpret_cast<Fn **>(p));
        },
    };

    void
    moveFrom(InlineFn &other) noexcept
    {
        vt = other.vt;
        if (vt) {
            vt->relocate(storage, other.storage);
            other.vt = nullptr;
        }
    }

    void
    reset() noexcept
    {
        if (vt) {
            vt->destroy(storage);
            vt = nullptr;
        }
    }

    const VTable *vt = nullptr;
    alignas(std::max_align_t) unsigned char storage[kInlineBytes];
};

} // namespace ddp::sim

#endif // DDP_SIM_INLINE_FN_HH
