#include "sim/trace.hh"

#include <cinttypes>
#include <cstdio>

namespace ddp::sim {

namespace {

/**
 * Ticks (picoseconds) to the trace format's microsecond timestamps as
 * a fixed-point decimal string — integer math only, so serialization
 * is byte-identical across hosts and sweep parallelism.
 */
void
appendMicros(std::string &out, Tick t)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%" PRIu64 ".%06" PRIu64,
                  t / 1000000, t % 1000000);
    out += buf;
}

void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

} // namespace

std::string
TraceRecorder::serialize() const
{
    std::string out;
    out.reserve(meta.size() * 96 + events.size() * 128);
    bool first = true;
    char buf[96];

    auto sep = [&] {
        if (!first)
            out += ",\n";
        first = false;
    };

    for (const Meta &m : meta) {
        sep();
        std::snprintf(buf, sizeof buf,
                      "{\"ph\":\"M\",\"pid\":%u,\"tid\":%u,\"name\":\"%s\","
                      "\"args\":{\"name\":",
                      m.pid, m.tid,
                      m.process ? "process_name" : "thread_name");
        out += buf;
        appendJsonString(out, m.name);
        out += "}}";
    }

    for (const Event &e : events) {
        sep();
        std::snprintf(buf, sizeof buf, "{\"ph\":\"%c\",\"pid\":%u,\"tid\":%u,",
                      e.ph, e.pid, e.tid);
        out += buf;
        out += "\"name\":\"";
        out += e.name; // static literal, nothing to escape
        out += "\",\"ts\":";
        appendMicros(out, e.ts);
        if (e.ph == 'X') {
            out += ",\"dur\":";
            appendMicros(out, e.dur);
        } else if (e.ph == 'i') {
            out += ",\"s\":\"t\""; // thread-scoped instant
        } else if (e.ph == 'b' || e.ph == 'e') {
            // Async spans pair up by (cat, id); argVal carries the id.
            std::snprintf(buf, sizeof buf,
                          ",\"cat\":\"req\",\"id\":%" PRIu64, e.argVal);
            out += buf;
        }
        if (e.argKey != nullptr) {
            out += ",\"args\":{\"";
            out += e.argKey;
            std::snprintf(buf, sizeof buf, "\":%" PRIu64 "}", e.argVal);
            out += buf;
        }
        out += '}';
    }
    return out;
}

void
TraceRecorder::writeFile(std::ostream &os,
                         const std::vector<std::string> &fragments)
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
    bool first = true;
    for (const std::string &f : fragments) {
        if (f.empty())
            continue;
        if (!first)
            os << ",\n";
        first = false;
        os << f;
    }
    os << "\n]}\n";
}

} // namespace ddp::sim
