/**
 * @file
 * Timing resource models.
 *
 * DDPSim models contended hardware (NIC serializers, memory banks and
 * channels, worker cores) as FIFO servers: a request that arrives at time
 * t needing s ticks of service completes at max(t, next_free) + s. The
 * resources are pure timing calculators — callers schedule the returned
 * completion time on the EventQueue themselves — which keeps the device
 * models composable and trivially testable.
 */

#ifndef DDP_SIM_RESOURCE_HH
#define DDP_SIM_RESOURCE_HH

#include <cstdint>
#include <vector>

#include "sim/ticks.hh"

namespace ddp::sim {

/**
 * A single FIFO server. Work is serialized: each acquisition occupies the
 * resource for its full service time.
 */
class FifoResource
{
  public:
    FifoResource() = default;

    /**
     * Occupy the resource for @p service ticks starting no earlier than
     * @p at.
     * @return the completion time of this piece of work.
     */
    Tick
    acquire(Tick at, Tick service)
    {
        Tick start = at > nextFree ? at : nextFree;
        Tick wait = start - at;
        nextFree = start + service;
        busy += service;
        totalWait += wait;
        ++acquisitions;
        return nextFree;
    }

    /** Time at which the resource next becomes idle. */
    Tick freeAt() const { return nextFree; }

    /** Backlog visible to a request arriving at @p at. */
    Tick
    queueDelay(Tick at) const
    {
        return nextFree > at ? nextFree - at : 0;
    }

    /** Cumulative busy ticks (for utilization stats). */
    Tick busyTicks() const { return busy; }

    /** Cumulative queueing-delay ticks across all acquisitions. */
    Tick waitTicks() const { return totalWait; }

    /** Number of acquisitions served. */
    std::uint64_t count() const { return acquisitions; }

    /** Reset timing state (not statistics). */
    void reset() { nextFree = 0; }

  private:
    Tick nextFree = 0;
    Tick busy = 0;
    Tick totalWait = 0;
    std::uint64_t acquisitions = 0;
};

/**
 * A pool of k identical FIFO servers (e.g., the worker cores of a
 * server). An arrival is served by the earliest-free member.
 */
class ResourcePool
{
  public:
    explicit ResourcePool(std::size_t servers) : members(servers) {}

    /**
     * Serve @p service ticks of work arriving at @p at on the
     * earliest-free member.
     * @return completion time.
     */
    Tick
    acquire(Tick at, Tick service)
    {
        return members[pickEarliest()].acquire(at, service);
    }

    /** Earliest time any member is free. */
    Tick
    earliestFree() const
    {
        Tick best = kTickNever;
        for (const auto &m : members)
            best = m.freeAt() < best ? m.freeAt() : best;
        return best;
    }

    std::size_t size() const { return members.size(); }

    /** Aggregate busy ticks over all members. */
    Tick
    busyTicks() const
    {
        Tick sum = 0;
        for (const auto &m : members)
            sum += m.busyTicks();
        return sum;
    }

    /** Total acquisitions across all members. */
    std::uint64_t
    count() const
    {
        std::uint64_t sum = 0;
        for (const auto &m : members)
            sum += m.count();
        return sum;
    }

    void
    reset()
    {
        for (auto &m : members)
            m.reset();
    }

  private:
    std::size_t
    pickEarliest() const
    {
        std::size_t best = 0;
        for (std::size_t i = 1; i < members.size(); ++i) {
            if (members[i].freeAt() < members[best].freeAt())
                best = i;
        }
        return best;
    }

    std::vector<FifoResource> members;
};

} // namespace ddp::sim

#endif // DDP_SIM_RESOURCE_HH
