/**
 * @file
 * Chrome-trace-event (Perfetto-loadable) timeline recorder.
 *
 * A TraceRecorder collects complete ('X') and instant ('i') events on
 * the simulated clock and serializes them into the Chrome trace-event
 * JSON array format that https://ui.perfetto.dev and chrome://tracing
 * load directly. Zero cost when no recorder is attached: every emission
 * site is a raw-pointer null check, the same pattern as
 * net::MessageTracer and core::EventSink.
 *
 * Determinism: timestamps are simulated picoseconds converted to the
 * trace format's microseconds with pure integer math (no floating
 * point), names are static string literals, and events are appended in
 * simulation order by the single thread that owns the run. A sweep
 * gives each run its own recorder with a distinct pid base and
 * concatenates the serialized fragments in submission order, so the
 * merged file is byte-identical for any `--jobs N`.
 */

#ifndef DDP_SIM_TRACE_HH
#define DDP_SIM_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/ticks.hh"

namespace ddp::sim {

/** Records a timeline of one simulation run. Not thread-safe; one per run. */
class TraceRecorder
{
  public:
    /**
     * @p pid_base offsets every track id so runs of a sweep occupy
     * disjoint pid ranges in the merged file; @p max_events bounds
     * memory (excess events are counted in dropped(), not stored).
     */
    explicit TraceRecorder(std::uint32_t pid_base = 0,
                           std::size_t max_events = 1u << 20)
        : pidBase(pid_base), maxEvents(max_events)
    {
    }

    /** A span on track (pid, tid) from @p start to @p end. */
    void
    complete(std::uint32_t pid, std::uint32_t tid, const char *name,
             Tick start, Tick end, const char *arg_key = nullptr,
             std::uint64_t arg_val = 0)
    {
        push({'X', pidBase + pid, tid, name, start,
              end >= start ? end - start : 0, arg_key, arg_val});
    }

    /** A point event on track (pid, tid) at @p at. */
    void
    instant(std::uint32_t pid, std::uint32_t tid, const char *name,
            Tick at, const char *arg_key = nullptr,
            std::uint64_t arg_val = 0)
    {
        push({'i', pidBase + pid, tid, name, at, 0, arg_key, arg_val});
    }

    /**
     * An async ('b'/'e') span on pid's "requests" nesting track.
     * Async spans may overlap freely — Perfetto stacks them by
     * @p span_id — which is why request lifetimes use this instead of
     * complete events (overlapping 'X' on one tid render wrongly).
     */
    void
    async(std::uint32_t pid, const char *name, std::uint64_t span_id,
          Tick start, Tick end)
    {
        push({'b', pidBase + pid, 0, name, start, 0, nullptr, span_id});
        push({'e', pidBase + pid, 0, name, end >= start ? end : start,
              0, nullptr, span_id});
    }

    /** Label a pid track ("node0", "cluster", ...). */
    void
    processName(std::uint32_t pid, const std::string &name)
    {
        meta.push_back({pidBase + pid, 0, name, true});
    }

    /** Label a tid within a pid ("protocol", "nic", "memory", ...). */
    void
    threadName(std::uint32_t pid, std::uint32_t tid,
               const std::string &name)
    {
        meta.push_back({pidBase + pid, tid, name, false});
    }

    std::size_t eventCount() const { return events.size(); }
    std::uint64_t dropped() const { return droppedEvents; }

    /**
     * Serialize to a fragment of a trace-event JSON array: one event
     * object per line, comma-separated, no enclosing brackets. Empty
     * recorders yield an empty string. Callers join fragments with
     * ",\n" and wrap in {"traceEvents":[ ... ]}.
     */
    std::string serialize() const;

    /** Wrap pre-serialized fragments into a complete trace JSON file. */
    static void writeFile(std::ostream &os,
                          const std::vector<std::string> &fragments);

  private:
    struct Event
    {
        char ph;
        std::uint32_t pid;
        std::uint32_t tid;
        const char *name; ///< static literal; never escaped
        Tick ts;
        Tick dur;
        const char *argKey; ///< static literal or nullptr
        std::uint64_t argVal;
    };

    struct Meta
    {
        std::uint32_t pid;
        std::uint32_t tid;
        std::string name;
        bool process;
    };

    void
    push(Event e)
    {
        if (events.size() >= maxEvents) {
            ++droppedEvents;
            return;
        }
        events.push_back(e);
    }

    std::uint32_t pidBase;
    std::size_t maxEvents;
    std::vector<Event> events;
    std::vector<Meta> meta;
    std::uint64_t droppedEvents = 0;
};

} // namespace ddp::sim

#endif // DDP_SIM_TRACE_HH
