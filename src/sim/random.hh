/**
 * @file
 * Deterministic random number generation for DDPSim.
 *
 * We implement PCG32 (O'Neill, 2014) rather than relying on std::mt19937
 * so that streams are cheap to fork per-client and the simulator's
 * behaviour is identical across standard libraries. On top of the raw
 * generator we provide the samplers the workload layer needs: uniform
 * integers/doubles, bounded exponentials, and the Gray et al. zipfian
 * generator used by YCSB.
 */

#ifndef DDP_SIM_RANDOM_HH
#define DDP_SIM_RANDOM_HH

#include <cassert>
#include <cmath>
#include <cstdint>

namespace ddp::sim {

/**
 * PCG32: 64-bit state, 32-bit output, period 2^64 per stream.
 * Distinct stream ids yield statistically independent sequences from the
 * same seed, which we use to give every client its own stream.
 */
class Pcg32
{
  public:
    explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                   std::uint64_t stream = 0xda3e39cb94b95bdbULL)
    {
        state = 0;
        inc = (stream << 1) | 1u;
        nextU32();
        state += seed;
        nextU32();
    }

    /** Next raw 32-bit value. */
    std::uint32_t
    nextU32()
    {
        std::uint64_t old = state;
        state = old * 6364136223846793005ULL + inc;
        auto xorshifted =
            static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
        auto rot = static_cast<std::uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    nextU64()
    {
        return (static_cast<std::uint64_t>(nextU32()) << 32) | nextU32();
    }

    /** Uniform integer in [0, bound), bias-free via rejection. */
    std::uint32_t
    nextBounded(std::uint32_t bound)
    {
        assert(bound > 0);
        std::uint32_t threshold = -bound % bound;
        for (;;) {
            std::uint32_t r = nextU32();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return (nextU64() >> 11) * (1.0 / 9007199254740992.0);
    }

  private:
    std::uint64_t state;
    std::uint64_t inc;
};

/**
 * Zipfian-distributed integers in [0, n), using the Gray et al. rejection
 * method popularized by YCSB. theta is the skew (YCSB default 0.99);
 * any finite theta >= 0 is accepted. theta == 1 (the harmonic Zipf
 * singularity of the Gray formula, where alpha = 1/(1-theta) blows up)
 * is handled by the analytic limit of the quantile map: as theta -> 1,
 *   n * (eta*u - eta + 1)^(1/(1-theta))  ->  n * exp(c * (u - 1))
 * with c = ln(n/2) / (1 - zeta(2)/zeta(n)).
 */
class ZipfianGenerator
{
  public:
    ZipfianGenerator(std::uint64_t n, double theta = 0.99)
        : items(n), theta(theta)
    {
        assert(n > 0);
        assert(theta >= 0.0);
        zetan = zeta(n, theta);
        zeta2 = zeta(2, theta);
        if (n == 1) {
            // Sole item: next() always takes the uz < 1 branch (zetan
            // == 1). zeta(2) > zeta(1) would poison eta's denominator,
            // so park the unused coefficients at inert values.
            harmonic = false;
            alpha = 1.0;
            eta = 0.0;
        } else if (theta == 1.0) {
            harmonic = true;
            alpha = 0.0; // unused on the harmonic path
            eta = std::log(static_cast<double>(n) / 2.0) /
                  (1.0 - zeta2 / zetan);
        } else {
            harmonic = false;
            alpha = 1.0 / (1.0 - theta);
            eta = (1.0 -
                   std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
                  (1.0 - zeta2 / zetan);
        }
    }

    /** Sample an item index; item 0 is the most popular. */
    std::uint64_t
    next(Pcg32 &rng) const
    {
        double u = rng.nextDouble();
        double uz = u * zetan;
        if (uz < 1.0)
            return 0;
        if (uz < 1.0 + std::pow(0.5, theta))
            return 1;
        double scaled =
            harmonic ? std::exp(eta * (u - 1.0))
                     : std::pow(eta * u - eta + 1.0, alpha);
        auto idx = static_cast<std::uint64_t>(
            static_cast<double>(items) * scaled);
        return idx >= items ? items - 1 : idx;
    }

    std::uint64_t itemCount() const { return items; }
    double skew() const { return theta; }

  private:
    static double
    zeta(std::uint64_t n, double theta)
    {
        double sum = 0.0;
        for (std::uint64_t i = 1; i <= n; ++i)
            sum += 1.0 / std::pow(static_cast<double>(i), theta);
        return sum;
    }

    std::uint64_t items;
    double theta;
    double zetan;
    double zeta2;
    double alpha;
    double eta;
    bool harmonic = false;
};

} // namespace ddp::sim

#endif // DDP_SIM_RANDOM_HH
