#include "sim/event_queue.hh"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ddp::sim {

void
EventQueue::pushEvent(Tick when, TimerId timer, EventFn fn)
{
    std::uint32_t slot;
    if (!freeEventSlots.empty()) {
        slot = freeEventSlots.back();
        freeEventSlots.pop_back();
        eventSlots[slot].timer = timer;
        eventSlots[slot].fn = std::move(fn);
    } else {
        slot = static_cast<std::uint32_t>(eventSlots.size());
        eventSlots.push_back(EventSlot{timer, std::move(fn)});
    }
    events.push_back(HeapItem{when, nextSeq++, slot});
    std::push_heap(events.begin(), events.end(), entryAfter);
}

EventQueue::HeapItem
EventQueue::popItem()
{
    std::pop_heap(events.begin(), events.end(), entryAfter);
    HeapItem item = events.back();
    events.pop_back();
    return item;
}

void
EventQueue::schedule(Tick when, EventFn fn)
{
    assert(when >= _now && "cannot schedule an event in the past");
    pushEvent(when, kNoTimer, std::move(fn));
}

TimerId
EventQueue::scheduleTimer(Tick when, EventFn fn)
{
    assert(when >= _now && "cannot schedule a timer in the past");
    std::uint32_t slot;
    if (!freeTimerSlots.empty()) {
        slot = freeTimerSlots.back();
        freeTimerSlots.pop_back();
    } else {
        slot = static_cast<std::uint32_t>(timerSlots.size());
        timerSlots.emplace_back();
    }
    timerSlots[slot].live = true;
    TimerId id = (static_cast<TimerId>(timerSlots[slot].gen) << 32) |
                 (slot + 1);
    pushEvent(when, id, std::move(fn));
    return id;
}

bool
EventQueue::cancelTimer(TimerId id)
{
    if (!timerPending(id))
        return false;
    timerSlots[slotOf(id)].live = false;
    ++cancelledPending;
    return true;
}

void
EventQueue::retireTimer(TimerId id)
{
    std::uint32_t slot = slotOf(id);
    assert(slot < timerSlots.size() && timerSlots[slot].gen == genOf(id));
    ++timerSlots[slot].gen;
    timerSlots[slot].live = false;
    freeTimerSlots.push_back(slot);
}

void
EventQueue::purgeCancelled()
{
    if (cancelledPending == 0)
        return;
    while (!events.empty()) {
        TimerId timer = eventSlots[events.front().slot].timer;
        if (timer == kNoTimer || timerPending(timer))
            return;
        HeapItem item = popItem();
        eventSlots[item.slot].fn = EventFn(); // drop the callback
        freeEventSlots.push_back(item.slot);
        retireTimer(timer);
        assert(cancelledPending > 0);
        --cancelledPending;
    }
}

bool
EventQueue::step()
{
    purgeCancelled();
    if (events.empty())
        return false;

    HeapItem item = popItem();
    assert(item.when >= _now);
    _now = item.when;
    ++executed;
    // Move the callback out before running it: fn may push new events
    // that recycle this very slot.
    TimerId timer = eventSlots[item.slot].timer;
    EventFn fn = std::move(eventSlots[item.slot].fn);
    freeEventSlots.push_back(item.slot);
    if (timer != kNoTimer)
        retireTimer(timer);
    fn();
    return true;
}

void
EventQueue::run()
{
    while (step()) {
    }
}

void
EventQueue::runUntil(Tick limit)
{
    for (;;) {
        purgeCancelled();
        if (events.empty() || events.front().when > limit)
            break;
        step();
    }
    if (_now < limit)
        _now = limit;
}

void
EventQueue::clear()
{
    events.clear();
    eventSlots.clear();
    freeEventSlots.clear();
    timerSlots.clear();
    freeTimerSlots.clear();
    cancelledPending = 0;
}

} // namespace ddp::sim
