#include "sim/event_queue.hh"

#include <cassert>
#include <utility>

namespace ddp::sim {

void
EventQueue::schedule(Tick when, EventFn fn)
{
    assert(when >= _now && "cannot schedule an event in the past");
    events.push(Entry{when, nextSeq++, std::move(fn), kNoTimer});
}

TimerId
EventQueue::scheduleTimer(Tick when, EventFn fn)
{
    assert(when >= _now && "cannot schedule a timer in the past");
    TimerId id = nextTimerId++;
    liveTimers.insert(id);
    events.push(Entry{when, nextSeq++, std::move(fn), id});
    return id;
}

bool
EventQueue::cancelTimer(TimerId id)
{
    if (id == kNoTimer || liveTimers.erase(id) == 0)
        return false;
    cancelledTimers.insert(id);
    ++cancelledPending;
    return true;
}

void
EventQueue::purgeCancelled()
{
    while (!events.empty()) {
        const Entry &top = events.top();
        if (top.timer == kNoTimer ||
            cancelledTimers.count(top.timer) == 0) {
            return;
        }
        cancelledTimers.erase(top.timer);
        assert(cancelledPending > 0);
        --cancelledPending;
        events.pop();
    }
}

bool
EventQueue::step()
{
    purgeCancelled();
    if (events.empty())
        return false;

    // priority_queue::top() returns a const ref; the callback must be
    // moved out before pop() so it can safely reschedule further events.
    Entry entry = std::move(const_cast<Entry &>(events.top()));
    events.pop();

    assert(entry.when >= _now);
    _now = entry.when;
    ++executed;
    if (entry.timer != kNoTimer)
        liveTimers.erase(entry.timer);
    entry.fn();
    return true;
}

void
EventQueue::run()
{
    while (step()) {
    }
}

void
EventQueue::runUntil(Tick limit)
{
    for (;;) {
        purgeCancelled();
        if (events.empty() || events.top().when > limit)
            break;
        step();
    }
    if (_now < limit)
        _now = limit;
}

void
EventQueue::clear()
{
    while (!events.empty())
        events.pop();
    liveTimers.clear();
    cancelledTimers.clear();
    cancelledPending = 0;
}

} // namespace ddp::sim
