#include "sim/event_queue.hh"

#include <cassert>
#include <utility>

namespace ddp::sim {

void
EventQueue::schedule(Tick when, EventFn fn)
{
    assert(when >= _now && "cannot schedule an event in the past");
    events.push(Entry{when, nextSeq++, std::move(fn)});
}

bool
EventQueue::step()
{
    if (events.empty())
        return false;

    // priority_queue::top() returns a const ref; the callback must be
    // moved out before pop() so it can safely reschedule further events.
    Entry entry = std::move(const_cast<Entry &>(events.top()));
    events.pop();

    assert(entry.when >= _now);
    _now = entry.when;
    ++executed;
    entry.fn();
    return true;
}

void
EventQueue::run()
{
    while (step()) {
    }
}

void
EventQueue::runUntil(Tick limit)
{
    while (!events.empty() && events.top().when <= limit)
        step();
    if (_now < limit)
        _now = limit;
}

void
EventQueue::clear()
{
    while (!events.empty())
        events.pop();
}

} // namespace ddp::sim
