#include "sim/thread_pool.hh"

#include <utility>

namespace ddp::sim {

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mtx);
        stopping = true;
    }
    wakeWorker.notify_all();
    for (std::thread &w : workers)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::unique_lock<std::mutex> lock(mtx);
        jobs.push_back(std::move(job));
    }
    wakeWorker.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mtx);
    idle.wait(lock, [this] { return jobs.empty() && running == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mtx);
            wakeWorker.wait(
                lock, [this] { return stopping || !jobs.empty(); });
            if (jobs.empty()) // stopping, queue drained
                return;
            job = std::move(jobs.front());
            jobs.pop_front();
            ++running;
        }
        job();
        {
            std::unique_lock<std::mutex> lock(mtx);
            --running;
            if (jobs.empty() && running == 0)
                idle.notify_all();
        }
    }
}

} // namespace ddp::sim
