#include "kv/skip_list.hh"

#include <cassert>

namespace ddp::kv {

SkipListMap::SkipListMap(std::uint64_t seed) : rng(seed, 0x5eedbeef)
{
    head = makeNode(0, 0, kMaxLevels);
}

SkipListMap::~SkipListMap()
{
    Node *n = head;
    while (n) {
        Node *next = n->next[0];
        delete n;
        n = next;
    }
}

SkipListMap::Node *
SkipListMap::makeNode(KeyId key, Value value, int height)
{
    Node *n = new Node{key, value, height, {}};
    n->next.fill(nullptr);
    return n;
}

int
SkipListMap::randomHeight()
{
    int h = 1;
    // p = 1/4 per extra level.
    while (h < kMaxLevels && (rng.nextU32() & 3) == 0)
        ++h;
    return h;
}

SkipListMap::Node *
SkipListMap::findPredecessors(KeyId key,
                              std::array<Node *, kMaxLevels> &update)
{
    probes = 0;
    Node *n = head;
    for (int lvl = levels - 1; lvl >= 0; --lvl) {
        while (n->next[lvl] && n->next[lvl]->key < key) {
            n = n->next[lvl];
            ++probes;
        }
        update[lvl] = n;
        ++probes;
    }
    return n->next[0];
}

bool
SkipListMap::get(KeyId key, Value &out)
{
    std::array<Node *, kMaxLevels> update;
    Node *candidate = findPredecessors(key, update);
    if (candidate && candidate->key == key) {
        out = candidate->value;
        return true;
    }
    return false;
}

void
SkipListMap::put(KeyId key, Value value)
{
    std::array<Node *, kMaxLevels> update;
    Node *candidate = findPredecessors(key, update);
    if (candidate && candidate->key == key) {
        candidate->value = value;
        return;
    }

    int h = randomHeight();
    if (h > levels) {
        for (int lvl = levels; lvl < h; ++lvl)
            update[lvl] = head;
        levels = h;
    }

    Node *n = makeNode(key, value, h);
    for (int lvl = 0; lvl < h; ++lvl) {
        n->next[lvl] = update[lvl]->next[lvl];
        update[lvl]->next[lvl] = n;
    }
    ++count;
}

bool
SkipListMap::erase(KeyId key)
{
    std::array<Node *, kMaxLevels> update;
    Node *candidate = findPredecessors(key, update);
    if (!candidate || candidate->key != key)
        return false;

    for (int lvl = 0; lvl < candidate->height; ++lvl) {
        if (update[lvl]->next[lvl] == candidate)
            update[lvl]->next[lvl] = candidate->next[lvl];
    }
    delete candidate;
    --count;

    while (levels > 1 && head->next[levels - 1] == nullptr)
        --levels;
    return true;
}

void
SkipListMap::clear()
{
    Node *n = head->next[0];
    while (n) {
        Node *next = n->next[0];
        delete n;
        n = next;
    }
    head->next.fill(nullptr);
    levels = 1;
    count = 0;
    probes = 0;
}

std::size_t
SkipListMap::rangeScan(KeyId lo, KeyId hi,
                       const std::function<void(KeyId, Value)> &visit)
{
    std::array<Node *, kMaxLevels> update;
    Node *n = findPredecessors(lo, update);
    std::size_t visited = 0;
    while (n && n->key <= hi) {
        visit(n->key, n->value);
        ++visited;
        ++probes;
        n = n->next[0];
    }
    return visited;
}

} // namespace ddp::kv
