#include "kv/slab_lru.hh"

#include <cassert>

namespace ddp::kv {

SlabLruCache::SlabLruCache(std::size_t capacity_entries)
    : slab(capacity_entries), index(capacity_entries * 2)
{
    assert(capacity_entries > 0);
    freeList.reserve(capacity_entries);
    for (std::size_t i = capacity_entries; i > 0; --i)
        freeList.push_back(static_cast<std::uint32_t>(i - 1));
}

void
SlabLruCache::unlink(std::uint32_t slot)
{
    Entry &e = slab[slot];
    if (e.prev != kNil)
        slab[e.prev].next = e.next;
    else
        mru = e.next;
    if (e.next != kNil)
        slab[e.next].prev = e.prev;
    else
        lru = e.prev;
    e.prev = e.next = kNil;
}

void
SlabLruCache::pushMru(std::uint32_t slot)
{
    Entry &e = slab[slot];
    e.prev = kNil;
    e.next = mru;
    if (mru != kNil)
        slab[mru].prev = slot;
    mru = slot;
    if (lru == kNil)
        lru = slot;
}

void
SlabLruCache::evictLru()
{
    assert(lru != kNil);
    std::uint32_t victim = lru;
    unlink(victim);
    index.erase(slab[victim].key);
    freeList.push_back(victim);
    --live;
    ++evicted;
}

bool
SlabLruCache::get(KeyId key, Value &out)
{
    Value slot_v;
    bool hit = index.get(key, slot_v);
    probes = index.lastProbes();
    if (!hit)
        return false;
    auto slot = static_cast<std::uint32_t>(slot_v);
    out = slab[slot].value;
    unlink(slot);
    pushMru(slot);
    return true;
}

void
SlabLruCache::put(KeyId key, Value value)
{
    Value slot_v;
    if (index.get(key, slot_v)) {
        probes = index.lastProbes();
        auto slot = static_cast<std::uint32_t>(slot_v);
        slab[slot].value = value;
        slab[slot].expiresAt = 0;
        unlink(slot);
        pushMru(slot);
        return;
    }

    if (freeList.empty())
        evictLru();

    std::uint32_t slot = freeList.back();
    freeList.pop_back();
    slab[slot].key = key;
    slab[slot].value = value;
    slab[slot].expiresAt = 0;
    pushMru(slot);
    index.put(key, slot);
    probes = index.lastProbes();
    ++live;
}

bool
SlabLruCache::erase(KeyId key)
{
    Value slot_v;
    if (!index.get(key, slot_v)) {
        probes = index.lastProbes();
        return false;
    }
    auto slot = static_cast<std::uint32_t>(slot_v);
    unlink(slot);
    index.erase(key);
    probes = index.lastProbes();
    freeList.push_back(slot);
    --live;
    return true;
}

void
SlabLruCache::clear()
{
    index.clear();
    freeList.clear();
    for (std::size_t i = slab.size(); i > 0; --i)
        freeList.push_back(static_cast<std::uint32_t>(i - 1));
    mru = lru = kNil;
    live = 0;
    probes = 0;
}

void
SlabLruCache::reclaim(std::uint32_t slot)
{
    unlink(slot);
    index.erase(slab[slot].key);
    freeList.push_back(slot);
    --live;
}

void
SlabLruCache::putWithTtl(KeyId key, Value value, sim::Tick expires_at)
{
    put(key, value);
    Value slot_v;
    if (index.get(key, slot_v))
        slab[static_cast<std::uint32_t>(slot_v)].expiresAt = expires_at;
}

bool
SlabLruCache::get(KeyId key, Value &out, sim::Tick now)
{
    Value slot_v;
    if (!index.get(key, slot_v)) {
        ++missCount;
        return false;
    }
    auto slot = static_cast<std::uint32_t>(slot_v);
    Entry &e = slab[slot];
    if (e.expiresAt != 0 && e.expiresAt <= now) {
        // Lazy expiration: reclaim on access, count as a miss.
        reclaim(slot);
        ++expired;
        ++missCount;
        return false;
    }
    out = e.value;
    unlink(slot);
    pushMru(slot);
    ++hitCount;
    return true;
}

std::size_t
SlabLruCache::expireSweep(sim::Tick now, std::size_t max_scan)
{
    std::size_t reclaimed = 0;
    std::uint32_t slot = lru;
    for (std::size_t scanned = 0; scanned < max_scan && slot != kNil;
         ++scanned) {
        std::uint32_t prev = slab[slot].prev;
        if (slab[slot].expiresAt != 0 && slab[slot].expiresAt <= now) {
            reclaim(slot);
            ++expired;
            ++reclaimed;
        }
        slot = prev;
    }
    return reclaimed;
}

bool
SlabLruCache::lruKey(KeyId &out) const
{
    if (lru == kNil)
        return false;
    out = slab[lru].key;
    return true;
}

} // namespace ddp::kv
