/**
 * @file
 * B+ tree store with linked leaves.
 *
 * All values live in the leaves; internal nodes carry separator keys
 * only. Leaves are singly linked for ordered range scans. Insertions
 * split bottom-up; deletions borrow from or merge with siblings, so
 * the occupancy invariants hold between operations (checked by
 * validate() in property tests).
 */

#ifndef DDP_KV_BPLUS_TREE_HH
#define DDP_KV_BPLUS_TREE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "kv/store.hh"

namespace ddp::kv {

/** B+ tree implementing Store. */
class BPlusTree : public Store
{
  public:
    BPlusTree();
    ~BPlusTree() override;

    BPlusTree(const BPlusTree &) = delete;
    BPlusTree &operator=(const BPlusTree &) = delete;

    bool get(KeyId key, Value &out) override;
    void put(KeyId key, Value value) override;
    bool erase(KeyId key) override;
    std::size_t size() const override { return count; }
    void clear() override;
    std::uint32_t lastProbes() const override { return probes; }
    StoreKind kind() const override { return StoreKind::BPlusTree; }

    /** Visit keys in [lo, hi] ascending via the leaf chain. */
    std::size_t rangeScan(KeyId lo, KeyId hi,
                          const std::function<void(KeyId, Value)> &visit);

    /** Check ordering, occupancy, depth, and leaf-chain invariants. */
    bool validate() const;

    /** Tree height (1 for a lone root leaf). */
    int height() const;

  private:
    static constexpr int kFanout = 16;          // max children (internal)
    static constexpr int kLeafCap = 16;         // max entries (leaf)
    static constexpr int kMinChildren = kFanout / 2;
    static constexpr int kMinLeaf = kLeafCap / 2;

    struct Node
    {
        bool leaf = true;
        std::vector<KeyId> keys;       // separators or leaf keys
        std::vector<Value> values;     // leaf only
        std::vector<Node *> children;  // internal only
        Node *next = nullptr;          // leaf chain
    };

    static void destroy(Node *n);

    Node *findLeaf(KeyId key, std::vector<Node *> *path = nullptr,
                   std::vector<int> *slots = nullptr);
    void insertIntoParent(std::vector<Node *> &path,
                          std::vector<int> &slots, std::size_t level,
                          KeyId sep, Node *right);
    void rebalanceAfterErase(std::vector<Node *> &path,
                             std::vector<int> &slots, std::size_t level);

    bool validateNode(const Node *n, bool is_root, int depth,
                      int &leaf_depth) const;

    Node *root;
    std::size_t count = 0;
    std::uint32_t probes = 0;
};

} // namespace ddp::kv

#endif // DDP_KV_BPLUS_TREE_HH
