#include "kv/store.hh"

#include "kv/bplus_tree.hh"
#include "kv/btree.hh"
#include "kv/hash_table.hh"
#include "kv/skip_list.hh"
#include "kv/slab_lru.hh"

namespace ddp::kv {

const char *
storeKindName(StoreKind kind)
{
    switch (kind) {
      case StoreKind::HashTable: return "HashTable";
      case StoreKind::SkipList: return "SkipList";
      case StoreKind::BTree: return "BTree";
      case StoreKind::BPlusTree: return "BPlusTree";
      case StoreKind::SlabLru: return "SlabLru";
    }
    return "?";
}

std::unique_ptr<Store>
makeStore(StoreKind kind)
{
    switch (kind) {
      case StoreKind::HashTable:
        return std::make_unique<RobinHoodHashTable>();
      case StoreKind::SkipList:
        return std::make_unique<SkipListMap>();
      case StoreKind::BTree:
        return std::make_unique<BTree>();
      case StoreKind::BPlusTree:
        return std::make_unique<BPlusTree>();
      case StoreKind::SlabLru:
        return std::make_unique<SlabLruCache>();
    }
    return nullptr;
}

} // namespace ddp::kv
