#include "kv/blob_store.hh"

#include <cassert>
#include <cstring>

namespace ddp::kv {

namespace {
constexpr std::size_t kSmallestClass = 64;
} // namespace

BlobStore::BlobStore(std::size_t max_value_bytes)
{
    for (std::size_t size = kSmallestClass;; size *= 2) {
        classes.push_back(SlabClass{size, {}, {}});
        if (size >= max_value_bytes)
            break;
    }
}

std::size_t
BlobStore::classFor(std::size_t bytes) const
{
    for (std::size_t c = 0; c < classes.size(); ++c) {
        if (bytes <= classes[c].chunkSize)
            return c;
    }
    return classes.size();
}

std::uint32_t
BlobStore::store(std::size_t cls, std::string_view value)
{
    SlabClass &sc = classes[cls];
    std::uint32_t idx;
    if (!sc.freeList.empty()) {
        idx = sc.freeList.back();
        sc.freeList.pop_back();
    } else {
        idx = static_cast<std::uint32_t>(sc.chunks.size());
        sc.chunks.emplace_back();
        sc.chunks.back().bytes.resize(sc.chunkSize);
        allocated += sc.chunkSize;
    }
    Chunk &ch = sc.chunks[idx];
    std::memcpy(ch.bytes.data(), value.data(), value.size());
    ch.length = static_cast<std::uint32_t>(value.size());
    used += value.size();
    return idx;
}

void
BlobStore::release(Value loc)
{
    SlabClass &sc = classes[classOf(loc)];
    Chunk &ch = sc.chunks[chunkOf(loc)];
    used -= ch.length;
    ch.length = 0;
    sc.freeList.push_back(chunkOf(loc));
}

bool
BlobStore::put(KeyId key, std::string_view value)
{
    std::size_t cls = classFor(value.size());
    if (cls == classes.size())
        return false; // larger than the biggest slab class

    Value old;
    if (index.get(key, old)) {
        if (classOf(old) == cls) {
            // Reuse the chunk in place.
            Chunk &ch = classes[cls].chunks[chunkOf(old)];
            used -= ch.length;
            std::memcpy(ch.bytes.data(), value.data(), value.size());
            ch.length = static_cast<std::uint32_t>(value.size());
            used += value.size();
            return true;
        }
        release(old);
        --live;
        index.erase(key);
    }

    index.put(key, encode(cls, store(cls, value)));
    ++live;
    return true;
}

bool
BlobStore::get(KeyId key, std::string &out) const
{
    Value loc;
    // The robin-hood index mutates probe stats on get; cast away const
    // as the logical state is unchanged.
    auto &idx = const_cast<RobinHoodHashTable &>(index);
    if (!idx.get(key, loc))
        return false;
    const Chunk &ch = classes[classOf(loc)].chunks[chunkOf(loc)];
    out.assign(ch.bytes.data(), ch.length);
    return true;
}

bool
BlobStore::erase(KeyId key)
{
    Value loc;
    if (!index.get(key, loc))
        return false;
    release(loc);
    index.erase(key);
    --live;
    return true;
}

bool
BlobStore::append(KeyId key, std::string_view suffix)
{
    std::string current;
    if (!get(key, current))
        return false;
    current.append(suffix);
    return put(key, current);
}

void
BlobStore::clear()
{
    for (auto &sc : classes) {
        sc.chunks.clear();
        sc.freeList.clear();
    }
    index.clear();
    live = 0;
    allocated = 0;
    used = 0;
}

} // namespace ddp::kv
