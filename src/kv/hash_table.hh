/**
 * @file
 * Robin-hood open-addressing hash table store.
 *
 * Linear probing with robin-hood displacement (rich entries yield their
 * slots to poorer ones), backward-shift deletion, and power-of-two
 * growth at 70% load. Probe counts stay near-constant even at high
 * load, which is why this is the fastest backend in the store
 * comparison example.
 */

#ifndef DDP_KV_HASH_TABLE_HH
#define DDP_KV_HASH_TABLE_HH

#include <cstdint>
#include <vector>

#include "kv/store.hh"

namespace ddp::kv {

/** Robin-hood hash table implementing Store. */
class RobinHoodHashTable : public Store
{
  public:
    explicit RobinHoodHashTable(std::size_t initial_capacity = 64);

    bool get(KeyId key, Value &out) override;
    void put(KeyId key, Value value) override;
    bool erase(KeyId key) override;
    std::size_t size() const override { return count; }
    void clear() override;
    std::uint32_t lastProbes() const override { return probes; }
    StoreKind kind() const override { return StoreKind::HashTable; }

    /** Current slot count (for load-factor tests). */
    std::size_t capacity() const { return slots.size(); }

  private:
    struct Slot
    {
        KeyId key = 0;
        Value value = 0;
        bool occupied = false;
    };

    static std::uint64_t hashKey(KeyId key);
    std::size_t indexFor(std::uint64_t hash) const;
    /** Distance of the entry in @p slot from its home position. */
    std::size_t displacement(std::size_t slot) const;
    void grow();

    std::vector<Slot> slots;
    std::size_t count = 0;
    std::uint32_t probes = 0;
};

} // namespace ddp::kv

#endif // DDP_KV_HASH_TABLE_HH
