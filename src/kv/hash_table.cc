#include "kv/hash_table.hh"

#include <cassert>
#include <utility>

namespace ddp::kv {

RobinHoodHashTable::RobinHoodHashTable(std::size_t initial_capacity)
{
    std::size_t cap = 16;
    while (cap < initial_capacity)
        cap <<= 1;
    slots.resize(cap);
}

std::uint64_t
RobinHoodHashTable::hashKey(KeyId key)
{
    // Fibonacci-style 64-bit mix.
    std::uint64_t h = key + 0x9e3779b97f4a7c15ULL;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    return h ^ (h >> 31);
}

std::size_t
RobinHoodHashTable::indexFor(std::uint64_t hash) const
{
    return static_cast<std::size_t>(hash) & (slots.size() - 1);
}

std::size_t
RobinHoodHashTable::displacement(std::size_t slot) const
{
    std::size_t home = indexFor(hashKey(slots[slot].key));
    return (slot + slots.size() - home) & (slots.size() - 1);
}

bool
RobinHoodHashTable::get(KeyId key, Value &out)
{
    probes = 0;
    std::size_t idx = indexFor(hashKey(key));
    std::size_t dist = 0;
    for (;;) {
        ++probes;
        const Slot &s = slots[idx];
        if (!s.occupied)
            return false;
        if (s.key == key) {
            out = s.value;
            return true;
        }
        // Robin-hood invariant: if the resident is closer to home than
        // our probe distance, the key cannot be further along.
        if (displacement(idx) < dist)
            return false;
        idx = (idx + 1) & (slots.size() - 1);
        ++dist;
    }
}

void
RobinHoodHashTable::put(KeyId key, Value value)
{
    if ((count + 1) * 10 >= slots.size() * 7)
        grow();

    probes = 0;
    std::size_t idx = indexFor(hashKey(key));
    std::size_t dist = 0;
    KeyId cur_key = key;
    Value cur_val = value;
    bool inserting_original = true;

    for (;;) {
        ++probes;
        Slot &s = slots[idx];
        if (!s.occupied) {
            s.key = cur_key;
            s.value = cur_val;
            s.occupied = true;
            ++count;
            return;
        }
        if (inserting_original && s.key == key) {
            s.value = value;
            return;
        }
        std::size_t resident = displacement(idx);
        if (resident < dist) {
            // Evict the richer resident and continue inserting it.
            std::swap(s.key, cur_key);
            std::swap(s.value, cur_val);
            dist = resident;
            inserting_original = false;
        }
        idx = (idx + 1) & (slots.size() - 1);
        ++dist;
    }
}

bool
RobinHoodHashTable::erase(KeyId key)
{
    probes = 0;
    std::size_t idx = indexFor(hashKey(key));
    std::size_t dist = 0;
    for (;;) {
        ++probes;
        Slot &s = slots[idx];
        if (!s.occupied)
            return false;
        if (s.key == key)
            break;
        if (displacement(idx) < dist)
            return false;
        idx = (idx + 1) & (slots.size() - 1);
        ++dist;
    }

    // Backward-shift deletion: pull successors one slot closer to home
    // until we hit an empty slot or an at-home entry.
    std::size_t hole = idx;
    for (;;) {
        std::size_t next = (hole + 1) & (slots.size() - 1);
        if (!slots[next].occupied || displacement(next) == 0)
            break;
        slots[hole] = slots[next];
        hole = next;
    }
    slots[hole].occupied = false;
    --count;
    return true;
}

void
RobinHoodHashTable::clear()
{
    for (auto &s : slots)
        s.occupied = false;
    count = 0;
    probes = 0;
}

void
RobinHoodHashTable::grow()
{
    std::vector<Slot> old = std::move(slots);
    slots.assign(old.size() * 2, Slot{});
    count = 0;
    std::uint32_t saved = probes;
    for (const auto &s : old) {
        if (s.occupied)
            put(s.key, s.value);
    }
    probes = saved;
}

} // namespace ddp::kv
