/**
 * @file
 * Memcached-like slab-allocated LRU cache store.
 *
 * Entries live in a pre-allocated slab; a free list recycles slots and
 * an intrusive doubly-linked list maintains recency. When the slab is
 * exhausted the least-recently-used entry is evicted, as memcached
 * does within a slab class. The hash index is the library's own
 * robin-hood table. Unlike the other backends this store is lossy:
 * size() is bounded by its capacity and evictions() counts casualties.
 */

#ifndef DDP_KV_SLAB_LRU_HH
#define DDP_KV_SLAB_LRU_HH

#include <cstdint>
#include <vector>

#include "kv/hash_table.hh"
#include "kv/store.hh"
#include "sim/ticks.hh"

namespace ddp::kv {

/** Slab LRU cache implementing Store. */
class SlabLruCache : public Store
{
  public:
    explicit SlabLruCache(std::size_t capacity_entries = 1 << 16);

    bool get(KeyId key, Value &out) override;
    void put(KeyId key, Value value) override;
    bool erase(KeyId key) override;
    std::size_t size() const override { return live; }
    void clear() override;
    std::uint32_t lastProbes() const override { return probes; }
    StoreKind kind() const override { return StoreKind::SlabLru; }

    std::size_t capacity() const { return slab.size(); }
    std::uint64_t evictions() const { return evicted; }

    /** Key of the current LRU entry; false if empty (for tests). */
    bool lruKey(KeyId &out) const;

    // --- memcached-style timed API ------------------------------------------
    /**
     * Insert @p key with an expiry deadline (simulated time). The
     * plain Store::put() stores entries that never expire.
     */
    void putWithTtl(KeyId key, Value value, sim::Tick expires_at);

    /**
     * Timed lookup: an entry whose deadline passed counts as a miss
     * and is reclaimed on the spot (lazy expiration, as memcached
     * does).
     */
    bool get(KeyId key, Value &out, sim::Tick now);

    /**
     * Active expiration sweep: walk up to @p max_scan entries from the
     * LRU end, reclaiming expired ones. @return entries reclaimed.
     */
    std::size_t expireSweep(sim::Tick now, std::size_t max_scan);

    /** Timed-API lookup hits (get-with-now only). */
    std::uint64_t hits() const { return hitCount; }
    /** Timed-API lookup misses, including expirations. */
    std::uint64_t misses() const { return missCount; }
    /** Entries reclaimed because their TTL passed. */
    std::uint64_t expirations() const { return expired; }

    using Store::get; // keep the untimed overload visible

  private:
    static constexpr std::uint32_t kNil = ~std::uint32_t{0};

    struct Entry
    {
        KeyId key = 0;
        Value value = 0;
        /** Expiry deadline; 0 = never expires. */
        sim::Tick expiresAt = 0;
        std::uint32_t prev = kNil;
        std::uint32_t next = kNil;
    };

    void unlink(std::uint32_t slot);
    void pushMru(std::uint32_t slot);
    void evictLru();
    /** Remove @p slot entirely (index + list + free list). */
    void reclaim(std::uint32_t slot);

    std::vector<Entry> slab;
    std::vector<std::uint32_t> freeList;
    RobinHoodHashTable index; ///< key -> slot
    std::uint32_t mru = kNil;
    std::uint32_t lru = kNil;
    std::size_t live = 0;
    std::uint64_t evicted = 0;
    std::uint64_t expired = 0;
    std::uint64_t hitCount = 0;
    std::uint64_t missCount = 0;
    std::uint32_t probes = 0;
};

} // namespace ddp::kv

#endif // DDP_KV_SLAB_LRU_HH
