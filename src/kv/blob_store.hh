/**
 * @file
 * Byte-string value store (memcached-style item storage).
 *
 * The numeric Store interface is what the simulator needs, but an
 * embeddable key-value library also has to hold real payloads. The
 * BlobStore layers arbitrary byte values over the robin-hood index
 * with slab-class allocation: values are stored in per-size-class
 * slabs (64 B, 128 B, ... doubling), each slab class recycling freed
 * chunks through a free list — the essence of memcached's memory
 * management, minus the page juggling.
 */

#ifndef DDP_KV_BLOB_STORE_HH
#define DDP_KV_BLOB_STORE_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "kv/hash_table.hh"
#include "kv/store.hh"

namespace ddp::kv {

/** Key → byte-string store with slab-class value allocation. */
class BlobStore
{
  public:
    /**
     * @param max_value_bytes largest storable value; values are placed
     *        in the smallest power-of-two slab class ≥ their size.
     */
    explicit BlobStore(std::size_t max_value_bytes = 64 << 10);

    /** Insert or overwrite @p key. @return false if the value is too
     *  large for the configured classes. */
    bool put(KeyId key, std::string_view value);

    /** Look up @p key; fills @p out on hit. */
    bool get(KeyId key, std::string &out) const;

    /** Remove @p key. @return true if it was present. */
    bool erase(KeyId key);

    /** Append @p suffix to an existing value (memcached APPEND).
     *  @return false if the key is absent or the result too large. */
    bool append(KeyId key, std::string_view suffix);

    std::size_t size() const { return live; }

    /** Bytes currently allocated across all slab classes. */
    std::size_t allocatedBytes() const { return allocated; }

    /** Bytes of live values (allocated minus class-rounding waste). */
    std::size_t valueBytes() const { return used; }

    /** Number of slab classes in use. */
    std::size_t slabClasses() const { return classes.size(); }

    void clear();

  private:
    struct Chunk
    {
        std::vector<char> bytes; ///< capacity = class size
        std::uint32_t length = 0;
    };

    struct SlabClass
    {
        std::size_t chunkSize = 0;
        std::vector<Chunk> chunks;
        std::vector<std::uint32_t> freeList;
    };

    /** Class index for a value of @p bytes; classes.size() if too big. */
    std::size_t classFor(std::size_t bytes) const;

    /** Encode (class, chunk index) into one index value. */
    static Value
    encode(std::size_t cls, std::uint32_t chunk)
    {
        return (static_cast<Value>(cls) << 32) | chunk;
    }
    static std::size_t classOf(Value v) { return v >> 32; }
    static std::uint32_t
    chunkOf(Value v)
    {
        return static_cast<std::uint32_t>(v & 0xffffffff);
    }

    /** Allocate a chunk in @p cls and copy @p value in. */
    std::uint32_t store(std::size_t cls, std::string_view value);
    void release(Value loc);

    std::vector<SlabClass> classes;
    RobinHoodHashTable index; ///< key -> encoded (class, chunk)
    std::size_t live = 0;
    std::size_t allocated = 0;
    std::size_t used = 0;
};

} // namespace ddp::kv

#endif // DDP_KV_BLOB_STORE_HH
