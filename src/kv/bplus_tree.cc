#include "kv/bplus_tree.hh"

#include <algorithm>
#include <cassert>

namespace ddp::kv {

BPlusTree::BPlusTree()
{
    root = new Node{};
}

BPlusTree::~BPlusTree()
{
    destroy(root);
}

void
BPlusTree::destroy(Node *n)
{
    if (!n)
        return;
    for (Node *c : n->children)
        destroy(c);
    delete n;
}

BPlusTree::Node *
BPlusTree::findLeaf(KeyId key, std::vector<Node *> *path,
                    std::vector<int> *slots)
{
    Node *n = root;
    if (path)
        path->push_back(n);
    while (!n->leaf) {
        ++probes;
        // First separator strictly greater than key selects the child.
        auto it = std::upper_bound(n->keys.begin(), n->keys.end(), key);
        int idx = static_cast<int>(it - n->keys.begin());
        n = n->children[static_cast<std::size_t>(idx)];
        if (slots)
            slots->push_back(idx);
        if (path)
            path->push_back(n);
    }
    ++probes;
    return n;
}

bool
BPlusTree::get(KeyId key, Value &out)
{
    probes = 0;
    Node *leaf = findLeaf(key);
    auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
    if (it != leaf->keys.end() && *it == key) {
        out = leaf->values[static_cast<std::size_t>(
            it - leaf->keys.begin())];
        return true;
    }
    return false;
}

void
BPlusTree::put(KeyId key, Value value)
{
    probes = 0;
    std::vector<Node *> path;
    std::vector<int> slots;
    Node *leaf = findLeaf(key, &path, &slots);

    auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
    auto pos = static_cast<std::size_t>(it - leaf->keys.begin());
    if (it != leaf->keys.end() && *it == key) {
        leaf->values[pos] = value;
        return;
    }

    leaf->keys.insert(leaf->keys.begin() + static_cast<long>(pos), key);
    leaf->values.insert(leaf->values.begin() + static_cast<long>(pos),
                        value);
    ++count;

    if (static_cast<int>(leaf->keys.size()) <= kLeafCap)
        return;

    // Split the leaf: upper half to a new right sibling.
    auto *right = new Node{};
    std::size_t mid = leaf->keys.size() / 2;
    right->keys.assign(leaf->keys.begin() + static_cast<long>(mid),
                       leaf->keys.end());
    right->values.assign(leaf->values.begin() + static_cast<long>(mid),
                         leaf->values.end());
    leaf->keys.resize(mid);
    leaf->values.resize(mid);
    right->next = leaf->next;
    leaf->next = right;

    insertIntoParent(path, slots, path.size() - 1, right->keys.front(),
                     right);
}

void
BPlusTree::insertIntoParent(std::vector<Node *> &path,
                            std::vector<int> &slots, std::size_t level,
                            KeyId sep, Node *right)
{
    if (level == 0) {
        auto *new_root = new Node{};
        new_root->leaf = false;
        new_root->keys.push_back(sep);
        new_root->children.push_back(path[0]);
        new_root->children.push_back(right);
        root = new_root;
        return;
    }

    Node *parent = path[level - 1];
    int idx = slots[level - 1];
    parent->keys.insert(parent->keys.begin() + idx, sep);
    parent->children.insert(parent->children.begin() + idx + 1, right);

    if (static_cast<int>(parent->children.size()) <= kFanout)
        return;

    // Split the internal node; the middle separator moves up.
    auto *right_int = new Node{};
    right_int->leaf = false;
    std::size_t mid = parent->keys.size() / 2;
    KeyId sep_up = parent->keys[mid];

    right_int->keys.assign(parent->keys.begin() + static_cast<long>(mid) +
                               1,
                           parent->keys.end());
    right_int->children.assign(
        parent->children.begin() + static_cast<long>(mid) + 1,
        parent->children.end());
    parent->keys.resize(mid);
    parent->children.resize(mid + 1);

    insertIntoParent(path, slots, level - 1, sep_up, right_int);
}

bool
BPlusTree::erase(KeyId key)
{
    probes = 0;
    std::vector<Node *> path;
    std::vector<int> slots;
    Node *leaf = findLeaf(key, &path, &slots);

    auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
    if (it == leaf->keys.end() || *it != key)
        return false;
    auto pos = static_cast<std::size_t>(it - leaf->keys.begin());
    leaf->keys.erase(leaf->keys.begin() + static_cast<long>(pos));
    leaf->values.erase(leaf->values.begin() + static_cast<long>(pos));
    --count;

    if (leaf != root &&
        static_cast<int>(leaf->keys.size()) < kMinLeaf) {
        rebalanceAfterErase(path, slots, path.size() - 1);
    }
    return true;
}

void
BPlusTree::rebalanceAfterErase(std::vector<Node *> &path,
                               std::vector<int> &slots, std::size_t level)
{
    Node *node = path[level];
    if (node == root) {
        // Shrink the root when it has a single child.
        if (!root->leaf && root->children.size() == 1) {
            Node *old = root;
            root = root->children[0];
            old->children.clear();
            delete old;
        }
        return;
    }

    Node *parent = path[level - 1];
    std::size_t idx = static_cast<std::size_t>(slots[level - 1]);
    Node *left = idx > 0 ? parent->children[idx - 1] : nullptr;
    Node *right = idx + 1 < parent->children.size()
                      ? parent->children[idx + 1]
                      : nullptr;

    if (node->leaf) {
        if (left && static_cast<int>(left->keys.size()) > kMinLeaf) {
            node->keys.insert(node->keys.begin(), left->keys.back());
            node->values.insert(node->values.begin(),
                                left->values.back());
            left->keys.pop_back();
            left->values.pop_back();
            parent->keys[idx - 1] = node->keys.front();
            return;
        }
        if (right && static_cast<int>(right->keys.size()) > kMinLeaf) {
            node->keys.push_back(right->keys.front());
            node->values.push_back(right->values.front());
            right->keys.erase(right->keys.begin());
            right->values.erase(right->values.begin());
            parent->keys[idx] = right->keys.front();
            return;
        }
        // Merge with a sibling.
        if (left) {
            left->keys.insert(left->keys.end(), node->keys.begin(),
                              node->keys.end());
            left->values.insert(left->values.end(), node->values.begin(),
                                node->values.end());
            left->next = node->next;
            delete node;
            parent->keys.erase(parent->keys.begin() +
                               static_cast<long>(idx) - 1);
            parent->children.erase(parent->children.begin() +
                                   static_cast<long>(idx));
        } else {
            assert(right);
            node->keys.insert(node->keys.end(), right->keys.begin(),
                              right->keys.end());
            node->values.insert(node->values.end(), right->values.begin(),
                                right->values.end());
            node->next = right->next;
            delete right;
            parent->keys.erase(parent->keys.begin() +
                               static_cast<long>(idx));
            parent->children.erase(parent->children.begin() +
                                   static_cast<long>(idx) + 1);
        }
    } else {
        if (left &&
            static_cast<int>(left->children.size()) > kMinChildren) {
            node->keys.insert(node->keys.begin(), parent->keys[idx - 1]);
            parent->keys[idx - 1] = left->keys.back();
            left->keys.pop_back();
            node->children.insert(node->children.begin(),
                                  left->children.back());
            left->children.pop_back();
            return;
        }
        if (right &&
            static_cast<int>(right->children.size()) > kMinChildren) {
            node->keys.push_back(parent->keys[idx]);
            parent->keys[idx] = right->keys.front();
            right->keys.erase(right->keys.begin());
            node->children.push_back(right->children.front());
            right->children.erase(right->children.begin());
            return;
        }
        if (left) {
            left->keys.push_back(parent->keys[idx - 1]);
            left->keys.insert(left->keys.end(), node->keys.begin(),
                              node->keys.end());
            left->children.insert(left->children.end(),
                                  node->children.begin(),
                                  node->children.end());
            node->children.clear();
            delete node;
            parent->keys.erase(parent->keys.begin() +
                               static_cast<long>(idx) - 1);
            parent->children.erase(parent->children.begin() +
                                   static_cast<long>(idx));
        } else {
            assert(right);
            node->keys.push_back(parent->keys[idx]);
            node->keys.insert(node->keys.end(), right->keys.begin(),
                              right->keys.end());
            node->children.insert(node->children.end(),
                                  right->children.begin(),
                                  right->children.end());
            right->children.clear();
            delete right;
            parent->keys.erase(parent->keys.begin() +
                               static_cast<long>(idx));
            parent->children.erase(parent->children.begin() +
                                   static_cast<long>(idx) + 1);
        }
    }

    // Parent may now underflow.
    if (parent == root) {
        if (!root->leaf && root->children.size() == 1) {
            Node *old = root;
            root = root->children[0];
            old->children.clear();
            delete old;
        }
        return;
    }
    if (static_cast<int>(parent->children.size()) < kMinChildren)
        rebalanceAfterErase(path, slots, level - 1);
}

std::size_t
BPlusTree::rangeScan(KeyId lo, KeyId hi,
                     const std::function<void(KeyId, Value)> &visit)
{
    probes = 0;
    Node *leaf = findLeaf(lo);
    std::size_t visited = 0;
    while (leaf) {
        for (std::size_t i = 0; i < leaf->keys.size(); ++i) {
            if (leaf->keys[i] < lo)
                continue;
            if (leaf->keys[i] > hi)
                return visited;
            visit(leaf->keys[i], leaf->values[i]);
            ++visited;
        }
        ++probes;
        leaf = leaf->next;
    }
    return visited;
}

void
BPlusTree::clear()
{
    destroy(root);
    root = new Node{};
    count = 0;
    probes = 0;
}

int
BPlusTree::height() const
{
    int h = 1;
    const Node *n = root;
    while (!n->leaf) {
        n = n->children.front();
        ++h;
    }
    return h;
}

bool
BPlusTree::validate() const
{
    int leaf_depth = -1;
    if (!validateNode(root, true, 0, leaf_depth))
        return false;

    // Leaf chain must enumerate exactly the live keys in sorted order.
    const Node *n = root;
    while (!n->leaf)
        n = n->children.front();
    std::size_t seen = 0;
    KeyId prev = 0;
    bool first = true;
    for (const Node *leaf = n; leaf; leaf = leaf->next) {
        for (KeyId k : leaf->keys) {
            if (!first && k <= prev)
                return false;
            prev = k;
            first = false;
            ++seen;
        }
    }
    return seen == count;
}

bool
BPlusTree::validateNode(const Node *n, bool is_root, int depth,
                        int &leaf_depth) const
{
    if (n->leaf) {
        if (!is_root && static_cast<int>(n->keys.size()) < kMinLeaf)
            return false;
        if (static_cast<int>(n->keys.size()) > kLeafCap)
            return false;
        if (n->keys.size() != n->values.size())
            return false;
        if (leaf_depth == -1)
            leaf_depth = depth;
        return leaf_depth == depth;
    }

    if (n->children.size() != n->keys.size() + 1)
        return false;
    if (static_cast<int>(n->children.size()) > kFanout)
        return false;
    if (!is_root &&
        static_cast<int>(n->children.size()) < kMinChildren)
        return false;
    if (is_root && n->children.size() < 2)
        return false;
    for (std::size_t i = 1; i < n->keys.size(); ++i) {
        if (n->keys[i - 1] >= n->keys[i])
            return false;
    }
    for (const Node *c : n->children) {
        if (!validateNode(c, false, depth + 1, leaf_depth))
            return false;
    }
    return true;
}

} // namespace ddp::kv
