/**
 * @file
 * Common interface for the in-memory key-value store backends.
 *
 * The paper evaluates memcached plus simpler stores (HashTable, Map,
 * B-Tree, BPlusTree) under every DDP model. DDPSim implements all five
 * from scratch behind this interface. Stores are real, functional data
 * structures (the examples use them directly as an embeddable KV
 * library); the simulator additionally reads back a per-operation probe
 * count so local compute cost can be charged proportionally to the
 * structure actually traversed.
 */

#ifndef DDP_KV_STORE_HH
#define DDP_KV_STORE_HH

#include <cstdint>
#include <memory>
#include <string>

namespace ddp::kv {

using KeyId = std::uint64_t;
using Value = std::uint64_t;

/** The store backends DDPSim provides. */
enum class StoreKind
{
    HashTable, ///< robin-hood open-addressing hash table
    SkipList,  ///< skip-list ordered map
    BTree,     ///< classic B-tree
    BPlusTree, ///< B+ tree with linked leaves
    SlabLru,   ///< memcached-like slab LRU cache
};

/** Human-readable backend name. */
const char *storeKindName(StoreKind kind);

/**
 * Abstract key-value store.
 *
 * Implementations additionally report lastProbes(): the number of
 * node/slot touches the most recent operation performed, which the
 * cluster model converts into compute time.
 */
class Store
{
  public:
    virtual ~Store() = default;

    /** Look up @p key. @return true and set @p out on hit. */
    virtual bool get(KeyId key, Value &out) = 0;

    /** Insert or overwrite @p key. */
    virtual void put(KeyId key, Value value) = 0;

    /** Remove @p key. @return true if it was present. */
    virtual bool erase(KeyId key) = 0;

    /** Number of live keys. */
    virtual std::size_t size() const = 0;

    /** Drop everything. */
    virtual void clear() = 0;

    /** Probe count of the most recent get/put/erase. */
    virtual std::uint32_t lastProbes() const = 0;

    /** Backend kind. */
    virtual StoreKind kind() const = 0;

    /** Backend name (== storeKindName(kind())). */
    const char *name() const { return storeKindName(kind()); }
};

/** Construct a backend of the given kind. */
std::unique_ptr<Store> makeStore(StoreKind kind);

} // namespace ddp::kv

#endif // DDP_KV_STORE_HH
