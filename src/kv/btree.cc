#include "kv/btree.hh"

#include <algorithm>
#include <cassert>

namespace ddp::kv {

BTree::BTree()
{
    root = new Node{};
}

BTree::~BTree()
{
    destroy(root);
}

void
BTree::destroy(Node *n)
{
    if (!n)
        return;
    for (Node *c : n->children)
        destroy(c);
    delete n;
}

bool
BTree::get(KeyId key, Value &out)
{
    probes = 0;
    return searchNode(root, key, out);
}

bool
BTree::searchNode(Node *n, KeyId key, Value &out)
{
    ++probes;
    auto it = std::lower_bound(n->keys.begin(), n->keys.end(), key);
    std::size_t i = static_cast<std::size_t>(it - n->keys.begin());
    if (it != n->keys.end() && *it == key) {
        out = n->values[i];
        return true;
    }
    if (n->leaf)
        return false;
    return searchNode(n->children[i], key, out);
}

void
BTree::splitChild(Node *parent, int index)
{
    Node *child = parent->children[static_cast<std::size_t>(index)];
    auto *right = new Node{};
    right->leaf = child->leaf;

    // Median moves up; right sibling takes the upper half.
    KeyId mid_key = child->keys[kMinDegree - 1];
    Value mid_val = child->values[kMinDegree - 1];

    right->keys.assign(child->keys.begin() + kMinDegree,
                       child->keys.end());
    right->values.assign(child->values.begin() + kMinDegree,
                         child->values.end());
    child->keys.resize(kMinDegree - 1);
    child->values.resize(kMinDegree - 1);

    if (!child->leaf) {
        right->children.assign(child->children.begin() + kMinDegree,
                               child->children.end());
        child->children.resize(kMinDegree);
    }

    parent->keys.insert(parent->keys.begin() + index, mid_key);
    parent->values.insert(parent->values.begin() + index, mid_val);
    parent->children.insert(parent->children.begin() + index + 1, right);
}

void
BTree::put(KeyId key, Value value)
{
    probes = 0;
    if (static_cast<int>(root->keys.size()) == kMaxKeys) {
        auto *new_root = new Node{};
        new_root->leaf = false;
        new_root->children.push_back(root);
        root = new_root;
        splitChild(root, 0);
    }
    bool inserted = false;
    insertNonFull(root, key, value, inserted);
    if (inserted)
        ++count;
}

void
BTree::insertNonFull(Node *n, KeyId key, Value value, bool &inserted)
{
    ++probes;
    auto it = std::lower_bound(n->keys.begin(), n->keys.end(), key);
    std::size_t i = static_cast<std::size_t>(it - n->keys.begin());

    if (it != n->keys.end() && *it == key) {
        n->values[i] = value;
        inserted = false;
        return;
    }

    if (n->leaf) {
        n->keys.insert(n->keys.begin() + static_cast<long>(i), key);
        n->values.insert(n->values.begin() + static_cast<long>(i), value);
        inserted = true;
        return;
    }

    if (static_cast<int>(n->children[i]->keys.size()) == kMaxKeys) {
        splitChild(n, static_cast<int>(i));
        if (key == n->keys[i]) {
            n->values[i] = value;
            inserted = false;
            return;
        }
        if (key > n->keys[i])
            ++i;
    }
    insertNonFull(n->children[i], key, value, inserted);
}

bool
BTree::erase(KeyId key)
{
    probes = 0;
    bool removed = eraseFrom(root, key);
    if (removed)
        --count;
    if (!root->leaf && root->keys.empty()) {
        Node *old = root;
        root = root->children[0];
        old->children.clear();
        delete old;
    }
    return removed;
}

bool
BTree::eraseFrom(Node *n, KeyId key)
{
    ++probes;
    auto it = std::lower_bound(n->keys.begin(), n->keys.end(), key);
    std::size_t i = static_cast<std::size_t>(it - n->keys.begin());
    bool found = it != n->keys.end() && *it == key;

    if (found && n->leaf) {
        n->keys.erase(n->keys.begin() + static_cast<long>(i));
        n->values.erase(n->values.begin() + static_cast<long>(i));
        return true;
    }

    if (found) {
        // Internal node: replace with predecessor or successor, or merge.
        Node *left = n->children[i];
        Node *right = n->children[i + 1];
        if (static_cast<int>(left->keys.size()) > kMinKeys) {
            auto [pk, pv] = maxEntry(left);
            n->keys[i] = pk;
            n->values[i] = pv;
            return eraseFrom(left, pk);
        }
        if (static_cast<int>(right->keys.size()) > kMinKeys) {
            auto [sk, sv] = minEntry(right);
            n->keys[i] = sk;
            n->values[i] = sv;
            return eraseFrom(right, sk);
        }
        mergeChildren(n, static_cast<int>(i));
        return eraseFrom(n->children[i], key);
    }

    if (n->leaf)
        return false;

    // Ensure the child we descend into has at least kMinDegree keys.
    // fillChild may borrow or merge, shifting separators and children;
    // re-run the search in this node afterwards rather than patching
    // the index (borrowing moves the target key between siblings and
    // merging can pull it into this node).
    if (static_cast<int>(n->children[i]->keys.size()) <= kMinKeys) {
        fillChild(n, static_cast<int>(i));
        return eraseFrom(n, key);
    }
    return eraseFrom(n->children[i], key);
}

void
BTree::fillChild(Node *n, int index)
{
    std::size_t i = static_cast<std::size_t>(index);
    if (i > 0 &&
        static_cast<int>(n->children[i - 1]->keys.size()) > kMinKeys) {
        borrowFromLeft(n, index);
    } else if (i < n->children.size() - 1 &&
               static_cast<int>(n->children[i + 1]->keys.size()) >
                   kMinKeys) {
        borrowFromRight(n, index);
    } else if (i > 0) {
        mergeChildren(n, index - 1);
    } else {
        mergeChildren(n, index);
    }
}

void
BTree::borrowFromLeft(Node *n, int index)
{
    std::size_t i = static_cast<std::size_t>(index);
    Node *child = n->children[i];
    Node *left = n->children[i - 1];

    child->keys.insert(child->keys.begin(), n->keys[i - 1]);
    child->values.insert(child->values.begin(), n->values[i - 1]);
    n->keys[i - 1] = left->keys.back();
    n->values[i - 1] = left->values.back();
    left->keys.pop_back();
    left->values.pop_back();

    if (!child->leaf) {
        child->children.insert(child->children.begin(),
                               left->children.back());
        left->children.pop_back();
    }
}

void
BTree::borrowFromRight(Node *n, int index)
{
    std::size_t i = static_cast<std::size_t>(index);
    Node *child = n->children[i];
    Node *right = n->children[i + 1];

    child->keys.push_back(n->keys[i]);
    child->values.push_back(n->values[i]);
    n->keys[i] = right->keys.front();
    n->values[i] = right->values.front();
    right->keys.erase(right->keys.begin());
    right->values.erase(right->values.begin());

    if (!child->leaf) {
        child->children.push_back(right->children.front());
        right->children.erase(right->children.begin());
    }
}

void
BTree::mergeChildren(Node *n, int index)
{
    std::size_t i = static_cast<std::size_t>(index);
    Node *left = n->children[i];
    Node *right = n->children[i + 1];

    left->keys.push_back(n->keys[i]);
    left->values.push_back(n->values[i]);
    left->keys.insert(left->keys.end(), right->keys.begin(),
                      right->keys.end());
    left->values.insert(left->values.end(), right->values.begin(),
                        right->values.end());
    if (!left->leaf) {
        left->children.insert(left->children.end(),
                              right->children.begin(),
                              right->children.end());
        right->children.clear();
    }

    n->keys.erase(n->keys.begin() + index);
    n->values.erase(n->values.begin() + index);
    n->children.erase(n->children.begin() + index + 1);
    delete right;
}

std::pair<KeyId, Value>
BTree::maxEntry(Node *n)
{
    while (!n->leaf)
        n = n->children.back();
    return {n->keys.back(), n->values.back()};
}

std::pair<KeyId, Value>
BTree::minEntry(Node *n)
{
    while (!n->leaf)
        n = n->children.front();
    return {n->keys.front(), n->values.front()};
}

void
BTree::clear()
{
    destroy(root);
    root = new Node{};
    count = 0;
    probes = 0;
}

int
BTree::height() const
{
    int h = 1;
    const Node *n = root;
    while (!n->leaf) {
        n = n->children.front();
        ++h;
    }
    return h;
}

bool
BTree::validate() const
{
    int leaf_depth = -1;
    return validateNode(root, true, 0, leaf_depth, 0, 0, false, false);
}

bool
BTree::validateNode(const Node *n, bool is_root, int depth,
                    int &leaf_depth, KeyId lo, KeyId hi, bool has_lo,
                    bool has_hi) const
{
    int nkeys = static_cast<int>(n->keys.size());
    if (nkeys > kMaxKeys)
        return false;
    if (!is_root && nkeys < kMinKeys)
        return false;
    if (n->keys.size() != n->values.size())
        return false;

    for (int i = 0; i < nkeys; ++i) {
        if (i > 0 && n->keys[i - 1] >= n->keys[i])
            return false;
        if (has_lo && n->keys[i] <= lo)
            return false;
        if (has_hi && n->keys[i] >= hi)
            return false;
    }

    if (n->leaf) {
        if (!n->children.empty())
            return false;
        if (leaf_depth == -1)
            leaf_depth = depth;
        return leaf_depth == depth;
    }

    if (n->children.size() != n->keys.size() + 1)
        return false;
    for (std::size_t i = 0; i < n->children.size(); ++i) {
        KeyId child_lo = i == 0 ? lo : n->keys[i - 1];
        bool child_has_lo = i == 0 ? has_lo : true;
        KeyId child_hi = i == n->keys.size() ? hi : n->keys[i];
        bool child_has_hi = i == n->keys.size() ? has_hi : true;
        if (!validateNode(n->children[i], false, depth + 1, leaf_depth,
                          child_lo, child_hi, child_has_lo, child_has_hi))
            return false;
    }
    return true;
}

} // namespace ddp::kv
