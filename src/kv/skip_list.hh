/**
 * @file
 * Skip-list ordered map store.
 *
 * A classic Pugh skip list with geometric level distribution (p = 1/4,
 * max 16 levels) and a deterministic internal PCG stream, so identical
 * insertion sequences produce identical structure across runs. Serves
 * as the "Map" application of the paper and supports ordered iteration
 * for range scans.
 */

#ifndef DDP_KV_SKIP_LIST_HH
#define DDP_KV_SKIP_LIST_HH

#include <array>
#include <cstdint>
#include <functional>

#include "kv/store.hh"
#include "sim/random.hh"

namespace ddp::kv {

/** Skip-list map implementing Store. */
class SkipListMap : public Store
{
  public:
    explicit SkipListMap(std::uint64_t seed = 0xddf5eed);
    ~SkipListMap() override;

    SkipListMap(const SkipListMap &) = delete;
    SkipListMap &operator=(const SkipListMap &) = delete;

    bool get(KeyId key, Value &out) override;
    void put(KeyId key, Value value) override;
    bool erase(KeyId key) override;
    std::size_t size() const override { return count; }
    void clear() override;
    std::uint32_t lastProbes() const override { return probes; }
    StoreKind kind() const override { return StoreKind::SkipList; }

    /**
     * Visit keys in [lo, hi] in ascending order.
     * @return number of keys visited.
     */
    std::size_t rangeScan(KeyId lo, KeyId hi,
                          const std::function<void(KeyId, Value)> &visit);

    /** Height of the tallest node (structure tests). */
    int currentLevels() const { return levels; }

  private:
    static constexpr int kMaxLevels = 16;

    struct Node
    {
        KeyId key;
        Value value;
        int height;
        std::array<Node *, kMaxLevels> next;
    };

    Node *makeNode(KeyId key, Value value, int height);
    int randomHeight();
    /** Find predecessors of @p key at every level; fills @p update. */
    Node *findPredecessors(KeyId key,
                           std::array<Node *, kMaxLevels> &update);

    Node *head;
    int levels = 1;
    std::size_t count = 0;
    std::uint32_t probes = 0;
    sim::Pcg32 rng;
};

} // namespace ddp::kv

#endif // DDP_KV_SKIP_LIST_HH
