/**
 * @file
 * Classic B-tree store (CLRS-style, minimum degree t = 8).
 *
 * Keys and values live in internal nodes as well as leaves. Supports
 * full insert / search / erase with the standard preemptive
 * split-on-descent insertion and borrow-or-merge deletion, so the tree
 * never violates its occupancy invariants between operations. The
 * invariants are exposed via validate() for property tests.
 */

#ifndef DDP_KV_BTREE_HH
#define DDP_KV_BTREE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "kv/store.hh"

namespace ddp::kv {

/** B-tree implementing Store. */
class BTree : public Store
{
  public:
    BTree();
    ~BTree() override;

    BTree(const BTree &) = delete;
    BTree &operator=(const BTree &) = delete;

    bool get(KeyId key, Value &out) override;
    void put(KeyId key, Value value) override;
    bool erase(KeyId key) override;
    std::size_t size() const override { return count; }
    void clear() override;
    std::uint32_t lastProbes() const override { return probes; }
    StoreKind kind() const override { return StoreKind::BTree; }

    /**
     * Check all B-tree invariants (key ordering, occupancy bounds,
     * uniform leaf depth). @return true if the structure is valid.
     */
    bool validate() const;

    /** Tree height (1 for a lone root leaf). */
    int height() const;

  private:
    static constexpr int kMinDegree = 8; // t
    static constexpr int kMaxKeys = 2 * kMinDegree - 1;
    static constexpr int kMinKeys = kMinDegree - 1;

    struct Node
    {
        bool leaf = true;
        std::vector<KeyId> keys;
        std::vector<Value> values;
        std::vector<Node *> children;
    };

    static void destroy(Node *n);
    Node *root;
    std::size_t count = 0;
    std::uint32_t probes = 0;

    bool searchNode(Node *n, KeyId key, Value &out);
    void splitChild(Node *parent, int index);
    void insertNonFull(Node *n, KeyId key, Value value, bool &inserted);
    bool eraseFrom(Node *n, KeyId key);
    void fillChild(Node *n, int index);
    void borrowFromLeft(Node *n, int index);
    void borrowFromRight(Node *n, int index);
    void mergeChildren(Node *n, int index);
    static std::pair<KeyId, Value> maxEntry(Node *n);
    static std::pair<KeyId, Value> minEntry(Node *n);

    bool validateNode(const Node *n, bool is_root, int depth,
                      int &leaf_depth, KeyId lo, KeyId hi,
                      bool has_lo, bool has_hi) const;
};

} // namespace ddp::kv

#endif // DDP_KV_BTREE_HH
