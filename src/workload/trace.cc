#include "workload/trace.hh"

#include <istream>
#include <ostream>
#include <string>

namespace ddp::workload {

Trace
Trace::record(OpGenerator &gen, std::size_t count)
{
    Trace t;
    t.ops.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        t.ops.push_back(gen.next());
    return t;
}

void
Trace::save(std::ostream &os) const
{
    for (const Op &op : ops) {
        os << (op.type == OpType::Read ? 'R' : 'W') << ' ' << op.key
           << '\n';
    }
}

bool
Trace::load(std::istream &is, Trace &out)
{
    Trace t;
    std::string kind;
    std::uint64_t key;
    while (is >> kind >> key) {
        if (kind == "R")
            t.ops.push_back({OpType::Read, key});
        else if (kind == "W")
            t.ops.push_back({OpType::Write, key});
        else
            return false;
    }
    out = std::move(t);
    return true;
}

double
Trace::writeFraction() const
{
    if (ops.empty())
        return 0.0;
    std::size_t writes = 0;
    for (const Op &op : ops) {
        if (op.type == OpType::Write)
            ++writes;
    }
    return static_cast<double>(writes) / static_cast<double>(ops.size());
}

} // namespace ddp::workload
