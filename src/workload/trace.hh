/**
 * @file
 * Operation trace recording and replay.
 *
 * The paper's methodology collects Pin instruction traces of clients
 * and replays them in the timing simulator. DDPSim's analogue records
 * generated operation streams into a Trace that can be saved, loaded,
 * and replayed deterministically, so an identical request sequence can
 * be driven through every DDP model under comparison.
 */

#ifndef DDP_WORKLOAD_TRACE_HH
#define DDP_WORKLOAD_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "workload/ycsb.hh"

namespace ddp::workload {

/** A recorded operation stream. */
class Trace
{
  public:
    Trace() = default;

    /** Record @p count ops from @p gen. */
    static Trace record(OpGenerator &gen, std::size_t count);

    void append(const Op &op) { ops.push_back(op); }

    std::size_t size() const { return ops.size(); }
    bool empty() const { return ops.empty(); }
    const Op &operator[](std::size_t i) const { return ops[i]; }

    auto begin() const { return ops.begin(); }
    auto end() const { return ops.end(); }

    /** Serialize as one "R <key>" / "W <key>" line per op. */
    void save(std::ostream &os) const;

    /** Parse the save() format. @return false on malformed input. */
    static bool load(std::istream &is, Trace &out);

    /** Fraction of write ops (sanity checks in tests). */
    double writeFraction() const;

    friend bool
    operator==(const Trace &a, const Trace &b)
    {
        return a.ops == b.ops;
    }

  private:
    std::vector<Op> ops;
};

/**
 * Cyclic cursor over a Trace: replays the trace repeatedly, which lets
 * short recorded traces drive arbitrarily long simulations (as the
 * paper's 10-billion-instruction replays do).
 */
class TraceCursor
{
  public:
    explicit TraceCursor(const Trace &trace, std::size_t start = 0)
        : src(&trace), pos(trace.empty() ? 0 : start % trace.size())
    {
    }

    Op
    next()
    {
        const Op &op = (*src)[pos];
        pos = (pos + 1) % src->size();
        return op;
    }

  private:
    const Trace *src;
    std::size_t pos = 0;
};

} // namespace ddp::workload

#endif // DDP_WORKLOAD_TRACE_HH
