#include "workload/ycsb.hh"

namespace ddp::workload {

WorkloadSpec
WorkloadSpec::ycsbA(std::uint64_t keys)
{
    WorkloadSpec w;
    w.name = "ycsb-a";
    w.readFraction = 0.5;
    w.keyCount = keys;
    return w;
}

WorkloadSpec
WorkloadSpec::ycsbB(std::uint64_t keys)
{
    WorkloadSpec w;
    w.name = "ycsb-b";
    w.readFraction = 0.95;
    w.keyCount = keys;
    return w;
}

WorkloadSpec
WorkloadSpec::ycsbC(std::uint64_t keys)
{
    WorkloadSpec w;
    w.name = "ycsb-c";
    w.readFraction = 1.0;
    w.keyCount = keys;
    return w;
}

WorkloadSpec
WorkloadSpec::ycsbW(std::uint64_t keys)
{
    WorkloadSpec w;
    w.name = "ycsb-w";
    w.readFraction = 0.05;
    w.keyCount = keys;
    return w;
}

WorkloadSpec
WorkloadSpec::ycsbD(std::uint64_t keys)
{
    WorkloadSpec w;
    w.name = "ycsb-d";
    w.readFraction = 0.95;
    w.keyCount = keys;
    w.distribution = KeyDistribution::Latest;
    return w;
}

OpGenerator::OpGenerator(const WorkloadSpec &spec, std::uint64_t seed,
                         std::uint64_t stream)
    : wl(spec), rng(seed, stream), zipf(spec.keyCount, spec.zipfTheta)
{
}

Op
OpGenerator::next()
{
    Op op;
    op.type = rng.nextDouble() < wl.readFraction ? OpType::Read
                                                 : OpType::Write;
    switch (wl.distribution) {
      case KeyDistribution::Zipfian:
        op.key = zipf.next(rng);
        break;
      case KeyDistribution::Uniform:
        op.key = rng.nextU64() % wl.keyCount;
        break;
      case KeyDistribution::Latest:
        if (op.type == OpType::Write) {
            // Writes advance the insertion frontier (cyclically).
            frontier = (frontier + 1) % wl.keyCount;
            op.key = frontier;
        } else {
            // Reads favour keys just behind the frontier.
            std::uint64_t back = zipf.next(rng);
            op.key = (frontier + wl.keyCount - back % wl.keyCount) %
                     wl.keyCount;
        }
        break;
    }
    return op;
}

} // namespace ddp::workload
