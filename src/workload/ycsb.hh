/**
 * @file
 * YCSB-compatible workload specification and operation generator.
 *
 * Reproduces the workload mixes the paper evaluates with the Yahoo!
 * Cloud Serving Benchmark: workload A (50% reads / 50% writes — the
 * default), B (95/5), C (100/0), and the paper-defined workload W
 * (5/95). Key popularity follows the YCSB zipfian distribution
 * (Gray et al. rejection sampler, theta = 0.99) or uniform.
 */

#ifndef DDP_WORKLOAD_YCSB_HH
#define DDP_WORKLOAD_YCSB_HH

#include <cstdint>
#include <string>

#include "sim/random.hh"

namespace ddp::workload {

/** Operation kind issued by a client. */
enum class OpType : std::uint8_t
{
    Read,
    Write,
};

/** One client operation. */
struct Op
{
    OpType type = OpType::Read;
    std::uint64_t key = 0;

    friend bool
    operator==(const Op &a, const Op &b)
    {
        return a.type == b.type && a.key == b.key;
    }
};

/** Key popularity distribution. */
enum class KeyDistribution : std::uint8_t
{
    Zipfian,
    Uniform,
    /**
     * YCSB "latest": recently inserted keys are the most popular.
     * The generator tracks a moving insertion frontier; reads sample a
     * zipfian offset back from it, writes advance it (cyclically, so
     * the key space stays bounded).
     */
    Latest,
};

/** A workload mix over a key space. */
struct WorkloadSpec
{
    std::string name = "ycsb-a";
    double readFraction = 0.5;
    std::uint64_t keyCount = 10000;
    KeyDistribution distribution = KeyDistribution::Zipfian;
    double zipfTheta = 0.99;

    /** YCSB-A: 50% reads, 50% writes (the paper's default). */
    static WorkloadSpec ycsbA(std::uint64_t keys = 10000);
    /** YCSB-B: 95% reads, 5% writes. */
    static WorkloadSpec ycsbB(std::uint64_t keys = 10000);
    /** YCSB-C: 100% reads. */
    static WorkloadSpec ycsbC(std::uint64_t keys = 10000);
    /** Paper-defined workload W: 5% reads, 95% writes. */
    static WorkloadSpec ycsbW(std::uint64_t keys = 10000);
    /** YCSB-D: 95% reads, 5% writes, latest-distribution reads. */
    static WorkloadSpec ycsbD(std::uint64_t keys = 10000);
};

/**
 * Per-client operation generator. Each generator owns an independent
 * RNG stream so clients are statistically independent yet the whole
 * simulation stays deterministic.
 */
class OpGenerator
{
  public:
    OpGenerator(const WorkloadSpec &spec, std::uint64_t seed,
                std::uint64_t stream);

    /** Draw the next operation. */
    Op next();

    const WorkloadSpec &spec() const { return wl; }

  private:
    WorkloadSpec wl;
    sim::Pcg32 rng;
    sim::ZipfianGenerator zipf;
    /** Insertion frontier for the Latest distribution. */
    std::uint64_t frontier = 0;
};

} // namespace ddp::workload

#endif // DDP_WORKLOAD_YCSB_HH
