#include "mem/memory_device.hh"

#include <cassert>

namespace ddp::mem {

MemoryParams
MemoryParams::dram()
{
    MemoryParams p;
    p.name = "dram";
    p.channels = 4;
    p.banksPerChannel = 8;
    p.readLatency = 100 * sim::kNanosecond;
    p.writeLatency = 100 * sim::kNanosecond;
    p.lineTransfer = 4 * sim::kNanosecond;
    p.capacityBytes = 16ULL << 30;
    return p;
}

MemoryParams
MemoryParams::nvm()
{
    MemoryParams p;
    p.name = "nvm";
    p.channels = 2;
    p.banksPerChannel = 8;
    p.readLatency = 140 * sim::kNanosecond;
    p.writeLatency = 400 * sim::kNanosecond;
    p.lineTransfer = 4 * sim::kNanosecond;
    p.capacityBytes = 64ULL << 30;
    return p;
}

MemoryDevice::MemoryDevice(const MemoryParams &params)
    : cfg(params),
      banks(static_cast<std::size_t>(params.channels) *
            params.banksPerChannel),
      channelBus(params.channels),
      openRows(banks.size(), ~std::uint64_t{0})
{
    assert(cfg.channels > 0 && cfg.banksPerChannel > 0);
}

std::size_t
MemoryDevice::channelIndex(std::uint64_t addr) const
{
    // Line-interleave (64 B lines) across channels.
    return static_cast<std::size_t>((addr >> 6) % cfg.channels);
}

std::size_t
MemoryDevice::bankIndex(std::uint64_t addr) const
{
    std::size_t ch = channelIndex(addr);
    // Mix upper address bits so hot keys spread over banks.
    std::uint64_t line = addr >> 6;
    std::uint64_t h = line * 0x9e3779b97f4a7c15ULL;
    std::size_t bank = static_cast<std::size_t>(
        (h >> 32) % cfg.banksPerChannel);
    return ch * cfg.banksPerChannel + bank;
}

sim::Tick
MemoryDevice::access(sim::Tick at, std::uint64_t addr, sim::Tick latency)
{
    std::size_t bank = bankIndex(addr);

    // Open-page policy: an access hitting the bank's open row skips
    // the activate and pays only the column access.
    if (cfg.openPage) {
        std::uint64_t row = (addr >> 6) / cfg.linesPerRow;
        if (openRows[bank] == row) {
            latency = cfg.rowHitLatency;
            ++rowHitCount;
        } else {
            openRows[bank] = row;
        }
    }

    // Occupy the bank for the array access, then the channel bus for
    // the line transfer.
    sim::Tick bank_done = banks[bank].acquire(at, latency);
    return channelBus[channelIndex(addr)].acquire(bank_done,
                                                  cfg.lineTransfer);
}

sim::Tick
MemoryDevice::read(sim::Tick at, std::uint64_t addr)
{
    ++reads;
    sim::Tick done = access(at, addr, cfg.readLatency);
    if (trace)
        trace->complete(tracePid, traceTid, "read", at, done);
    return done;
}

sim::Tick
MemoryDevice::write(sim::Tick at, std::uint64_t addr)
{
    ++writes;
    sim::Tick done = access(at, addr, cfg.writeLatency);
    if (trace)
        trace->complete(tracePid, traceTid, "write", at, done);
    return done;
}

sim::Tick
MemoryDevice::queueDelay(sim::Tick at, std::uint64_t addr) const
{
    return banks[bankIndex(addr)].queueDelay(at);
}

sim::Tick
MemoryDevice::bankBusyTicks() const
{
    sim::Tick sum = 0;
    for (const auto &b : banks)
        sum += b.busyTicks();
    return sum;
}

sim::Tick
MemoryDevice::totalWaitTicks() const
{
    sim::Tick sum = 0;
    for (const auto &b : banks)
        sum += b.waitTicks();
    for (const auto &c : channelBus)
        sum += c.waitTicks();
    return sum;
}

void
MemoryDevice::reset()
{
    for (auto &b : banks)
        b.reset();
    for (auto &c : channelBus)
        c.reset();
    openRows.assign(banks.size(), ~std::uint64_t{0});
}

} // namespace ddp::mem
