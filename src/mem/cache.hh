/**
 * @file
 * Set-associative cache model and three-level hierarchy timing.
 *
 * The protocol engine charges local volatile accesses with the latency
 * of the cache level that hits. The LLC reserves a DDIO partition (10%
 * of the ways by default, per the paper's Table 5) into which NIC
 * deliveries are installed, mirroring Intel Data Direct I/O behaviour:
 * replica updates arriving from the network land directly in the LLC.
 */

#ifndef DDP_MEM_CACHE_HH
#define DDP_MEM_CACHE_HH

#include <cstdint>
#include <vector>

#include "sim/ticks.hh"

namespace ddp::mem {

/**
 * A set-associative cache directory with LRU replacement. Tracks
 * presence only (no data), which is all the timing model needs.
 */
class SetAssocCache
{
  public:
    /**
     * @param capacity_bytes total capacity
     * @param ways associativity
     * @param line_bytes line size
     * @param ddio_ways ways per set reserved for DDIO fills
     *        (0 = no partition; DDIO fills may use only these ways)
     */
    SetAssocCache(std::uint64_t capacity_bytes, std::uint32_t ways,
                  std::uint32_t line_bytes = 64, std::uint32_t ddio_ways = 0);

    /** Look up @p addr; updates LRU on hit. @return true on hit. */
    bool access(std::uint64_t addr);

    /** Non-mutating presence probe. */
    bool contains(std::uint64_t addr) const;

    /**
     * Install the line containing @p addr (CPU-side fill; may use any
     * way). Evicts the LRU line if the set is full.
     */
    void insert(std::uint64_t addr);

    /**
     * Install via DDIO (NIC delivery): restricted to the DDIO partition
     * of the set, evicting the LRU line of that partition.
     */
    void insertDdio(std::uint64_t addr);

    /** Remove the line if present (protocol invalidation). */
    void invalidate(std::uint64_t addr);

    std::uint64_t hits() const { return hitCount; }
    std::uint64_t misses() const { return missCount; }
    std::uint32_t numSets() const { return sets; }
    std::uint32_t numWays() const { return waysPerSet; }

    /** Drop all lines (crash of volatile state). */
    void clear();

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        bool valid = false;
        std::uint64_t lruStamp = 0;
    };

    std::uint64_t lineAddr(std::uint64_t addr) const;
    std::uint32_t setOf(std::uint64_t line) const;
    Line *find(std::uint64_t addr);
    const Line *find(std::uint64_t addr) const;
    void installInRange(std::uint64_t addr, std::uint32_t way_begin,
                        std::uint32_t way_end);

    std::uint32_t sets;
    std::uint32_t waysPerSet;
    std::uint32_t lineBytes;
    std::uint32_t ddioWays;
    std::vector<Line> lines;
    std::uint64_t stamp = 0;
    std::uint64_t hitCount = 0;
    std::uint64_t missCount = 0;
};

/** Latencies of the three-level hierarchy (round-trip, in ticks). */
struct CacheHierarchyParams
{
    sim::Tick l1Latency;
    sim::Tick l2Latency;
    sim::Tick llcLatency;
    std::uint64_t l1Bytes = 64ULL << 10;
    std::uint64_t l2Bytes = 512ULL << 10;
    std::uint64_t llcBytes = 40ULL << 20; // 2 MB/core x 20 cores
    std::uint32_t l1Ways = 8;
    std::uint32_t l2Ways = 8;
    std::uint32_t llcWays = 16;
    /** Fraction of LLC ways reserved for DDIO (paper: 10% of LLC). */
    std::uint32_t llcDdioWays = 2;

    /** Paper Table 5 values at 2 GHz (2 / 12 / 38 cycles RT). */
    static CacheHierarchyParams paperDefault();
};

/**
 * Three-level cache hierarchy for one server. Returns the access
 * latency of the first level that hits; a full miss additionally costs
 * the caller a DRAM access (charged by the protocol engine via the
 * MemoryDevice model).
 */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const CacheHierarchyParams &params);

    /** Result of a hierarchy lookup. */
    struct AccessResult
    {
        sim::Tick latency; ///< hierarchy traversal latency
        bool hit;          ///< true if some level hit
    };

    /** CPU-side access to @p addr; fills on miss. */
    AccessResult access(std::uint64_t addr);

    /** NIC delivery: install into the LLC DDIO partition. */
    sim::Tick deliverDdio(std::uint64_t addr);

    /** Protocol invalidation of a line in all levels. */
    void invalidate(std::uint64_t addr);

    /** Wipe all volatile contents (crash). */
    void crash();

    const SetAssocCache &l1() const { return l1Cache; }
    const SetAssocCache &l2() const { return l2Cache; }
    const SetAssocCache &llc() const { return llcCache; }

  private:
    CacheHierarchyParams cfg;
    SetAssocCache l1Cache;
    SetAssocCache l2Cache;
    SetAssocCache llcCache;
};

} // namespace ddp::mem

#endif // DDP_MEM_CACHE_HH
