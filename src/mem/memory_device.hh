/**
 * @file
 * Channel/bank memory device timing model (DRAM and NVM).
 *
 * A DRAMSim2-inspired closed-bank model: an access occupies its bank for
 * the device read/write latency and then the channel bus for the line
 * transfer. Queueing behind busy banks and channels is what produces the
 * "NVM pressure" effect the paper reports (Sec. 8.1.1): persistency
 * models that allow many outstanding persists lengthen the NVM write
 * queue, so later persist-dependent reads stall longer.
 *
 * NVM is modeled as DRAM with asymmetric read/write latencies and no
 * refresh, exactly as the paper does ("we modified the DRAMSim2 timing
 * parameters and disabled refreshes").
 */

#ifndef DDP_MEM_MEMORY_DEVICE_HH
#define DDP_MEM_MEMORY_DEVICE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/resource.hh"
#include "sim/ticks.hh"
#include "sim/trace.hh"

namespace ddp::mem {

/** Timing and geometry parameters of a memory device. */
struct MemoryParams
{
    std::string name = "mem";
    std::uint32_t channels = 1;
    std::uint32_t banksPerChannel = 8;
    sim::Tick readLatency = 100 * sim::kNanosecond;
    sim::Tick writeLatency = 100 * sim::kNanosecond;
    /** Channel transfer time for one 64 B line. */
    sim::Tick lineTransfer = 4 * sim::kNanosecond;
    std::uint64_t capacityBytes = 16ULL << 30;

    /**
     * Open-page (row-buffer) policy: banks keep their last-activated
     * row open; an access that hits the open row pays rowHitLatency
     * instead of the full array latency. Closed-page (the default)
     * matches the paper's fixed round-trip timings.
     */
    bool openPage = false;
    sim::Tick rowHitLatency = 40 * sim::kNanosecond;
    /** Lines per row (row size = 64 B x this). */
    std::uint32_t linesPerRow = 128;

    /** Paper Table 5 DRAM: 4 channels, 8 banks, 100 ns R/W RT. */
    static MemoryParams dram();
    /** Paper Table 5 NVM: 2 channels, 8 banks, 140 ns R / 400 ns W RT. */
    static MemoryParams nvm();
};

/**
 * A memory device instance. Accesses are pure timing computations; the
 * caller schedules completions on the event queue.
 */
class MemoryDevice
{
  public:
    explicit MemoryDevice(const MemoryParams &params);

    /**
     * Issue a read of one line at @p addr arriving at time @p at.
     * @return completion time (data available).
     */
    sim::Tick read(sim::Tick at, std::uint64_t addr);

    /**
     * Issue a write (persist) of one line at @p addr arriving at @p at.
     * @return completion time (write durable).
     */
    sim::Tick write(sim::Tick at, std::uint64_t addr);

    /** Backlog a new request at @p addr would see at time @p at. */
    sim::Tick queueDelay(sim::Tick at, std::uint64_t addr) const;

    const MemoryParams &params() const { return cfg; }

    std::uint64_t readCount() const { return reads; }
    std::uint64_t writeCount() const { return writes; }
    /** Row-buffer hits (open-page policy only). */
    std::uint64_t rowHits() const { return rowHitCount; }

    /** Aggregate bank busy ticks (utilization numerator). */
    sim::Tick bankBusyTicks() const;

    /** Aggregate queueing-delay ticks experienced by requests. */
    sim::Tick totalWaitTicks() const;

    /** Reset timing state between experiment phases. */
    void reset();

    /**
     * Attach a timeline recorder: every access emits a span on track
     * (@p pid, @p tid) covering arrival through completion (bank +
     * channel queueing included). nullptr detaches.
     */
    void
    setTrace(sim::TraceRecorder *t, std::uint32_t pid, std::uint32_t tid)
    {
        trace = t;
        tracePid = pid;
        traceTid = tid;
    }

  private:
    std::size_t bankIndex(std::uint64_t addr) const;
    std::size_t channelIndex(std::uint64_t addr) const;

    sim::Tick access(sim::Tick at, std::uint64_t addr, sim::Tick latency);

    MemoryParams cfg;
    sim::TraceRecorder *trace = nullptr;
    std::uint32_t tracePid = 0;
    std::uint32_t traceTid = 0;
    std::vector<sim::FifoResource> banks;
    std::vector<sim::FifoResource> channelBus;
    /** Open row per bank (open-page policy only); ~0 = none. */
    std::vector<std::uint64_t> openRows;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t rowHitCount = 0;
};

} // namespace ddp::mem

#endif // DDP_MEM_MEMORY_DEVICE_HH
