#include "mem/persist_image.hh"

#include <algorithm>
#include <cassert>

namespace ddp::mem {

PersistImage::PersistImage(std::uint64_t key_count,
                           std::uint32_t lines_per_value,
                           bool commit_records)
    : linesTotal(lines_per_value), useCommitRecords(commit_records),
      keys(key_count)
{
    assert(linesTotal >= 1);
}

std::uint64_t
PersistImage::mix(std::uint64_t x)
{
    // splitmix64 finalizer: cheap, well-distributed line/value tags.
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::uint64_t
PersistImage::checksumOf(net::Version ver) const
{
    std::uint64_t sum = mix(ver.number ^ (std::uint64_t{ver.writer} << 56));
    for (std::uint32_t i = 0; i < linesTotal; ++i)
        sum ^= mix(ver.number + i * 0x100000001b3ull + ver.writer);
    return sum;
}

std::uint64_t
PersistImage::scanChecksum(net::KeyId key) const
{
    assert(key < keys.size());
    auto it = inflight.find(key);
    if (it == inflight.end())
        return checksumOf(keys[key].intact);
    const Staging &s = it->second;
    std::uint64_t sum =
        mix(s.ver.number ^ (std::uint64_t{s.ver.writer} << 56));
    for (std::uint32_t i = 0; i < linesTotal; ++i) {
        const net::Version &tag = s.lineTags[i];
        sum ^= mix(tag.number + i * 0x100000001b3ull + tag.writer);
    }
    return sum;
}

void
PersistImage::beginWrite(net::KeyId key, net::Version ver)
{
    assert(key < keys.size());
    assert(linesTotal > 1 && "single-line values use atomicPersist()");
    // The engine coalesces persists, so at most one is in flight per
    // key; a new beginWrite before commit means the previous one was
    // abandoned by a crash whose recover() already consumed it.
    Staging s;
    s.ver = ver;
    // Double buffering: the staging slot holds the lines of an older
    // committed copy until the new value's lines overwrite them.
    s.lineTags.assign(linesTotal, keys[key].intact);
    inflight[key] = std::move(s);
}

void
PersistImage::lineWritten(net::KeyId key)
{
    auto it = inflight.find(key);
    assert(it != inflight.end());
    Staging &s = it->second;
    assert(s.written < linesTotal);
    s.lineTags[s.written] = s.ver;
    ++s.written;
}

void
PersistImage::commitWrite(net::KeyId key, bool arrival_order)
{
    auto it = inflight.find(key);
    assert(it != inflight.end());
    Staging &s = it->second;
    assert(s.written == linesTotal &&
           "commit record must be issued after all data lines persist");
    KeyImage &ki = keys[key];
    if (arrival_order || ki.intact < s.ver)
        ki.intact = s.ver;
    ki.everWritten = true;
    inflight.erase(it);
}

void
PersistImage::atomicPersist(net::KeyId key, net::Version ver,
                            bool arrival_order)
{
    assert(key < keys.size());
    KeyImage &ki = keys[key];
    if (arrival_order || ki.intact < ver)
        ki.intact = ver;
    ki.everWritten = true;
}

void
PersistImage::installCommitted(net::KeyId key, net::Version ver)
{
    assert(key < keys.size());
    // The install lands in the intact slot only. A multi-line persist
    // already staging into the other buffer keeps going — on a live
    // node (a survivor answering a restarting peer's recovery install)
    // its line completions are still scheduled and will commit or be
    // consumed by a later recover(); erasing the staging here would
    // strand those completions.
    keys[key].intact = ver;
    keys[key].everWritten = true;
}

void
PersistImage::crash()
{
    // Power loss freezes every in-flight write exactly where it
    // stands; the inflight map already is that frozen state, so there
    // is nothing to do until recover() scans each key.
}

PersistImage::Recovered
PersistImage::recover(net::KeyId key)
{
    assert(key < keys.size());
    KeyImage &ki = keys[key];
    Recovered out;
    out.version = ki.intact;

    auto it = inflight.find(key);
    if (it == inflight.end())
        return out;
    Staging s = std::move(it->second);
    inflight.erase(it);

    if (s.written == 0) {
        // The write was admitted but no line reached the medium: the
        // staging slot still holds only old bytes. Nothing torn.
        return out;
    }

    if (useCommitRecords) {
        // The commit record still points at the last intact copy. The
        // staged slot's checksum cannot match a complete copy of the
        // staged version unless every line landed.
        if (s.written < linesTotal) {
            out.tornDetected = true;
            ++tornDetectedCount;
        } else {
            out.uncommittedRollback = true;
            ++uncommittedCount;
        }
        return out; // rolled back to ki.intact
    }

    // Ablation: no commit records. Recovery scans version tags and
    // trusts the newest one it finds, torn or not.
    if (ki.intact < s.ver) {
        out.version = s.ver;
        if (s.written < linesTotal) {
            out.tornInstalled = true;
            ++tornInstallCount;
        }
        ki.intact = out.version;
        ki.everWritten = true;
    }
    return out;
}

PersistImage::Recovered
PersistImage::recoverOnDemand(net::KeyId key)
{
    ++onDemandCount;
    return recover(key);
}

std::vector<net::KeyId>
PersistImage::inflightKeys() const
{
    std::vector<net::KeyId> out;
    out.reserve(inflight.size());
    for (const auto &[key, s] : inflight)
        out.push_back(key);
    std::sort(out.begin(), out.end());
    return out;
}

net::Version
PersistImage::intactVersion(net::KeyId key) const
{
    assert(key < keys.size());
    return keys[key].intact;
}

bool
PersistImage::writing(net::KeyId key) const
{
    return inflight.find(key) != inflight.end();
}

} // namespace ddp::mem
