/**
 * @file
 * Torn-persist NVM image model: per-key double-buffered value slots
 * with a per-value commit record (checksum + version tag).
 *
 * NVM gives atomicity only at 64 B line granularity. A value spanning
 * several lines persists line by line, so a crash mid-persist leaves a
 * *torn* value: some lines carry the new version's bytes, the rest the
 * old ones. PMDK-style systems defend against this with redo/undo
 * logging or double buffering plus a commit record that is itself a
 * single-line (atomic) write. This module models that defense at the
 * fidelity the simulator needs: it tracks, per key, which durable
 * version the commit record points at and how far an in-flight
 * multi-line persist had progressed when power was lost, so recovery
 * can detect the tear by checksum mismatch and roll back to the last
 * intact version — or, with commit records disabled (ablation), trust
 * the newest version tag found in the lines and install the torn value.
 *
 * The protocol engine drives it from its NVM-write completion events:
 *
 *   beginWrite(key, v)        persist of v starts (staging slot chosen)
 *   lineWritten(key)          one data line of v became durable
 *   commitWrite(key, ...)     the commit record's single-line write
 *                             became durable; v is now the intact copy
 *
 * Single-line values bypass the protocol via atomicPersist(). A crash
 * freezes every in-flight write where it stands; recover(key) then
 * reports what post-crash recovery code would find in the medium.
 */

#ifndef DDP_MEM_PERSIST_IMAGE_HH
#define DDP_MEM_PERSIST_IMAGE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/message.hh"

namespace ddp::mem {

class PersistImage
{
  public:
    /**
     * @param key_count      number of keys the image covers
     * @param lines_per_value 64 B lines a value spans (>= 1)
     * @param commit_records  model per-value commit records; when
     *                        false, recovery trusts the newest version
     *                        tag found in the lines (torn installs)
     */
    PersistImage(std::uint64_t key_count, std::uint32_t lines_per_value,
                 bool commit_records);

    std::uint32_t linesPerValue() const { return linesTotal; }
    bool commitRecords() const { return useCommitRecords; }

    // --- Multi-line persist protocol -----------------------------------

    /** Persist of @p ver starts staging into the non-intact slot. */
    void beginWrite(net::KeyId key, net::Version ver);

    /** One 64 B data line of the staged value became durable. */
    void lineWritten(net::KeyId key);

    /**
     * The commit record's atomic single-line write became durable: the
     * staged version becomes the intact copy. @p arrival_order mirrors
     * the engine's advancePersisted() semantics: when true the staged
     * version replaces the intact one unconditionally (eventual
     * consistency applies updates in arrival order); when false only a
     * newer version wins.
     */
    void commitWrite(net::KeyId key, bool arrival_order = false);

    // --- Single-line fast path -----------------------------------------

    /** A value that fits one line persisted atomically. */
    void atomicPersist(net::KeyId key, net::Version ver,
                       bool arrival_order = false);

    // --- Recovery --------------------------------------------------------

    /**
     * Recovery (anti-entropy / voting install) writes a whole value it
     * fetched from a peer; modeled as an intact installation. Does not
     * disturb an in-flight multi-line persist of the same key — that
     * write continues in the staging buffer (relevant on survivors
     * answering a restarting peer's install).
     */
    void installCommitted(net::KeyId key, net::Version ver);

    /** Power loss: every in-flight write freezes where it stands. */
    void crash();

    /** What post-crash recovery finds for @p key. */
    struct Recovered
    {
        /** Version recovery settles on for this key. */
        net::Version version{};
        /** A torn (partially persisted) value was detected and rolled
         *  back to the last intact version via checksum mismatch. */
        bool tornDetected = false;
        /** Commit records disabled: the torn value's version tag was
         *  trusted and the torn value installed as current. */
        bool tornInstalled = false;
        /** All data lines were durable but the commit record was not:
         *  rolled back a fully written yet uncommitted value. */
        bool uncommittedRollback = false;
    };

    /**
     * Scan @p key after crash(): verify the staged slot against the
     * commit record and settle on a version. Consumes the in-flight
     * state (a second call reports the settled version, not torn).
     */
    Recovered recover(net::KeyId key);

    /**
     * Instant recovery's single-key verified load: identical scan and
     * rollback semantics to recover(), but tallied separately so a run
     * can report how much of the image was faulted in on demand rather
     * than replayed up front.
     */
    Recovered recoverOnDemand(net::KeyId key);

    /**
     * Keys whose multi-line persist was in flight (frozen by crash()),
     * sorted ascending so instant recovery's snapshot of suspect keys
     * is deterministic regardless of hash-map iteration order.
     */
    std::vector<net::KeyId> inflightKeys() const;

    /** Version the commit record points at (last intact copy). */
    net::Version intactVersion(net::KeyId key) const;

    /** True while a multi-line persist of @p key is in flight. */
    bool writing(net::KeyId key) const;

    /**
     * Checksum recovery computes over the staged slot's line tags; a
     * mismatch against checksumOf(staged version) reveals the tear.
     * Exposed for tests.
     */
    std::uint64_t scanChecksum(net::KeyId key) const;
    /** Checksum a fully persisted copy of @p ver would carry. */
    std::uint64_t checksumOf(net::Version ver) const;

    // --- Tallies (cumulative over the image's lifetime) -----------------

    std::uint64_t tornDetected() const { return tornDetectedCount; }
    std::uint64_t tornInstalls() const { return tornInstallCount; }
    std::uint64_t uncommittedRollbacks() const { return uncommittedCount; }
    std::uint64_t onDemandLoads() const { return onDemandCount; }

  private:
    struct Staging
    {
        net::Version ver{};                 ///< version being persisted
        std::vector<net::Version> lineTags; ///< per-line version tag
        std::uint32_t written = 0;          ///< lines durable so far
    };

    struct KeyImage
    {
        net::Version intact{};  ///< version the commit record points at
        bool everWritten = false;
    };

    static std::uint64_t mix(std::uint64_t x);

    std::uint32_t linesTotal;
    bool useCommitRecords;
    std::vector<KeyImage> keys;
    /** Only keys with an in-flight multi-line persist have an entry. */
    std::unordered_map<net::KeyId, Staging> inflight;

    std::uint64_t tornDetectedCount = 0;
    std::uint64_t tornInstallCount = 0;
    std::uint64_t uncommittedCount = 0;
    std::uint64_t onDemandCount = 0;
};

} // namespace ddp::mem

#endif // DDP_MEM_PERSIST_IMAGE_HH
