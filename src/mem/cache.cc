#include "mem/cache.hh"

#include <cassert>

namespace ddp::mem {

namespace {

std::uint32_t
computeSets(std::uint64_t capacity, std::uint32_t ways, std::uint32_t line)
{
    std::uint64_t s = capacity / (static_cast<std::uint64_t>(ways) * line);
    assert(s > 0);
    return static_cast<std::uint32_t>(s);
}

} // namespace

SetAssocCache::SetAssocCache(std::uint64_t capacity_bytes,
                             std::uint32_t ways, std::uint32_t line_bytes,
                             std::uint32_t ddio_ways)
    : sets(computeSets(capacity_bytes, ways, line_bytes)),
      waysPerSet(ways),
      lineBytes(line_bytes),
      ddioWays(ddio_ways),
      lines(static_cast<std::size_t>(sets) * ways)
{
    assert(ddio_ways <= ways);
}

std::uint64_t
SetAssocCache::lineAddr(std::uint64_t addr) const
{
    return addr / lineBytes;
}

std::uint32_t
SetAssocCache::setOf(std::uint64_t line) const
{
    // Multiplicative hash so strided key layouts spread over sets.
    std::uint64_t h = line * 0x9e3779b97f4a7c15ULL;
    return static_cast<std::uint32_t>((h >> 32) % sets);
}

SetAssocCache::Line *
SetAssocCache::find(std::uint64_t addr)
{
    std::uint64_t line = lineAddr(addr);
    std::uint32_t set = setOf(line);
    Line *base = &lines[static_cast<std::size_t>(set) * waysPerSet];
    for (std::uint32_t w = 0; w < waysPerSet; ++w) {
        if (base[w].valid && base[w].tag == line)
            return &base[w];
    }
    return nullptr;
}

const SetAssocCache::Line *
SetAssocCache::find(std::uint64_t addr) const
{
    return const_cast<SetAssocCache *>(this)->find(addr);
}

bool
SetAssocCache::access(std::uint64_t addr)
{
    if (Line *l = find(addr)) {
        l->lruStamp = ++stamp;
        ++hitCount;
        return true;
    }
    ++missCount;
    return false;
}

bool
SetAssocCache::contains(std::uint64_t addr) const
{
    return find(addr) != nullptr;
}

void
SetAssocCache::installInRange(std::uint64_t addr, std::uint32_t way_begin,
                              std::uint32_t way_end)
{
    std::uint64_t line = lineAddr(addr);
    std::uint32_t set = setOf(line);
    Line *base = &lines[static_cast<std::size_t>(set) * waysPerSet];

    // Already present anywhere in the set: refresh LRU.
    for (std::uint32_t w = 0; w < waysPerSet; ++w) {
        if (base[w].valid && base[w].tag == line) {
            base[w].lruStamp = ++stamp;
            return;
        }
    }

    // Prefer an invalid way in the allowed range, else evict LRU.
    Line *victim = nullptr;
    for (std::uint32_t w = way_begin; w < way_end; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (!victim || base[w].lruStamp < victim->lruStamp)
            victim = &base[w];
    }
    assert(victim);
    victim->valid = true;
    victim->tag = line;
    victim->lruStamp = ++stamp;
}

void
SetAssocCache::insert(std::uint64_t addr)
{
    installInRange(addr, 0, waysPerSet);
}

void
SetAssocCache::insertDdio(std::uint64_t addr)
{
    if (ddioWays == 0) {
        insert(addr);
        return;
    }
    // DDIO fills are confined to the last ddioWays ways of each set.
    installInRange(addr, waysPerSet - ddioWays, waysPerSet);
}

void
SetAssocCache::invalidate(std::uint64_t addr)
{
    if (Line *l = find(addr))
        l->valid = false;
}

void
SetAssocCache::clear()
{
    for (auto &l : lines)
        l.valid = false;
}

CacheHierarchyParams
CacheHierarchyParams::paperDefault()
{
    CacheHierarchyParams p;
    // 2 GHz core: 1 cycle = 500 ps. Table 5: 2 / 12 / 38 cycles RT.
    p.l1Latency = 2 * 500 * sim::kPicosecond;
    p.l2Latency = 12 * 500 * sim::kPicosecond;
    p.llcLatency = 38 * 500 * sim::kPicosecond;
    return p;
}

CacheHierarchy::CacheHierarchy(const CacheHierarchyParams &params)
    : cfg(params),
      l1Cache(params.l1Bytes, params.l1Ways),
      l2Cache(params.l2Bytes, params.l2Ways),
      llcCache(params.llcBytes, params.llcWays, 64, params.llcDdioWays)
{
}

CacheHierarchy::AccessResult
CacheHierarchy::access(std::uint64_t addr)
{
    if (l1Cache.access(addr))
        return {cfg.l1Latency, true};
    if (l2Cache.access(addr)) {
        l1Cache.insert(addr);
        return {cfg.l2Latency, true};
    }
    if (llcCache.access(addr)) {
        l2Cache.insert(addr);
        l1Cache.insert(addr);
        return {cfg.llcLatency, true};
    }
    // Full miss: fill all levels; memory latency charged by caller.
    llcCache.insert(addr);
    l2Cache.insert(addr);
    l1Cache.insert(addr);
    return {cfg.llcLatency, false};
}

sim::Tick
CacheHierarchy::deliverDdio(std::uint64_t addr)
{
    llcCache.insertDdio(addr);
    return cfg.llcLatency;
}

void
CacheHierarchy::invalidate(std::uint64_t addr)
{
    l1Cache.invalidate(addr);
    l2Cache.invalidate(addr);
    llcCache.invalidate(addr);
}

void
CacheHierarchy::crash()
{
    l1Cache.clear();
    l2Cache.clear();
    llcCache.clear();
}

} // namespace ddp::mem
