/**
 * @file
 * Transaction conflict-detection table.
 *
 * The paper's Transactional consistency layers "additional software
 * infrastructure that detects and handles transactional conflicts: at
 * every read and write ... the address is compared to those of all the
 * reads and writes in the currently-active transactions" (Sec. 5.4).
 * DDPSim models that infrastructure as a cluster-wide table of active
 * transactions' read/write sets. On a conflict the requesting (younger)
 * transaction is squashed and the client retries — one of the two
 * resolution flavors the paper mentions.
 */

#ifndef DDP_CORE_XACT_TABLE_HH
#define DDP_CORE_XACT_TABLE_HH

#include <cstdint>
#include <unordered_map>

#include "net/message.hh"
#include "sim/ticks.hh"

namespace ddp::core {

/** Cluster-wide registry of active transactions. */
class XactConflictTable
{
  public:
    /** Register transaction @p id as active. */
    void begin(std::uint64_t id);

    /**
     * Record an access and test it against all other active
     * transactions. Write/write, read/write, and write/read overlaps on
     * the same key conflict, but only while the earlier access is still
     * in protocol flight: an access older than @p window no longer
     * collides (its INV round has drained).
     *
     * @return true if the access conflicts (the caller stalls or
     *         squashes).
     */
    bool accessConflicts(std::uint64_t id, net::KeyId key, bool is_write,
                         sim::Tick now, sim::Tick window);

    /** Remove transaction @p id (committed or aborted). */
    void end(std::uint64_t id);

    std::size_t activeCount() const { return xacts.size(); }
    std::uint64_t conflictCount() const { return conflicts; }

    void clear();

  private:
    struct Sets
    {
        /** key -> time of the most recent access of that kind. */
        std::unordered_map<net::KeyId, sim::Tick> reads;
        std::unordered_map<net::KeyId, sim::Tick> writes;
    };

    std::unordered_map<std::uint64_t, Sets> xacts;
    std::uint64_t conflicts = 0;
};

} // namespace ddp::core

#endif // DDP_CORE_XACT_TABLE_HH
