#include "ddp/recovery.hh"

#include <cassert>

namespace ddp::core {

using net::KeyId;
using net::Message;
using net::MsgType;
using net::NodeId;
using net::Version;

RecoveryAgent::RecoveryAgent(NodeId self, std::uint32_t num_nodes,
                             Hooks hooks)
    : self(self), numNodes(num_nodes), hooks(std::move(hooks))
{
}

void
RecoveryAgent::startCoordinator(
    std::uint64_t key_count, std::uint32_t batch,
    std::function<void(const RecoveryReport &)> done)
{
    assert(batch > 0);
    coordinator = CoordinatorState{};
    coordinator.keyCount = key_count;
    coordinator.batchSize = batch;
    coordinator.done = std::move(done);
    coordinator.report.startedAt = hooks.now();
    batches.clear();
    launchBatches();
}

void
RecoveryAgent::launchBatches()
{
    while (coordinator.inFlight < kWindow &&
           coordinator.nextStart < coordinator.keyCount) {
        KeyId start = coordinator.nextStart;
        auto length = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(coordinator.batchSize,
                                    coordinator.keyCount - start));
        coordinator.nextStart += length;
        std::uint64_t id = coordinator.nextBatchId++;

        Batch b;
        b.start = start;
        b.length = length;
        b.best.assign(length, 0);
        b.differ.assign(length, false);
        // Seed with the coordinator's own durable versions.
        for (std::uint32_t i = 0; i < length; ++i)
            b.best[i] = pack(hooks.persistedVersion(start + i));
        batches.emplace(id, std::move(b));
        ++coordinator.inFlight;
        ++coordinator.report.batches;

        Message q;
        q.type = MsgType::RecQuery;
        q.src = self;
        q.key = start;
        q.scopeId = length; // range length rides in the scope field
        q.opId = id;
        hooks.broadcast(q);
    }

    if (coordinator.inFlight == 0 && coordinator.done) {
        coordinator.report.finishedAt = hooks.now();
        auto done = std::move(coordinator.done);
        coordinator.done = nullptr;
        done(coordinator.report);
    }
}

void
RecoveryAgent::onMessage(const Message &msg)
{
    switch (msg.type) {
      case MsgType::RecQuery:
        handleQuery(msg);
        break;
      case MsgType::RecSummary:
        handleSummary(msg);
        break;
      case MsgType::RecInstall:
        handleInstall(msg);
        break;
      case MsgType::RecAck:
        handleAck(msg);
        break;
      default:
        break;
    }
}

void
RecoveryAgent::handleQuery(const Message &msg)
{
    // Reply with the packed durable versions of the requested range.
    Message reply;
    reply.type = MsgType::RecSummary;
    reply.src = self;
    reply.key = msg.key;
    reply.scopeId = msg.scopeId;
    reply.opId = msg.opId;
    reply.cauhist.reserve(msg.scopeId);
    for (std::uint64_t i = 0; i < msg.scopeId; ++i)
        reply.cauhist.push_back(pack(hooks.persistedVersion(msg.key + i)));
    hooks.send(msg.src, std::move(reply));
}

void
RecoveryAgent::handleSummary(const Message &msg)
{
    auto it = batches.find(msg.opId);
    if (it == batches.end())
        return;
    Batch &b = it->second;
    assert(msg.cauhist.size() == b.length);

    for (std::uint32_t i = 0; i < b.length; ++i) {
        std::uint64_t theirs = msg.cauhist[i];
        if (theirs != b.best[i])
            b.differ[i] = true;
        if (unpack(b.best[i]) < unpack(theirs))
            b.best[i] = theirs;
    }
    ++b.summaries;
    if (b.summaries < numNodes - 1)
        return;

    // All replies in: count results and decide whether anyone needs an
    // install round.
    bool any_diff = false;
    for (std::uint32_t i = 0; i < b.length; ++i) {
        if (unpack(b.best[i]).number > 0)
            ++coordinator.report.keysInstalled;
        if (b.differ[i]) {
            ++coordinator.report.divergentKeys;
            any_diff = true;
        }
    }

    if (!any_diff) {
        finishBatch(msg.opId, b);
        return;
    }

    // Install the winners locally and on every replica.
    for (std::uint32_t i = 0; i < b.length; ++i) {
        Version v = unpack(b.best[i]);
        if (v.number > 0)
            hooks.install(b.start + i, v);
    }
    b.installing = true;
    Message inst;
    inst.type = MsgType::RecInstall;
    inst.src = self;
    inst.key = b.start;
    inst.scopeId = b.length;
    inst.opId = msg.opId;
    inst.hasData = true; // winners carry data lines, not just versions
    inst.cauhist = b.best;
    hooks.broadcast(inst);
}

void
RecoveryAgent::handleInstall(const Message &msg)
{
    for (std::uint64_t i = 0; i < msg.scopeId; ++i) {
        Version v = unpack(msg.cauhist[i]);
        if (v.number > 0)
            hooks.install(msg.key + i, v);
    }
    Message ack;
    ack.type = MsgType::RecAck;
    ack.src = self;
    ack.key = msg.key;
    ack.opId = msg.opId;
    hooks.send(msg.src, std::move(ack));
}

void
RecoveryAgent::handleAck(const Message &msg)
{
    auto it = batches.find(msg.opId);
    if (it == batches.end())
        return;
    Batch &b = it->second;
    ++b.acks;
    if (b.acks >= numNodes - 1)
        finishBatch(msg.opId, b);
}

void
RecoveryAgent::finishBatch(std::uint64_t batch_id, Batch &b)
{
    (void)b;
    batches.erase(batch_id);
    assert(coordinator.inFlight > 0);
    --coordinator.inFlight;
    launchBatches();
}

} // namespace ddp::core
