#include "ddp/recovery.hh"

#include <algorithm>
#include <cassert>

namespace ddp::core {

using net::KeyId;
using net::Message;
using net::MsgType;
using net::NodeId;
using net::Version;

RecoveryAgent::RecoveryAgent(NodeId self, std::uint32_t num_nodes,
                             Hooks hooks)
    : RecoveryAgent(self, num_nodes, std::move(hooks), Tuning())
{
}

RecoveryAgent::RecoveryAgent(NodeId self, std::uint32_t num_nodes,
                             Hooks hooks, Tuning tuning)
    : self(self),
      numNodes(num_nodes),
      hooks(std::move(hooks)),
      tuning(tuning)
{
}

void
RecoveryAgent::startCoordinator(
    std::uint64_t key_count, std::uint32_t batch,
    std::function<void(const RecoveryReport &)> done)
{
    assert(batch > 0);
    // Cancel any timers of a previous, aborted coordination.
    for (auto &[id, b] : batches) {
        (void)id;
        if (b.timer != sim::kNoTimer && hooks.cancelTimer)
            hooks.cancelTimer(b.timer);
    }
    coordinator = CoordinatorState{};
    coordinator.keyCount = key_count;
    coordinator.batchSize = batch;
    coordinator.unreachable.assign(numNodes, false);
    coordinator.done = std::move(done);
    coordinator.report.startedAt = hooks.now();
    batches.clear();
    launchBatches();
}

std::uint32_t
RecoveryAgent::reachableOthers() const
{
    std::uint32_t n = 0;
    for (NodeId node = 0; node < numNodes; ++node) {
        if (node != self && !coordinator.unreachable[node])
            ++n;
    }
    return n;
}

Message
RecoveryAgent::makeQuery(const Batch &b, std::uint64_t id) const
{
    Message q;
    q.type = MsgType::RecQuery;
    q.src = self;
    q.key = b.start;
    q.scopeId = b.length; // range length rides in the scope field
    q.opId = id;
    return q;
}

Message
RecoveryAgent::makeInstall(const Batch &b, std::uint64_t id) const
{
    Message inst;
    inst.type = MsgType::RecInstall;
    inst.src = self;
    inst.key = b.start;
    inst.scopeId = b.length;
    inst.opId = id;
    inst.hasData = true; // winners carry data lines, not just versions
    inst.cauhist = b.best;
    return inst;
}

void
RecoveryAgent::armBatchTimer(std::uint64_t batch_id, Batch &b)
{
    if (!hooks.startTimer || !hooks.cancelTimer)
        return; // timeouts disabled: legacy perfectly-reliable mode
    b.timer = hooks.startTimer(
        tuning.batchTimeout,
        [this, batch_id] { onBatchTimeout(batch_id); });
}

void
RecoveryAgent::markUnreachable(NodeId node)
{
    if (coordinator.unreachable[node])
        return;
    coordinator.unreachable[node] = true;
    coordinator.report.unreachable.push_back(node);
    std::sort(coordinator.report.unreachable.begin(),
              coordinator.report.unreachable.end());
}

void
RecoveryAgent::launchBatches()
{
    while (coordinator.inFlight < kWindow &&
           coordinator.nextStart < coordinator.keyCount) {
        KeyId start = coordinator.nextStart;
        auto length = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(coordinator.batchSize,
                                    coordinator.keyCount - start));
        coordinator.nextStart += length;
        std::uint64_t id = coordinator.nextBatchId++;

        Batch b;
        b.start = start;
        b.length = length;
        b.retriesLeft = tuning.maxRetries;
        b.repliedSummary.assign(numNodes, false);
        b.repliedAck.assign(numNodes, false);
        b.best.assign(length, 0);
        b.differ.assign(length, false);
        // Seed with the coordinator's own durable versions.
        for (std::uint32_t i = 0; i < length; ++i)
            b.best[i] = pack(hooks.persistedVersion(start + i));
        b.awaitSummaries = reachableOthers();

        ++coordinator.inFlight;
        ++coordinator.report.batches;

        if (b.awaitSummaries == 0) {
            // Nobody left to ask: decide from local data alone.
            auto [it, ok] = batches.emplace(id, std::move(b));
            (void)ok;
            decideBatch(id, it->second);
            continue;
        }

        Message q = makeQuery(b, id);
        for (NodeId n = 0; n < numNodes; ++n) {
            if (n != self && !coordinator.unreachable[n])
                hooks.send(n, q);
        }
        auto [it, ok] = batches.emplace(id, std::move(b));
        (void)ok;
        armBatchTimer(id, it->second);
    }

    if (coordinator.inFlight == 0 && coordinator.done) {
        coordinator.report.finishedAt = hooks.now();
        auto done = std::move(coordinator.done);
        coordinator.done = nullptr;
        done(coordinator.report);
    }
}

void
RecoveryAgent::onMessage(const Message &msg)
{
    switch (msg.type) {
      case MsgType::RecQuery:
        handleQuery(msg);
        break;
      case MsgType::RecSummary:
        handleSummary(msg);
        break;
      case MsgType::RecInstall:
        handleInstall(msg);
        break;
      case MsgType::RecAck:
        handleAck(msg);
        break;
      default:
        break;
    }
}

void
RecoveryAgent::handleQuery(const Message &msg)
{
    // Reply with the packed durable versions of the requested range.
    // Re-queries after a timeout land here again; replying afresh is
    // idempotent, so no dedup is needed on the replica side.
    Message reply;
    reply.type = MsgType::RecSummary;
    reply.src = self;
    reply.key = msg.key;
    reply.scopeId = msg.scopeId;
    reply.opId = msg.opId;
    reply.cauhist.reserve(msg.scopeId);
    for (std::uint64_t i = 0; i < msg.scopeId; ++i)
        reply.cauhist.push_back(pack(hooks.persistedVersion(msg.key + i)));
    hooks.send(msg.src, std::move(reply));
}

void
RecoveryAgent::handleSummary(const Message &msg)
{
    auto it = batches.find(msg.opId);
    if (it == batches.end())
        return;
    Batch &b = it->second;
    if (b.decided || msg.src >= numNodes || b.repliedSummary[msg.src])
        return; // late or duplicate reply
    assert(msg.cauhist.size() == b.length);
    b.repliedSummary[msg.src] = true;

    for (std::uint32_t i = 0; i < b.length; ++i) {
        std::uint64_t theirs = msg.cauhist[i];
        if (theirs != b.best[i])
            b.differ[i] = true;
        if (unpack(b.best[i]) < unpack(theirs))
            b.best[i] = theirs;
    }
    ++b.summaries;
    if (b.summaries < b.awaitSummaries)
        return;
    decideBatch(msg.opId, b);
}

void
RecoveryAgent::decideBatch(std::uint64_t batch_id, Batch &b)
{
    if (b.timer != sim::kNoTimer && hooks.cancelTimer) {
        hooks.cancelTimer(b.timer);
        b.timer = sim::kNoTimer;
    }
    b.decided = true;

    // Count results and decide whether anyone needs an install round.
    bool any_diff = false;
    for (std::uint32_t i = 0; i < b.length; ++i) {
        if (unpack(b.best[i]).number > 0)
            ++coordinator.report.keysInstalled;
        if (b.differ[i]) {
            ++coordinator.report.divergentKeys;
            any_diff = true;
        }
    }

    if (!any_diff) {
        finishBatch(batch_id, b);
        return;
    }

    // Install the winners locally and on every reachable replica.
    for (std::uint32_t i = 0; i < b.length; ++i) {
        Version v = unpack(b.best[i]);
        if (v.number > 0)
            hooks.install(b.start + i, v);
    }
    b.installing = true;
    b.retriesLeft = tuning.maxRetries;
    b.awaitAcks = reachableOthers();
    if (b.awaitAcks == 0) {
        finishBatch(batch_id, b);
        return;
    }
    Message inst = makeInstall(b, batch_id);
    for (NodeId n = 0; n < numNodes; ++n) {
        if (n != self && !coordinator.unreachable[n])
            hooks.send(n, inst);
    }
    armBatchTimer(batch_id, b);
}

void
RecoveryAgent::handleInstall(const Message &msg)
{
    // Idempotent: re-installs after a lost ack write the same winners.
    for (std::uint64_t i = 0; i < msg.scopeId; ++i) {
        Version v = unpack(msg.cauhist[i]);
        if (v.number > 0)
            hooks.install(msg.key + i, v);
    }
    Message ack;
    ack.type = MsgType::RecAck;
    ack.src = self;
    ack.key = msg.key;
    ack.opId = msg.opId;
    hooks.send(msg.src, std::move(ack));
}

void
RecoveryAgent::handleAck(const Message &msg)
{
    auto it = batches.find(msg.opId);
    if (it == batches.end())
        return;
    Batch &b = it->second;
    if (!b.installing || msg.src >= numNodes || b.repliedAck[msg.src])
        return; // stray or duplicate ack
    b.repliedAck[msg.src] = true;
    ++b.acks;
    if (b.acks >= b.awaitAcks)
        finishBatch(msg.opId, b);
}

void
RecoveryAgent::onBatchTimeout(std::uint64_t batch_id)
{
    auto it = batches.find(batch_id);
    if (it == batches.end())
        return;
    Batch &b = it->second;
    b.timer = sim::kNoTimer;
    ++coordinator.report.timeouts;

    const std::vector<bool> &replied =
        b.installing ? b.repliedAck : b.repliedSummary;
    std::vector<NodeId> missing;
    for (NodeId n = 0; n < numNodes; ++n) {
        if (n != self && !coordinator.unreachable[n] && !replied[n])
            missing.push_back(n);
    }

    if (missing.empty()) {
        // Every reachable replica answered, but the batch's completion
        // threshold was fixed at launch, before some replica was
        // declared unreachable by a sibling batch. Complete from the
        // answers at hand.
        if (!b.installing) {
            if (1 + b.summaries < quorum())
                ++coordinator.report.quorumFailures;
            decideBatch(batch_id, b);
        } else {
            finishBatch(batch_id, b);
        }
        return;
    }

    if (b.retriesLeft > 0) {
        --b.retriesLeft;
        Message m = b.installing ? makeInstall(b, batch_id)
                                 : makeQuery(b, batch_id);
        for (NodeId n : missing) {
            hooks.send(n, m);
            ++coordinator.report.retries;
        }
        armBatchTimer(batch_id, b);
        return;
    }

    // Retries exhausted: declare the silent replicas unreachable and
    // complete the batch from the answers at hand.
    for (NodeId n : missing)
        markUnreachable(n);
    ++coordinator.report.quorumBatches;

    if (!b.installing) {
        if (1 + b.summaries < quorum())
            ++coordinator.report.quorumFailures;
        decideBatch(batch_id, b);
        return;
    }
    finishBatch(batch_id, b);
}

void
RecoveryAgent::finishBatch(std::uint64_t batch_id, Batch &b)
{
    if (b.timer != sim::kNoTimer && hooks.cancelTimer) {
        hooks.cancelTimer(b.timer);
        b.timer = sim::kNoTimer;
    }
    batches.erase(batch_id);
    assert(coordinator.inFlight > 0);
    --coordinator.inFlight;
    launchBatches();
}

} // namespace ddp::core
