/**
 * @file
 * Vector clocks as the causal-history (cauhist) encoding.
 *
 * The paper attaches to every Causal-consistency UPD the causal history
 * of the write. DDPSim encodes that history compactly as a per-server
 * vector clock: entry i counts the writes originating at server i that
 * are in the update's happens-before past. A replica may apply an
 * update once its own applied-clock dominates the update's
 * dependencies.
 */

#ifndef DDP_CORE_VECTOR_CLOCK_HH
#define DDP_CORE_VECTOR_CLOCK_HH

#include <cstdint>
#include <vector>

namespace ddp::core {

/** A fixed-width vector clock over the cluster's servers. */
class VectorClock
{
  public:
    VectorClock() = default;
    explicit VectorClock(std::size_t nodes) : counts(nodes, 0) {}

    std::size_t size() const { return counts.size(); }

    std::uint64_t operator[](std::size_t i) const { return counts[i]; }
    std::uint64_t &operator[](std::size_t i) { return counts[i]; }

    /** this >= other component-wise. */
    bool
    dominates(const VectorClock &other) const
    {
        for (std::size_t i = 0; i < counts.size(); ++i) {
            if (counts[i] < other.counts[i])
                return false;
        }
        return true;
    }

    /** Component-wise maximum. */
    void
    mergeFrom(const VectorClock &other)
    {
        for (std::size_t i = 0; i < counts.size(); ++i) {
            if (other.counts[i] > counts[i])
                counts[i] = other.counts[i];
        }
    }

    const std::vector<std::uint64_t> &raw() const { return counts; }

    /** Rebuild from a message's cauhist payload. */
    static VectorClock
    fromRaw(std::vector<std::uint64_t> raw)
    {
        VectorClock vc;
        vc.counts = std::move(raw);
        return vc;
    }

    friend bool
    operator==(const VectorClock &a, const VectorClock &b)
    {
        return a.counts == b.counts;
    }

  private:
    std::vector<std::uint64_t> counts;
};

} // namespace ddp::core

#endif // DDP_CORE_VECTOR_CLOCK_HH
