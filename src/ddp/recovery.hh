/**
 * @file
 * Message-driven crash recovery (paper Sec. 9).
 *
 * "Irrespective of the DDP model, a recovery algorithm is invoked on a
 * crash. The complexity of the recovery is higher in the weaker models
 * ... weaker DDP models may need an advanced recovery algorithm, such
 * as a voting-based one."
 *
 * RecoveryAgent implements that voting algorithm as an actual protocol
 * over the simulated fabric, so recovery time emerges from network and
 * processing timing instead of a closed-form estimate:
 *
 *   1. The recovery coordinator walks the key space in batches and
 *      broadcasts REC_QUERY(range).
 *   2. Every replica answers REC_SUMMARY with its packed persisted
 *      versions for the range (8 B per key on the wire).
 *   3. The coordinator takes the per-key maximum. If the replicas
 *      disagree (the divergence weak models accumulate), it broadcasts
 *      REC_INSTALL with the winners; replicas install and REC_ACK.
 *   4. When every batch completes, the report is delivered and clients
 *      may resume.
 *
 * Versions are packed as (number << 8 | writer) in the summary payload;
 * node ids therefore must fit in 8 bits, which they comfortably do.
 */

#ifndef DDP_CORE_RECOVERY_HH
#define DDP_CORE_RECOVERY_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/message.hh"
#include "sim/ticks.hh"

namespace ddp::core {

/** Outcome of a simulated recovery run. */
struct RecoveryReport
{
    std::uint64_t keysInstalled = 0;  ///< keys with a non-null winner
    std::uint64_t divergentKeys = 0;  ///< keys whose replicas disagreed
    std::uint64_t batches = 0;        ///< query rounds executed
    sim::Tick startedAt = 0;
    sim::Tick finishedAt = 0;

    sim::Tick duration() const { return finishedAt - startedAt; }
};

/**
 * Per-node recovery participant. One node runs the coordinator role
 * (startCoordinator); every node answers queries and installs winners.
 * The agent is wired to its owning ProtocolNode through callbacks so it
 * stays independent of the protocol engine's internals.
 */
class RecoveryAgent
{
  public:
    struct Hooks
    {
        /** Read the locally durable version of a key. */
        std::function<net::Version(net::KeyId)> persistedVersion;
        /** Install a recovered version (volatile + durable). */
        std::function<void(net::KeyId, net::Version)> install;
        /** Send a message through the node's fabric attachment. */
        std::function<void(net::NodeId, net::Message)> send;
        /** Broadcast to every other node. */
        std::function<void(net::Message)> broadcast;
        /** Current simulated time. */
        std::function<sim::Tick()> now;
    };

    RecoveryAgent(net::NodeId self, std::uint32_t num_nodes,
                  Hooks hooks);

    /**
     * Run the voting recovery over [0, key_count) in batches of
     * @p batch keys, reporting to @p done when every batch finished.
     * Call on exactly one node, after all nodes lost volatile state.
     */
    void startCoordinator(std::uint64_t key_count, std::uint32_t batch,
                          std::function<void(const RecoveryReport &)>
                              done);

    /** Route REC_* traffic here from the protocol engine. */
    void onMessage(const net::Message &msg);

    /** True while a coordinated recovery is in flight. */
    bool active() const { return coordinator.inFlight > 0; }

    // --- Version packing (exposed for tests) ---------------------------------
    static std::uint64_t
    pack(net::Version v)
    {
        return (v.number << 8) | v.writer;
    }
    static net::Version
    unpack(std::uint64_t raw)
    {
        return net::Version{raw >> 8,
                            static_cast<net::NodeId>(raw & 0xff)};
    }

  private:
    struct Batch
    {
        net::KeyId start = 0;
        std::uint32_t length = 0;
        std::uint32_t summaries = 0;
        std::uint32_t acks = 0;
        bool installing = false;
        /** Per-key running maximum over the replies (packed). */
        std::vector<std::uint64_t> best;
        /** Whether any reply disagreed per key. */
        std::vector<bool> differ;
    };

    struct CoordinatorState
    {
        std::uint64_t keyCount = 0;
        std::uint32_t batchSize = 0;
        net::KeyId nextStart = 0;
        std::uint32_t inFlight = 0;
        std::uint64_t nextBatchId = 1;
        RecoveryReport report;
        std::function<void(const RecoveryReport &)> done;
    };

    void launchBatches();
    void handleQuery(const net::Message &msg);
    void handleSummary(const net::Message &msg);
    void handleInstall(const net::Message &msg);
    void handleAck(const net::Message &msg);
    void finishBatch(std::uint64_t batch_id, Batch &b);

    net::NodeId self;
    std::uint32_t numNodes;
    Hooks hooks;
    CoordinatorState coordinator;
    std::unordered_map<std::uint64_t, Batch> batches;

    /** Pipelined query window (batches in flight at once). */
    static constexpr std::uint32_t kWindow = 4;
};

} // namespace ddp::core

#endif // DDP_CORE_RECOVERY_HH
