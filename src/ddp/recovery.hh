/**
 * @file
 * Message-driven crash recovery (paper Sec. 9).
 *
 * "Irrespective of the DDP model, a recovery algorithm is invoked on a
 * crash. The complexity of the recovery is higher in the weaker models
 * ... weaker DDP models may need an advanced recovery algorithm, such
 * as a voting-based one."
 *
 * RecoveryAgent implements that voting algorithm as an actual protocol
 * over the simulated fabric, so recovery time emerges from network and
 * processing timing instead of a closed-form estimate:
 *
 *   1. The recovery coordinator walks the key space in batches and
 *      sends REC_QUERY(range) to every reachable replica.
 *   2. Every replica answers REC_SUMMARY with its packed persisted
 *      versions for the range (8 B per key on the wire).
 *   3. The coordinator takes the per-key maximum. If the replicas
 *      disagree (the divergence weak models accumulate), it sends
 *      REC_INSTALL with the winners; replicas install and REC_ACK.
 *   4. When every batch completes, the report is delivered and clients
 *      may resume.
 *
 * The protocol is failure-tolerant: each batch phase is guarded by a
 * cancellable timeout. On expiry the coordinator re-queries (or
 * re-installs to) exactly the replicas that have not answered, up to
 * Tuning::maxRetries; after that the missing replicas are declared
 * unreachable and the batch completes as long as a majority quorum of
 * ⌈(N+1)/2⌉ summaries (the coordinator's own included) was collected.
 * Batches that complete without a full replica set are counted as
 * quorum batches; batches that fall below even the quorum complete
 * from the data at hand and are counted as quorum failures, so the
 * coordinator always terminates and reports instead of hanging. All
 * handlers are idempotent: retransmitted or duplicated REC_* traffic
 * (a lossy fabric delivers both) is filtered per (batch, replica).
 *
 * Versions are packed as (number << 8 | writer) in the summary payload:
 * 56 bits of version number and 8 bits of writer id (see pack()).
 */

#ifndef DDP_CORE_RECOVERY_HH
#define DDP_CORE_RECOVERY_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/message.hh"
#include "sim/event_queue.hh"
#include "sim/ticks.hh"

namespace ddp::core {

/** Outcome of a simulated recovery run. */
struct RecoveryReport
{
    std::uint64_t keysInstalled = 0;  ///< keys with a non-null winner
    std::uint64_t divergentKeys = 0;  ///< keys whose replicas disagreed
    std::uint64_t batches = 0;        ///< query rounds executed
    sim::Tick startedAt = 0;
    sim::Tick finishedAt = 0;

    // --- Degraded-mode accounting ------------------------------------------
    std::uint64_t timeouts = 0;      ///< batch-phase timeouts fired
    std::uint64_t retries = 0;       ///< targeted re-queries/re-installs
    std::uint64_t quorumBatches = 0; ///< batches short of a full replica set
    /** Batches that fell below even the majority quorum (completed
     *  from the coordinator's own data; treat results as suspect). */
    std::uint64_t quorumFailures = 0;
    /** Replicas that never answered after all retries (sorted). */
    std::vector<net::NodeId> unreachable;

    sim::Tick duration() const { return finishedAt - startedAt; }
    bool degraded() const { return quorumBatches > 0 || quorumFailures > 0; }
};

/**
 * Per-node recovery participant. One node runs the coordinator role
 * (startCoordinator); every node answers queries and installs winners.
 * The agent is wired to its owning ProtocolNode through callbacks so it
 * stays independent of the protocol engine's internals.
 */
class RecoveryAgent
{
  public:
    struct Hooks
    {
        /** Read the locally durable version of a key. */
        std::function<net::Version(net::KeyId)> persistedVersion;
        /** Install a recovered version (volatile + durable). */
        std::function<void(net::KeyId, net::Version)> install;
        /** Send a message through the node's fabric attachment. */
        std::function<void(net::NodeId, net::Message)> send;
        /** Broadcast to every other node. */
        std::function<void(net::Message)> broadcast;
        /** Current simulated time. */
        std::function<sim::Tick()> now;
        /** Arm a cancellable timeout @p delay ticks from now. */
        std::function<sim::TimerId(sim::Tick, std::function<void()>)>
            startTimer;
        /** Cancel a timeout armed with startTimer. */
        std::function<void(sim::TimerId)> cancelTimer;
    };

    /** Failure-handling knobs of the coordinator role. */
    struct Tuning
    {
        /** Per-batch-phase timeout before missing replicas are
         *  re-queried (and eventually declared unreachable). */
        sim::Tick batchTimeout = 100 * sim::kMicrosecond;
        /** Targeted retry rounds per batch phase before giving a
         *  replica up as unreachable. */
        std::uint32_t maxRetries = 3;
    };

    RecoveryAgent(net::NodeId self, std::uint32_t num_nodes, Hooks hooks);
    RecoveryAgent(net::NodeId self, std::uint32_t num_nodes, Hooks hooks,
                  Tuning tuning);

    /**
     * Run the voting recovery over [0, key_count) in batches of
     * @p batch keys, reporting to @p done when every batch finished.
     * Call on exactly one node, after all nodes lost volatile state.
     * Terminates even if replicas are unreachable (see file header).
     */
    void startCoordinator(std::uint64_t key_count, std::uint32_t batch,
                          std::function<void(const RecoveryReport &)>
                              done);

    /** Route REC_* traffic here from the protocol engine. */
    void onMessage(const net::Message &msg);

    /** True while a coordinated recovery is in flight. */
    bool active() const { return coordinator.inFlight > 0; }

    /**
     * Majority quorum of summaries (coordinator's own included) a
     * batch needs to complete once its retries are exhausted.
     */
    std::uint32_t quorum() const { return numNodes / 2 + 1; }

    // --- Version packing (exposed for tests) ---------------------------------
    /** Largest version number that survives pack() unchanged. */
    static constexpr std::uint64_t kMaxPackableNumber =
        (std::uint64_t{1} << 56) - 1;

    /**
     * Pack (number, writer) into one 64-bit summary word: the low 8
     * bits carry the writer id, the high 56 bits the version number.
     * Version numbers beyond 2^56-1 saturate to kMaxPackableNumber
     * (they cannot occur in practice: at one write per nanosecond a
     * key needs two years to get there) — saturation keeps the packed
     * ordering monotonic instead of silently wrapping into the writer
     * bits. Writer ids must fit in 8 bits, which the <=255-node
     * clusters we simulate always satisfy.
     */
    static std::uint64_t
    pack(net::Version v)
    {
        std::uint64_t n = v.number <= kMaxPackableNumber
                              ? v.number
                              : kMaxPackableNumber;
        return (n << 8) | (v.writer & 0xff);
    }
    static net::Version
    unpack(std::uint64_t raw)
    {
        return net::Version{raw >> 8,
                            static_cast<net::NodeId>(raw & 0xff)};
    }

  private:
    struct Batch
    {
        net::KeyId start = 0;
        std::uint32_t length = 0;
        std::uint32_t summaries = 0; ///< distinct remote summaries
        std::uint32_t acks = 0;      ///< distinct install acks
        /** Remote summaries / acks outstanding for full completion. */
        std::uint32_t awaitSummaries = 0;
        std::uint32_t awaitAcks = 0;
        std::uint32_t retriesLeft = 0;
        bool installing = false;
        bool decided = false;
        sim::TimerId timer = sim::kNoTimer;
        /** Which replica already answered this phase (dedup). */
        std::vector<bool> repliedSummary;
        std::vector<bool> repliedAck;
        /** Per-key running maximum over the replies (packed). */
        std::vector<std::uint64_t> best;
        /** Whether any reply disagreed per key. */
        std::vector<bool> differ;
    };

    struct CoordinatorState
    {
        std::uint64_t keyCount = 0;
        std::uint32_t batchSize = 0;
        net::KeyId nextStart = 0;
        std::uint32_t inFlight = 0;
        std::uint64_t nextBatchId = 1;
        /** Replicas declared unreachable (size numNodes). */
        std::vector<bool> unreachable;
        RecoveryReport report;
        std::function<void(const RecoveryReport &)> done;
    };

    void launchBatches();
    void handleQuery(const net::Message &msg);
    void handleSummary(const net::Message &msg);
    void handleInstall(const net::Message &msg);
    void handleAck(const net::Message &msg);
    /** All (or a quorum of) summaries in: count, maybe install. */
    void decideBatch(std::uint64_t batch_id, Batch &b);
    void finishBatch(std::uint64_t batch_id, Batch &b);
    void onBatchTimeout(std::uint64_t batch_id);
    void armBatchTimer(std::uint64_t batch_id, Batch &b);
    void markUnreachable(net::NodeId node);
    /** Count of replicas currently presumed reachable (self excluded). */
    std::uint32_t reachableOthers() const;
    net::Message makeQuery(const Batch &b, std::uint64_t id) const;
    net::Message makeInstall(const Batch &b, std::uint64_t id) const;

    net::NodeId self;
    std::uint32_t numNodes;
    Hooks hooks;
    Tuning tuning;
    CoordinatorState coordinator;
    std::unordered_map<std::uint64_t, Batch> batches;

    /** Pipelined query window (batches in flight at once). */
    static constexpr std::uint32_t kWindow = 4;
};

} // namespace ddp::core

#endif // DDP_CORE_RECOVERY_HH
