/**
 * @file
 * Replica placement for partial replication.
 *
 * The paper assumes (like Hermes) that every key is replicated on all
 * nodes, noting that "reducing the number of replica nodes does not
 * change the protocols conceptually, but may affect performance".
 * DDPSim supports that reduction as a first-class knob: keys map to a
 * deterministic replica set of R out of N servers, computed
 * identically everywhere (rendezvous-style: hashed start index,
 * consecutive nodes).
 *
 * Scope of support: Linearizable, Read-Enforced, and Eventual
 * consistency work with any R. Causal consistency's vector-clock
 * cauhist encoding and Transactional consistency's coordinator-local
 * commit assume every node observes every write, so they require full
 * replication (enforced by the protocol engine).
 */

#ifndef DDP_CORE_REPLICATION_HH
#define DDP_CORE_REPLICATION_HH

#include <cassert>
#include <cstdint>

#include "net/message.hh"

namespace ddp::core {

/** Replica-set calculator for one cluster geometry. */
class ReplicaMap
{
  public:
    /**
     * @param num_nodes cluster size N
     * @param factor replicas per key R; 0 means "all nodes"
     */
    ReplicaMap(std::uint32_t num_nodes, std::uint32_t factor)
        : nodes(num_nodes),
          replicas(factor == 0 ? num_nodes : factor)
    {
        assert(nodes > 0);
        assert(replicas >= 1 && replicas <= nodes);
    }

    std::uint32_t numNodes() const { return nodes; }
    std::uint32_t factor() const { return replicas; }
    bool full() const { return replicas == nodes; }

    /** First replica of @p key. */
    net::NodeId
    home(net::KeyId key) const
    {
        std::uint64_t h = key * 0x9e3779b97f4a7c15ULL;
        return static_cast<net::NodeId>((h >> 33) % nodes);
    }

    /** The i-th replica of @p key, i in [0, factor()). */
    net::NodeId
    replica(net::KeyId key, std::uint32_t i) const
    {
        assert(i < replicas);
        return (home(key) + i) % nodes;
    }

    /** Is @p node a replica of @p key? */
    bool
    isReplica(net::KeyId key, net::NodeId node) const
    {
        if (full())
            return true;
        net::NodeId h = home(key);
        std::uint32_t offset = (node + nodes - h) % nodes;
        return offset < replicas;
    }

    /** Followers a coordinator of @p key waits for. */
    std::uint32_t
    followerCount(net::KeyId key) const
    {
        (void)key;
        return replicas - 1;
    }

    /**
     * Pick the replica that client @p client_id should use as its
     * coordinator for @p key (spreads load over the replica set).
     */
    net::NodeId
    coordinatorFor(net::KeyId key, std::uint32_t client_id) const
    {
        return replica(key, client_id % replicas);
    }

  private:
    std::uint32_t nodes;
    std::uint32_t replicas;
};

} // namespace ddp::core

#endif // DDP_CORE_REPLICATION_HH
