/**
 * @file
 * The DDP protocol engine: one replica node of the cluster.
 *
 * Implements the paper's low-latency, leaderless protocols (Sec. 5) for
 * every <consistency, persistency> binding. Following Hermes
 * terminology, the node that receives a client's request for a key is
 * that request's Coordinator and every other node is a Follower; keys
 * are replicated on all nodes.
 *
 * The engine composes two orthogonal rule sets at their interaction
 * points:
 *
 *  - the consistency model decides when an update becomes visible
 *    (INV/ACK_c/VAL_c rounds for Linearizable and Read-Enforced,
 *    buffered-until-ENDX application for Transactional, dependency-
 *    ordered UPDs for Causal, arrival-ordered lazy UPDs for Eventual);
 *
 *  - the persistency model decides when an update becomes durable
 *    (persist-before-ACK for Strict/Synchronous, decoupled
 *    ACK_p/VAL_p for Read-Enforced, deferred scope barriers for Scope,
 *    lazy background persists for Eventual) and when reads must stall
 *    for durability.
 *
 * All timing flows through the shared EventQueue; worker-core
 * occupancy, cache-hierarchy latency, NVM bank/channel queueing, and
 * NIC serialization are charged via the substrate models.
 */

#ifndef DDP_CORE_PROTOCOL_NODE_HH
#define DDP_CORE_PROTOCOL_NODE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "ddp/client_api.hh"
#include "ddp/models.hh"
#include "ddp/recovery.hh"
#include "ddp/replication.hh"
#include "ddp/vector_clock.hh"
#include "ddp/xact_table.hh"
#include "kv/store.hh"
#include "mem/cache.hh"
#include "mem/memory_device.hh"
#include "mem/persist_image.hh"
#include "net/fabric.hh"
#include "sim/event_queue.hh"
#include "sim/phase.hh"
#include "sim/resource.hh"
#include "sim/trace.hh"
#include "stats/counter.hh"

namespace ddp::core {

/** Per-node configuration (paper Table 5 defaults). */
struct NodeParams
{
    DdpModel model{};
    std::uint32_t numNodes = 5;
    /**
     * Replicas per key (0 = every node, the paper's setting). Partial
     * replication is supported for Linearizable, Read-Enforced, and
     * Eventual consistency; Causal and Transactional require full
     * replication (their metadata assumes every node sees every write).
     */
    std::uint32_t replicationFactor = 0;
    std::uint32_t workerCores = 20;
    std::uint64_t keyCount = 10000;
    kv::StoreKind storeKind = kv::StoreKind::HashTable;

    /**
     * Base CPU cost of admitting and executing a client request
     * (request parse, dispatch, response marshaling — the application
     * work a memcached-class server performs per request).
     */
    sim::Tick opProcessing = 1000 * sim::kNanosecond;
    /** CPU cost of handling one protocol message. */
    sim::Tick msgProcessing = 60 * sim::kNanosecond;
    /**
     * Extra CPU cost of receiving a Causal UPD: dependency-clock
     * comparison and buffer management (cauhist enforcement is the
     * implementability cost Table 4 charges the Causal rows).
     */
    sim::Tick causalUpdOverhead = 60 * sim::kNanosecond;
    /**
     * CPU cost of re-admitting an operation after a stall wake-up.
     * Parked requests re-execute their checks when the key state
     * changes; under hot-key contention this wasted work grows with
     * the client count (the read/write conflict effect of Fig. 7).
     */
    sim::Tick stallRetryCost = 100 * sim::kNanosecond;
    /**
     * Transactional conflicts first stall-and-retry this many times
     * (the paper's "stall" flavor) before squashing the transaction
     * (the "squash" flavor).
     */
    std::uint32_t xactConflictRetries = 4;
    /** Delay between transactional conflict retries. */
    sim::Tick xactConflictRetryDelay = 500 * sim::kNanosecond;

    /**
     * Write-pending-queue coalescing of NVM persists (DESIGN.md §5.3).
     * Disable to ablate: every persist then issues its own NVM write
     * and hot keys serialize their bank.
     */
    bool persistCoalescing = true;

    /**
     * 64 B lines a value spans. NVM only persists a single line
     * atomically; a multi-line value persists line by line and a crash
     * mid-persist leaves a *torn* copy. 1 (default) keeps the classic
     * atomic-persist model. Values > 1 require persistCoalescing.
     */
    std::uint32_t valueLines = 1;
    /**
     * Guard every multi-line value with a per-value commit record
     * (checksum + version tag, itself a single-line atomic write
     * issued only after all data lines are durable). Recovery then
     * detects torn values by checksum mismatch and rolls back to the
     * last intact copy. Disable to ablate: recovery trusts the newest
     * version tag it finds and installs torn values.
     */
    bool commitRecords = true;

    /**
     * Durability gating of causal applies under Strict/Synchronous
     * persistency (DESIGN.md §5.5). Disable to ablate: UPDs then apply
     * as soon as their dependencies are *visible*, eliminating the
     * buffering the paper measures in Sec. 8.1.2.
     */
    bool causalDurableGating = true;
    /**
     * How long an access keeps colliding with other transactions'
     * accesses to the same key: the time the request is open in a
     * worker's processing pipeline, where the paper's conflict check
     * compares addresses. (A whole-transaction-lifetime window would
     * serialize every hot zipfian key and contradicts the paper's own
     * ~30% conflict rate at high throughput; see DESIGN.md §5.)
     */
    sim::Tick xactConflictWindow = 250 * sim::kNanosecond;
    /** CPU cost per store node/slot probe. */
    sim::Tick probeCost = 15 * sim::kNanosecond;
    /** Propagation laziness of Eventual consistency UPDs. */
    sim::Tick lazyUpdDelay = 5 * sim::kMicrosecond;
    /** Persist laziness of Eventual persistency. */
    sim::Tick lazyPersistDelay = 5 * sim::kMicrosecond;

    /**
     * Instant recovery (MM-DIRECT style): keys the background backfill
     * faults in per batch, and the interval between batches. The
     * request stream effectively prioritizes hot keys ahead of the
     * cursor because an on-demand fault-in warms a key before the
     * backfill reaches it.
     */
    std::uint32_t instantBackfillBatch = 64;
    sim::Tick instantBackfillInterval = 2 * sim::kMicrosecond;

    mem::MemoryParams nvmParams = mem::MemoryParams::nvm();
    mem::MemoryParams dramParams = mem::MemoryParams::dram();
    mem::CacheHierarchyParams cacheParams =
        mem::CacheHierarchyParams::paperDefault();

    /** Timeout/retry/quorum knobs of the crash-recovery coordinator. */
    RecoveryAgent::Tuning recoveryTuning{};
};

/**
 * One server of the distributed system: worker cores, cache hierarchy,
 * DRAM + NVM, a KV store backend, and the DDP protocol state machine.
 */
class ProtocolNode
{
  public:
    ProtocolNode(sim::EventQueue &eq, net::Fabric &fabric,
                 net::NodeId self, const NodeParams &params,
                 stats::CounterRegistry &counters,
                 XactConflictTable *xact_table);

    ProtocolNode(const ProtocolNode &) = delete;
    ProtocolNode &operator=(const ProtocolNode &) = delete;

    net::NodeId id() const { return self; }
    const NodeParams &params() const { return cfg; }
    const ReplicaMap &replicaMap() const { return rmap; }

    // --- Client API ------------------------------------------------------
    /** Issue a read of @p key at this node. */
    void clientRead(net::KeyId key, OpContext ctx, OpCompletion done);
    /** Issue a write of @p key at this node. */
    void clientWrite(net::KeyId key, OpContext ctx, OpCompletion done);
    /** Begin transaction @p xact_id (Transactional consistency only). */
    void clientInitXact(std::uint64_t xact_id, OpCompletion done);
    /** End transaction @p xact_id; @p commit false aborts it. */
    void clientEndXact(std::uint64_t xact_id, bool commit,
                       OpCompletion done);
    /** Persist scope @p scope_id (Scope persistency only). */
    void clientPersistScope(std::uint64_t scope_id, OpCompletion done);

    // --- Failure & recovery ------------------------------------------------
    /**
     * Lose all volatile state (caches, in-flight protocol state,
     * unpersisted replica versions). Durable NVM contents survive.
     * Bumps the node's epoch so stale messages and timer continuations
     * are discarded.
     */
    void crashVolatile();

    /**
     * Lose all volatile state like crashVolatile(), but *defer* the
     * durable-image scan: instead of replaying recover() over every
     * key, mark the whole key space cold and remember which keys had a
     * persist frozen in flight. Cold keys are faulted in on demand
     * (recoverOnDemand, checksum-verified) when a request or the
     * background backfill first touches them after the node re-joins
     * via beginInstantRecovery().
     */
    void crashVolatileInstant();

    /**
     * Re-join after crashVolatileInstant(): admit requests at once,
     * fault cold keys in on demand, and start the background backfill
     * that drains the rest of the image. @p freshest, when set, is
     * consulted per faulted key for the freshest version the live
     * peers hold (state transfer merged into the fault-in); @p done
     * fires when the last cold key has warmed.
     */
    void beginInstantRecovery(
        std::function<net::Version(net::KeyId)> freshest,
        std::function<void()> done);

    /** True between beginInstantRecovery() and backfill completion. */
    bool instantRecovering() const { return instantActive; }
    /** Cold keys the backfill has not yet faulted in. */
    std::uint64_t coldKeysRemaining() const { return coldRemaining; }

    /**
     * Abandon all in-flight protocol state (rounds, buffered updates,
     * stalled operations) without losing volatile replica data. Used on
     * the surviving nodes when part of the cluster crashes: timeouts
     * would abort the affected exchanges in a real deployment.
     */
    void abortInFlight();

    /** Install @p version for @p key as both volatile and durable. */
    void installRecovered(net::KeyId key, net::Version version);

    /**
     * Take the node off the network (crashed, not yet restarted) or
     * bring it back. While down every inbound message is dropped and
     * client requests are swallowed (the issuing client's request
     * timeout detects the dead coordinator and fails over). Restart
     * deliberately does NOT bump the epoch: the survivors' epoch
     * advanced in lockstep at crash time and their traffic must keep
     * flowing.
     */
    void setDown(bool down);
    bool isDown() const { return downFlag; }

    /**
     * Liveness hint about a peer, maintained by the cluster's failure
     * detector: rounds started while a peer is down only wait for
     * acknowledgments from live followers, so the surviving majority
     * keeps completing writes during the victim's downtime. The peer
     * re-joins the replica group when marked up again.
     */
    void setPeerDown(net::NodeId peer, bool down);

    /**
     * Deliver a protocol message directly, bypassing the fabric. Used
     * by replay and interleaving-exploration tooling; normal traffic
     * arrives through the fabric attachment made in the constructor.
     */
    void deliver(const net::Message &msg) { handleMessage(msg); }

    /** Latest visible version of @p key on this node. */
    net::Version visibleVersion(net::KeyId key) const;
    /** Latest locally durable version of @p key. */
    net::Version persistedVersion(net::KeyId key) const;

    std::uint32_t epoch() const { return currentEpoch; }

    // --- Introspection ------------------------------------------------------
    void setSink(EventSink *s) { sink = s; }

    /** Attach a timeline recorder; this node emits on track @p pid. */
    void
    setTrace(sim::TraceRecorder *t, std::uint32_t pid)
    {
        trace = t;
        tracePid = pid;
    }

    mem::MemoryDevice &nvm() { return nvmDev; }
    mem::MemoryDevice &dram() { return dramDev; }
    const mem::CacheHierarchy &caches() const { return hierarchy; }
    kv::Store &store() { return *backend; }

    /**
     * The node's message-driven recovery participant. One node runs
     * RecoveryAgent::startCoordinator() after a cluster-wide crash;
     * the others answer its queries automatically.
     */
    RecoveryAgent &recoveryAgent() { return *recovery; }

    /** Largest causal buffer occupancy seen (paper Sec. 8.1.2). */
    std::uint64_t causalBufferPeak() const { return causalPeak; }
    /** Current causal buffer occupancy. */
    std::size_t causalBufferSize() const { return causalBuffered; }

    /** Applied-clock snapshot (Causal consistency). */
    const VectorClock &appliedClock() const { return applied; }

    /**
     * Adopt causal progress learned through recovery state transfer:
     * merge @p clock into the applied and durable-applied clocks and
     * drain any now-satisfiable buffered UPDs. A restarted node pulled
     * every value covered by the survivors' clocks, so UPDs that
     * depend on writes from its downtime window must not buffer
     * forever waiting for deliveries it can never receive.
     */
    void adoptCausalProgress(const VectorClock &clock);

    /**
     * Adopt a peer's newer visible version after an epoch change
     * (survivor view reconciliation): volatile state only, never
     * durability. The epoch bump of a partial crash drops in-flight
     * fire-and-forget value propagation between survivors that a real
     * network would still deliver; the cluster re-aligns the survivors
     * through this instead, as a real view change does.
     */
    void adoptVisible(net::KeyId key, net::Version version);

  private:
    // --- Per-key replica state ----------------------------------------------
    struct Waiter
    {
        enum class Kind
        {
            KeyValid,      ///< reads: key not in Transient state
            WriteSlot,     ///< writes: no local pending write either
            GlobalPersist, ///< globalPersistVer >= ver
            LocalPersist,  ///< persistedVer >= ver
            KeyWarm,       ///< instant recovery: key faulted in
        };
        Kind kind;
        net::Version ver;
        std::function<void()> resume;
        /** When the request parked (for stall-phase attribution). */
        sim::Tick parkedAt = 0;
        /** Request's phase accumulator; wakeWaiters charges the stall
         *  and retry costs into it. Null for untracked waiters. */
        sim::PhaseAccum *acc = nullptr;
        /** Which phase the park time is attributed to. */
        sim::Phase stallPhase = sim::Phase::VisibilityStall;
    };

    /** Fires when a persist covering the obligation's version
     *  completes; the argument is the covering version. */
    using PersistObligation = std::function<void(net::Version)>;

    struct KeyReplica
    {
        net::Version volatileVer;      ///< latest visible version
        net::Version persistedVer;     ///< durable in local NVM
        net::Version globalPersistVer; ///< durable on all replicas
        net::Version maxSeen;          ///< version-number allocator input
        bool transient = false;        ///< INV seen, VAL pending
        net::Version transientVer;
        std::uint64_t pendingOpId = 0; ///< local write round in flight
        std::vector<Waiter> waiters;

        /**
         * Write-pending-queue coalescing state: at most one NVM write
         * per key is in flight; persists requested meanwhile merge
         * into a single follow-up write of the newest version, exactly
         * as a memory controller combines stores to one line.
         */
        bool persistBusy = false;
        net::Version activePersistVer;
        bool activeArrival = false;
        std::vector<PersistObligation> activeObligations;
        bool hasPendingPersist = false;
        net::Version pendingPersistVer;
        bool pendingArrival = false;
        std::vector<PersistObligation> pendingObligations;
    };

    // --- Coordinator rounds -------------------------------------------------
    struct Round
    {
        enum class Kind
        {
            Write,
            InitXact,
            EndXact,
            ScopePersist,
        };
        Kind kind = Kind::Write;
        net::KeyId key = 0;
        net::Version ver{};
        std::uint64_t xactId = 0;
        std::uint64_t scopeId = 0;
        std::uint32_t acksC = 0;
        std::uint32_t acksP = 0;
        /** Follower acknowledgments this round waits for. */
        std::uint32_t followersNeeded = 0;
        std::uint32_t pendingLocalPersists = 0;
        bool consistencyDone = false;
        bool persistencyDone = false;
        bool clientNotified = false;
        sim::Tick issuedAt = 0;
        /** Exactly-once identity of the originating client request
         *  (clientSeq 0 = untracked); stamped onto VALs so followers
         *  learn applied sequence numbers. */
        std::uint32_t clientId = 0;
        std::uint64_t clientSeq = 0;
        OpCompletion done;
        /** Phase charges accumulated before the round started. */
        sim::PhaseAccum phases{};
        /** When the coordinator began waiting on the round. */
        sim::Tick startedAt = 0;
        /** Phase the wait (startedAt .. completion) is charged to. */
        sim::Phase waitPhase = sim::Phase::Replication;
    };

    // --- Transaction & scope records ---------------------------------------
    struct XactWrite
    {
        net::KeyId key = 0;
        net::Version ver{};
        std::uint64_t scopeId = 0;
    };

    struct XactRecord
    {
        std::uint64_t id = 0;
        net::NodeId coordinator = 0;
        bool aborted = false;
        bool hadConflict = false;
        /** Writes buffered until the transaction commits (both at the
         *  coordinator and at followers). */
        std::vector<XactWrite> writes;
        std::uint32_t pendingPersists = 0;
        std::uint64_t endRoundId = 0;
    };


    // --- Internal helpers ----------------------------------------------------
    /** NVM address of @p key's first value line. */
    std::uint64_t addrOf(net::KeyId key) const
    {
        return key * 64 * cfg.valueLines;
    }
    /** NVM address of @p key's commit record (multi-line values). */
    std::uint64_t commitAddrOf(net::KeyId key) const;
    std::uint64_t xactLogAddr(std::uint64_t xact_id) const;

    bool isAckRoundConsistency() const;
    KeyReplica &keyState(net::KeyId key);
    const KeyReplica &keyState(net::KeyId key) const;
    net::Version allocateVersion(net::KeyId key);
    void noteVersion(net::KeyId key, net::Version ver);

    void wakeWaiters(net::KeyId key);
    bool waiterSatisfied(net::KeyId key, const KeyReplica &kr,
                         const Waiter &w) const;

    // Instant recovery (MM-DIRECT style on-demand fault-in).
    enum class KeyTemp : std::uint8_t
    {
        Warm,     ///< faulted in (or never cold); serves normally
        Cold,     ///< durable image not yet scanned for this key
        Faulting, ///< on-demand NVM load in flight
    };
    bool keyCold(net::KeyId key) const
    {
        return instantActive && keyTemp[key] != KeyTemp::Warm;
    }
    /** Consume crash-frozen staging for @p key if any (verified scan);
     *  returns the version the durable image settles on. */
    net::Version settleStaleStaging(net::KeyId key);
    /** Issue the NVM reads for one fault-in; returns the completion
     *  tick (when the slowest line arrives). */
    sim::Tick startFaultIn(net::KeyId key);
    void completeFaultIn(net::KeyId key);
    void installFaulted(net::KeyId key, net::Version ver);
    /** Arm the next background-backfill round after @p delay. */
    void scheduleBackfill(sim::Tick delay);
    void finishInstantRecovery();

    /** Charge local cache/store access; returns extra local latency. */
    sim::Tick chargeLocalAccess(net::KeyId key, bool is_write);

    net::Message makeMsg(net::MsgType type, net::KeyId key,
                         net::Version ver, std::uint64_t op_id) const;
    void sendTo(net::NodeId dst, net::Message msg);
    void broadcast(net::Message msg);
    /** Send @p msg to every *replica* of @p key except this node. */
    void multicast(net::KeyId key, net::Message msg);

    // Read path.
    struct ReadCtx;
    void execRead(net::KeyId key, std::shared_ptr<ReadCtx> rc);
    void finishRead(net::KeyId key, const std::shared_ptr<ReadCtx> &rc);

    // Write path.
    struct WriteCtx;
    void execWrite(net::KeyId key, std::shared_ptr<WriteCtx> wc);
    void startAckRoundWrite(net::KeyId key,
                            const std::shared_ptr<WriteCtx> &wc);
    void startXactWrite(net::KeyId key,
                        const std::shared_ptr<WriteCtx> &wc);
    void startPropagatedWrite(net::KeyId key,
                              const std::shared_ptr<WriteCtx> &wc);

    // Persist machinery.
    void issuePersist(net::KeyId key, net::Version ver,
                      std::uint64_t round_id, bool follower_acks,
                      net::NodeId ack_dst, std::uint64_t ack_op,
                      bool arrival_order,
                      net::NodeId causal_origin = net::kNoNode,
                      std::uint64_t causal_seq = 0,
                      std::function<void()> on_durable = {});
    void startKeyPersist(net::KeyId key, net::Version ver,
                         bool arrival_order,
                         std::vector<PersistObligation> obligations);
    void onDataLinesDurable(net::KeyId key);
    void onKeyPersistDone(net::KeyId key);

    // Exactly-once retransmission bookkeeping.
    void noteClientSeq(std::uint32_t client, std::uint64_t seq);
    std::uint32_t liveFollowers() const;
    std::uint32_t liveFollowerCount(net::KeyId key) const;

    // Coordinator round progress.
    void checkRound(std::uint64_t round_id);
    void completeWriteToClient(Round &round);

    // Message handlers (post core-occupancy).
    void handleMessage(const net::Message &msg);
    void processMessage(const net::Message &msg);
    void handleInv(const net::Message &msg);
    void handleAck(const net::Message &msg);
    void handleVal(const net::Message &msg);
    void handleUpd(const net::Message &msg);
    void handleInitX(const net::Message &msg);
    void handleEndX(const net::Message &msg);
    void handlePersistScope(const net::Message &msg);

    // Causal machinery.
    bool causalDepsSatisfied(const VectorClock &deps) const;
    void applyCausalUpd(const net::Message &msg);
    void noteCausalDurable(net::NodeId origin, std::uint64_t seq);
    void drainCausalBuffer();

    // Eventual-consistency lazy propagation.
    void enqueueLazyUpd(net::Message msg);
    void flushLazyUpds();

    // --- Members ----------------------------------------------------------
    sim::EventQueue &eq;
    net::Fabric &fabric;
    net::NodeId self;
    NodeParams cfg;
    stats::CounterRegistry &ctr;
    XactConflictTable *xactTable;
    EventSink *sink = nullptr;
    sim::TraceRecorder *trace = nullptr;
    std::uint32_t tracePid = 0;
    /** Async-span id allocator for this node's request track. */
    std::uint64_t traceSpanId = 0;

    mem::MemoryDevice nvmDev;
    mem::MemoryDevice dramDev;
    mem::CacheHierarchy hierarchy;
    std::unique_ptr<kv::Store> backend;
    sim::ResourcePool cores;

    std::vector<KeyReplica> keys;
    std::unordered_map<std::uint64_t, Round> rounds;
    std::unordered_map<std::uint64_t, XactRecord> xactRecs;
    std::unordered_map<std::uint64_t,
                       std::vector<std::pair<net::KeyId, net::Version>>>
        scopeBuffers;

    VectorClock applied;
    /**
     * Durable causal progress: entry i counts the UPDs from server i
     * whose local persists have completed, advanced contiguously.
     * Under Strict/Synchronous persistency a causal UPD may only be
     * applied once its dependencies are durable here — the buffering
     * cost the paper measures in Sec. 8.1.2.
     */
    VectorClock durableApplied;
    /** Out-of-order persist completions per origin (seq numbers). */
    std::vector<std::set<std::uint64_t>> pendingDurable;
    /**
     * Buffered out-of-order causal UPDs, one FIFO per origin: the
     * per-queue-pair in-order delivery guarantees per-origin sequence
     * order, so only queue heads ever need a dependency check.
     */
    std::vector<std::deque<net::Message>> causalBuffer;
    std::size_t causalBuffered = 0;
    std::uint64_t causalPeak = 0;

    std::vector<net::Message> lazyQueue;
    bool lazyFlushScheduled = false;

    std::unique_ptr<RecoveryAgent> recovery;
    std::uint64_t nextOpId = 1;
    std::uint32_t currentEpoch = 0;
    std::uint32_t followers;
    ReplicaMap rmap;

    /** Durable medium image: commit records + torn-persist tracking. */
    mem::PersistImage image;

    // --- Instant-recovery state -------------------------------------------
    /** True between beginInstantRecovery() and backfill completion. */
    bool instantActive = false;
    /** Per-key temperature; sized keyCount only while recovering. */
    std::vector<KeyTemp> keyTemp;
    /** Cold keys left (Faulting counts as cold until installed). */
    std::uint64_t coldRemaining = 0;
    /** Keys whose multi-line persist the crash froze mid-flight; their
     *  staging is consumed lazily by the first post-crash touch. */
    std::set<net::KeyId> staleStaging;
    /** Freshest version live peers hold, per key (state transfer). */
    std::function<net::Version(net::KeyId)> freshestFn;
    std::function<void()> recoveryDoneFn;
    /** Next key the background backfill will examine. */
    net::KeyId backfillCursor = 0;

    /** True while crashed-but-not-restarted (drops all traffic). */
    bool downFlag = false;
    /** peerUp[i] = failure detector's view of node i (self included). */
    std::vector<bool> peerUp;
    /** clientId -> highest applied client sequence number (dedup). */
    std::unordered_map<std::uint32_t, std::uint64_t> clientSeqSeen;
};

} // namespace ddp::core

#endif // DDP_CORE_PROTOCOL_NODE_HH
