/**
 * @file
 * Distributed Data Persistency (DDP) model definitions.
 *
 * A DDP model is the binding of a data consistency model with a memory
 * persistency model, written <consistency, persistency> (paper Sec. 4).
 * The consistency model defines the Visibility Point (VP) of an update
 * — when it becomes available for consumption at a replica node; the
 * persistency model defines the Durability Point (DP) — when it can no
 * longer be wiped out by a failure.
 *
 * This header also encodes the paper's Table 4 qualitative trait matrix
 * (durability, performance, programmer intuition, programmability,
 * implementability) as a queryable API, which the durability benchmark
 * validates against measured crash-injection results.
 */

#ifndef DDP_CORE_MODELS_HH
#define DDP_CORE_MODELS_HH

#include <string>
#include <vector>

namespace ddp::core {

/** Data consistency models, strictest first (paper Table 2). */
enum class Consistency
{
    Linearizable, ///< VP wrt all nodes: when the update takes place
    ReadEnforced, ///< VP wrt all nodes: before the update is read
    Transactional,///< VP wrt all nodes: at the transaction end
    Causal,       ///< VP wrt a node: after the VPs of its causal history
    Eventual,     ///< VP wrt a node: sometime in the future
};

/** Memory persistency models, strictest first (paper Table 2). */
enum class Persistency
{
    Strict,       ///< DP: when the update takes place
    Synchronous,  ///< DP: at the visibility point of the update
    ReadEnforced, ///< DP: before the update is read
    Scope,        ///< DP: before or at the scope end
    Eventual,     ///< DP: sometime in the future
};

/** A DDP model: <consistency, persistency>. */
struct DdpModel
{
    Consistency consistency = Consistency::Linearizable;
    Persistency persistency = Persistency::Synchronous;

    friend bool
    operator==(const DdpModel &a, const DdpModel &b)
    {
        return a.consistency == b.consistency &&
               a.persistency == b.persistency;
    }
};

/** Short name, e.g. "Linear" / "Causal". */
const char *consistencyName(Consistency c);
/** Short name, e.g. "Synchronous" / "Eventual". */
const char *persistencyName(Persistency p);
/** "<Causal, Synchronous>" form. */
std::string modelName(const DdpModel &model);

/** All five consistency models, strictest first. */
const std::vector<Consistency> &allConsistencies();
/** All five persistency models, strictest first. */
const std::vector<Persistency> &allPersistencies();
/** All 25 DDP models, row-major over (consistency, persistency). */
std::vector<DdpModel> allModels();

/** Three-level qualitative grade used throughout Table 4. */
enum class Level
{
    Low,
    Medium,
    High,
};

const char *levelName(Level l);

/** Paper Table 4: qualitative traits of a DDP model. */
struct ModelTraits
{
    Level durability;
    bool writesOptimized;
    bool readsOptimized;
    Level traffic;
    Level performance;
    bool monotonicReads;
    bool nonStaleReads;
    Level intuition;
    Level programmability;
    Level implementability;
};

/**
 * Traits of @p model. All 25 combinations are defined; the ten rows the
 * paper tabulates match Table 4 exactly and the rest follow the same
 * derivation rules (documented in the implementation).
 */
ModelTraits traitsOf(const DdpModel &model);

/**
 * True when @p model acknowledges a write only once it is durable, i.e.
 * the zero-loss class of Table 4: a crash at any instant loses no
 * completed write. Strict persistency always qualifies; Synchronous
 * persistency qualifies when the consistency model's completion point
 * already waits on all replicas (Linearizable, Transactional).
 */
bool writesDurableAtCompletion(const DdpModel &model);

} // namespace ddp::core

#endif // DDP_CORE_MODELS_HH
