#include "ddp/models.hh"

namespace ddp::core {

const char *
consistencyName(Consistency c)
{
    switch (c) {
      case Consistency::Linearizable: return "Linearizable";
      case Consistency::ReadEnforced: return "Read-Enforced";
      case Consistency::Transactional: return "Transactional";
      case Consistency::Causal: return "Causal";
      case Consistency::Eventual: return "Eventual";
    }
    return "?";
}

const char *
persistencyName(Persistency p)
{
    switch (p) {
      case Persistency::Strict: return "Strict";
      case Persistency::Synchronous: return "Synchronous";
      case Persistency::ReadEnforced: return "Read-Enforced";
      case Persistency::Scope: return "Scope";
      case Persistency::Eventual: return "Eventual";
    }
    return "?";
}

std::string
modelName(const DdpModel &model)
{
    std::string s = "<";
    s += consistencyName(model.consistency);
    s += ", ";
    s += persistencyName(model.persistency);
    s += ">";
    return s;
}

const std::vector<Consistency> &
allConsistencies()
{
    static const std::vector<Consistency> v = {
        Consistency::Linearizable, Consistency::ReadEnforced,
        Consistency::Transactional, Consistency::Causal,
        Consistency::Eventual};
    return v;
}

const std::vector<Persistency> &
allPersistencies()
{
    static const std::vector<Persistency> v = {
        Persistency::Strict, Persistency::Synchronous,
        Persistency::ReadEnforced, Persistency::Scope,
        Persistency::Eventual};
    return v;
}

std::vector<DdpModel>
allModels()
{
    std::vector<DdpModel> models;
    for (Consistency c : allConsistencies()) {
        for (Persistency p : allPersistencies())
            models.push_back({c, p});
    }
    return models;
}

const char *
levelName(Level l)
{
    switch (l) {
      case Level::Low: return "Low";
      case Level::Medium: return "Medium";
      case Level::High: return "High";
    }
    return "?";
}

namespace {

/** Traffic contribution of a consistency model (0=low..2=high). */
int
consistencyTraffic(Consistency c)
{
    switch (c) {
      case Consistency::Linearizable: return 1;  // INV/ACK/VAL round
      case Consistency::ReadEnforced: return 1;
      case Consistency::Transactional: return 2; // begin/end messages
      case Consistency::Causal: return 2;        // cauhist payloads
      case Consistency::Eventual: return 0;      // lazy UPDs only
    }
    return 1;
}

/** Traffic contribution of a persistency model (0=low..2=high). */
int
persistencyTraffic(Persistency p)
{
    switch (p) {
      case Persistency::Strict: return 1;
      case Persistency::Synchronous: return 1;
      case Persistency::ReadEnforced: return 2; // double ACKs/VALs
      case Persistency::Scope: return 2;        // scope-persist round
      case Persistency::Eventual: return 0;
    }
    return 1;
}

} // namespace

ModelTraits
traitsOf(const DdpModel &model)
{
    const Consistency c = model.consistency;
    const Persistency p = model.persistency;
    ModelTraits t{};

    // --- Durability -----------------------------------------------------
    // Strict: nothing is ever lost. Scope: completed scopes survive.
    // Synchronous: as strong as the consistency model's write-completion
    // condition. Read-Enforced: read values are recoverable. Eventual:
    // no guarantee.
    switch (p) {
      case Persistency::Strict:
        t.durability = Level::High;
        break;
      case Persistency::Scope:
        t.durability = Level::High;
        break;
      case Persistency::Synchronous:
        if (c == Consistency::Linearizable ||
            c == Consistency::Transactional)
            t.durability = Level::High;
        else if (c == Consistency::Eventual)
            t.durability = Level::Low;
        else
            t.durability = Level::Medium;
        break;
      case Persistency::ReadEnforced:
        t.durability = Level::Medium;
        break;
      case Persistency::Eventual:
        t.durability = Level::Low;
        break;
    }

    // --- Performance factors ---------------------------------------------
    // Writes stall only when completion waits on remote acknowledgments:
    // Strict persistency always; <Linearizable, Synchronous> as well.
    t.writesOptimized =
        p != Persistency::Strict &&
        !(c == Consistency::Linearizable &&
          p == Persistency::Synchronous);

    // Reads stall for Read-Enforced consistency (visibility), for
    // Read-Enforced persistency (durability), and for Linearizable
    // bound to Strict/Synchronous (VAL implies persist).
    t.readsOptimized =
        c != Consistency::ReadEnforced &&
        p != Persistency::ReadEnforced &&
        !(c == Consistency::Linearizable &&
          (p == Persistency::Synchronous || p == Persistency::Strict));

    int traffic_score = consistencyTraffic(c) + persistencyTraffic(p);
    t.traffic = traffic_score <= 1
                    ? Level::Low
                    : (traffic_score == 2 ? Level::Medium : Level::High);

    if (t.writesOptimized && t.readsOptimized)
        t.performance = Level::High;
    else if (c == Consistency::Causal && t.writesOptimized)
        t.performance = Level::High; // read stalls are local and short
    else if (t.writesOptimized || t.readsOptimized)
        t.performance = Level::Medium;
    else
        t.performance = Level::Low;

    // --- Programmer intuition ---------------------------------------------
    // Monotonic reads fail when replicas apply updates in arrival order
    // (Eventual consistency) or when a crash can revert versions that
    // reads already observed (Scope / Eventual persistency).
    t.monotonicReads = c != Consistency::Eventual &&
                       p != Persistency::Scope &&
                       p != Persistency::Eventual;

    // Non-stale reads need (a) completed writes to be durable (Strict,
    // or Synchronous bound to a consistency whose write completion
    // awaits the persist) and (b) reads that cannot observe staleness.
    bool writes_durable_at_completion =
        p == Persistency::Strict ||
        (p == Persistency::Synchronous &&
         (c == Consistency::Linearizable ||
          c == Consistency::Transactional));
    bool reads_never_stale = c == Consistency::Linearizable ||
                             c == Consistency::ReadEnforced ||
                             c == Consistency::Transactional;
    t.nonStaleReads = writes_durable_at_completion && reads_never_stale;

    if (p == Persistency::Scope) {
        // All-or-nothing scope recovery keeps the model easy to reason
        // about despite failing both read properties; combining with
        // transactions dilutes that.
        t.intuition = c == Consistency::Transactional ? Level::Medium
                                                      : Level::High;
    } else if (t.monotonicReads && t.nonStaleReads) {
        t.intuition = Level::High;
    } else if (t.monotonicReads || t.nonStaleReads) {
        t.intuition = Level::Medium;
    } else {
        t.intuition = Level::Low;
    }

    // --- Programmability / implementability --------------------------------
    t.programmability = (c == Consistency::Transactional ||
                         p == Persistency::Scope)
                            ? Level::Low
                            : Level::High;
    t.implementability = (c == Consistency::Transactional ||
                          c == Consistency::Causal ||
                          p == Persistency::Scope)
                             ? Level::Low
                             : Level::High;
    return t;
}

bool
writesDurableAtCompletion(const DdpModel &model)
{
    return model.persistency == Persistency::Strict ||
           (model.persistency == Persistency::Synchronous &&
            (model.consistency == Consistency::Linearizable ||
             model.consistency == Consistency::Transactional));
}

} // namespace ddp::core
