/**
 * @file
 * Runtime property checkers for the paper's programmer-intuition and
 * durability taxonomy (Table 4).
 *
 * The checker consumes the protocol engine's observation stream and
 * measures:
 *
 *  - monotonic reads: for each (replica node, key), the versions
 *    returned by successive reads must never go backwards. Eventual
 *    consistency violates this (arrival-order application); Scope and
 *    Eventual persistency violate it across crashes (reads observed
 *    versions that the recovery discarded).
 *  - non-stale reads: a read issued after a write to the same key
 *    completed system-wide must return that write's version or newer.
 *    Violated by stale-read consistency models (Causal, Eventual) and,
 *    across crashes, by any model that acknowledges writes before they
 *    are durable.
 *  - durability of acknowledged writes: after a crash + recovery, how
 *    many client-acknowledged writes were lost.
 */

#ifndef DDP_CORE_CHECKERS_HH
#define DDP_CORE_CHECKERS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "ddp/client_api.hh"
#include "ddp/models.hh"
#include "net/message.hh"

namespace ddp::core {

/** Observation-stream property checker (see file comment). */
class PropertyChecker : public EventSink
{
  public:
    void onRead(net::NodeId node, net::KeyId key, net::Version version,
                sim::Tick issued_at, sim::Tick completed_at) override;

    void onWriteComplete(net::KeyId key, net::Version version,
                         sim::Tick completed_at) override;

    void onTornDetected(net::NodeId node, net::KeyId key,
                        net::Version rolled_back_to) override;

    void onTornInstall(net::NodeId node, net::KeyId key,
                       net::Version torn_version) override;

    /** Reads that returned an older version than a previous read saw. */
    std::uint64_t monotonicViolations() const { return monotonicViol; }

    /** Reads that missed a write completed before they were issued. */
    std::uint64_t staleReads() const { return staleViol; }

    /** Total reads observed. */
    std::uint64_t readsObserved() const { return reads; }

    /** Total write completions observed. */
    std::uint64_t writesObserved() const { return writes; }

    /**
     * Audit durability after a crash + recovery: count acknowledged
     * writes whose version exceeds the recovered version of their key.
     * @param recovered_version maps a key to its post-recovery version.
     */
    std::uint64_t
    auditLostWrites(const std::function<net::Version(net::KeyId)>
                        &recovered_version) const;

    /** Per-crash-epoch durability verdict against the Table 4 taxonomy. */
    struct DurabilityAudit
    {
        /** Keys whose latest acknowledged write did not survive. */
        std::uint64_t lostAckedKeys = 0;
        /** Individual acknowledged writes (any age) that did not
         *  survive — counts the whole lost suffix per key. */
        std::uint64_t lostAckedWrites = 0;
        /** Torn values installed as current by recovery (ablation). */
        std::uint64_t tornInstalled = 0;
        /** Reads that returned a torn value (cumulative). */
        std::uint64_t tornServed = 0;
        /** The audited model promises zero acked-write loss. */
        bool zeroLossRequired = false;

        /** Taxonomy violated: a zero-loss binding lost acked writes,
         *  or a torn value was served to a client. */
        bool
        violation() const
        {
            return (zeroLossRequired && lostAckedWrites > 0) ||
                   tornServed > 0;
        }
    };

    /**
     * Multi-crash-epoch durability audit: call once per crash, after
     * recovery has settled every key. Counts the acknowledged writes
     * lost at *this* crash point, then prunes them from the history so
     * the next crash epoch judges only writes that were still alive —
     * auditLostWrites() alone would double- or under-count across
     * epochs. Also advances the checker's crash-epoch counter.
     */
    DurabilityAudit
    auditDurability(const DdpModel &model,
                    const std::function<net::Version(net::KeyId)>
                        &recovered_version);

    /** Crash epochs audited so far. */
    std::uint64_t crashEpochs() const { return crashEpochCount; }
    /** Torn values recovery detected and rolled back (all nodes). */
    std::uint64_t tornDetected() const { return tornDetectedCount; }
    /** Torn values recovery installed as current (ablation mode). */
    std::uint64_t tornInstalls() const { return tornInstallCount; }
    /** Reads that returned a torn value. */
    std::uint64_t tornServed() const { return tornServedCount; }

    /** Forget observation state (not violation counters). */
    void resetObservations();

    void clear();

  private:
    struct LastRead
    {
        net::Version version;
    };
    struct CompletedWrite
    {
        net::Version version;
        sim::Tick completedAt;
    };

    /** (node, key) -> last version returned at that replica. */
    std::map<std::pair<net::NodeId, net::KeyId>, LastRead> lastReads;
    /** key -> highest completed write and its completion time. */
    std::unordered_map<net::KeyId, CompletedWrite> completed;
    /**
     * key -> every acknowledged version still considered alive (not
     * yet judged lost by an earlier crash epoch's audit). Basis of the
     * per-epoch lost-suffix counting in auditDurability().
     */
    std::unordered_map<net::KeyId, std::vector<net::Version>> ackedAlive;
    /** (key, version) pairs recovery installed torn (ablation). */
    std::set<std::pair<net::KeyId, net::Version>> tornValues;

    std::uint64_t monotonicViol = 0;
    std::uint64_t staleViol = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t crashEpochCount = 0;
    std::uint64_t tornDetectedCount = 0;
    std::uint64_t tornInstallCount = 0;
    std::uint64_t tornServedCount = 0;
};

} // namespace ddp::core

#endif // DDP_CORE_CHECKERS_HH
