/**
 * @file
 * Runtime property checkers for the paper's programmer-intuition and
 * durability taxonomy (Table 4).
 *
 * The checker consumes the protocol engine's observation stream and
 * measures:
 *
 *  - monotonic reads: for each (replica node, key), the versions
 *    returned by successive reads must never go backwards. Eventual
 *    consistency violates this (arrival-order application); Scope and
 *    Eventual persistency violate it across crashes (reads observed
 *    versions that the recovery discarded).
 *  - non-stale reads: a read issued after a write to the same key
 *    completed system-wide must return that write's version or newer.
 *    Violated by stale-read consistency models (Causal, Eventual) and,
 *    across crashes, by any model that acknowledges writes before they
 *    are durable.
 *  - durability of acknowledged writes: after a crash + recovery, how
 *    many client-acknowledged writes were lost.
 */

#ifndef DDP_CORE_CHECKERS_HH
#define DDP_CORE_CHECKERS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>

#include "ddp/client_api.hh"
#include "net/message.hh"

namespace ddp::core {

/** Observation-stream property checker (see file comment). */
class PropertyChecker : public EventSink
{
  public:
    void onRead(net::NodeId node, net::KeyId key, net::Version version,
                sim::Tick issued_at, sim::Tick completed_at) override;

    void onWriteComplete(net::KeyId key, net::Version version,
                         sim::Tick completed_at) override;

    /** Reads that returned an older version than a previous read saw. */
    std::uint64_t monotonicViolations() const { return monotonicViol; }

    /** Reads that missed a write completed before they were issued. */
    std::uint64_t staleReads() const { return staleViol; }

    /** Total reads observed. */
    std::uint64_t readsObserved() const { return reads; }

    /** Total write completions observed. */
    std::uint64_t writesObserved() const { return writes; }

    /**
     * Audit durability after a crash + recovery: count acknowledged
     * writes whose version exceeds the recovered version of their key.
     * @param recovered_version maps a key to its post-recovery version.
     */
    std::uint64_t
    auditLostWrites(const std::function<net::Version(net::KeyId)>
                        &recovered_version) const;

    /** Forget observation state (not violation counters). */
    void resetObservations();

    void clear();

  private:
    struct LastRead
    {
        net::Version version;
    };
    struct CompletedWrite
    {
        net::Version version;
        sim::Tick completedAt;
    };

    /** (node, key) -> last version returned at that replica. */
    std::map<std::pair<net::NodeId, net::KeyId>, LastRead> lastReads;
    /** key -> highest completed write and its completion time. */
    std::unordered_map<net::KeyId, CompletedWrite> completed;

    std::uint64_t monotonicViol = 0;
    std::uint64_t staleViol = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
};

} // namespace ddp::core

#endif // DDP_CORE_CHECKERS_HH
