/**
 * @file
 * Client-visible operation types and completion callbacks.
 *
 * Clients interact with a ProtocolNode through reads, writes, and —
 * depending on the DDP model — transaction begin/end requests and
 * scope-persist requests. Every request completes asynchronously at a
 * simulated time with an OpResult.
 */

#ifndef DDP_CORE_CLIENT_API_HH
#define DDP_CORE_CLIENT_API_HH

#include <cstdint>
#include <functional>

#include "net/message.hh"
#include "sim/phase.hh"
#include "sim/ticks.hh"

namespace ddp::core {

/** Client request kinds. */
enum class OpKind : std::uint8_t
{
    Read,
    Write,
    InitXact,
    EndXact,
    PersistScope,
};

/** Completion record delivered to the issuing client. */
struct OpResult
{
    OpKind kind = OpKind::Read;
    net::KeyId key = 0;
    net::NodeId node = 0;        ///< serving (coordinator) node
    sim::Tick issuedAt = 0;
    sim::Tick completedAt = 0;
    net::Version version{};      ///< version read / written
    bool aborted = false;        ///< transaction squashed by a conflict

    /**
     * Phase attribution of this request's latency (simulated clock).
     * Invariant for completed requests: phases.sum() == latency().
     */
    sim::PhaseAccum phases{};

    sim::Tick latency() const { return completedAt - issuedAt; }
};

/** Completion callback. */
using OpCompletion = std::function<void(const OpResult &)>;

/** Optional transactional / scope context of a read or write. */
struct OpContext
{
    std::uint64_t xactId = 0;  ///< 0 = not inside a transaction
    std::uint64_t scopeId = 0; ///< 0 = no scope tag

    /**
     * Exactly-once retransmission identity. A client that fails over
     * to a new coordinator after a request timeout retransmits the
     * write under the same (clientId, clientSeq); coordinators dedup
     * on it. clientSeq 0 = no retransmission tracking (the default,
     * and the only mode exercised when request timeouts are disabled).
     */
    std::uint32_t clientId = 0;
    std::uint64_t clientSeq = 0;
};

/**
 * Observation sink for property checkers. The protocol engine reports
 * every read it answers and every write completion it signals; the
 * checkers derive monotonic-read, non-stale-read, and durability
 * verdicts from the stream.
 */
class EventSink
{
  public:
    virtual ~EventSink() = default;

    /** A read returned @p version at @p node. */
    virtual void
    onRead(net::NodeId node, net::KeyId key, net::Version version,
           sim::Tick issued_at, sim::Tick completed_at) = 0;

    /** A write of @p version completed (acknowledged to its client). */
    virtual void
    onWriteComplete(net::KeyId key, net::Version version,
                    sim::Tick completed_at) = 0;

    /**
     * Crash recovery detected a torn (partially persisted) value via
     * commit-record checksum mismatch and rolled @p key back to
     * @p rolled_back_to. Default: ignore.
     */
    virtual void
    onTornDetected(net::NodeId /*node*/, net::KeyId /*key*/,
                   net::Version /*rolled_back_to*/)
    {
    }

    /**
     * Crash recovery, running without commit records (ablation),
     * trusted the newest version tag it found and installed a torn
     * value as @p key's current version. Default: ignore.
     */
    virtual void
    onTornInstall(net::NodeId /*node*/, net::KeyId /*key*/,
                  net::Version /*torn_version*/)
    {
    }
};

} // namespace ddp::core

#endif // DDP_CORE_CLIENT_API_HH
