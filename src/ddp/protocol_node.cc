#include "ddp/protocol_node.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace ddp::core {

using net::KeyId;
using net::Message;
using net::MsgType;
using net::NodeId;
using net::Version;

ProtocolNode::ProtocolNode(sim::EventQueue &eq, net::Fabric &fabric,
                           NodeId self, const NodeParams &params,
                           stats::CounterRegistry &counters,
                           XactConflictTable *xact_table)
    : eq(eq),
      fabric(fabric),
      self(self),
      cfg(params),
      ctr(counters),
      xactTable(xact_table),
      nvmDev(params.nvmParams),
      dramDev(params.dramParams),
      hierarchy(params.cacheParams),
      backend(kv::makeStore(params.storeKind)),
      cores(params.workerCores),
      keys(params.keyCount),
      applied(params.numNodes),
      durableApplied(params.numNodes),
      pendingDurable(params.numNodes),
      causalBuffer(params.numNodes),
      followers(params.numNodes - 1),
      rmap(params.numNodes, params.replicationFactor),
      image(params.keyCount, params.valueLines == 0 ? 1
                                                    : params.valueLines,
            params.commitRecords),
      peerUp(params.numNodes, true)
{
    if (!rmap.full() &&
        (cfg.model.consistency == Consistency::Causal ||
         cfg.model.consistency == Consistency::Transactional)) {
        throw std::invalid_argument(
            "partial replication requires Linearizable, Read-Enforced, "
            "or Eventual consistency");
    }
    if (cfg.valueLines == 0)
        throw std::invalid_argument("valueLines must be >= 1");
    if (cfg.valueLines > 1 && !cfg.persistCoalescing) {
        // The line-by-line persist protocol assumes at most one
        // in-flight NVM write per key, which coalescing guarantees.
        throw std::invalid_argument(
            "valueLines > 1 requires persistCoalescing");
    }

    RecoveryAgent::Hooks hooks;
    hooks.persistedVersion = [this](KeyId key) {
        return persistedVersion(key);
    };
    hooks.install = [this](KeyId key, Version ver) {
        installRecovered(key, ver);
    };
    hooks.send = [this](NodeId dst, Message m) {
        m.src = this->self;
        m.epoch = currentEpoch;
        sendTo(dst, std::move(m));
    };
    hooks.broadcast = [this](Message m) {
        m.src = this->self;
        m.epoch = currentEpoch;
        broadcast(std::move(m));
    };
    hooks.now = [this] { return this->eq.now(); };
    hooks.startTimer = [this](sim::Tick delay,
                              std::function<void()> fire) {
        // Timer continuations from before a crash must not run into
        // the post-crash world: guard with the epoch, like messages.
        std::uint32_t ep = currentEpoch;
        return this->eq.scheduleTimerIn(
            delay, [this, ep, fire = std::move(fire)] {
                if (ep == currentEpoch)
                    fire();
            });
    };
    hooks.cancelTimer = [this](sim::TimerId id) {
        this->eq.cancelTimer(id);
    };
    recovery = std::make_unique<RecoveryAgent>(self, params.numNodes,
                                               std::move(hooks),
                                               params.recoveryTuning);

    fabric.attach(self, [this](const Message &m) { handleMessage(m); });
}

// --------------------------------------------------------------------------
// Small helpers
// --------------------------------------------------------------------------

std::uint64_t
ProtocolNode::xactLogAddr(std::uint64_t xact_id) const
{
    // The transaction log lives just past the value region. (With
    // valueLines == 1 this is the classic keyCount offset, keeping the
    // default bank mapping — and hence event timing — unchanged.)
    return (cfg.keyCount * cfg.valueLines + (xact_id & 1023)) * 64;
}

std::uint64_t
ProtocolNode::commitAddrOf(KeyId key) const
{
    // Commit records occupy their own region past the transaction log
    // so they never contend with a value's own data lines for a slot.
    return (cfg.keyCount * cfg.valueLines + 1024 + key) * 64;
}

bool
ProtocolNode::isAckRoundConsistency() const
{
    return cfg.model.consistency == Consistency::Linearizable ||
           cfg.model.consistency == Consistency::ReadEnforced;
}

ProtocolNode::KeyReplica &
ProtocolNode::keyState(KeyId key)
{
    assert(key < keys.size());
    return keys[key];
}

const ProtocolNode::KeyReplica &
ProtocolNode::keyState(KeyId key) const
{
    assert(key < keys.size());
    return keys[key];
}

Version
ProtocolNode::allocateVersion(KeyId key)
{
    KeyReplica &kr = keyState(key);
    Version ver{kr.maxSeen.number + 1, self};
    kr.maxSeen = ver;
    return ver;
}

void
ProtocolNode::noteVersion(KeyId key, Version ver)
{
    KeyReplica &kr = keyState(key);
    if (kr.maxSeen < ver)
        kr.maxSeen = ver;
}

bool
ProtocolNode::waiterSatisfied(KeyId key, const KeyReplica &kr,
                              const Waiter &w) const
{
    switch (w.kind) {
      case Waiter::Kind::KeyValid:
        return !kr.transient;
      case Waiter::Kind::WriteSlot:
        return !kr.transient && kr.pendingOpId == 0;
      case Waiter::Kind::GlobalPersist:
        return kr.globalPersistVer >= w.ver;
      case Waiter::Kind::LocalPersist:
        return kr.persistedVer >= w.ver;
      case Waiter::Kind::KeyWarm:
        return !keyCold(key);
    }
    return true;
}

void
ProtocolNode::wakeWaiters(KeyId key)
{
    KeyReplica &kr = keyState(key);
    if (kr.waiters.empty())
        return;
    std::vector<Waiter> still;
    std::vector<Waiter> ready;
    still.reserve(kr.waiters.size());
    for (auto &w : kr.waiters) {
        if (waiterSatisfied(key, kr, w))
            ready.push_back(std::move(w));
        else
            still.push_back(std::move(w));
    }
    kr.waiters = std::move(still);
    for (auto &w : ready) {
        // Re-admission of a woken request costs worker-core time; under
        // hot-key contention this wasted work scales with the number of
        // parked requests.
        sim::Tick t = cores.acquire(eq.now(), cfg.stallRetryCost);
        if (w.acc != nullptr) {
            w.acc->add(w.stallPhase, eq.now() - w.parkedAt);
            w.acc->add(sim::Phase::CoreQueue,
                       t - eq.now() - cfg.stallRetryCost);
            w.acc->add(sim::Phase::Service, cfg.stallRetryCost);
        }
        eq.schedule(t, std::move(w.resume));
    }
}

sim::Tick
ProtocolNode::chargeLocalAccess(KeyId key, bool is_write)
{
    (void)is_write;
    std::uint64_t addr = addrOf(key);
    auto [lat, hit] = hierarchy.access(addr);
    sim::Tick extra = lat;
    if (!hit) {
        sim::Tick done = dramDev.read(eq.now(), addr);
        extra += done - eq.now();
    }
    kv::Value tmp;
    backend->get(key, tmp);
    extra += static_cast<sim::Tick>(backend->lastProbes()) * cfg.probeCost;
    return extra;
}

Message
ProtocolNode::makeMsg(MsgType type, KeyId key, Version ver,
                      std::uint64_t op_id) const
{
    Message m;
    m.type = type;
    m.src = self;
    m.key = key;
    m.version = ver;
    m.opId = op_id;
    m.epoch = currentEpoch;
    return m;
}

void
ProtocolNode::sendTo(NodeId dst, Message msg)
{
    msg.dst = dst;
    fabric.send(msg);
}

void
ProtocolNode::broadcast(Message msg)
{
    fabric.broadcast(std::move(msg));
}

void
ProtocolNode::multicast(KeyId key, Message msg)
{
    if (rmap.full()) {
        fabric.broadcast(std::move(msg));
        return;
    }
    for (std::uint32_t i = 0; i < rmap.factor(); ++i) {
        NodeId dst = rmap.replica(key, i);
        if (dst == self)
            continue;
        msg.dst = dst;
        fabric.send(msg);
    }
}

// --------------------------------------------------------------------------
// Persist machinery
// --------------------------------------------------------------------------

namespace {

/** Max-merge or arrival-order overwrite of a persisted version. */
void
advancePersisted(Version &slot, Version ver, bool arrival_order)
{
    if (arrival_order || slot < ver)
        slot = ver;
}

} // namespace

void
ProtocolNode::issuePersist(KeyId key, Version ver, std::uint64_t round_id,
                           bool follower_acks, NodeId ack_dst,
                           std::uint64_t ack_op, bool arrival_order,
                           NodeId causal_origin, std::uint64_t causal_seq,
                           std::function<void()> on_durable)
{
    // Everything that must happen once this version is durable (or
    // superseded by a durable newer version) is captured here and
    // fired by the covering persist's completion.
    PersistObligation obligation =
        [this, key, ver, round_id, follower_acks, ack_dst, ack_op,
         causal_origin, causal_seq,
         on_durable = std::move(on_durable)](Version covered) {
            (void)covered;
            if (round_id != 0) {
                auto it = rounds.find(round_id);
                if (it != rounds.end()) {
                    assert(it->second.pendingLocalPersists > 0);
                    --it->second.pendingLocalPersists;
                    checkRound(round_id);
                }
            }
            if (causal_origin != net::kNoNode) {
                // This persist makes one causal update durable locally:
                // advance the durable clock and retry buffered UPDs.
                noteCausalDurable(causal_origin, causal_seq);
                drainCausalBuffer();
            }
            if (follower_acks) {
                MsgType t =
                    (cfg.model.persistency == Persistency::Strict ||
                     cfg.model.persistency == Persistency::Synchronous)
                        ? MsgType::Ack
                        : MsgType::AckP;
                sendTo(ack_dst, makeMsg(t, key, ver, ack_op));
            }
            if (on_durable)
                on_durable();
        };

    KeyReplica &kr = keyState(key);
    if (!kr.persistBusy || !cfg.persistCoalescing) {
        std::vector<PersistObligation> obls;
        obls.push_back(std::move(obligation));
        startKeyPersist(key, ver, arrival_order, std::move(obls));
        return;
    }

    // Coalesce into the pending follow-up write for this line.
    ctr.add("persists_coalesced");
    if (!kr.hasPendingPersist) {
        kr.hasPendingPersist = true;
        kr.pendingPersistVer = ver;
    } else if (arrival_order || kr.pendingPersistVer < ver) {
        kr.pendingPersistVer = ver;
    }
    kr.pendingArrival = arrival_order;
    kr.pendingObligations.push_back(std::move(obligation));
}

void
ProtocolNode::startKeyPersist(KeyId key, Version ver, bool arrival_order,
                              std::vector<PersistObligation> obligations)
{
    ctr.add("persists_issued");
    std::uint32_t ep = currentEpoch;

    if (!cfg.persistCoalescing) {
        // Ablation mode: every persist is independent; obligations ride
        // in the completion closure instead of the per-key slot.
        // (Single-line only; valueLines > 1 is rejected in the ctor.)
        sim::Tick done_at = nvmDev.write(eq.now(), addrOf(key));
        auto obls = std::make_shared<std::vector<PersistObligation>>(
            std::move(obligations));
        eq.schedule(done_at,
                    [this, ep, key, ver, arrival_order, obls] {
            if (ep != currentEpoch)
                return;
            KeyReplica &kr = keyState(key);
            image.atomicPersist(key, ver, arrival_order);
            advancePersisted(kr.persistedVer, ver, arrival_order);
            wakeWaiters(key);
            for (auto &obl : *obls)
                obl(ver);
        });
        return;
    }

    KeyReplica &kr = keyState(key);
    kr.persistBusy = true;
    kr.activePersistVer = ver;
    kr.activeArrival = arrival_order;
    kr.activeObligations = std::move(obligations);

    if (cfg.valueLines == 1) {
        sim::Tick done_at = nvmDev.write(eq.now(), addrOf(key));
        eq.schedule(done_at, [this, ep, key] {
            if (ep != currentEpoch)
                return; // the persist raced a crash; treat it as lost
            onKeyPersistDone(key);
        });
        return;
    }

    // Multi-line value: every 64 B line is its own (atomic) NVM write.
    // A crash between the first line landing and the commit record
    // landing leaves a torn copy in the medium, which recovery must
    // detect. The lines issue in parallel (they map to different
    // banks); the commit record only once all of them are durable.
    //
    // Instant recovery: if the crash froze a persist of this key
    // mid-flight, the verified scan must judge that staging before a
    // new beginWrite overwrites the evidence — otherwise a torn copy
    // would vanish uncounted.
    if (!staleStaging.empty())
        settleStaleStaging(key);
    image.beginWrite(key, ver);
    auto remaining = std::make_shared<std::uint32_t>(cfg.valueLines);
    for (std::uint32_t i = 0; i < cfg.valueLines; ++i) {
        sim::Tick t = nvmDev.write(eq.now(), addrOf(key) + 64ull * i);
        eq.schedule(t, [this, ep, key, remaining] {
            if (ep != currentEpoch)
                return; // this line never reached the medium
            image.lineWritten(key);
            if (--*remaining == 0)
                onDataLinesDurable(key);
        });
    }
}

void
ProtocolNode::onDataLinesDurable(KeyId key)
{
    std::uint32_t ep = currentEpoch;
    if (!cfg.commitRecords) {
        // Ablation: nothing marks the value complete; the last data
        // line doubles as the completion point.
        onKeyPersistDone(key);
        return;
    }
    sim::Tick t = nvmDev.write(eq.now(), commitAddrOf(key));
    ctr.add("commit_records_written");
    eq.schedule(t, [this, ep, key] {
        if (ep != currentEpoch)
            return; // crash before the commit record: torn at recovery
        onKeyPersistDone(key);
    });
}

void
ProtocolNode::onKeyPersistDone(KeyId key)
{
    KeyReplica &kr = keyState(key);
    if (cfg.valueLines == 1) {
        image.atomicPersist(key, kr.activePersistVer, kr.activeArrival);
    } else {
        image.commitWrite(key, kr.activeArrival);
    }
    advancePersisted(kr.persistedVer, kr.activePersistVer,
                     kr.activeArrival);
    wakeWaiters(key);

    Version covered = kr.activePersistVer;
    std::vector<PersistObligation> fired =
        std::move(kr.activeObligations);
    kr.activeObligations.clear();
    kr.persistBusy = false;
    for (auto &obl : fired)
        obl(covered);

    // KeyReplica may have gained new pending work while obligations
    // ran; start the coalesced follow-up write if so.
    KeyReplica &kr2 = keyState(key);
    if (!kr2.persistBusy && kr2.hasPendingPersist) {
        Version next = kr2.pendingPersistVer;
        bool arrival = kr2.pendingArrival;
        std::vector<PersistObligation> obls =
            std::move(kr2.pendingObligations);
        kr2.pendingObligations.clear();
        kr2.hasPendingPersist = false;
        startKeyPersist(key, next, arrival, std::move(obls));
    }
}

// --------------------------------------------------------------------------
// Client reads
// --------------------------------------------------------------------------

struct ProtocolNode::ReadCtx
{
    sim::Tick issued = 0;
    OpCompletion done;
    OpContext octx;
    bool charged = false;
    bool countedVisibility = false;
    bool countedPersist = false;
    std::uint32_t conflictAttempts = 0;
    /** Phase attribution; sums to completedAt - issued at completion. */
    sim::PhaseAccum acc{};
};

void
ProtocolNode::clientRead(KeyId key, OpContext ctx, OpCompletion done)
{
    if (downFlag)
        return; // dead coordinator: the client's request timeout fires
    auto rc = std::make_shared<ReadCtx>();
    rc->issued = eq.now();
    rc->done = std::move(done);
    rc->octx = ctx;
    sim::Tick admitted = cores.acquire(eq.now(), cfg.opProcessing);
    rc->acc.add(sim::Phase::CoreQueue,
                admitted - eq.now() - cfg.opProcessing);
    rc->acc.add(sim::Phase::Service, cfg.opProcessing);
    std::uint32_t ep = currentEpoch;
    eq.schedule(admitted, [this, ep, key, rc] {
        if (ep == currentEpoch)
            execRead(key, rc);
    });
}

void
ProtocolNode::execRead(KeyId key, std::shared_ptr<ReadCtx> rc)
{
    if (!rc->charged) {
        rc->charged = true;
        sim::Tick extra = chargeLocalAccess(key, false);
        if (extra > 0) {
            rc->acc.add(sim::Phase::MemAccess, extra);
            std::uint32_t ep = currentEpoch;
            eq.scheduleIn(extra, [this, ep, key, rc] {
                if (ep == currentEpoch)
                    execRead(key, std::move(rc));
            });
            return;
        }
    }

    KeyReplica &kr = keyState(key);

    // Instant recovery: the durable image of this key has not been
    // scanned yet. Park until the on-demand fault-in warms it — a torn
    // or lost-suffix value must never be served.
    if (keyCold(key)) {
        ctr.add("reads_stalled_recovery");
        kr.waiters.push_back({Waiter::Kind::KeyWarm, Version{},
                              [this, key, rc] { execRead(key, rc); },
                              eq.now(), &rc->acc,
                              sim::Phase::RecoveryStall});
        if (keyTemp[key] == KeyTemp::Cold)
            startFaultIn(key);
        return;
    }

    const Consistency c = cfg.model.consistency;
    const Persistency p = cfg.model.persistency;

    // Transactional bookkeeping and conflict detection (reads inside a
    // transaction never stall; conflicts squash the transaction).
    bool xact_read =
        c == Consistency::Transactional && rc->octx.xactId != 0;
    if (xact_read) {
        auto it = xactRecs.find(rc->octx.xactId);
        if (it == xactRecs.end() || it->second.aborted) {
            OpResult res;
            res.kind = OpKind::Read;
            res.key = key;
            res.node = self;
            res.issuedAt = rc->issued;
            res.completedAt = eq.now();
            res.aborted = true;
            res.phases = rc->acc;
            rc->done(res);
            return;
        }
        if (xactTable &&
            xactTable->accessConflicts(rc->octx.xactId, key, false,
                                       eq.now(), cfg.xactConflictWindow)) {
            ctr.add("xact_conflicts");
            if (!it->second.hadConflict) {
                it->second.hadConflict = true;
                ctr.add("xact_conflicted");
            }
            if (rc->conflictAttempts < cfg.xactConflictRetries) {
                // Stall flavor: wait for the conflicting transaction to
                // drain, then retry (wasting core time on re-admission).
                ++rc->conflictAttempts;
                ctr.add("xact_conflict_stalls");
                std::uint32_t ep = currentEpoch;
                sim::Tick t = cores.acquire(
                    eq.now() + cfg.xactConflictRetryDelay,
                    cfg.stallRetryCost);
                rc->acc.add(sim::Phase::ConflictRetry,
                            cfg.xactConflictRetryDelay);
                rc->acc.add(sim::Phase::CoreQueue,
                            t - eq.now() - cfg.xactConflictRetryDelay -
                                cfg.stallRetryCost);
                rc->acc.add(sim::Phase::Service, cfg.stallRetryCost);
                if (trace)
                    trace->instant(tracePid, 0, "conflict_retry",
                                   eq.now(), "key", key);
                eq.schedule(t, [this, ep, key, rc] {
                    if (ep == currentEpoch)
                        execRead(key, rc);
                });
                return;
            }
            // Squash flavor: retries exhausted.
            it->second.aborted = true;
            OpResult res;
            res.kind = OpKind::Read;
            res.key = key;
            res.node = self;
            res.issuedAt = rc->issued;
            res.completedAt = eq.now();
            res.aborted = true;
            res.phases = rc->acc;
            rc->done(res);
            return;
        }
        // Read-your-own-writes: the latest uncommitted write of this
        // transaction to the key wins over committed state.
        for (auto w = it->second.writes.rbegin();
             w != it->second.writes.rend(); ++w) {
            if (w->key == key) {
                OpResult res;
                res.kind = OpKind::Read;
                res.key = key;
                res.node = self;
                res.issuedAt = rc->issued;
                res.completedAt = eq.now();
                res.version = w->ver;
                res.phases = rc->acc;
                ctr.add("reads_completed");
                rc->done(res);
                return;
            }
        }
    }

    // Visibility stall: Linearizable and Read-Enforced consistency may
    // not serve a key with an in-flight update.
    if ((c == Consistency::Linearizable ||
         c == Consistency::ReadEnforced) &&
        kr.transient) {
        if (!rc->countedVisibility) {
            rc->countedVisibility = true;
            ctr.add("reads_stalled_visibility");
        }
        if (trace)
            trace->instant(tracePid, 0, "visibility_stall", eq.now(),
                           "key", key);
        kr.waiters.push_back(
            {Waiter::Kind::KeyValid, Version{},
             [this, key, rc] { execRead(key, rc); }, eq.now(),
             &rc->acc, sim::Phase::VisibilityStall});
        return;
    }

    // Durability stall: Read-Enforced persistency requires the latest
    // visible version to be durable before it may be read. Protocols
    // with ACK rounds prove global durability via VAL_p; the others
    // wait for the local persist (paper Fig. 3(c)-(d)).
    if (p == Persistency::ReadEnforced) {
        bool global = isAckRoundConsistency();
        bool must_wait = global ? kr.volatileVer > kr.globalPersistVer
                                : kr.volatileVer > kr.persistedVer;
        if (must_wait) {
            if (!rc->countedPersist) {
                rc->countedPersist = true;
                ctr.add("reads_stalled_persist");
            }
            if (trace)
                trace->instant(tracePid, 0, "persist_stall", eq.now(),
                               "key", key);
            kr.waiters.push_back(
                {global ? Waiter::Kind::GlobalPersist
                        : Waiter::Kind::LocalPersist,
                 kr.volatileVer,
                 [this, key, rc] { execRead(key, rc); }, eq.now(),
                 &rc->acc, sim::Phase::PersistStall});
            return;
        }
    }

    finishRead(key, rc);
}

void
ProtocolNode::finishRead(KeyId key, const std::shared_ptr<ReadCtx> &rc)
{
    KeyReplica &kr = keyState(key);
    const Consistency c = cfg.model.consistency;
    const Persistency p = cfg.model.persistency;

    // Synchronous persistency bound to a consistency model without ACK
    // rounds serves the latest *persisted* version so that every value
    // returned is recoverable (paper Fig. 2(f)).
    Version ver = kr.volatileVer;
    if (p == Persistency::Synchronous &&
        (c == Consistency::Causal || c == Consistency::Eventual)) {
        ver = kr.persistedVer;
    }

    OpResult res;
    res.kind = OpKind::Read;
    res.key = key;
    res.node = self;
    res.issuedAt = rc->issued;
    res.completedAt = eq.now();
    res.version = ver;
    res.phases = rc->acc;
    ctr.add("reads_completed");
    if (sink)
        sink->onRead(self, key, ver, rc->issued, eq.now());
    if (trace)
        trace->async(tracePid, "read", ++traceSpanId, rc->issued,
                     eq.now());
    rc->done(res);
}

// --------------------------------------------------------------------------
// Client writes
// --------------------------------------------------------------------------

struct ProtocolNode::WriteCtx
{
    sim::Tick issued = 0;
    OpCompletion done;
    OpContext octx;
    bool charged = false;
    std::uint32_t conflictAttempts = 0;
    /** Phase attribution; sums to completedAt - issued at completion. */
    sim::PhaseAccum acc{};
};

void
ProtocolNode::clientWrite(KeyId key, OpContext ctx, OpCompletion done)
{
    if (downFlag)
        return; // dead coordinator: the client's request timeout fires
    auto wc = std::make_shared<WriteCtx>();
    wc->issued = eq.now();
    wc->done = std::move(done);
    wc->octx = ctx;
    sim::Tick admitted = cores.acquire(eq.now(), cfg.opProcessing);
    wc->acc.add(sim::Phase::CoreQueue,
                admitted - eq.now() - cfg.opProcessing);
    wc->acc.add(sim::Phase::Service, cfg.opProcessing);
    std::uint32_t ep = currentEpoch;
    eq.schedule(admitted, [this, ep, key, wc] {
        if (ep == currentEpoch)
            execWrite(key, wc);
    });
}

void
ProtocolNode::execWrite(KeyId key, std::shared_ptr<WriteCtx> wc)
{
    // Exactly-once retransmits: a failed-over client re-sends a write
    // under its original (clientId, clientSeq); if any surviving
    // replica already applied it, acknowledge instead of re-executing.
    if (wc->octx.clientSeq != 0) {
        auto seen = clientSeqSeen.find(wc->octx.clientId);
        if (seen != clientSeqSeen.end() &&
            wc->octx.clientSeq <= seen->second) {
            ctr.add("client_retransmits_deduped");
            OpResult res;
            res.kind = OpKind::Write;
            res.key = key;
            res.node = self;
            res.issuedAt = wc->issued;
            res.completedAt = eq.now();
            res.version = keyState(key).volatileVer;
            res.phases = wc->acc;
            wc->done(res);
            return;
        }
    }

    if (!wc->charged) {
        wc->charged = true;
        sim::Tick extra = chargeLocalAccess(key, true);
        if (extra > 0) {
            wc->acc.add(sim::Phase::MemAccess, extra);
            std::uint32_t ep = currentEpoch;
            eq.scheduleIn(extra, [this, ep, key, wc] {
                if (ep == currentEpoch)
                    execWrite(key, std::move(wc));
            });
            return;
        }
    }

    // Instant recovery: a cold key's durable baseline (and any
    // fresher version the live peers hold) is unknown until fault-in
    // — admit the write only after it lands, so the new version is
    // ordered against what actually survived the crash.
    if (keyCold(key)) {
        ctr.add("writes_stalled_recovery");
        keyState(key).waiters.push_back(
            {Waiter::Kind::KeyWarm, Version{},
             [this, key, wc] { execWrite(key, wc); }, eq.now(),
             &wc->acc, sim::Phase::RecoveryStall});
        if (keyTemp[key] == KeyTemp::Cold)
            startFaultIn(key);
        return;
    }

    switch (cfg.model.consistency) {
      case Consistency::Linearizable:
      case Consistency::ReadEnforced:
        startAckRoundWrite(key, wc);
        break;
      case Consistency::Transactional:
        if (wc->octx.xactId != 0) {
            startXactWrite(key, wc);
        } else {
            // A write outside any transaction degenerates to a strict
            // invalidation round.
            startAckRoundWrite(key, wc);
        }
        break;
      case Consistency::Causal:
      case Consistency::Eventual:
        startPropagatedWrite(key, wc);
        break;
    }
}

void
ProtocolNode::startAckRoundWrite(KeyId key,
                                 const std::shared_ptr<WriteCtx> &wc)
{
    KeyReplica &kr = keyState(key);
    // One in-flight invalidation round per key per coordinator; later
    // writes (and rounds racing a remote INV) queue.
    if (kr.transient || kr.pendingOpId != 0) {
        if (trace)
            trace->instant(tracePid, 0, "write_slot", eq.now(), "key",
                           key);
        kr.waiters.push_back({Waiter::Kind::WriteSlot, Version{},
                              [this, key, wc] { execWrite(key, wc); },
                              eq.now(), &wc->acc,
                              sim::Phase::VisibilityStall});
        return;
    }

    const Persistency p = cfg.model.persistency;
    Version ver = allocateVersion(key);
    std::uint64_t round_id = nextOpId++;

    Round round;
    round.kind = Round::Kind::Write;
    round.key = key;
    round.ver = ver;
    round.scopeId = wc->octx.scopeId;
    round.followersNeeded = liveFollowerCount(key);
    round.issuedAt = wc->issued;
    round.clientId = wc->octx.clientId;
    round.clientSeq = wc->octx.clientSeq;
    round.done = wc->done;
    round.phases = wc->acc;
    round.startedAt = eq.now();
    round.waitPhase = sim::Phase::Replication;

    kr.pendingOpId = round_id;
    kr.transient = true;
    kr.transientVer = ver;
    if (wc->octx.clientSeq != 0)
        noteClientSeq(wc->octx.clientId, wc->octx.clientSeq);

    // Local durability per the persistency model.
    if (p == Persistency::Strict || p == Persistency::Synchronous ||
        p == Persistency::ReadEnforced) {
        round.pendingLocalPersists = 1;
        rounds.emplace(round_id, std::move(round));
        issuePersist(key, ver, round_id, false, 0, 0, false);
    } else if (p == Persistency::Scope) {
        scopeBuffers[wc->octx.scopeId].emplace_back(key, ver);
        rounds.emplace(round_id, std::move(round));
    } else { // Eventual persistency: lazy background persist
        rounds.emplace(round_id, std::move(round));
        std::uint32_t ep = currentEpoch;
        eq.scheduleIn(cfg.lazyPersistDelay, [this, ep, key, ver] {
            if (ep == currentEpoch)
                issuePersist(key, ver, 0, false, 0, 0, false);
        });
    }

    Message inv = makeMsg(MsgType::Inv, key, ver, round_id);
    inv.hasData = true;
    inv.dataLines = cfg.valueLines;
    inv.scopeId = wc->octx.scopeId;
    inv.clientId = wc->octx.clientId;
    inv.clientSeq = wc->octx.clientSeq;
    multicast(key, inv);
    ctr.add("inv_sent", rmap.followerCount(key));

    // Read-Enforced consistency acknowledges the client immediately
    // (unless Strict persistency also demands global durability first).
    if (cfg.model.consistency == Consistency::ReadEnforced &&
        p != Persistency::Strict) {
        completeWriteToClient(rounds.at(round_id));
    }
    checkRound(round_id);
}

void
ProtocolNode::startXactWrite(KeyId key,
                             const std::shared_ptr<WriteCtx> &wc)
{
    auto it = xactRecs.find(wc->octx.xactId);
    OpResult res;
    res.kind = OpKind::Write;
    res.key = key;
    res.node = self;
    res.issuedAt = wc->issued;

    if (it == xactRecs.end() || it->second.aborted) {
        res.completedAt = eq.now();
        res.aborted = true;
        res.phases = wc->acc;
        wc->done(res);
        return;
    }
    XactRecord &xr = it->second;

    if (xactTable &&
        xactTable->accessConflicts(xr.id, key, true, eq.now(),
                                   cfg.xactConflictWindow)) {
        ctr.add("xact_conflicts");
        if (!xr.hadConflict) {
            xr.hadConflict = true;
            ctr.add("xact_conflicted");
        }
        if (wc->conflictAttempts < cfg.xactConflictRetries) {
            ++wc->conflictAttempts;
            ctr.add("xact_conflict_stalls");
            std::uint32_t ep = currentEpoch;
            sim::Tick t = cores.acquire(
                eq.now() + cfg.xactConflictRetryDelay,
                cfg.stallRetryCost);
            wc->acc.add(sim::Phase::ConflictRetry,
                        cfg.xactConflictRetryDelay);
            wc->acc.add(sim::Phase::CoreQueue,
                        t - eq.now() - cfg.xactConflictRetryDelay -
                            cfg.stallRetryCost);
            wc->acc.add(sim::Phase::Service, cfg.stallRetryCost);
            if (trace)
                trace->instant(tracePid, 0, "conflict_retry", eq.now(),
                               "key", key);
            eq.schedule(t, [this, ep, key, wc] {
                if (ep == currentEpoch)
                    execWrite(key, wc);
            });
            return;
        }
        xr.aborted = true;
        res.completedAt = eq.now();
        res.aborted = true;
        res.phases = wc->acc;
        wc->done(res);
        return;
    }

    const Persistency p = cfg.model.persistency;
    Version ver = allocateVersion(key);

    // The write stays private to the transaction until ENDX: reads of
    // other clients keep seeing committed state (no dirty reads), and
    // an abort has nothing to roll back. The transaction reads its own
    // writes through its write set.
    xr.writes.push_back({key, ver, wc->octx.scopeId});

    std::uint64_t round_id = 0;
    if (p == Persistency::Strict) {
        // Strict: the write itself stalls until durable on all nodes.
        round_id = nextOpId++;
        Round round;
        round.kind = Round::Kind::Write;
        round.key = key;
        round.ver = ver;
        round.xactId = xr.id;
        round.followersNeeded = liveFollowerCount(key);
        round.issuedAt = wc->issued;
        round.done = wc->done;
        round.phases = wc->acc;
        round.startedAt = eq.now();
        round.waitPhase = sim::Phase::Replication;
        round.pendingLocalPersists = 1;
        rounds.emplace(round_id, std::move(round));
        issuePersist(key, ver, round_id, false, 0, 0, false);
    } else if (p == Persistency::ReadEnforced) {
        issuePersist(key, ver, 0, false, 0, 0, false);
    } else if (p == Persistency::Eventual) {
        std::uint32_t ep = currentEpoch;
        eq.scheduleIn(cfg.lazyPersistDelay, [this, ep, key, ver] {
            if (ep == currentEpoch)
                issuePersist(key, ver, 0, false, 0, 0, false);
        });
    }
    // Synchronous: persists are deferred to ENDX (VP of the update).

    Message inv = makeMsg(MsgType::Inv, key, ver, round_id);
    inv.hasData = true;
    inv.dataLines = cfg.valueLines;
    inv.xactId = xr.id;
    inv.scopeId = wc->octx.scopeId;
    multicast(key, inv);
    ctr.add("inv_sent", rmap.followerCount(key));

    if (p != Persistency::Strict) {
        res.completedAt = eq.now();
        res.version = ver;
        res.phases = wc->acc;
        ctr.add("writes_completed");
        if (trace)
            trace->async(tracePid, "write", ++traceSpanId, wc->issued,
                         eq.now());
        wc->done(res);
    } else {
        checkRound(round_id);
    }
}

void
ProtocolNode::startPropagatedWrite(KeyId key,
                                   const std::shared_ptr<WriteCtx> &wc)
{
    const Consistency c = cfg.model.consistency;
    const Persistency p = cfg.model.persistency;
    KeyReplica &kr = keyState(key);
    Version ver = allocateVersion(key);

    kr.volatileVer = ver;
    backend->put(key, ver.number);

    if (wc->octx.clientSeq != 0)
        noteClientSeq(wc->octx.clientId, wc->octx.clientSeq);

    Message upd = makeMsg(MsgType::Upd, key, ver, 0);
    upd.hasData = true;
    upd.dataLines = cfg.valueLines;
    upd.scopeId = wc->octx.scopeId;
    upd.clientId = wc->octx.clientId;
    upd.clientSeq = wc->octx.clientSeq;
    if (c == Consistency::Causal) {
        upd.cauhist = applied.raw();
        applied[self] += 1;
    }

    // Under durable causal gating the coordinator's own sequence
    // number must also advance durably, or UPDs from peers that depend
    // on this write would buffer here forever.
    bool durable_gated =
        c == Consistency::Causal && (p == Persistency::Strict ||
                                     p == Persistency::Synchronous);
    NodeId causal_origin = durable_gated ? self : net::kNoNode;
    std::uint64_t own_seq = durable_gated ? applied[self] : 0;

    std::uint64_t round_id = 0;
    if (p == Persistency::Strict) {
        round_id = nextOpId++;
        upd.opId = round_id;
        Round round;
        round.kind = Round::Kind::Write;
        round.key = key;
        round.ver = ver;
        round.followersNeeded = liveFollowerCount(key);
        round.issuedAt = wc->issued;
        round.done = wc->done;
        round.phases = wc->acc;
        round.startedAt = eq.now();
        round.waitPhase = sim::Phase::Replication;
        round.pendingLocalPersists = 1;
        rounds.emplace(round_id, std::move(round));
        issuePersist(key, ver, round_id, false, 0, 0, false,
                     causal_origin, own_seq);
    } else if (p == Persistency::Synchronous ||
               p == Persistency::ReadEnforced) {
        issuePersist(key, ver, 0, false, 0, 0, false, causal_origin,
                     own_seq);
    } else if (p == Persistency::Scope) {
        scopeBuffers[wc->octx.scopeId].emplace_back(key, ver);
    } else { // Eventual persistency
        std::uint32_t ep = currentEpoch;
        eq.scheduleIn(cfg.lazyPersistDelay, [this, ep, key, ver] {
            if (ep == currentEpoch)
                issuePersist(key, ver, 0, false, 0, 0, false);
        });
    }

    if (c == Consistency::Eventual && p != Persistency::Strict) {
        enqueueLazyUpd(std::move(upd));
    } else {
        multicast(key, std::move(upd));
        ctr.add("upd_sent", rmap.followerCount(key));
    }

    if (p != Persistency::Strict) {
        OpResult res;
        res.kind = OpKind::Write;
        res.key = key;
        res.node = self;
        res.issuedAt = wc->issued;
        res.completedAt = eq.now();
        res.version = ver;
        res.phases = wc->acc;
        ctr.add("writes_completed");
        if (sink)
            sink->onWriteComplete(key, ver, eq.now());
        if (trace)
            trace->async(tracePid, "write", ++traceSpanId, wc->issued,
                         eq.now());
        wc->done(res);
    } else {
        checkRound(round_id);
    }
}

// --------------------------------------------------------------------------
// Transactions
// --------------------------------------------------------------------------

void
ProtocolNode::clientInitXact(std::uint64_t xact_id, OpCompletion done)
{
    if (downFlag)
        return; // dead coordinator: the client's request timeout fires
    sim::Tick issued = eq.now();
    sim::Tick admitted = cores.acquire(eq.now(), cfg.opProcessing);
    std::uint32_t ep = currentEpoch;
    eq.schedule(admitted, [this, ep, xact_id, issued,
                           done = std::move(done)] {
        if (ep != currentEpoch)
            return;
        XactRecord xr;
        xr.id = xact_id;
        xr.coordinator = self;
        xactRecs.emplace(xact_id, std::move(xr));
        if (xactTable)
            xactTable->begin(xact_id);
        ctr.add("xact_started");

        std::uint64_t round_id = nextOpId++;
        Round round;
        round.kind = Round::Kind::InitXact;
        round.xactId = xact_id;
        round.followersNeeded = liveFollowers();
        round.issuedAt = issued;
        round.done = done;
        round.phases.add(sim::Phase::CoreQueue,
                         eq.now() - issued - cfg.opProcessing);
        round.phases.add(sim::Phase::Service, cfg.opProcessing);
        round.startedAt = eq.now();
        round.waitPhase = sim::Phase::Replication;

        const Persistency p = cfg.model.persistency;
        bool log_persist = p == Persistency::Strict ||
                           p == Persistency::Synchronous;
        if (log_persist)
            round.pendingLocalPersists = 1;
        rounds.emplace(round_id, std::move(round));

        if (log_persist) {
            sim::Tick done_at =
                nvmDev.write(eq.now(), xactLogAddr(xact_id));
            std::uint32_t ep2 = currentEpoch;
            eq.schedule(done_at, [this, ep2, round_id] {
                if (ep2 != currentEpoch)
                    return;
                auto it = rounds.find(round_id);
                if (it != rounds.end()) {
                    --it->second.pendingLocalPersists;
                    checkRound(round_id);
                }
            });
        }

        Message m = makeMsg(MsgType::InitX, 0, Version{}, round_id);
        m.xactId = xact_id;
        broadcast(m);
        checkRound(round_id);
    });
}

void
ProtocolNode::clientEndXact(std::uint64_t xact_id, bool commit,
                            OpCompletion done)
{
    if (downFlag)
        return; // dead coordinator: the client's request timeout fires
    sim::Tick issued = eq.now();
    sim::Tick admitted = cores.acquire(eq.now(), cfg.opProcessing);
    std::uint32_t ep = currentEpoch;
    eq.schedule(admitted, [this, ep, xact_id, commit, issued,
                           done = std::move(done)] {
        if (ep != currentEpoch)
            return;
        sim::PhaseAccum acc;
        acc.add(sim::Phase::CoreQueue,
                eq.now() - issued - cfg.opProcessing);
        acc.add(sim::Phase::Service, cfg.opProcessing);
        auto it = xactRecs.find(xact_id);
        if (it == xactRecs.end()) {
            OpResult res;
            res.kind = OpKind::EndXact;
            res.node = self;
            res.issuedAt = issued;
            res.completedAt = eq.now();
            res.aborted = true;
            res.phases = acc;
            done(res);
            return;
        }
        XactRecord &xr = it->second;

        if (!commit || xr.aborted) {
            // Coordinator writes were buffered in the write set, so
            // an abort simply discards them.
            Message m = makeMsg(MsgType::EndX, 0, Version{}, 0);
            m.xactId = xact_id;
            m.commit = false;
            broadcast(m);
            if (xactTable)
                xactTable->end(xact_id);
            xactRecs.erase(it);
            ctr.add("xact_aborted");
            OpResult res;
            res.kind = OpKind::EndXact;
            res.node = self;
            res.issuedAt = issued;
            res.completedAt = eq.now();
            res.aborted = true;
            res.phases = acc;
            done(res);
            return;
        }

        std::uint64_t round_id = nextOpId++;
        xr.endRoundId = round_id;
        Round round;
        round.kind = Round::Kind::EndXact;
        round.xactId = xact_id;
        round.followersNeeded = liveFollowers();
        round.issuedAt = issued;
        round.done = done;
        round.phases = acc;
        round.startedAt = eq.now();
        round.waitPhase = sim::Phase::XactCommit;

        // Synchronous persistency: the transaction's VP is ENDX, so the
        // coordinator persists all its writes here. Scope persistency
        // hands the committed writes to their scopes' barrier.
        if (cfg.model.persistency == Persistency::Synchronous) {
            round.pendingLocalPersists =
                static_cast<std::uint32_t>(xr.writes.size());
            rounds.emplace(round_id, std::move(round));
            for (const auto &w : xr.writes)
                issuePersist(w.key, w.ver, round_id, false, 0, 0,
                             false);
        } else {
            if (cfg.model.persistency == Persistency::Scope) {
                for (const auto &w : xr.writes)
                    scopeBuffers[w.scopeId].emplace_back(w.key, w.ver);
            }
            rounds.emplace(round_id, std::move(round));
        }

        Message m = makeMsg(MsgType::EndX, 0, Version{}, round_id);
        m.xactId = xact_id;
        m.commit = true;
        broadcast(m);
        checkRound(round_id);
    });
}

// --------------------------------------------------------------------------
// Scope persists
// --------------------------------------------------------------------------

void
ProtocolNode::clientPersistScope(std::uint64_t scope_id, OpCompletion done)
{
    if (downFlag)
        return; // dead coordinator: the client's request timeout fires
    sim::Tick issued = eq.now();
    sim::Tick admitted = cores.acquire(eq.now(), cfg.opProcessing);
    std::uint32_t ep = currentEpoch;
    eq.schedule(admitted, [this, ep, scope_id, issued,
                           done = std::move(done)] {
        if (ep != currentEpoch)
            return;
        // Under Eventual consistency the scope's UPDs may still be
        // queued; push them out so followers hold the writes the
        // PERSIST refers to (per-QP ordering delivers them first).
        if (cfg.model.consistency == Consistency::Eventual)
            flushLazyUpds();

        std::uint64_t round_id = nextOpId++;
        Round round;
        round.kind = Round::Kind::ScopePersist;
        round.scopeId = scope_id;
        round.followersNeeded = liveFollowers();
        round.issuedAt = issued;
        round.done = done;
        round.phases.add(sim::Phase::CoreQueue,
                         eq.now() - issued - cfg.opProcessing);
        round.phases.add(sim::Phase::Service, cfg.opProcessing);
        round.startedAt = eq.now();
        round.waitPhase = sim::Phase::PersistStall;

        auto buf = scopeBuffers.find(scope_id);
        if (buf != scopeBuffers.end()) {
            round.pendingLocalPersists =
                static_cast<std::uint32_t>(buf->second.size());
            rounds.emplace(round_id, std::move(round));
            for (const auto &[key, ver] : buf->second)
                issuePersist(key, ver, round_id, false, 0, 0, false);
            scopeBuffers.erase(buf);
        } else {
            rounds.emplace(round_id, std::move(round));
        }

        Message m = makeMsg(MsgType::Persist, 0, Version{}, round_id);
        m.scopeId = scope_id;
        broadcast(m);
        checkRound(round_id);
    });
}

// --------------------------------------------------------------------------
// Coordinator round progress
// --------------------------------------------------------------------------

void
ProtocolNode::completeWriteToClient(Round &round)
{
    if (round.clientNotified)
        return;
    round.clientNotified = true;
    OpResult res;
    res.kind = OpKind::Write;
    res.key = round.key;
    res.node = self;
    res.issuedAt = round.issuedAt;
    res.completedAt = eq.now();
    res.version = round.ver;
    res.phases = round.phases;
    res.phases.add(round.waitPhase, eq.now() - round.startedAt);
    ctr.add("writes_completed");
    if (trace)
        trace->async(tracePid, "write", ++traceSpanId, round.issuedAt,
                     eq.now());
    // Writes inside transactions report to the checker sink only when
    // the whole transaction commits.
    if (sink && round.xactId == 0)
        sink->onWriteComplete(round.key, round.ver, eq.now());
    if (round.done)
        round.done(res);
}

void
ProtocolNode::checkRound(std::uint64_t round_id)
{
    auto it = rounds.find(round_id);
    if (it == rounds.end())
        return;
    Round &r = it->second;
    const Persistency p = cfg.model.persistency;

    switch (r.kind) {
      case Round::Kind::Write: {
        bool xact_or_propagated = !isAckRoundConsistency();
        if (xact_or_propagated) {
            // Only Strict persistency creates write rounds here: the
            // write completes when durable everywhere.
            if (r.acksP >= r.followersNeeded &&
                r.pendingLocalPersists == 0) {
                KeyReplica &kr = keyState(r.key);
                if (kr.globalPersistVer < r.ver)
                    kr.globalPersistVer = r.ver;
                wakeWaiters(r.key);
                completeWriteToClient(r);
                rounds.erase(it);
            }
            return;
        }

        bool combined = p == Persistency::Strict ||
                        p == Persistency::Synchronous;
        if (combined) {
            if (!r.consistencyDone && r.acksC >= r.followersNeeded &&
                r.pendingLocalPersists == 0) {
                r.consistencyDone = true;
                r.persistencyDone = true;
                Message val = makeMsg(MsgType::Val, r.key, r.ver, 0);
                val.scopeId = r.scopeId;
                val.clientId = r.clientId;
                val.clientSeq = r.clientSeq;
                multicast(r.key, val);
                KeyReplica &kr = keyState(r.key);
                if (kr.volatileVer < r.ver) {
                    // A concurrent round for a newer version may have
                    // already validated; never regress visibility.
                    kr.volatileVer = r.ver;
                    backend->put(r.key, r.ver.number);
                }
                kr.transient = false;
                kr.pendingOpId = 0;
                if (kr.globalPersistVer < r.ver)
                    kr.globalPersistVer = r.ver;
                completeWriteToClient(r);
                wakeWaiters(r.key);
            }
        } else if (p == Persistency::ReadEnforced) {
            if (!r.consistencyDone && r.acksC >= r.followersNeeded) {
                r.consistencyDone = true;
                Message val = makeMsg(MsgType::ValC, r.key, r.ver, 0);
                val.clientId = r.clientId;
                val.clientSeq = r.clientSeq;
                multicast(r.key, val);
                KeyReplica &kr = keyState(r.key);
                if (kr.volatileVer < r.ver) {
                    kr.volatileVer = r.ver;
                    backend->put(r.key, r.ver.number);
                }
                kr.transient = false;
                kr.pendingOpId = 0;
                completeWriteToClient(r);
                wakeWaiters(r.key);
            }
            if (!r.persistencyDone && r.acksP >= r.followersNeeded &&
                r.pendingLocalPersists == 0) {
                r.persistencyDone = true;
                Message val = makeMsg(MsgType::ValP, r.key, r.ver, 0);
                multicast(r.key, val);
                KeyReplica &kr = keyState(r.key);
                if (kr.globalPersistVer < r.ver)
                    kr.globalPersistVer = r.ver;
                wakeWaiters(r.key);
            }
        } else { // Scope / Eventual persistency: consistency round only
            if (!r.consistencyDone && r.acksC >= r.followersNeeded) {
                r.consistencyDone = true;
                r.persistencyDone = true;
                Message val = makeMsg(MsgType::ValC, r.key, r.ver, 0);
                val.scopeId = r.scopeId;
                val.clientId = r.clientId;
                val.clientSeq = r.clientSeq;
                multicast(r.key, val);
                KeyReplica &kr = keyState(r.key);
                if (kr.volatileVer < r.ver) {
                    kr.volatileVer = r.ver;
                    backend->put(r.key, r.ver.number);
                }
                kr.transient = false;
                kr.pendingOpId = 0;
                completeWriteToClient(r);
                wakeWaiters(r.key);
            }
        }
        if (r.consistencyDone && r.persistencyDone && r.clientNotified)
            rounds.erase(it);
        return;
      }

      case Round::Kind::InitXact: {
        if (r.acksC >= r.followersNeeded &&
            r.pendingLocalPersists == 0) {
            OpResult res;
            res.kind = OpKind::InitXact;
            res.node = self;
            res.issuedAt = r.issuedAt;
            res.completedAt = eq.now();
            res.phases = r.phases;
            res.phases.add(r.waitPhase, eq.now() - r.startedAt);
            if (r.done)
                r.done(res);
            rounds.erase(it);
        }
        return;
      }

      case Round::Kind::EndXact: {
        if (r.acksC >= r.followersNeeded &&
            r.pendingLocalPersists == 0) {
            auto xit = xactRecs.find(r.xactId);
            if (xit != xactRecs.end()) {
                // Commit point at the coordinator: the buffered writes
                // become visible (their local persists, if any, have
                // already completed as part of this round).
                for (const auto &w : xit->second.writes) {
                    KeyReplica &kr = keyState(w.key);
                    noteVersion(w.key, w.ver);
                    if (kr.volatileVer < w.ver) {
                        kr.volatileVer = w.ver;
                        backend->put(w.key, w.ver.number);
                    }
                    wakeWaiters(w.key);
                    if (sink)
                        sink->onWriteComplete(w.key, w.ver, eq.now());
                }
                xactRecs.erase(xit);
            }
            if (xactTable)
                xactTable->end(r.xactId);
            ctr.add("xact_committed");

            Message val = makeMsg(MsgType::Val, 0, Version{}, 0);
            val.xactId = r.xactId;
            broadcast(val);

            OpResult res;
            res.kind = OpKind::EndXact;
            res.node = self;
            res.issuedAt = r.issuedAt;
            res.completedAt = eq.now();
            res.phases = r.phases;
            res.phases.add(r.waitPhase, eq.now() - r.startedAt);
            if (r.done)
                r.done(res);
            rounds.erase(it);
        }
        return;
      }

      case Round::Kind::ScopePersist: {
        if (r.acksP >= r.followersNeeded &&
            r.pendingLocalPersists == 0) {
            Message val = makeMsg(MsgType::ValP, 0, Version{}, 0);
            val.scopeId = r.scopeId;
            broadcast(val);
            OpResult res;
            res.kind = OpKind::PersistScope;
            res.node = self;
            res.issuedAt = r.issuedAt;
            res.completedAt = eq.now();
            res.phases = r.phases;
            res.phases.add(r.waitPhase, eq.now() - r.startedAt);
            if (r.done)
                r.done(res);
            rounds.erase(it);
        }
        return;
      }
    }
}

// --------------------------------------------------------------------------
// Message handling
// --------------------------------------------------------------------------

void
ProtocolNode::handleMessage(const Message &msg)
{
    if (downFlag) {
        // Crashed and not yet restarted: the NIC is dark.
        ctr.add("msgs_dropped_node_down");
        return;
    }
    if (msg.epoch != currentEpoch)
        return; // stale traffic from before a crash
    sim::Tick cost = cfg.msgProcessing;
    if (msg.type == MsgType::Upd &&
        cfg.model.consistency == Consistency::Causal) {
        cost += cfg.causalUpdOverhead;
    }
    sim::Tick admitted = cores.acquire(eq.now(), cost);
    std::uint32_t ep = currentEpoch;
    eq.schedule(admitted, [this, ep, msg] {
        if (ep == currentEpoch)
            processMessage(msg);
    });
}

void
ProtocolNode::processMessage(const Message &msg)
{
    switch (msg.type) {
      case MsgType::Inv:
        handleInv(msg);
        break;
      case MsgType::Ack:
      case MsgType::AckC:
      case MsgType::AckP:
        handleAck(msg);
        break;
      case MsgType::Val:
      case MsgType::ValC:
      case MsgType::ValP:
        handleVal(msg);
        break;
      case MsgType::Upd:
        handleUpd(msg);
        break;
      case MsgType::InitX:
        handleInitX(msg);
        break;
      case MsgType::EndX:
        handleEndX(msg);
        break;
      case MsgType::Persist:
        handlePersistScope(msg);
        break;
      case MsgType::RecQuery:
      case MsgType::RecSummary:
      case MsgType::RecInstall:
      case MsgType::RecAck:
        recovery->onMessage(msg);
        break;
      case MsgType::NetAck:
        // Link-level traffic is consumed by the fabric's reliability
        // layer and never reaches protocol handlers.
        break;
    }
}

void
ProtocolNode::handleInv(const Message &msg)
{
    const Persistency p = cfg.model.persistency;
    noteVersion(msg.key, msg.version);
    hierarchy.deliverDdio(addrOf(msg.key));

    if (msg.xactId != 0) {
        // Transactional write: buffer until ENDX; acknowledge per the
        // persistency model (Fig. 4: no persist wait except Strict).
        XactRecord &xr = xactRecs[msg.xactId];
        xr.id = msg.xactId;
        xr.coordinator = msg.src;
        xr.writes.push_back({msg.key, msg.version, msg.scopeId});
        if (p == Persistency::Strict) {
            issuePersist(msg.key, msg.version, 0, true, msg.src,
                         msg.opId, false);
        } else {
            sendTo(msg.src,
                   makeMsg(MsgType::AckC, msg.key, msg.version,
                           msg.opId));
        }
        return;
    }

    KeyReplica &kr = keyState(msg.key);
    kr.transient = true;
    if (kr.transientVer < msg.version)
        kr.transientVer = msg.version;

    switch (p) {
      case Persistency::Strict:
      case Persistency::Synchronous:
        // Persist before acknowledging: the combined ACK certifies both
        // the volatile update and its durability.
        issuePersist(msg.key, msg.version, 0, true, msg.src, msg.opId,
                     false);
        break;
      case Persistency::ReadEnforced:
        sendTo(msg.src,
               makeMsg(MsgType::AckC, msg.key, msg.version, msg.opId));
        issuePersist(msg.key, msg.version, 0, true, msg.src, msg.opId,
                     false);
        break;
      case Persistency::Scope:
        sendTo(msg.src,
               makeMsg(MsgType::AckC, msg.key, msg.version, msg.opId));
        scopeBuffers[msg.scopeId].emplace_back(msg.key, msg.version);
        break;
      case Persistency::Eventual: {
        sendTo(msg.src,
               makeMsg(MsgType::AckC, msg.key, msg.version, msg.opId));
        std::uint32_t ep = currentEpoch;
        KeyId key = msg.key;
        Version ver = msg.version;
        eq.scheduleIn(cfg.lazyPersistDelay, [this, ep, key, ver] {
            if (ep == currentEpoch)
                issuePersist(key, ver, 0, false, 0, 0, false);
        });
        break;
      }
    }
}

void
ProtocolNode::handleAck(const Message &msg)
{
    auto it = rounds.find(msg.opId);
    if (it == rounds.end()) {
        ctr.add("acks_unmatched");
        return;
    }
    Round &r = it->second;
    switch (msg.type) {
      case MsgType::Ack:
        ++r.acksC;
        ++r.acksP;
        break;
      case MsgType::AckC:
        ++r.acksC;
        break;
      case MsgType::AckP:
        ++r.acksP;
        break;
      default:
        break;
    }
    checkRound(msg.opId);
}

void
ProtocolNode::handleVal(const Message &msg)
{
    if (msg.xactId != 0 || (msg.key == 0 && msg.scopeId != 0 &&
                            msg.type == MsgType::ValP)) {
        // Transaction/scope completion markers carry no per-key state.
        return;
    }
    noteVersion(msg.key, msg.version);
    KeyReplica &kr = keyState(msg.key);

    if (msg.type == MsgType::Val || msg.type == MsgType::ValC) {
        // The write is applied here: remember its client sequence so a
        // failed-over client's retransmit of it is deduped.
        if (msg.clientSeq != 0)
            noteClientSeq(msg.clientId, msg.clientSeq);
        if (kr.volatileVer < msg.version) {
            kr.volatileVer = msg.version;
            backend->put(msg.key, msg.version.number);
        }
        if (kr.transient && msg.version >= kr.transientVer)
            kr.transient = false;
        if (msg.type == MsgType::Val &&
            kr.globalPersistVer < msg.version) {
            // A combined VAL certifies durability everywhere.
            kr.globalPersistVer = msg.version;
        }
    } else { // ValP
        if (kr.globalPersistVer < msg.version)
            kr.globalPersistVer = msg.version;
    }
    wakeWaiters(msg.key);
}

bool
ProtocolNode::causalDepsSatisfied(const VectorClock &deps) const
{
    // Strict and Synchronous persistency bind durability to the VP:
    // an update may only become visible (and be persisted) after its
    // entire happens-before history is durable on this node. Weaker
    // persistency models only require volatile causal order.
    const Persistency p = cfg.model.persistency;
    if (cfg.causalDurableGating &&
        (p == Persistency::Strict || p == Persistency::Synchronous))
        return durableApplied.dominates(deps);
    return applied.dominates(deps);
}

void
ProtocolNode::noteCausalDurable(NodeId origin, std::uint64_t seq)
{
    // Persists can complete out of order across NVM banks; advance the
    // durable clock contiguously.
    pendingDurable[origin].insert(seq);
    auto &set = pendingDurable[origin];
    while (!set.empty() && *set.begin() == durableApplied[origin] + 1) {
        durableApplied[origin] = *set.begin();
        set.erase(set.begin());
    }
}

void
ProtocolNode::handleUpd(const Message &msg)
{
    if (cfg.model.consistency == Consistency::Causal) {
        VectorClock deps = VectorClock::fromRaw(msg.cauhist);
        // Per-origin FIFO order must be preserved: if earlier UPDs
        // from this origin are still buffered, this one queues behind
        // them even if its own dependencies happen to be satisfied.
        if (causalBuffer[msg.src].empty() && causalDepsSatisfied(deps)) {
            applyCausalUpd(msg);
            drainCausalBuffer();
        } else {
            causalBuffer[msg.src].push_back(msg);
            ++causalBuffered;
            ctr.add("causal_buffered");
            if (causalBuffered > causalPeak)
                causalPeak = causalBuffered;
        }
        return;
    }

    // Eventual consistency: apply in arrival order, no version check —
    // this is what costs the model its monotonic reads (Table 4 row 5).
    if (msg.clientSeq != 0)
        noteClientSeq(msg.clientId, msg.clientSeq);
    KeyReplica &kr = keyState(msg.key);
    noteVersion(msg.key, msg.version);
    kr.volatileVer = msg.version;
    backend->put(msg.key, msg.version.number);
    hierarchy.deliverDdio(addrOf(msg.key));

    const Persistency p = cfg.model.persistency;
    if (p == Persistency::Strict) {
        issuePersist(msg.key, msg.version, 0, true, msg.src, msg.opId,
                     true);
    } else if (p == Persistency::Synchronous ||
               p == Persistency::ReadEnforced) {
        issuePersist(msg.key, msg.version, 0, false, 0, 0, true);
    } else if (p == Persistency::Scope) {
        scopeBuffers[msg.scopeId].emplace_back(msg.key, msg.version);
    } else {
        std::uint32_t ep = currentEpoch;
        KeyId key = msg.key;
        Version ver = msg.version;
        eq.scheduleIn(cfg.lazyPersistDelay, [this, ep, key, ver] {
            if (ep == currentEpoch)
                issuePersist(key, ver, 0, false, 0, 0, true);
        });
    }
    wakeWaiters(msg.key);
}

void
ProtocolNode::applyCausalUpd(const Message &msg)
{
    VectorClock deps = VectorClock::fromRaw(msg.cauhist);
    NodeId origin = msg.src;
    std::uint64_t seq = deps[origin] + 1;
    if (applied[origin] < seq)
        applied[origin] = seq;
    if (msg.clientSeq != 0)
        noteClientSeq(msg.clientId, msg.clientSeq);

    KeyReplica &kr = keyState(msg.key);
    noteVersion(msg.key, msg.version);
    if (kr.volatileVer < msg.version) {
        kr.volatileVer = msg.version;
        backend->put(msg.key, msg.version.number);
        hierarchy.deliverDdio(addrOf(msg.key));
    }

    const Persistency p = cfg.model.persistency;
    if (p == Persistency::Strict || p == Persistency::Synchronous) {
        // The durable clock only advances once this update's own
        // persist completes, which in turn unblocks buffered UPDs that
        // depend on it.
        issuePersist(msg.key, msg.version, 0,
                     /*follower_acks=*/p == Persistency::Strict, msg.src,
                     msg.opId, false, origin, seq);
    } else if (p == Persistency::ReadEnforced) {
        issuePersist(msg.key, msg.version, 0, false, 0, 0, false);
    } else if (p == Persistency::Scope) {
        scopeBuffers[msg.scopeId].emplace_back(msg.key, msg.version);
    } else {
        std::uint32_t ep = currentEpoch;
        KeyId key = msg.key;
        Version ver = msg.version;
        eq.scheduleIn(cfg.lazyPersistDelay, [this, ep, key, ver] {
            if (ep == currentEpoch)
                issuePersist(key, ver, 0, false, 0, 0, false);
        });
    }
    wakeWaiters(msg.key);
}

void
ProtocolNode::drainCausalBuffer()
{
    // Only queue heads can become applicable; an apply may unblock
    // other origins' heads, so loop until a full pass makes no
    // progress.
    bool progress = true;
    while (progress) {
        progress = false;
        for (auto &queue : causalBuffer) {
            while (!queue.empty()) {
                VectorClock deps =
                    VectorClock::fromRaw(queue.front().cauhist);
                if (!causalDepsSatisfied(deps))
                    break;
                Message m = std::move(queue.front());
                queue.pop_front();
                --causalBuffered;
                applyCausalUpd(m);
                progress = true;
            }
        }
    }
}

void
ProtocolNode::adoptCausalProgress(const VectorClock &clock)
{
    applied.mergeFrom(clock);
    durableApplied.mergeFrom(clock);
    drainCausalBuffer();
}

void
ProtocolNode::adoptVisible(KeyId key, Version version)
{
    noteVersion(key, version);
    KeyReplica &kr = keyState(key);
    if (kr.volatileVer < version) {
        kr.volatileVer = version;
        backend->put(key, version.number);
        ctr.add("view_reconciled_keys");
    }
}

void
ProtocolNode::handleInitX(const Message &msg)
{
    XactRecord &xr = xactRecs[msg.xactId];
    xr.id = msg.xactId;
    xr.coordinator = msg.src;

    const Persistency p = cfg.model.persistency;
    if (p == Persistency::Strict || p == Persistency::Synchronous) {
        // Persist the transaction-begin event before acknowledging.
        sim::Tick done_at = nvmDev.write(eq.now(), xactLogAddr(msg.xactId));
        std::uint32_t ep = currentEpoch;
        NodeId dst = msg.src;
        std::uint64_t op = msg.opId;
        eq.schedule(done_at, [this, ep, dst, op] {
            if (ep == currentEpoch)
                sendTo(dst, makeMsg(MsgType::Ack, 0, Version{}, op));
        });
    } else {
        sendTo(msg.src, makeMsg(MsgType::Ack, 0, Version{}, msg.opId));
    }
}

void
ProtocolNode::handleEndX(const Message &msg)
{
    auto it = xactRecs.find(msg.xactId);
    if (!msg.commit) {
        if (it != xactRecs.end())
            xactRecs.erase(it);
        return;
    }

    // Collect the transaction's buffered writes in version order.
    std::vector<XactWrite> writes;
    if (it != xactRecs.end()) {
        writes = std::move(it->second.writes);
        xactRecs.erase(it);
    }
    std::sort(writes.begin(), writes.end(),
              [](const XactWrite &a, const XactWrite &b) {
                  return a.ver < b.ver;
              });

    auto apply_all = [this, writes] {
        for (const auto &w : writes) {
            KeyReplica &kr = keyState(w.key);
            noteVersion(w.key, w.ver);
            if (kr.volatileVer < w.ver) {
                kr.volatileVer = w.ver;
                backend->put(w.key, w.ver.number);
            }
            wakeWaiters(w.key);
        }
    };

    const Persistency p = cfg.model.persistency;
    NodeId dst = msg.src;
    std::uint64_t op = msg.opId;

    if (p == Persistency::Synchronous && !writes.empty()) {
        // Persist first, make visible second, ACK last: reads must
        // never observe a transaction that could still be wiped out
        // (this is what keeps Table 4's monotonic-reads "yes").
        auto remaining = std::make_shared<std::size_t>(writes.size());
        for (const auto &w : writes) {
            issuePersist(w.key, w.ver, 0, false, 0, 0, false,
                         net::kNoNode, 0,
                         [this, remaining, apply_all, dst, op] {
                if (--*remaining == 0) {
                    apply_all();
                    sendTo(dst,
                           makeMsg(MsgType::Ack, 0, Version{}, op));
                }
            });
        }
        return;
    }
    apply_all();

    if (p == Persistency::ReadEnforced) {
        for (const auto &w : writes)
            issuePersist(w.key, w.ver, 0, false, 0, 0, false);
    } else if (p == Persistency::Scope) {
        // Each committed write joins its own scope's barrier.
        for (const auto &w : writes)
            scopeBuffers[w.scopeId].emplace_back(w.key, w.ver);
    } else if (p == Persistency::Eventual) {
        for (const auto &w : writes) {
            std::uint32_t ep = currentEpoch;
            KeyId k = w.key;
            Version v = w.ver;
            eq.scheduleIn(cfg.lazyPersistDelay, [this, ep, k, v] {
                if (ep == currentEpoch)
                    issuePersist(k, v, 0, false, 0, 0, false);
            });
        }
    }
    // Strict: the writes were persisted at INV time.
    sendTo(dst, makeMsg(MsgType::Ack, 0, Version{}, op));
}

void
ProtocolNode::handlePersistScope(const Message &msg)
{
    auto it = scopeBuffers.find(msg.scopeId);
    NodeId dst = msg.src;
    std::uint64_t op = msg.opId;

    if (it == scopeBuffers.end() || it->second.empty()) {
        if (it != scopeBuffers.end())
            scopeBuffers.erase(it);
        sendTo(dst, makeMsg(MsgType::AckP, 0, Version{}, op));
        return;
    }

    auto remaining = std::make_shared<std::size_t>(it->second.size());
    std::vector<std::pair<KeyId, Version>> entries =
        std::move(it->second);
    scopeBuffers.erase(it);
    for (const auto &[key, ver] : entries) {
        issuePersist(key, ver, 0, false, 0, 0, false, net::kNoNode, 0,
                     [this, remaining, dst, op] {
            if (--*remaining == 0)
                sendTo(dst, makeMsg(MsgType::AckP, 0, Version{}, op));
        });
    }
}

// --------------------------------------------------------------------------
// Eventual-consistency lazy propagation
// --------------------------------------------------------------------------

void
ProtocolNode::enqueueLazyUpd(Message msg)
{
    lazyQueue.push_back(std::move(msg));
    if (!lazyFlushScheduled) {
        lazyFlushScheduled = true;
        std::uint32_t ep = currentEpoch;
        eq.scheduleIn(cfg.lazyUpdDelay, [this, ep] {
            if (ep == currentEpoch)
                flushLazyUpds();
        });
    }
}

void
ProtocolNode::flushLazyUpds()
{
    lazyFlushScheduled = false;
    std::vector<Message> pending = std::move(lazyQueue);
    lazyQueue.clear();
    for (auto &m : pending) {
        KeyId key = m.key;
        ctr.add("upd_sent", rmap.followerCount(key));
        multicast(key, std::move(m));
    }
}

// --------------------------------------------------------------------------
// Failure and recovery
// --------------------------------------------------------------------------

void
ProtocolNode::abortInFlight()
{
    ++currentEpoch;
    rounds.clear();
    xactRecs.clear();
    scopeBuffers.clear();
    causalBuffer.assign(cfg.numNodes, {});
    causalBuffered = 0;
    lazyQueue.clear();
    lazyFlushScheduled = false;
    applied = VectorClock(cfg.numNodes);
    durableApplied = VectorClock(cfg.numNodes);
    pendingDurable.assign(cfg.numNodes, {});
    for (auto &kr : keys) {
        kr.transient = false;
        kr.transientVer = Version{};
        kr.pendingOpId = 0;
        kr.waiters.clear();
        kr.persistBusy = false;
        kr.activeObligations.clear();
        kr.hasPendingPersist = false;
        kr.pendingObligations.clear();
    }

    // A survivor still backfilling when another node crashes: the
    // epoch bump just killed its in-flight fault-in completions and
    // the backfill timer. Demote Faulting keys back to Cold (their
    // NVM reads are dead) and re-arm the backfill under the new epoch;
    // coldRemaining is unchanged since Faulting still counted as cold.
    if (instantActive) {
        bool demoted = false;
        for (KeyId key = 0; key < keyTemp.size(); ++key) {
            if (keyTemp[key] == KeyTemp::Faulting) {
                keyTemp[key] = KeyTemp::Cold;
                demoted = true;
            }
        }
        if (demoted)
            backfillCursor = 0; // demoted keys may lie behind it
        scheduleBackfill(cfg.instantBackfillInterval);
    }
}

void
ProtocolNode::crashVolatile()
{
    abortInFlight();
    hierarchy.crash();
    image.crash();
    clientSeqSeen.clear();

    // Rebuild volatile state from what recovery actually finds in the
    // medium — NOT from the in-memory persistedVer bookkeeping, which
    // a real crash wipes out along with everything else volatile. For
    // single-line values the two agree by construction; for multi-line
    // values recovery must verify each key's commit record and roll
    // torn in-flight copies back to the last intact version (or, with
    // commit records ablated, install the torn copy and pay for it).
    for (KeyId key = 0; key < keys.size(); ++key) {
        KeyReplica &kr = keys[key];
        mem::PersistImage::Recovered rec = image.recover(key);
        if (rec.tornDetected) {
            ctr.add("torn_persists_detected");
            if (sink)
                sink->onTornDetected(self, key, rec.version);
        }
        if (rec.uncommittedRollback)
            ctr.add("uncommitted_persists_rolled_back");
        if (rec.tornInstalled) {
            ctr.add("torn_values_installed");
            if (sink)
                sink->onTornInstall(self, key, rec.version);
        }
        kr.persistedVer = rec.version;
        kr.volatileVer = kr.persistedVer;
        if (kr.globalPersistVer > kr.persistedVer)
            kr.globalPersistVer = kr.persistedVer;
        if (kr.persistedVer.number > 0)
            backend->put(key, kr.persistedVer.number);
        else
            backend->erase(key);
    }
}

void
ProtocolNode::crashVolatileInstant()
{
    // Instant recovery's lazy scan leans on commit records: the intact
    // version a cold-aware getter reports must be exactly what a full
    // recover() would settle on, which only holds when recovery never
    // installs a staged (possibly torn) copy. The ablation is rejected
    // at the CLI; keep the invariant visible here too.
    assert((cfg.commitRecords || cfg.valueLines == 1) &&
           "instant recovery requires commit records");

    // If a previous instant recovery is still draining, drop it first
    // so abortInFlight() below does not re-arm its backfill timer; the
    // fresh crash re-snapshots everything anyway.
    instantActive = false;
    recoveryDoneFn = nullptr;
    freshestFn = nullptr;

    abortInFlight();
    hierarchy.crash();
    image.crash();
    clientSeqSeen.clear();

    // Defer the durable-image scan (MM-DIRECT): remember which keys
    // had a persist frozen mid-flight and mark the whole key space
    // cold. The per-key verified scan (recoverOnDemand) runs lazily at
    // the first post-crash touch — request fault-in, backfill, or a
    // new persist of the same key.
    std::vector<KeyId> frozen = image.inflightKeys();
    staleStaging.clear();
    staleStaging.insert(frozen.begin(), frozen.end());
    keyTemp.assign(keys.size(), KeyTemp::Cold);
    coldRemaining = keys.size();
    backfillCursor = 0;
    instantActive = true;

    // The volatile copies are gone; until a key is faulted in the
    // cold-aware getters substitute the durable image's intact
    // version. maxSeen survives as the version allocator's seed, the
    // same convention crashVolatile() follows.
    for (auto &kr : keys) {
        kr.volatileVer = Version{};
        kr.persistedVer = Version{};
        kr.globalPersistVer = Version{};
    }
    backend->clear();
}

void
ProtocolNode::beginInstantRecovery(
    std::function<Version(KeyId)> freshest, std::function<void()> done)
{
    assert(instantActive &&
           "beginInstantRecovery needs crashVolatileInstant first");
    freshestFn = std::move(freshest);
    recoveryDoneFn = std::move(done);
    ctr.add("instant_recoveries_started");
    if (coldRemaining == 0) {
        finishInstantRecovery();
        return;
    }
    scheduleBackfill(cfg.instantBackfillInterval);
}

Version
ProtocolNode::settleStaleStaging(KeyId key)
{
    auto it = staleStaging.find(key);
    if (it == staleStaging.end())
        return image.intactVersion(key);
    staleStaging.erase(it);
    mem::PersistImage::Recovered rec = image.recoverOnDemand(key);
    if (rec.tornDetected) {
        ctr.add("torn_persists_detected");
        if (sink)
            sink->onTornDetected(self, key, rec.version);
    }
    if (rec.uncommittedRollback)
        ctr.add("uncommitted_persists_rolled_back");
    if (rec.tornInstalled) {
        ctr.add("torn_values_installed");
        if (sink)
            sink->onTornInstall(self, key, rec.version);
    }
    return rec.version;
}

sim::Tick
ProtocolNode::startFaultIn(KeyId key)
{
    assert(instantActive && keyTemp[key] == KeyTemp::Cold);
    keyTemp[key] = KeyTemp::Faulting;
    ctr.add("recovery_fault_ins");
    // Pull every line of the value from NVM; the commit record rides
    // the same scan. Lines map to different banks and read in
    // parallel, so the fault-in completes when the slowest one does.
    sim::Tick done_at = eq.now();
    for (std::uint32_t i = 0; i < cfg.valueLines; ++i) {
        sim::Tick t = nvmDev.read(eq.now(), addrOf(key) + 64ull * i);
        if (t > done_at)
            done_at = t;
    }
    std::uint32_t ep = currentEpoch;
    eq.schedule(done_at, [this, ep, key] {
        if (ep != currentEpoch)
            return; // raced another crash; abortInFlight demoted us
        completeFaultIn(key);
    });
    return done_at;
}

void
ProtocolNode::completeFaultIn(KeyId key)
{
    assert(instantActive && keyTemp[key] == KeyTemp::Faulting);
    // Checksum-verified local load (rolls torn staging back to the
    // last intact copy), then merge in the freshest version the live
    // peers hold — the per-key slice of recovery state transfer.
    Version best = settleStaleStaging(key);
    if (freshestFn) {
        Version peer = freshestFn(key);
        if (best < peer)
            best = peer;
    }
    installFaulted(key, best);
    keyTemp[key] = KeyTemp::Warm;
    assert(coldRemaining > 0);
    --coldRemaining;
    wakeWaiters(key);
    if (coldRemaining == 0)
        finishInstantRecovery();
}

void
ProtocolNode::installFaulted(KeyId key, Version ver)
{
    // Monotone install: catch-up INVs/VALs/UPDs may already have
    // advanced the cold key past its durable baseline — the fault-in
    // must never regress what post-restart traffic established.
    KeyReplica &kr = keyState(key);
    noteVersion(key, ver);
    if (kr.volatileVer < ver) {
        kr.volatileVer = ver;
        if (ver.number > 0)
            backend->put(key, ver.number);
    }
    if (kr.persistedVer < ver)
        kr.persistedVer = ver;
    if (kr.globalPersistVer < ver)
        kr.globalPersistVer = ver;
    if (image.intactVersion(key) < ver)
        image.installCommitted(key, ver);
}

void
ProtocolNode::scheduleBackfill(sim::Tick delay)
{
    if (!instantActive || coldRemaining == 0 ||
        backfillCursor >= keys.size())
        return;
    std::uint32_t ep = currentEpoch;
    eq.scheduleIn(delay, [this, ep] {
        if (ep != currentEpoch || !instantActive)
            return;
        // Fault in the next batch of still-cold keys. Keys the request
        // stream already touched are Faulting or Warm and skip for
        // free — on-demand traffic effectively prioritizes hot keys
        // ahead of this cursor.
        std::uint32_t batch = 0;
        sim::Tick batch_done = eq.now();
        while (batch < cfg.instantBackfillBatch &&
               backfillCursor < keys.size()) {
            KeyId key = backfillCursor++;
            if (keyTemp[key] != KeyTemp::Cold)
                continue;
            sim::Tick t = startFaultIn(key);
            if (t > batch_done)
                batch_done = t;
            ++batch;
        }
        // Flow control: the next round waits for this batch's NVM
        // reads to drain plus the configured pause. Without it a
        // multi-line backfill can outrun the device's service rate,
        // and demand fault-ins queue behind an ever-growing backlog.
        scheduleBackfill(batch_done - eq.now() +
                         cfg.instantBackfillInterval);
    });
}

void
ProtocolNode::finishInstantRecovery()
{
    if (!instantActive)
        return;
    instantActive = false;
    keyTemp.clear();
    keyTemp.shrink_to_fit();
    staleStaging.clear();
    freshestFn = nullptr;
    ctr.add("instant_recoveries_completed");
    auto done = std::move(recoveryDoneFn);
    recoveryDoneFn = nullptr;
    if (done)
        done();
}

void
ProtocolNode::installRecovered(KeyId key, Version version)
{
    KeyReplica &kr = keyState(key);
    kr.volatileVer = version;
    kr.persistedVer = version;
    kr.globalPersistVer = version;
    noteVersion(key, version);
    image.installCommitted(key, version);
    if (version.number > 0)
        backend->put(key, version.number);
}

void
ProtocolNode::setDown(bool down)
{
    if (downFlag == down)
        return;
    downFlag = down;
    peerUp[self] = !down;
    ctr.add(down ? "node_down" : "node_restarted");
}

void
ProtocolNode::setPeerDown(NodeId peer, bool down)
{
    assert(peer < peerUp.size());
    bool came_back = !down && !peerUp[peer];
    peerUp[peer] = !down;
    if (!came_back || peer == self || downFlag)
        return;

    // Re-join catch-up: write rounds issued during the peer's downtime
    // never reached it, so without help the returning replica would
    // keep serving the superseded version after those writes complete
    // — a linearizability hole on re-join. Rounds still invalidating
    // get their INV re-sent with the ack set widened (the round now
    // waits for the returning replica too); rounds already validated
    // get the winning value pushed directly.
    for (auto &[id, r] : rounds) {
        if (r.kind != Round::Kind::Write)
            continue;
        if (!rmap.isReplica(r.key, peer))
            continue;
        if (isAckRoundConsistency() && !r.consistencyDone) {
            Message inv = makeMsg(MsgType::Inv, r.key, r.ver, id);
            inv.hasData = true;
            inv.dataLines = cfg.valueLines;
            inv.xactId = r.xactId;
            inv.scopeId = r.scopeId;
            inv.clientId = r.clientId;
            inv.clientSeq = r.clientSeq;
            sendTo(peer, std::move(inv));
            ++r.followersNeeded;
            ctr.add("rejoin_round_invs");
        } else if (r.consistencyDone) {
            Message val = makeMsg(MsgType::ValC, r.key, r.ver, 0);
            val.clientId = r.clientId;
            val.clientSeq = r.clientSeq;
            sendTo(peer, std::move(val));
            ctr.add("rejoin_round_vals");
        }
    }
}

std::uint32_t
ProtocolNode::liveFollowers() const
{
    std::uint32_t n = 0;
    for (NodeId i = 0; i < cfg.numNodes; ++i) {
        if (i != self && peerUp[i])
            ++n;
    }
    return n;
}

std::uint32_t
ProtocolNode::liveFollowerCount(KeyId key) const
{
    if (rmap.full())
        return liveFollowers();
    std::uint32_t n = 0;
    for (std::uint32_t i = 0; i < rmap.factor(); ++i) {
        NodeId r = rmap.replica(key, i);
        if (r != self && peerUp[r])
            ++n;
    }
    return n;
}

void
ProtocolNode::noteClientSeq(std::uint32_t client, std::uint64_t seq)
{
    std::uint64_t &seen = clientSeqSeen[client];
    if (seen < seq)
        seen = seq;
}

Version
ProtocolNode::visibleVersion(KeyId key) const
{
    // A cold key's volatile copy was wiped by the instant crash but
    // its durable intact version is recoverable on demand; report the
    // stronger of the two so recovery hooks and durability audits see
    // what a fault-in would establish.
    const KeyReplica &kr = keyState(key);
    if (keyCold(key)) {
        Version intact = image.intactVersion(key);
        return kr.volatileVer < intact ? intact : kr.volatileVer;
    }
    return kr.volatileVer;
}

Version
ProtocolNode::persistedVersion(KeyId key) const
{
    const KeyReplica &kr = keyState(key);
    if (keyCold(key)) {
        Version intact = image.intactVersion(key);
        return kr.persistedVer < intact ? intact : kr.persistedVer;
    }
    return kr.persistedVer;
}

} // namespace ddp::core
