#include "ddp/checkers.hh"

namespace ddp::core {

void
PropertyChecker::onRead(net::NodeId node, net::KeyId key,
                        net::Version version, sim::Tick issued_at,
                        sim::Tick completed_at)
{
    (void)completed_at;
    ++reads;

    auto [it, fresh] = lastReads.try_emplace({node, key},
                                             LastRead{version});
    if (!fresh) {
        if (version < it->second.version)
            ++monotonicViol;
        else
            it->second.version = version;
    }

    auto cw = completed.find(key);
    if (cw != completed.end() && cw->second.completedAt < issued_at &&
        version < cw->second.version) {
        ++staleViol;
    }

    // A torn value must never be served to a client, no matter how
    // weak the binding: recovery either rolls it back (commit records)
    // or, in the ablation, installs it — and we catch the serve here.
    if (!tornValues.empty() &&
        tornValues.count(std::make_pair(key, version))) {
        ++tornServedCount;
    }
}

void
PropertyChecker::onWriteComplete(net::KeyId key, net::Version version,
                                 sim::Tick completed_at)
{
    ++writes;
    auto [it, fresh] =
        completed.try_emplace(key, CompletedWrite{version, completed_at});
    if (!fresh && it->second.version < version) {
        it->second.version = version;
        it->second.completedAt = completed_at;
    }
    ackedAlive[key].push_back(version);
}

void
PropertyChecker::onTornDetected(net::NodeId node, net::KeyId key,
                                net::Version rolled_back_to)
{
    (void)node;
    (void)key;
    (void)rolled_back_to;
    ++tornDetectedCount;
}

void
PropertyChecker::onTornInstall(net::NodeId node, net::KeyId key,
                               net::Version torn_version)
{
    (void)node;
    ++tornInstallCount;
    tornValues.emplace(key, torn_version);
}

std::uint64_t
PropertyChecker::auditLostWrites(
    const std::function<net::Version(net::KeyId)> &recovered_version) const
{
    // One count per key whose *latest acknowledged* write did not
    // survive recovery; earlier acknowledged writes to the same key are
    // subsumed by the latest one.
    std::uint64_t lost = 0;
    for (const auto &[key, cw] : completed) {
        if (recovered_version(key) < cw.version)
            ++lost;
    }
    return lost;
}

PropertyChecker::DurabilityAudit
PropertyChecker::auditDurability(
    const DdpModel &model,
    const std::function<net::Version(net::KeyId)> &recovered_version)
{
    ++crashEpochCount;

    DurabilityAudit audit;
    audit.zeroLossRequired = writesDurableAtCompletion(model);
    audit.tornInstalled = tornInstallCount;
    audit.tornServed = tornServedCount;

    for (auto &[key, alive] : ackedAlive) {
        if (alive.empty())
            continue;
        net::Version recovered = recovered_version(key);
        net::Version latest{};
        std::size_t kept = 0;
        for (net::Version v : alive) {
            if (latest < v)
                latest = v;
            if (recovered < v) {
                // This acknowledged write did not survive the crash.
                // Prune it: the next crash epoch must not re-judge a
                // write that is already gone.
                ++audit.lostAckedWrites;
            } else {
                alive[kept++] = v;
            }
        }
        alive.resize(kept);
        if (recovered < latest)
            ++audit.lostAckedKeys;
    }
    return audit;
}

void
PropertyChecker::resetObservations()
{
    lastReads.clear();
    completed.clear();
    ackedAlive.clear();
}

void
PropertyChecker::clear()
{
    resetObservations();
    tornValues.clear();
    monotonicViol = 0;
    staleViol = 0;
    reads = 0;
    writes = 0;
    crashEpochCount = 0;
    tornDetectedCount = 0;
    tornInstallCount = 0;
    tornServedCount = 0;
}

} // namespace ddp::core
