#include "ddp/checkers.hh"

namespace ddp::core {

void
PropertyChecker::onRead(net::NodeId node, net::KeyId key,
                        net::Version version, sim::Tick issued_at,
                        sim::Tick completed_at)
{
    (void)completed_at;
    ++reads;

    auto [it, fresh] = lastReads.try_emplace({node, key},
                                             LastRead{version});
    if (!fresh) {
        if (version < it->second.version)
            ++monotonicViol;
        else
            it->second.version = version;
    }

    auto cw = completed.find(key);
    if (cw != completed.end() && cw->second.completedAt < issued_at &&
        version < cw->second.version) {
        ++staleViol;
    }
}

void
PropertyChecker::onWriteComplete(net::KeyId key, net::Version version,
                                 sim::Tick completed_at)
{
    ++writes;
    auto [it, fresh] =
        completed.try_emplace(key, CompletedWrite{version, completed_at});
    if (!fresh && it->second.version < version) {
        it->second.version = version;
        it->second.completedAt = completed_at;
    }
}

std::uint64_t
PropertyChecker::auditLostWrites(
    const std::function<net::Version(net::KeyId)> &recovered_version) const
{
    // One count per key whose *latest acknowledged* write did not
    // survive recovery; earlier acknowledged writes to the same key are
    // subsumed by the latest one.
    std::uint64_t lost = 0;
    for (const auto &[key, cw] : completed) {
        if (recovered_version(key) < cw.version)
            ++lost;
    }
    return lost;
}

void
PropertyChecker::resetObservations()
{
    lastReads.clear();
    completed.clear();
}

void
PropertyChecker::clear()
{
    resetObservations();
    monotonicViol = 0;
    staleViol = 0;
    reads = 0;
    writes = 0;
}

} // namespace ddp::core
