#include "ddp/xact_table.hh"

namespace ddp::core {

void
XactConflictTable::begin(std::uint64_t id)
{
    xacts.emplace(id, Sets{});
}

bool
XactConflictTable::accessConflicts(std::uint64_t id, net::KeyId key,
                                   bool is_write, sim::Tick now,
                                   sim::Tick window)
{
    sim::Tick horizon = now > window ? now - window : 0;
    auto recent = [horizon](const std::unordered_map<net::KeyId,
                                                     sim::Tick> &set,
                            net::KeyId k) {
        auto e = set.find(k);
        return e != set.end() && e->second >= horizon;
    };

    bool conflict = false;
    for (const auto &[other_id, sets] : xacts) {
        if (other_id == id)
            continue;
        // W/W and R/W on the same key conflict; R/R does not.
        if (recent(sets.writes, key) ||
            (is_write && recent(sets.reads, key))) {
            conflict = true;
            break;
        }
    }

    // Record the access only when it proceeds; a stalled retry must
    // not keep re-poisoning the window for everyone else.
    if (!conflict) {
        auto it = xacts.find(id);
        if (it != xacts.end()) {
            if (is_write)
                it->second.writes[key] = now;
            else
                it->second.reads[key] = now;
        }
    }

    if (conflict)
        ++conflicts;
    return conflict;
}

void
XactConflictTable::end(std::uint64_t id)
{
    xacts.erase(id);
}

void
XactConflictTable::clear()
{
    xacts.clear();
    conflicts = 0;
}

} // namespace ddp::core
