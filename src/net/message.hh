/**
 * @file
 * Protocol message types (paper Table 3) and common identifiers.
 *
 * Every DDP protocol exchange is expressed with these messages:
 *
 *   INV (+data)      invalidate a key's replica and carry the new value
 *   ACK              acknowledge an event (combined c+p)
 *   ACK_c / ACK_p    acknowledge a consistency / persistency event
 *   VAL              mark the termination of an event (combined)
 *   VAL_c / VAL_p    mark termination of a consistency / persistency event
 *   UPD (+cauhist)   carry an updated value plus its causal history
 *   INITX / ENDX     transaction begin / end
 *   PERSIST_s        end of scope s
 *
 * Under Scope persistency all messages additionally carry the scope id.
 */

#ifndef DDP_NET_MESSAGE_HH
#define DDP_NET_MESSAGE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace ddp::net {

/** Server (replica node) identifier. */
using NodeId = std::uint32_t;

/** Key identifier; keys map to 64 B lines at addr = key * 64. */
using KeyId = std::uint64_t;

/** Sentinel for "no node". */
constexpr NodeId kNoNode = ~NodeId{0};

/**
 * Hermes-style logical timestamp: (version, coordinator) compared
 * lexicographically, so concurrent writes to a key resolve identically
 * at every replica.
 */
struct Version
{
    std::uint64_t number = 0;
    NodeId writer = 0;

    friend bool
    operator<(const Version &a, const Version &b)
    {
        if (a.number != b.number)
            return a.number < b.number;
        return a.writer < b.writer;
    }
    friend bool
    operator==(const Version &a, const Version &b)
    {
        return a.number == b.number && a.writer == b.writer;
    }
    friend bool operator!=(const Version &a, const Version &b)
    { return !(a == b); }
    friend bool operator>(const Version &a, const Version &b)
    { return b < a; }
    friend bool operator<=(const Version &a, const Version &b)
    { return !(b < a); }
    friend bool operator>=(const Version &a, const Version &b)
    { return !(a < b); }
};

/** Message kinds, one per row of paper Table 3. */
enum class MsgType : std::uint8_t
{
    Inv,     ///< INV (+data)
    Ack,     ///< ACK (combined consistency+persistency)
    AckC,    ///< ACK_c
    AckP,    ///< ACK_p
    Val,     ///< VAL (combined)
    ValC,    ///< VAL_c
    ValP,    ///< VAL_p
    Upd,     ///< UPD (+cauhist)
    InitX,   ///< INITX
    EndX,    ///< ENDX
    Persist, ///< [PERSIST]s

    // Recovery protocol (crash recovery, paper Sec. 9): batched
    // version-summary voting followed by winner installation.
    RecQuery,   ///< coordinator asks for a key range's versions
    RecSummary, ///< replica's packed versions for the range
    RecInstall, ///< winners the replicas must install
    RecAck,     ///< installation finished

    /**
     * Link-level delivery acknowledgment of the reliable-delivery
     * layer (NIC firmware, not protocol traffic): acknowledges the
     * per-QP sequence number in netSeq. Never surfaced to protocol
     * handlers, never itself acknowledged or retransmitted.
     */
    NetAck,
};

/** Human-readable message-type name (for traces and tests). */
const char *msgTypeName(MsgType t);

/** Vector-clock causal history: per-server applied-update counters. */
using CausalHistory = std::vector<std::uint64_t>;

/** One protocol message. */
struct Message
{
    MsgType type = MsgType::Inv;
    NodeId src = 0;
    NodeId dst = 0;
    KeyId key = 0;
    Version version{};

    /** Matches ACK/VAL traffic to the originating write operation. */
    std::uint64_t opId = 0;

    /** Scope id (Scope persistency); 0 when unused. */
    std::uint64_t scopeId = 0;

    /** Transaction id (Transactional consistency); 0 when unused. */
    std::uint64_t xactId = 0;

    /** Causal dependencies (Causal consistency UPDs only). */
    CausalHistory cauhist;

    /** True for messages that carry the value payload. */
    bool hasData = false;
    /** 64 B lines the value payload spans (ignored unless hasData). */
    std::uint32_t dataLines = 1;

    /** Commit flag for ENDX (false = abort the transaction). */
    bool commit = true;

    /**
     * Failure epoch of the sender. Receivers drop messages from an
     * older epoch, modeling in-flight traffic lost to a crash.
     */
    std::uint32_t epoch = 0;

    /**
     * Per-(src, dst) queue-pair sequence number assigned by the
     * reliable-delivery layer (0 = unsequenced). For NetAck this is
     * the sequence number being acknowledged.
     */
    std::uint64_t netSeq = 0;

    /**
     * Exactly-once retransmission identity of the originating client
     * request (clientSeq 0 = none). Rides on INV/UPD/VAL so every
     * replica learns which client sequence numbers are already applied
     * and can dedup a failed-over client's retransmits.
     */
    std::uint32_t clientId = 0;
    std::uint64_t clientSeq = 0;

    /** Wire size, used for NIC serialization timing. */
    std::uint32_t sizeBytes() const;
};

} // namespace ddp::net

#endif // DDP_NET_MESSAGE_HH
