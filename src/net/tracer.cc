#include "net/tracer.hh"

#include <iomanip>
#include <ostream>

namespace ddp::net {

std::size_t
MessageTracer::countOf(MsgType type) const
{
    std::size_t n = 0;
    for (const auto &e : entries) {
        if (e.type == type)
            ++n;
    }
    return n;
}

void
MessageTracer::dump(std::ostream &os, bool key_filter, KeyId key) const
{
    for (const auto &e : entries) {
        if (key_filter && e.key != key)
            continue;
        os << '[' << std::setw(9)
           << static_cast<std::uint64_t>(e.at / sim::kNanosecond)
           << " ns] " << std::left << std::setw(8)
           << msgTypeName(e.type) << std::right << e.src << " -> "
           << e.dst << "  key=" << e.key << " ver=" << e.version.number
           << '.' << e.version.writer;
        if (e.opId != 0)
            os << " op=" << e.opId;
        if (e.xactId != 0)
            os << " xact=" << e.xactId;
        if (e.scopeId != 0)
            os << " scope=" << e.scopeId;
        os << '\n';
    }
}

} // namespace ddp::net
