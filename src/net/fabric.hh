/**
 * @file
 * RDMA-style NIC and full-mesh fabric models.
 *
 * Each server owns one Nic. A message spends: TX serialization (line
 * rate, paper default 200 Gb/s), half the NIC-to-NIC round trip
 * (default 1 us RTT), and RX processing. Messages between the same
 * (src, dst) pair travel on the same reliable-connected queue pair and
 * are delivered in order, matching RDMA RC semantics — the protocols
 * rely on INV-before-VAL ordering per peer.
 *
 * The verb layer distinguishes two delivery classes, following the SNIA
 * NVM-PM remote-access proposals the paper models:
 *  - one-sided ops (RDMA WRITE / WRITE_PERSIST) bypass the remote CPU
 *    and land in the LLC via DDIO;
 *  - two-sided SENDs are charged remote CPU processing by the receiver.
 */

#ifndef DDP_NET_FABRIC_HH
#define DDP_NET_FABRIC_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "net/fault.hh"
#include "net/message.hh"
#include "net/tracer.hh"
#include "sim/event_queue.hh"
#include "sim/resource.hh"
#include "sim/ticks.hh"
#include "sim/trace.hh"

namespace ddp::net {

/** Fabric topology. */
enum class Topology : std::uint8_t
{
    /** Every pair of NICs is one switch hop apart (the default). */
    FullMesh,
    /**
     * Two racks of rackSize nodes each behind top-of-rack switches
     * joined by one shared, possibly oversubscribed uplink: inter-rack
     * messages pay two extra switch traversals and serialize on the
     * uplink. Models the hybrid local/remote deployments of Sec. 9.
     */
    TwoTier,
};

/**
 * Reliable-delivery (go-back-on-timeout) parameters. When enabled,
 * every non-loopback message carries a per-(src, dst) queue-pair
 * sequence number; the receiver acknowledges each arrival with a
 * link-level NET_ACK, resequences out-of-order arrivals, and filters
 * duplicates, while the sender retransmits unacknowledged messages
 * with exponential backoff up to a retry cap. This restores the RDMA
 * RC in-order exactly-once contract on top of a lossy FaultPlan wire.
 */
struct ReliabilityParams
{
    bool enabled = false;
    /** Initial retransmission timeout (doubles per attempt). */
    sim::Tick baseTimeout = 10 * sim::kMicrosecond;
    /** Backoff ceiling for the retransmission timeout. */
    sim::Tick maxTimeout = 640 * sim::kMicrosecond;
    /**
     * Retransmission attempts before the sender gives the message up
     * for lost (a real RC QP would break the connection; we count it
     * and move on so partitioned peers cannot wedge the simulation).
     */
    std::uint32_t maxRetries = 10;

    /** Backoff-scaled timeout for the given (0-based) attempt. */
    sim::Tick
    timeoutFor(std::uint32_t attempt) const
    {
        sim::Tick to = baseTimeout;
        for (std::uint32_t i = 0; i < attempt && to < maxTimeout; ++i)
            to *= 2;
        return to < maxTimeout ? to : maxTimeout;
    }
};

/** NIC and fabric timing parameters (paper Table 5 defaults). */
struct NetworkParams
{
    /** NIC line rate, bits per second. */
    std::uint64_t bandwidthBps = 200ULL * 1000 * 1000 * 1000;
    /** NIC-to-NIC round-trip latency. */
    sim::Tick roundTrip = 1 * sim::kMicrosecond;

    Topology topology = Topology::FullMesh;
    /** Nodes per rack (TwoTier). */
    std::uint32_t rackSize = 3;
    /** Extra one-way latency per inter-rack traversal (TwoTier). */
    sim::Tick interRackHop = 500 * sim::kNanosecond;
    /** Shared uplink line rate between the racks (TwoTier). */
    std::uint64_t uplinkBandwidthBps = 100ULL * 1000 * 1000 * 1000;
    /** Queue pairs available per NIC. */
    std::uint32_t queuePairs = 400;
    /** Fixed per-message TX pipeline overhead (high-end NICs sustain
     *  hundreds of Mpps across queue pairs). */
    sim::Tick txOverhead = 10 * sim::kNanosecond;
    /** Fixed per-message RX pipeline overhead. */
    sim::Tick rxOverhead = 10 * sim::kNanosecond;

    /** Reliable-delivery layer (off by default: a perfect wire needs
     *  neither acks nor retransmissions). */
    ReliabilityParams reliability{};

    /** Serialization time for @p bytes at the line rate. */
    sim::Tick
    serializationTicks(std::uint32_t bytes) const
    {
        // bytes * 8 bits / (bps) seconds -> ticks.
        return static_cast<sim::Tick>(
            (static_cast<__uint128_t>(bytes) * 8 * sim::kSecond) /
            bandwidthBps);
    }

    /** Serialization time on the inter-rack uplink. */
    sim::Tick
    uplinkSerializationTicks(std::uint32_t bytes) const
    {
        return static_cast<sim::Tick>(
            (static_cast<__uint128_t>(bytes) * 8 * sim::kSecond) /
            uplinkBandwidthBps);
    }

    /** Rack of @p node under the TwoTier topology. */
    std::uint32_t
    rackOf(NodeId node) const
    {
        return node / rackSize;
    }
};

class Fabric;

/**
 * One server's NIC. Owns the TX serializer and the per-destination
 * queue-pair ordering state.
 */
class Nic
{
  public:
    Nic(NodeId owner, const NetworkParams &params, std::size_t num_nodes);

    NodeId owner() const { return id; }

    /**
     * Compute the time the head of @p msg leaves this NIC if handed to
     * the TX pipeline at @p at, updating TX occupancy.
     */
    sim::Tick transmit(sim::Tick at, const Message &msg);

    /**
     * Enforce per-(src,dst) in-order delivery: returns the delivery
     * time, at least @p arrival and monotonic per destination.
     */
    sim::Tick orderDelivery(NodeId dst, sim::Tick arrival);

    /** RX-side processing completion for a message arriving at @p at. */
    sim::Tick receive(sim::Tick at, const Message &msg);

    std::uint64_t txMessages() const { return txCount; }
    std::uint64_t txBytes() const { return txByteCount; }
    std::uint64_t rxMessages() const { return rxCount; }

    // --- Fault / reliability accounting ------------------------------------
    /** Messages this NIC sent that the fabric dropped or severed. */
    std::uint64_t txDropped() const { return dropCount; }
    /** Retransmissions this NIC issued. */
    std::uint64_t txRetransmits() const { return retransmitCount; }
    /** Retransmission timeouts that fired on this NIC. */
    std::uint64_t rtoTimeouts() const { return timeoutCount; }

    void noteDrop() { ++dropCount; }
    void noteRetransmit() { ++retransmitCount; }
    void noteTimeout() { ++timeoutCount; }

  private:
    NodeId id;
    NetworkParams cfg;
    sim::FifoResource txPipe;
    sim::FifoResource rxPipe;
    /** Last delivery time per destination (per-QP ordering). */
    std::vector<sim::Tick> lastDelivery;
    std::uint64_t txCount = 0;
    std::uint64_t txByteCount = 0;
    std::uint64_t rxCount = 0;
    std::uint64_t dropCount = 0;
    std::uint64_t retransmitCount = 0;
    std::uint64_t timeoutCount = 0;
};

/**
 * Full-mesh fabric connecting N NICs. Delivery invokes the registered
 * per-node handler through the shared event queue.
 */
class Fabric
{
  public:
    using Handler = std::function<void(const Message &)>;

    Fabric(sim::EventQueue &eq, const NetworkParams &params,
           std::size_t num_nodes);

    /** Register the message handler for @p node. */
    void attach(NodeId node, Handler handler);

    /**
     * Send @p msg from its src to its dst. Self-sends are delivered
     * immediately (no network traversal). Takes the message by value:
     * callers with a throwaway copy should std::move() it in, and the
     * payload (cauhist etc.) is then *moved* hop to hop — parked in a
     * slab while in flight instead of being copied into each event
     * closure.
     */
    void send(Message msg);

    /** Send @p msg to every node except @p msg.src (broadcast). */
    void broadcast(Message msg);

    const NetworkParams &params() const { return cfg; }
    Nic &nic(NodeId node) { return *nics[node]; }
    std::size_t numNodes() const { return nics.size(); }

    /** Attach a message tracer (nullptr detaches). */
    void setTracer(MessageTracer *t) { tracer = t; }

    /**
     * Attach a timeline recorder (nullptr detaches; not owned). Wire
     * spans are emitted on the sender's pid (tid 1 = "nic"): one
     * complete event per transmission covering TX serialization
     * through RX completion, plus instants for drops and retransmits.
     */
    void setTrace(sim::TraceRecorder *t) { trace = t; }

    /**
     * Attach a fault-injection plan (nullptr detaches; not owned).
     * Injection applies to every transmission, including link-level
     * acks and retransmissions.
     */
    void setFaultPlan(FaultPlan *p) { faults = p; }
    FaultPlan *faultPlan() const { return faults; }

    std::uint64_t totalMessages() const { return msgCount; }
    std::uint64_t totalBytes() const { return byteCount; }

    // --- Fault / reliability accounting (whole-fabric totals) --------------
    /** Messages lost to injected drops or severed links. */
    std::uint64_t droppedMessages() const { return dropCount; }
    /** Retransmissions issued across all NICs. */
    std::uint64_t retransmits() const { return retransmitCount; }
    /** Retransmission timeouts fired across all NICs. */
    std::uint64_t rtoTimeouts() const { return timeoutCount; }
    /** Messages abandoned after the retry cap. */
    std::uint64_t retransmitGiveUps() const { return giveUpCount; }
    /** Link-level NET_ACKs sent. */
    std::uint64_t netAcksSent() const { return ackCount; }
    /** Arrivals discarded as duplicates by the reliable layer. */
    std::uint64_t duplicateArrivals() const { return dupArrivalCount; }
    /** Arrivals parked for resequencing by the reliable layer. */
    std::uint64_t outOfOrderArrivals() const { return oooArrivalCount; }
    /** Sequenced messages still awaiting acknowledgment. */
    std::uint64_t unackedMessages() const;

  private:
    /**
     * Reliable-delivery state of one directed (src, dst) queue pair:
     * the sender half lives with src, the receiver half with dst.
     */
    struct QpState
    {
        struct Pending
        {
            Message msg;
            sim::TimerId timer = sim::kNoTimer;
            std::uint32_t attempt = 0;
        };

        // Sender side.
        std::uint64_t nextSendSeq = 1;
        std::map<std::uint64_t, Pending> inFlight;

        // Receiver side.
        std::uint64_t nextExpected = 1;
        std::map<std::uint64_t, Message> resequenceBuf;
    };

    QpState &qp(NodeId src, NodeId dst);

    /** Fault-check @p msg and put surviving copies on the wire. */
    void transmitRaw(Message msg);
    /** Timing path of one physical copy. */
    void transmitOnce(Message msg, sim::Tick extra_delay, bool reorder);

    /**
     * Park an in-flight message until its delivery event fires. The
     * event closure then carries only a 4-byte slab index (so it stays
     * inside the event queue's inline-callback buffer) and the Message
     * itself is moved exactly once in and once out.
     */
    std::uint32_t park(Message &&msg);
    Message unpark(std::uint32_t idx);
    /** Runs at RX completion: reliable-layer filtering + handler. */
    void deliverArrival(const Message &msg);
    void handleNetAck(const Message &ack);
    void armRetransmit(NodeId src, NodeId dst, std::uint64_t seq);
    void onRetransmitTimeout(NodeId src, NodeId dst, std::uint64_t seq);

    sim::EventQueue &queue;
    NetworkParams cfg;
    std::vector<std::unique_ptr<Nic>> nics;
    std::vector<Handler> handlers;
    /** Shared inter-rack uplink (TwoTier topology). */
    sim::FifoResource uplink;
    MessageTracer *tracer = nullptr;
    sim::TraceRecorder *trace = nullptr;
    FaultPlan *faults = nullptr;
    /** Directed queue pairs, row = src (only used when reliable). */
    std::vector<QpState> qps;
    /** In-flight message slab (see park()/unpark()). */
    std::vector<Message> parked;
    std::vector<std::uint32_t> parkedFree;
    std::uint64_t msgCount = 0;
    std::uint64_t byteCount = 0;
    std::uint64_t dropCount = 0;
    std::uint64_t retransmitCount = 0;
    std::uint64_t timeoutCount = 0;
    std::uint64_t giveUpCount = 0;
    std::uint64_t ackCount = 0;
    std::uint64_t dupArrivalCount = 0;
    std::uint64_t oooArrivalCount = 0;
};

} // namespace ddp::net

#endif // DDP_NET_FABRIC_HH
