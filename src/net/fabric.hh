/**
 * @file
 * RDMA-style NIC and full-mesh fabric models.
 *
 * Each server owns one Nic. A message spends: TX serialization (line
 * rate, paper default 200 Gb/s), half the NIC-to-NIC round trip
 * (default 1 us RTT), and RX processing. Messages between the same
 * (src, dst) pair travel on the same reliable-connected queue pair and
 * are delivered in order, matching RDMA RC semantics — the protocols
 * rely on INV-before-VAL ordering per peer.
 *
 * The verb layer distinguishes two delivery classes, following the SNIA
 * NVM-PM remote-access proposals the paper models:
 *  - one-sided ops (RDMA WRITE / WRITE_PERSIST) bypass the remote CPU
 *    and land in the LLC via DDIO;
 *  - two-sided SENDs are charged remote CPU processing by the receiver.
 */

#ifndef DDP_NET_FABRIC_HH
#define DDP_NET_FABRIC_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/message.hh"
#include "net/tracer.hh"
#include "sim/event_queue.hh"
#include "sim/resource.hh"
#include "sim/ticks.hh"

namespace ddp::net {

/** Fabric topology. */
enum class Topology : std::uint8_t
{
    /** Every pair of NICs is one switch hop apart (the default). */
    FullMesh,
    /**
     * Two racks of rackSize nodes each behind top-of-rack switches
     * joined by one shared, possibly oversubscribed uplink: inter-rack
     * messages pay two extra switch traversals and serialize on the
     * uplink. Models the hybrid local/remote deployments of Sec. 9.
     */
    TwoTier,
};

/** NIC and fabric timing parameters (paper Table 5 defaults). */
struct NetworkParams
{
    /** NIC line rate, bits per second. */
    std::uint64_t bandwidthBps = 200ULL * 1000 * 1000 * 1000;
    /** NIC-to-NIC round-trip latency. */
    sim::Tick roundTrip = 1 * sim::kMicrosecond;

    Topology topology = Topology::FullMesh;
    /** Nodes per rack (TwoTier). */
    std::uint32_t rackSize = 3;
    /** Extra one-way latency per inter-rack traversal (TwoTier). */
    sim::Tick interRackHop = 500 * sim::kNanosecond;
    /** Shared uplink line rate between the racks (TwoTier). */
    std::uint64_t uplinkBandwidthBps = 100ULL * 1000 * 1000 * 1000;
    /** Queue pairs available per NIC. */
    std::uint32_t queuePairs = 400;
    /** Fixed per-message TX pipeline overhead (high-end NICs sustain
     *  hundreds of Mpps across queue pairs). */
    sim::Tick txOverhead = 10 * sim::kNanosecond;
    /** Fixed per-message RX pipeline overhead. */
    sim::Tick rxOverhead = 10 * sim::kNanosecond;

    /** Serialization time for @p bytes at the line rate. */
    sim::Tick
    serializationTicks(std::uint32_t bytes) const
    {
        // bytes * 8 bits / (bps) seconds -> ticks.
        return static_cast<sim::Tick>(
            (static_cast<__uint128_t>(bytes) * 8 * sim::kSecond) /
            bandwidthBps);
    }

    /** Serialization time on the inter-rack uplink. */
    sim::Tick
    uplinkSerializationTicks(std::uint32_t bytes) const
    {
        return static_cast<sim::Tick>(
            (static_cast<__uint128_t>(bytes) * 8 * sim::kSecond) /
            uplinkBandwidthBps);
    }

    /** Rack of @p node under the TwoTier topology. */
    std::uint32_t
    rackOf(NodeId node) const
    {
        return node / rackSize;
    }
};

class Fabric;

/**
 * One server's NIC. Owns the TX serializer and the per-destination
 * queue-pair ordering state.
 */
class Nic
{
  public:
    Nic(NodeId owner, const NetworkParams &params, std::size_t num_nodes);

    NodeId owner() const { return id; }

    /**
     * Compute the time the head of @p msg leaves this NIC if handed to
     * the TX pipeline at @p at, updating TX occupancy.
     */
    sim::Tick transmit(sim::Tick at, const Message &msg);

    /**
     * Enforce per-(src,dst) in-order delivery: returns the delivery
     * time, at least @p arrival and monotonic per destination.
     */
    sim::Tick orderDelivery(NodeId dst, sim::Tick arrival);

    /** RX-side processing completion for a message arriving at @p at. */
    sim::Tick receive(sim::Tick at, const Message &msg);

    std::uint64_t txMessages() const { return txCount; }
    std::uint64_t txBytes() const { return txByteCount; }
    std::uint64_t rxMessages() const { return rxCount; }

  private:
    NodeId id;
    NetworkParams cfg;
    sim::FifoResource txPipe;
    sim::FifoResource rxPipe;
    /** Last delivery time per destination (per-QP ordering). */
    std::vector<sim::Tick> lastDelivery;
    std::uint64_t txCount = 0;
    std::uint64_t txByteCount = 0;
    std::uint64_t rxCount = 0;
};

/**
 * Full-mesh fabric connecting N NICs. Delivery invokes the registered
 * per-node handler through the shared event queue.
 */
class Fabric
{
  public:
    using Handler = std::function<void(const Message &)>;

    Fabric(sim::EventQueue &eq, const NetworkParams &params,
           std::size_t num_nodes);

    /** Register the message handler for @p node. */
    void attach(NodeId node, Handler handler);

    /**
     * Send @p msg from its src to its dst. Self-sends are delivered
     * immediately (no network traversal).
     */
    void send(const Message &msg);

    /** Send @p msg to every node except @p msg.src (broadcast). */
    void broadcast(Message msg);

    const NetworkParams &params() const { return cfg; }
    Nic &nic(NodeId node) { return *nics[node]; }
    std::size_t numNodes() const { return nics.size(); }

    /** Attach a message tracer (nullptr detaches). */
    void setTracer(MessageTracer *t) { tracer = t; }

    std::uint64_t totalMessages() const { return msgCount; }
    std::uint64_t totalBytes() const { return byteCount; }

  private:
    sim::EventQueue &queue;
    NetworkParams cfg;
    std::vector<std::unique_ptr<Nic>> nics;
    std::vector<Handler> handlers;
    /** Shared inter-rack uplink (TwoTier topology). */
    sim::FifoResource uplink;
    MessageTracer *tracer = nullptr;
    std::uint64_t msgCount = 0;
    std::uint64_t byteCount = 0;
};

} // namespace ddp::net

#endif // DDP_NET_FABRIC_HH
