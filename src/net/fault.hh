/**
 * @file
 * Deterministic fault injection for the simulated fabric.
 *
 * A FaultPlan sits between Fabric::send() and the wire. For every
 * message it decides — from a seeded PCG stream, so chaos runs stay
 * bit-reproducible — whether the message is dropped, duplicated,
 * delayed, or delivered out of order on its (src, dst) link, and
 * whether the link is currently severed by a scheduled partition or a
 * node outage. The plan is pure policy: the Fabric applies the
 * decisions and owns all timing.
 *
 * Faults compose with the reliable-delivery layer
 * (NetworkParams::reliability): with reliability enabled a dropped
 * message is retransmitted after a timeout and reordered messages are
 * resequenced at the receiver, so protocol invariants that rely on
 * in-order per-QP delivery survive a lossy wire.
 */

#ifndef DDP_NET_FAULT_HH
#define DDP_NET_FAULT_HH

#include <cstdint>
#include <vector>

#include "net/message.hh"
#include "sim/random.hh"
#include "sim/ticks.hh"

namespace ddp::net {

/** Per-link fault rates (each message draws independently). */
struct LinkFaults
{
    /** Probability a message is silently dropped. */
    double dropRate = 0.0;
    /** Probability a message is delivered twice. */
    double duplicateRate = 0.0;
    /** Probability a message takes extra wire latency. */
    double delayRate = 0.0;
    /** Extra latency range applied when a delay fires. */
    sim::Tick delayMin = 1 * sim::kMicrosecond;
    sim::Tick delayMax = 10 * sim::kMicrosecond;
    /** Probability a message bypasses the QP's in-order delivery. */
    double reorderRate = 0.0;

    bool
    any() const
    {
        return dropRate > 0.0 || duplicateRate > 0.0 ||
               delayRate > 0.0 || reorderRate > 0.0;
    }
};

/**
 * A scheduled network partition: during [from, until) the nodes in
 * @p groupA cannot exchange messages with the nodes outside it.
 * Traffic within either side is unaffected.
 */
struct PartitionWindow
{
    sim::Tick from = 0;
    sim::Tick until = sim::kTickNever;
    std::vector<NodeId> groupA;
};

/**
 * A node outage window: during [from, until) every link to and from
 * @p node is severed (the node itself keeps executing — it is
 * unreachable, not halted — modeling a NIC/ToR failure).
 */
struct NodeOutage
{
    NodeId node = 0;
    sim::Tick from = 0;
    sim::Tick until = sim::kTickNever;
};

/** Declarative fault-injection description (cluster config level). */
struct FaultConfig
{
    /**
     * RNG seed for fault decisions; 0 derives a stream from the
     * experiment seed so the same experiment seed reproduces the same
     * chaos.
     */
    std::uint64_t seed = 0;

    /** Fault rates applied to every (src, dst) link. */
    LinkFaults allLinks{};

    std::vector<PartitionWindow> partitions;
    std::vector<NodeOutage> outages;

    bool
    any() const
    {
        return allLinks.any() || !partitions.empty() || !outages.empty();
    }
};

/**
 * Instantiated fault plan. Attach to a Fabric via setFaultPlan(); the
 * fabric consults it once per transmitted message (including
 * retransmissions and link-level acks, which are just as vulnerable).
 */
class FaultPlan
{
  public:
    FaultPlan(const FaultConfig &config, std::size_t num_nodes,
              std::uint64_t fallback_seed = 1);

    /** Override the fault rates of one directed link. */
    void setLinkFaults(NodeId src, NodeId dst, const LinkFaults &f);

    /** Fault verdict for one transmission attempt. */
    struct Decision
    {
        bool drop = false;
        std::uint32_t duplicates = 0;
        sim::Tick extraDelay = 0;
        bool reorder = false;
    };

    /**
     * Draw the fault decision for a message leaving on (src, dst) at
     * @p now. Consumes RNG state; call exactly once per transmission
     * attempt to keep runs reproducible.
     */
    Decision decide(sim::Tick now, NodeId src, NodeId dst);

    /**
     * True while (src, dst) is severed by a partition window or a node
     * outage at @p now. Checked before decide(); severed-link drops do
     * not consume RNG state.
     */
    bool linkCut(sim::Tick now, NodeId src, NodeId dst) const;

    /** True while @p node is inside one of its outage windows. */
    bool nodeCut(sim::Tick now, NodeId node) const;

    // --- Injection counters -------------------------------------------------
    std::uint64_t drops() const { return dropCount; }
    std::uint64_t duplicatesInjected() const { return dupCount; }
    std::uint64_t delaysInjected() const { return delayCount; }
    std::uint64_t reordersInjected() const { return reorderCount; }
    /** Messages swallowed by a severed link (partition or outage). */
    std::uint64_t partitionDrops() const { return cutCount; }

  private:
    const LinkFaults &linkOf(NodeId src, NodeId dst) const;

    std::size_t numNodes;
    std::vector<LinkFaults> links; ///< numNodes * numNodes, row = src
    std::vector<PartitionWindow> partitions;
    std::vector<NodeOutage> outages;
    sim::Pcg32 rng;

    std::uint64_t dropCount = 0;
    std::uint64_t dupCount = 0;
    std::uint64_t delayCount = 0;
    std::uint64_t reorderCount = 0;
    std::uint64_t cutCount = 0;

    friend class Fabric; ///< counts severed-link drops via noteCut()
    void noteCut() { ++cutCount; }
};

} // namespace ddp::net

#endif // DDP_NET_FAULT_HH
