/**
 * @file
 * Protocol message tracer.
 *
 * An optional observer on the fabric that records every delivered
 * message into a bounded ring buffer and can render a human-readable
 * timeline — the tool of choice when debugging a protocol
 * interleaving ("which VAL released this read?"). Tracing costs
 * nothing when no tracer is attached.
 */

#ifndef DDP_NET_TRACER_HH
#define DDP_NET_TRACER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>

#include "net/message.hh"
#include "sim/ticks.hh"

namespace ddp::net {

/** One traced delivery. */
struct TraceEntry
{
    sim::Tick at = 0;
    MsgType type = MsgType::Inv;
    NodeId src = 0;
    NodeId dst = 0;
    KeyId key = 0;
    Version version{};
    std::uint64_t opId = 0;
    std::uint64_t xactId = 0;
    std::uint64_t scopeId = 0;
};

/**
 * Bounded message trace. Attach via Fabric::setTracer(); the fabric
 * reports each message at its delivery time.
 */
class MessageTracer
{
  public:
    explicit MessageTracer(std::size_t capacity = 4096)
        : cap(capacity)
    {
    }

    /** Record a delivery (called by the fabric). */
    void
    record(sim::Tick at, const Message &m)
    {
        if (entries.size() == cap) {
            entries.pop_front();
            ++dropped;
        }
        entries.push_back(TraceEntry{at, m.type, m.src, m.dst, m.key,
                                     m.version, m.opId, m.xactId,
                                     m.scopeId});
    }

    std::size_t size() const { return entries.size(); }
    std::uint64_t droppedEntries() const { return dropped; }
    const TraceEntry &operator[](std::size_t i) const
    {
        return entries[i];
    }

    /** Visit entries matching @p pred in delivery order. */
    void
    forEach(const std::function<void(const TraceEntry &)> &visit) const
    {
        for (const auto &e : entries)
            visit(e);
    }

    /** Count recorded messages of @p type. */
    std::size_t countOf(MsgType type) const;

    /**
     * Render the timeline, one line per message:
     *   [     1520 ns] INV      0 -> 2  key=7 ver=3.0
     * Filters to @p key when @p key_filter is true.
     */
    void dump(std::ostream &os, bool key_filter = false,
              KeyId key = 0) const;

    void
    clear()
    {
        entries.clear();
        dropped = 0;
    }

  private:
    std::size_t cap;
    std::deque<TraceEntry> entries;
    std::uint64_t dropped = 0;
};

} // namespace ddp::net

#endif // DDP_NET_TRACER_HH
