#include "net/fault.hh"

#include <cassert>

namespace ddp::net {

FaultPlan::FaultPlan(const FaultConfig &config, std::size_t num_nodes,
                     std::uint64_t fallback_seed)
    : numNodes(num_nodes),
      links(num_nodes * num_nodes, config.allLinks),
      partitions(config.partitions),
      outages(config.outages),
      // A dedicated stream id keeps fault draws independent of the
      // workload generators sharing the experiment seed.
      rng(config.seed != 0 ? config.seed
                           : fallback_seed ^ 0x5eedfa17u,
          0xfa17)
{
    assert(num_nodes > 0);
}

void
FaultPlan::setLinkFaults(NodeId src, NodeId dst, const LinkFaults &f)
{
    assert(src < numNodes && dst < numNodes);
    links[src * numNodes + dst] = f;
}

const LinkFaults &
FaultPlan::linkOf(NodeId src, NodeId dst) const
{
    assert(src < numNodes && dst < numNodes);
    return links[src * numNodes + dst];
}

bool
FaultPlan::nodeCut(sim::Tick now, NodeId node) const
{
    for (const NodeOutage &o : outages) {
        if (o.node == node && now >= o.from && now < o.until)
            return true;
    }
    return false;
}

bool
FaultPlan::linkCut(sim::Tick now, NodeId src, NodeId dst) const
{
    if (nodeCut(now, src) || nodeCut(now, dst))
        return true;
    for (const PartitionWindow &p : partitions) {
        if (now < p.from || now >= p.until)
            continue;
        bool src_in = false, dst_in = false;
        for (NodeId n : p.groupA) {
            src_in = src_in || n == src;
            dst_in = dst_in || n == dst;
        }
        if (src_in != dst_in)
            return true;
    }
    return false;
}

FaultPlan::Decision
FaultPlan::decide(sim::Tick now, NodeId src, NodeId dst)
{
    (void)now;
    Decision d;
    const LinkFaults &f = linkOf(src, dst);
    // Draw only for categories with a non-zero rate so that enabling
    // one fault class does not perturb the stream of another.
    if (f.dropRate > 0.0 && rng.nextDouble() < f.dropRate) {
        d.drop = true;
        ++dropCount;
        return d;
    }
    if (f.duplicateRate > 0.0 && rng.nextDouble() < f.duplicateRate) {
        d.duplicates = 1;
        ++dupCount;
    }
    if (f.delayRate > 0.0 && rng.nextDouble() < f.delayRate) {
        sim::Tick span = f.delayMax > f.delayMin
                             ? f.delayMax - f.delayMin
                             : 0;
        d.extraDelay =
            f.delayMin +
            (span == 0 ? 0 : rng.nextU64() % (span + 1));
        ++delayCount;
    }
    if (f.reorderRate > 0.0 && rng.nextDouble() < f.reorderRate) {
        d.reorder = true;
        ++reorderCount;
    }
    return d;
}

} // namespace ddp::net
