#include "net/fabric.hh"

#include <cassert>

namespace ddp::net {

Nic::Nic(NodeId owner, const NetworkParams &params, std::size_t num_nodes)
    : id(owner), cfg(params), lastDelivery(num_nodes, 0)
{
}

sim::Tick
Nic::transmit(sim::Tick at, const Message &msg)
{
    ++txCount;
    std::uint32_t bytes = msg.sizeBytes();
    txByteCount += bytes;
    sim::Tick service = cfg.txOverhead + cfg.serializationTicks(bytes);
    return txPipe.acquire(at, service);
}

sim::Tick
Nic::orderDelivery(NodeId dst, sim::Tick arrival)
{
    assert(dst < lastDelivery.size());
    sim::Tick t = arrival > lastDelivery[dst] ? arrival : lastDelivery[dst];
    lastDelivery[dst] = t;
    return t;
}

sim::Tick
Nic::receive(sim::Tick at, const Message &msg)
{
    ++rxCount;
    sim::Tick service =
        cfg.rxOverhead + cfg.serializationTicks(msg.sizeBytes());
    return rxPipe.acquire(at, service);
}

Fabric::Fabric(sim::EventQueue &eq, const NetworkParams &params,
               std::size_t num_nodes)
    : queue(eq), cfg(params), handlers(num_nodes)
{
    nics.reserve(num_nodes);
    for (std::size_t n = 0; n < num_nodes; ++n)
        nics.push_back(std::make_unique<Nic>(
            static_cast<NodeId>(n), params, num_nodes));
}

void
Fabric::attach(NodeId node, Handler handler)
{
    assert(node < handlers.size());
    handlers[node] = std::move(handler);
}

void
Fabric::send(const Message &msg)
{
    assert(msg.src < nics.size() && msg.dst < nics.size());
    ++msgCount;
    byteCount += msg.sizeBytes();

    if (msg.src == msg.dst) {
        // Local loopback: deliver without touching the fabric.
        queue.scheduleIn(0, [this, msg] {
            if (tracer)
                tracer->record(queue.now(), msg);
            handlers[msg.dst](msg);
        });
        return;
    }

    Nic &src = *nics[msg.src];
    Nic &dst = *nics[msg.dst];

    sim::Tick tx_done = src.transmit(queue.now(), msg);
    sim::Tick arrival = tx_done + cfg.roundTrip / 2;
    if (cfg.topology == Topology::TwoTier &&
        cfg.rackOf(msg.src) != cfg.rackOf(msg.dst)) {
        // Two extra switch traversals plus serialization on the shared
        // (possibly oversubscribed) uplink.
        arrival += 2 * cfg.interRackHop;
        arrival = uplink.acquire(
            arrival, cfg.uplinkSerializationTicks(msg.sizeBytes()));
    }
    sim::Tick ordered = src.orderDelivery(msg.dst, arrival);
    sim::Tick rx_done = dst.receive(ordered, msg);

    queue.schedule(rx_done, [this, msg] {
        if (tracer)
            tracer->record(queue.now(), msg);
        handlers[msg.dst](msg);
    });
}

void
Fabric::broadcast(Message msg)
{
    for (NodeId n = 0; n < nics.size(); ++n) {
        if (n == msg.src)
            continue;
        msg.dst = n;
        send(msg);
    }
}

} // namespace ddp::net
