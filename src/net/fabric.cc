#include "net/fabric.hh"

#include <cassert>

namespace ddp::net {

Nic::Nic(NodeId owner, const NetworkParams &params, std::size_t num_nodes)
    : id(owner), cfg(params), lastDelivery(num_nodes, 0)
{
}

sim::Tick
Nic::transmit(sim::Tick at, const Message &msg)
{
    ++txCount;
    std::uint32_t bytes = msg.sizeBytes();
    txByteCount += bytes;
    sim::Tick service = cfg.txOverhead + cfg.serializationTicks(bytes);
    return txPipe.acquire(at, service);
}

sim::Tick
Nic::orderDelivery(NodeId dst, sim::Tick arrival)
{
    assert(dst < lastDelivery.size());
    sim::Tick t = arrival > lastDelivery[dst] ? arrival : lastDelivery[dst];
    lastDelivery[dst] = t;
    return t;
}

sim::Tick
Nic::receive(sim::Tick at, const Message &msg)
{
    ++rxCount;
    sim::Tick service =
        cfg.rxOverhead + cfg.serializationTicks(msg.sizeBytes());
    return rxPipe.acquire(at, service);
}

Fabric::Fabric(sim::EventQueue &eq, const NetworkParams &params,
               std::size_t num_nodes)
    : queue(eq),
      cfg(params),
      handlers(num_nodes),
      qps(params.reliability.enabled ? num_nodes * num_nodes : 0)
{
    nics.reserve(num_nodes);
    for (std::size_t n = 0; n < num_nodes; ++n)
        nics.push_back(std::make_unique<Nic>(
            static_cast<NodeId>(n), params, num_nodes));
}

void
Fabric::attach(NodeId node, Handler handler)
{
    assert(node < handlers.size());
    handlers[node] = std::move(handler);
}

Fabric::QpState &
Fabric::qp(NodeId src, NodeId dst)
{
    assert(cfg.reliability.enabled);
    assert(src < nics.size() && dst < nics.size());
    return qps[src * nics.size() + dst];
}

std::uint64_t
Fabric::unackedMessages() const
{
    std::uint64_t total = 0;
    for (const QpState &q : qps)
        total += q.inFlight.size();
    return total;
}

std::uint32_t
Fabric::park(Message &&msg)
{
    std::uint32_t idx;
    if (!parkedFree.empty()) {
        idx = parkedFree.back();
        parkedFree.pop_back();
        parked[idx] = std::move(msg);
    } else {
        idx = static_cast<std::uint32_t>(parked.size());
        parked.push_back(std::move(msg));
    }
    return idx;
}

Message
Fabric::unpark(std::uint32_t idx)
{
    Message m = std::move(parked[idx]);
    parkedFree.push_back(idx);
    return m;
}

void
Fabric::send(Message msg)
{
    assert(msg.src < nics.size() && msg.dst < nics.size());
    ++msgCount;
    byteCount += msg.sizeBytes();

    if (msg.src == msg.dst) {
        // Local loopback: deliver without touching the fabric.
        queue.scheduleIn(0, [this, idx = park(std::move(msg))] {
            Message m = unpark(idx);
            if (tracer)
                tracer->record(queue.now(), m);
            handlers[m.dst](m);
        });
        return;
    }

    if (cfg.reliability.enabled) {
        QpState &q = qp(msg.src, msg.dst);
        msg.netSeq = q.nextSendSeq++;
        auto [it, inserted] = q.inFlight.emplace(
            msg.netSeq,
            QpState::Pending{std::move(msg), sim::kNoTimer, 0});
        assert(inserted);
        const Message &pending = it->second.msg;
        armRetransmit(pending.src, pending.dst, pending.netSeq);
        transmitRaw(pending); // copy: the original is retained for
                              // retransmission until acknowledged
        return;
    }

    transmitRaw(std::move(msg));
}

void
Fabric::transmitRaw(Message msg)
{
    if (faults) {
        if (faults->linkCut(queue.now(), msg.src, msg.dst)) {
            faults->noteCut();
            nics[msg.src]->noteDrop();
            ++dropCount;
            if (trace)
                trace->instant(msg.src, 1, "link_cut", queue.now(),
                               "dst", msg.dst);
            return;
        }
        FaultPlan::Decision d =
            faults->decide(queue.now(), msg.src, msg.dst);
        if (d.drop) {
            nics[msg.src]->noteDrop();
            ++dropCount;
            if (trace)
                trace->instant(msg.src, 1, "drop", queue.now(), "dst",
                               msg.dst);
            return;
        }
        for (std::uint32_t c = 0; c < d.duplicates; ++c)
            transmitOnce(msg, d.extraDelay, d.reorder);
        transmitOnce(std::move(msg), d.extraDelay, d.reorder);
        return;
    }
    transmitOnce(std::move(msg), 0, false);
}

void
Fabric::transmitOnce(Message msg, sim::Tick extra_delay, bool reorder)
{
    Nic &src = *nics[msg.src];
    Nic &dst = *nics[msg.dst];

    sim::Tick tx_done = src.transmit(queue.now(), msg);
    sim::Tick arrival = tx_done + cfg.roundTrip / 2 + extra_delay;
    if (cfg.topology == Topology::TwoTier &&
        cfg.rackOf(msg.src) != cfg.rackOf(msg.dst)) {
        // Two extra switch traversals plus serialization on the shared
        // (possibly oversubscribed) uplink.
        arrival += 2 * cfg.interRackHop;
        arrival = uplink.acquire(
            arrival, cfg.uplinkSerializationTicks(msg.sizeBytes()));
    }
    // A reorder fault lets this copy overtake the QP's in-order
    // delivery stream (and leaves the ordering clock untouched).
    sim::Tick ordered =
        reorder ? arrival : src.orderDelivery(msg.dst, arrival);
    sim::Tick rx_done = dst.receive(ordered, msg);

    // Wire span on the sender's NIC track: TX start through RX done.
    // NET_ACKs are link-level chatter and only clutter the timeline.
    if (trace && msg.type != MsgType::NetAck)
        trace->complete(msg.src, 1, msgTypeName(msg.type), queue.now(),
                        rx_done, "dst", msg.dst);

    queue.schedule(rx_done, [this, idx = park(std::move(msg))] {
        deliverArrival(unpark(idx));
    });
}

void
Fabric::deliverArrival(const Message &msg)
{
    if (tracer)
        tracer->record(queue.now(), msg);

    if (!cfg.reliability.enabled || msg.netSeq == 0) {
        if (msg.type != MsgType::NetAck)
            handlers[msg.dst](msg);
        return;
    }

    if (msg.type == MsgType::NetAck) {
        handleNetAck(msg);
        return;
    }

    QpState &q = qp(msg.src, msg.dst);

    // Acknowledge every arrival, duplicates included: the original ack
    // may itself have been lost, and the sender keeps retransmitting
    // until one gets through.
    Message ack;
    ack.type = MsgType::NetAck;
    ack.src = msg.dst;
    ack.dst = msg.src;
    ack.netSeq = msg.netSeq;
    ++ackCount;
    transmitRaw(ack);

    if (msg.netSeq < q.nextExpected) {
        ++dupArrivalCount; // already delivered; filter
        return;
    }
    if (msg.netSeq > q.nextExpected) {
        ++oooArrivalCount; // park until the gap fills
        q.resequenceBuf.emplace(msg.netSeq, msg);
        return;
    }

    handlers[msg.dst](msg);
    ++q.nextExpected;
    auto it = q.resequenceBuf.begin();
    while (it != q.resequenceBuf.end() &&
           it->first == q.nextExpected) {
        Message parked = std::move(it->second);
        it = q.resequenceBuf.erase(it);
        ++q.nextExpected;
        handlers[parked.dst](parked);
    }
}

void
Fabric::handleNetAck(const Message &ack)
{
    // ack.src is the receiver of the original message; the sender
    // state lives on the (ack.dst -> ack.src) queue pair.
    QpState &q = qp(ack.dst, ack.src);
    auto it = q.inFlight.find(ack.netSeq);
    if (it == q.inFlight.end())
        return; // already acknowledged (duplicate ack)
    if (it->second.timer != sim::kNoTimer)
        queue.cancelTimer(it->second.timer);
    q.inFlight.erase(it);
}

void
Fabric::armRetransmit(NodeId src, NodeId dst, std::uint64_t seq)
{
    QpState &q = qp(src, dst);
    auto it = q.inFlight.find(seq);
    if (it == q.inFlight.end())
        return;
    sim::Tick to = cfg.reliability.timeoutFor(it->second.attempt);
    it->second.timer = queue.scheduleTimerIn(
        to, [this, src, dst, seq] { onRetransmitTimeout(src, dst, seq); });
}

void
Fabric::onRetransmitTimeout(NodeId src, NodeId dst, std::uint64_t seq)
{
    QpState &q = qp(src, dst);
    auto it = q.inFlight.find(seq);
    if (it == q.inFlight.end())
        return;
    QpState::Pending &p = it->second;
    p.timer = sim::kNoTimer;
    nics[src]->noteTimeout();
    ++timeoutCount;

    if (p.attempt >= cfg.reliability.maxRetries) {
        // Retry budget exhausted: the peer is unreachable. Count the
        // loss and stop; end-to-end recovery (quorum voting, epoch
        // checks) deals with the consequences.
        ++giveUpCount;
        q.inFlight.erase(it);
        return;
    }

    ++p.attempt;
    nics[src]->noteRetransmit();
    ++retransmitCount;
    if (trace)
        trace->instant(src, 1, "retransmit", queue.now(), "seq", seq);
    transmitRaw(p.msg);
    armRetransmit(src, dst, seq);
}

void
Fabric::broadcast(Message msg)
{
    for (NodeId n = 0; n < nics.size(); ++n) {
        if (n == msg.src)
            continue;
        msg.dst = n;
        send(msg);
    }
}

} // namespace ddp::net
