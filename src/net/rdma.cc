#include "net/rdma.hh"

#include <cassert>
#include <utility>

namespace ddp::net {

RdmaEngine::RdmaEngine(sim::EventQueue &eq, NodeId self,
                       const NetworkParams &params,
                       std::vector<mem::MemoryDevice *> remote_nvms)
    : queue(eq), self(self), cfg(params), nvms(std::move(remote_nvms))
{
}

sim::Tick
RdmaEngine::oneWay(std::uint32_t bytes) const
{
    return cfg.roundTrip / 2 + cfg.serializationTicks(bytes);
}

void
RdmaEngine::write(NodeId dst, std::uint64_t addr, std::uint32_t bytes,
                  RdmaCompletion done)
{
    (void)addr;
    (void)dst;
    ++ops;
    sim::Tick tx = txPipe.acquire(
        queue.now(), cfg.txOverhead + cfg.serializationTicks(bytes));
    // Placement into the remote LLC via DDIO is on the order of an LLC
    // access; we fold it into rxOverhead. Ack carries no payload.
    sim::Tick placed = tx + oneWay(bytes) + cfg.rxOverhead;
    sim::Tick acked = placed + oneWay(0);
    if (trace)
        trace->complete(tracePid, 1, "rdma_write", queue.now(), acked,
                        "dst", dst);
    queue.schedule(acked, [done = std::move(done), acked] { done(acked); });
}

void
RdmaEngine::writePersist(NodeId dst, std::uint64_t addr,
                         std::uint32_t bytes, RdmaCompletion done)
{
    assert(dst < nvms.size() && nvms[dst]);
    ++ops;
    sim::Tick tx = txPipe.acquire(
        queue.now(), cfg.txOverhead + cfg.serializationTicks(bytes));
    sim::Tick arrived = tx + oneWay(bytes) + cfg.rxOverhead;
    // The remote NIC issues the NVM write; ack only after durability.
    sim::Tick durable = nvms[dst]->write(arrived, addr);
    sim::Tick acked = durable + oneWay(0);
    if (trace)
        trace->complete(tracePid, 1, "rdma_write_persist", queue.now(),
                        acked, "dst", dst);
    queue.schedule(acked, [done = std::move(done), acked] { done(acked); });
}

void
RdmaEngine::flush(NodeId dst, std::uint64_t addr, RdmaCompletion done)
{
    assert(dst < nvms.size() && nvms[dst]);
    ++ops;
    sim::Tick tx = txPipe.acquire(queue.now(), cfg.txOverhead);
    sim::Tick arrived = tx + oneWay(0) + cfg.rxOverhead;
    sim::Tick durable = nvms[dst]->write(arrived, addr);
    sim::Tick acked = durable + oneWay(0);
    if (trace)
        trace->complete(tracePid, 1, "rdma_flush", queue.now(), acked,
                        "dst", dst);
    queue.schedule(acked, [done = std::move(done), acked] { done(acked); });
}

} // namespace ddp::net
