/**
 * @file
 * RDMA verb layer with SNIA NVM-PM remote-access extensions.
 *
 * The paper models future RDMA commands that guarantee, on
 * acknowledgment, that the remote volatile memory or the remote NVM has
 * been updated (SNIA whitepaper; Talpey's RDMA persistency extensions).
 * This layer exposes those verbs with simulated completion semantics:
 *
 *   write()        one-sided write into remote volatile memory (DDIO
 *                  placement in the remote LLC); ack => remote volatile
 *                  updated.
 *   writePersist() one-sided write persisted into remote NVM; ack =>
 *                  remote NVM durable.
 *   flush()        flush a previously written remote line from volatile
 *                  memory to NVM; ack => durable.
 *
 * The verbs are used by the quickstart/example code and as a calibration
 * harness for the protocol engine's persist timing; the DDP protocol
 * engine itself exchanges Table 3 messages over the Fabric and performs
 * persists on the receiving node, which is timing-equivalent.
 */

#ifndef DDP_NET_RDMA_HH
#define DDP_NET_RDMA_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "mem/memory_device.hh"
#include "net/fabric.hh"
#include "net/message.hh"
#include "sim/event_queue.hh"

namespace ddp::net {

/** Completion callback: fires when the verb's guarantee holds. */
using RdmaCompletion = std::function<void(sim::Tick completed_at)>;

/**
 * Per-initiator RDMA engine. Holds references to every node's NVM
 * device so one-sided persistent writes can charge remote NVM timing
 * without involving the remote CPU.
 */
class RdmaEngine
{
  public:
    RdmaEngine(sim::EventQueue &eq, NodeId self,
               const NetworkParams &params,
               std::vector<mem::MemoryDevice *> remote_nvms);

    /** One-sided write of @p bytes to remote volatile memory. */
    void write(NodeId dst, std::uint64_t addr, std::uint32_t bytes,
               RdmaCompletion done);

    /** One-sided write of @p bytes persisted to remote NVM. */
    void writePersist(NodeId dst, std::uint64_t addr, std::uint32_t bytes,
                      RdmaCompletion done);

    /** Flush a remote volatile line to remote NVM. */
    void flush(NodeId dst, std::uint64_t addr, RdmaCompletion done);

    std::uint64_t opCount() const { return ops; }

    /** Attach a timeline recorder; verbs emit spans on the initiator's
     *  pid (@p pid, tid 1 = "nic"). nullptr detaches. */
    void
    setTrace(sim::TraceRecorder *t, std::uint32_t pid)
    {
        trace = t;
        tracePid = pid;
    }

  private:
    /** One-way wire delay for @p bytes of payload. */
    sim::Tick oneWay(std::uint32_t bytes) const;

    sim::EventQueue &queue;
    NodeId self;
    NetworkParams cfg;
    sim::FifoResource txPipe;
    std::vector<mem::MemoryDevice *> nvms;
    std::uint64_t ops = 0;
    sim::TraceRecorder *trace = nullptr;
    std::uint32_t tracePid = 0;
};

} // namespace ddp::net

#endif // DDP_NET_RDMA_HH
