#include "net/message.hh"

namespace ddp::net {

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::Inv: return "INV";
      case MsgType::Ack: return "ACK";
      case MsgType::AckC: return "ACK_c";
      case MsgType::AckP: return "ACK_p";
      case MsgType::Val: return "VAL";
      case MsgType::ValC: return "VAL_c";
      case MsgType::ValP: return "VAL_p";
      case MsgType::Upd: return "UPD";
      case MsgType::InitX: return "INITX";
      case MsgType::EndX: return "ENDX";
      case MsgType::Persist: return "PERSIST";
      case MsgType::RecQuery: return "REC_QUERY";
      case MsgType::RecSummary: return "REC_SUMMARY";
      case MsgType::RecInstall: return "REC_INSTALL";
      case MsgType::RecAck: return "REC_ACK";
      case MsgType::NetAck: return "NET_ACK";
    }
    return "?";
}

std::uint32_t
Message::sizeBytes() const
{
    // Link-level acks are bare (seq + headers), like RDMA ACK/NAK
    // packets.
    if (type == MsgType::NetAck)
        return 16;
    // Header: type + src/dst + key + version + opId + scope + xact.
    std::uint32_t size = 48;
    if (hasData)
        size += 64 * dataLines; // value payload, one or more lines
    // cauhist is a per-server vector clock entry list.
    size += static_cast<std::uint32_t>(cauhist.size()) * 8;
    // Exactly-once retransmission identity (only carried when client
    // request timeouts are enabled, so default runs are unperturbed).
    if (clientSeq != 0)
        size += 12;
    return size;
}

} // namespace ddp::net
