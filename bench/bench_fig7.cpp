/**
 * @file
 * Reproduces paper Figure 7: throughput sensitivity to the number of
 * clients (10 / 100 / 150 total) for Linearizable and Causal
 * consistency bound to all five persistency models. All bars are
 * normalized to <Linearizable, Synchronous> at 100 clients.
 *
 * Expected shape: <Causal, Synchronous> and <Causal, Eventual> are
 * insensitive to the client count once the system is loaded (their
 * reads and writes never stall), while stalling models lose ground as
 * clients grow (150-client bars flat or lower per added client).
 *
 * Known deviation (see EXPERIMENTS.md): the paper reports 2.2x higher
 * absolute throughput for <Linearizable, Synchronous> at 10 clients
 * than at 100. With closed-loop zero-think-time clients, 10 clients
 * cannot saturate our simulated cluster, so the 10-client bars are
 * offered-load-limited instead; the per-client degradation trend with
 * growing client count is reproduced.
 */

#include "bench_common.hh"

using namespace ddp;
using namespace ddp::bench;

int
main(int argc, char **argv)
{
    printHeader("Figure 7: sensitivity to the number of clients "
                "(normalized to <Linear, Synchronous> @ 100 clients)");

    const std::uint32_t client_counts[] = {10, 100, 150};
    const core::Consistency consistencies[] = {
        core::Consistency::Linearizable, core::Consistency::Causal};

    // Queue the normalization base first, then every cell in table
    // order; consume in the same order after the parallel sweep.
    SweepQueue sweep(benchJobs(argc, argv));
    {
        cluster::ClusterConfig cfg = paperConfig(
            {core::Consistency::Linearizable,
             core::Persistency::Synchronous});
        cfg.clientsPerServer = 100 / cfg.numServers;
        sweep.add(cfg);
    }
    for (std::uint32_t clients : client_counts) {
        for (core::Consistency c : consistencies) {
            for (core::Persistency p :
                 {core::Persistency::Synchronous,
                  core::Persistency::Strict,
                  core::Persistency::ReadEnforced,
                  core::Persistency::Scope,
                  core::Persistency::Eventual}) {
                cluster::ClusterConfig cfg = paperConfig({c, p});
                cfg.clientsPerServer =
                    std::max(1u, clients / cfg.numServers);
                sweep.add(cfg);
            }
        }
    }
    sweep.runAll("fig7");

    double base = sweep.next().throughput;
    stats::Table t({"Clients", "Consistency", "Synchronous", "Strict",
                    "Read-Enforced", "Scope", "Eventual"});
    for (std::uint32_t clients : client_counts) {
        for (core::Consistency c : consistencies) {
            std::vector<std::string> row{
                std::to_string(clients) + "-clients",
                core::consistencyName(c)};
            for (int p = 0; p < 5; ++p) {
                row.push_back(stats::Table::num(
                    sweep.next().throughput / base, 2));
            }
            t.addRow(row);
        }
    }
    t.print(std::cout);
    return 0;
}
