/**
 * @file
 * Ablation for the paper's Sec. 8.1.2 claim: with the leaderless
 * low-latency protocols and 100 clients, over 30% of reads in
 * <Read-Enforced, Read-Enforced> conflict with a yet-to-persist write
 * (vs. 5.1% in Ganesan et al.'s leader-based, 10-client setting).
 *
 * Reports, per model: fraction of reads stalled on durability, on
 * visibility, and the resulting mean read latency.
 */

#include "bench_common.hh"

using namespace ddp;
using namespace ddp::bench;

int
main(int argc, char **argv)
{
    printHeader("Ablation: read stalls against yet-to-persist writes");

    const core::DdpModel models[] = {
        {core::Consistency::ReadEnforced,
         core::Persistency::ReadEnforced},
        {core::Consistency::Linearizable,
         core::Persistency::ReadEnforced},
        {core::Consistency::Causal, core::Persistency::ReadEnforced},
        {core::Consistency::Linearizable,
         core::Persistency::Synchronous},
        {core::Consistency::ReadEnforced,
         core::Persistency::Synchronous},
    };

    SweepQueue sweep(benchJobs(argc, argv));
    for (const core::DdpModel &m : models)
        sweep.add(paperConfig(m));
    sweep.runAll("ablation_stalls");

    stats::Table t({"Model", "Reads", "PersistStall%", "VisibStall%",
                    "MeanRead(ns)", "p95Read(ns)"});
    for (const core::DdpModel &m : models) {
        const cluster::RunResult &r = sweep.next();
        double persist_pct = 100.0 * r.persistStallFraction();
        double visib_pct =
            r.reads == 0
                ? 0.0
                : 100.0 * static_cast<double>(r.readsStalledVisibility) /
                      static_cast<double>(r.reads);
        t.addRow({shortName(m), std::to_string(r.reads),
                  stats::Table::num(persist_pct, 1),
                  stats::Table::num(visib_pct, 1),
                  stats::Table::num(r.meanReadNs, 0),
                  stats::Table::num(r.p95ReadNs, 0)});
    }
    t.print(std::cout);
    std::cout << "\npaper reference: >30% of reads conflict with a "
                 "yet-to-persist write in <Read-Enforced, "
                 "Read-Enforced> at 100 clients.\n";
    return 0;
}
