/**
 * @file
 * Reproduces paper Figure 9: throughput sensitivity to the read/write
 * mix — workload-B (95% reads), workload-A (50/50, the default), and
 * the paper-defined workload-W (95% writes) — for Linearizable and
 * Causal consistency with all five persistency models, normalized to
 * <Linearizable, Synchronous> on workload-A.
 *
 * Expected shape: the more read-intensive the workload, the less the
 * consistency/persistency models matter (they constrain writes).
 */

#include "bench_common.hh"

using namespace ddp;
using namespace ddp::bench;

int
main(int argc, char **argv)
{
    printHeader("Figure 9: sensitivity to the read/write mix "
                "(normalized to <Linear, Synchronous> @ workload-A)");

    struct Mix
    {
        const char *name;
        workload::WorkloadSpec (*make)(std::uint64_t);
    };
    const Mix mixes[] = {
        {"workload-B", workload::WorkloadSpec::ycsbB},
        {"workload-A", workload::WorkloadSpec::ycsbA},
        {"workload-W", workload::WorkloadSpec::ycsbW},
    };
    const core::Consistency consistencies[] = {
        core::Consistency::Linearizable, core::Consistency::Causal};

    // Queue the normalization base first, then every cell in table
    // order; consume in the same order after the parallel sweep.
    SweepQueue sweep(benchJobs(argc, argv));
    sweep.add(paperConfig({core::Consistency::Linearizable,
                           core::Persistency::Synchronous}));
    for (const Mix &mix : mixes) {
        for (core::Consistency c : consistencies) {
            for (core::Persistency p :
                 {core::Persistency::Synchronous,
                  core::Persistency::Strict,
                  core::Persistency::ReadEnforced,
                  core::Persistency::Scope,
                  core::Persistency::Eventual}) {
                cluster::ClusterConfig cfg = paperConfig({c, p});
                cfg.workload = mix.make(cfg.keyCount);
                sweep.add(cfg);
            }
        }
    }
    sweep.runAll("fig9");

    double base = sweep.next().throughput;
    stats::Table t({"Workload", "Consistency", "Synchronous", "Strict",
                    "Read-Enforced", "Scope", "Eventual"});
    for (const Mix &mix : mixes) {
        for (core::Consistency c : consistencies) {
            std::vector<std::string> row{mix.name,
                                         core::consistencyName(c)};
            for (int p = 0; p < 5; ++p) {
                row.push_back(stats::Table::num(
                    sweep.next().throughput / base, 2));
            }
            t.addRow(row);
        }
    }
    t.print(std::cout);
    return 0;
}
