/**
 * @file
 * A/B microbenchmarks of the event-loop hot path, quantifying the
 * kernel overhaul (inline small-buffer callbacks, explicit binary
 * heap, generation-tagged timer slots) against a faithful replica of
 * the previous kernel (std::function callbacks, std::priority_queue,
 * unordered_set timer bookkeeping). The `legacy_` / `current_`
 * benchmark pairs run the same workload; compare items_per_second
 * (events/sec) between them:
 *
 *   bench/bench_sim_hotpath --benchmark_filter='ScheduleRun|TimerChurn'
 *
 * BM_Current_ClusterEventsPerSec reports end-to-end simulator
 * throughput (simulated events per host second) for a small
 * paper-configuration run — the number the sweep summaries print.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "cluster/cluster.hh"
#include "sim/event_queue.hh"

using namespace ddp;

namespace legacy {

/**
 * Replica of the pre-overhaul event kernel: heap-allocating
 * std::function events, std::priority_queue storage (with the
 * const_cast-from-top move), and hash-set timer liveness tracking.
 * Kept here solely as the A/B baseline for the benchmarks below.
 */
class EventQueue
{
  public:
    using EventFn = std::function<void()>;
    using TimerId = std::uint64_t;

    void
    schedule(sim::Tick when, EventFn fn)
    {
        events.push(Entry{when, seq++, 0, std::move(fn)});
    }

    TimerId
    scheduleTimer(sim::Tick when, EventFn fn)
    {
        TimerId id = nextTimer++;
        liveTimers.insert(id);
        events.push(Entry{when, seq++, id, std::move(fn)});
        return id;
    }

    void
    cancelTimer(TimerId id)
    {
        if (liveTimers.erase(id) > 0)
            cancelledTimers.insert(id);
    }

    bool
    step()
    {
        while (!events.empty() && events.top().timer != 0 &&
               cancelledTimers.count(events.top().timer) > 0) {
            cancelledTimers.erase(events.top().timer);
            events.pop();
        }
        if (events.empty())
            return false;
        Entry &top = const_cast<Entry &>(events.top());
        nowTick = top.when;
        EventFn fn = std::move(top.fn);
        TimerId timer = top.timer;
        events.pop();
        if (timer != 0)
            liveTimers.erase(timer);
        ++executed;
        fn();
        return true;
    }

    void
    run()
    {
        while (step()) {
        }
    }

    std::uint64_t executedEvents() const { return executed; }

  private:
    struct Entry
    {
        sim::Tick when;
        std::uint64_t seq;
        TimerId timer;
        EventFn fn;

        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>>
        events;
    std::unordered_set<TimerId> liveTimers;
    std::unordered_set<TimerId> cancelledTimers;
    sim::Tick nowTick = 0;
    std::uint64_t seq = 0;
    TimerId nextTimer = 1;
    std::uint64_t executed = 0;
};

} // namespace legacy

namespace {

constexpr int kEvents = 4096;

/** Capture the size of a typical delivery event: this + a slab index
 *  plus a little payload state — fits the 48-byte inline buffer. */
struct Payload
{
    std::uint64_t a, b, c;
    std::uint32_t idx;
};

template <typename Queue>
void
scheduleRunWorkload(Queue &eq, std::uint64_t &sink)
{
    Payload p{1, 2, 3, 4};
    for (int i = 0; i < kEvents; ++i) {
        p.idx = static_cast<std::uint32_t>(i);
        // Spread-out deadlines keep the heap realistically mixed.
        eq.schedule(static_cast<sim::Tick>(i * 7 % 911),
                    [p, &sink] { sink += p.a + p.idx; });
    }
    eq.run();
}

template <typename Queue>
void
timerChurnWorkload(Queue &eq, std::uint64_t &sink)
{
    std::vector<std::uint64_t> ids; // both kernels' TimerId is uint64
    ids.reserve(kEvents);
    for (int i = 0; i < kEvents; ++i) {
        ids.push_back(eq.scheduleTimer(
            static_cast<sim::Tick>(1000 + i * 13 % 977),
            [&sink] { ++sink; }));
    }
    // Cancel every other timer — the retransmit-timer pattern: most
    // timers are cancelled by an ack before they fire.
    for (int i = 0; i < kEvents; i += 2)
        eq.cancelTimer(ids[i]);
    eq.run();
}

void
BM_Legacy_ScheduleRun(benchmark::State &state)
{
    std::uint64_t sink = 0;
    for (auto _ : state) {
        legacy::EventQueue eq;
        scheduleRunWorkload(eq, sink);
        benchmark::DoNotOptimize(eq.executedEvents());
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * kEvents);
}
BENCHMARK(BM_Legacy_ScheduleRun);

void
BM_Current_ScheduleRun(benchmark::State &state)
{
    std::uint64_t sink = 0;
    for (auto _ : state) {
        sim::EventQueue eq;
        scheduleRunWorkload(eq, sink);
        benchmark::DoNotOptimize(eq.executedEvents());
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * kEvents);
}
BENCHMARK(BM_Current_ScheduleRun);

void
BM_Legacy_TimerChurn(benchmark::State &state)
{
    std::uint64_t sink = 0;
    for (auto _ : state) {
        legacy::EventQueue eq;
        timerChurnWorkload(eq, sink);
        benchmark::DoNotOptimize(eq.executedEvents());
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * kEvents);
}
BENCHMARK(BM_Legacy_TimerChurn);

void
BM_Current_TimerChurn(benchmark::State &state)
{
    std::uint64_t sink = 0;
    for (auto _ : state) {
        sim::EventQueue eq;
        timerChurnWorkload(eq, sink);
        benchmark::DoNotOptimize(eq.executedEvents());
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * kEvents);
}
BENCHMARK(BM_Current_TimerChurn);

/** End-to-end simulator throughput: simulated events per host second
 *  for a small paper-configuration cluster run. */
void
BM_Current_ClusterEventsPerSec(benchmark::State &state)
{
    std::uint64_t events = 0;
    for (auto _ : state) {
        cluster::ClusterConfig cfg;
        cfg.model = {core::Consistency::Causal,
                     core::Persistency::Synchronous};
        cfg.numServers = 5;
        cfg.clientsPerServer = 20;
        cfg.keyCount = 10000;
        cfg.workload = workload::WorkloadSpec::ycsbA(cfg.keyCount);
        cfg.warmup = 100 * sim::kMicrosecond;
        cfg.measure = 400 * sim::kMicrosecond;
        cfg.seed = 42;
        cluster::Cluster c(cfg);
        cluster::RunResult r = c.run();
        events += r.eventsExecuted;
        benchmark::DoNotOptimize(r.throughput);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_Current_ClusterEventsPerSec)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
