/**
 * @file
 * Reproduces paper Table 1: relative throughput of three environments
 * on a 3-node cluster serving client write requests.
 *
 *   1. volatile updates AND NVM persists in the critical path
 *      -> <Linearizable, Synchronous>
 *   2. volatile updates in the critical path, persists lazy
 *      -> <Linearizable, Eventual>
 *   3. neither in the critical path
 *      -> <Eventual, Eventual>
 *
 * Paper reference: 1 / 1.32 / 4.08.
 */

#include "bench_common.hh"

using namespace ddp;
using namespace ddp::bench;

int
main()
{
    printHeader("Table 1: impact of critical-path updates and persists "
                "(3 nodes, write requests)");

    auto configure = [](core::DdpModel m) {
        cluster::ClusterConfig cfg = paperConfig(m);
        cfg.numServers = 3;
        // The motivation experiment issues write requests only.
        cfg.workload.name = "writes";
        cfg.workload.readFraction = 0.0;
        return cfg;
    };

    cluster::RunResult strict = runOne(configure(
        {core::Consistency::Linearizable,
         core::Persistency::Synchronous}));
    cluster::RunResult no_nvm = runOne(configure(
        {core::Consistency::Linearizable, core::Persistency::Eventual}));
    cluster::RunResult relaxed = runOne(configure(
        {core::Consistency::Eventual, core::Persistency::Eventual}));

    stats::Table t({"Volatile Updates in Critical Path?",
                    "NVM Updates in Critical Path?",
                    "Normalized Throughput", "Paper"});
    double base = strict.throughput;
    t.addRow({"Yes", "Yes", stats::Table::num(1.0, 2), "1"});
    t.addRow({"Yes", "No",
              stats::Table::num(no_nvm.throughput / base, 2), "1.32"});
    t.addRow({"No", "No",
              stats::Table::num(relaxed.throughput / base, 2), "4.08"});
    t.print(std::cout);

    std::cout << "\nabsolute throughput (Mreq/s): strict="
              << stats::Table::num(strict.throughput / 1e6, 1)
              << " volatile-only="
              << stats::Table::num(no_nvm.throughput / 1e6, 1)
              << " relaxed="
              << stats::Table::num(relaxed.throughput / 1e6, 1) << "\n";
    return 0;
}
