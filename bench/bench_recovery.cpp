/**
 * @file
 * Reproduces the paper's Sec. 9 recovery discussion: "strict models
 * like <Linearizable, Synchronous> have a simple recovery process
 * because all nodes have the same persistent view of the data. On the
 * other hand, weaker DDP models ... may need an advanced recovery
 * algorithm, such as a voting-based one."
 *
 * Runs the message-driven voting recovery (ddp/recovery.hh) after a
 * mid-run crash for representative DDP models and reports how much
 * replica divergence each model accumulates in NVM, how many keys
 * recovery installs, the protocol's wall-clock cost, and what was lost.
 */

#include "bench_common.hh"

using namespace ddp;
using namespace ddp::bench;

int
main()
{
    printHeader("Recovery: voting protocol cost per DDP model "
                "(crash mid-run, 100k keys)");

    const core::DdpModel models[] = {
        {core::Consistency::Linearizable,
         core::Persistency::Synchronous},
        {core::Consistency::Linearizable, core::Persistency::Strict},
        {core::Consistency::ReadEnforced,
         core::Persistency::Synchronous},
        {core::Consistency::Causal, core::Persistency::Synchronous},
        {core::Consistency::Causal, core::Persistency::Eventual},
        {core::Consistency::Eventual, core::Persistency::Eventual},
    };

    stats::Table t({"Model", "DivergentKeys", "KeysInstalled",
                    "RecoveryUs", "LostAckedKeys"});
    for (const core::DdpModel &m : models) {
        core::PropertyChecker checker;
        cluster::ClusterConfig cfg = paperConfig(m);
        cfg.recovery = cluster::RecoveryPolicy::SimulatedVoting;
        cluster::Cluster c(cfg);
        c.setChecker(&checker);
        c.scheduleCrash(cfg.warmup + cfg.measure / 2);
        cluster::RunResult r = c.run();

        const cluster::RecoveryStats &rs = c.recoveries().at(0);
        t.addRow({shortName(m), std::to_string(rs.divergentKeys),
                  std::to_string(rs.keysInstalled),
                  stats::Table::num(sim::ticksToUs(rs.recoveryTime), 1),
                  std::to_string(r.lostAckedWriteKeys)});
        std::cerr << "  ran " << core::modelName(m) << "\n";
    }
    t.print(std::cout);

    std::cout << "\nexpected shape: divergence (and with it install "
                 "traffic and losses)\ngrows as the DDP model weakens; "
                 "strict models recover with nearly\nno reconciliation "
                 "work.\n";
    return 0;
}
