/**
 * @file
 * Ablation for the paper's Sec. 8.1.2 claim: Causal consistency with
 * Synchronous persistency needs 1-2 orders of magnitude more buffered
 * writes than with Eventual persistency, because updates must buffer
 * until their entire happens-before history is durable.
 *
 * Reports peak and cumulative causal UPD buffering per persistency
 * model bound to Causal consistency.
 */

#include "bench_common.hh"

using namespace ddp;
using namespace ddp::bench;

int
main()
{
    printHeader("Ablation: causal write buffering vs persistency model");

    stats::Table t({"Model", "PeakBufferedWrites", "BufferEvents",
                    "Throughput(Mreq/s)"});
    for (core::Persistency p :
         {core::Persistency::Strict, core::Persistency::Synchronous,
          core::Persistency::ReadEnforced, core::Persistency::Scope,
          core::Persistency::Eventual}) {
        core::DdpModel m{core::Consistency::Causal, p};
        cluster::ClusterConfig cfg = paperConfig(m);
        cluster::Cluster c(cfg);
        cluster::RunResult r = c.run();
        t.addRow({shortName(m), std::to_string(r.causalBufferPeak),
                  std::to_string(r.counters["causal_buffered"]),
                  stats::Table::num(r.throughput / 1e6, 1)});
        std::cerr << "  ran " << core::modelName(m) << "\n";
    }
    t.print(std::cout);
    std::cout << "\npaper reference: Causal+Synchronous buffers 1-2 "
                 "orders of magnitude more writes than "
                 "Causal+Eventual.\n";
    return 0;
}
