/**
 * @file
 * Ablation for the paper's Sec. 8.1.1 / 8.2 claims on Transactional
 * consistency: roughly 30% of transactions conflict at 100 clients,
 * and conflicts drop by about half when going down to 10 clients,
 * making Transactional consistency more competitive.
 *
 * Reports, per client count: fraction of transactions that
 * experienced a conflict, abort (squash) rate, and throughput.
 */

#include "bench_common.hh"

using namespace ddp;
using namespace ddp::bench;

int
main(int argc, char **argv)
{
    printHeader("Ablation: transaction conflicts vs client count "
                "(<Transactional, Synchronous>, YCSB-A)");

    SweepQueue sweep(benchJobs(argc, argv));
    for (std::uint32_t clients : {10u, 50u, 100u, 150u}) {
        cluster::ClusterConfig cfg = paperConfig(
            {core::Consistency::Transactional,
             core::Persistency::Synchronous});
        cfg.clientsPerServer = std::max(1u, clients / cfg.numServers);
        sweep.add(cfg);
    }
    sweep.runAll("ablation_conflicts");

    stats::Table t({"Clients", "XactsStarted", "Conflicted%", "Abort%",
                    "Throughput(Mreq/s)"});
    for (std::uint32_t clients : {10u, 50u, 100u, 150u}) {
        cluster::RunResult r = sweep.next();
        double conflicted =
            r.xactStarted == 0
                ? 0.0
                : 100.0 *
                      static_cast<double>(
                          r.counters["xact_conflicted"]) /
                      static_cast<double>(r.xactStarted);
        double aborts = 100.0 * r.conflictRate();
        t.addRow({std::to_string(clients),
                  std::to_string(r.xactStarted),
                  stats::Table::num(conflicted, 1),
                  stats::Table::num(aborts, 1),
                  stats::Table::num(r.throughput / 1e6, 1)});
    }
    t.print(std::cout);
    std::cout << "\npaper reference: ~30% of transactions conflict at "
                 "100 clients; ~50% fewer conflicts at 10 clients.\n";
    return 0;
}
