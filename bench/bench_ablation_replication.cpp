/**
 * @file
 * Ablation for the paper's Sec. 5 remark that "reducing the number of
 * replica nodes does not change the protocols conceptually, but may
 * affect performance": sweep the replication factor for Linearizable
 * and Eventual consistency under Synchronous persistency and report
 * throughput, per-write message cost, and write latency.
 *
 * Expected shape: messages per write scale with R-1, so traffic falls
 * steeply with fewer replicas; latency and throughput move far less
 * because the invalidation round's acknowledgments travel in parallel
 * (the round trip, not the fan-out, dominates). The price of a small R
 * is fewer durable copies.
 */

#include "bench_common.hh"

using namespace ddp;
using namespace ddp::bench;

int
main(int argc, char **argv)
{
    printHeader("Ablation: replication factor (R of 5 servers, "
                "Synchronous persistency)");

    SweepQueue sweep(benchJobs(argc, argv));
    for (core::Consistency c :
         {core::Consistency::Linearizable,
          core::Consistency::Eventual}) {
        for (std::uint32_t factor : {2u, 3u, 5u}) {
            cluster::ClusterConfig cfg = paperConfig(
                {c, core::Persistency::Synchronous});
            cfg.replicationFactor = factor;
            sweep.add(cfg);
        }
    }
    sweep.runAll("ablation_replication");

    stats::Table t({"Model", "R", "Throughput(Mreq/s)", "Msgs/Write",
                    "MeanWrite(ns)"});
    for (core::Consistency c :
         {core::Consistency::Linearizable,
          core::Consistency::Eventual}) {
        for (std::uint32_t factor : {2u, 3u, 5u}) {
            const cluster::RunResult &r = sweep.next();
            double mpw = r.writes == 0
                             ? 0.0
                             : static_cast<double>(r.messages) /
                                   static_cast<double>(r.writes);
            t.addRow({std::string(core::consistencyName(c)) +
                          "+Synchronous",
                      std::to_string(factor),
                      stats::Table::num(r.throughput / 1e6, 1),
                      stats::Table::num(mpw, 1),
                      stats::Table::num(r.meanWriteNs, 0)});
        }
    }
    t.print(std::cout);
    return 0;
}
