/**
 * @file
 * Ablations of DDPSim's own design decisions (DESIGN.md §5), showing
 * why each mechanism is load-bearing for the paper's shapes:
 *
 *  1. Write-pending-queue coalescing (§5.3): without it, the zipfian
 *     hot key's persists serialize one NVM bank and the Read-Enforced
 *     persistency models collapse — <Causal, Read-Enforced> loses its
 *     "attractive high throughput".
 *  2. Durable causal gating (§5.5): without it, Causal+Synchronous
 *     shows no write buffering at all and the paper's §8.1.2 claim
 *     (1-2 orders of magnitude more buffered writes than
 *     Causal+Eventual) cannot be observed.
 *  3. Stall re-admission cost (§5.9): without it, woken hot-key
 *     waiters are free and the stalling models lose their sensitivity
 *     to added clients (Figure 7).
 */

#include "bench_common.hh"

using namespace ddp;
using namespace ddp::bench;

int
main()
{
    printHeader("Design ablations (each mechanism on vs. off)");

    {
        std::cout << "--- 1. NVM write-pending-queue coalescing ---\n";
        stats::Table t({"Model", "Coalescing", "Throughput(Mreq/s)",
                        "MeanRead(ns)", "PersistsIssued"});
        for (core::DdpModel m :
             {core::DdpModel{core::Consistency::Causal,
                             core::Persistency::ReadEnforced},
              core::DdpModel{core::Consistency::Linearizable,
                             core::Persistency::ReadEnforced}}) {
            for (bool coalesce : {true, false}) {
                cluster::ClusterConfig cfg = paperConfig(m);
                cfg.node.persistCoalescing = coalesce;
                cluster::RunResult r = runOne(cfg);
                t.addRow({shortName(m), coalesce ? "on" : "off",
                          stats::Table::num(r.throughput / 1e6, 1),
                          stats::Table::num(r.meanReadNs, 0),
                          std::to_string(r.persistsIssued)});
                std::cerr << "  ran " << core::modelName(m)
                          << " coalescing=" << coalesce << "\n";
            }
        }
        t.print(std::cout);
    }

    {
        std::cout << "\n--- 2. Durable causal gating ---\n";
        stats::Table t({"Gating", "PeakBufferedWrites", "BufferEvents",
                        "Throughput(Mreq/s)"});
        for (bool gating : {true, false}) {
            cluster::ClusterConfig cfg = paperConfig(
                {core::Consistency::Causal,
                 core::Persistency::Synchronous});
            cfg.node.causalDurableGating = gating;
            cluster::RunResult r = runOne(cfg);
            t.addRow({gating ? "on" : "off",
                      std::to_string(r.causalBufferPeak),
                      std::to_string(r.counters["causal_buffered"]),
                      stats::Table::num(r.throughput / 1e6, 1)});
            std::cerr << "  ran gating=" << gating << "\n";
        }
        t.print(std::cout);
    }

    {
        std::cout << "\n--- 3. Stall re-admission cost ---\n";
        stats::Table t({"RetryCost", "Clients",
                        "<Lin,Sync> Throughput(Mreq/s)"});
        for (sim::Tick cost : {sim::Tick{0}, 100 * sim::kNanosecond}) {
            for (std::uint32_t clients : {100u, 150u}) {
                cluster::ClusterConfig cfg = paperConfig(
                    {core::Consistency::Linearizable,
                     core::Persistency::Synchronous});
                cfg.node.stallRetryCost = cost;
                cfg.clientsPerServer = clients / cfg.numServers;
                cluster::RunResult r = runOne(cfg);
                t.addRow({stats::Table::num(sim::ticksToNs(cost), 0) +
                              " ns",
                          std::to_string(clients),
                          stats::Table::num(r.throughput / 1e6, 1)});
                std::cerr << "  ran cost=" << sim::ticksToNs(cost)
                          << " clients=" << clients << "\n";
            }
        }
        t.print(std::cout);
    }
    return 0;
}
