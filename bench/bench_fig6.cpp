/**
 * @file
 * Reproduces paper Figure 6: performance of all 25 DDP models under
 * YCSB-A with 100 clients on 5 servers. Six series are reported, each
 * normalized to <Linearizable, Synchronous>:
 *
 *   (a) throughput            (b) mean read latency
 *   (c) mean write latency    (d) mean access latency
 *   (e) p95 read latency      (f) p95 write latency
 *
 * Expected shapes (paper Sec. 8.1): Linearizable-consistency models
 * are slowest; Causal/Eventual reach 2-3x throughput and <Eventual,
 * Eventual> ~3.3x; Strict persistency is the slowest bar per group;
 * Read-Enforced consistency is only modestly above Linearizable
 * because its reads stall on NVM pressure; under Linearizable,
 * Synchronous persistency shows *lower* read latency than
 * Read-Enforced persistency.
 */

#include <map>
#include <vector>

#include "bench_common.hh"

using namespace ddp;
using namespace ddp::bench;

int
main(int argc, char **argv)
{
    printHeader("Figure 6: performance of the 25 DDP models "
                "(YCSB-A, 100 clients, normalized to <Linear, "
                "Synchronous>)");

    std::vector<core::DdpModel> models;
    SweepQueue sweep(benchJobs(argc, argv));
    for (const core::DdpModel &m : core::allModels()) {
        models.push_back(m);
        sweep.add(paperConfig(m));
    }
    sweep.runAll("fig6");

    std::map<std::string, cluster::RunResult> results;
    std::vector<cluster::RunResult> ordered;
    cluster::RunResult base;
    for (std::size_t i = 0; i < models.size(); ++i) {
        const core::DdpModel &m = models[i];
        cluster::RunResult r = sweep.next();
        ordered.push_back(r);
        results[shortName(m)] = r;
        if (m.consistency == core::Consistency::Linearizable &&
            m.persistency == core::Persistency::Synchronous) {
            base = r;
        }
    }
    writeBenchJson("fig6", models, 42, ordered);

    struct Series
    {
        const char *title;
        double (*get)(const cluster::RunResult &);
    };
    const std::vector<Series> series = {
        {"(a) Throughput",
         [](const cluster::RunResult &r) { return r.throughput; }},
        {"(b) Mean Read Latency",
         [](const cluster::RunResult &r) { return r.meanReadNs; }},
        {"(c) Mean Write Latency",
         [](const cluster::RunResult &r) { return r.meanWriteNs; }},
        {"(d) Mean Latency",
         [](const cluster::RunResult &r) { return r.meanNs; }},
        {"(e) 95th Percentile Read Latency",
         [](const cluster::RunResult &r) { return r.p95ReadNs; }},
        {"(f) 95th Percentile Write Latency",
         [](const cluster::RunResult &r) { return r.p95WriteNs; }},
    };

    for (const Series &s : series) {
        std::cout << "\n--- " << s.title
                  << " (normalized to <Linear, Synchronous>) ---\n";
        stats::Table t({"Consistency", "Synchronous", "Strict",
                        "Read-Enforced", "Scope", "Eventual"});
        double norm = s.get(base);
        for (core::Consistency c : core::allConsistencies()) {
            std::vector<std::string> row{core::consistencyName(c)};
            for (core::Persistency p :
                 {core::Persistency::Synchronous,
                  core::Persistency::Strict,
                  core::Persistency::ReadEnforced,
                  core::Persistency::Scope,
                  core::Persistency::Eventual}) {
                const cluster::RunResult &r =
                    results[shortName({c, p})];
                row.push_back(
                    stats::Table::num(s.get(r) / norm, 2));
            }
            t.addRow(row);
        }
        t.print(std::cout);
    }

    std::cout << "\nraw absolute values for <Linear, Synchronous>: "
              << stats::Table::num(base.throughput / 1e6, 2)
              << " Mreq/s, mean read "
              << stats::Table::num(base.meanReadNs, 0)
              << " ns, mean write "
              << stats::Table::num(base.meanWriteNs, 0) << " ns\n";
    return 0;
}
