/**
 * @file
 * Reproduces paper Figure 8: throughput sensitivity to the NIC-to-NIC
 * round-trip latency (0.5 / 1 / 2 us) for Linearizable and Causal
 * consistency with all five persistency models, normalized to
 * <Linearizable, Synchronous> at 1 us.
 *
 * Expected shape: Linearizable-consistency models degrade as the
 * network slows (the transfer is on the critical path); Causal models
 * are barely affected because updates propagate in the background.
 */

#include "bench_common.hh"

using namespace ddp;
using namespace ddp::bench;

int
main(int argc, char **argv)
{
    printHeader("Figure 8: sensitivity to NIC-to-NIC round-trip latency "
                "(normalized to <Linear, Synchronous> @ 1us)");

    const sim::Tick rtts[] = {sim::kMicrosecond / 2, sim::kMicrosecond,
                              2 * sim::kMicrosecond};
    const char *rtt_names[] = {"0.5us", "1us", "2us"};
    const core::Consistency consistencies[] = {
        core::Consistency::Linearizable, core::Consistency::Causal};

    // Queue the normalization base first, then every cell in table
    // order; consume in the same order after the parallel sweep.
    SweepQueue sweep(benchJobs(argc, argv));
    sweep.add(paperConfig({core::Consistency::Linearizable,
                           core::Persistency::Synchronous}));
    for (int i = 0; i < 3; ++i) {
        for (core::Consistency c : consistencies) {
            for (core::Persistency p :
                 {core::Persistency::Synchronous,
                  core::Persistency::Strict,
                  core::Persistency::ReadEnforced,
                  core::Persistency::Scope,
                  core::Persistency::Eventual}) {
                cluster::ClusterConfig cfg = paperConfig({c, p});
                cfg.network.roundTrip = rtts[i];
                sweep.add(cfg);
            }
        }
    }
    sweep.runAll("fig8");

    double base = sweep.next().throughput;
    stats::Table t({"RTT", "Consistency", "Synchronous", "Strict",
                    "Read-Enforced", "Scope", "Eventual"});
    for (int i = 0; i < 3; ++i) {
        for (core::Consistency c : consistencies) {
            std::vector<std::string> row{rtt_names[i],
                                         core::consistencyName(c)};
            for (int p = 0; p < 5; ++p) {
                row.push_back(stats::Table::num(
                    sweep.next().throughput / base, 2));
            }
            t.addRow(row);
        }
    }
    t.print(std::cout);
    return 0;
}
