/**
 * @file
 * Reproduces paper Figure 8: throughput sensitivity to the NIC-to-NIC
 * round-trip latency (0.5 / 1 / 2 us) for Linearizable and Causal
 * consistency with all five persistency models, normalized to
 * <Linearizable, Synchronous> at 1 us.
 *
 * Expected shape: Linearizable-consistency models degrade as the
 * network slows (the transfer is on the critical path); Causal models
 * are barely affected because updates propagate in the background.
 */

#include "bench_common.hh"

using namespace ddp;
using namespace ddp::bench;

int
main()
{
    printHeader("Figure 8: sensitivity to NIC-to-NIC round-trip latency "
                "(normalized to <Linear, Synchronous> @ 1us)");

    const sim::Tick rtts[] = {sim::kMicrosecond / 2, sim::kMicrosecond,
                              2 * sim::kMicrosecond};
    const char *rtt_names[] = {"0.5us", "1us", "2us"};
    const core::Consistency consistencies[] = {
        core::Consistency::Linearizable, core::Consistency::Causal};

    double base = 0.0;
    {
        cluster::ClusterConfig cfg = paperConfig(
            {core::Consistency::Linearizable,
             core::Persistency::Synchronous});
        base = runOne(cfg).throughput;
    }

    stats::Table t({"RTT", "Consistency", "Synchronous", "Strict",
                    "Read-Enforced", "Scope", "Eventual"});
    for (int i = 0; i < 3; ++i) {
        for (core::Consistency c : consistencies) {
            std::vector<std::string> row{rtt_names[i],
                                         core::consistencyName(c)};
            for (core::Persistency p :
                 {core::Persistency::Synchronous,
                  core::Persistency::Strict,
                  core::Persistency::ReadEnforced,
                  core::Persistency::Scope,
                  core::Persistency::Eventual}) {
                cluster::ClusterConfig cfg = paperConfig({c, p});
                cfg.network.roundTrip = rtts[i];
                cluster::RunResult r = runOne(cfg);
                row.push_back(
                    stats::Table::num(r.throughput / base, 2));
                std::cerr << "  ran " << core::modelName({c, p}) << " @ "
                          << rtt_names[i] << "\n";
            }
            t.addRow(row);
        }
    }
    t.print(std::cout);
    return 0;
}
