/**
 * @file
 * Ablation for the paper's closing Sec. 9 claim: "as RDMA advances
 * improve remote communication, and NVM usage speeds-up durability,
 * companies will increasingly favor stronger consistency models and
 * stronger persistency models, respectively."
 *
 * Sweeps (a) the network round trip from today's 1 us down to 200 ns
 * and (b) the NVM write latency from 400 ns down to 100 ns, reporting
 * how much of the relaxed models' advantage evaporates:
 *  - faster networks shrink <Eventual, X> / <Linearizable, X>;
 *  - faster NVM shrinks <X, Eventual> / <X, Synchronous>.
 */

#include "bench_common.hh"

using namespace ddp;
using namespace ddp::bench;

int
main()
{
    printHeader("Ablation: faster networks favor stronger consistency, "
                "faster NVM favors stronger persistency");

    {
        stats::Table t({"Network RTT", "<Linear,Sync> Mreq/s",
                        "<Eventual,Sync> Mreq/s",
                        "relaxed advantage"});
        for (sim::Tick rtt :
             {sim::kMicrosecond, sim::kMicrosecond / 2,
              sim::kMicrosecond / 5}) {
            cluster::ClusterConfig a = paperConfig(
                {core::Consistency::Linearizable,
                 core::Persistency::Synchronous});
            a.network.roundTrip = rtt;
            cluster::ClusterConfig b = paperConfig(
                {core::Consistency::Eventual,
                 core::Persistency::Synchronous});
            b.network.roundTrip = rtt;
            cluster::RunResult ra = runOne(a);
            cluster::RunResult rb = runOne(b);
            t.addRow({stats::Table::num(sim::ticksToNs(rtt), 0) + " ns",
                      stats::Table::num(ra.throughput / 1e6, 1),
                      stats::Table::num(rb.throughput / 1e6, 1),
                      stats::Table::num(rb.throughput / ra.throughput,
                                        2) +
                          "x"});
            std::cerr << "  ran rtt " << sim::ticksToNs(rtt) << " ns\n";
        }
        t.print(std::cout);
    }

    std::cout << "\n";

    {
        stats::Table t({"NVM write", "<Linear,Sync> Mreq/s",
                        "<Linear,Eventual> Mreq/s",
                        "relaxed advantage"});
        for (sim::Tick wlat : {400 * sim::kNanosecond,
                               200 * sim::kNanosecond,
                               100 * sim::kNanosecond}) {
            cluster::ClusterConfig a = paperConfig(
                {core::Consistency::Linearizable,
                 core::Persistency::Synchronous});
            a.node.nvmParams.writeLatency = wlat;
            cluster::ClusterConfig b = paperConfig(
                {core::Consistency::Linearizable,
                 core::Persistency::Eventual});
            b.node.nvmParams.writeLatency = wlat;
            cluster::RunResult ra = runOne(a);
            cluster::RunResult rb = runOne(b);
            t.addRow({stats::Table::num(sim::ticksToNs(wlat), 0) +
                          " ns",
                      stats::Table::num(ra.throughput / 1e6, 1),
                      stats::Table::num(rb.throughput / 1e6, 1),
                      stats::Table::num(rb.throughput / ra.throughput,
                                        2) +
                          "x"});
            std::cerr << "  ran nvm " << sim::ticksToNs(wlat) << " ns\n";
        }
        t.print(std::cout);
    }

    std::cout << "\nshrinking advantages confirm the paper's guidance: "
                 "better hardware makes the stricter DDP models "
                 "affordable.\n";
    return 0;
}
