/**
 * @file
 * Shared helpers for the paper-reproduction benchmark binaries.
 *
 * Each binary reproduces one table or figure of the MICRO'21 paper
 * "Distributed Data Persistency" (see DESIGN.md for the experiment
 * index). The paper's Table 5 configuration is the default: 5 servers,
 * 20 clients per server, YCSB over a zipfian key space, 200 Gb/s NICs
 * with a 1 us round trip, DRAM + NVM per server.
 *
 * Environment knobs:
 *   DDP_BENCH_MEASURE_US  measurement window per run (default 3000)
 *   DDP_BENCH_WARMUP_US   warmup window per run (default 1000)
 */

#ifndef DDP_BENCH_COMMON_HH
#define DDP_BENCH_COMMON_HH

#include <cstdlib>
#include <iostream>
#include <string>

#include "cluster/cluster.hh"
#include "stats/table.hh"

namespace ddp::bench {

inline std::uint64_t
envOr(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    return v ? std::strtoull(v, nullptr, 10) : fallback;
}

/** Paper Table 5 default configuration. */
inline cluster::ClusterConfig
paperConfig(core::DdpModel model)
{
    cluster::ClusterConfig cfg;
    cfg.model = model;
    cfg.numServers = 5;
    cfg.clientsPerServer = 20;
    cfg.keyCount = 100000;
    cfg.workload = workload::WorkloadSpec::ycsbA(cfg.keyCount);
    cfg.warmup = envOr("DDP_BENCH_WARMUP_US", 1000) * sim::kMicrosecond;
    cfg.measure =
        envOr("DDP_BENCH_MEASURE_US", 3000) * sim::kMicrosecond;
    cfg.seed = 42;
    return cfg;
}

/** Build and run one experiment. */
inline cluster::RunResult
runOne(const cluster::ClusterConfig &cfg)
{
    cluster::Cluster c(cfg);
    return c.run();
}

/** Short model label, e.g. "Linear+Synchronous". */
inline std::string
shortName(const core::DdpModel &m)
{
    std::string c;
    switch (m.consistency) {
      case core::Consistency::Linearizable: c = "Linear"; break;
      case core::Consistency::ReadEnforced: c = "Read-Enforc"; break;
      case core::Consistency::Transactional: c = "Xactional"; break;
      case core::Consistency::Causal: c = "Causal"; break;
      case core::Consistency::Eventual: c = "Eventual"; break;
    }
    return c + "+" + core::persistencyName(m.persistency);
}

inline void
printHeader(const std::string &title)
{
    std::cout << "\n=== " << title << " ===\n\n";
}

} // namespace ddp::bench

#endif // DDP_BENCH_COMMON_HH
