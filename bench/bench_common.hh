/**
 * @file
 * Shared helpers for the paper-reproduction benchmark binaries.
 *
 * Each binary reproduces one table or figure of the MICRO'21 paper
 * "Distributed Data Persistency" (see DESIGN.md for the experiment
 * index). The paper's Table 5 configuration is the default: 5 servers,
 * 20 clients per server, YCSB over a zipfian key space, 200 Gb/s NICs
 * with a 1 us round trip, DRAM + NVM per server.
 *
 * Sweep parallelism: every figure is a fan-out of independent
 * deterministic runs, so benches queue their configurations in a
 * SweepQueue and execute them across cores (results come back in
 * submission order — output is byte-identical to a serial run; see
 * DESIGN.md, "Parallel sweeps stay deterministic").
 *
 * Environment knobs:
 *   DDP_BENCH_MEASURE_US  measurement window per run (default 3000)
 *   DDP_BENCH_WARMUP_US   warmup window per run (default 1000)
 *   DDP_BENCH_JOBS        worker threads per sweep (default 1;
 *                         0 = one per hardware thread); the --jobs N
 *                         CLI flag overrides it
 *   DDP_BENCH_JSON_DIR    when set, benches write machine-readable
 *                         BENCH_<name>.json perf records there
 */

#ifndef DDP_BENCH_COMMON_HH
#define DDP_BENCH_COMMON_HH

#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "cluster/cluster.hh"
#include "sim/sweep_runner.hh"
#include "stats/table.hh"

namespace ddp::bench {

inline std::uint64_t
envOr(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    return v ? std::strtoull(v, nullptr, 10) : fallback;
}

/**
 * Sweep worker-thread count: `--jobs N` on the command line, else
 * DDP_BENCH_JOBS, else 1 (serial). 0 means one job per hardware
 * thread.
 */
inline unsigned
benchJobs(int argc = 0, char **argv = nullptr)
{
    auto resolve = [](unsigned long v) {
        return v == 0 ? sim::ThreadPool::hardwareThreads()
                      : static_cast<unsigned>(v);
    };
    for (int i = 1; argv != nullptr && i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0)
            return resolve(std::strtoul(argv[i + 1], nullptr, 10));
    }
    const char *env = std::getenv("DDP_BENCH_JOBS");
    return env ? resolve(std::strtoul(env, nullptr, 10)) : 1u;
}

/** Paper Table 5 default configuration. */
inline cluster::ClusterConfig
paperConfig(core::DdpModel model)
{
    cluster::ClusterConfig cfg;
    cfg.model = model;
    cfg.numServers = 5;
    cfg.clientsPerServer = 20;
    cfg.keyCount = 100000;
    cfg.workload = workload::WorkloadSpec::ycsbA(cfg.keyCount);
    cfg.warmup = envOr("DDP_BENCH_WARMUP_US", 1000) * sim::kMicrosecond;
    cfg.measure =
        envOr("DDP_BENCH_MEASURE_US", 3000) * sim::kMicrosecond;
    cfg.seed = 42;
    return cfg;
}

/** Build and run one experiment. */
inline cluster::RunResult
runOne(const cluster::ClusterConfig &cfg)
{
    cluster::Cluster c(cfg);
    return c.run();
}

/**
 * Deferred sweep: queue independent configurations, run them all (at
 * most `jobs` concurrently), then consume the results in submission
 * order. The two-pass pattern keeps the bench loops' structure — first
 * pass add()s configs, runAll() fans out, second pass next()s results
 * in exactly the order the serial code produced them.
 */
class SweepQueue
{
  public:
    explicit SweepQueue(unsigned jobs) : jobCount(jobs) {}

    /** Queue one run; returns its index. */
    std::size_t
    add(cluster::ClusterConfig cfg)
    {
        cfgs.push_back(std::move(cfg));
        return cfgs.size() - 1;
    }

    /** Execute every queued run and print an events/sec summary. */
    void
    runAll(const char *label = "sweep")
    {
        auto t0 = std::chrono::steady_clock::now();
        sim::SweepRunner runner(jobCount);
        results = runner.map(cfgs.size(), [this](std::size_t i) {
            return runOne(cfgs[i]);
        });
        double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        std::uint64_t events = 0;
        for (const cluster::RunResult &r : results)
            events += r.eventsExecuted;
        std::cerr << label << ": " << results.size() << " runs, "
                  << events << " events in " << wall << " s ("
                  << (wall > 0 ? static_cast<double>(events) / wall
                               : 0.0)
                  << " events/s, " << runner.jobs() << " jobs)\n";
        cursor = 0;
    }

    /** Result of run @p i (after runAll()). */
    const cluster::RunResult &
    result(std::size_t i) const
    {
        assert(i < results.size());
        return results[i];
    }

    /** Next result in submission order (for two-pass loops). */
    const cluster::RunResult &
    next()
    {
        assert(cursor < results.size());
        return results[cursor++];
    }

    std::size_t size() const { return cfgs.size(); }

  private:
    unsigned jobCount;
    std::vector<cluster::ClusterConfig> cfgs;
    std::vector<cluster::RunResult> results;
    std::size_t cursor = 0;
};

/** Short model label, e.g. "Linear+Synchronous". */
inline std::string
shortName(const core::DdpModel &m)
{
    std::string c;
    switch (m.consistency) {
      case core::Consistency::Linearizable: c = "Linear"; break;
      case core::Consistency::ReadEnforced: c = "Read-Enforc"; break;
      case core::Consistency::Transactional: c = "Xactional"; break;
      case core::Consistency::Causal: c = "Causal"; break;
      case core::Consistency::Eventual: c = "Eventual"; break;
    }
    return c + "+" + core::persistencyName(m.persistency);
}

inline void
printHeader(const std::string &title)
{
    std::cout << "\n=== " << title << " ===\n\n";
}

// --------------------------------------------------------------------------
// Machine-readable perf records (BENCH_*.json)
// --------------------------------------------------------------------------

/**
 * Streaming writer for a JSON array of flat records. One field per
 * line so nondeterministic host-timing fields (wall_seconds,
 * events_per_sec) can be stripped with `grep -v` when byte-comparing
 * outputs across runs.
 */
class JsonArrayWriter
{
  public:
    explicit JsonArrayWriter(std::ostream &os) : os(os) { os << "[\n"; }

    void
    beginRecord()
    {
        os << (firstRecord ? "  {\n" : ",\n  {\n");
        firstRecord = false;
        firstField = true;
    }

    void
    field(const char *key, const std::string &v)
    {
        sep();
        os << '"' << key << "\": \"";
        for (char c : v) {
            switch (c) {
              case '"': os << "\\\""; break;
              case '\\': os << "\\\\"; break;
              case '\n': os << "\\n"; break;
              case '\t': os << "\\t"; break;
              case '\r': os << "\\r"; break;
              default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(
                                      static_cast<unsigned char>(c)));
                    os << buf;
                } else {
                    os << c;
                }
            }
        }
        os << '"';
    }

    void field(const char *key, const char *v) { field(key, std::string(v)); }

    void
    field(const char *key, double v)
    {
        sep();
        os << '"' << key << "\": ";
        if (!std::isfinite(v)) {
            // JSON has no NaN/Inf literals; null keeps the record
            // parseable and is unambiguous in downstream tooling.
            os << "null";
            return;
        }
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.*g",
                      std::numeric_limits<double>::max_digits10, v);
        os << buf;
    }

    void
    field(const char *key, std::uint64_t v)
    {
        sep();
        os << '"' << key << "\": " << v;
    }

    void
    field(const char *key, bool v)
    {
        sep();
        os << '"' << key << "\": " << (v ? "true" : "false");
    }

    /**
     * Numeric array field, one value per element. NaN/Inf elements
     * become null (same policy as scalar doubles), keeping the record
     * parseable whatever the series holds.
     */
    void
    arrayField(const char *key, const std::vector<double> &vs)
    {
        sep();
        os << '"' << key << "\": [";
        for (std::size_t i = 0; i < vs.size(); ++i) {
            if (i > 0)
                os << ", ";
            if (!std::isfinite(vs[i])) {
                os << "null";
                continue;
            }
            char buf[40];
            std::snprintf(buf, sizeof buf, "%.*g",
                          std::numeric_limits<double>::max_digits10,
                          vs[i]);
            os << buf;
        }
        os << ']';
    }

    void endRecord() { os << "\n  }"; }

    void finish() { os << "\n]\n"; }

  private:
    void
    sep()
    {
        os << (firstField ? "    " : ",\n    ");
        firstField = false;
    }

    std::ostream &os;
    bool firstRecord = true;
    bool firstField = true;
};

/**
 * Emit the standard perf fields of one run — the schema ddpsim
 * `--format json` and every BENCH_*.json artifact share, so the perf
 * trajectory can be tracked across PRs with one parser.
 */
inline void
jsonPerfFields(JsonArrayWriter &w, const core::DdpModel &m,
               std::uint64_t seed, const cluster::RunResult &r)
{
    w.field("model", core::modelName(m));
    w.field("consistency", core::consistencyName(m.consistency));
    w.field("persistency", core::persistencyName(m.persistency));
    w.field("seed", seed);
    w.field("ops_per_sec", r.throughput);
    w.field("reads", r.reads);
    w.field("writes", r.writes);
    w.field("mean_read_ns", r.meanReadNs);
    w.field("mean_write_ns", r.meanWriteNs);
    w.field("p50_read_ns", r.p50ReadNs);
    w.field("p95_read_ns", r.p95ReadNs);
    w.field("p99_read_ns", r.p99ReadNs);
    w.field("p50_write_ns", r.p50WriteNs);
    w.field("p95_write_ns", r.p95WriteNs);
    w.field("p99_write_ns", r.p99WriteNs);
    w.field("messages", r.messages);
    w.field("persists", r.persistsIssued);
    w.field("events_executed", r.eventsExecuted);
    // Per-phase latency breakdown (reads + writes pooled). The phase
    // means sum to the pooled mean latency: per request, phase spans
    // sum exactly to end-to-end latency (asserted in recordOp).
    for (std::size_t p = 0; p < sim::kPhaseCount; ++p) {
        std::string name = sim::phaseName(static_cast<sim::Phase>(p));
        const cluster::RunResult::PhaseStat &ps = r.phaseBreakdown[p];
        w.field(("phase_" + name + "_mean_ns").c_str(), ps.meanNs);
        w.field(("phase_" + name + "_p95_ns").c_str(), ps.p95Ns);
    }
    // Throughput-over-time series (runs with cfg.timelineBucket > 0
    // only). Downtime buckets are explicit zeros; the SLO field is
    // null when no crash happened or the SLO was never regained.
    if (r.timelineBucket > 0) {
        w.field("timeline_bucket_us",
                static_cast<double>(r.timelineBucket) /
                    static_cast<double>(sim::kMicrosecond));
        w.arrayField("timeline_ops_per_sec", r.timelineRate);
        w.field("recovery_time_to_slo_us", r.recoveryTimeToSloUs);
        w.field("served_during_recovery", r.servedDuringRecovery);
        w.field("recovery_fault_ins", r.recoveryFaultIns);
    }
    // Host-timing fields last and one per line: strip with
    //   grep -vE '"(wall_seconds|events_per_sec)"'
    // before byte-comparing across runs.
    w.field("wall_seconds", r.wallSeconds);
    w.field("events_per_sec", r.eventsPerSec());
}

/**
 * Write BENCH_<bench>.json into $DDP_BENCH_JSON_DIR (no-op when the
 * variable is unset). @p models and @p results are parallel arrays.
 */
inline void
writeBenchJson(const char *bench,
               const std::vector<core::DdpModel> &models,
               std::uint64_t seed,
               const std::vector<cluster::RunResult> &results)
{
    const char *dir = std::getenv("DDP_BENCH_JSON_DIR");
    if (dir == nullptr || *dir == '\0')
        return;
    assert(models.size() == results.size());
    std::string path =
        std::string(dir) + "/BENCH_" + bench + ".json";
    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot write " << path << "\n";
        return;
    }
    JsonArrayWriter w(out);
    for (std::size_t i = 0; i < models.size(); ++i) {
        w.beginRecord();
        w.field("schema", "ddp-bench-v1");
        w.field("bench", bench);
        jsonPerfFields(w, models[i], seed, results[i]);
        w.endRecord();
    }
    w.finish();
    std::cerr << "wrote " << path << "\n";
}

} // namespace ddp::bench

#endif // DDP_BENCH_COMMON_HH
