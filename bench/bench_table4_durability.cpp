/**
 * @file
 * Validates paper Table 4's durability and programmer-intuition
 * columns by *measurement*: each of the ten tabulated DDP models runs
 * YCSB-A with a full-system crash injected mid-measurement, and the
 * property checkers report
 *
 *  - lost acked-write keys (durability: 0 expected iff the model's
 *    write completion implies durability),
 *  - monotonic-read violations (expected 0 iff Table 4 says "yes"),
 *  - stale reads (expected 0 iff Table 4 says non-stale "yes").
 *
 * The printed table shows the paper's qualitative entry next to the
 * measured count.
 */

#include "bench_common.hh"

using namespace ddp;
using namespace ddp::bench;

namespace {

const char *
yn(bool b)
{
    return b ? "yes" : "no";
}

} // namespace

int
main()
{
    printHeader("Table 4 validation: crash-injected durability and "
                "intuition properties");

    const core::DdpModel rows[] = {
        {core::Consistency::Linearizable, core::Persistency::Synchronous},
        {core::Consistency::ReadEnforced, core::Persistency::Synchronous},
        {core::Consistency::Transactional,
         core::Persistency::Synchronous},
        {core::Consistency::Causal, core::Persistency::Synchronous},
        {core::Consistency::Eventual, core::Persistency::Synchronous},
        {core::Consistency::Linearizable,
         core::Persistency::ReadEnforced},
        {core::Consistency::Causal, core::Persistency::ReadEnforced},
        {core::Consistency::Linearizable, core::Persistency::Eventual},
        {core::Consistency::Linearizable, core::Persistency::Scope},
        {core::Consistency::Transactional, core::Persistency::Scope},
    };

    stats::Table t({"Model", "Durability(paper)", "LostKeys(meas)",
                    "Monot(paper)", "MonotViol(meas)",
                    "NonStale(paper)", "StaleReads(meas)"});

    for (const core::DdpModel &m : rows) {
        core::PropertyChecker pc;
        cluster::ClusterConfig cfg = paperConfig(m);
        cluster::Cluster c(cfg);
        c.setChecker(&pc);
        c.scheduleCrash(cfg.warmup + cfg.measure / 2);
        cluster::RunResult r = c.run();

        core::ModelTraits traits = core::traitsOf(m);
        t.addRow({shortName(m), core::levelName(traits.durability),
                  std::to_string(r.lostAckedWriteKeys),
                  yn(traits.monotonicReads),
                  std::to_string(r.monotonicViolations),
                  yn(traits.nonStaleReads),
                  std::to_string(r.staleReads)});
        std::cerr << "  ran " << core::modelName(m) << "\n";
    }
    t.print(std::cout);

    std::cout
        << "\nreading guide: High-durability models must show 0 lost\n"
        << "keys; models with monotonic/non-stale 'yes' must show 0\n"
        << "violations of the respective property; 'no' entries are\n"
        << "expected to accumulate violations under crash injection\n"
        << "or staleness-prone consistency.\n";
    return 0;
}
