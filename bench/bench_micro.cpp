/**
 * @file
 * Google-benchmark microbenchmarks of the simulation substrates: the
 * event kernel, RNG/zipfian sampling, the store backends, the
 * channel/bank memory model, the cache hierarchy, and the fabric.
 * These bound the host-side cost of simulation and catch performance
 * regressions in the substrate code.
 */

#include <benchmark/benchmark.h>

#include "kv/store.hh"
#include "mem/cache.hh"
#include "mem/memory_device.hh"
#include "net/fabric.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "workload/ycsb.hh"

using namespace ddp;

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        for (int i = 0; i < 1024; ++i)
            eq.schedule(static_cast<sim::Tick>(i * 7 % 911), [] {});
        eq.run();
        benchmark::DoNotOptimize(eq.executedEvents());
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

static void
BM_Pcg32(benchmark::State &state)
{
    sim::Pcg32 rng(1, 1);
    std::uint64_t sum = 0;
    for (auto _ : state)
        sum += rng.nextU32();
    benchmark::DoNotOptimize(sum);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Pcg32);

static void
BM_Zipfian(benchmark::State &state)
{
    sim::Pcg32 rng(1, 1);
    sim::ZipfianGenerator zipf(100000, 0.99);
    std::uint64_t sum = 0;
    for (auto _ : state)
        sum += zipf.next(rng);
    benchmark::DoNotOptimize(sum);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Zipfian);

static void
BM_StorePut(benchmark::State &state)
{
    auto kind = static_cast<kv::StoreKind>(state.range(0));
    auto store = kv::makeStore(kind);
    sim::Pcg32 rng(1, 2);
    for (auto _ : state)
        store->put(rng.nextBounded(1 << 16), 1);
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(kv::storeKindName(kind));
}
BENCHMARK(BM_StorePut)->DenseRange(0, 4);

static void
BM_StoreGet(benchmark::State &state)
{
    auto kind = static_cast<kv::StoreKind>(state.range(0));
    auto store = kv::makeStore(kind);
    for (kv::KeyId k = 0; k < (1 << 16); ++k)
        store->put(k, k);
    sim::Pcg32 rng(1, 3);
    kv::Value v;
    for (auto _ : state)
        benchmark::DoNotOptimize(store->get(rng.nextBounded(1 << 16), v));
    state.SetItemsProcessed(state.iterations());
    state.SetLabel(kv::storeKindName(kind));
}
BENCHMARK(BM_StoreGet)->DenseRange(0, 4);

static void
BM_NvmWriteTiming(benchmark::State &state)
{
    mem::MemoryDevice dev(mem::MemoryParams::nvm());
    sim::Pcg32 rng(1, 4);
    sim::Tick t = 0;
    for (auto _ : state) {
        t = dev.write(t, rng.nextU64() & 0xffffc0);
        benchmark::DoNotOptimize(t);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NvmWriteTiming);

static void
BM_CacheHierarchyAccess(benchmark::State &state)
{
    mem::CacheHierarchy h(mem::CacheHierarchyParams::paperDefault());
    sim::Pcg32 rng(1, 5);
    for (auto _ : state) {
        auto r = h.access((rng.nextU64() & 0xffff) * 64);
        benchmark::DoNotOptimize(r.latency);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHierarchyAccess);

static void
BM_FabricSend(benchmark::State &state)
{
    sim::EventQueue eq;
    net::NetworkParams p;
    net::Fabric fabric(eq, p, 5);
    for (net::NodeId n = 0; n < 5; ++n)
        fabric.attach(n, [](const net::Message &) {});
    net::Message m;
    m.src = 0;
    m.hasData = true;
    for (auto _ : state) {
        fabric.broadcast(m);
        eq.run();
    }
    state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_FabricSend);

static void
BM_YcsbOpGen(benchmark::State &state)
{
    workload::OpGenerator gen(workload::WorkloadSpec::ycsbA(100000), 1,
                              1);
    for (auto _ : state)
        benchmark::DoNotOptimize(gen.next());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_YcsbOpGen);

BENCHMARK_MAIN();
