/**
 * @file
 * Crash and recovery demonstration: run a workload under several DDP
 * models, crash the whole cluster mid-run, recover with voting, and
 * report what each model preserved — acked-write durability,
 * monotonic reads, non-stale reads, replica divergence, and the
 * modeled recovery time.
 *
 * Usage: crash_recovery [keys]
 */

#include <cstdlib>
#include <iostream>

#include "cluster/cluster.hh"
#include "stats/table.hh"
#include "stats/timeseries.hh"

using namespace ddp;

int
main(int argc, char **argv)
{
    std::uint64_t keys = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                  : 20000;

    std::cout << "Crash + voting recovery across DDP models ("
              << keys << " keys, crash mid-run)\n\n";

    const core::DdpModel models[] = {
        {core::Consistency::Linearizable,
         core::Persistency::Synchronous},
        {core::Consistency::Linearizable, core::Persistency::Scope},
        {core::Consistency::Linearizable, core::Persistency::Eventual},
        {core::Consistency::Causal, core::Persistency::Synchronous},
        {core::Consistency::Eventual, core::Persistency::Eventual},
    };

    stats::Table t({"Model", "LostAckedKeys", "MonotViol", "StaleReads",
                    "DivergentKeys", "RecoveryUs"});

    stats::RateSeries causal_timeline(50 * sim::kMicrosecond);
    for (const core::DdpModel &m : models) {
        core::PropertyChecker checker;
        cluster::ClusterConfig cfg;
        cfg.model = m;
        cfg.keyCount = keys;
        cfg.workload = workload::WorkloadSpec::ycsbA(keys);
        cfg.warmup = 300 * sim::kMicrosecond;
        cfg.measure = 1000 * sim::kMicrosecond;

        cluster::Cluster c(cfg);
        c.setChecker(&checker);
        if (m.consistency == core::Consistency::Causal)
            c.setTimeline(&causal_timeline);
        c.scheduleCrash(cfg.warmup + cfg.measure / 2);
        cluster::RunResult r = c.run();

        const cluster::RecoveryStats &rs = c.recoveries().at(0);
        t.addRow({core::modelName(m),
                  std::to_string(r.lostAckedWriteKeys),
                  std::to_string(r.monotonicViolations),
                  std::to_string(r.staleReads),
                  std::to_string(rs.divergentKeys),
                  stats::Table::num(sim::ticksToUs(rs.recoveryTime),
                                    1)});
    }
    t.print(std::cout);

    // Throughput over time for <Causal, Synchronous>: the crash dip
    // and post-recovery ramp are visible as a bar per 50 us bucket.
    std::cout << "\n<Causal, Synchronous> throughput timeline "
                 "(50 us buckets, '#' ~ 4 Mreq/s):\n";
    for (std::size_t b = 0; b < causal_timeline.buckets(); ++b) {
        double mreqs = causal_timeline.rateAt(b) / 1e6;
        std::cout << stats::Table::num(
                         sim::ticksToUs(causal_timeline.bucketStart(b)),
                         0)
                  << "us ";
        int bars = static_cast<int>(mreqs / 4.0);
        for (int i = 0; i < bars; ++i)
            std::cout << '#';
        std::cout << ' ' << stats::Table::num(mreqs, 1) << "\n";
    }

    std::cout
        << "\nHow to read this: strict DDP models (<Linearizable,\n"
        << "Synchronous>) lose nothing and keep reads intuitive even\n"
        << "across the crash. Relaxed persistency loses acknowledged\n"
        << "writes (and with them non-stale reads); relaxed\n"
        << "consistency loses read monotonicity even without the\n"
        << "crash. Divergent keys show how far replicas' NVM images\n"
        << "drifted before the voting recovery reconciled them.\n";
    return 0;
}
