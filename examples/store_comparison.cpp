/**
 * @file
 * Store backend comparison: the paper evaluates memcached plus simpler
 * in-memory stores (HashTable, Map, B-Tree, BPlusTree) and averages
 * across them. This example runs the same DDP model over every
 * backend and reports how the store's probe behaviour shifts local
 * access cost and end-to-end metrics; it also exercises the stores
 * directly as an embeddable KV library (range scans, eviction).
 *
 * Usage: store_comparison
 */

#include <iostream>

#include "cluster/cluster.hh"
#include "kv/blob_store.hh"
#include "kv/bplus_tree.hh"
#include "kv/slab_lru.hh"
#include "stats/table.hh"

using namespace ddp;

int
main()
{
    std::cout << "Store backends under <Causal, Synchronous>, YCSB-A\n\n";

    stats::Table t({"Backend", "Throughput(Mreq/s)", "MeanRead(ns)",
                    "MeanWrite(ns)"});
    for (kv::StoreKind kind :
         {kv::StoreKind::HashTable, kv::StoreKind::SkipList,
          kv::StoreKind::BTree, kv::StoreKind::BPlusTree,
          kv::StoreKind::SlabLru}) {
        cluster::ClusterConfig cfg;
        cfg.model = {core::Consistency::Causal,
                     core::Persistency::Synchronous};
        cfg.keyCount = 20000;
        cfg.workload = workload::WorkloadSpec::ycsbA(cfg.keyCount);
        cfg.node.storeKind = kind;
        cfg.warmup = 300 * sim::kMicrosecond;
        cfg.measure = 1000 * sim::kMicrosecond;
        cluster::Cluster c(cfg);
        cluster::RunResult r = c.run();
        t.addRow({kv::storeKindName(kind),
                  stats::Table::num(r.throughput / 1e6, 1),
                  stats::Table::num(r.meanReadNs, 0),
                  stats::Table::num(r.meanWriteNs, 0)});
    }
    t.print(std::cout);

    // The stores are plain embeddable data structures too.
    std::cout << "\nDirect library use\n------------------\n";

    kv::BPlusTree tree;
    for (kv::KeyId k = 0; k < 1000; ++k)
        tree.put(k * 2, k);
    std::size_t in_range = tree.rangeScan(
        100, 200, [](kv::KeyId, kv::Value) {});
    std::cout << "B+ tree: " << tree.size() << " keys, height "
              << tree.height() << ", " << in_range
              << " keys in [100, 200], invariants "
              << (tree.validate() ? "valid" : "BROKEN") << "\n";

    kv::SlabLruCache cache(256);
    for (kv::KeyId k = 0; k < 1000; ++k)
        cache.put(k, k);
    std::cout << "Slab LRU: capacity " << cache.capacity() << ", "
              << cache.size() << " resident, " << cache.evictions()
              << " evictions (memcached-style)\n";

    kv::BlobStore blobs;
    blobs.put(1, "distributed");
    blobs.append(1, " data persistency");
    std::string v;
    blobs.get(1, v);
    std::cout << "Blob store: key 1 -> \"" << v << "\" ("
              << blobs.valueBytes() << " value bytes in "
              << blobs.allocatedBytes()
              << " allocated across slab classes)\n";
    return 0;
}
