/**
 * @file
 * RDMA verb layer demo: the SNIA NVM-PM remote-access primitives the
 * paper's protocols assume — one-sided writes to remote volatile
 * memory, one-sided persistent writes to remote NVM, and remote
 * flushes — with their simulated completion timing.
 *
 * Usage: rdma_verbs
 */

#include <iostream>
#include <vector>

#include "mem/memory_device.hh"
#include "net/rdma.hh"
#include "sim/event_queue.hh"
#include "stats/table.hh"

using namespace ddp;

int
main()
{
    sim::EventQueue eq;
    net::NetworkParams params; // 200 Gb/s, 1 us RTT

    mem::MemoryDevice nvm_local(mem::MemoryParams::nvm());
    mem::MemoryDevice nvm_remote(mem::MemoryParams::nvm());
    net::RdmaEngine rdma(eq, 0, params, {&nvm_local, &nvm_remote});

    std::cout << "SNIA-style RDMA verbs against a remote node "
              << "(1 us RTT, NVM 400 ns writes)\n\n";

    stats::Table t({"Verb", "Guarantee on ACK", "Latency(ns)"});

    sim::Tick w = 0, wp = 0, fl = 0;
    rdma.write(1, 0x1000, 64, [&](sim::Tick at) { w = at; });
    eq.run();
    sim::Tick base = eq.now();

    rdma.writePersist(1, 0x2000, 64, [&](sim::Tick at) { wp = at; });
    eq.run();
    sim::Tick base2 = eq.now();

    rdma.flush(1, 0x2000, [&](sim::Tick at) { fl = at; });
    eq.run();

    t.addRow({"RDMA WRITE", "remote volatile memory updated",
              stats::Table::num(sim::ticksToNs(w), 0)});
    t.addRow({"RDMA WRITE_PERSIST", "remote NVM durable",
              stats::Table::num(sim::ticksToNs(wp - base), 0)});
    t.addRow({"RDMA FLUSH", "remote line flushed to NVM",
              stats::Table::num(sim::ticksToNs(fl - base2), 0)});
    t.print(std::cout);

    // Burst of persistent writes: NVM bank queueing stretches the tail.
    std::vector<sim::Tick> acks;
    sim::Tick start = eq.now();
    for (int i = 0; i < 32; ++i) {
        rdma.writePersist(1, 0x4000, 64,
                          [&](sim::Tick at) { acks.push_back(at); });
    }
    eq.run();
    std::cout << "\nburst of 32 same-line persistent writes: first ack "
              << stats::Table::num(sim::ticksToNs(acks.front() - start),
                                   0)
              << " ns, last ack "
              << stats::Table::num(sim::ticksToNs(acks.back() - start),
                                   0)
              << " ns (remote NVM serializes the line's bank)\n"
              << "total RDMA ops issued: " << rdma.opCount() << "\n";
    return 0;
}
