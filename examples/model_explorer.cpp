/**
 * @file
 * Model explorer: enumerate all 25 DDP models, print their Table-4
 * qualitative traits, optionally run a quick simulation of each, and
 * recommend models for the application classes of the paper's Sec. 9.
 *
 * Usage: model_explorer [--run]
 *   --run  additionally simulate every model briefly and report
 *          measured throughput next to the qualitative traits.
 */

#include <cstring>
#include <iostream>

#include "cluster/cluster.hh"
#include "stats/table.hh"

using namespace ddp;

namespace {

const char *
yn(bool b)
{
    return b ? "yes" : "no";
}

double
quickThroughput(const core::DdpModel &m)
{
    cluster::ClusterConfig cfg;
    cfg.model = m;
    cfg.numServers = 5;
    cfg.clientsPerServer = 20;
    cfg.keyCount = 20000;
    cfg.workload = workload::WorkloadSpec::ycsbA(cfg.keyCount);
    cfg.warmup = 200 * sim::kMicrosecond;
    cfg.measure = 600 * sim::kMicrosecond;
    cluster::Cluster c(cfg);
    return c.run().throughput;
}

} // namespace

int
main(int argc, char **argv)
{
    bool run = argc > 1 && std::strcmp(argv[1], "--run") == 0;

    std::cout << "The 25 Distributed Data Persistency models\n"
              << "==========================================\n\n";

    std::vector<std::string> header = {
        "Model",       "Durability", "Perf",     "Monot",
        "NonStale",    "Intuition",  "Progrmb",  "Implmt"};
    if (run)
        header.push_back("Mreq/s");
    stats::Table t(header);

    for (const core::DdpModel &m : core::allModels()) {
        core::ModelTraits tr = core::traitsOf(m);
        std::vector<std::string> row = {
            core::modelName(m),
            core::levelName(tr.durability),
            core::levelName(tr.performance),
            yn(tr.monotonicReads),
            yn(tr.nonStaleReads),
            core::levelName(tr.intuition),
            core::levelName(tr.programmability),
            core::levelName(tr.implementability),
        };
        if (run) {
            row.push_back(
                stats::Table::num(quickThroughput(m) / 1e6, 1));
            std::cerr << "  simulated " << core::modelName(m) << "\n";
        }
        t.addRow(row);
    }
    t.print(std::cout);

    std::cout
        << "\nGuidance for application classes (paper Sec. 9)\n"
        << "-----------------------------------------------\n"
        << "latency-sensitive, staleness-tolerant (social feeds):\n"
        << "    <Eventual, Synchronous>\n"
        << "consistency-sensitive, bounded staleness (web search):\n"
        << "    <Read-Enforced, Scope> or <Read-Enforced, Eventual>\n"
        << "balanced consistency and performance (photo sharing):\n"
        << "    <Causal, Synchronous>\n"
        << "transactional guarantees (databases like Spanner):\n"
        << "    <Transactional, Scope> or <Transactional, Eventual>\n"
        << "hybrid local/global deployments:\n"
        << "    strong+weak persistency split per tier (see\n"
        << "    examples/hybrid_deployment.cpp)\n";
    return 0;
}
