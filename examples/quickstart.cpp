/**
 * @file
 * Quickstart: build a 5-server cluster, pick a DDP model, run YCSB-A,
 * and print the headline metrics.
 *
 * Usage: quickstart [consistency] [persistency]
 *   consistency: linearizable | read-enforced | transactional |
 *                causal | eventual        (default: causal)
 *   persistency: strict | synchronous | read-enforced | scope |
 *                eventual                 (default: synchronous)
 */

#include <cstring>
#include <iostream>
#include <string>

#include "cluster/cluster.hh"

using namespace ddp;

namespace {

core::Consistency
parseConsistency(const std::string &s)
{
    if (s == "linearizable") return core::Consistency::Linearizable;
    if (s == "read-enforced") return core::Consistency::ReadEnforced;
    if (s == "transactional") return core::Consistency::Transactional;
    if (s == "causal") return core::Consistency::Causal;
    if (s == "eventual") return core::Consistency::Eventual;
    std::cerr << "unknown consistency '" << s << "', using causal\n";
    return core::Consistency::Causal;
}

core::Persistency
parsePersistency(const std::string &s)
{
    if (s == "strict") return core::Persistency::Strict;
    if (s == "synchronous") return core::Persistency::Synchronous;
    if (s == "read-enforced") return core::Persistency::ReadEnforced;
    if (s == "scope") return core::Persistency::Scope;
    if (s == "eventual") return core::Persistency::Eventual;
    std::cerr << "unknown persistency '" << s << "', using synchronous\n";
    return core::Persistency::Synchronous;
}

} // namespace

int
main(int argc, char **argv)
{
    cluster::ClusterConfig cfg;
    cfg.model.consistency = argc > 1 ? parseConsistency(argv[1])
                                     : core::Consistency::Causal;
    cfg.model.persistency = argc > 2 ? parsePersistency(argv[2])
                                     : core::Persistency::Synchronous;
    cfg.warmup = 1 * sim::kMillisecond;
    cfg.measure = 4 * sim::kMillisecond;

    std::cout << "DDP model: " << core::modelName(cfg.model) << "\n"
              << "Cluster:   " << cfg.numServers << " servers, "
              << cfg.totalClients() << " clients, workload "
              << cfg.workload.name << "\n\n";

    cluster::Cluster cluster(cfg);
    cluster::RunResult r = cluster.run();

    std::cout << "throughput        " << r.throughput / 1e6
              << " Mreq/s\n"
              << "mean read  lat    " << r.meanReadNs << " ns\n"
              << "mean write lat    " << r.meanWriteNs << " ns\n"
              << "p95  read  lat    " << r.p95ReadNs << " ns\n"
              << "p95  write lat    " << r.p95WriteNs << " ns\n"
              << "reads / writes    " << r.reads << " / " << r.writes
              << "\n"
              << "messages          " << r.messages << "\n"
              << "persists issued   " << r.persistsIssued << "\n";
    if (r.xactStarted > 0) {
        std::cout << "xacts started     " << r.xactStarted << "\n"
                  << "xacts committed   " << r.xactCommitted << "\n"
                  << "xacts aborted     " << r.xactAborted << "\n"
                  << "conflict checks   " << r.xactConflicts << "\n";
    }

    core::ModelTraits t = core::traitsOf(cfg.model);
    std::cout << "\nTable-4 traits: durability="
              << core::levelName(t.durability)
              << " performance=" << core::levelName(t.performance)
              << " intuition=" << core::levelName(t.intuition)
              << "\n";
    return 0;
}
