/**
 * @file
 * Trace record & replay: the paper's methodology collects client
 * operation traces and replays them through the timing simulator. This
 * example records a YCSB trace, saves and reloads it through the text
 * format, then replays the identical request sequence under two DDP
 * models — an apples-to-apples comparison no generator re-seeding can
 * guarantee.
 *
 * Usage: trace_replay [ops]
 */

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "cluster/cluster.hh"
#include "stats/table.hh"
#include "workload/trace.hh"

using namespace ddp;

int
main(int argc, char **argv)
{
    std::size_t ops = argc > 1
                          ? std::strtoull(argv[1], nullptr, 10)
                          : 5000;

    // 1. Record a trace from the YCSB-A generator.
    workload::WorkloadSpec spec = workload::WorkloadSpec::ycsbA(20000);
    workload::OpGenerator gen(spec, 1234, 1);
    workload::Trace trace = workload::Trace::record(gen, ops);
    std::cout << "recorded " << trace.size() << " ops ("
              << stats::Table::num(trace.writeFraction() * 100, 1)
              << "% writes)\n";

    // 2. Round-trip it through the on-disk format.
    std::stringstream file;
    trace.save(file);
    workload::Trace loaded;
    if (!workload::Trace::load(file, loaded) || !(loaded == trace)) {
        std::cerr << "trace round-trip failed\n";
        return 1;
    }
    std::cout << "trace round-tripped through the text format\n\n";

    // 3. Replay the same sequence under two DDP models.
    stats::Table t({"Model", "Throughput(Mreq/s)", "MeanRead(ns)",
                    "MeanWrite(ns)"});
    for (core::DdpModel m :
         {core::DdpModel{core::Consistency::Linearizable,
                         core::Persistency::Synchronous},
          core::DdpModel{core::Consistency::Causal,
                         core::Persistency::Synchronous}}) {
        cluster::ClusterConfig cfg;
        cfg.model = m;
        cfg.keyCount = spec.keyCount;
        cfg.workload = spec; // used only for key-space metadata
        cfg.trace = &loaded;
        cfg.warmup = 300 * sim::kMicrosecond;
        cfg.measure = 1000 * sim::kMicrosecond;
        cluster::Cluster c(cfg);
        cluster::RunResult r = c.run();
        t.addRow({core::modelName(m),
                  stats::Table::num(r.throughput / 1e6, 1),
                  stats::Table::num(r.meanReadNs, 0),
                  stats::Table::num(r.meanWriteNs, 0)});
    }
    t.print(std::cout);
    std::cout << "\nboth runs replayed the byte-identical request "
                 "sequence.\n";
    return 0;
}
