/**
 * @file
 * Hybrid deployment exploration (paper Sec. 9): many systems use
 * strong consistency inside a local cluster and weak consistency
 * across the data center. The paper suggests pairing the tiers with
 * opposite persistency strengths: Scope/Eventual persistency locally
 * (fast, the cluster is one failure domain) and Synchronous
 * persistency across the system (the durable tier of record).
 *
 * This example simulates both tiers with their recommended DDP models
 * and contrasts the composite with two uniform deployments.
 *
 * Usage: hybrid_deployment [local_fraction_percent]
 */

#include <cstdlib>
#include <iostream>

#include "cluster/cluster.hh"
#include "stats/table.hh"

using namespace ddp;

namespace {

cluster::RunResult
runTier(core::DdpModel model, std::uint32_t servers, sim::Tick rtt,
        bool two_tier = false)
{
    cluster::ClusterConfig cfg;
    cfg.model = model;
    cfg.numServers = servers;
    cfg.clientsPerServer = 20;
    cfg.keyCount = 20000;
    cfg.workload = workload::WorkloadSpec::ycsbA(cfg.keyCount);
    cfg.network.roundTrip = rtt;
    if (two_tier) {
        // The cross-system tier spans two racks behind an
        // oversubscribed uplink.
        cfg.network.topology = net::Topology::TwoTier;
        cfg.network.rackSize = (servers + 1) / 2;
    }
    cfg.warmup = 300 * sim::kMicrosecond;
    cfg.measure = 1000 * sim::kMicrosecond;
    cluster::Cluster c(cfg);
    return c.run();
}

} // namespace

int
main(int argc, char **argv)
{
    double local_fraction =
        (argc > 1 ? std::strtod(argv[1], nullptr) : 80.0) / 100.0;

    std::cout << "Hybrid deployment: " << local_fraction * 100
              << "% of requests stay in the local cluster\n\n";

    // Local tier: strong consistency, relaxed persistency, fast fabric.
    cluster::RunResult local = runTier(
        {core::Consistency::ReadEnforced, core::Persistency::Eventual},
        3, sim::kMicrosecond / 2);
    // Global tier: weak consistency, strong persistency, slower links
    // across two racks behind an oversubscribed uplink.
    cluster::RunResult global = runTier(
        {core::Consistency::Eventual, core::Persistency::Synchronous},
        5, 2 * sim::kMicrosecond, /*two_tier=*/true);

    // Uniform baselines on the same two-tier fabric.
    cluster::RunResult strict = runTier(
        {core::Consistency::Linearizable,
         core::Persistency::Synchronous},
        5, 2 * sim::kMicrosecond, /*two_tier=*/true);
    cluster::RunResult loose = runTier(
        {core::Consistency::Eventual, core::Persistency::Eventual}, 5,
        2 * sim::kMicrosecond, /*two_tier=*/true);

    auto blend = [&](double l, double g) {
        return local_fraction * l + (1.0 - local_fraction) * g;
    };

    stats::Table t({"Deployment", "MeanLatency(ns)", "MeanWrite(ns)",
                    "Durability"});
    t.addRow({"hybrid <RE,Ev> local + <Ev,Sync> global",
              stats::Table::num(blend(local.meanNs, global.meanNs), 0),
              stats::Table::num(
                  blend(local.meanWriteNs, global.meanWriteNs), 0),
              "global tier durable"});
    t.addRow({"uniform <Linearizable, Synchronous>",
              stats::Table::num(strict.meanNs, 0),
              stats::Table::num(strict.meanWriteNs, 0), "High"});
    t.addRow({"uniform <Eventual, Eventual>",
              stats::Table::num(loose.meanNs, 0),
              stats::Table::num(loose.meanWriteNs, 0), "Low"});
    t.print(std::cout);

    std::cout << "\ntier detail: local "
              << stats::Table::num(local.throughput / 1e6, 1)
              << " Mreq/s @ "
              << stats::Table::num(local.meanNs, 0)
              << " ns | global "
              << stats::Table::num(global.throughput / 1e6, 1)
              << " Mreq/s @ "
              << stats::Table::num(global.meanNs, 0) << " ns\n"
              << "\nThe hybrid keeps most requests at local-cluster\n"
              << "latency while the cross-system tier persists every\n"
              << "update synchronously — the durability of the strict\n"
              << "deployment at a fraction of its latency.\n";
    return 0;
}
