# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(ddpsim_help "/root/repo/build/tools/ddpsim" "--help")
set_tests_properties(ddpsim_help PROPERTIES  PASS_REGULAR_EXPRESSION "experiment driver" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ddpsim_bad_flag "/root/repo/build/tools/ddpsim" "--no-such-flag" "1")
set_tests_properties(ddpsim_bad_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ddpsim_tiny_run "/root/repo/build/tools/ddpsim" "--consistency" "eventual" "--persistency" "eventual" "--servers" "2" "--clients-per-server" "2" "--keys" "500" "--warmup-us" "50" "--measure-us" "150")
set_tests_properties(ddpsim_tiny_run PROPERTIES  PASS_REGULAR_EXPRESSION "<Eventual, Eventual>" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(ddpsim_csv "/root/repo/build/tools/ddpsim" "--consistency" "causal" "--persistency" "scope" "--servers" "2" "--clients-per-server" "2" "--keys" "500" "--warmup-us" "50" "--measure-us" "150" "--format" "csv")
set_tests_properties(ddpsim_csv PROPERTIES  PASS_REGULAR_EXPRESSION "consistency,persistency,throughput_mreqs" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
