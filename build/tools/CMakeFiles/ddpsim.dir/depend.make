# Empty dependencies file for ddpsim.
# This may be replaced when dependencies are built.
