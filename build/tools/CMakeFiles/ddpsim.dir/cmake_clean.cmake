file(REMOVE_RECURSE
  "CMakeFiles/ddpsim.dir/ddpsim.cc.o"
  "CMakeFiles/ddpsim.dir/ddpsim.cc.o.d"
  "ddpsim"
  "ddpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
