file(REMOVE_RECURSE
  "CMakeFiles/rdma_verbs.dir/rdma_verbs.cpp.o"
  "CMakeFiles/rdma_verbs.dir/rdma_verbs.cpp.o.d"
  "rdma_verbs"
  "rdma_verbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdma_verbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
