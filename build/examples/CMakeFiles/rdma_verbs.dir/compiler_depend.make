# Empty compiler generated dependencies file for rdma_verbs.
# This may be replaced when dependencies are built.
