file(REMOVE_RECURSE
  "libddp_workload.a"
)
