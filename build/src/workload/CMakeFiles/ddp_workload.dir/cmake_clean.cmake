file(REMOVE_RECURSE
  "CMakeFiles/ddp_workload.dir/trace.cc.o"
  "CMakeFiles/ddp_workload.dir/trace.cc.o.d"
  "CMakeFiles/ddp_workload.dir/ycsb.cc.o"
  "CMakeFiles/ddp_workload.dir/ycsb.cc.o.d"
  "libddp_workload.a"
  "libddp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
