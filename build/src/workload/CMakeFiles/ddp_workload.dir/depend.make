# Empty dependencies file for ddp_workload.
# This may be replaced when dependencies are built.
