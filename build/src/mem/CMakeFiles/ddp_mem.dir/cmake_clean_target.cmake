file(REMOVE_RECURSE
  "libddp_mem.a"
)
