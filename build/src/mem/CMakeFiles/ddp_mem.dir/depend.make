# Empty dependencies file for ddp_mem.
# This may be replaced when dependencies are built.
