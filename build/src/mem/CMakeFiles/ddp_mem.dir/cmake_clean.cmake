file(REMOVE_RECURSE
  "CMakeFiles/ddp_mem.dir/cache.cc.o"
  "CMakeFiles/ddp_mem.dir/cache.cc.o.d"
  "CMakeFiles/ddp_mem.dir/memory_device.cc.o"
  "CMakeFiles/ddp_mem.dir/memory_device.cc.o.d"
  "libddp_mem.a"
  "libddp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
