file(REMOVE_RECURSE
  "libddp_cluster.a"
)
