# Empty dependencies file for ddp_cluster.
# This may be replaced when dependencies are built.
