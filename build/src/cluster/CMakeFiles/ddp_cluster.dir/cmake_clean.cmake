file(REMOVE_RECURSE
  "CMakeFiles/ddp_cluster.dir/client.cc.o"
  "CMakeFiles/ddp_cluster.dir/client.cc.o.d"
  "CMakeFiles/ddp_cluster.dir/cluster.cc.o"
  "CMakeFiles/ddp_cluster.dir/cluster.cc.o.d"
  "libddp_cluster.a"
  "libddp_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddp_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
