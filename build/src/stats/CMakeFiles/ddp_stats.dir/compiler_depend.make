# Empty compiler generated dependencies file for ddp_stats.
# This may be replaced when dependencies are built.
