file(REMOVE_RECURSE
  "libddp_stats.a"
)
