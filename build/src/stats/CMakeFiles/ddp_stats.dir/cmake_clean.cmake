file(REMOVE_RECURSE
  "CMakeFiles/ddp_stats.dir/table.cc.o"
  "CMakeFiles/ddp_stats.dir/table.cc.o.d"
  "libddp_stats.a"
  "libddp_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddp_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
