# Empty dependencies file for ddp_kv.
# This may be replaced when dependencies are built.
