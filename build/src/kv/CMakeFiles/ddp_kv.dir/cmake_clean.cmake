file(REMOVE_RECURSE
  "CMakeFiles/ddp_kv.dir/blob_store.cc.o"
  "CMakeFiles/ddp_kv.dir/blob_store.cc.o.d"
  "CMakeFiles/ddp_kv.dir/bplus_tree.cc.o"
  "CMakeFiles/ddp_kv.dir/bplus_tree.cc.o.d"
  "CMakeFiles/ddp_kv.dir/btree.cc.o"
  "CMakeFiles/ddp_kv.dir/btree.cc.o.d"
  "CMakeFiles/ddp_kv.dir/hash_table.cc.o"
  "CMakeFiles/ddp_kv.dir/hash_table.cc.o.d"
  "CMakeFiles/ddp_kv.dir/skip_list.cc.o"
  "CMakeFiles/ddp_kv.dir/skip_list.cc.o.d"
  "CMakeFiles/ddp_kv.dir/slab_lru.cc.o"
  "CMakeFiles/ddp_kv.dir/slab_lru.cc.o.d"
  "CMakeFiles/ddp_kv.dir/store.cc.o"
  "CMakeFiles/ddp_kv.dir/store.cc.o.d"
  "libddp_kv.a"
  "libddp_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddp_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
