
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kv/blob_store.cc" "src/kv/CMakeFiles/ddp_kv.dir/blob_store.cc.o" "gcc" "src/kv/CMakeFiles/ddp_kv.dir/blob_store.cc.o.d"
  "/root/repo/src/kv/bplus_tree.cc" "src/kv/CMakeFiles/ddp_kv.dir/bplus_tree.cc.o" "gcc" "src/kv/CMakeFiles/ddp_kv.dir/bplus_tree.cc.o.d"
  "/root/repo/src/kv/btree.cc" "src/kv/CMakeFiles/ddp_kv.dir/btree.cc.o" "gcc" "src/kv/CMakeFiles/ddp_kv.dir/btree.cc.o.d"
  "/root/repo/src/kv/hash_table.cc" "src/kv/CMakeFiles/ddp_kv.dir/hash_table.cc.o" "gcc" "src/kv/CMakeFiles/ddp_kv.dir/hash_table.cc.o.d"
  "/root/repo/src/kv/skip_list.cc" "src/kv/CMakeFiles/ddp_kv.dir/skip_list.cc.o" "gcc" "src/kv/CMakeFiles/ddp_kv.dir/skip_list.cc.o.d"
  "/root/repo/src/kv/slab_lru.cc" "src/kv/CMakeFiles/ddp_kv.dir/slab_lru.cc.o" "gcc" "src/kv/CMakeFiles/ddp_kv.dir/slab_lru.cc.o.d"
  "/root/repo/src/kv/store.cc" "src/kv/CMakeFiles/ddp_kv.dir/store.cc.o" "gcc" "src/kv/CMakeFiles/ddp_kv.dir/store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ddp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
