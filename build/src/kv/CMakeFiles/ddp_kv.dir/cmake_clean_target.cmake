file(REMOVE_RECURSE
  "libddp_kv.a"
)
