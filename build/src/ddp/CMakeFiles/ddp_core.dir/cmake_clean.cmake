file(REMOVE_RECURSE
  "CMakeFiles/ddp_core.dir/checkers.cc.o"
  "CMakeFiles/ddp_core.dir/checkers.cc.o.d"
  "CMakeFiles/ddp_core.dir/models.cc.o"
  "CMakeFiles/ddp_core.dir/models.cc.o.d"
  "CMakeFiles/ddp_core.dir/protocol_node.cc.o"
  "CMakeFiles/ddp_core.dir/protocol_node.cc.o.d"
  "CMakeFiles/ddp_core.dir/recovery.cc.o"
  "CMakeFiles/ddp_core.dir/recovery.cc.o.d"
  "CMakeFiles/ddp_core.dir/xact_table.cc.o"
  "CMakeFiles/ddp_core.dir/xact_table.cc.o.d"
  "libddp_core.a"
  "libddp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
