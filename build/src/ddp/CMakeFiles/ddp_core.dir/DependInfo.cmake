
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ddp/checkers.cc" "src/ddp/CMakeFiles/ddp_core.dir/checkers.cc.o" "gcc" "src/ddp/CMakeFiles/ddp_core.dir/checkers.cc.o.d"
  "/root/repo/src/ddp/models.cc" "src/ddp/CMakeFiles/ddp_core.dir/models.cc.o" "gcc" "src/ddp/CMakeFiles/ddp_core.dir/models.cc.o.d"
  "/root/repo/src/ddp/protocol_node.cc" "src/ddp/CMakeFiles/ddp_core.dir/protocol_node.cc.o" "gcc" "src/ddp/CMakeFiles/ddp_core.dir/protocol_node.cc.o.d"
  "/root/repo/src/ddp/recovery.cc" "src/ddp/CMakeFiles/ddp_core.dir/recovery.cc.o" "gcc" "src/ddp/CMakeFiles/ddp_core.dir/recovery.cc.o.d"
  "/root/repo/src/ddp/xact_table.cc" "src/ddp/CMakeFiles/ddp_core.dir/xact_table.cc.o" "gcc" "src/ddp/CMakeFiles/ddp_core.dir/xact_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ddp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ddp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ddp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ddp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/ddp_kv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
