# Empty compiler generated dependencies file for ddp_core.
# This may be replaced when dependencies are built.
