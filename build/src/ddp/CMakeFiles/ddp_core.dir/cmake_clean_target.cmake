file(REMOVE_RECURSE
  "libddp_core.a"
)
