file(REMOVE_RECURSE
  "libddp_sim.a"
)
