file(REMOVE_RECURSE
  "CMakeFiles/ddp_sim.dir/event_queue.cc.o"
  "CMakeFiles/ddp_sim.dir/event_queue.cc.o.d"
  "libddp_sim.a"
  "libddp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
