# Empty compiler generated dependencies file for ddp_sim.
# This may be replaced when dependencies are built.
