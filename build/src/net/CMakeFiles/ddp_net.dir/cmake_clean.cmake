file(REMOVE_RECURSE
  "CMakeFiles/ddp_net.dir/fabric.cc.o"
  "CMakeFiles/ddp_net.dir/fabric.cc.o.d"
  "CMakeFiles/ddp_net.dir/message.cc.o"
  "CMakeFiles/ddp_net.dir/message.cc.o.d"
  "CMakeFiles/ddp_net.dir/rdma.cc.o"
  "CMakeFiles/ddp_net.dir/rdma.cc.o.d"
  "CMakeFiles/ddp_net.dir/tracer.cc.o"
  "CMakeFiles/ddp_net.dir/tracer.cc.o.d"
  "libddp_net.a"
  "libddp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
