file(REMOVE_RECURSE
  "libddp_net.a"
)
