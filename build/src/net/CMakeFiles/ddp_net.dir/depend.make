# Empty dependencies file for ddp_net.
# This may be replaced when dependencies are built.
