file(REMOVE_RECURSE
  "../bench/bench_ablation_stalls"
  "../bench/bench_ablation_stalls.pdb"
  "CMakeFiles/bench_ablation_stalls.dir/bench_ablation_stalls.cpp.o"
  "CMakeFiles/bench_ablation_stalls.dir/bench_ablation_stalls.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_stalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
