# Empty dependencies file for bench_ablation_conflicts.
# This may be replaced when dependencies are built.
