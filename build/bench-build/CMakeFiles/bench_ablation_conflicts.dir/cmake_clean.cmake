file(REMOVE_RECURSE
  "../bench/bench_ablation_conflicts"
  "../bench/bench_ablation_conflicts.pdb"
  "CMakeFiles/bench_ablation_conflicts.dir/bench_ablation_conflicts.cpp.o"
  "CMakeFiles/bench_ablation_conflicts.dir/bench_ablation_conflicts.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_conflicts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
