file(REMOVE_RECURSE
  "../bench/bench_table4_durability"
  "../bench/bench_table4_durability.pdb"
  "CMakeFiles/bench_table4_durability.dir/bench_table4_durability.cpp.o"
  "CMakeFiles/bench_table4_durability.dir/bench_table4_durability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_durability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
