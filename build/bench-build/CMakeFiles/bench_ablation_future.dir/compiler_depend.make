# Empty compiler generated dependencies file for bench_ablation_future.
# This may be replaced when dependencies are built.
