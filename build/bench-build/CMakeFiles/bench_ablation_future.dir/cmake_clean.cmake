file(REMOVE_RECURSE
  "../bench/bench_ablation_future"
  "../bench/bench_ablation_future.pdb"
  "CMakeFiles/bench_ablation_future.dir/bench_ablation_future.cpp.o"
  "CMakeFiles/bench_ablation_future.dir/bench_ablation_future.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_future.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
