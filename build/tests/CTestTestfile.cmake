# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/event_queue_test[1]_include.cmake")
include("/root/repo/build/tests/random_test[1]_include.cmake")
include("/root/repo/build/tests/resource_test[1]_include.cmake")
include("/root/repo/build/tests/histogram_test[1]_include.cmake")
include("/root/repo/build/tests/memory_device_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_test[1]_include.cmake")
include("/root/repo/build/tests/rdma_test[1]_include.cmake")
include("/root/repo/build/tests/store_test[1]_include.cmake")
include("/root/repo/build/tests/structures_test[1]_include.cmake")
include("/root/repo/build/tests/ycsb_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/vector_clock_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_test[1]_include.cmake")
include("/root/repo/build/tests/checkers_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/model_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/replication_test[1]_include.cmake")
include("/root/repo/build/tests/tracer_test[1]_include.cmake")
include("/root/repo/build/tests/chaos_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_edge_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_test[1]_include.cmake")
include("/root/repo/build/tests/interleaving_test[1]_include.cmake")
include("/root/repo/build/tests/edge_config_test[1]_include.cmake")
include("/root/repo/build/tests/blob_store_test[1]_include.cmake")
include("/root/repo/build/tests/table4_soundness_test[1]_include.cmake")
