# Empty compiler generated dependencies file for table4_soundness_test.
# This may be replaced when dependencies are built.
