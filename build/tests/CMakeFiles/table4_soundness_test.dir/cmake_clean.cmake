file(REMOVE_RECURSE
  "CMakeFiles/table4_soundness_test.dir/cluster/table4_soundness_test.cc.o"
  "CMakeFiles/table4_soundness_test.dir/cluster/table4_soundness_test.cc.o.d"
  "table4_soundness_test"
  "table4_soundness_test.pdb"
  "table4_soundness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_soundness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
