# Empty compiler generated dependencies file for memory_device_test.
# This may be replaced when dependencies are built.
