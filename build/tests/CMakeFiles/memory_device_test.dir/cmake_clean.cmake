file(REMOVE_RECURSE
  "CMakeFiles/memory_device_test.dir/mem/memory_device_test.cc.o"
  "CMakeFiles/memory_device_test.dir/mem/memory_device_test.cc.o.d"
  "memory_device_test"
  "memory_device_test.pdb"
  "memory_device_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
