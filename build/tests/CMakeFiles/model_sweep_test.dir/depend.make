# Empty dependencies file for model_sweep_test.
# This may be replaced when dependencies are built.
