
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/kv/store_test.cc" "tests/CMakeFiles/store_test.dir/kv/store_test.cc.o" "gcc" "tests/CMakeFiles/store_test.dir/kv/store_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/ddp_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/ddp/CMakeFiles/ddp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ddp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ddp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ddp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/ddp_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ddp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ddp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
