# Byte-compares ddpsim sweep output between --jobs 1 and --jobs 8.
#
# Usage:
#   cmake -DDDPSIM=<path> -DMODE=<sweep|torture|torture_instant|trace>
#         [-DWORKDIR=<dir>] -P jobs_deterministic.cmake
#
# Parallel sweeps must be byte-identical to serial execution (DESIGN.md,
# "Parallel sweeps stay deterministic"): every run owns its EventQueue
# and RNG streams, and SweepRunner collects results in index order. CSV
# carries no host-timing fields, so the comparison is exact. MODE=trace
# additionally byte-compares the merged --trace-out timeline, whose
# per-run fragments are serialized on the workers and concatenated in
# model order.

if(NOT DEFINED DDPSIM OR NOT DEFINED MODE)
    message(FATAL_ERROR
        "need -DDDPSIM=<path> and -DMODE=<sweep|torture|trace>")
endif()
if(NOT DEFINED WORKDIR)
    set(WORKDIR ${CMAKE_CURRENT_BINARY_DIR})
endif()

set(common_args
    --servers 2 --clients-per-server 2 --keys 500
    --warmup-us 50 --measure-us 150 --format csv)
if(MODE STREQUAL "sweep")
    set(args --all-models ${common_args})
elseif(MODE STREQUAL "torture")
    set(args --all-models --torture 2 ${common_args})
elseif(MODE STREQUAL "torture_instant")
    # Staged instant-recovery torture: on-demand fault-in, background
    # backfill and the re-join path must all stay deterministic under
    # parallel sweep execution.
    set(args --all-models --torture 2 --recovery instant
        --crash-nodes 1 --restart-after-us 100 ${common_args})
elseif(MODE STREQUAL "trace")
    set(args --all-models ${common_args})
else()
    message(FATAL_ERROR "unknown MODE '${MODE}'")
endif()

foreach(jobs 1 8)
    set(run_args ${args})
    if(MODE STREQUAL "trace")
        list(APPEND run_args
             --trace-out ${WORKDIR}/trace_jobs${jobs}.json)
    endif()
    execute_process(
        COMMAND ${DDPSIM} ${run_args} --jobs ${jobs}
        OUTPUT_VARIABLE out_${jobs}
        ERROR_VARIABLE err_${jobs}
        RESULT_VARIABLE rc_${jobs})
    if(NOT rc_${jobs} EQUAL 0)
        message(FATAL_ERROR
            "ddpsim --jobs ${jobs} failed (rc=${rc_${jobs}}):\n${err_${jobs}}")
    endif()
endforeach()

if(NOT out_1 STREQUAL out_8)
    message(FATAL_ERROR
        "MODE=${MODE}: --jobs 8 stdout differs from --jobs 1 — parallel "
        "sweep broke determinism")
endif()

if(MODE STREQUAL "trace")
    foreach(jobs 1 8)
        file(READ ${WORKDIR}/trace_jobs${jobs}.json trace_${jobs})
        string(LENGTH "${trace_${jobs}}" trace_bytes_${jobs})
        if(trace_bytes_${jobs} EQUAL 0)
            message(FATAL_ERROR
                "--trace-out wrote an empty file at --jobs ${jobs}")
        endif()
    endforeach()
    if(NOT trace_1 STREQUAL trace_8)
        message(FATAL_ERROR
            "--trace-out differs between --jobs 1 and --jobs 8 — "
            "trace merge broke determinism")
    endif()
    message(STATUS "MODE=trace: merged timelines identical "
                   "(${trace_bytes_1} bytes)")
endif()

string(LENGTH "${out_1}" bytes)
message(STATUS "MODE=${MODE}: --jobs 1 and --jobs 8 stdout identical "
               "(${bytes} bytes)")
