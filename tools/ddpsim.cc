/**
 * @file
 * ddpsim — command-line experiment driver.
 *
 * Runs one DDP-model experiment (or a sweep over all 25 models) on the
 * simulated cluster and prints the measured metrics as a table or CSV.
 *
 *   ddpsim --consistency causal --persistency synchronous
 *   ddpsim --all-models --format csv > results.csv
 *   ddpsim --workload w --servers 3 --rtt-ns 500 --crash-at-us 2000
 *
 * Run `ddpsim --help` for the full flag list.
 */

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster.hh"
#include "stats/table.hh"

using namespace ddp;

namespace {

struct Options
{
    core::DdpModel model{core::Consistency::Causal,
                         core::Persistency::Synchronous};
    bool allModels = false;
    std::uint32_t servers = 5;
    std::uint32_t clientsPerServer = 20;
    std::uint32_t replication = 0;
    std::uint64_t keys = 100000;
    std::string workload = "a";
    double theta = 0.99;
    std::string store = "hash";
    std::uint64_t rttNs = 1000;
    std::uint64_t bandwidthGbps = 200;
    std::uint64_t warmupUs = 1000;
    std::uint64_t measureUs = 3000;
    std::uint64_t seed = 42;
    std::optional<std::uint64_t> crashAtUs;
    std::string traceFile;
    bool csv = false;

    // Fault injection (tentpole: chaos experiments from the CLI).
    double dropRate = 0.0;
    double dupRate = 0.0;
    double delayRate = 0.0;
    std::uint64_t delayNs = 0; // 0 = FaultPlan default range
    double reorderRate = 0.0;
    std::uint64_t faultSeed = 0; // 0 = derive from --seed
    /** node:from_us pairs — node is unreachable from from_us on. */
    std::vector<std::pair<std::uint32_t, std::uint64_t>> isolate;
    /** from_us:until_us — first half of servers vs the rest. */
    std::optional<std::pair<std::uint64_t, std::uint64_t>> partitionUs;
    std::string recovery = "voting";
};

void
usage(std::ostream &os)
{
    os << "ddpsim — Distributed Data Persistency experiment driver\n\n"
          "model selection:\n"
          "  --consistency C     linearizable | read-enforced |\n"
          "                      transactional | causal | eventual\n"
          "  --persistency P     strict | synchronous | read-enforced |\n"
          "                      scope | eventual\n"
          "  --all-models        sweep all 25 <C, P> combinations\n\n"
          "cluster:\n"
          "  --servers N         servers (default 5)\n"
          "  --clients-per-server N   (default 20)\n"
          "  --replication R     replicas per key, 0 = all (default 0)\n"
          "  --store S           hash | skiplist | btree | bplustree |\n"
          "                      slablru (default hash)\n\n"
          "workload:\n"
          "  --workload W        a | b | c | d | w (default a)\n"
          "  --keys N            key-space size (default 100000)\n"
          "  --theta T           zipfian skew (default 0.99)\n"
          "  --trace-file PATH   replay a recorded op trace instead\n"
          "                      (format: one 'R <key>' or 'W <key>'\n"
          "                      per line)\n\n"
          "network:\n"
          "  --rtt-ns N          NIC-to-NIC round trip (default 1000)\n"
          "  --bandwidth-gbps N  NIC line rate (default 200)\n\n"
          "run control:\n"
          "  --warmup-us N       warmup window (default 1000)\n"
          "  --measure-us N      measurement window (default 3000)\n"
          "  --seed N            RNG seed (default 42)\n"
          "  --crash-at-us N     inject a full-system crash at N us\n"
          "                      after simulation start\n"
          "  --recovery R        voting | local | simulated —\n"
          "                      post-crash recovery policy\n"
          "                      (default voting)\n\n"
          "fault injection (enables reliable delivery):\n"
          "  --drop-rate R       per-message drop probability\n"
          "  --dup-rate R        per-message duplication probability\n"
          "  --delay-rate R      per-message extra-delay probability\n"
          "  --delay-ns N        extra delay when one fires\n"
          "                      (default 1000-10000 random)\n"
          "  --reorder-rate R    per-message reorder probability\n"
          "  --isolate N:USEC    sever all links of node N from USEC\n"
          "                      on (repeatable)\n"
          "  --partition-us A:B  partition first half of the servers\n"
          "                      from the rest during [A, B) us\n"
          "  --fault-seed N      chaos RNG seed (default: derive\n"
          "                      from --seed)\n\n"
          "output:\n"
          "  --format F          table | csv (default table)\n"
          "  --help              this text\n";
}

bool
parseConsistency(const std::string &s, core::Consistency &out)
{
    if (s == "linearizable") out = core::Consistency::Linearizable;
    else if (s == "read-enforced") out = core::Consistency::ReadEnforced;
    else if (s == "transactional") out = core::Consistency::Transactional;
    else if (s == "causal") out = core::Consistency::Causal;
    else if (s == "eventual") out = core::Consistency::Eventual;
    else return false;
    return true;
}

bool
parsePersistency(const std::string &s, core::Persistency &out)
{
    if (s == "strict") out = core::Persistency::Strict;
    else if (s == "synchronous") out = core::Persistency::Synchronous;
    else if (s == "read-enforced") out = core::Persistency::ReadEnforced;
    else if (s == "scope") out = core::Persistency::Scope;
    else if (s == "eventual") out = core::Persistency::Eventual;
    else return false;
    return true;
}

bool
parseStore(const std::string &s, kv::StoreKind &out)
{
    if (s == "hash") out = kv::StoreKind::HashTable;
    else if (s == "skiplist") out = kv::StoreKind::SkipList;
    else if (s == "btree") out = kv::StoreKind::BTree;
    else if (s == "bplustree") out = kv::StoreKind::BPlusTree;
    else if (s == "slablru") out = kv::StoreKind::SlabLru;
    else return false;
    return true;
}

workload::WorkloadSpec
makeWorkload(const Options &opt)
{
    workload::WorkloadSpec w;
    if (opt.workload == "a") w = workload::WorkloadSpec::ycsbA(opt.keys);
    else if (opt.workload == "b")
        w = workload::WorkloadSpec::ycsbB(opt.keys);
    else if (opt.workload == "c")
        w = workload::WorkloadSpec::ycsbC(opt.keys);
    else if (opt.workload == "d")
        w = workload::WorkloadSpec::ycsbD(opt.keys);
    else
        w = workload::WorkloadSpec::ycsbW(opt.keys);
    w.zipfTheta = opt.theta;
    return w;
}

/** Parse argv; returns false (after printing a message) on error. */
bool
parseArgs(int argc, char **argv, Options &opt)
{
    auto need_value = [&](int i) {
        if (i + 1 >= argc) {
            std::cerr << "missing value for " << argv[i] << "\n";
            return false;
        }
        return true;
    };

    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        if (flag == "--help" || flag == "-h") {
            usage(std::cout);
            std::exit(0);
        }
        if (flag == "--all-models") {
            opt.allModels = true;
            continue;
        }
        if (!need_value(i))
            return false;
        std::string val = argv[++i];

        if (flag == "--consistency") {
            if (!parseConsistency(val, opt.model.consistency)) {
                std::cerr << "unknown consistency '" << val << "'\n";
                return false;
            }
        } else if (flag == "--persistency") {
            if (!parsePersistency(val, opt.model.persistency)) {
                std::cerr << "unknown persistency '" << val << "'\n";
                return false;
            }
        } else if (flag == "--servers") {
            opt.servers = static_cast<std::uint32_t>(
                std::strtoul(val.c_str(), nullptr, 10));
        } else if (flag == "--clients-per-server") {
            opt.clientsPerServer = static_cast<std::uint32_t>(
                std::strtoul(val.c_str(), nullptr, 10));
        } else if (flag == "--replication") {
            opt.replication = static_cast<std::uint32_t>(
                std::strtoul(val.c_str(), nullptr, 10));
        } else if (flag == "--keys") {
            opt.keys = std::strtoull(val.c_str(), nullptr, 10);
        } else if (flag == "--workload") {
            if (val != "a" && val != "b" && val != "c" && val != "d" &&
                val != "w") {
                std::cerr << "unknown workload '" << val << "'\n";
                return false;
            }
            opt.workload = val;
        } else if (flag == "--theta") {
            opt.theta = std::strtod(val.c_str(), nullptr);
        } else if (flag == "--store") {
            kv::StoreKind k;
            if (!parseStore(val, k)) {
                std::cerr << "unknown store '" << val << "'\n";
                return false;
            }
            opt.store = val;
        } else if (flag == "--rtt-ns") {
            opt.rttNs = std::strtoull(val.c_str(), nullptr, 10);
        } else if (flag == "--bandwidth-gbps") {
            opt.bandwidthGbps = std::strtoull(val.c_str(), nullptr, 10);
        } else if (flag == "--warmup-us") {
            opt.warmupUs = std::strtoull(val.c_str(), nullptr, 10);
        } else if (flag == "--measure-us") {
            opt.measureUs = std::strtoull(val.c_str(), nullptr, 10);
        } else if (flag == "--seed") {
            opt.seed = std::strtoull(val.c_str(), nullptr, 10);
        } else if (flag == "--crash-at-us") {
            opt.crashAtUs = std::strtoull(val.c_str(), nullptr, 10);
        } else if (flag == "--recovery") {
            if (val != "voting" && val != "local" &&
                val != "simulated") {
                std::cerr << "unknown recovery policy '" << val
                          << "'\n";
                return false;
            }
            opt.recovery = val;
        } else if (flag == "--drop-rate") {
            opt.dropRate = std::strtod(val.c_str(), nullptr);
        } else if (flag == "--dup-rate") {
            opt.dupRate = std::strtod(val.c_str(), nullptr);
        } else if (flag == "--delay-rate") {
            opt.delayRate = std::strtod(val.c_str(), nullptr);
        } else if (flag == "--delay-ns") {
            opt.delayNs = std::strtoull(val.c_str(), nullptr, 10);
        } else if (flag == "--reorder-rate") {
            opt.reorderRate = std::strtod(val.c_str(), nullptr);
        } else if (flag == "--fault-seed") {
            opt.faultSeed = std::strtoull(val.c_str(), nullptr, 10);
        } else if (flag == "--isolate") {
            char *colon = nullptr;
            auto node = std::strtoul(val.c_str(), &colon, 10);
            if (!colon || *colon != ':') {
                std::cerr << "--isolate wants N:USEC\n";
                return false;
            }
            auto from = std::strtoull(colon + 1, nullptr, 10);
            opt.isolate.emplace_back(
                static_cast<std::uint32_t>(node), from);
        } else if (flag == "--partition-us") {
            char *colon = nullptr;
            auto from = std::strtoull(val.c_str(), &colon, 10);
            if (!colon || *colon != ':') {
                std::cerr << "--partition-us wants FROM:UNTIL\n";
                return false;
            }
            auto until = std::strtoull(colon + 1, nullptr, 10);
            opt.partitionUs = {from, until};
        } else if (flag == "--trace-file") {
            opt.traceFile = val;
        } else if (flag == "--format") {
            if (val == "csv") {
                opt.csv = true;
            } else if (val != "table") {
                std::cerr << "unknown format '" << val << "'\n";
                return false;
            }
        } else {
            std::cerr << "unknown flag '" << flag << "' (see --help)\n";
            return false;
        }
    }
    return true;
}

cluster::ClusterConfig
makeConfig(const Options &opt, core::DdpModel model)
{
    cluster::ClusterConfig cfg;
    cfg.model = model;
    cfg.numServers = opt.servers;
    cfg.clientsPerServer = opt.clientsPerServer;
    cfg.replicationFactor = opt.replication;
    cfg.keyCount = opt.keys;
    cfg.workload = makeWorkload(opt);
    cfg.network.roundTrip = opt.rttNs * sim::kNanosecond;
    cfg.network.bandwidthBps = opt.bandwidthGbps * 1000ull * 1000 * 1000;
    cfg.warmup = opt.warmupUs * sim::kMicrosecond;
    cfg.measure = opt.measureUs * sim::kMicrosecond;
    cfg.seed = opt.seed;
    kv::StoreKind kind;
    parseStore(opt.store, kind);
    cfg.node.storeKind = kind;

    if (opt.recovery == "local")
        cfg.recovery = cluster::RecoveryPolicy::LocalOnly;
    else if (opt.recovery == "simulated")
        cfg.recovery = cluster::RecoveryPolicy::SimulatedVoting;
    else
        cfg.recovery = cluster::RecoveryPolicy::Voting;

    cfg.faults.seed = opt.faultSeed;
    cfg.faults.allLinks.dropRate = opt.dropRate;
    cfg.faults.allLinks.duplicateRate = opt.dupRate;
    cfg.faults.allLinks.delayRate = opt.delayRate;
    if (opt.delayNs > 0) {
        cfg.faults.allLinks.delayMin = opt.delayNs * sim::kNanosecond;
        cfg.faults.allLinks.delayMax = opt.delayNs * sim::kNanosecond;
    }
    cfg.faults.allLinks.reorderRate = opt.reorderRate;
    for (auto [node, from_us] : opt.isolate) {
        if (node >= opt.servers) {
            std::cerr << "error: --isolate node " << node
                      << " out of range\n";
            std::exit(1);
        }
        cfg.faults.outages.push_back(
            net::NodeOutage{node, from_us * sim::kMicrosecond,
                            sim::kTickNever});
    }
    if (opt.partitionUs) {
        net::PartitionWindow w;
        w.from = opt.partitionUs->first * sim::kMicrosecond;
        w.until = opt.partitionUs->second * sim::kMicrosecond;
        for (std::uint32_t n = 0; n < opt.servers / 2; ++n)
            w.groupA.push_back(n);
        cfg.faults.partitions.push_back(std::move(w));
    }
    return cfg;
}

struct Row
{
    core::DdpModel model;
    cluster::RunResult result;
    std::uint64_t lost = 0;
};

/** "0;2;4" — semicolon-joined so the list stays one CSV field. */
std::string
joinNodes(const std::vector<net::NodeId> &nodes)
{
    std::string out;
    for (net::NodeId n : nodes) {
        if (!out.empty())
            out += ';';
        out += std::to_string(n);
    }
    return out;
}

Row
runExperiment(const Options &opt, core::DdpModel model,
              const workload::Trace *trace)
{
    if (opt.replication != 0 &&
        (model.consistency == core::Consistency::Causal ||
         model.consistency == core::Consistency::Transactional)) {
        std::cerr << "error: " << core::modelName(model)
                  << " requires full replication (--replication 0)\n";
        std::exit(1);
    }
    cluster::ClusterConfig cfg = makeConfig(opt, model);
    cfg.trace = trace;
    cluster::Cluster c(cfg);
    core::PropertyChecker checker;
    if (opt.crashAtUs) {
        c.setChecker(&checker);
        c.scheduleCrash(*opt.crashAtUs * sim::kMicrosecond);
    }
    Row row;
    row.model = model;
    row.result = c.run();
    row.lost = row.result.lostAckedWriteKeys;
    return row;
}

void
printRows(const Options &opt, const std::vector<Row> &rows)
{
    if (opt.csv) {
        std::cout << "consistency,persistency,throughput_mreqs,"
                     "mean_read_ns,mean_write_ns,p95_read_ns,"
                     "p95_write_ns,messages,persists,xact_aborts,"
                     "lost_acked_keys,net_dropped,net_retransmits,"
                     "net_rto_timeouts,net_give_ups,unreachable\n";
        for (const Row &r : rows) {
            std::cout << core::consistencyName(r.model.consistency)
                      << ','
                      << core::persistencyName(r.model.persistency)
                      << ',' << r.result.throughput / 1e6 << ','
                      << r.result.meanReadNs << ','
                      << r.result.meanWriteNs << ','
                      << r.result.p95ReadNs << ','
                      << r.result.p95WriteNs << ','
                      << r.result.messages << ','
                      << r.result.persistsIssued << ','
                      << r.result.xactAborted << ',' << r.lost << ','
                      << r.result.netDropped << ','
                      << r.result.netRetransmits << ','
                      << r.result.netRtoTimeouts << ','
                      << r.result.netGiveUps << ','
                      << joinNodes(r.result.unreachableNodes) << '\n';
        }
        return;
    }

    bool faulty = false;
    for (const Row &r : rows) {
        if (r.result.netDropped > 0 || r.result.netRetransmits > 0 ||
            r.result.netPartitionDrops > 0 || r.result.degraded())
            faulty = true;
    }

    stats::Table t({"Model", "Mreq/s", "Read(ns)", "Write(ns)",
                    "p95R(ns)", "p95W(ns)", "LostKeys"});
    for (const Row &r : rows) {
        t.addRow({core::modelName(r.model),
                  stats::Table::num(r.result.throughput / 1e6, 2),
                  stats::Table::num(r.result.meanReadNs, 0),
                  stats::Table::num(r.result.meanWriteNs, 0),
                  stats::Table::num(r.result.p95ReadNs, 0),
                  stats::Table::num(r.result.p95WriteNs, 0),
                  opt.crashAtUs ? std::to_string(r.lost) : "-"});
    }
    t.print(std::cout);

    if (!faulty)
        return;

    stats::Table ft({"Model", "Dropped", "Retrans", "RTOs", "GiveUps",
                     "Cut", "RecTmo", "Unreachable"});
    for (const Row &r : rows) {
        ft.addRow({core::modelName(r.model),
                   std::to_string(r.result.netDropped),
                   std::to_string(r.result.netRetransmits),
                   std::to_string(r.result.netRtoTimeouts),
                   std::to_string(r.result.netGiveUps),
                   std::to_string(r.result.netPartitionDrops),
                   std::to_string(r.result.recoveryTimeouts),
                   r.result.unreachableNodes.empty()
                       ? "-"
                       : joinNodes(r.result.unreachableNodes)});
    }
    std::cout << "\nfault / reliability summary:\n";
    ft.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt))
        return 1;

    workload::Trace trace;
    const workload::Trace *trace_ptr = nullptr;
    if (!opt.traceFile.empty()) {
        std::ifstream in(opt.traceFile);
        if (!in || !workload::Trace::load(in, trace) || trace.empty()) {
            std::cerr << "cannot load trace from '" << opt.traceFile
                      << "'\n";
            return 1;
        }
        trace_ptr = &trace;
        std::cerr << "replaying " << trace.size() << " traced ops\n";
    }

    std::vector<Row> rows;
    if (opt.allModels) {
        for (const core::DdpModel &m : core::allModels()) {
            if (opt.replication != 0 &&
                (m.consistency == core::Consistency::Causal ||
                 m.consistency == core::Consistency::Transactional)) {
                std::cerr << "skipping " << core::modelName(m)
                          << ": partial replication unsupported\n";
                continue;
            }
            std::cerr << "running " << core::modelName(m) << "...\n";
            rows.push_back(runExperiment(opt, m, trace_ptr));
        }
    } else {
        rows.push_back(runExperiment(opt, opt.model, trace_ptr));
    }
    printRows(opt, rows);
    return 0;
}
