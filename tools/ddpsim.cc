/**
 * @file
 * ddpsim — command-line experiment driver.
 *
 * Runs one DDP-model experiment (or a sweep over all 25 models) on the
 * simulated cluster and prints the measured metrics as a table or CSV.
 *
 *   ddpsim --consistency causal --persistency synchronous
 *   ddpsim --all-models --format csv > results.csv
 *   ddpsim --all-models --jobs 8 --format json > results.json
 *   ddpsim --workload w --servers 3 --rtt-ns 500 --crash-at-us 2000
 *
 * Sweeps (--all-models, --torture) fan their independent runs across
 * --jobs worker threads; stdout is byte-identical for any job count
 * (see DESIGN.md, "Parallel sweeps stay deterministic").
 *
 * Run `ddpsim --help` for the full flag list.
 */

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "cluster/cluster.hh"
#include "sim/random.hh"
#include "sim/sweep_runner.hh"
#include "stats/table.hh"

using namespace ddp;

namespace {

struct Options
{
    core::DdpModel model{core::Consistency::Causal,
                         core::Persistency::Synchronous};
    bool allModels = false;
    std::uint32_t servers = 5;
    std::uint32_t clientsPerServer = 20;
    std::uint32_t replication = 0;
    std::uint64_t keys = 100000;
    std::string workload = "a";
    double theta = 0.99;
    std::string store = "hash";
    std::uint64_t rttNs = 1000;
    std::uint64_t bandwidthGbps = 200;
    std::uint64_t warmupUs = 1000;
    std::uint64_t measureUs = 3000;
    std::uint64_t seed = 42;
    std::optional<std::uint64_t> crashAtUs;
    std::string traceFile;
    enum class Format { Table, Csv, Json };
    Format format = Format::Table;
    /** Chrome-trace (Perfetto) timeline output path; empty = off. */
    std::string traceOut;
    /** Sweep worker threads; 0 = one per hardware thread. Sweeps are
     *  byte-identical on stdout for any value (DESIGN.md). */
    unsigned jobs = 1;

    // Fault injection (tentpole: chaos experiments from the CLI).
    double dropRate = 0.0;
    double dupRate = 0.0;
    double delayRate = 0.0;
    std::uint64_t delayNs = 0; // 0 = FaultPlan default range
    double reorderRate = 0.0;
    std::uint64_t faultSeed = 0; // 0 = derive from --seed
    /** node:from_us pairs — node is unreachable from from_us on. */
    std::vector<std::pair<std::uint32_t, std::uint64_t>> isolate;
    /** from_us:until_us — first half of servers vs the rest. */
    std::optional<std::pair<std::uint64_t, std::uint64_t>> partitionUs;
    std::string recovery = "voting";

    // Instant recovery + downtime-vs-instant benchmark.
    /** Throughput-timeline bucket width; 0 = timeline off. */
    std::uint64_t timelineBucketUs = 0;
    /** Recovery SLO as a fraction of pre-crash throughput, in (0,1]. */
    double recoverySloFrac = 0.9;
    /** Keys per instant-recovery backfill round; 0 = default. */
    std::uint32_t backfillBatch = 0;
    /** Pause between backfill rounds; 0 = default. */
    std::uint64_t backfillIntervalUs = 0;

    // Crash-point torture + partial crash/restart (robustness PR).
    /** Nodes a partial crash takes down (with --crash-at-us or
     *  --torture); empty optional = full-system crash. */
    std::optional<std::vector<net::NodeId>> crashNodes;
    /** Downtime before crashed nodes restart; 0 = instant rebuild. */
    std::uint64_t restartAfterUs = 0;
    /** Client request timeout; 0 = auto (enabled only when a staged
     *  restart needs failover). */
    std::uint64_t reqTimeoutUs = 0;
    /** 64B lines per value; 0 = auto (4 under --torture, else 1). */
    std::uint32_t valueLines = 0;
    /** Per-value commit records (off = torn-install ablation). */
    bool commitRecords = true;
    std::uint32_t xactMaxAttempts = 64;
    /** Crash points per model; 0 = torture mode off. */
    std::uint32_t torturePoints = 0;
    /** Seeded-random crash points instead of evenly spaced ones. */
    bool tortureRandom = false;
};

void
usage(std::ostream &os)
{
    os << "ddpsim — Distributed Data Persistency experiment driver\n\n"
          "model selection:\n"
          "  --consistency C     linearizable | read-enforced |\n"
          "                      transactional | causal | eventual\n"
          "  --persistency P     strict | synchronous | read-enforced |\n"
          "                      scope | eventual\n"
          "  --all-models        sweep all 25 <C, P> combinations\n\n"
          "cluster:\n"
          "  --servers N         servers (default 5)\n"
          "  --clients-per-server N   (default 20)\n"
          "  --replication R     replicas per key, 0 = all (default 0)\n"
          "  --store S           hash | skiplist | btree | bplustree |\n"
          "                      slablru (default hash)\n\n"
          "workload:\n"
          "  --workload W        a | b | c | d | w (default a)\n"
          "  --keys N            key-space size (default 100000)\n"
          "  --theta T           zipfian skew (default 0.99)\n"
          "  --trace-file PATH   replay a recorded op trace instead\n"
          "                      (format: one 'R <key>' or 'W <key>'\n"
          "                      per line)\n\n"
          "network:\n"
          "  --rtt-ns N          NIC-to-NIC round trip (default 1000)\n"
          "  --bandwidth-gbps N  NIC line rate (default 200)\n\n"
          "run control:\n"
          "  --warmup-us N       warmup window (default 1000)\n"
          "  --measure-us N      measurement window (default 3000)\n"
          "  --seed N            RNG seed (default 42)\n"
          "  --crash-at-us N     inject a full-system crash at N us\n"
          "                      after simulation start\n"
          "  --crash-nodes LIST  comma-separated node ids: crash only\n"
          "                      these (with --crash-at-us or\n"
          "                      --torture) instead of the whole\n"
          "                      cluster\n"
          "  --restart-after-us N  downtime before crashed nodes\n"
          "                      restart and re-join; 0 = instant\n"
          "                      rebuild (default 0; torture with\n"
          "                      --crash-nodes defaults to 200)\n"
          "  --req-timeout-us N  client request timeout driving\n"
          "                      coordinator failover (default: auto,\n"
          "                      50 when a staged restart needs it)\n"
          "  --value-lines N     64B lines per stored value (default:\n"
          "                      4 under --torture, else 1)\n"
          "  --no-commit-records torn-persist ablation: recovery\n"
          "                      trusts the newest version tag and may\n"
          "                      install torn values\n"
          "  --xact-max-attempts N  attempts per transaction batch\n"
          "                      before the client abandons it\n"
          "                      (default 64)\n"
          "  --recovery R        voting | local | simulated | instant —\n"
          "                      post-crash recovery policy\n"
          "                      (default voting). instant re-joins\n"
          "                      after only an index scan and faults\n"
          "                      cold keys in on demand; requires\n"
          "                      commit records\n"
          "  --timeline-bucket-us N  record a throughput-over-time\n"
          "                      series with N-us buckets (JSON output\n"
          "                      gains timeline_ops_per_sec and\n"
          "                      recovery_time_to_slo_us; downtime\n"
          "                      shows as explicit zero samples);\n"
          "                      0 = off (default)\n"
          "  --recovery-slo-frac F  fraction of the pre-crash\n"
          "                      throughput baseline that counts as\n"
          "                      recovered, in (0, 1] (default 0.9)\n"
          "  --backfill-batch N  keys per instant-recovery background\n"
          "                      backfill round (default 64)\n"
          "  --backfill-interval-us N  pause between backfill rounds\n"
          "                      (default 2)\n\n"
          "torture sweep:\n"
          "  --torture N         crash-point torture: re-run the seeded\n"
          "                      workload crashing at N points per\n"
          "                      model, audit durability after every\n"
          "                      recovery, exit non-zero on any\n"
          "                      taxonomy violation\n"
          "  --torture-random    seeded-random crash points instead of\n"
          "                      evenly spaced ones\n\n"
          "fault injection (enables reliable delivery):\n"
          "  --drop-rate R       per-message drop probability\n"
          "  --dup-rate R        per-message duplication probability\n"
          "  --delay-rate R      per-message extra-delay probability\n"
          "  --delay-ns N        extra delay when one fires\n"
          "                      (default 1000-10000 random)\n"
          "  --reorder-rate R    per-message reorder probability\n"
          "  --isolate N:USEC    sever all links of node N from USEC\n"
          "                      on (repeatable)\n"
          "  --partition-us A:B  partition first half of the servers\n"
          "                      from the rest during [A, B) us\n"
          "  --fault-seed N      chaos RNG seed (default: derive\n"
          "                      from --seed)\n\n"
          "output:\n"
          "  --format F          table | csv | json (default table)\n"
          "  --trace-out PATH    write a Chrome-trace-event JSON\n"
          "                      timeline (load at ui.perfetto.dev);\n"
          "                      one pid block per run, byte-identical\n"
          "                      for any --jobs count. Not available\n"
          "                      with --torture.\n"
          "  --jobs N            worker threads for --all-models /\n"
          "                      --torture sweeps; 0 = one per hardware\n"
          "                      thread (default 1). Output is\n"
          "                      byte-identical for any job count.\n"
          "  --help              this text\n";
}

// --- Strict numeric parsing -----------------------------------------------
// Every flag value must consume the whole string; garbage, signs,
// overflow and out-of-range probabilities are rejected instead of being
// silently truncated to whatever strtoul makes of them.

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty() || s[0] == '-' || s[0] == '+' ||
        std::isspace(static_cast<unsigned char>(s[0])))
        return false;
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (errno != 0 || end != s.c_str() + s.size())
        return false;
    out = v;
    return true;
}

bool
parseU32(const std::string &s, std::uint32_t &out)
{
    std::uint64_t v;
    if (!parseU64(s, v) || v > UINT32_MAX)
        return false;
    out = static_cast<std::uint32_t>(v);
    return true;
}

bool
parseDouble(const std::string &s, double &out)
{
    if (s.empty() || std::isspace(static_cast<unsigned char>(s[0])))
        return false;
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (errno != 0 || end != s.c_str() + s.size() || !std::isfinite(v))
        return false;
    out = v;
    return true;
}

/** A probability: a finite double in [0, 1]. */
bool
parseProb(const std::string &s, double &out)
{
    double v;
    if (!parseDouble(s, v) || v < 0.0 || v > 1.0)
        return false;
    out = v;
    return true;
}

/** Comma-separated node-id list, e.g. "1,3". */
bool
parseNodeList(const std::string &s, std::vector<net::NodeId> &out)
{
    out.clear();
    std::size_t pos = 0;
    while (pos < s.size()) {
        std::size_t comma = s.find(',', pos);
        std::size_t len =
            (comma == std::string::npos ? s.size() : comma) - pos;
        std::uint32_t id;
        if (!parseU32(s.substr(pos, len), id))
            return false;
        if (std::find(out.begin(), out.end(), id) == out.end())
            out.push_back(id);
        pos = comma == std::string::npos ? s.size() : comma + 1;
    }
    return !out.empty();
}

bool
parseConsistency(const std::string &s, core::Consistency &out)
{
    if (s == "linearizable") out = core::Consistency::Linearizable;
    else if (s == "read-enforced") out = core::Consistency::ReadEnforced;
    else if (s == "transactional") out = core::Consistency::Transactional;
    else if (s == "causal") out = core::Consistency::Causal;
    else if (s == "eventual") out = core::Consistency::Eventual;
    else return false;
    return true;
}

bool
parsePersistency(const std::string &s, core::Persistency &out)
{
    if (s == "strict") out = core::Persistency::Strict;
    else if (s == "synchronous") out = core::Persistency::Synchronous;
    else if (s == "read-enforced") out = core::Persistency::ReadEnforced;
    else if (s == "scope") out = core::Persistency::Scope;
    else if (s == "eventual") out = core::Persistency::Eventual;
    else return false;
    return true;
}

bool
parseStore(const std::string &s, kv::StoreKind &out)
{
    if (s == "hash") out = kv::StoreKind::HashTable;
    else if (s == "skiplist") out = kv::StoreKind::SkipList;
    else if (s == "btree") out = kv::StoreKind::BTree;
    else if (s == "bplustree") out = kv::StoreKind::BPlusTree;
    else if (s == "slablru") out = kv::StoreKind::SlabLru;
    else return false;
    return true;
}

workload::WorkloadSpec
makeWorkload(const Options &opt)
{
    workload::WorkloadSpec w;
    if (opt.workload == "a") w = workload::WorkloadSpec::ycsbA(opt.keys);
    else if (opt.workload == "b")
        w = workload::WorkloadSpec::ycsbB(opt.keys);
    else if (opt.workload == "c")
        w = workload::WorkloadSpec::ycsbC(opt.keys);
    else if (opt.workload == "d")
        w = workload::WorkloadSpec::ycsbD(opt.keys);
    else
        w = workload::WorkloadSpec::ycsbW(opt.keys);
    w.zipfTheta = opt.theta;
    return w;
}

/** Parse argv; returns false (after printing a message) on error. */
bool
parseArgs(int argc, char **argv, Options &opt)
{
    auto need_value = [&](int i) {
        if (i + 1 >= argc) {
            std::cerr << "missing value for " << argv[i] << "\n";
            return false;
        }
        return true;
    };

    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        if (flag == "--help" || flag == "-h") {
            usage(std::cout);
            std::exit(0);
        }
        if (flag == "--all-models") {
            opt.allModels = true;
            continue;
        }
        if (flag == "--torture-random") {
            opt.tortureRandom = true;
            continue;
        }
        if (flag == "--no-commit-records") {
            opt.commitRecords = false;
            continue;
        }
        if (!need_value(i))
            return false;
        std::string val = argv[++i];

        auto bad = [&](const char *want) {
            std::cerr << "invalid value '" << val << "' for " << flag
                      << " (want " << want << ")\n";
            return false;
        };

        if (flag == "--consistency") {
            if (!parseConsistency(val, opt.model.consistency)) {
                std::cerr << "unknown consistency '" << val << "'\n";
                return false;
            }
        } else if (flag == "--persistency") {
            if (!parsePersistency(val, opt.model.persistency)) {
                std::cerr << "unknown persistency '" << val << "'\n";
                return false;
            }
        } else if (flag == "--servers") {
            if (!parseU32(val, opt.servers) || opt.servers < 2)
                return bad("integer >= 2");
        } else if (flag == "--clients-per-server") {
            if (!parseU32(val, opt.clientsPerServer) ||
                opt.clientsPerServer == 0)
                return bad("positive integer");
        } else if (flag == "--replication") {
            if (!parseU32(val, opt.replication))
                return bad("unsigned integer");
        } else if (flag == "--keys") {
            if (!parseU64(val, opt.keys) || opt.keys == 0)
                return bad("positive integer");
        } else if (flag == "--workload") {
            if (val != "a" && val != "b" && val != "c" && val != "d" &&
                val != "w") {
                std::cerr << "unknown workload '" << val << "'\n";
                return false;
            }
            opt.workload = val;
        } else if (flag == "--theta") {
            if (!parseDouble(val, opt.theta) || opt.theta < 0.0)
                return bad("non-negative number");
        } else if (flag == "--store") {
            kv::StoreKind k;
            if (!parseStore(val, k)) {
                std::cerr << "unknown store '" << val << "'\n";
                return false;
            }
            opt.store = val;
        } else if (flag == "--rtt-ns") {
            if (!parseU64(val, opt.rttNs))
                return bad("unsigned integer");
        } else if (flag == "--bandwidth-gbps") {
            if (!parseU64(val, opt.bandwidthGbps) ||
                opt.bandwidthGbps == 0)
                return bad("positive integer");
        } else if (flag == "--warmup-us") {
            if (!parseU64(val, opt.warmupUs))
                return bad("unsigned integer");
        } else if (flag == "--measure-us") {
            if (!parseU64(val, opt.measureUs) || opt.measureUs == 0)
                return bad("positive integer");
        } else if (flag == "--seed") {
            if (!parseU64(val, opt.seed))
                return bad("unsigned integer");
        } else if (flag == "--crash-at-us") {
            std::uint64_t at;
            if (!parseU64(val, at))
                return bad("unsigned integer");
            opt.crashAtUs = at;
        } else if (flag == "--crash-nodes") {
            std::vector<net::NodeId> nodes;
            if (!parseNodeList(val, nodes))
                return bad("comma-separated node ids, e.g. 1,3");
            opt.crashNodes = std::move(nodes);
        } else if (flag == "--restart-after-us") {
            if (!parseU64(val, opt.restartAfterUs))
                return bad("unsigned integer");
        } else if (flag == "--req-timeout-us") {
            if (!parseU64(val, opt.reqTimeoutUs))
                return bad("unsigned integer");
        } else if (flag == "--value-lines") {
            if (!parseU32(val, opt.valueLines) || opt.valueLines == 0 ||
                opt.valueLines > 64)
                return bad("integer in [1, 64]");
        } else if (flag == "--xact-max-attempts") {
            if (!parseU32(val, opt.xactMaxAttempts) ||
                opt.xactMaxAttempts == 0)
                return bad("positive integer");
        } else if (flag == "--torture") {
            if (!parseU32(val, opt.torturePoints) ||
                opt.torturePoints == 0)
                return bad("positive integer");
        } else if (flag == "--recovery") {
            if (val != "voting" && val != "local" &&
                val != "simulated" && val != "instant") {
                std::cerr << "unknown recovery policy '" << val
                          << "' (want voting | local | simulated | "
                             "instant)\n";
                return false;
            }
            opt.recovery = val;
        } else if (flag == "--timeline-bucket-us") {
            if (!parseU64(val, opt.timelineBucketUs) ||
                opt.timelineBucketUs == 0)
                return bad("positive integer");
        } else if (flag == "--recovery-slo-frac") {
            if (!parseDouble(val, opt.recoverySloFrac) ||
                opt.recoverySloFrac <= 0.0 || opt.recoverySloFrac > 1.0)
                return bad("fraction in (0, 1]");
        } else if (flag == "--backfill-batch") {
            if (!parseU32(val, opt.backfillBatch) ||
                opt.backfillBatch == 0)
                return bad("positive integer");
        } else if (flag == "--backfill-interval-us") {
            if (!parseU64(val, opt.backfillIntervalUs) ||
                opt.backfillIntervalUs == 0)
                return bad("positive integer");
        } else if (flag == "--drop-rate") {
            if (!parseProb(val, opt.dropRate))
                return bad("probability in [0, 1]");
        } else if (flag == "--dup-rate") {
            if (!parseProb(val, opt.dupRate))
                return bad("probability in [0, 1]");
        } else if (flag == "--delay-rate") {
            if (!parseProb(val, opt.delayRate))
                return bad("probability in [0, 1]");
        } else if (flag == "--delay-ns") {
            if (!parseU64(val, opt.delayNs))
                return bad("unsigned integer");
        } else if (flag == "--reorder-rate") {
            if (!parseProb(val, opt.reorderRate))
                return bad("probability in [0, 1]");
        } else if (flag == "--fault-seed") {
            if (!parseU64(val, opt.faultSeed))
                return bad("unsigned integer");
        } else if (flag == "--isolate") {
            std::size_t colon = val.find(':');
            std::uint32_t node;
            std::uint64_t from;
            if (colon == std::string::npos ||
                !parseU32(val.substr(0, colon), node) ||
                !parseU64(val.substr(colon + 1), from))
                return bad("N:USEC");
            opt.isolate.emplace_back(node, from);
        } else if (flag == "--partition-us") {
            std::size_t colon = val.find(':');
            std::uint64_t from, until;
            if (colon == std::string::npos ||
                !parseU64(val.substr(0, colon), from) ||
                !parseU64(val.substr(colon + 1), until) || until < from)
                return bad("FROM:UNTIL with FROM <= UNTIL");
            opt.partitionUs = {from, until};
        } else if (flag == "--trace-file") {
            opt.traceFile = val;
        } else if (flag == "--trace-out") {
            if (val.empty())
                return bad("output path");
            opt.traceOut = val;
        } else if (flag == "--format") {
            if (val == "csv") {
                opt.format = Options::Format::Csv;
            } else if (val == "json") {
                opt.format = Options::Format::Json;
            } else if (val == "table") {
                opt.format = Options::Format::Table;
            } else {
                std::cerr << "unknown format '" << val << "'\n";
                return false;
            }
        } else if (flag == "--jobs") {
            std::uint32_t jobs;
            if (!parseU32(val, jobs))
                return bad("unsigned integer (0 = auto)");
            opt.jobs = jobs == 0 ? sim::ThreadPool::hardwareThreads()
                                 : jobs;
        } else {
            std::cerr << "unknown flag '" << flag << "' (see --help)\n";
            return false;
        }
    }

    for (auto [node, from_us] : opt.isolate) {
        (void)from_us;
        if (node >= opt.servers) {
            std::cerr << "--isolate node " << node
                      << " out of range (servers: " << opt.servers
                      << ")\n";
            return false;
        }
    }
    if (opt.crashNodes) {
        if (opt.crashNodes->size() >= opt.servers) {
            std::cerr << "--crash-nodes must leave at least one "
                         "survivor (" << opt.servers << " servers)\n";
            return false;
        }
        for (net::NodeId n : *opt.crashNodes) {
            if (n >= opt.servers) {
                std::cerr << "--crash-nodes id " << n
                          << " out of range (servers: " << opt.servers
                          << ")\n";
                return false;
            }
        }
        if (!opt.crashAtUs && opt.torturePoints == 0) {
            std::cerr << "--crash-nodes needs --crash-at-us or "
                         "--torture to pick the crash point\n";
            return false;
        }
    }
    if (opt.torturePoints > 0 && !opt.traceOut.empty()) {
        std::cerr << "--trace-out is not available with --torture "
                     "(hundreds of runs make one merged timeline "
                     "useless); trace a single crash run with "
                     "--crash-at-us instead\n";
        return false;
    }
    if (opt.torturePoints > 0 && opt.crashAtUs) {
        std::cerr << "--torture picks its own crash points; drop "
                     "--crash-at-us\n";
        return false;
    }
    if (opt.crashAtUs &&
        *opt.crashAtUs >= opt.warmupUs + opt.measureUs) {
        std::cerr << "--crash-at-us lies past the end of the run ("
                  << opt.warmupUs + opt.measureUs << " us)\n";
        return false;
    }
    if (opt.recovery == "instant" && !opt.commitRecords) {
        std::cerr << "--recovery=instant requires commit records: "
                     "on-demand fault-in must tell torn from committed "
                     "values by checksum, which the --no-commit-records "
                     "ablation removes\n";
        return false;
    }
    return true;
}

cluster::ClusterConfig
makeConfig(const Options &opt, core::DdpModel model)
{
    cluster::ClusterConfig cfg;
    cfg.model = model;
    cfg.numServers = opt.servers;
    cfg.clientsPerServer = opt.clientsPerServer;
    cfg.replicationFactor = opt.replication;
    cfg.keyCount = opt.keys;
    cfg.workload = makeWorkload(opt);
    cfg.network.roundTrip = opt.rttNs * sim::kNanosecond;
    cfg.network.bandwidthBps = opt.bandwidthGbps * 1000ull * 1000 * 1000;
    cfg.warmup = opt.warmupUs * sim::kMicrosecond;
    cfg.measure = opt.measureUs * sim::kMicrosecond;
    cfg.seed = opt.seed;
    kv::StoreKind kind;
    parseStore(opt.store, kind);
    cfg.node.storeKind = kind;
    cfg.xactMaxAttempts = opt.xactMaxAttempts;

    // Multi-line values: torture runs default to 4-line (256B) values
    // so crashes can land mid-persist and exercise the torn-write
    // machinery; plain runs keep the single-line fast path.
    std::uint32_t value_lines =
        opt.valueLines != 0 ? opt.valueLines
                            : (opt.torturePoints > 0 ? 4 : 1);
    cfg.node.valueLines = value_lines;
    if (value_lines > 1)
        cfg.node.persistCoalescing = true;
    cfg.node.commitRecords = opt.commitRecords;

    // A staged partial crash parks the victims' clients on a dead
    // coordinator; only the request timeout gets them failing over, so
    // it defaults on whenever a restart is in play.
    std::uint64_t timeout_us = opt.reqTimeoutUs;
    bool staged = opt.crashNodes &&
                  (opt.restartAfterUs > 0 || opt.torturePoints > 0);
    if (timeout_us == 0 && staged)
        timeout_us = 50;
    cfg.clientRequestTimeout = timeout_us * sim::kMicrosecond;

    if (opt.recovery == "local")
        cfg.recovery = cluster::RecoveryPolicy::LocalOnly;
    else if (opt.recovery == "simulated")
        cfg.recovery = cluster::RecoveryPolicy::SimulatedVoting;
    else if (opt.recovery == "instant")
        cfg.recovery = cluster::RecoveryPolicy::Instant;
    else
        cfg.recovery = cluster::RecoveryPolicy::Voting;

    cfg.timelineBucket = opt.timelineBucketUs * sim::kMicrosecond;
    cfg.recoverySloFrac = opt.recoverySloFrac;
    if (opt.backfillBatch > 0)
        cfg.node.instantBackfillBatch = opt.backfillBatch;
    if (opt.backfillIntervalUs > 0)
        cfg.node.instantBackfillInterval =
            opt.backfillIntervalUs * sim::kMicrosecond;

    cfg.faults.seed = opt.faultSeed;
    cfg.faults.allLinks.dropRate = opt.dropRate;
    cfg.faults.allLinks.duplicateRate = opt.dupRate;
    cfg.faults.allLinks.delayRate = opt.delayRate;
    if (opt.delayNs > 0) {
        cfg.faults.allLinks.delayMin = opt.delayNs * sim::kNanosecond;
        cfg.faults.allLinks.delayMax = opt.delayNs * sim::kNanosecond;
    }
    cfg.faults.allLinks.reorderRate = opt.reorderRate;
    for (auto [node, from_us] : opt.isolate) {
        // node range validated in parseArgs — makeConfig runs on sweep
        // worker threads and must never exit the process.
        cfg.faults.outages.push_back(
            net::NodeOutage{node, from_us * sim::kMicrosecond,
                            sim::kTickNever});
    }
    if (opt.partitionUs) {
        net::PartitionWindow w;
        w.from = opt.partitionUs->first * sim::kMicrosecond;
        w.until = opt.partitionUs->second * sim::kMicrosecond;
        for (std::uint32_t n = 0; n < opt.servers / 2; ++n)
            w.groupA.push_back(n);
        cfg.faults.partitions.push_back(std::move(w));
    }
    return cfg;
}

struct Row
{
    core::DdpModel model;
    cluster::RunResult result;
    std::uint64_t lost = 0;
    /** Serialized trace-event fragment (--trace-out only). */
    std::string traceJson;
    std::uint64_t traceDropped = 0;
};

/** "0;2;4" — semicolon-joined so the list stays one CSV field. */
std::string
joinNodes(const std::vector<net::NodeId> &nodes)
{
    std::string out;
    for (net::NodeId n : nodes) {
        if (!out.empty())
            out += ';';
        out += std::to_string(n);
    }
    return out;
}

Row
runExperiment(const Options &opt, core::DdpModel model,
              const workload::Trace *trace, std::size_t run_idx)
{
    if (opt.replication != 0 &&
        (model.consistency == core::Consistency::Causal ||
         model.consistency == core::Consistency::Transactional)) {
        std::cerr << "error: " << core::modelName(model)
                  << " requires full replication (--replication 0)\n";
        std::exit(1);
    }
    cluster::ClusterConfig cfg = makeConfig(opt, model);
    cfg.trace = trace;
    cluster::Cluster c(cfg);

    // Per-run recorder with a disjoint pid block: run N's tracks are
    // pids [N*1000, N*1000+servers]. Fragments are serialized here on
    // the worker and merged in model order by main(), so the file is
    // byte-identical for any --jobs count.
    std::optional<sim::TraceRecorder> rec;
    if (!opt.traceOut.empty()) {
        rec.emplace(static_cast<std::uint32_t>(run_idx) * 1000);
        c.setTrace(&*rec);
    }

    core::PropertyChecker checker;
    if (opt.crashAtUs) {
        c.setChecker(&checker);
        sim::Tick at = *opt.crashAtUs * sim::kMicrosecond;
        if (opt.crashNodes) {
            if (opt.restartAfterUs > 0)
                c.schedulePartialCrash(
                    at, *opt.crashNodes,
                    opt.restartAfterUs * sim::kMicrosecond);
            else
                c.schedulePartialCrash(at, *opt.crashNodes);
        } else {
            c.scheduleCrash(at);
        }
    }
    Row row;
    row.model = model;
    row.result = c.run();
    row.lost = row.result.lostAckedWriteKeys;
    if (rec) {
        row.traceJson = rec->serialize();
        row.traceDropped = rec->dropped();
    }
    return row;
}

void
printRows(const Options &opt, const std::vector<Row> &rows)
{
    if (opt.format == Options::Format::Json) {
        bench::JsonArrayWriter w(std::cout);
        for (const Row &r : rows) {
            w.beginRecord();
            w.field("schema", "ddp-bench-v1");
            w.field("bench", "ddpsim");
            bench::jsonPerfFields(w, r.model, opt.seed, r.result);
            w.field("recovery", opt.recovery);
            w.field("lost_acked_keys", r.lost);
            w.field("lost_acked_writes", r.result.lostAckedWrites);
            w.field("xact_aborts", r.result.xactAborted);
            w.field("net_dropped", r.result.netDropped);
            w.field("net_retransmits", r.result.netRetransmits);
            w.field("net_give_ups", r.result.netGiveUps);
            w.endRecord();
        }
        w.finish();
        return;
    }

    if (opt.format == Options::Format::Csv) {
        std::cout << "consistency,persistency,throughput_mreqs,"
                     "mean_read_ns,mean_write_ns,p95_read_ns,"
                     "p95_write_ns,messages,persists,xact_aborts,"
                     "xact_abandoned,lost_acked_keys,lost_acked_writes,"
                     "torn_detected,torn_installed,torn_served,"
                     "node_restarts,convergence_failures,"
                     "client_failovers,client_retransmits,"
                     "retransmits_deduped,net_dropped,net_retransmits,"
                     "net_rto_timeouts,net_give_ups,unreachable\n";
        for (const Row &r : rows) {
            std::cout << core::consistencyName(r.model.consistency)
                      << ','
                      << core::persistencyName(r.model.persistency)
                      << ',' << r.result.throughput / 1e6 << ','
                      << r.result.meanReadNs << ','
                      << r.result.meanWriteNs << ','
                      << r.result.p95ReadNs << ','
                      << r.result.p95WriteNs << ','
                      << r.result.messages << ','
                      << r.result.persistsIssued << ','
                      << r.result.xactAborted << ','
                      << r.result.xactAbandoned << ',' << r.lost << ','
                      << r.result.lostAckedWrites << ','
                      << r.result.tornPersistsDetected << ','
                      << r.result.tornValuesInstalled << ','
                      << r.result.tornReadsServed << ','
                      << r.result.nodeRestarts << ','
                      << r.result.convergenceFailures << ','
                      << r.result.clientFailovers << ','
                      << r.result.clientRetransmits << ','
                      << r.result.clientRetransmitsDeduped << ','
                      << r.result.netDropped << ','
                      << r.result.netRetransmits << ','
                      << r.result.netRtoTimeouts << ','
                      << r.result.netGiveUps << ','
                      << joinNodes(r.result.unreachableNodes) << '\n';
        }
        return;
    }

    bool faulty = false;
    for (const Row &r : rows) {
        if (r.result.netDropped > 0 || r.result.netRetransmits > 0 ||
            r.result.netPartitionDrops > 0 || r.result.degraded())
            faulty = true;
    }

    stats::Table t({"Model", "Mreq/s", "Read(ns)", "Write(ns)",
                    "p95R(ns)", "p95W(ns)", "LostKeys"});
    for (const Row &r : rows) {
        t.addRow({core::modelName(r.model),
                  stats::Table::num(r.result.throughput / 1e6, 2),
                  stats::Table::num(r.result.meanReadNs, 0),
                  stats::Table::num(r.result.meanWriteNs, 0),
                  stats::Table::num(r.result.p95ReadNs, 0),
                  stats::Table::num(r.result.p95WriteNs, 0),
                  opt.crashAtUs ? std::to_string(r.lost) : "-"});
    }
    t.print(std::cout);

    if (!faulty)
        return;

    stats::Table ft({"Model", "Dropped", "Retrans", "RTOs", "GiveUps",
                     "Cut", "RecTmo", "Unreachable"});
    for (const Row &r : rows) {
        ft.addRow({core::modelName(r.model),
                   std::to_string(r.result.netDropped),
                   std::to_string(r.result.netRetransmits),
                   std::to_string(r.result.netRtoTimeouts),
                   std::to_string(r.result.netGiveUps),
                   std::to_string(r.result.netPartitionDrops),
                   std::to_string(r.result.recoveryTimeouts),
                   r.result.unreachableNodes.empty()
                       ? "-"
                       : joinNodes(r.result.unreachableNodes)});
    }
    std::cout << "\nfault / reliability summary:\n";
    ft.print(std::cout);
}

// --------------------------------------------------------------------------
// Crash-point torture sweep
// --------------------------------------------------------------------------

struct TortureRow
{
    core::DdpModel model;
    std::uint64_t crashAtUs = 0;
    bool staged = false;
    bool zeroLoss = false;
    bool violation = false;
    cluster::RunResult result;
};

/**
 * Re-run the seeded workload once per crash point per model, audit
 * durability after every recovery, and judge each run against the
 * Table 4 taxonomy:
 *
 *  - a zero-loss binding (Strict persistency, or Synchronous under
 *    Linearizable/Transactional) must lose no acknowledged write;
 *  - no torn value may ever be served to a client;
 *  - with commit records on, recovery must never install a torn value;
 *  - a restarted node must converge with the survivors.
 */
int
runTorture(const Options &opt, const workload::Trace *trace)
{
    std::vector<core::DdpModel> models;
    if (opt.allModels) {
        for (const core::DdpModel &m : core::allModels()) {
            if (opt.replication != 0 &&
                (m.consistency == core::Consistency::Causal ||
                 m.consistency == core::Consistency::Transactional)) {
                std::cerr << "skipping " << core::modelName(m)
                          << ": partial replication unsupported\n";
                continue;
            }
            models.push_back(m);
        }
    } else {
        models.push_back(opt.model);
    }

    // Crash points: evenly spaced through the measurement window, or
    // seeded-random inside it. The same points are reused for every
    // model so sweeps stay comparable.
    sim::Pcg32 prng(opt.seed ^ 0x7047u, 1);
    std::vector<std::uint64_t> points_us;
    for (std::uint32_t i = 0; i < opt.torturePoints; ++i) {
        std::uint64_t at =
            opt.tortureRandom
                ? opt.warmupUs + prng.nextU64() % opt.measureUs
                : opt.warmupUs + (opt.measureUs *
                                  static_cast<std::uint64_t>(i + 1)) /
                                     (opt.torturePoints + 1);
        points_us.push_back(at);
    }

    bool staged = opt.crashNodes.has_value();
    std::uint64_t restart_us =
        opt.restartAfterUs > 0 ? opt.restartAfterUs : 200;

    // One sweep item per (model, crash point), flattened so a parallel
    // runner keeps all cores busy even for a single model. Items are
    // fully independent; results come back in index order, so output
    // is byte-identical to the old serial double loop.
    auto sweep_t0 = std::chrono::steady_clock::now();
    sim::SweepRunner runner(opt.jobs);
    std::size_t points = points_us.size();
    if (runner.jobs() > 1) {
        std::cerr << "torturing " << models.size() << " model(s) x "
                  << points << " crash points (" << runner.jobs()
                  << " jobs)...\n";
    }
    std::vector<TortureRow> rows = runner.map(
        models.size() * points, [&](std::size_t i) {
            const core::DdpModel &model = models[i / points];
            std::uint64_t at_us = points_us[i % points];
            if (runner.jobs() <= 1 && i % points == 0) {
                std::cerr << "torturing " << core::modelName(model)
                          << " (" << points << " crash points)...\n";
            }
            cluster::ClusterConfig cfg = makeConfig(opt, model);
            cfg.trace = trace;
            cluster::Cluster c(cfg);
            core::PropertyChecker checker;
            c.setChecker(&checker);
            sim::Tick at = at_us * sim::kMicrosecond;
            if (staged) {
                c.schedulePartialCrash(at, *opt.crashNodes,
                                       restart_us * sim::kMicrosecond);
            } else {
                c.scheduleCrash(at);
            }

            TortureRow row;
            row.model = model;
            row.crashAtUs = at_us;
            row.staged = staged;
            row.result = c.run();
            row.zeroLoss = core::writesDurableAtCompletion(model);
            row.violation =
                (row.zeroLoss && row.result.lostAckedWrites > 0) ||
                row.result.tornReadsServed > 0 ||
                (opt.commitRecords &&
                 row.result.tornValuesInstalled > 0) ||
                row.result.convergenceFailures > 0;
            return row;
        });
    std::uint64_t violations = 0;
    std::uint64_t sweep_events = 0;
    for (const TortureRow &r : rows) {
        if (r.violation)
            ++violations;
        sweep_events += r.result.eventsExecuted;
    }
    double sweep_wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - sweep_t0)
                            .count();
    std::cerr << "torture sweep: " << rows.size() << " runs, "
              << sweep_events << " events in " << sweep_wall << " s ("
              << (sweep_wall > 0 ? static_cast<double>(sweep_events) /
                                       sweep_wall
                                 : 0.0)
              << " events/s, " << runner.jobs() << " jobs)\n";

    if (opt.format == Options::Format::Json) {
        bench::JsonArrayWriter w(std::cout);
        for (const TortureRow &r : rows) {
            w.beginRecord();
            w.field("schema", "ddp-bench-v1");
            w.field("bench", "ddpsim-torture");
            bench::jsonPerfFields(w, r.model, opt.seed, r.result);
            w.field("recovery", opt.recovery);
            w.field("crash_at_us", r.crashAtUs);
            w.field("crash_mode", r.staged ? "partial" : "full");
            w.field("zero_loss_required", r.zeroLoss);
            w.field("lost_acked_keys", r.result.lostAckedWriteKeys);
            w.field("lost_acked_writes", r.result.lostAckedWrites);
            w.field("torn_detected", r.result.tornPersistsDetected);
            w.field("torn_installed", r.result.tornValuesInstalled);
            w.field("torn_served", r.result.tornReadsServed);
            w.field("node_restarts", r.result.nodeRestarts);
            w.field("convergence_failures",
                    r.result.convergenceFailures);
            w.field("client_failovers", r.result.clientFailovers);
            w.field("violation", r.violation);
            w.endRecord();
        }
        w.finish();
    } else if (opt.format == Options::Format::Csv) {
        std::cout << "consistency,persistency,crash_at_us,crash_mode,"
                     "zero_loss_required,lost_acked_keys,"
                     "lost_acked_writes,torn_detected,torn_installed,"
                     "torn_served,node_restarts,convergence_failures,"
                     "client_failovers,retransmits_deduped,"
                     "xact_abandoned,violation\n";
        for (const TortureRow &r : rows) {
            std::cout << core::consistencyName(r.model.consistency)
                      << ','
                      << core::persistencyName(r.model.persistency)
                      << ',' << r.crashAtUs << ','
                      << (r.staged ? "partial" : "full") << ','
                      << (r.zeroLoss ? 1 : 0) << ','
                      << r.result.lostAckedWriteKeys << ','
                      << r.result.lostAckedWrites << ','
                      << r.result.tornPersistsDetected << ','
                      << r.result.tornValuesInstalled << ','
                      << r.result.tornReadsServed << ','
                      << r.result.nodeRestarts << ','
                      << r.result.convergenceFailures << ','
                      << r.result.clientFailovers << ','
                      << r.result.clientRetransmitsDeduped << ','
                      << r.result.xactAbandoned << ','
                      << (r.violation ? 1 : 0) << '\n';
        }
    } else {
        // Per-model summary over all crash points.
        stats::Table t({"Model", "Points", "ZeroLoss", "LostWrites",
                        "TornDet", "TornInst", "TornServed", "ConvFail",
                        "Viol"});
        std::size_t idx = 0;
        for (const core::DdpModel &model : models) {
            std::uint64_t lost = 0, torn_det = 0, torn_inst = 0;
            std::uint64_t torn_served = 0, conv = 0, viol = 0;
            bool zero_loss = false;
            for (std::uint32_t i = 0; i < points_us.size(); ++i) {
                const TortureRow &r = rows[idx++];
                lost += r.result.lostAckedWrites;
                torn_det += r.result.tornPersistsDetected;
                torn_inst += r.result.tornValuesInstalled;
                torn_served += r.result.tornReadsServed;
                conv += r.result.convergenceFailures;
                viol += r.violation ? 1 : 0;
                zero_loss = r.zeroLoss;
            }
            t.addRow({core::modelName(model),
                      std::to_string(points_us.size()),
                      zero_loss ? "yes" : "no", std::to_string(lost),
                      std::to_string(torn_det),
                      std::to_string(torn_inst),
                      std::to_string(torn_served), std::to_string(conv),
                      std::to_string(viol)});
        }
        t.print(std::cout);
    }

    if (violations > 0) {
        std::cerr << "TORTURE FAILED: " << violations << " of "
                  << rows.size() << " runs violated the durability "
                  << "taxonomy\n";
        return 1;
    }
    std::cerr << "torture passed: " << rows.size()
              << " crash/recovery runs, zero taxonomy violations\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt))
        return 1;

    workload::Trace trace;
    const workload::Trace *trace_ptr = nullptr;
    if (!opt.traceFile.empty()) {
        std::ifstream in(opt.traceFile);
        if (!in || !workload::Trace::load(in, trace) || trace.empty()) {
            std::cerr << "cannot load trace from '" << opt.traceFile
                      << "'\n";
            return 1;
        }
        trace_ptr = &trace;
        std::cerr << "replaying " << trace.size() << " traced ops\n";
    }

    if (opt.torturePoints > 0)
        return runTorture(opt, trace_ptr);

    // Pre-filter the model list so sweep workers never hit the
    // replication-mismatch exit path inside runExperiment.
    std::vector<core::DdpModel> models;
    if (opt.allModels) {
        for (const core::DdpModel &m : core::allModels()) {
            if (opt.replication != 0 &&
                (m.consistency == core::Consistency::Causal ||
                 m.consistency == core::Consistency::Transactional)) {
                std::cerr << "skipping " << core::modelName(m)
                          << ": partial replication unsupported\n";
                continue;
            }
            models.push_back(m);
        }
    } else {
        models.push_back(opt.model);
    }

    auto sweep_t0 = std::chrono::steady_clock::now();
    sim::SweepRunner runner(opt.jobs);
    if (runner.jobs() > 1 && models.size() > 1) {
        std::cerr << "running " << models.size() << " models ("
                  << runner.jobs() << " jobs)...\n";
    }
    std::vector<Row> rows =
        runner.map(models.size(), [&](std::size_t i) {
            if (runner.jobs() <= 1 && models.size() > 1) {
                std::cerr << "running " << core::modelName(models[i])
                          << "...\n";
            }
            return runExperiment(opt, models[i], trace_ptr, i);
        });
    if (models.size() > 1) {
        std::uint64_t events = 0;
        for (const Row &r : rows)
            events += r.result.eventsExecuted;
        double wall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - sweep_t0)
                .count();
        std::cerr << "sweep: " << rows.size() << " runs, " << events
                  << " events in " << wall << " s ("
                  << (wall > 0
                          ? static_cast<double>(events) / wall
                          : 0.0)
                  << " events/s, " << runner.jobs() << " jobs)\n";
    }
    printRows(opt, rows);

    if (!opt.traceOut.empty()) {
        std::ofstream out(opt.traceOut, std::ios::binary);
        if (!out) {
            std::cerr << "cannot open '" << opt.traceOut
                      << "' for writing\n";
            return 1;
        }
        std::vector<std::string> fragments;
        fragments.reserve(rows.size());
        std::uint64_t dropped = 0;
        for (Row &r : rows) {
            fragments.push_back(std::move(r.traceJson));
            dropped += r.traceDropped;
        }
        sim::TraceRecorder::writeFile(out, fragments);
        if (!out) {
            std::cerr << "write to '" << opt.traceOut << "' failed\n";
            return 1;
        }
        std::cerr << "wrote timeline to " << opt.traceOut;
        if (dropped > 0)
            std::cerr << " (" << dropped
                      << " events dropped at the per-run cap)";
        std::cerr << "\n";
    }
    return 0;
}
